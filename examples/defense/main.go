// Defense: quantization as a mitigation against the vanilla attack.
//
// This example reproduces the observation behind the paper's Table I: the
// original correlated-value-encoding attack (uniform rate over all weights,
// Song et al.) is progressively destroyed by ordinary weighted-entropy
// quantization as the bit width decreases — the released model loses
// accuracy (the data holder would reject it) and the embedded images lose
// quality (the adversary recovers less).
//
// Run with: go run ./examples/defense
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/report"
)

func main() {
	data := dataset.SyntheticCIFAR(dataset.CIFARConfig{
		N: 800, Classes: 10, H: 12, W: 12, Seed: 3,
		ContrastStd: 0.32, NoiseStd: 25, TemplateShare: 0.6,
	})
	model := nn.ResNetConfig{
		InC: 1, InH: 12, InW: 12, Classes: 10,
		Widths: []int{6, 12, 24}, Blocks: []int{2, 2, 2}, Seed: 1,
	}

	table := report.NewTable(
		"Vanilla correlation attack (lambda=5) vs weighted-entropy quantization",
		"released model", "test accuracy", "MAPE", "recognizable")

	base := core.Config{
		Data: data, ModelCfg: model,
		Lambdas: []float64{5}, // Eq 1: one rate over all weights
		Epochs:  15, BatchSize: 32, LR: 0.05, Momentum: 0.9, ClipNorm: 5,
		FineTuneEpochs: 3, Seed: 3,
	}

	for _, cfgCase := range []struct {
		label string
		quant core.QuantMode
		bits  int
	}{
		{"full precision", core.QuantNone, 0},
		{"8-bit WEQ", core.QuantWEQ, 8},
		{"6-bit WEQ", core.QuantWEQ, 6},
		{"4-bit WEQ", core.QuantWEQ, 4},
	} {
		cfg := base
		cfg.Quant = cfgCase.quant
		if cfgCase.bits > 0 {
			cfg.Bits = cfgCase.bits
		}
		res := core.Run(cfg)
		table.AddRow(cfgCase.label, report.Percent(res.TestAcc), res.Score.MeanMAPE,
			fmt.Sprintf("%d/%d", res.Score.Recognizable, res.Score.N))
	}
	table.Render(os.Stdout)
	fmt.Println("Lower bit widths degrade both the model and the stolen data:")
	fmt.Println("existing compression acts as an (accidental) defense — until the")
	fmt.Println("adversary ships the quantizer too (see examples/quickstart).")
}
