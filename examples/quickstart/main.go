// Quickstart: the complete attack in one page.
//
// A "data holder" trains an image classifier with a third-party training
// pipeline that secretly (1) picks encoding targets from the training set,
// (2) adds a correlation penalty to the loss, and (3) quantizes the model
// with image-aware cluster boundaries. The released 4-bit model still
// classifies well — and the "algorithm provider" extracts the training
// images back out of its weights.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/img"
	"repro/internal/nn"
)

func main() {
	// The data holder's private dataset (synthetic CIFAR-like stand-in).
	data := dataset.SyntheticCIFAR(dataset.CIFARConfig{
		N: 800, Classes: 10, H: 12, W: 12, Seed: 7,
		ContrastStd: 0.32, NoiseStd: 25, TemplateShare: 0.6,
	})
	fmt.Printf("dataset: %d images, per-image std mean %.1f\n", data.Len(), data.StdMean())

	// The malicious pipeline: layer groups over a small residual CNN,
	// zero correlation rate for the accuracy-critical early groups, rate
	// 10 for the late group, std-window pre-processing, Algorithm 1
	// quantization to 4 bits with stealth fine-tuning.
	res := core.Run(core.Config{
		Data: data,
		ModelCfg: nn.ResNetConfig{
			InC: 1, InH: 12, InW: 12, Classes: 10,
			Widths: []int{6, 12, 24}, Blocks: []int{2, 2, 2}, Seed: 1,
		},
		GroupBounds: []int{5, 9},
		Lambdas:     []float64{0, 0, 10},
		WindowLen:   5,
		Epochs:      15, BatchSize: 32, LR: 0.05, Momentum: 0.9, ClipNorm: 5,
		Quant: core.QuantTargetCorrelated, Bits: 4,
		FineTuneEpochs: 3, KeepRegDuringFineTune: true,
		Seed: 7,
		Log:  os.Stdout,
	})

	fmt.Printf("\nreleased 4-bit model: test accuracy %.1f%%\n", 100*res.TestAcc)
	fmt.Printf("embedded images: %d; extraction quality: %s\n\n", res.Plan.TotalImages(), res.Score)

	// Show one stolen image next to the original.
	if len(res.Recon) > 0 {
		orig := res.Plan.AllImages()[0]
		recon := res.Recon[0].Clone().Clamp()
		fmt.Printf("original (left) vs extracted from the released model (right), MAPE %.1f:\n\n",
			img.MAPE(orig, recon))
		fmt.Println(img.SideBySideASCII([]*img.Image{orig, recon}, 4))
	}
}
