// Facesteal: the paper's face-recognition scenario (Fig 5 / Table IV).
//
// A face-recognition model is trained with the malicious pipeline at
// correlation rate 10 and released after 3-bit quantization (eight weight
// levels). The example compares the proposed target-correlated quantization
// against the stock weighted-entropy quantization: with the proposed
// method, face texture survives aggressive compression; with the original,
// it does not.
//
// Run with: go run ./examples/facesteal [outdir]
// (Trains two face models; takes a few minutes on one core.)
// When outdir is given, reconstructed faces are also written as PGM files.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/img"
	"repro/internal/nn"
)

func main() {
	data := dataset.SyntheticFaces(dataset.DefaultFaces(16, 25, 5))
	model := nn.ResNetConfig{
		InC: 1, InH: 24, InW: 24, Classes: data.Classes,
		Widths: []int{6, 12, 24}, Blocks: []int{2, 2, 2}, Seed: 2,
	}
	// Domain-typical face-crop brightness for the extraction decode.
	meanPix := 0.0
	for _, im := range data.Images[:40] {
		meanPix += im.Mean()
	}
	meanPix /= 40

	base := core.Config{
		Data: data, ModelCfg: model, DecodeMean: meanPix,
		GroupBounds: []int{5, 9},
		Lambdas:     []float64{0, 0, 10},
		WindowLen:   8,
		Epochs:      18, BatchSize: 32, LR: 0.05, Momentum: 0.9, ClipNorm: 5,
		Bits: 3, FineTuneEpochs: 8, FineTuneLR: 0.01, Seed: 5,
	}

	proposed := base
	proposed.Quant = core.QuantTargetCorrelated
	proposed.KeepRegDuringFineTune = true
	resP := core.Run(proposed)

	original := base
	original.Quant = core.QuantWEQ
	resO := core.Run(original)

	fmt.Printf("proposed quantization: accuracy %.1f%%, %s\n", 100*resP.TestAcc, resP.Score)
	fmt.Printf("original quantization: accuracy %.1f%%, %s\n\n", 100*resO.TestAcc, resO.Score)

	n := 5
	if len(resP.Recon) < n {
		n = len(resP.Recon)
	}
	truth := resP.Plan.AllImages()[:n]
	fmt.Println("ground-truth faces:")
	fmt.Println(img.SideBySideASCII(truth, 2))
	fmt.Println("extracted from the 3-bit model, proposed quantization:")
	fmt.Println(img.SideBySideASCII(clampAll(resP.Recon[:n]), 2))
	if len(resO.Recon) >= n {
		fmt.Println("extracted from the 3-bit model, original quantization:")
		fmt.Println(img.SideBySideASCII(clampAll(resO.Recon[:n]), 2))
	}

	if len(os.Args) > 1 {
		dir := os.Args[1]
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i := 0; i < n; i++ {
			_ = truth[i].SavePNM(filepath.Join(dir, fmt.Sprintf("truth_%d.pgm", i)))
			_ = resP.Recon[i].Clone().Clamp().SavePNM(filepath.Join(dir, fmt.Sprintf("proposed_%d.pgm", i)))
			if i < len(resO.Recon) {
				_ = resO.Recon[i].Clone().Clamp().SavePNM(filepath.Join(dir, fmt.Sprintf("original_%d.pgm", i)))
			}
		}
		fmt.Printf("wrote PGM files to %s\n", dir)
	}
}

func clampAll(images []*img.Image) []*img.Image {
	out := make([]*img.Image, len(images))
	for i, im := range images {
		out[i] = im.Clone().Clamp()
	}
	return out
}
