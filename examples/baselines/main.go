// Baselines: the three encoding channels of Sec. II-B compared head to head.
//
// LSB encoding has huge capacity but zero robustness (any quantization
// wipes it); sign encoding is robust but stores only one bit per weight;
// correlated-value encoding stores whole pixels per weight and survives
// careful quantization — which is why the paper builds on it.
//
// Run with: go run ./examples/baselines
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/quantize"
	"repro/internal/report"
	"repro/internal/train"
)

func main() {
	data := dataset.SyntheticCIFAR(dataset.CIFARConfig{
		N: 600, Classes: 10, H: 12, W: 12, Seed: 9,
		ContrastStd: 0.32, NoiseStd: 25, TemplateShare: 0.6,
	})
	x, y := data.Tensors()

	t := report.NewTable("Encoding channels on the same released model",
		"attack", "capacity", "payload survives 4-bit quantization?")

	// --- LSB encoding ---
	mLSB := nn.NewMLP("lsb", 144, []int{64}, 10, 1)
	train.Run(mLSB, x, y, train.Config{Epochs: 5, BatchSize: 32, Optimizer: train.NewSGD(0.05, 0.9, 0), Seed: 1})
	payload := make([]byte, 512)
	rand.New(rand.NewSource(1)).Read(payload)
	bits := attack.EncodeLSB(mLSB.WeightParams(), payload, 8)
	preBER := attack.BitErrorRate(payload, attack.DecodeLSB(mLSB.WeightParams(), bits, 8), bits)
	quantize.QuantizeModel(mLSB, quantize.WeightedEntropy{}, 16)
	postBER := attack.BitErrorRate(payload, attack.DecodeLSB(mLSB.WeightParams(), bits, 8), bits)
	t.AddRow("LSB", fmt.Sprintf("%d bits/weight", 8),
		fmt.Sprintf("no (BER %.2f -> %.2f)", preBER, postBER))

	// --- sign encoding ---
	mSign := nn.NewMLP("sign", 144, []int{64}, 10, 2)
	signPayload := []byte("own your weights, own your data")
	signReg := attack.NewSignEncodingReg(20, signPayload)
	train.Run(mSign, x, y, train.Config{Epochs: 20, BatchSize: 32,
		Optimizer: train.NewSGD(0.05, 0.9, 0), Reg: signReg, Seed: 2})
	preSign := attack.BitErrorRate(signPayload, attack.DecodeSignBits(mSign, signReg.NumBits), signReg.NumBits)
	quantize.QuantizeModel(mSign, quantize.WeightedEntropy{}, 16)
	postSign := attack.BitErrorRate(signPayload, attack.DecodeSignBits(mSign, signReg.NumBits), signReg.NumBits)
	t.AddRow("sign", "1 bit/weight",
		fmt.Sprintf("partially (BER %.2f -> %.2f; zero-straddling clusters flip signs)", preSign, postSign))

	// --- correlated value encoding ---
	mCor := nn.NewMLP("cor", 144, []int{72}, 10, 3)
	group := mCor.GroupsByConvIndex(nil)[0]
	plan := attack.UniformPlan(data, group, 5, 3)
	reg := attack.NewLayerwiseReg([]nn.LayerGroup{group}, plan.Lambdas(), plan.Secrets())
	train.Run(mCor, x, y, train.Config{Epochs: 25, BatchSize: 32,
		Optimizer: train.NewSGD(0.05, 0.9, 0), Reg: reg, ClipNorm: 5, Seed: 3})
	opt := attack.DecodeOptions{TargetMean: 128, TargetStd: 50}
	scorePre, _ := attack.BestPolarityDecode(plan.Groups[0], group, plan.ImageGeom, opt)
	quantize.QuantizeModel(mCor, quantize.TargetCorrelated{Targets: plan.Groups[0].Images}, 16)
	scorePost, _ := attack.BestPolarityDecode(plan.Groups[0], group, plan.ImageGeom, opt)
	t.AddRow("correlated value", fmt.Sprintf("%d images (1 px/weight)", len(plan.Groups[0].Images)),
		fmt.Sprintf("yes with Alg 1 (MAPE %.1f -> %.1f)", scorePre.MeanMAPE, scorePost.MeanMAPE))

	t.Render(os.Stdout)
}
