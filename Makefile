# Tier-1 check: everything must build and every test must pass.
check:
	go build ./... && go test ./...

# Tier-2 check: the full suite under the race detector. The worker pool in
# internal/compute is the only source of concurrency in the repo; this is
# the gate that keeps it honest. Slow (the experiment drivers retrain
# models under a ~10x race-mode slowdown, far past the default 10m
# per-package timeout), so it is not part of `check`.
race:
	go test -race -timeout 60m ./...

# Fast race gate over the concurrent packages only.
race-fast:
	go test -race ./internal/compute/ ./internal/nn/ ./internal/train/ ./internal/serve/ ./internal/obs/

vet:
	go vet ./...

# Serial-vs-parallel micro-benchmarks: the -cpu sweep varies GOMAXPROCS, so
# the parallel variants (ConvForward, ConvBackward, TrainEpoch) scale with it
# while the *Serial twins pin one worker as the baseline.
bench:
	go test -run '^$$' -bench 'Conv|TrainEpoch|MatMul' -cpu 1,2,4

# Serving throughput sweep (requests/sec vs MaxBatch) written to
# BENCH_serve.json; also runs the latency micro-benchmarks.
serve-bench:
	go test ./internal/serve/ -run '^TestEmitServeBench$$' -count=1 -v -args -emit-bench=$(CURDIR)/BENCH_serve.json
	go test ./internal/serve/ -run '^$$' -bench ServePredict

# Observability overhead guard: instrumented-vs-uninstrumented forward pass
# written to BENCH_obs.json; fails if enabling obs costs more than 2%.
obs-bench:
	go test ./internal/obs/ -run '^TestEmitObsBench$$' -count=1 -v -args -emit-bench=$(CURDIR)/BENCH_obs.json

# Pipeline cache benchmark: the quantizer ablation run cold (empty artifact
# store) vs warm (same store, fresh process state) written to
# BENCH_pipeline.json; fails if the warm run trains any epoch or misses any
# stage.
pipeline-bench:
	go test ./internal/experiments/ -run '^TestEmitPipelineBench$$' -count=1 -v -args -emit-bench=$(CURDIR)/BENCH_pipeline.json

.PHONY: check race race-fast vet bench serve-bench obs-bench pipeline-bench
