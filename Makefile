# Tier-1 check: everything must build and every test must pass.
check:
	go build ./... && go test ./...

# Tier-2 check: the full suite under the race detector. The worker pool in
# internal/compute is the only source of concurrency in the repo; this is
# the gate that keeps it honest. Slow (the experiment drivers retrain
# models under a ~10x race-mode slowdown, far past the default 10m
# per-package timeout), so it is not part of `check`.
race:
	go test -race -timeout 60m ./...

# Fast race gate over the concurrent packages only. internal/quantize is
# here for the codebook-native eval tests, which forward through the worker
# pool at several thread counts; internal/gateway for the fleet-routing
# tests (concurrent probes, rolling reloads, and hot-swap under fire);
# internal/dist for the multi-process trainer's in-process multi-rank tests.
race-fast:
	go test -race ./internal/compute/ ./internal/nn/ ./internal/train/ ./internal/dist/ ./internal/serve/ ./internal/obs/ ./internal/quantize/ ./internal/gateway/ ./internal/api/ ./internal/extract/

vet:
	go vet ./...

# Serial-vs-parallel micro-benchmarks: the -cpu sweep varies GOMAXPROCS, so
# the parallel variants (ConvForward, ConvBackward, TrainEpoch) scale with it
# while the *Serial twins pin one worker as the baseline.
bench:
	go test -run '^$$' -bench 'Conv|TrainEpoch|MatMul' -cpu 1,2,4

# Serving throughput sweep (requests/sec vs MaxBatch) written to
# BENCH_serve.json; also runs the latency micro-benchmarks.
serve-bench:
	go test ./internal/serve/ -run '^TestEmitServeBench$$' -count=1 -v -args -emit-bench=$(CURDIR)/BENCH_serve.json
	go test ./internal/serve/ -run '^$$' -bench ServePredict

# Blocked-vs-naive matmul kernel sweep written to BENCH_kernels.json. The
# kernels are bit-identical by construction (the tests enforce it); this
# records what the blocking buys.
kernels-bench:
	go test ./internal/tensor/ -run '^TestEmitKernelsBench$$' -count=1 -v -args -emit-bench=$(CURDIR)/BENCH_kernels.json

# Codebook-native vs dequantized serving of the same quantized release
# written to BENCH_serve_quant.json; fails unless native holds strictly
# fewer resident model bytes at no throughput cost (max_batch=8).
serve-quant-bench:
	go test ./internal/serve/ -run '^TestEmitServeQuantBench$$' -count=1 -v -timeout 20m -args -emit-quant-bench=$(CURDIR)/BENCH_serve_quant.json

# Fleet throughput sweep (aggregate requests/sec vs replica pool size, plus
# a rolling reload under fire) written to BENCH_gateway.json; fails unless
# req/s grows monotonically 1→2→4 replicas and the reload answers every
# client request.
gateway-bench:
	go test ./internal/gateway/ -run '^TestEmitGatewayBench$$' -count=1 -v -timeout 20m -args -emit-bench=$(CURDIR)/BENCH_gateway.json

# Model-extraction attack vs serving defenses written to
# BENCH_extract.json: the same budget-2000 prior-strategy attack run
# undefended and under each per-model policy (rounding, top-1, label-only,
# query budget). Fails unless the undefended surrogate reaches >= 80% top-1
# agreement with the victim and at least one defense cuts agreement by
# >= 10 points at equal budget.
extract-bench:
	go test ./internal/extract/ -run '^TestEmitExtractBench$$' -count=1 -v -timeout 30m -args -emit-bench=$(CURDIR)/BENCH_extract.json

# Data-parallel training benchmark: the same fixed-shard training job at
# procs ∈ {1,2,4} (in-process ranks over a shared mailbox) written to
# BENCH_dp.json; fails unless the final checkpoint is byte-identical across
# every process count.
dp-bench:
	go test ./internal/dist/ -run '^TestEmitDPBench$$' -count=1 -v -timeout 20m -args -emit-bench=$(CURDIR)/BENCH_dp.json

# Observability overhead guard: instrumented-vs-uninstrumented forward pass
# written to BENCH_obs.json; fails if enabling obs costs more than 2%.
obs-bench:
	go test ./internal/obs/ -run '^TestEmitObsBench$$' -count=1 -v -args -emit-bench=$(CURDIR)/BENCH_obs.json

# Pipeline cache benchmark: the quantizer ablation run cold (empty artifact
# store) vs warm (same store, fresh process state) written to
# BENCH_pipeline.json; fails if the warm run trains any epoch or misses any
# stage.
pipeline-bench:
	go test ./internal/experiments/ -run '^TestEmitPipelineBench$$' -count=1 -v -args -emit-bench=$(CURDIR)/BENCH_pipeline.json

.PHONY: check race race-fast vet bench serve-bench kernels-bench serve-quant-bench gateway-bench obs-bench pipeline-bench extract-bench dp-bench
