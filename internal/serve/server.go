package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/attack"
	"repro/internal/obs"
)

// Server exposes a Registry over the versioned /v1 HTTP JSON API (schema
// in package api):
//
//	POST /v1/predict               single or batch prediction
//	GET  /v1/models                registered models and their metadata
//	POST /v1/models/{name}:audit   defender-side distributional audit
//	POST /v1/models/{name}:load    pull a release from the artifact store
//	                               by digest and (hot-)register it
//	POST /v1/models/{name}:policy  get (empty body) or set the model's
//	                               serving defense policy
//	GET  /healthz                  liveness
//	GET  /readyz                   readiness (503 while starting/draining)
//	GET  /statsz                   serving counters (JSON)
//	GET  /tracez                   recent/slowest/error request traces (JSON)
//	GET  /detectz                  extraction-pattern detector report (JSON)
//	GET  /metricsz                 full obs registry (Prometheus text;
//	                               ?format=json for the JSON snapshot)
type Server struct {
	reg *Registry
	// auditBounds are the default conv-index group bounds the audit
	// endpoint partitions weights with (the adversary-side constant from
	// the shared preset); requests may override them.
	auditBounds []int
	mux         *http.ServeMux
	// routes records every registered mux pattern, in registration order —
	// ServeMux does not expose its patterns, and the route-inventory golden
	// needs the full surface.
	routes []string
	// ops is the model-operation dispatch table POST /v1/models/{nameop}
	// resolves against.
	ops map[string]api.ModelOpHandler
	// detector watches per-client query volume and input novelty for
	// extraction-like traffic (GET /detectz).
	detector *Detector
	// budget enforces per-model, per-client query budgets from the
	// registry's policies.
	budget *api.BudgetLedger
	// httpRequests counts every HTTP request; a fresh instance per server,
	// registered as serve_http_requests_total on the registry's obs
	// registry (replace semantics, like engine series).
	httpRequests *obs.Counter
	// readiness is the /readyz state machine: starting → ready → draining.
	// Liveness (/healthz) is separate — a starting or draining replica is
	// alive but must not receive new gateway traffic.
	readiness atomic.Int32

	// tracing gates per-request trace construction on /v1/predict (on by
	// default; EnableTracing(false) drops the whole path to nil-trace
	// no-ops). Per-client accounting stays on either way.
	tracing atomic.Bool
	// now is the tracing clock (time.Now outside tests; the /tracez golden
	// injects a fake).
	now func() time.Time
	// traces retains completed request traces for GET /tracez.
	traces *obs.TraceBuffer
	// accessLog, when set, gets one JSON line per completed predict.
	accessLog *obs.AccessLogger
	// Per-client accounting, cardinality-capped at Options.MaxClients.
	clientReqs *obs.CounterVec
	clientErrs *obs.CounterVec
	clientLat  *obs.HistogramVec
}

// Readiness states, in lifecycle order. A server starts not-ready
// (readyStarting) so a gateway never routes to a replica still loading its
// initial models; SetReady flips it once loads complete; StartDrain flips
// it back before the listener stops, so health-checking gateways eject the
// replica from their rings ahead of SIGTERM killing it.
const (
	readyStarting int32 = iota
	readyServing
	readyDraining
)

// NewServer wraps reg. auditBounds may be nil (audit then uses a single
// group unless the request supplies bounds).
func NewServer(reg *Registry, auditBounds []int) *Server {
	opts := reg.Options()
	s := &Server{
		reg: reg, auditBounds: auditBounds, mux: http.NewServeMux(),
		detector:     newDetector(opts),
		budget:       api.NewBudgetLedger(),
		httpRequests: obs.NewCounter(),
		now:          time.Now,
		traces:       obs.NewTraceBuffer(0, 0, 0),
		clientReqs:   obs.NewCounterVec(opts.Obs, "serve_client_requests_total", "client", opts.MaxClients),
		clientErrs:   obs.NewCounterVec(opts.Obs, "serve_client_errors_total", "client", opts.MaxClients),
		clientLat:    obs.NewHistogramVec(opts.Obs, "serve_client_latency_seconds", "client", opts.MaxClients, DefaultLatencyBuckets),
	}
	s.tracing.Store(true)
	opts.Obs.RegisterCounter("serve_http_requests_total", s.httpRequests)
	s.ops = map[string]api.ModelOpHandler{
		"audit":  s.opAudit,
		"load":   s.opLoad,
		"policy": s.opPolicy,
	}
	s.handle("POST /v1/predict", s.handlePredict)
	s.handle("GET /v1/models", s.handleModels)
	s.handle("POST /v1/models/{nameop}", s.handleModelOp)
	s.handle("GET /healthz", s.handleHealth)
	s.handle("GET /readyz", s.handleReady)
	s.handle("GET /statsz", s.handleStats)
	s.handle("GET /tracez", s.handleTraces)
	s.handle("GET /detectz", s.handleDetect)
	s.handle("GET /metricsz", s.handleMetrics)
	return s
}

// handle registers pattern on the mux and records it for Routes.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.routes = append(s.routes, pattern)
	s.mux.HandleFunc(pattern, h)
}

// Routes returns every registered mux pattern in registration order — the
// server's whole HTTP surface, which the route-inventory golden pins.
func (s *Server) Routes() []string {
	return append([]string(nil), s.routes...)
}

// Detector returns the server's extraction-pattern detector (what
// /detectz reports from).
func (s *Server) Detector() *Detector { return s.detector }

// EnableTracing toggles per-request trace construction (on by default).
// With tracing off, predictions still flow and per-client accounting still
// counts — only trace records, spans, and the timing response headers stop.
func (s *Server) EnableTracing(on bool) { s.tracing.Store(on) }

// SetAccessLog directs one structured JSON line per completed predict to w
// (nil disables). Lines are TraceRecords without spans.
func (s *Server) SetAccessLog(w io.Writer) { s.accessLog = obs.NewAccessLogger(w) }

// Traces returns the server's completed-trace buffer (what /tracez serves).
func (s *Server) Traces() *obs.TraceBuffer { return s.traces }

// SetReady marks the server ready: initial model loading is done and
// /readyz starts answering 200. Idempotent; a draining server stays
// draining (drain is terminal for a process on its way out).
func (s *Server) SetReady() {
	s.readiness.CompareAndSwap(readyStarting, readyServing)
}

// StartDrain marks the server draining: /readyz answers 503 from here on,
// while /healthz and prediction serving stay up. Callers give gateway
// probes a grace period to observe the transition before actually stopping
// the listener, so a drain-aware gateway loses zero requests across a
// replica shutdown.
func (s *Server) StartDrain() {
	s.readiness.Store(readyDraining)
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.httpRequests.Inc()
		s.mux.ServeHTTP(w, r)
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	client := obs.ClientFrom(r.Header.Get(obs.HeaderClient), r.RemoteAddr)
	var tr *obs.RequestTrace
	if s.tracing.Load() {
		// A malformed or absent X-Dac-Trace yields the zero ID, which mints
		// a fresh trace — a direct (non-gateway) call still gets traced.
		id, hop, _ := obs.ParseTraceHeader(r.Header.Get(obs.HeaderTrace))
		tr = obs.NewRequestTrace(id, s.now)
		tr.SetClient(client)
		tr.SetHop(hop)
	}
	fail := func(status int, code, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		traceID := ""
		if tr != nil {
			traceID = tr.ID().String()
			w.Header().Set(obs.HeaderTrace, traceID)
		}
		api.WriteError(w, status, code, traceID, "%s", msg)
		s.finishPredict(tr, client, status, msg)
	}
	sp := tr.StartSpan("decode")
	var req api.PredictRequest
	err := json.NewDecoder(r.Body).Decode(&req)
	sp.End()
	if err != nil {
		fail(http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
		return
	}
	if req.API != "" && req.API != api.Version {
		fail(http.StatusBadRequest, api.CodeUnsupportedAPI, "unsupported api version %q (this server speaks %q)", req.API, api.Version)
		return
	}
	tr.SetModel(req.Model)
	if (req.Input == nil) == (req.Inputs == nil) {
		fail(http.StatusBadRequest, api.CodeBadRequest, "exactly one of input/inputs must be set")
		return
	}
	en, ok := s.reg.Get(req.Model)
	if !ok {
		fail(http.StatusNotFound, api.CodeNotFound, "unknown model %q", req.Model)
		return
	}
	tr.SetDigest(en.Digest)
	inputs := req.Inputs
	if req.Input != nil {
		inputs = [][]float64{req.Input}
	}
	if len(inputs) == 0 {
		fail(http.StatusBadRequest, api.CodeBadRequest, "empty batch")
		return
	}
	// The detector sees every attempt — including ones the budget denies
	// below, since denied probes are still extraction pressure.
	s.detector.Observe(client, inputs)
	pol := s.reg.PolicyFor(req.Model)
	if !s.budget.Allow(req.Model, client, len(inputs), pol.QueryBudget) {
		fail(http.StatusTooManyRequests, api.CodeBudgetExhausted,
			"client %q has exhausted its %d-sample query budget for model %q", client, pol.QueryBudget, req.Model)
		return
	}
	// Submit every sample independently so the engine is free to coalesce
	// them with other requests in flight; the response is all-or-nothing.
	subStart := tr.Clock()
	preds := make([]Prediction, len(inputs))
	tms := make([]Timing, len(inputs))
	errs := make([]error, len(inputs))
	var wg sync.WaitGroup
	for i, in := range inputs {
		wg.Add(1)
		go func(i int, in []float64) {
			defer wg.Done()
			preds[i], tms[i], errs[i] = en.PredictTimed(in)
		}(i, in)
	}
	wg.Wait()
	subEnd := tr.Clock()
	// The request's breakdown is the worst sample: the response could not
	// be written before the slowest queue wait and forward pass finished.
	var qw, cw time.Duration
	batch := 0
	for _, tm := range tms {
		if tm.QueueWait > qw {
			qw = tm.QueueWait
		}
		if tm.Compute > cw {
			cw = tm.Compute
		}
		if tm.Batch > batch {
			batch = tm.Batch
		}
	}
	for _, err := range errs {
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull):
				fail(http.StatusTooManyRequests, api.CodeOverCapacity, "%v", err)
			case errors.Is(err, ErrClosed):
				fail(http.StatusServiceUnavailable, api.CodeUnavailable, "%v", err)
			default:
				fail(http.StatusBadRequest, api.CodeBadRequest, "%v", err)
			}
			return
		}
	}
	if tr != nil {
		tr.AddSpan("predict", subStart, subEnd.Sub(subStart))
		tr.AddSpan("predict/queue", subStart, qw)
		tr.AddSpan("predict/compute", subStart.Add(qw), cw)
		tr.SetBatch(batch)
		tr.SetQueueCompute(qw, cw)
		w.Header().Set(obs.HeaderTrace, tr.ID().String())
		w.Header().Set(obs.HeaderServerTiming, obs.FormatTimings([]obs.Timing{
			{Name: "queue", Value: qw.Microseconds()},
			{Name: "compute", Value: cw.Microseconds()},
			{Name: "batch", Value: int64(batch)},
			{Name: "total", Value: subEnd.Sub(subStart).Microseconds()},
		}))
	}
	// The policy restricts the response after the full forward pass ran —
	// defenses change what leaves the server, never the computation.
	mode := pol.Apply(preds)
	if req.OmitScores {
		omitScores(preds)
	}
	api.WriteJSON(w, http.StatusOK, api.PredictResponse{
		API: api.Version, Model: en.Name, Digest: en.Digest, Mode: mode, Predictions: preds,
	})
	s.finishPredict(tr, client, http.StatusOK, "")
}

// finishPredict closes out one predict request: per-client accounting
// (always), then — when tracing — the finished record goes to the trace
// buffer and the access log.
func (s *Server) finishPredict(tr *obs.RequestTrace, client string, status int, errMsg string) {
	s.clientReqs.Get(client).Inc()
	if status >= 400 {
		s.clientErrs.Get(client).Inc()
	}
	if tr == nil {
		return
	}
	rec := tr.Finish(status, errMsg)
	s.clientLat.Observe(client, float64(rec.DurMicros)/1e6)
	s.traces.Add(rec)
	s.accessLog.Log(rec)
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, http.StatusOK, s.traces.Snapshot())
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, http.StatusOK, s.detector.Report())
}

type modelInfo struct {
	Name       string  `json:"name"`
	Digest     string  `json:"digest"`
	Quantized  bool    `json:"quantized"`
	Native     bool    `json:"native"`
	Params     int     `json:"params"`
	SizeBytes  int     `json:"size_bytes"`
	RawBytes   int     `json:"raw_bytes"`
	Ratio      float64 `json:"compression_ratio"`
	Resident   int     `json:"resident_bytes"`
	InputShape []int   `json:"input_shape"`
	Classes    int     `json:"classes"`
}

func entryInfo(en *Entry) modelInfo {
	return modelInfo{
		Name:       en.Name,
		Digest:     en.Digest,
		Quantized:  en.Quantized,
		Native:     en.Native,
		Params:     en.Params,
		SizeBytes:  en.Size.TotalBytes(),
		RawBytes:   en.Size.RawBytes,
		Ratio:      en.Size.Ratio(),
		Resident:   en.ResidentBytes(),
		InputShape: en.Model().InputShape,
		Classes:    en.Model().Classes,
	}
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.List()
	infos := make([]modelInfo, len(entries))
	for i, en := range entries {
		infos[i] = entryInfo(en)
	}
	api.WriteJSON(w, http.StatusOK, map[string]any{"models": infos})
}

type auditRequest struct {
	// Bounds override the server's default group bounds; Threshold <= 0
	// uses attack.DefaultDetectionThreshold.
	Bounds    []int   `json:"bounds,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
}

type auditResponse struct {
	Model      string       `json:"model"`
	Digest     string       `json:"digest"`
	Quantized  bool         `json:"quantized"`
	Threshold  float64      `json:"threshold"`
	Global     float64      `json:"global"`
	PerGroup   []auditGroup `json:"per_group"`
	Suspicious bool         `json:"suspicious"`
	Verdict    string       `json:"verdict"`
}

type auditGroup struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// handleModelOp routes POST /v1/models/{name}:{op} through the op
// dispatch table.
func (s *Server) handleModelOp(w http.ResponseWriter, r *http.Request) {
	api.DispatchModelOp(w, r, r.PathValue("nameop"), s.ops)
}

func (s *Server) opAudit(w http.ResponseWriter, r *http.Request, name string) {
	en, found := s.reg.Get(name)
	if !found {
		api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "", "unknown model %q", name)
		return
	}
	var req auditRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "", "bad request body: %v", err)
			return
		}
	}
	bounds := req.Bounds
	if bounds == nil {
		bounds = s.auditBounds
	}
	// The same detection pass dacextract -audit runs offline: weight reads
	// only, so it is safe alongside in-flight forward passes. Native
	// entries hold no float weights, so the audit dequantizes a private
	// copy from the retained release record.
	am, err := en.AuditModel()
	if err != nil {
		api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, "", "%v", err)
		return
	}
	rep := attack.AuditModel(am, bounds, req.Threshold)
	resp := auditResponse{
		Model:      en.Name,
		Digest:     en.Digest,
		Quantized:  rep.Quantized,
		Threshold:  rep.Threshold,
		Global:     rep.Global,
		Suspicious: rep.Suspicious,
		Verdict:    "no distributional anomaly detected",
	}
	if rep.Suspicious {
		resp.Verdict = "SUSPICIOUS: weight distribution is far from benign-Gaussian"
	}
	for _, g := range rep.PerGroup {
		resp.PerGroup = append(resp.PerGroup, auditGroup{Name: g.Name, Score: g.Score})
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

type loadRequest struct {
	// Digest names the release in the registry's artifact store (hex
	// SHA-256 of the released file bytes).
	Digest string `json:"digest"`
}

// opLoad is the replica side of digest-based model distribution: it pulls
// the release named by digest from the attached artifact store and
// hot-registers it under name, so a gateway can roll a fleet onto new
// weights without any replica ever seeing a file path. The serving mode
// follows ModeAuto (Options.NativeQuant decides, like startup loads).
func (s *Server) opLoad(w http.ResponseWriter, r *http.Request, name string) {
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "", "bad request body: %v", err)
		return
	}
	if req.Digest == "" {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "", "digest must be set")
		return
	}
	en, err := s.reg.LoadDigest(name, req.Digest, ModeAuto)
	switch {
	case err == nil:
		api.WriteJSON(w, http.StatusOK, entryInfo(en))
	case errors.Is(err, ErrNoStore):
		api.WriteError(w, http.StatusNotImplemented, api.CodeNotImplemented, "", "%v", err)
	case errors.Is(err, fs.ErrNotExist):
		api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "", "%v", err)
	case errors.Is(err, ErrClosed):
		api.WriteError(w, http.StatusServiceUnavailable, api.CodeUnavailable, "", "%v", err)
	default:
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "", "%v", err)
	}
}

// policyResponse answers both the get and set forms of {name}:policy.
type policyResponse struct {
	Model  string `json:"model"`
	Policy Policy `json:"policy"`
	Active bool   `json:"active"`
}

// opPolicy gets (empty body) or sets (Policy JSON body) the model's
// serving defense policy. Setting validates first, swaps the policy in
// without touching the loaded model or its engine, and re-arms every
// client's query budget for the model from zero.
func (s *Server) opPolicy(w http.ResponseWriter, r *http.Request, name string) {
	if r.ContentLength == 0 {
		pol := s.reg.PolicyFor(name)
		api.WriteJSON(w, http.StatusOK, policyResponse{Model: name, Policy: pol, Active: pol.Active()})
		return
	}
	var p Policy
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "", "bad request body: %v", err)
		return
	}
	if err := s.reg.SetPolicy(name, p); err != nil {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "", "%v", err)
		return
	}
	s.budget.Reset(name)
	api.WriteJSON(w, http.StatusOK, policyResponse{Model: name, Policy: p, Active: p.Active()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"models": len(s.reg.List()),
	})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	switch s.readiness.Load() {
	case readyServing:
		api.WriteJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	case readyDraining:
		api.WriteJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
	default:
		api.WriteJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "starting"})
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"http_requests": s.httpRequests.Value(),
		"models":        s.reg.Stats(),
		"skipped":       s.reg.SkippedCount(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.reg.Options().Obs
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WritePrometheus(w)
}
