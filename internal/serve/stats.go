package serve

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// DefaultLatencyBuckets are the per-batch forward-latency histogram bounds
// (seconds) engines use unless Options.LatencyBuckets overrides them:
// 0.5ms doubling up to ~1s.
var DefaultLatencyBuckets = obs.ExpBuckets(0.0005, 2, 12)

// EngineStats tracks one model engine's serving counters on an obs
// registry. Every engine owns fresh metric instances — updates are
// lock-free atomics, so the hot path never contends with /statsz or
// /metricsz readers — and publishes them under model-labeled series names
// with replace semantics: a hot-swapped engine's series restart from zero
// (an ordinary counter reset to a scraper) while the old engine keeps its
// detached instances until it drains.
type EngineStats struct {
	reg *obs.Registry
	// series maps registered name → the instance this engine registered,
	// for identity-checked unregistration (Registry.Remove): if a hot swap
	// already replaced the registration, unregister leaves it alone.
	series map[string]any

	accepted *obs.Counter // requests that made it into the queue
	served   *obs.Counter // requests answered with a prediction
	rejected *obs.Counter // requests fast-failed with ErrQueueFull
	errored  *obs.Counter // requests answered with a model error

	// batchSize has one exact bucket per size 1..MaxBatch, so the
	// /statsz batch_hist map is reconstructed without loss.
	batchSize *obs.Histogram
	// latency holds per-batch forward latency in seconds.
	latency *obs.Histogram
}

func newEngineStats(model string, opts Options) *EngineStats {
	reg := opts.Obs
	if reg == nil {
		reg = obs.Default
	}
	lat := opts.LatencyBuckets
	if lat == nil {
		lat = DefaultLatencyBuckets
	}
	s := &EngineStats{
		reg:       reg,
		series:    map[string]any{},
		accepted:  obs.NewCounter(),
		served:    obs.NewCounter(),
		rejected:  obs.NewCounter(),
		errored:   obs.NewCounter(),
		batchSize: obs.NewHistogram(obs.LinearBuckets(1, 1, opts.MaxBatch)),
		latency:   obs.NewHistogram(lat),
	}
	lbl := ""
	if model != "" {
		lbl = fmt.Sprintf(`{model=%q}`, model)
	}
	for name, c := range map[string]*obs.Counter{
		"serve_requests_accepted_total" + lbl: s.accepted,
		"serve_requests_served_total" + lbl:   s.served,
		"serve_requests_rejected_total" + lbl: s.rejected,
		"serve_requests_errored_total" + lbl:  s.errored,
	} {
		reg.RegisterCounter(name, c)
		s.series[name] = c
	}
	for name, h := range map[string]*obs.Histogram{
		"serve_batch_size" + lbl:            s.batchSize,
		"serve_batch_latency_seconds" + lbl: s.latency,
	} {
		reg.RegisterHistogram(name, h)
		s.series[name] = h
	}
	return s
}

// unregister removes this engine's series from the shared registry. The
// identity check leaves a hot-swap replacement's series (same names, newer
// instances) in place.
func (s *EngineStats) unregister() {
	for name, m := range s.series {
		s.reg.Unregister(name, m)
	}
}

func (s *EngineStats) recordAccepted() { s.accepted.Inc() }

func (s *EngineStats) recordRejected() { s.rejected.Inc() }

func (s *EngineStats) recordBatch(size int, lat time.Duration) {
	s.served.Add(int64(size))
	s.batchSize.Observe(float64(size))
	s.latency.Observe(lat.Seconds())
}

func (s *EngineStats) recordError(size int) { s.errored.Add(int64(size)) }

// Snapshot is the JSON form of one engine's counters.
type Snapshot struct {
	// Accepted counts requests that entered the queue; Served of those were
	// answered with predictions, Errored with model errors. Rejected counts
	// backpressure fast-failures (429s).
	Accepted int64 `json:"accepted"`
	Served   int64 `json:"served"`
	Errored  int64 `json:"errored,omitempty"`
	Rejected int64 `json:"rejected"`
	// Batches is the number of forward passes; BatchHist maps batch size to
	// how many passes ran at that size (zero-count sizes omitted).
	Batches   int64         `json:"batches"`
	BatchHist map[int]int64 `json:"batch_hist,omitempty"`
	MeanBatch float64       `json:"mean_batch"`
	// QueueDepth is the queue length at snapshot time.
	QueueDepth int `json:"queue_depth"`
	// MeanLatencyMS and MaxLatencyMS describe per-batch forward latency.
	MeanLatencyMS float64 `json:"mean_latency_ms"`
	MaxLatencyMS  float64 `json:"max_latency_ms"`
}

func (s *EngineStats) snapshot(queueDepth int) Snapshot {
	bh := s.batchSize.Snapshot()
	lh := s.latency.Snapshot()
	snap := Snapshot{
		Accepted:   s.accepted.Value(),
		Served:     s.served.Value(),
		Errored:    s.errored.Value(),
		Rejected:   s.rejected.Value(),
		Batches:    bh.Count,
		QueueDepth: queueDepth,
	}
	// The size histogram's buckets are exact (bound i+1 holds size i+1);
	// the overflow bucket stays empty because flush never exceeds MaxBatch.
	for i, n := range bh.Counts[:len(bh.Bounds)] {
		if n > 0 {
			if snap.BatchHist == nil {
				snap.BatchHist = make(map[int]int64)
			}
			snap.BatchHist[i+1] = n
		}
	}
	if snap.Batches > 0 {
		snap.MeanBatch = float64(snap.Served+snap.Errored) / float64(snap.Batches)
	}
	if lh.Count > 0 {
		snap.MeanLatencyMS = lh.Sum / float64(lh.Count) * 1e3
		snap.MaxLatencyMS = lh.Max * 1e3
	}
	return snap
}
