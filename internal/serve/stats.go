package serve

import (
	"sync"
	"time"
)

// EngineStats tracks one model engine's serving counters. All methods are
// safe for concurrent use; reads get a consistent Snapshot.
type EngineStats struct {
	mu        sync.Mutex
	accepted  int64 // requests that made it into the queue
	served    int64 // requests answered with a prediction
	rejected  int64 // requests fast-failed with ErrQueueFull
	errored   int64 // requests answered with a model error
	batches   int64
	batchHist []int64 // batchHist[k] counts batches of size k+1
	totalLat  time.Duration
	maxLat    time.Duration
}

func newEngineStats(maxBatch int) *EngineStats {
	return &EngineStats{batchHist: make([]int64, maxBatch)}
}

func (s *EngineStats) recordAccepted() {
	s.mu.Lock()
	s.accepted++
	s.mu.Unlock()
}

func (s *EngineStats) recordRejected() {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

func (s *EngineStats) recordBatch(size int, lat time.Duration) {
	s.mu.Lock()
	s.batches++
	s.served += int64(size)
	if size >= 1 && size <= len(s.batchHist) {
		s.batchHist[size-1]++
	}
	s.totalLat += lat
	if lat > s.maxLat {
		s.maxLat = lat
	}
	s.mu.Unlock()
}

func (s *EngineStats) recordError(size int) {
	s.mu.Lock()
	s.errored += int64(size)
	s.mu.Unlock()
}

// Snapshot is the JSON form of one engine's counters.
type Snapshot struct {
	// Accepted counts requests that entered the queue; Served of those were
	// answered with predictions, Errored with model errors. Rejected counts
	// backpressure fast-failures (429s).
	Accepted int64 `json:"accepted"`
	Served   int64 `json:"served"`
	Errored  int64 `json:"errored,omitempty"`
	Rejected int64 `json:"rejected"`
	// Batches is the number of forward passes; BatchHist maps batch size to
	// how many passes ran at that size (zero-count sizes omitted).
	Batches   int64         `json:"batches"`
	BatchHist map[int]int64 `json:"batch_hist,omitempty"`
	MeanBatch float64       `json:"mean_batch"`
	// QueueDepth is the queue length at snapshot time.
	QueueDepth int `json:"queue_depth"`
	// MeanLatencyMS and MaxLatencyMS describe per-batch forward latency.
	MeanLatencyMS float64 `json:"mean_latency_ms"`
	MaxLatencyMS  float64 `json:"max_latency_ms"`
}

func (s *EngineStats) snapshot(queueDepth int) Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Accepted:   s.accepted,
		Served:     s.served,
		Errored:    s.errored,
		Rejected:   s.rejected,
		Batches:    s.batches,
		QueueDepth: queueDepth,
	}
	for i, n := range s.batchHist {
		if n > 0 {
			if snap.BatchHist == nil {
				snap.BatchHist = make(map[int]int64)
			}
			snap.BatchHist[i+1] = n
		}
	}
	if s.batches > 0 {
		snap.MeanBatch = float64(s.served+s.errored) / float64(s.batches)
		snap.MeanLatencyMS = float64(s.totalLat.Microseconds()) / float64(s.batches) / 1e3
		snap.MaxLatencyMS = float64(s.maxLat.Microseconds()) / 1e3
	}
	return snap
}
