package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/obs"
)

func testStore(t testing.TB) *artifact.Store {
	t.Helper()
	store, err := artifact.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func TestPublishReleaseAndLoadDigest(t *testing.T) {
	store := testStore(t)
	path := writeReleased(t, 40, true)
	digest, err := PublishReleaseFile(store, path)
	if err != nil {
		t.Fatal(err)
	}
	// The published key is the file's own content hash.
	raw := fileBytes(t, path)
	if !store.Has(ReleaseKind, digest) {
		t.Fatal("published release not in store")
	}
	// Publishing again is an idempotent no-op.
	if again, err := PublishRelease(store, bytes.NewReader(raw)); err != nil || again != digest {
		t.Fatalf("republish: digest %s err %v", again, err)
	}

	r := NewRegistry(Options{MaxBatch: 4, QueueDepth: 16, FlushEvery: -1, Threads: 1, Store: store})
	defer r.Close()
	en, err := r.LoadDigest("prod", digest, ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if en.Digest != digest {
		t.Fatalf("entry digest %s != requested %s", en.Digest, digest)
	}
	// A digest-pulled model answers bit-identically to the file-loaded one.
	ref := referenceModel(t, path)
	in := testInputs(1, ref.InputLen(), 41)[0]
	want, err := ref.EvalBatch([][]float64{in})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		pred, err := en.Predict(in)
		if err != nil {
			t.Error(err)
			return
		}
		for j, v := range pred.Logits {
			if v != want[0][j] {
				t.Errorf("logit %d: %v != %v", j, v, want[0][j])
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
			en.Tick()
		}
	}
}

func TestPublishReleaseRejectsGarbage(t *testing.T) {
	store := testStore(t)
	if _, err := PublishRelease(store, strings.NewReader("not a release")); err == nil {
		t.Fatal("garbage published as a release")
	}
	if keys, _ := store.Keys(ReleaseKind); len(keys) != 0 {
		t.Fatalf("store has %d releases after rejected publish", len(keys))
	}
}

func TestLoadDigestErrors(t *testing.T) {
	store := testStore(t)
	digest, err := PublishReleaseFile(store, writeReleased(t, 42, false))
	if err != nil {
		t.Fatal(err)
	}

	// No store attached.
	r := NewRegistry(Options{FlushEvery: -1, Threads: 1})
	defer r.Close()
	if _, err := r.LoadDigest("prod", digest, ModeAuto); !IsNoStore(err) {
		t.Fatalf("no-store load error = %v, want ErrNoStore", err)
	}

	// Unknown digest: the error names what is available.
	rs := NewRegistry(Options{FlushEvery: -1, Threads: 1, Store: store})
	defer rs.Close()
	missing := strings.Repeat("ab", 32)
	_, err = rs.LoadDigest("prod", missing, ModeAuto)
	if err == nil {
		t.Fatal("unknown digest loaded")
	}
	if !strings.Contains(err.Error(), digest[:12]) {
		t.Fatalf("missing-digest error does not list available releases: %v", err)
	}

	// Corrupt store entry: load fails and the entry is evicted.
	bad := strings.Repeat("cd", 32)
	if err := store.Put(ReleaseKind, bad, func(w io.Writer) error {
		_, err := w.Write([]byte("garbage bytes"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.LoadDigest("prod", bad, ModeAuto); err == nil {
		t.Fatal("corrupt entry loaded")
	}
	if store.Has(ReleaseKind, bad) {
		t.Fatal("corrupt entry not evicted")
	}

	// Mis-keyed entry (valid release under the wrong digest): rejected and
	// evicted — the digest contract is what makes fleet-wide byte-identity
	// provable, so a wrong key must never load.
	wrongKey := strings.Repeat("ef", 32)
	raw := fileBytes(t, writeReleased(t, 43, false))
	if err := store.Put(ReleaseKind, wrongKey, func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.LoadDigest("prod", wrongKey, ModeAuto); err == nil || !strings.Contains(err.Error(), "hashes to") {
		t.Fatalf("mis-keyed entry error = %v", err)
	}
	if store.Has(ReleaseKind, wrongKey) {
		t.Fatal("mis-keyed entry not evicted")
	}
}

// IsNoStore reports whether err wraps ErrNoStore (test readability).
func IsNoStore(err error) bool {
	return err != nil && strings.Contains(err.Error(), ErrNoStore.Error())
}

func TestHTTPLoadByDigest(t *testing.T) {
	store := testStore(t)
	path := writeReleased(t, 44, true)
	digest, err := PublishReleaseFile(store, path)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MaxBatch: 4, QueueDepth: 16, FlushEvery: 200 * time.Microsecond, Threads: 1, Store: store}
	_, ts := httpServer(t, opts)

	status, body := postJSON(t, ts.URL+"/v1/models/prod:load", loadRequest{Digest: digest})
	if status != http.StatusOK {
		t.Fatalf("load status %d: %s", status, body["error"])
	}
	var info modelInfo
	raw, _ := json.Marshal(body)
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "prod" || info.Digest != digest || !info.Quantized {
		t.Fatalf("load answered %+v", info)
	}

	// The loaded model serves.
	ref := referenceModel(t, path)
	in := testInputs(1, ref.InputLen(), 45)[0]
	if status, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "prod", Input: in}); status != http.StatusOK {
		t.Fatalf("predict after digest load: %d (%s)", status, body["error"])
	}

	// Unknown digest → 404; empty digest → 400.
	if status, _ := postJSON(t, ts.URL+"/v1/models/prod:load", loadRequest{Digest: strings.Repeat("09", 32)}); status != http.StatusNotFound {
		t.Fatalf("unknown digest status %d, want 404", status)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/models/prod:load", loadRequest{}); status != http.StatusBadRequest {
		t.Fatalf("empty digest status %d, want 400", status)
	}

	// No store attached → 501.
	_, tsNoStore := httpServer(t, Options{MaxBatch: 4, QueueDepth: 16, FlushEvery: -1, Threads: 1})
	if status, _ := postJSON(t, tsNoStore.URL+"/v1/models/prod:load", loadRequest{Digest: digest}); status != http.StatusNotImplemented {
		t.Fatalf("no-store load status %d, want 501", status)
	}
}

func TestHTTPReadyzLifecycle(t *testing.T) {
	opts := Options{MaxBatch: 4, QueueDepth: 16, FlushEvery: -1, Threads: 1}
	r := NewRegistry(opts)
	defer r.Close()
	srv := NewServer(r, nil)
	// Not ready while starting (initial loads still running)...
	req := func() int {
		rec := newRecorder()
		srv.Handler().ServeHTTP(rec, getReq("/readyz"))
		return rec.status
	}
	if got := req(); got != http.StatusServiceUnavailable {
		t.Fatalf("starting readyz = %d, want 503", got)
	}
	// ...ready once loads complete...
	srv.SetReady()
	if got := req(); got != http.StatusOK {
		t.Fatalf("ready readyz = %d, want 200", got)
	}
	// ...and not ready again during drain, while healthz stays 200 (alive).
	srv.StartDrain()
	if got := req(); got != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", got)
	}
	rec := newRecorder()
	srv.Handler().ServeHTTP(rec, getReq("/healthz"))
	if rec.status != http.StatusOK {
		t.Fatalf("draining healthz = %d, want 200", rec.status)
	}
	// SetReady after StartDrain must not resurrect a draining server.
	srv.SetReady()
	if got := req(); got != http.StatusServiceUnavailable {
		t.Fatalf("post-drain SetReady readyz = %d, want 503", got)
	}
}

// Minimal recorder (avoids importing httptest just for status codes).
type recorder struct {
	status int
	header http.Header
	buf    bytes.Buffer
}

func newRecorder() *recorder            { return &recorder{status: http.StatusOK, header: http.Header{}} }
func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) WriteHeader(code int) {
	r.status = code
}
func (r *recorder) Write(p []byte) (int, error) { return r.buf.Write(p) }

func getReq(path string) *http.Request {
	req, err := http.NewRequest(http.MethodGet, path, nil)
	if err != nil {
		panic(err)
	}
	return req
}

// LoadDir skip reasons surface as a count in /statsz and accumulate on
// the registry.
func TestStatszSkippedCount(t *testing.T) {
	dir := t.TempDir()
	// One real release, one junk file.
	raw := fileBytes(t, writeReleased(t, 46, false))
	if err := os.WriteFile(filepath.Join(dir, "real.bin"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.txt"), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	opts := Options{MaxBatch: 4, QueueDepth: 16, FlushEvery: -1, Threads: 1, Obs: reg}
	r, ts := httpServer(t, opts)
	entries, skipped, err := r.LoadDir(dir, ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || len(skipped) != 1 {
		t.Fatalf("loaded %d skipped %d, want 1/1", len(entries), len(skipped))
	}
	if r.SkippedCount() != 1 || len(r.SkippedEntries()) != 1 {
		t.Fatalf("registry skipped count %d", r.SkippedCount())
	}
	if got := r.SkippedEntries()[0]; !strings.HasSuffix(got.Path, "junk.txt") || got.Reason == "" {
		t.Fatalf("skipped entry %+v", got)
	}
	if got := reg.Counter("serve_load_skipped_total").Value(); got != 1 {
		t.Fatalf("serve_load_skipped_total = %d, want 1", got)
	}

	status, body := getJSON(t, ts.URL+"/statsz")
	if status != http.StatusOK {
		t.Fatalf("statsz status %d", status)
	}
	if string(body["skipped"]) != "1" {
		t.Fatalf("statsz skipped = %s, want 1", body["skipped"])
	}
}
