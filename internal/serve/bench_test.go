package serve

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"
)

// emitBench, when set to a path, makes TestEmitServeBench measure serving
// throughput across MaxBatch settings and write the numbers there as JSON.
// Wired to `make serve-bench`; empty (the default) skips the test so the
// regular suite stays fast and timing-free.
var emitBench = flag.String("emit-bench", "", "write serving throughput numbers (BENCH_serve.json) to this path")

// throughput drives total requests through a freshly loaded model from
// `clients` goroutines and returns requests/sec and the mean batch size the
// engine settled on.
func throughput(tb testing.TB, path string, maxBatch, clients, total int) (reqPerSec, meanBatch float64) {
	tb.Helper()
	r := NewRegistry(Options{
		MaxBatch:   maxBatch,
		QueueDepth: 4 * clients,
		FlushEvery: 200 * time.Microsecond,
		Threads:    runtime.GOMAXPROCS(0),
	})
	defer r.Close()
	en, err := r.LoadFile("bench", path)
	if err != nil {
		tb.Fatal(err)
	}
	in := testInputs(1, en.Model().InputLen(), 90)[0]

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				// Backpressure just means retry for a throughput probe.
				for {
					if _, err := en.Predict(in); err == nil {
						break
					}
				}
			}
		}(total / clients)
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := en.Stats()
	served := float64(snap.Served)
	return served / elapsed.Seconds(), snap.MeanBatch
}

// BenchmarkServePredict reports end-to-end request latency through the full
// submit→batch→forward→respond path at several coalescing widths.
func BenchmarkServePredict(b *testing.B) {
	path := writeReleased(b, 91, true)
	for _, maxBatch := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("maxbatch=%d", maxBatch), func(b *testing.B) {
			r := NewRegistry(Options{
				MaxBatch:   maxBatch,
				QueueDepth: 256,
				FlushEvery: 200 * time.Microsecond,
				Threads:    runtime.GOMAXPROCS(0),
			})
			defer r.Close()
			en, err := r.LoadFile("bench", path)
			if err != nil {
				b.Fatal(err)
			}
			in := testInputs(1, en.Model().InputLen(), 92)[0]
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := en.Predict(in); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

type benchPoint struct {
	MaxBatch  int     `json:"max_batch"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	ReqPerSec float64 `json:"req_per_sec"`
	MeanBatch float64 `json:"mean_batch"`
}

type benchReport struct {
	Threads int          `json:"threads"`
	Notes   string       `json:"notes,omitempty"`
	Points  []benchPoint `json:"points"`
}

func TestEmitServeBench(t *testing.T) {
	if *emitBench == "" {
		t.Skip("pass -emit-bench=<path> (make serve-bench) to measure serving throughput")
	}
	path := writeReleased(t, 93, true)
	const clients, total = 16, 512
	rep := benchReport{
		Threads: runtime.GOMAXPROCS(0),
		Notes: "mean_batch previously saturated at 12.8 with req/s dipping at " +
			"max_batch=16: Go selects randomly among ready channel cases, so " +
			"the flush tick could preempt queued requests and cut partial " +
			"batches under sustained load. The engine now drains the queue " +
			"non-blocking after each receive and before honoring a tick " +
			"(Engine.drainQueue), so full batches form whenever the queue has " +
			"them.",
	}
	for _, maxBatch := range []int{1, 2, 4, 8, 16} {
		rps, mean := throughput(t, path, maxBatch, clients, total)
		rep.Points = append(rep.Points, benchPoint{
			MaxBatch: maxBatch, Clients: clients, Requests: total,
			ReqPerSec: rps, MeanBatch: mean,
		})
		t.Logf("max_batch=%2d  %8.0f req/s  mean batch %.2f", maxBatch, rps, mean)
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*emitBench, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", *emitBench)
}
