package serve

import (
	"sync"
	"testing"

	"repro/internal/compute"
)

// The serving-side determinism contract, in the style of
// internal/nn/determinism_test.go: many parallel clients hammering one
// registry model must each get responses bit-identical to a serial
// single-sample forward pass of an offline import of the same released
// file — whatever batches their requests landed in and whatever the
// engine's thread count. Run under -race by `make race-fast`.
func TestConcurrentPredictBitIdenticalToSerial(t *testing.T) {
	path := writeReleased(t, 50, true)

	// Offline reference: serial context, one sample at a time.
	ref := referenceModel(t, path)
	ref.SetCtx(compute.Serial())
	const clients = 8
	const perClient = 6
	inputs := testInputs(clients*perClient, ref.InputLen(), 51)
	want := make([][]float64, len(inputs))
	for i, in := range inputs {
		rows, err := ref.EvalBatch([][]float64{in})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rows[0]
	}

	for _, threads := range []int{1, 3} {
		opts := manualOpts(5, 64) // deliberately lopsided vs request count
		opts.Threads = threads
		r := NewRegistry(opts)
		en, err := r.LoadFile("demo", path)
		if err != nil {
			t.Fatal(err)
		}

		got := make([][]float64, len(inputs))
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for k := 0; k < perClient; k++ {
					i := c*perClient + k
					pred, err := en.Predict(inputs[i])
					if err != nil {
						t.Errorf("client %d request %d: %v", c, k, err)
						return
					}
					got[i] = pred.Logits
				}
			}(c)
		}
		done := make(chan struct{})
		go func() {
			wg.Wait()
			close(done)
		}()
	tickLoop:
		for {
			select {
			case <-done:
				break tickLoop
			default:
				en.Tick()
			}
		}

		for i := range inputs {
			if got[i] == nil {
				t.Fatalf("threads=%d: request %d unanswered", threads, i)
			}
			for j, v := range got[i] {
				if v != want[i][j] {
					t.Fatalf("threads=%d: request %d logit %d: served %v != serial %v",
						threads, i, j, v, want[i][j])
				}
			}
		}

		snap := en.Stats()
		if snap.Served != int64(len(inputs)) {
			t.Fatalf("threads=%d: served %d, want %d", threads, snap.Served, len(inputs))
		}
		var histTotal int64
		for size, n := range snap.BatchHist {
			if size > 5 {
				t.Fatalf("threads=%d: batch of size %d exceeds MaxBatch 5", threads, size)
			}
			histTotal += int64(size) * n
		}
		if histTotal != int64(len(inputs)) {
			t.Fatalf("threads=%d: histogram covers %d samples, want %d", threads, histTotal, len(inputs))
		}
		r.Close()
	}
}
