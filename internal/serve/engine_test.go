package serve

import (
	"errors"
	"runtime"
	"sync"
	"testing"
)

// submitAll submits every input on its own goroutine and returns the
// predictions and errors once all have been answered. tickUntilDone keeps
// ticking the engine so tick-flushed batches make progress without any
// timing assumptions.
func submitAll(e *Engine, inputs [][]float64, tickUntilDone bool) ([]Prediction, []error) {
	preds := make([]Prediction, len(inputs))
	errs := make([]error, len(inputs))
	var wg sync.WaitGroup
	for i, in := range inputs {
		wg.Add(1)
		go func(i int, in []float64) {
			defer wg.Done()
			preds[i], errs[i] = e.Submit(in)
		}(i, in)
	}
	if tickUntilDone {
		done := make(chan struct{})
		go func() {
			wg.Wait()
			close(done)
		}()
		for {
			select {
			case <-done:
				return preds, errs
			default:
				e.Tick()
			}
		}
	}
	wg.Wait()
	return preds, errs
}

// A full batch must flush on size alone — no tick, no timer.
func TestEngineFlushesOnBatchSize(t *testing.T) {
	m := testModel(1)
	e := newEngine(m, "test", manualOpts(4, 16).withDefaults())
	defer e.Close()

	inputs := testInputs(4, m.InputLen(), 10)
	preds, errs := submitAll(e, inputs, false)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if len(preds[i].Probs) != 4 || len(preds[i].Logits) != 4 {
			t.Fatalf("submit %d: malformed prediction %+v", i, preds[i])
		}
	}
	snap := e.Stats()
	if snap.Batches != 1 || snap.BatchHist[4] != 1 {
		t.Fatalf("expected one size-4 batch, got %+v", snap)
	}
	if snap.Served != 4 || snap.Accepted != 4 {
		t.Fatalf("expected 4 served/accepted, got %+v", snap)
	}
}

// A partial batch must flush on an explicit tick.
func TestEngineFlushesOnTick(t *testing.T) {
	m := testModel(2)
	e := newEngine(m, "test", manualOpts(8, 16).withDefaults())
	defer e.Close()

	inputs := testInputs(3, m.InputLen(), 11)
	_, errs := submitAll(e, inputs, true)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	snap := e.Stats()
	if snap.Served != 3 {
		t.Fatalf("expected 3 served, got %+v", snap)
	}
	var histTotal int64
	for size, n := range snap.BatchHist {
		histTotal += int64(size) * n
	}
	if histTotal != 3 {
		t.Fatalf("batch histogram accounts for %d samples, want 3: %+v", histTotal, snap)
	}
}

// When the engine is busy and the queue is full, Submit must fail fast
// with ErrQueueFull instead of blocking — the 429 backpressure path.
func TestEngineBackpressure(t *testing.T) {
	m := testModel(3)
	opts := manualOpts(2, 2).withDefaults()
	e := newEngine(m, "test", opts)
	defer e.Close()

	inFlush := make(chan struct{})
	release := make(chan struct{})
	var hooked sync.Once
	e.beforeFlush = func(int) {
		hooked.Do(func() {
			close(inFlush)
			<-release
		})
	}

	// Two submissions trigger a size flush, which stalls in the hook.
	first := testInputs(2, m.InputLen(), 12)
	var wg sync.WaitGroup
	for _, in := range first {
		wg.Add(1)
		go func(in []float64) {
			defer wg.Done()
			if _, err := e.Submit(in); err != nil {
				t.Errorf("stalled batch submit: %v", err)
			}
		}(in)
	}
	<-inFlush

	// The engine goroutine is stalled, so these fill the queue...
	queued := testInputs(2, m.InputLen(), 13)
	for _, in := range queued {
		wg.Add(1)
		go func(in []float64) {
			defer wg.Done()
			if _, err := e.Submit(in); err != nil {
				t.Errorf("queued submit: %v", err)
			}
		}(in)
	}
	for e.QueueLen() < 2 {
		runtime.Gosched()
	}
	// ...and the next submission must bounce.
	if _, err := e.Submit(testInputs(1, m.InputLen(), 14)[0]); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if snap := e.Stats(); snap.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", snap.Rejected)
	}

	close(release)
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			return
		default:
			e.Tick()
		}
	}
}

// Close must answer every accepted request (drain), then reject new ones.
func TestEngineCloseDrains(t *testing.T) {
	m := testModel(4)
	e := newEngine(m, "test", manualOpts(8, 16).withDefaults())

	inputs := testInputs(3, m.InputLen(), 15)
	preds := make([]Prediction, len(inputs))
	errs := make([]error, len(inputs))
	var wg sync.WaitGroup
	for i, in := range inputs {
		wg.Add(1)
		go func(i int, in []float64) {
			defer wg.Done()
			preds[i], errs[i] = e.Submit(in)
		}(i, in)
	}
	// Wait until all three are accepted (in the queue or already pulled
	// into the engine's pending batch), then close: the drain pass must
	// answer them without any tick.
	for e.Stats().Accepted < 3 {
		runtime.Gosched()
	}
	e.Close()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("drained submit %d: %v", i, err)
		}
		if len(preds[i].Probs) != 4 {
			t.Fatalf("drained submit %d: malformed prediction", i)
		}
	}
	if _, err := e.Submit(inputs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close err = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

// Submissions with the wrong input length fail up front.
func TestEngineRejectsBadInput(t *testing.T) {
	m := testModel(5)
	e := newEngine(m, "test", manualOpts(4, 8).withDefaults())
	defer e.Close()
	if _, err := e.Submit(make([]float64, m.InputLen()+1)); err == nil {
		t.Fatal("expected input-length error")
	}
}
