package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/obs"
)

// TestRouteInventoryGolden pins the replica's whole HTTP surface. A route
// added or removed without updating this list (and the README API table)
// is an unreviewed API change.
func TestRouteInventoryGolden(t *testing.T) {
	reg := NewRegistry(manualOpts(4, 16))
	defer reg.Close()
	srv := NewServer(reg, nil)
	want := []string{
		"POST /v1/predict",
		"GET /v1/models",
		"POST /v1/models/{nameop}",
		"GET /healthz",
		"GET /readyz",
		"GET /statsz",
		"GET /tracez",
		"GET /detectz",
		"GET /metricsz",
	}
	if got := srv.Routes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("route inventory changed:\n got %q\nwant %q", got, want)
	}

	// Walk the inventory against a live server: every declared pattern must
	// be backed by a real handler, never the mux's text 404/405 page.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, route := range want {
		method, path, _ := strings.Cut(route, " ")
		path = strings.ReplaceAll(path, "{nameop}", "ghost:audit")
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusMethodNotAllowed || string(body) == "404 page not found\n" {
			t.Errorf("%s: answered by the mux, not a handler (status %d)", route, resp.StatusCode)
		}
	}
}

// TestErrorEnvelopeGolden pins the exact bytes of the unified error
// envelope as served end-to-end — the same shape internal/api's golden
// pins at the type level, and the gateway's golden pins on its side.
func TestErrorEnvelopeGolden(t *testing.T) {
	reg := NewRegistry(manualOpts(4, 16))
	defer reg.Close()
	srv := NewServer(reg, nil)
	srv.EnableTracing(false) // untraced errors omit trace_id: bytes are stable
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name, path, body string
		status           int
		want             string
	}{
		{
			name: "unknown model", path: "/v1/predict",
			body:   `{"model":"ghost","input":[0]}`,
			status: http.StatusNotFound,
			want:   `{"error":"unknown model \"ghost\"","code":"not_found"}` + "\n",
		},
		{
			name: "unsupported api version", path: "/v1/predict",
			body:   `{"api":"v2","model":"ghost","input":[0]}`,
			status: http.StatusBadRequest,
			want:   `{"error":"unsupported api version \"v2\" (this server speaks \"v1\")","code":"unsupported_api"}` + "\n",
		},
		{
			name: "unknown model op", path: "/v1/models/ghost:frobnicate",
			body:   "",
			status: http.StatusNotFound,
			want:   `{"error":"unknown model operation \"ghost:frobnicate\" (want {name}:audit or {name}:load or {name}:policy)","code":"not_found"}` + "\n",
		},
	} {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		if string(raw) != tc.want {
			t.Errorf("%s: envelope drifted:\n got %s\nwant %s", tc.name, raw, tc.want)
		}
	}
}

// TestErrorEnvelopeCarriesTraceID pins the traced variant: the envelope's
// trace_id matches the X-Dac-Trace response header, so a client can quote
// it against /tracez.
func TestErrorEnvelopeCarriesTraceID(t *testing.T) {
	reg := NewRegistry(manualOpts(4, 16))
	defer reg.Close()
	ts := httptest.NewServer(NewServer(reg, nil).Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		bytes.NewReader([]byte(`{"model":"ghost","input":[0]}`)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	e, err := api.ParseError(raw)
	if err != nil {
		t.Fatalf("not an envelope: %v (%s)", err, raw)
	}
	if e.Code != api.CodeNotFound {
		t.Fatalf("code = %q, want %q", e.Code, api.CodeNotFound)
	}
	if e.TraceID == "" || e.TraceID != resp.Header.Get(obs.HeaderTrace) {
		t.Fatalf("trace_id %q does not match %s header %q", e.TraceID, obs.HeaderTrace, resp.Header.Get(obs.HeaderTrace))
	}
}
