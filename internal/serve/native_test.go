package serve

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/modelio"
	"repro/internal/quantize"
)

// predictPred submits one input on its own goroutine and ticks the entry's
// engine until it answers (the flush timer is disabled in manualOpts).
func predictPred(en *Entry, in []float64) (Prediction, error) {
	var pred Prediction
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		pred, err = en.Predict(in)
	}()
	for {
		select {
		case <-done:
			return pred, err
		default:
			en.Tick()
		}
	}
}

// TestNativeLoadBitIdenticalPredictions pins the registry-level acceptance
// criterion: a quantized release served codebook-native answers every
// request bit-identically to the same release served dequantized.
func TestNativeLoadBitIdenticalPredictions(t *testing.T) {
	path := writeReleased(t, 101, true)
	raw := fileBytes(t, path)

	reg := NewRegistry(manualOpts(4, 64))
	defer reg.Close()
	deq, err := reg.LoadWithMode("deq", bytes.NewReader(raw), ModeDequantized)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := reg.LoadWithMode("nat", bytes.NewReader(raw), ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	if deq.Native || !nat.Native {
		t.Fatalf("Native flags: deq=%v nat=%v", deq.Native, nat.Native)
	}
	if deq.Digest != nat.Digest {
		t.Fatal("same bytes produced different digests")
	}
	if deq.Params != nat.Params {
		t.Fatalf("param counts differ: %d vs %d", deq.Params, nat.Params)
	}

	for i, in := range testInputs(8, deq.Model().InputLen(), 102) {
		pd, err := predictPred(deq, in)
		if err != nil {
			t.Fatal(err)
		}
		pn, err := predictPred(nat, in)
		if err != nil {
			t.Fatal(err)
		}
		if pd.Class != pn.Class {
			t.Fatalf("input %d: classes differ: %d vs %d", i, pd.Class, pn.Class)
		}
		for j := range pd.Logits {
			if math.Float64bits(pd.Logits[j]) != math.Float64bits(pn.Logits[j]) {
				t.Fatalf("input %d logit %d: dequantized %v != native %v", i, j, pd.Logits[j], pn.Logits[j])
			}
		}
	}
}

func TestNativeLoadLowerResidentBytes(t *testing.T) {
	path := writeReleased(t, 103, true)
	raw := fileBytes(t, path)
	reg := NewRegistry(manualOpts(4, 64))
	defer reg.Close()
	deq, err := reg.LoadWithMode("deq", bytes.NewReader(raw), ModeDequantized)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := reg.LoadWithMode("nat", bytes.NewReader(raw), ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	dr, nr := deq.ResidentBytes(), nat.ResidentBytes()
	if nr >= dr {
		t.Fatalf("native resident %d bytes, dequantized %d — native must be strictly lower", nr, dr)
	}
}

func TestModeNativeRejectsFullPrecision(t *testing.T) {
	path := writeReleased(t, 104, false)
	reg := NewRegistry(manualOpts(4, 64))
	defer reg.Close()
	if _, err := reg.LoadWithMode("fp", bytes.NewReader(fileBytes(t, path)), ModeNative); err == nil {
		t.Fatal("full-precision release accepted in ModeNative")
	}
}

func TestModeAutoFollowsNativeQuantOption(t *testing.T) {
	qraw := fileBytes(t, writeReleased(t, 105, true))
	fraw := fileBytes(t, writeReleased(t, 106, false))

	off := NewRegistry(manualOpts(4, 64))
	defer off.Close()
	en, err := off.Load("q", bytes.NewReader(qraw))
	if err != nil {
		t.Fatal(err)
	}
	if en.Native {
		t.Fatal("NativeQuant off but quantized release loaded native")
	}

	opts := manualOpts(4, 64)
	opts.NativeQuant = true
	on := NewRegistry(opts)
	defer on.Close()
	if en, err = on.Load("q", bytes.NewReader(qraw)); err != nil {
		t.Fatal(err)
	}
	if !en.Native {
		t.Fatal("NativeQuant on but quantized release loaded dequantized")
	}
	if en, err = on.Load("fp", bytes.NewReader(fraw)); err != nil {
		t.Fatal(err)
	}
	if en.Native {
		t.Fatal("full-precision release loaded native under NativeQuant")
	}
}

// TestNativeAuditModelMatchesDequantized pins the audit path: a native
// entry's AuditModel holds the same float weights a dequantized import
// does, even though the served model released its float storage.
func TestNativeAuditModelMatchesDequantized(t *testing.T) {
	path := writeReleased(t, 107, true)
	reg := NewRegistry(manualOpts(4, 64))
	defer reg.Close()
	nat, err := reg.LoadWithMode("nat", bytes.NewReader(fileBytes(t, path)), ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	am, err := nat.AuditModel()
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceModel(t, path)
	refPs, amPs := ref.Params(), am.Params()
	if len(refPs) != len(amPs) {
		t.Fatalf("param counts differ: %d vs %d", len(refPs), len(amPs))
	}
	for i := range refPs {
		rd, ad := refPs[i].Value.Data(), amPs[i].Value.Data()
		if len(rd) != len(ad) {
			t.Fatalf("%s: lengths differ", refPs[i].Name)
		}
		for j := range rd {
			if math.Float64bits(rd[j]) != math.Float64bits(ad[j]) {
				t.Fatalf("%s[%d]: audit %v != reference %v", refPs[i].Name, j, ad[j], rd[j])
			}
		}
	}
}

// TestLoadDirSniffsMixedArtifacts pins the satellite: one directory mixing
// full-precision releases, quantized releases, bare quantization records,
// and junk loads exactly the servable models and reports the rest.
func TestLoadDirSniffsMixedArtifacts(t *testing.T) {
	dir := t.TempDir()
	cp := func(src, name string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), fileBytes(t, src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cp(writeReleased(t, 108, false), "full.bin")
	qpath := writeReleased(t, 109, true)
	cp(qpath, "quant.model") // extension is irrelevant; the header decides

	// A bare quantization record, written from the quantized release.
	rm, err := modelio.Load(qpath)
	if err != nil {
		t.Fatal(err)
	}
	_, applied, err := modelio.Import(rm)
	if err != nil {
		t.Fatal(err)
	}
	var rec bytes.Buffer
	if err := quantize.EncodeApplied(&rec, quantize.Snapshot(applied)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "record.qap"), rec.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}

	opts := manualOpts(4, 64)
	opts.NativeQuant = true
	reg := NewRegistry(opts)
	defer reg.Close()
	entries, skipped, err := reg.LoadDir(dir, ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(entries))
	}
	byName := map[string]*Entry{}
	for _, en := range entries {
		byName[en.Name] = en
	}
	if en := byName["full"]; en == nil || en.Quantized || en.Native {
		t.Fatalf("full.bin entry wrong: %+v", en)
	}
	if en := byName["quant"]; en == nil || !en.Quantized || !en.Native {
		t.Fatalf("quant.model entry wrong: %+v", en)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped %d files, want 2: %+v", len(skipped), skipped)
	}
	for _, sk := range skipped {
		base := filepath.Base(sk.Path)
		if base != "record.qap" && base != "notes.txt" {
			t.Fatalf("unexpected skip: %+v", sk)
		}
	}
}

func TestLoadDirDuplicateNamesError(t *testing.T) {
	dir := t.TempDir()
	raw := fileBytes(t, writeReleased(t, 110, false))
	for _, name := range []string{"m.bin", "m.model"} {
		if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reg := NewRegistry(manualOpts(4, 64))
	defer reg.Close()
	if _, _, err := reg.LoadDir(dir, ModeAuto); err == nil {
		t.Fatal("duplicate serving names accepted")
	}
}
