package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"strings"
	"testing"
)

func TestRegistryLoadFile(t *testing.T) {
	path := writeReleased(t, 30, true)
	r := NewRegistry(manualOpts(4, 16))
	defer r.Close()

	en, err := r.LoadFile("demo", path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(fileBytes(t, path))
	if en.Digest != hex.EncodeToString(sum[:]) {
		t.Fatalf("digest %s does not hash the file bytes", en.Digest)
	}
	if !en.Quantized {
		t.Fatal("quantized release not flagged")
	}
	if en.Size.TotalBytes() >= en.Size.RawBytes {
		t.Fatalf("quantized size report not compressed: %+v", en.Size)
	}
	got, ok := r.Get("demo")
	if !ok || got != en {
		t.Fatal("Get did not return the loaded entry")
	}
	if list := r.List(); len(list) != 1 || list[0].Name != "demo" {
		t.Fatalf("List = %v", list)
	}
}

func TestRegistryRejectsCorruptFile(t *testing.T) {
	path := writeReleased(t, 31, false)
	raw := fileBytes(t, path)
	r := NewRegistry(manualOpts(4, 16))
	defer r.Close()
	if _, err := r.Load("bad", strings.NewReader(string(raw[:len(raw)/2]))); err == nil {
		t.Fatal("expected error for truncated file")
	}
	if _, err := r.Load("bad", strings.NewReader("junk")); err == nil {
		t.Fatal("expected error for junk file")
	}
	if _, err := r.Load("", strings.NewReader(string(raw))); err == nil {
		t.Fatal("expected error for empty name")
	}
	if len(r.List()) != 0 {
		t.Fatal("failed loads left entries behind")
	}
}

// Hot reload swaps the serving model atomically: the old engine drains and
// rejects later submissions, the new one answers with the new weights.
func TestRegistryHotReload(t *testing.T) {
	pathA := writeReleased(t, 32, false)
	pathB := writeReleased(t, 33, true)
	r := NewRegistry(manualOpts(4, 16))
	defer r.Close()

	enA, err := r.LoadFile("demo", pathA)
	if err != nil {
		t.Fatal(err)
	}
	enB, err := r.LoadFile("demo", pathB)
	if err != nil {
		t.Fatal(err)
	}
	if enA.Digest == enB.Digest {
		t.Fatal("distinct releases share a digest")
	}
	if got, _ := r.Get("demo"); got != enB {
		t.Fatal("Get did not return the reloaded entry")
	}
	if len(r.List()) != 1 {
		t.Fatalf("reload duplicated the entry: %v", r.List())
	}

	// The old engine was drained and closed by the swap.
	in := testInputs(1, enB.Model().InputLen(), 40)[0]
	if _, err := enA.Predict(in); !errors.Is(err, ErrClosed) {
		t.Fatalf("old entry err = %v, want ErrClosed", err)
	}

	// The new engine serves the new weights: compare against an offline
	// import of the same file.
	ref := referenceModel(t, pathB)
	want, err := ref.EvalBatch([][]float64{in})
	if err != nil {
		t.Fatal(err)
	}
	preds, errs := submitAll(enB.engine, [][]float64{in}, true)
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	for j, v := range preds[0].Logits {
		if v != want[0][j] {
			t.Fatalf("reloaded logit %d: %v != %v", j, v, want[0][j])
		}
	}
}

func TestRegistryRemoveAndClose(t *testing.T) {
	path := writeReleased(t, 34, false)
	r := NewRegistry(manualOpts(4, 16))
	en, err := r.LoadFile("demo", path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Remove("demo") {
		t.Fatal("Remove reported no entry")
	}
	if r.Remove("demo") {
		t.Fatal("second Remove reported an entry")
	}
	if _, err := en.Predict(testInputs(1, en.Model().InputLen(), 41)[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("removed entry err = %v, want ErrClosed", err)
	}
	r.Close()
	if _, err := r.LoadFile("late", path); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close load err = %v, want ErrClosed", err)
	}
}

// Loading byte-identical files under different names yields the same
// digest — the content hash is the identity, the name is just routing.
func TestRegistryDigestKeyedByContent(t *testing.T) {
	path := writeReleased(t, 35, true)
	r := NewRegistry(manualOpts(4, 16))
	defer r.Close()
	a, err := r.LoadFile("a", path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.LoadFile("b", path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same file, different digests: %s vs %s", a.Digest, b.Digest)
	}
}
