package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/artifact"
	"repro/internal/modelio"
)

// ReleaseKind is the artifact-store kind released model files (DACMRM1
// streams) are published under. The key is the hex SHA-256 of the file
// bytes — the same digest Entry.Digest reports — so a digest names
// byte-identical weights everywhere: a gateway assignment, a replica pull,
// and a /v1/models answer all speak the same content address.
const ReleaseKind = "release"

// ErrNoStore reports a digest operation on a registry with no artifact
// store attached (Options.Store). The HTTP layer maps it to 501.
var ErrNoStore = errors.New("serve: no artifact store attached")

// PublishRelease copies a released model stream from rr into the store
// under its content digest and returns that digest. The stream is decoded
// first, so garbage can never be published as a release; publishing bytes
// already in the store is a no-op (content addressing makes the write
// idempotent).
func PublishRelease(store *artifact.Store, rr io.Reader) (string, error) {
	raw, err := io.ReadAll(rr)
	if err != nil {
		return "", fmt.Errorf("serve: publish release: %w", err)
	}
	if _, err := modelio.Read(bytes.NewReader(raw)); err != nil {
		return "", fmt.Errorf("serve: publish release: %w", err)
	}
	sum := sha256.Sum256(raw)
	digest := hex.EncodeToString(sum[:])
	if store.Has(ReleaseKind, digest) {
		return digest, nil
	}
	err = store.Put(ReleaseKind, digest, func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	})
	if err != nil {
		return "", err
	}
	return digest, nil
}

// PublishReleaseFile publishes the released model file at path (see
// PublishRelease).
func PublishReleaseFile(store *artifact.Store, path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("serve: publish release: %w", err)
	}
	defer f.Close()
	return PublishRelease(store, f)
}

// LoadDigest pulls the released model named by digest from the registry's
// attached artifact store and registers it under name — the fleet
// distribution path: a gateway advertises {name → digest} and every
// replica that pulls the digest provably serves byte-identical weights.
// The pulled bytes are re-hashed and must reproduce the digest; a mismatch
// or decode failure evicts the store entry (self-healing, like the
// pipeline cache) and fails the load.
func (r *Registry) LoadDigest(name, digest string, mode LoadMode) (*Entry, error) {
	store := r.opts.Store
	if store == nil {
		return nil, fmt.Errorf("serve: load %q by digest: %w", name, ErrNoStore)
	}
	rc, err := store.Get(ReleaseKind, digest)
	if err != nil {
		if keys, kerr := store.Keys(ReleaseKind); kerr == nil {
			return nil, fmt.Errorf("serve: load %q: release %s not in store (%d release(s) available: %s): %w",
				name, short(digest), len(keys), shortAll(keys), err)
		}
		return nil, fmt.Errorf("serve: load %q: %w", name, err)
	}
	defer rc.Close()
	rm, got, err := modelio.ReadWithDigest(rc)
	if err != nil {
		store.Delete(ReleaseKind, digest)
		return nil, fmt.Errorf("serve: load %q: corrupt release %s evicted from store: %w", name, short(digest), err)
	}
	if got != digest {
		store.Delete(ReleaseKind, digest)
		return nil, fmt.Errorf("serve: load %q: store entry %s hashes to %s (corruption); entry evicted",
			name, short(digest), short(got))
	}
	return r.register(name, rm, digest, mode)
}

// short abbreviates a digest for error messages.
func short(digest string) string {
	if len(digest) > 12 {
		return digest[:12]
	}
	return digest
}

func shortAll(digests []string) string {
	if len(digests) == 0 {
		return "none"
	}
	out := ""
	for i, d := range digests {
		if i > 0 {
			out += ", "
		}
		out += short(d)
	}
	return out
}
