package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/obs"
)

// The acceptance path for fleet tracing, end to end over real HTTP: a
// predict through a dacgateway-shaped gateway into a dacserve-shaped
// replica yields one trace in BOTH processes' /tracez sharing the trace
// ID; the gateway's attempt span covers at least the replica's reported
// queue+compute time; and the traced prediction's logits are bit-identical
// to an offline forward pass. (Lives in the serve package: gateway's
// non-test code depends only on obs, so there is no import cycle.)
func TestEndToEndTraceAcrossGatewayAndReplica(t *testing.T) {
	path := writeReleased(t, 86, true)
	reg := NewRegistry(Options{
		MaxBatch:   4,
		QueueDepth: 64,
		FlushEvery: 200 * time.Microsecond,
		Threads:    1,
		Obs:        obs.NewRegistry(),
	})
	defer reg.Close()
	if _, err := reg.LoadFile("prod", path); err != nil {
		t.Fatal(err)
	}
	api := NewServer(reg, nil)
	api.SetReady()
	replicaTS := httptest.NewServer(api.Handler())
	defer replicaTS.Close()

	g := gateway.New(gateway.Options{ProbeInterval: -1, RetryBackoff: -1, Obs: obs.NewRegistry()})
	defer g.Close()
	if _, err := g.AddReplica("r0", replicaTS.URL); err != nil {
		t.Fatal(err)
	}
	if n := g.ProbeAll(context.Background()); n != 1 {
		t.Fatal("replica not eligible after probe")
	}
	gwTS := httptest.NewServer(gateway.NewServer(g).Handler())
	defer gwTS.Close()

	ref := referenceModel(t, path)
	in := testInputs(1, ref.InputLen(), 87)[0]
	raw, err := json.Marshal(predictRequest{Model: "prod", Input: in})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, gwTS.URL+"/v1/predict", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.HeaderClient, "e2e-client")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d: %s", resp.StatusCode, body)
	}
	traceID := resp.Header.Get(obs.HeaderTrace)
	if traceID == "" {
		t.Fatal("response missing trace header")
	}

	// Same trace ID in both tiers' /tracez, with the hop label marking the
	// replica-side record as the gateway's first attempt.
	gwSnap := g.Traces().Snapshot()
	repSnap := api.Traces().Snapshot()
	if gwSnap.Total != 1 || len(gwSnap.Recent) != 1 {
		t.Fatalf("gateway tracez = %+v", gwSnap)
	}
	if repSnap.Total != 1 || len(repSnap.Recent) != 1 {
		t.Fatalf("replica tracez = %+v", repSnap)
	}
	gwRec, repRec := gwSnap.Recent[0], repSnap.Recent[0]
	if gwRec.TraceID != traceID || repRec.TraceID != traceID {
		t.Fatalf("trace IDs diverge: gateway %s, replica %s, response %s", gwRec.TraceID, repRec.TraceID, traceID)
	}
	if repRec.Hop != "a0" {
		t.Fatalf("replica hop = %q, want a0", repRec.Hop)
	}
	if gwRec.Client != "e2e-client" || repRec.Client != "e2e-client" {
		t.Fatalf("client identity lost: gateway %q, replica %q", gwRec.Client, repRec.Client)
	}

	// The gateway's attempt covers the whole replica round trip, so it
	// cannot be shorter than the replica's own queue+compute report — which
	// both tiers must agree on (the gateway parsed it from the replica's
	// X-Dac-Server-Timing).
	var a0 obs.SpanRecord
	found := false
	for _, sp := range gwRec.Spans {
		if sp.Name == "attempt0" {
			a0, found = sp, true
		}
	}
	if !found {
		t.Fatalf("gateway trace missing attempt0 span: %+v", gwRec.Spans)
	}
	if gwRec.QueueMicros != repRec.QueueMicros || gwRec.ComputeMicros != repRec.ComputeMicros {
		t.Fatalf("tiers disagree on breakdown: gateway %d/%d, replica %d/%d",
			gwRec.QueueMicros, gwRec.ComputeMicros, repRec.QueueMicros, repRec.ComputeMicros)
	}
	if a0.DurMicros < repRec.QueueMicros+repRec.ComputeMicros {
		t.Fatalf("attempt0 (%dµs) shorter than replica queue+compute (%d+%dµs)",
			a0.DurMicros, repRec.QueueMicros, repRec.ComputeMicros)
	}
	if gwRec.DurMicros < a0.DurMicros {
		t.Fatalf("gateway total (%dµs) shorter than its attempt (%dµs)", gwRec.DurMicros, a0.DurMicros)
	}

	// Tracing must not perturb the numbers: the routed, traced prediction
	// is bit-identical to an offline serial forward pass.
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Predictions) != 1 {
		t.Fatalf("got %d predictions", len(pr.Predictions))
	}
	wantBatch, err := ref.EvalBatch([][]float64{in})
	if err != nil {
		t.Fatal(err)
	}
	want := wantBatch[0]
	got := pr.Predictions[0].Logits
	if len(got) != len(want) {
		t.Fatalf("logit length %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d differs under tracing: %v vs %v", i, got[i], want[i])
		}
	}
}
