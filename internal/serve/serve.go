// Package serve turns released model files into a concurrently served
// inference endpoint — the deployment half of the paper's threat model.
// dacrelease writes a model file; this package is what a model marketplace
// or MLaaS provider would run on top of it: a registry of loaded models
// (full-precision and quantized alike), a micro-batching engine that
// coalesces concurrent prediction requests into shared forward passes, and
// an HTTP JSON API that also exposes the paper's defender-side audit so a
// data holder can inspect a model for embedded payloads before putting it
// in front of users.
//
// # Bit-reproducibility under batching
//
// Serving must not perturb the numbers the threat-model evaluation is built
// on: a prediction's logits are the same whether the request rode alone or
// was coalesced into a batch, and the same for every engine thread count.
// Two properties make that hold: nn.Model.EvalBatch is per-sample
// bit-identical to single-sample evaluation (batching only packs tensors),
// and the compute package's determinism contract makes each forward
// bit-identical across worker counts. Batch composition under load is
// timing-dependent; the answers are not.
//
// # Concurrency model
//
// Each registered model owns one engine goroutine and one compute.Ctx; the
// engine goroutine is the context's only driver (a compute.Ctx must never
// have two). Requests enter through a bounded channel queue and are
// answered on per-request channels. The queue bound is the backpressure
// mechanism: when it is full, Submit fails fast with ErrQueueFull and the
// HTTP layer answers 429 instead of letting latency grow without bound.
package serve

import (
	"errors"
	"time"

	"repro/internal/artifact"
	"repro/internal/obs"
)

// Options configure a Registry and the per-model batching engines it
// creates.
type Options struct {
	// MaxBatch is the largest number of requests coalesced into one forward
	// pass. <= 0 selects 16.
	MaxBatch int
	// QueueDepth bounds each model's request queue; submissions beyond it
	// fail fast with ErrQueueFull. <= 0 selects 256.
	QueueDepth int
	// FlushEvery is the batching flush window: pending requests are flushed
	// when MaxBatch is reached or on the next tick, whichever comes first.
	// 0 selects 2ms. Negative disables the timer entirely — flushes then
	// happen only on batch size or explicit Engine.Tick, which is what the
	// deterministic tests use.
	FlushEvery time.Duration
	// Threads is the worker count of each model engine's compute context
	// (0 = GOMAXPROCS). Responses are bit-identical for every value.
	Threads int
	// NativeQuant makes ModeAuto loads serve quantized releases
	// codebook-native: eval runs LUT kernels over the release's uint8
	// indices and the float weight copies are never materialized. Logits
	// are bit-identical to dequantized serving; resident model bytes are
	// strictly lower. Full-precision releases are unaffected.
	NativeQuant bool
	// Obs is the observability registry serving metrics are published to.
	// nil selects obs.Default (what /metricsz exposes).
	Obs *obs.Registry
	// Store is the content-addressed artifact store released models are
	// distributed through: Registry.LoadDigest and the HTTP
	// /v1/models/{name}:load endpoint pull releases from it by digest.
	// nil disables digest loads (they fail with ErrNoStore).
	Store *artifact.Store
	// LatencyBuckets are the per-batch forward-latency histogram bounds in
	// seconds. nil selects DefaultLatencyBuckets.
	LatencyBuckets []float64
	// MaxClients caps the per-client metric cardinality: the first
	// MaxClients distinct client identities each get their own
	// serve_client_* series, later ones collapse into the "_other"
	// overflow series (clients would otherwise mint unbounded series by
	// varying X-Dac-Client). <= 0 selects 64.
	MaxClients int
	// DetectMinQueries is the extraction detector's volume floor: a
	// client is never flagged before it has spent this many prediction
	// samples. <= 0 selects 256.
	DetectMinQueries int
	// DetectNovelty is the detector's input-novelty threshold: the
	// distinct-input fraction at or above which a high-volume client is
	// flagged as extraction-like. 0 selects 0.9; honest repeat traffic
	// sits far below it.
	DetectNovelty float64
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.FlushEvery == 0 {
		o.FlushEvery = 2 * time.Millisecond
	}
	if o.Obs == nil {
		o.Obs = obs.Default
	}
	if o.LatencyBuckets == nil {
		o.LatencyBuckets = DefaultLatencyBuckets
	}
	if o.MaxClients <= 0 {
		o.MaxClients = 64
	}
	if o.DetectMinQueries <= 0 {
		o.DetectMinQueries = 256
	}
	if o.DetectNovelty == 0 {
		o.DetectNovelty = 0.9
	}
	return o
}

var (
	// ErrQueueFull is the backpressure signal: the model's bounded request
	// queue is at capacity. The HTTP layer maps it to 429.
	ErrQueueFull = errors.New("serve: request queue full")
	// ErrClosed reports a submission to an engine that has been shut down
	// (or hot-swapped away). The HTTP layer maps it to 503.
	ErrClosed = errors.New("serve: engine closed")
)
