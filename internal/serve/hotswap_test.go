package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compute"
)

// Hot-swap under fire: concurrent clients hammer Predict on a model name
// while another goroutine keeps swapping that name between two releases
// (and occasionally removing it outright). The contract under the churn:
// every answered request is bit-identical to a serial forward pass of
// either release — never a torn mix — and every unanswered request fails
// with a clean sentinel (ErrClosed from a drained engine, ErrQueueFull
// from backpressure, or a miss between Remove and the next Load). Runs
// under -race via `make race-fast`.
func TestRegistryHotSwapUnderFire(t *testing.T) {
	pathA := writeReleased(t, 60, true)
	pathB := writeReleased(t, 61, false)

	refA := referenceModel(t, pathA)
	refA.SetCtx(compute.Serial())
	refB := referenceModel(t, pathB)
	refB.SetCtx(compute.Serial())

	const clients = 4
	inputs := testInputs(clients, refA.InputLen(), 62)
	wantA := make([][]float64, clients)
	wantB := make([][]float64, clients)
	for i, in := range inputs {
		rowsA, err := refA.EvalBatch([][]float64{in})
		if err != nil {
			t.Fatal(err)
		}
		rowsB, err := refB.EvalBatch([][]float64{in})
		if err != nil {
			t.Fatal(err)
		}
		wantA[i], wantB[i] = rowsA[0], rowsB[0]
	}

	r := NewRegistry(Options{
		MaxBatch:   4,
		QueueDepth: 64,
		FlushEvery: 200 * time.Microsecond,
		Threads:    1,
	})
	defer r.Close()
	if _, err := r.LoadFile("prod", pathA); err != nil {
		t.Fatal(err)
	}

	matches := func(got, want []float64) bool {
		if len(got) != len(want) {
			return false
		}
		for j := range got {
			if got[j] != want[j] {
				return false
			}
		}
		return true
	}

	stop := make(chan struct{})
	var answered, misses atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			in := inputs[c]
			for {
				select {
				case <-stop:
					return
				default:
				}
				en, ok := r.Get("prod")
				if !ok {
					misses.Add(1) // window between Remove and the next Load
					continue
				}
				pred, err := en.Predict(in)
				if err != nil {
					if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrQueueFull) {
						t.Errorf("client %d: unclean error under swap: %v", c, err)
						return
					}
					continue
				}
				if !matches(pred.Logits, wantA[c]) && !matches(pred.Logits, wantB[c]) {
					t.Errorf("client %d: logits %v match neither release (torn or mis-routed response)",
						c, pred.Logits)
					return
				}
				answered.Add(1)
			}
		}(c)
	}

	// The swapper: alternate the two releases with an outright Remove every
	// few swaps, so clients see both the drain path and the miss path.
	const swaps = 40
	for s := 0; s < swaps; s++ {
		path := pathA
		if s%2 == 1 {
			path = pathB
		}
		if s%7 == 3 {
			r.Remove("prod")
		}
		if _, err := r.LoadFile("prod", path); err != nil {
			t.Fatalf("swap %d: %v", s, err)
		}
	}
	close(stop)
	wg.Wait()

	if answered.Load() == 0 {
		t.Fatal("no request was ever answered under swap churn")
	}
	t.Logf("hot-swap fire: %d answered, %d misses across %d swaps",
		answered.Load(), misses.Load(), swaps)
}
