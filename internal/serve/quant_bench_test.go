package serve

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/modelio"
	"repro/internal/nn"
	"repro/internal/quantize"
	"repro/internal/tensor"
)

// emitQuantBench, when set to a path, makes TestEmitServeQuantBench compare
// codebook-native against dequantized serving of the same quantized release
// and write the numbers there as JSON. Wired to `make serve-quant-bench`.
var emitQuantBench = flag.String("emit-quant-bench", "", "write quantized-serving comparison (BENCH_serve_quant.json) to this path")

// quantBenchArch is wider than testArch so weight reads dominate the
// forward pass the way they do in real deployments — that is where the
// codebook path's 1-byte-per-weight reads pay off.
func quantBenchArch() nn.ResNetConfig {
	return nn.ResNetConfig{
		InC: 1, InH: 12, InW: 12, Classes: 10,
		Widths: []int{16, 32}, Blocks: []int{2, 2}, Seed: 95,
	}
}

func writeQuantBenchModel(tb testing.TB) string {
	tb.Helper()
	arch := quantBenchArch()
	m := nn.NewResNet(arch)
	rng := rand.New(rand.NewSource(96))
	for _, p := range m.Params() {
		p.Value.RandN(rng, 0, 0.1)
	}
	m.ForwardTrain(tensor.New(8, arch.InC, arch.InH, arch.InW).RandN(rng, 0, 1))
	applied := quantize.QuantizeModel(m, quantize.WeightedEntropy{}, 16)
	rm, err := modelio.Export(m, arch, applied)
	if err != nil {
		tb.Fatal(err)
	}
	path := filepath.Join(tb.TempDir(), "quantbench.bin")
	if err := modelio.Save(path, rm); err != nil {
		tb.Fatal(err)
	}
	return path
}

// quantThroughput is throughput() with an explicit load mode, returning the
// entry's resident model bytes alongside req/s.
func quantThroughput(tb testing.TB, path string, mode LoadMode, maxBatch, clients, total int) (reqPerSec, meanBatch float64, resident int) {
	tb.Helper()
	r := NewRegistry(Options{
		MaxBatch:   maxBatch,
		QueueDepth: 4 * clients,
		FlushEvery: 200 * time.Microsecond,
		Threads:    runtime.GOMAXPROCS(0),
	})
	defer r.Close()
	f, err := os.Open(path)
	if err != nil {
		tb.Fatal(err)
	}
	en, err := r.LoadWithMode("bench", f, mode)
	f.Close()
	if err != nil {
		tb.Fatal(err)
	}
	in := testInputs(1, en.Model().InputLen(), 97)[0]

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				for {
					if _, err := en.Predict(in); err == nil {
						break
					}
				}
			}
		}(total / clients)
	}
	wg.Wait()
	elapsed := time.Since(start)
	snap := en.Stats()
	return float64(snap.Served) / elapsed.Seconds(), snap.MeanBatch, en.ResidentBytes()
}

type quantBenchPoint struct {
	Mode          string  `json:"mode"`
	MaxBatch      int     `json:"max_batch"`
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	ReqPerSec     float64 `json:"req_per_sec"`
	MeanBatch     float64 `json:"mean_batch"`
	ResidentBytes int     `json:"resident_model_bytes"`
}

type quantBenchReport struct {
	Threads       int               `json:"threads"`
	Notes         string            `json:"notes"`
	Points        []quantBenchPoint `json:"points"`
	ResidentRatio float64           `json:"native_resident_ratio"`
	SpeedRatio    float64           `json:"native_req_per_sec_ratio"`
}

func TestEmitServeQuantBench(t *testing.T) {
	if *emitQuantBench == "" {
		t.Skip("pass -emit-quant-bench=<path> (make serve-quant-bench) to compare quantized serving modes")
	}
	path := writeQuantBenchModel(t)
	const maxBatch, clients, total = 8, 16, 512

	// Best of a few rounds per mode: a throughput probe this short is at
	// the mercy of scheduler noise, and the comparison is what matters.
	best := func(mode LoadMode) quantBenchPoint {
		var p quantBenchPoint
		for round := 0; round < 3; round++ {
			rps, mean, res := quantThroughput(t, path, mode, maxBatch, clients, total)
			if rps > p.ReqPerSec {
				p = quantBenchPoint{
					MaxBatch: maxBatch, Clients: clients, Requests: total,
					ReqPerSec: rps, MeanBatch: mean, ResidentBytes: res,
				}
			}
		}
		return p
	}
	deq := best(ModeDequantized)
	deq.Mode = "dequantized"
	nat := best(ModeNative)
	nat.Mode = "codebook-native"

	rep := quantBenchReport{
		Threads: runtime.GOMAXPROCS(0),
		Notes: "same quantized release served both ways; predictions are " +
			"bit-identical (TestNativeLoadBitIdenticalPredictions). " +
			"codebook-native reads 1 byte per weight through LUT kernels and " +
			"releases the float weight copies, so resident bytes must be " +
			"strictly lower and req/s at least equal.",
		Points:        []quantBenchPoint{deq, nat},
		ResidentRatio: float64(nat.ResidentBytes) / float64(deq.ResidentBytes),
		SpeedRatio:    nat.ReqPerSec / deq.ReqPerSec,
	}
	t.Logf("dequantized:     %8.0f req/s  resident %d bytes", deq.ReqPerSec, deq.ResidentBytes)
	t.Logf("codebook-native: %8.0f req/s  resident %d bytes", nat.ReqPerSec, nat.ResidentBytes)

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*emitQuantBench, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", *emitQuantBench)

	if nat.ResidentBytes >= deq.ResidentBytes {
		t.Fatalf("native resident %d bytes >= dequantized %d", nat.ResidentBytes, deq.ResidentBytes)
	}
	if nat.ReqPerSec < deq.ReqPerSec {
		t.Fatalf("native %f req/s < dequantized %f", nat.ReqPerSec, deq.ReqPerSec)
	}
}
