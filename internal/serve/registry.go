package serve

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/modelio"
	"repro/internal/nn"
)

// Entry is one registered model: the imported network, its serving engine,
// and the release metadata clients see.
type Entry struct {
	// Name is the registry key the model serves under.
	Name string
	// Digest is the hex SHA-256 of the released file's bytes; two loads of
	// byte-identical files get the same digest regardless of name.
	Digest string
	// Arch is the released architecture.
	Arch nn.ResNetConfig
	// Quantized reports whether the release carries codebook-compressed
	// units.
	Quantized bool
	// Params is the scalar parameter count.
	Params int
	// Size is the release's storage footprint.
	Size modelio.SizeReport

	model  *nn.Model
	engine *Engine
}

// Predict submits one flattened input to the model's batching engine and
// blocks for the result.
func (en *Entry) Predict(input []float64) (Prediction, error) {
	return en.engine.Submit(input)
}

// Model exposes the imported network for weight inspection (the audit
// endpoint). Forward passes must go through Predict — the engine goroutine
// owns the model's compute context.
func (en *Entry) Model() *nn.Model { return en.model }

// Stats returns the engine's counters.
func (en *Entry) Stats() Snapshot { return en.engine.Stats() }

// Tick forces the engine to flush its pending batch (see Engine.Tick).
func (en *Entry) Tick() { en.engine.Tick() }

// Registry holds the models a server is willing to serve, keyed by name.
// All methods are safe for concurrent use; Load hot-swaps atomically.
type Registry struct {
	opts Options

	mu     sync.RWMutex
	models map[string]*Entry
	closed bool
}

// NewRegistry builds an empty registry whose engines use opts.
func NewRegistry(opts Options) *Registry {
	return &Registry{opts: opts.withDefaults(), models: map[string]*Entry{}}
}

// Options returns the registry's resolved engine options.
func (r *Registry) Options() Options { return r.opts }

// Load reads a released model from src and registers it under name,
// starting its batching engine. If the name is taken, the new model is
// swapped in atomically: requests that already reached the old engine are
// drained through final batched passes, later ones see the new model.
func (r *Registry) Load(name string, src io.Reader) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: model name must be non-empty")
	}
	rm, digest, err := modelio.ReadWithDigest(src)
	if err != nil {
		return nil, fmt.Errorf("serve: load %q: %w", name, err)
	}
	m, _, err := modelio.Import(rm)
	if err != nil {
		return nil, fmt.Errorf("serve: load %q: %w", name, err)
	}
	en := &Entry{
		Name:      name,
		Digest:    digest,
		Arch:      rm.Arch,
		Quantized: len(rm.Quantized) > 0,
		Params:    m.NumParams(),
		Size:      modelio.Size(rm),
		model:     m,
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	en.engine = newEngine(m, name, r.opts)
	old := r.models[name]
	r.models[name] = en
	r.mu.Unlock()
	if old != nil {
		old.engine.Close()
	}
	return en, nil
}

// LoadFile reads a released model file from path and registers it.
func (r *Registry) LoadFile(name, path string) (*Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: load %q: %w", name, err)
	}
	defer f.Close()
	return r.Load(name, f)
}

// Get returns the entry serving under name.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	en, ok := r.models[name]
	return en, ok
}

// List returns all entries sorted by name.
func (r *Registry) List() []*Entry {
	r.mu.RLock()
	out := make([]*Entry, 0, len(r.models))
	for _, en := range r.models {
		out = append(out, en)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Remove unregisters name, draining and stopping its engine; the engine's
// metric series leave the obs registry too (identity-checked, so a series
// already taken over by a hot swap stays). It reports whether a model was
// removed.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	en, ok := r.models[name]
	delete(r.models, name)
	r.mu.Unlock()
	if ok {
		en.engine.Close()
		en.engine.stats.unregister()
	}
	return ok
}

// Stats returns a per-model snapshot map.
func (r *Registry) Stats() map[string]Snapshot {
	out := make(map[string]Snapshot)
	for _, en := range r.List() {
		out[en.Name] = en.Stats()
	}
	return out
}

// Close drains and stops every engine and rejects further loads. Requests
// already accepted complete; later ones fail with ErrClosed.
func (r *Registry) Close() {
	r.mu.Lock()
	r.closed = true
	entries := make([]*Entry, 0, len(r.models))
	for _, en := range r.models {
		entries = append(entries, en)
	}
	r.mu.Unlock()
	for _, en := range entries {
		en.engine.Close()
	}
}
