package serve

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/modelio"
	"repro/internal/nn"
	"repro/internal/quantize"
)

// LoadMode selects the physical form a quantized release is served in.
type LoadMode int

const (
	// ModeAuto picks codebook-native for quantized releases when the
	// registry's Options.NativeQuant is set, dequantized otherwise.
	// Full-precision releases always load dense.
	ModeAuto LoadMode = iota
	// ModeDequantized materializes float weight tensors from the codebooks
	// (the historical behavior).
	ModeDequantized
	// ModeNative serves the codebooks and uint8 indices directly through
	// the LUT matmul kernels; float weight copies are never materialized.
	// Fails on full-precision releases, which have no codebooks to serve.
	ModeNative
)

// Entry is one registered model: the imported network, its serving engine,
// and the release metadata clients see.
type Entry struct {
	// Name is the registry key the model serves under.
	Name string
	// Digest is the hex SHA-256 of the released file's bytes; two loads of
	// byte-identical files get the same digest regardless of name.
	Digest string
	// Arch is the released architecture.
	Arch nn.ResNetConfig
	// Quantized reports whether the release carries codebook-compressed
	// units.
	Quantized bool
	// Native reports whether eval runs codebook-native (LUT kernels over
	// the release's indices) instead of over dequantized float weights.
	Native bool
	// Params is the scalar parameter count.
	Params int
	// Size is the release's storage footprint.
	Size modelio.SizeReport

	model  *nn.Model
	engine *Engine
	// backend holds the codebook views a native entry evaluates through.
	backend *quantize.CodebookBackend
	// rm is the release record, retained by native entries so weight-level
	// consumers (the audit endpoint) can dequantize on demand; nil for
	// dequantized entries, whose model already holds float weights.
	rm *modelio.ReleasedModel
}

// Predict submits one flattened input to the model's batching engine and
// blocks for the result.
func (en *Entry) Predict(input []float64) (Prediction, error) {
	return en.engine.Submit(input)
}

// PredictTimed is Predict returning the engine-side timing breakdown the
// tracing HTTP layer records (queue wait, batched compute, batch size).
func (en *Entry) PredictTimed(input []float64) (Prediction, Timing, error) {
	return en.engine.SubmitTimed(input)
}

// Model exposes the imported network for weight inspection (the audit
// endpoint). Forward passes must go through Predict — the engine goroutine
// owns the model's compute context.
func (en *Entry) Model() *nn.Model { return en.model }

// AuditModel returns a model whose float weights are readable: the served
// model for dequantized entries, or a fresh dequantized import of the
// retained release for native entries (whose served model has released its
// float weight storage). The fresh import is independent of the serving
// engine, so audits run safely alongside in-flight forward passes.
func (en *Entry) AuditModel() (*nn.Model, error) {
	if !en.Native {
		return en.model, nil
	}
	m, _, err := modelio.Import(en.rm)
	if err != nil {
		return nil, fmt.Errorf("serve: audit dequantize %q: %w", en.Name, err)
	}
	return m, nil
}

// ResidentBytes estimates the entry's resident model footprint: parameter
// float storage (values and gradient accumulators actually allocated —
// released parameters count zero), batch-norm running statistics, and, for
// native entries, the codebook views plus the retained release record's
// dense payload. This is the number BENCH_serve_quant.json compares across
// load modes.
func (en *Entry) ResidentBytes() int {
	n := 0
	for _, p := range en.model.Params() {
		n += 8 * (p.Value.Len() + p.Grad.Len())
	}
	nn.Walk(en.model.Net, func(l nn.Layer) {
		if bn, ok := l.(*nn.BatchNorm2D); ok {
			n += 8 * (len(bn.RunMean) + len(bn.RunVar))
		}
	})
	if en.Native {
		n += en.backend.Bytes()
		for _, b := range en.rm.Dense {
			n += 8 * len(b.Values)
		}
		for _, bn := range en.rm.BNStats {
			n += 8 * (len(bn.RunMean) + len(bn.RunVar))
		}
	}
	return n
}

// Stats returns the engine's counters.
func (en *Entry) Stats() Snapshot { return en.engine.Stats() }

// Tick forces the engine to flush its pending batch (see Engine.Tick).
func (en *Entry) Tick() { en.engine.Tick() }

// Registry holds the models a server is willing to serve, keyed by name.
// All methods are safe for concurrent use; Load hot-swaps atomically.
type Registry struct {
	opts Options

	mu     sync.RWMutex
	models map[string]*Entry
	closed bool
	// policies holds per-model serving defenses, keyed by model name (not
	// entry) so a policy survives hot swaps of the weights underneath.
	policies map[string]Policy
	// skipped accumulates the directory entries LoadDir examined but did
	// not serve, so /statsz can report the count and startup can log each.
	skipped []Skipped
}

// NewRegistry builds an empty registry whose engines use opts.
func NewRegistry(opts Options) *Registry {
	return &Registry{opts: opts.withDefaults(), models: map[string]*Entry{}, policies: map[string]Policy{}}
}

// Options returns the registry's resolved engine options.
func (r *Registry) Options() Options { return r.opts }

// Load reads a released model from src and registers it under name,
// starting its batching engine. The serving form follows ModeAuto (see
// LoadWithMode). If the name is taken, the new model is swapped in
// atomically: requests that already reached the old engine are drained
// through final batched passes, later ones see the new model.
func (r *Registry) Load(name string, src io.Reader) (*Entry, error) {
	return r.LoadWithMode(name, src, ModeAuto)
}

// LoadWithMode is Load with an explicit serving form for quantized
// releases. ModeNative fails on full-precision releases; either mode
// produces bit-identical predictions (the codebook kernels' guarantee),
// differing only in resident footprint and weight-read cost.
func (r *Registry) LoadWithMode(name string, src io.Reader, mode LoadMode) (*Entry, error) {
	rm, digest, err := modelio.ReadWithDigest(src)
	if err != nil {
		return nil, fmt.Errorf("serve: load %q: %w", name, err)
	}
	return r.register(name, rm, digest, mode)
}

// register resolves the serving mode, imports the release, and swaps the
// entry in under name — the shared tail of every load path (reader, file,
// directory, store digest).
func (r *Registry) register(name string, rm *modelio.ReleasedModel, digest string, mode LoadMode) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: model name must be non-empty")
	}
	if mode == ModeAuto {
		if r.opts.NativeQuant && len(rm.Quantized) > 0 {
			mode = ModeNative
		} else {
			mode = ModeDequantized
		}
	}
	en := &Entry{
		Name:      name,
		Digest:    digest,
		Arch:      rm.Arch,
		Quantized: len(rm.Quantized) > 0,
		Params:    modelio.NumScalars(rm),
		Size:      modelio.Size(rm),
	}
	switch mode {
	case ModeNative:
		m, cb, err := modelio.ImportNative(rm)
		if err != nil {
			return nil, fmt.Errorf("serve: load %q: %w", name, err)
		}
		en.model, en.backend, en.rm = m, cb, rm
		en.Native = true
	default:
		m, _, err := modelio.Import(rm)
		if err != nil {
			return nil, fmt.Errorf("serve: load %q: %w", name, err)
		}
		en.model = m
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	en.engine = newEngine(en.model, name, r.opts)
	old := r.models[name]
	r.models[name] = en
	r.mu.Unlock()
	if old != nil {
		old.engine.Close()
	}
	return en, nil
}

// LoadFile reads a released model file from path and registers it.
func (r *Registry) LoadFile(name, path string) (*Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: load %q: %w", name, err)
	}
	defer f.Close()
	return r.Load(name, f)
}

// Skipped describes a directory entry LoadDir examined but did not serve.
type Skipped struct {
	// Path is the file's full path.
	Path string
	// Reason says why it was skipped.
	Reason string
}

// LoadDir sniffs every regular file in dir by magic header — no extension
// convention — and registers each released model (DACMRM1) under its file
// name minus extension, so one directory can mix full-precision and
// quantized releases. Bare quantization records (DACQAP1) are reported as
// skipped rather than errors: they carry codebooks and indices only, with
// no architecture, biases, or batch-norm state, so there is no model to
// serve — their content ships inside the quantized release instead.
// Unrecognized files are skipped likewise. Two files that resolve to the
// same serving name is an error (which file wins would be ordering luck).
func (r *Registry) LoadDir(dir string, mode LoadMode) ([]*Entry, []Skipped, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: load dir: %w", err)
	}
	var entries []*Entry
	var skipped []Skipped
	seen := map[string]string{}
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		path := filepath.Join(dir, de.Name())
		kind, err := modelio.SniffFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: load dir: %w", err)
		}
		switch kind {
		case modelio.KindReleased:
			name := strings.TrimSuffix(de.Name(), filepath.Ext(de.Name()))
			if prev, dup := seen[name]; dup {
				return nil, nil, fmt.Errorf("serve: %q and %q both resolve to model name %q", prev, path, name)
			}
			seen[name] = path
			en, err := r.loadFileWithMode(name, path, mode)
			if err != nil {
				return nil, nil, err
			}
			entries = append(entries, en)
		case modelio.KindQuantRecord:
			skipped = append(skipped, Skipped{Path: path,
				Reason: "bare quantization record (no architecture or batch-norm state); serve the quantized release instead"})
		default:
			skipped = append(skipped, Skipped{Path: path, Reason: "not a model artifact"})
		}
	}
	if len(skipped) > 0 {
		r.mu.Lock()
		r.skipped = append(r.skipped, skipped...)
		r.mu.Unlock()
		r.opts.Obs.Counter("serve_load_skipped_total").Add(int64(len(skipped)))
	}
	return entries, skipped, nil
}

// SkippedEntries returns every directory entry LoadDir skipped since the
// registry was created, in load order.
func (r *Registry) SkippedEntries() []Skipped {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Skipped(nil), r.skipped...)
}

// SkippedCount reports how many directory entries LoadDir skipped.
func (r *Registry) SkippedCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.skipped)
}

func (r *Registry) loadFileWithMode(name, path string, mode LoadMode) (*Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: load %q: %w", name, err)
	}
	defer f.Close()
	return r.LoadWithMode(name, f, mode)
}

// SetPolicy installs the serving policy for name after validating it. The
// model need not be loaded yet — policies are name-keyed configuration, so
// a defense can be staged before the first load and survives hot swaps.
func (r *Registry) SetPolicy(name string, p Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p == (Policy{}) {
		delete(r.policies, name)
		return nil
	}
	r.policies[name] = p
	return nil
}

// PolicyFor returns name's serving policy (the zero, undefended Policy
// when none is set).
func (r *Registry) PolicyFor(name string) Policy {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.policies[name]
}

// Get returns the entry serving under name.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	en, ok := r.models[name]
	return en, ok
}

// List returns all entries sorted by name.
func (r *Registry) List() []*Entry {
	r.mu.RLock()
	out := make([]*Entry, 0, len(r.models))
	for _, en := range r.models {
		out = append(out, en)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Remove unregisters name, draining and stopping its engine; the engine's
// metric series leave the obs registry too (identity-checked, so a series
// already taken over by a hot swap stays). It reports whether a model was
// removed.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	en, ok := r.models[name]
	delete(r.models, name)
	r.mu.Unlock()
	if ok {
		en.engine.Close()
		en.engine.stats.unregister()
	}
	return ok
}

// Stats returns a per-model snapshot map.
func (r *Registry) Stats() map[string]Snapshot {
	out := make(map[string]Snapshot)
	for _, en := range r.List() {
		out[en.Name] = en.Stats()
	}
	return out
}

// Close drains and stops every engine and rejects further loads. Requests
// already accepted complete; later ones fail with ErrClosed.
func (r *Registry) Close() {
	r.mu.Lock()
	r.closed = true
	entries := make([]*Entry, 0, len(r.models))
	for _, en := range r.models {
		entries = append(entries, en)
	}
	r.mu.Unlock()
	for _, en := range entries {
		en.engine.Close()
	}
}
