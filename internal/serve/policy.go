package serve

import (
	"fmt"
	"math"

	"repro/internal/api"
)

// Policy modes. Full answers carry probs and logits; the restricted modes
// are the anti-extraction defenses: top1 keeps the argmax class plus its
// (rounded) probability, label keeps the class alone.
const (
	PolicyFull  = "full"
	PolicyTop1  = "top1"
	PolicyLabel = "label"
)

// Policy is one model's serving defense configuration, toggleable at
// runtime through POST /v1/models/{name}:policy without reloading the
// model. The zero Policy is "undefended": full responses, no rounding, no
// budget. Policies are keyed by model name in the registry, so they
// survive hot swaps of the weights underneath.
//
// Every transform is deterministic — a defended response is bit-identical
// across replicas serving the same digest, which the fleet's
// bit-reproducibility contract requires and
// TestDefendedResponsesDeterministicAcrossReplicas pins.
type Policy struct {
	// Mode selects the response verbosity: "" or PolicyFull, PolicyTop1,
	// or PolicyLabel.
	Mode string `json:"mode,omitempty"`
	// Round, when positive, rounds every returned probability, logit, and
	// top_prob to this many decimal places — coarse scores starve a
	// distillation attacker of the soft-label signal while leaving the
	// argmax class (what honest clients act on) untouched.
	Round int `json:"round,omitempty"`
	// QueryBudget, when positive, caps the total prediction samples each
	// client identity may spend on this model; requests past the cap
	// answer 429 budget_exhausted. Changing the policy re-arms every
	// client's budget from zero.
	QueryBudget int `json:"query_budget,omitempty"`
}

// maxRound bounds Round: float64 carries ~15-17 significant decimal
// digits, so rounding past 12 places is a no-op dressed as a defense.
const maxRound = 12

// Validate rejects unknown modes and out-of-range knobs.
func (p Policy) Validate() error {
	switch p.Mode {
	case "", PolicyFull, PolicyTop1, PolicyLabel:
	default:
		return fmt.Errorf("serve: unknown policy mode %q (want %q, %q, or %q)", p.Mode, PolicyFull, PolicyTop1, PolicyLabel)
	}
	if p.Round < 0 || p.Round > maxRound {
		return fmt.Errorf("serve: policy round %d out of range [0, %d]", p.Round, maxRound)
	}
	if p.QueryBudget < 0 {
		return fmt.Errorf("serve: negative query budget %d", p.QueryBudget)
	}
	return nil
}

// Active reports whether the policy restricts anything (the zero value
// does not).
func (p Policy) Active() bool {
	return (p.Mode != "" && p.Mode != PolicyFull) || p.Round > 0 || p.QueryBudget > 0
}

// Apply transforms full engine predictions in place per the policy and
// returns the response mode tag ("" for full responses, PolicyTop1 or
// PolicyLabel when restricted).
func (p Policy) Apply(preds []api.Prediction) string {
	mode := p.Mode
	if mode == "" {
		mode = PolicyFull
	}
	for i := range preds {
		switch mode {
		case PolicyLabel:
			preds[i].Probs, preds[i].Logits = nil, nil
		case PolicyTop1:
			top := 0.0
			for _, v := range preds[i].Probs {
				if v > top {
					top = v
				}
			}
			preds[i].TopProb = roundTo(top, p.Round)
			preds[i].Probs, preds[i].Logits = nil, nil
		default:
			if p.Round > 0 {
				roundSlice(preds[i].Probs, p.Round)
				roundSlice(preds[i].Logits, p.Round)
			}
		}
	}
	if mode == PolicyFull {
		return ""
	}
	return mode
}

// roundTo rounds v to k decimal places; k <= 0 is the identity. The
// scale-round-unscale sequence is the same float64 ops everywhere, so
// rounded responses stay bit-identical across replicas.
func roundTo(v float64, k int) float64 {
	if k <= 0 {
		return v
	}
	scale := math.Pow(10, float64(k))
	return math.Round(v*scale) / scale
}

func roundSlice(v []float64, k int) {
	for i := range v {
		v[i] = roundTo(v[i], k)
	}
}

// omitScores strips every score field, leaving classes only — the
// transform behind both the label-only policy's shape and the request's
// omit_scores opt-in.
func omitScores(preds []api.Prediction) {
	for i := range preds {
		preds[i].Probs, preds[i].Logits, preds[i].TopProb = nil, nil, 0
	}
}
