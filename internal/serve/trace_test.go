package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// traceClock returns a clock that advances step per read, starting at
// base. With the flush timer disabled, every clock read in a single-request
// predict happens in one deterministic order (trace start, decode span,
// submit, flush, eval, finish), which is what pins the /tracez golden.
func traceClock(base time.Time, step time.Duration) func() time.Time {
	var mu sync.Mutex
	cur := base
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		cur = cur.Add(step)
		return cur
	}
}

// tracePredict drives one traced predict through the full HTTP handler
// with a manual-flush engine, ticking until the response is written.
func tracePredict(t *testing.T, api *Server, en *Entry, req *http.Request) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		api.Handler().ServeHTTP(rec, req)
		close(done)
	}()
	for {
		select {
		case <-done:
			return rec
		default:
			en.Tick()
		}
	}
}

// The /tracez JSON shape is API: the golden pins every record and span
// field with an injected fake clock shared by the HTTP layer and the
// engine, so queue/compute/span numbers are exact (same pattern as the
// /statsz golden).
func TestTracezGoldenWithFakeClock(t *testing.T) {
	path := writeReleased(t, 80, false)
	opts := manualOpts(4, 16)
	opts.Obs = obs.NewRegistry()
	r := NewRegistry(opts)
	defer r.Close()
	en, err := r.LoadFile("demo", path)
	if err != nil {
		t.Fatal(err)
	}
	api := NewServer(r, nil)

	// One clock shared by server and engine: reads land in a fixed order —
	// (1) trace start, (2,3) decode span, (4) predict span start, (5)
	// submit enqueue, (6) flush start, (7,8) eval start/end, (9) predict
	// span end, (10) finish. Empty flushes read no clock, so the tick loop
	// does not perturb the sequence.
	clock := traceClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), time.Millisecond)
	api.now = clock
	en.engine.now = clock

	body, err := json.Marshal(predictRequest{Model: "demo", Input: testInputs(1, en.Model().InputLen(), 81)[0]})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
	req.Header.Set(obs.HeaderTrace, "000102030405060708090a0b0c0d0e0f")
	req.Header.Set(obs.HeaderClient, "tester")
	rec := tracePredict(t, api, en, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(obs.HeaderTrace); got != "000102030405060708090a0b0c0d0e0f" {
		t.Fatalf("response trace header = %q", got)
	}
	if got := rec.Header().Get(obs.HeaderServerTiming); got != "queue=1000,compute=1000,batch=1,total=5000" {
		t.Fatalf("server timing header = %q", got)
	}

	trec := httptest.NewRecorder()
	api.Handler().ServeHTTP(trec, httptest.NewRequest(http.MethodGet, "/tracez", nil))
	if trec.Code != http.StatusOK {
		t.Fatalf("tracez status %d", trec.Code)
	}
	record := fmt.Sprintf(`{"trace_id":"000102030405060708090a0b0c0d0e0f","client":"tester","model":"demo","digest":"%s","status":200,"batch":1,"queue_us":1000,"compute_us":1000,"start":"2026-01-01T00:00:00.001Z","dur_us":9000,"spans":[{"name":"decode","start_us":1000,"dur_us":1000},{"name":"predict","start_us":3000,"dur_us":5000},{"name":"predict/queue","start_us":3000,"dur_us":1000},{"name":"predict/compute","start_us":4000,"dur_us":1000}]}`,
		en.Digest)
	want := fmt.Sprintf(`{"total":1,"recent":[%s],"slowest":[%s],"errors":[]}`, record, record)
	if got := strings.TrimSpace(trec.Body.String()); got != want {
		t.Fatalf("tracez shape changed:\ngot:  %s\nwant: %s", got, want)
	}
}

// Predict error bodies carry the trace ID (matching the X-Dac-Trace
// response header), so a failed client call is correlatable with /tracez.
func TestPredictErrorBodyCarriesTraceID(t *testing.T) {
	opts := manualOpts(4, 16)
	opts.Obs = obs.NewRegistry()
	r := NewRegistry(opts)
	defer r.Close()
	api := NewServer(r, nil)

	body := []byte(`{"model":"ghost","input":[1]}`)
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	api.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	var out map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["error"] == "" {
		t.Fatal("error body missing error message")
	}
	hdr := rec.Header().Get(obs.HeaderTrace)
	if out["trace_id"] == "" || out["trace_id"] != hdr {
		t.Fatalf("trace_id body %q vs header %q", out["trace_id"], hdr)
	}
	// The failure landed in the error ring too.
	snap := api.Traces().Snapshot()
	if snap.Total != 1 || len(snap.Errors) != 1 || snap.Errors[0].TraceID != hdr {
		t.Fatalf("tracez after error: %+v", snap)
	}
	if snap.Errors[0].Status != http.StatusNotFound || snap.Errors[0].Error == "" {
		t.Fatalf("error record = %+v", snap.Errors[0])
	}
}

// EnableTracing(false) drops trace construction — no records, no timing
// headers — while predictions and per-client accounting still flow.
func TestTracingDisabledNoOps(t *testing.T) {
	path := writeReleased(t, 82, false)
	oreg := obs.NewRegistry()
	opts := manualOpts(4, 16)
	opts.Obs = oreg
	r := NewRegistry(opts)
	defer r.Close()
	en, err := r.LoadFile("demo", path)
	if err != nil {
		t.Fatal(err)
	}
	api := NewServer(r, nil)
	api.EnableTracing(false)

	body, err := json.Marshal(predictRequest{Model: "demo", Input: testInputs(1, en.Model().InputLen(), 83)[0]})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
	req.Header.Set(obs.HeaderClient, "alice")
	rec := tracePredict(t, api, en, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rec.Code, rec.Body.String())
	}
	if h := rec.Header().Get(obs.HeaderTrace); h != "" {
		t.Fatalf("trace header present with tracing off: %q", h)
	}
	if h := rec.Header().Get(obs.HeaderServerTiming); h != "" {
		t.Fatalf("timing header present with tracing off: %q", h)
	}
	if snap := api.Traces().Snapshot(); snap.Total != 0 {
		t.Fatalf("trace recorded with tracing off: %+v", snap)
	}
	if got := oreg.Snapshot().Counters[`serve_client_requests_total{client="alice"}`]; got != 1 {
		t.Fatalf("client accounting = %d, want 1 (accounting must survive tracing off)", got)
	}
}

// The access log gets one flat JSON line per request (no spans), with the
// same trace ID /tracez holds.
func TestAccessLogLineShape(t *testing.T) {
	path := writeReleased(t, 84, false)
	opts := manualOpts(4, 16)
	opts.Obs = obs.NewRegistry()
	r := NewRegistry(opts)
	defer r.Close()
	en, err := r.LoadFile("demo", path)
	if err != nil {
		t.Fatal(err)
	}
	api := NewServer(r, nil)
	var buf bytes.Buffer
	api.SetAccessLog(&buf)

	body, err := json.Marshal(predictRequest{Model: "demo", Input: testInputs(1, en.Model().InputLen(), 85)[0]})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
	req.Header.Set(obs.HeaderClient, "alice")
	if rec := tracePredict(t, api, en, req); rec.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rec.Code, rec.Body.String())
	}

	line := strings.TrimSpace(buf.String())
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("want exactly one log line, got %q", buf.String())
	}
	var rec obs.TraceRecord
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access line is not JSON: %v (%q)", err, line)
	}
	if rec.Client != "alice" || rec.Model != "demo" || rec.Digest != en.Digest || rec.Status != 200 || rec.Batch != 1 {
		t.Fatalf("access line = %+v", rec)
	}
	if rec.Spans != nil {
		t.Fatalf("access line carries spans: %+v", rec.Spans)
	}
	snap := api.Traces().Snapshot()
	if len(snap.Recent) != 1 || snap.Recent[0].TraceID != rec.TraceID {
		t.Fatalf("access line trace %q not in /tracez (%+v)", rec.TraceID, snap.Recent)
	}
}
