package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
)

// httpServer wires a registry with a real flush-window timer (the
// production configuration) behind httptest. The tiny window keeps single
// requests fast; correctness never depends on when flushes land.
func httpServer(t *testing.T, opts Options) (*Registry, *httptest.Server) {
	t.Helper()
	r := NewRegistry(opts)
	ts := httptest.NewServer(NewServer(r, core.CIFARRelease().GroupBounds).Handler())
	t.Cleanup(func() {
		ts.Close()
		r.Close()
	})
	return r, ts
}

func postJSON(t *testing.T, url string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) (int, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp.StatusCode, out
}

func TestHTTPPredictSingleAndBatch(t *testing.T) {
	path := writeReleased(t, 60, true)
	opts := Options{MaxBatch: 4, QueueDepth: 64, FlushEvery: 200 * time.Microsecond, Threads: 2}
	r, ts := httpServer(t, opts)
	if _, err := r.LoadFile("demo", path); err != nil {
		t.Fatal(err)
	}
	ref := referenceModel(t, path)
	inputs := testInputs(5, ref.InputLen(), 61)
	want, err := ref.EvalBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}

	// Single.
	status, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "demo", Input: inputs[0]})
	if status != http.StatusOK {
		t.Fatalf("single predict status %d: %s", status, body["error"])
	}
	var preds []Prediction
	if err := json.Unmarshal(body["predictions"], &preds); err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 {
		t.Fatalf("got %d predictions, want 1", len(preds))
	}
	for j, v := range preds[0].Logits {
		if v != want[0][j] {
			t.Fatalf("logit %d: served %v != offline %v", j, v, want[0][j])
		}
	}

	// Batch.
	status, body = postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "demo", Inputs: inputs})
	if status != http.StatusOK {
		t.Fatalf("batch predict status %d: %s", status, body["error"])
	}
	if err := json.Unmarshal(body["predictions"], &preds); err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(inputs) {
		t.Fatalf("got %d predictions, want %d", len(preds), len(inputs))
	}
	for i := range preds {
		for j, v := range preds[i].Logits {
			if v != want[i][j] {
				t.Fatalf("sample %d logit %d: served %v != offline %v", i, j, v, want[i][j])
			}
		}
	}
}

func TestHTTPPredictErrors(t *testing.T) {
	path := writeReleased(t, 62, false)
	opts := Options{MaxBatch: 4, QueueDepth: 64, FlushEvery: 200 * time.Microsecond, Threads: 1}
	r, ts := httpServer(t, opts)
	en, err := r.LoadFile("demo", path)
	if err != nil {
		t.Fatal(err)
	}
	u := en.Model().InputLen()

	for _, tc := range []struct {
		name   string
		body   any
		status int
	}{
		{"unknown model", predictRequest{Model: "nope", Input: make([]float64, u)}, http.StatusNotFound},
		{"no input", predictRequest{Model: "demo"}, http.StatusBadRequest},
		{"both inputs", predictRequest{Model: "demo", Input: make([]float64, u), Inputs: [][]float64{make([]float64, u)}}, http.StatusBadRequest},
		{"bad length", predictRequest{Model: "demo", Input: make([]float64, u-1)}, http.StatusBadRequest},
		{"empty batch", predictRequest{Model: "demo", Inputs: [][]float64{}}, http.StatusBadRequest},
	} {
		if status, body := postJSON(t, ts.URL+"/v1/predict", tc.body); status != tc.status {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, status, tc.status, body["error"])
		}
	}

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
}

// A stalled engine with a full queue must surface as 429 over HTTP.
func TestHTTPPredictBackpressure429(t *testing.T) {
	path := writeReleased(t, 63, false)
	r, ts := httpServer(t, manualOpts(2, 2))
	en, err := r.LoadFile("demo", path)
	if err != nil {
		t.Fatal(err)
	}
	u := en.Model().InputLen()

	inFlush := make(chan struct{})
	release := make(chan struct{})
	var hooked sync.Once
	en.engine.beforeFlush = func(int) {
		hooked.Do(func() {
			close(inFlush)
			<-release
		})
	}
	// Two submissions trigger a size flush, which stalls in the hook. They
	// must land before the queue-fillers: submitted together, the scheduler
	// can let the fillers win the queue slots and bounce the rest with
	// ErrQueueFull before the engine ever stalls, and the queue then never
	// refills to 2.
	var wg sync.WaitGroup
	for _, in := range testInputs(2, u, 64) {
		wg.Add(1)
		go func(in []float64) {
			defer wg.Done()
			en.Predict(in)
		}(in)
	}
	<-inFlush
	// The engine goroutine is stalled, so these fill the drained queue.
	for _, in := range testInputs(2, u, 66) {
		wg.Add(1)
		go func(in []float64) {
			defer wg.Done()
			en.Predict(in)
		}(in)
	}
	for en.engine.QueueLen() < 2 {
		runtime.Gosched()
	}

	status, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "demo", Input: make([]float64, u)})
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", status, body["error"])
	}

	close(release)
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			return
		default:
			en.Tick()
		}
	}
}

func TestHTTPModelsAndHealthAndStats(t *testing.T) {
	path := writeReleased(t, 65, true)
	opts := Options{MaxBatch: 4, QueueDepth: 16, FlushEvery: 200 * time.Microsecond, Threads: 1}
	r, ts := httpServer(t, opts)
	en, err := r.LoadFile("demo", path)
	if err != nil {
		t.Fatal(err)
	}

	status, body := getJSON(t, ts.URL+"/v1/models")
	if status != http.StatusOK {
		t.Fatalf("models status %d", status)
	}
	var infos []modelInfo
	if err := json.Unmarshal(body["models"], &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "demo" || infos[0].Digest != en.Digest || !infos[0].Quantized {
		t.Fatalf("models = %+v", infos)
	}

	status, body = getJSON(t, ts.URL+"/healthz")
	if status != http.StatusOK || string(body["status"]) != `"ok"` {
		t.Fatalf("healthz status %d body %v", status, body)
	}

	// Serve one request so the stats have content.
	if status, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "demo", Input: testInputs(1, en.Model().InputLen(), 66)[0]}); status != http.StatusOK {
		t.Fatalf("predict status %d (%s)", status, body["error"])
	}
	status, body = getJSON(t, ts.URL+"/statsz")
	if status != http.StatusOK {
		t.Fatalf("statsz status %d", status)
	}
	var perModel map[string]Snapshot
	if err := json.Unmarshal(body["models"], &perModel); err != nil {
		t.Fatal(err)
	}
	if perModel["demo"].Served != 1 {
		t.Fatalf("statsz served = %d, want 1", perModel["demo"].Served)
	}
}

// The server-side audit must reproduce the offline dacextract -audit
// verdict on the same released file, score for score.
func TestHTTPAuditMatchesOfflineVerdict(t *testing.T) {
	for _, quantized := range []bool{false, true} {
		path := writeReleased(t, 67, quantized)
		opts := Options{MaxBatch: 4, QueueDepth: 16, FlushEvery: 200 * time.Microsecond, Threads: 1}
		r, ts := httpServer(t, opts)
		en, err := r.LoadFile("demo", path)
		if err != nil {
			t.Fatal(err)
		}

		bounds := core.CIFARRelease().GroupBounds
		offline := attack.AuditModel(referenceModel(t, path), bounds, 0)

		resp, err := http.Post(ts.URL+"/v1/models/demo:audit", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var got auditResponse
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("audit status %d", resp.StatusCode)
		}

		if got.Suspicious != offline.Suspicious {
			t.Fatalf("quantized=%v: served verdict %v != offline %v", quantized, got.Suspicious, offline.Suspicious)
		}
		if got.Quantized != offline.Quantized || got.Threshold != offline.Threshold || got.Global != offline.Global {
			t.Fatalf("quantized=%v: served report %+v != offline %+v", quantized, got, offline)
		}
		if len(got.PerGroup) != len(offline.PerGroup) {
			t.Fatalf("per-group count %d != %d", len(got.PerGroup), len(offline.PerGroup))
		}
		for i, g := range got.PerGroup {
			if g.Name != offline.PerGroup[i].Name || g.Score != offline.PerGroup[i].Score {
				t.Fatalf("group %d: served %+v != offline %+v", i, g, offline.PerGroup[i])
			}
		}
		if got.Digest != en.Digest {
			t.Fatal("audit digest mismatch")
		}

		// Unknown model and unknown operation 404.
		if resp, err := http.Post(ts.URL+"/v1/models/nope:audit", "application/json", nil); err != nil {
			t.Fatal(err)
		} else {
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("unknown model audit status %d", resp.StatusCode)
			}
		}
		if resp, err := http.Post(ts.URL+"/v1/models/demo:explode", "application/json", nil); err != nil {
			t.Fatal(err)
		} else {
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("unknown op status %d", resp.StatusCode)
			}
		}
		ts.Close()
		r.Close()
	}
}

// After registry shutdown (the drain step of graceful shutdown), predicts
// answer 503.
func TestHTTPPredictAfterShutdown503(t *testing.T) {
	path := writeReleased(t, 68, false)
	opts := Options{MaxBatch: 4, QueueDepth: 16, FlushEvery: 200 * time.Microsecond, Threads: 1}
	r, ts := httpServer(t, opts)
	en, err := r.LoadFile("demo", path)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	status, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "demo", Input: make([]float64, en.Model().InputLen())})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", status, body["error"])
	}
}
