package serve

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/compute"
	"repro/internal/nn"
)

// Prediction is the serving result for one input sample — the wire shape
// lives in the api package so the gateway and attack tooling share it.
// Engines always fill Probs and Logits (bit-identical to a serial
// single-sample forward pass); serving policies may strip them before the
// response leaves the HTTP layer.
type Prediction = api.Prediction

// Timing is the engine-side breakdown for one answered request, the
// substrate of request tracing: how long the request waited in the queue
// before its batch flushed, the batched forward-pass wall time that
// answered it, and the batch size it rode in. The HTTP layer folds it into
// trace spans and the X-Dac-Server-Timing response header.
type Timing struct {
	QueueWait time.Duration
	Compute   time.Duration
	Batch     int
}

type request struct {
	input []float64
	// enq is when Submit enqueued the request; queue wait is measured
	// against the flush that picks it up.
	enq  time.Time
	resp chan result
}

type result struct {
	pred Prediction
	tm   Timing
	err  error
}

// Engine micro-batches concurrent prediction requests into shared forward
// passes over one model. Requests enter a bounded queue; the engine
// goroutine coalesces them and flushes a batch when it reaches MaxBatch or
// when a tick arrives (from the flush-window timer, or an explicit Tick).
// The engine goroutine is the sole driver of the model's compute context.
type Engine struct {
	model    *nn.Model
	ctx      *compute.Ctx
	inLen    int
	maxBatch int

	queue chan *request
	tick  chan struct{}
	quit  chan struct{}
	done  chan struct{}

	// mu orders Submit enqueues against Close: a submission that saw
	// closed == false has fully enqueued before Close proceeds, so the
	// drain pass answers every queued request and none is stranded.
	mu     sync.RWMutex
	closed bool

	stats      *EngineStats
	stopTicker chan struct{} // nil when FlushEvery < 0

	// now is the engine's clock (time.Now outside tests); the /tracez
	// golden injects a fake clock for deterministic timings.
	now func() time.Time

	// beforeFlush, when set (tests only), runs at the start of every flush
	// while the engine goroutine is busy — the hook deterministic
	// backpressure tests use to fill the queue behind a stalled engine.
	beforeFlush func(batch int)
}

func newEngine(m *nn.Model, name string, opts Options) *Engine {
	e := &Engine{
		model:    m,
		ctx:      compute.New(opts.Threads),
		inLen:    m.InputLen(),
		maxBatch: opts.MaxBatch,
		queue:    make(chan *request, opts.QueueDepth),
		tick:     make(chan struct{}),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		stats:    newEngineStats(name, opts),
		now:      time.Now,
	}
	m.SetCtx(e.ctx)
	go e.loop()
	if opts.FlushEvery > 0 {
		e.stopTicker = make(chan struct{})
		go e.runTicker(opts.FlushEvery)
	}
	return e
}

// Submit enqueues one input and blocks until its batch is evaluated. It
// fails fast with ErrQueueFull when the queue is at capacity and ErrClosed
// after Close.
func (e *Engine) Submit(input []float64) (Prediction, error) {
	pred, _, err := e.SubmitTimed(input)
	return pred, err
}

// SubmitTimed is Submit returning the request's timing breakdown (queue
// wait, batched compute time, batch size) alongside the prediction — what
// the tracing HTTP layer records as spans and reports in
// X-Dac-Server-Timing.
func (e *Engine) SubmitTimed(input []float64) (Prediction, Timing, error) {
	if len(input) != e.inLen {
		return Prediction{}, Timing{}, fmt.Errorf("serve: input has %d values, model takes %d", len(input), e.inLen)
	}
	r := &request{input: input, enq: e.now(), resp: make(chan result, 1)}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return Prediction{}, Timing{}, ErrClosed
	}
	select {
	case e.queue <- r:
		e.mu.RUnlock()
		e.stats.recordAccepted()
	default:
		e.mu.RUnlock()
		e.stats.recordRejected()
		return Prediction{}, Timing{}, ErrQueueFull
	}
	res := <-r.resp
	return res.pred, res.tm, res.err
}

// Tick forces a flush of whatever is pending, blocking until the engine
// observes it. After Close it is a no-op. The flush-window timer calls this
// on every period; deterministic tests call it directly.
func (e *Engine) Tick() {
	select {
	case e.tick <- struct{}{}:
	case <-e.done:
	}
}

// QueueLen reports the current queue depth (excluding requests the engine
// has already pulled into its pending batch).
func (e *Engine) QueueLen() int { return len(e.queue) }

// Stats returns a consistent snapshot of the engine's counters.
func (e *Engine) Stats() Snapshot { return e.stats.snapshot(len(e.queue)) }

// Close rejects new submissions, drains every request already accepted
// through final batched passes, stops the engine goroutine, and releases
// its compute context. Safe to call more than once.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.done
		return
	}
	e.closed = true
	e.mu.Unlock()
	if e.stopTicker != nil {
		close(e.stopTicker)
	}
	close(e.quit)
	<-e.done
	e.ctx.Close()
}

func (e *Engine) loop() {
	defer close(e.done)
	pending := make([]*request, 0, e.maxBatch)
	for {
		select {
		case r := <-e.queue:
			pending = append(pending, r)
			if len(pending) >= e.maxBatch {
				e.flush(&pending)
			}
			e.drainQueue(&pending)
		case <-e.tick:
			// Gather everything already queued before honoring the tick.
			// Go selects randomly among ready cases, so under sustained
			// load the flush timer would otherwise preempt queued requests
			// and cut partial batches even though a full MaxBatch is
			// sitting in the channel (the mean-batch 12.8 plateau that
			// capped req/s at MaxBatch=16 in BENCH_serve.json).
			e.drainQueue(&pending)
			e.flush(&pending)
		case <-e.quit:
			// Drain: closed was set before quit closed, so no new request
			// can enter the queue and its length is final.
			for {
				select {
				case r := <-e.queue:
					pending = append(pending, r)
					if len(pending) >= e.maxBatch {
						e.flush(&pending)
					}
				default:
					e.flush(&pending)
					return
				}
			}
		}
	}
}

// drainQueue moves every request already sitting in the queue into the
// pending batch without blocking, flushing each time the batch fills.
func (e *Engine) drainQueue(pending *[]*request) {
	for {
		select {
		case r := <-e.queue:
			*pending = append(*pending, r)
			if len(*pending) >= e.maxBatch {
				e.flush(pending)
			}
		default:
			return
		}
	}
}

// flush evaluates the pending batch in arrival order and answers each
// request. Per-sample results do not depend on how requests were batched.
func (e *Engine) flush(pending *[]*request) {
	batch := *pending
	if len(batch) == 0 {
		return
	}
	*pending = (*pending)[:0]
	if e.beforeFlush != nil {
		e.beforeFlush(len(batch))
	}
	flushStart := e.now()
	inputs := make([][]float64, len(batch))
	for i, r := range batch {
		inputs[i] = r.input
	}
	start := e.now()
	logits, err := e.model.EvalBatch(inputs)
	lat := e.now().Sub(start)
	if err != nil {
		for _, r := range batch {
			r.resp <- result{tm: timingFor(r, flushStart, lat, len(batch)), err: err}
		}
		e.stats.recordError(len(batch))
		return
	}
	for i, r := range batch {
		r.resp <- result{
			pred: Prediction{
				Class:  argmax(logits[i]),
				Probs:  softmax(logits[i]),
				Logits: logits[i],
			},
			tm: timingFor(r, flushStart, lat, len(batch)),
		}
	}
	e.stats.recordBatch(len(batch), lat)
}

// timingFor derives one request's Timing from its flush: queue wait is
// enqueue-to-flush-start (clamped at zero against clock skew), compute is
// the whole batched forward pass — every rider pays the full pass, which
// is what it actually waited for.
func timingFor(r *request, flushStart time.Time, lat time.Duration, batch int) Timing {
	qw := flushStart.Sub(r.enq)
	if qw < 0 {
		qw = 0
	}
	return Timing{QueueWait: qw, Compute: lat, Batch: batch}
}

func (e *Engine) runTicker(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			e.Tick()
		case <-e.stopTicker:
			return
		}
	}
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// softmax matches nn.Softmax's stable formulation (max subtraction) so
// served probabilities are bit-identical to offline ones.
func softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	maxV := math.Inf(-1)
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - maxV)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
