package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

func TestPolicyValidate(t *testing.T) {
	for _, ok := range []Policy{
		{},
		{Mode: PolicyFull},
		{Mode: PolicyTop1, Round: 3},
		{Mode: PolicyLabel, QueryBudget: 100},
		{Round: maxRound},
	} {
		if err := ok.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []Policy{
		{Mode: "argmax"},
		{Round: -1},
		{Round: maxRound + 1},
		{QueryBudget: -5},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", bad)
		}
	}
}

func TestPolicyApply(t *testing.T) {
	fresh := func() []api.Prediction {
		return []api.Prediction{{
			Class:  2,
			Probs:  []float64{0.124999, 0.25, 0.5, 0.125001},
			Logits: []float64{-1.23456, 0, 1.98765, -1.2},
		}}
	}

	if mode := (Policy{}).Apply(fresh()); mode != "" {
		t.Fatalf("zero policy mode = %q, want \"\"", mode)
	}

	preds := fresh()
	if mode := (Policy{Round: 2}).Apply(preds); mode != "" {
		t.Fatalf("round-only mode = %q, want \"\"", mode)
	}
	if want := []float64{0.12, 0.25, 0.5, 0.13}; !equalFloats(preds[0].Probs, want) {
		t.Fatalf("rounded probs %v, want %v", preds[0].Probs, want)
	}
	if want := []float64{-1.23, 0, 1.99, -1.2}; !equalFloats(preds[0].Logits, want) {
		t.Fatalf("rounded logits %v, want %v", preds[0].Logits, want)
	}

	preds = fresh()
	if mode := (Policy{Mode: PolicyTop1, Round: 1}).Apply(preds); mode != PolicyTop1 {
		t.Fatalf("top1 mode = %q", mode)
	}
	if preds[0].Probs != nil || preds[0].Logits != nil {
		t.Fatalf("top1 leaked scores: %+v", preds[0])
	}
	if preds[0].TopProb != 0.5 || preds[0].Class != 2 {
		t.Fatalf("top1 kept top_prob=%v class=%d", preds[0].TopProb, preds[0].Class)
	}

	preds = fresh()
	if mode := (Policy{Mode: PolicyLabel}).Apply(preds); mode != PolicyLabel {
		t.Fatalf("label mode = %q", mode)
	}
	if preds[0].Probs != nil || preds[0].Logits != nil || preds[0].TopProb != 0 {
		t.Fatalf("label leaked scores: %+v", preds[0])
	}
}

func equalFloats(got, want []float64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			return false
		}
	}
	return true
}

func TestRegistrySetPolicy(t *testing.T) {
	r := NewRegistry(manualOpts(4, 16))
	defer r.Close()
	if err := r.SetPolicy("m", Policy{Mode: "bogus"}); err == nil {
		t.Fatal("invalid policy accepted")
	}
	if err := r.SetPolicy("m", Policy{Round: 2}); err != nil {
		t.Fatal(err)
	}
	if got := r.PolicyFor("m"); got.Round != 2 {
		t.Fatalf("PolicyFor = %+v", got)
	}
	// Setting the zero policy clears the entry.
	if err := r.SetPolicy("m", Policy{}); err != nil {
		t.Fatal(err)
	}
	if got := r.PolicyFor("m"); got.Active() {
		t.Fatalf("cleared policy still active: %+v", got)
	}
}

func TestDetectorFlagsNovelHighVolume(t *testing.T) {
	opts := Options{DetectMinQueries: 16, DetectNovelty: 0.9, Obs: obs.NewRegistry()}.withDefaults()
	opts.DetectMinQueries = 16 // withDefaults raises the floor; keep the test fast
	d := newDetector(opts)

	// The attacker: every input bit-distinct.
	attacker := testInputs(20, 8, 1)
	d.Observe("mallory", attacker)
	// The dashboard: one hot input, repeated well past the volume floor.
	same := [][]float64{attacker[0]}
	for i := 0; i < 40; i++ {
		d.Observe("grafana", same)
	}
	// Low volume, fully novel: below the floor, never flagged.
	d.Observe("casual", testInputs(3, 8, 2))

	rep := d.Report()
	if rep.Flagged != 1 {
		t.Fatalf("flagged %d clients, want 1: %+v", rep.Flagged, rep.Clients)
	}
	byClient := map[string]ClientDetectReport{}
	for _, c := range rep.Clients {
		byClient[c.Client] = c
	}
	if !byClient["mallory"].Flagged {
		t.Fatalf("attacker not flagged: %+v", byClient["mallory"])
	}
	if byClient["grafana"].Flagged || byClient["casual"].Flagged {
		t.Fatalf("honest clients flagged: %+v", rep.Clients)
	}
	if c := byClient["grafana"]; c.Distinct != 1 || c.Queries != 40 {
		t.Fatalf("repeat client profile: %+v", c)
	}
}

func TestDetectorClientOverflow(t *testing.T) {
	opts := Options{DetectMinQueries: 4, DetectNovelty: 0.5, MaxClients: 2, Obs: obs.NewRegistry()}.withDefaults()
	opts.DetectMinQueries, opts.MaxClients = 4, 2
	d := newDetector(opts)
	d.Observe("a", testInputs(2, 4, 1))
	d.Observe("b", testInputs(2, 4, 2))
	d.Observe("c", testInputs(2, 4, 3))
	d.Observe("d", testInputs(2, 4, 4))
	rep := d.Report()
	if len(rep.Clients) != 3 {
		t.Fatalf("tracked %d profiles, want 2 + overflow: %+v", len(rep.Clients), rep.Clients)
	}
	byClient := map[string]ClientDetectReport{}
	for _, c := range rep.Clients {
		byClient[c.Client] = c
	}
	if got := byClient[obs.OverflowLabel]; got.Queries != 4 {
		t.Fatalf("overflow profile collected %d queries, want 4 (c and d collapsed)", got.Queries)
	}
}

// TestHTTPPredictOmitScoresAndVersion covers the versioned predict
// envelope: the response echoes the api version, and omit_scores strips
// probs/logits without any server-side policy.
func TestHTTPPredictOmitScoresAndVersion(t *testing.T) {
	path := writeReleased(t, 60, false)
	opts := Options{MaxBatch: 4, QueueDepth: 64, FlushEvery: 200 * time.Microsecond, Threads: 2}
	r, ts := httpServer(t, opts)
	if _, err := r.LoadFile("demo", path); err != nil {
		t.Fatal(err)
	}
	in := testInputs(1, referenceModel(t, path).InputLen(), 61)[0]

	status, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{API: api.Version, Model: "demo", Input: in, OmitScores: true})
	if status != http.StatusOK {
		t.Fatalf("predict status %d: %s", status, body["error"])
	}
	if got := string(body["api"]); got != `"v1"` {
		t.Fatalf("response api = %s, want \"v1\"", got)
	}
	var preds []Prediction
	if err := json.Unmarshal(body["predictions"], &preds); err != nil {
		t.Fatal(err)
	}
	if preds[0].Probs != nil || preds[0].Logits != nil || preds[0].TopProb != 0 {
		t.Fatalf("omit_scores leaked scores: %+v", preds[0])
	}
}

// TestHTTPPolicyEndpoint drives the :policy get/set round trip and the
// policy's effect on predictions, all without reloading the model.
func TestHTTPPolicyEndpoint(t *testing.T) {
	path := writeReleased(t, 60, false)
	opts := Options{MaxBatch: 4, QueueDepth: 64, FlushEvery: 200 * time.Microsecond, Threads: 2}
	r, ts := httpServer(t, opts)
	if _, err := r.LoadFile("demo", path); err != nil {
		t.Fatal(err)
	}
	in := testInputs(1, referenceModel(t, path).InputLen(), 61)[0]

	// Get before set: inactive.
	resp, err := http.Post(ts.URL+"/v1/models/demo:policy", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pr struct {
		Model  string `json:"model"`
		Policy Policy `json:"policy"`
		Active bool   `json:"active"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pr.Active || pr.Model != "demo" {
		t.Fatalf("fresh policy: %+v", pr)
	}

	// Invalid policy: rejected with the envelope, nothing applied.
	status, body := postJSON(t, ts.URL+"/v1/models/demo:policy", Policy{Mode: "argmax"})
	if status != http.StatusBadRequest {
		t.Fatalf("invalid policy answered %d: %v", status, body)
	}
	if got := string(body["code"]); got != `"bad_request"` {
		t.Fatalf("invalid policy code = %s", got)
	}

	// Set rounding, hot: predictions now carry rounded probs.
	status, body = postJSON(t, ts.URL+"/v1/models/demo:policy", Policy{Round: 2})
	if status != http.StatusOK {
		t.Fatalf("policy set answered %d: %v", status, body)
	}
	status, body = postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "demo", Input: in})
	if status != http.StatusOK {
		t.Fatalf("predict status %d: %s", status, body["error"])
	}
	var preds []Prediction
	if err := json.Unmarshal(body["predictions"], &preds); err != nil {
		t.Fatal(err)
	}
	for _, p := range preds[0].Probs {
		if r := roundTo(p, 2); r != p {
			t.Fatalf("prob %v not rounded to 2 decimals", p)
		}
	}
	if r.PolicyFor("demo") != (Policy{Round: 2}) {
		t.Fatalf("registry policy = %+v", r.PolicyFor("demo"))
	}
}
