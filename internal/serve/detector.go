package serve

import (
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"repro/internal/obs"
)

// detectHashCap bounds the distinct-input hash set kept per client. An
// extraction run is flagged long before this; past it, novelty saturates
// instead of growing server memory.
const detectHashCap = 1 << 14

// Detector is the obs-backed extraction-pattern heuristic: it watches
// per-client query volume and input novelty (the fraction of a client's
// samples never seen from them before). Honest traffic is either low
// volume or repetitive (retries, dashboards, the same hot inputs);
// surrogate-training attackers need many *distinct* inputs, so high
// volume × high novelty is the extraction signature. Flagging is
// advisory — it feeds metrics and GET /detectz, it does not block (pair
// it with a query budget for that).
type Detector struct {
	// minQueries is the volume floor below which nobody is flagged.
	minQueries int
	// novelty is the distinct-fraction threshold in [0, 1].
	novelty float64
	// maxClients caps tracked identities; later ones share the overflow
	// profile, mirroring the per-client metric vecs.
	maxClients int

	mu      sync.Mutex
	clients map[string]*clientProfile

	// flagged mirrors the flagged-client count into the obs registry
	// (serve_extract_flagged_clients).
	flagged *obs.Gauge
	// samples counts every sample the detector observed
	// (serve_extract_samples_total).
	samples *obs.Counter
}

type clientProfile struct {
	queries int // samples observed
	hashes  map[uint64]struct{}
	flagged bool
}

func newDetector(opts Options) *Detector {
	d := &Detector{
		minQueries: opts.DetectMinQueries,
		novelty:    opts.DetectNovelty,
		maxClients: opts.MaxClients,
		clients:    map[string]*clientProfile{},
		flagged:    obs.NewGauge(),
		samples:    obs.NewCounter(),
	}
	opts.Obs.RegisterGauge("serve_extract_flagged_clients", d.flagged)
	opts.Obs.RegisterCounter("serve_extract_samples_total", d.samples)
	return d
}

// Observe feeds one predict request's samples into the client's profile.
// Called on every predict attempt — including ones a budget later denies,
// since denied probes are still extraction pressure.
func (d *Detector) Observe(client string, inputs [][]float64) {
	if len(inputs) == 0 {
		return
	}
	d.samples.Add(int64(len(inputs)))
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.clients[client]
	if !ok {
		if len(d.clients) >= d.maxClients {
			client = obs.OverflowLabel
			p = d.clients[client]
		}
		if p == nil {
			p = &clientProfile{hashes: map[uint64]struct{}{}}
			d.clients[client] = p
		}
	}
	for _, in := range inputs {
		p.queries++
		if len(p.hashes) < detectHashCap {
			p.hashes[hashInput(in)] = struct{}{}
		}
	}
	if !p.flagged && p.queries >= d.minQueries && p.noveltyRatio() >= d.novelty {
		p.flagged = true
		d.flagged.Add(1)
	}
}

func (p *clientProfile) noveltyRatio() float64 {
	if p.queries == 0 {
		return 0
	}
	return float64(len(p.hashes)) / float64(p.queries)
}

// hashInput digests one flattened sample's exact float bits (FNV-64a), so
// "distinct" means bit-distinct — a jittered replay of a seed image
// counts as novel, which is exactly the attacker behavior the heuristic
// is after.
func hashInput(in []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range in {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// ClientDetectReport is one client's row in the /detectz answer.
type ClientDetectReport struct {
	Client   string  `json:"client"`
	Queries  int     `json:"queries"`
	Distinct int     `json:"distinct"`
	Novelty  float64 `json:"novelty"`
	Flagged  bool    `json:"flagged"`
}

// DetectReport is the GET /detectz body: per-client extraction pressure,
// sorted by client for deterministic output.
type DetectReport struct {
	// MinQueries and Novelty echo the thresholds the verdicts used.
	MinQueries int                  `json:"min_queries"`
	Novelty    float64              `json:"novelty_threshold"`
	Flagged    int                  `json:"flagged"`
	Clients    []ClientDetectReport `json:"clients"`
}

// Report snapshots the detector.
func (d *Detector) Report() DetectReport {
	d.mu.Lock()
	defer d.mu.Unlock()
	rep := DetectReport{MinQueries: d.minQueries, Novelty: d.novelty}
	for client, p := range d.clients {
		rep.Clients = append(rep.Clients, ClientDetectReport{
			Client:   client,
			Queries:  p.queries,
			Distinct: len(p.hashes),
			Novelty:  p.noveltyRatio(),
			Flagged:  p.flagged,
		})
		if p.flagged {
			rep.Flagged++
		}
	}
	sort.Slice(rep.Clients, func(i, j int) bool { return rep.Clients[i].Client < rep.Clients[j].Client })
	if rep.Clients == nil {
		rep.Clients = []ClientDetectReport{}
	}
	return rep
}
