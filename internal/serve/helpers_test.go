package serve

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/api"
	"repro/internal/modelio"
	"repro/internal/nn"
	"repro/internal/quantize"
	"repro/internal/tensor"
)

// The serve tests predate the shared api package; these aliases keep them
// reading naturally while exercising the real wire types.
type (
	predictRequest  = api.PredictRequest
	predictResponse = api.PredictResponse
)

func testArch() nn.ResNetConfig {
	return nn.ResNetConfig{
		InC: 1, InH: 8, InW: 8, Classes: 4,
		Widths: []int{4, 8}, Blocks: []int{1, 1}, Seed: 77,
	}
}

// testModel builds a small ResNet with non-trivial weights and batch-norm
// running statistics, deterministically from seed.
func testModel(seed int64) *nn.Model {
	m := nn.NewResNet(testArch())
	rng := rand.New(rand.NewSource(seed))
	for _, p := range m.Params() {
		p.Value.RandN(rng, 0, 0.1)
	}
	m.ForwardTrain(tensor.New(8, 1, 8, 8).RandN(rng, 0, 1))
	return m
}

// writeReleased exports a test model (quantized when asked) to a released
// file under t.TempDir and returns its path.
func writeReleased(t testing.TB, seed int64, quantized bool) string {
	t.Helper()
	m := testModel(seed)
	var applied *quantize.Applied
	if quantized {
		applied = quantize.QuantizeModel(m, quantize.WeightedEntropy{}, 8)
	}
	rm, err := modelio.Export(m, testArch(), applied)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := modelio.Save(path, rm); err != nil {
		t.Fatal(err)
	}
	return path
}

// referenceModel re-imports a released file on a serial context, the
// offline twin every served prediction is compared against.
func referenceModel(t testing.TB, path string) *nn.Model {
	t.Helper()
	rm, err := modelio.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := modelio.Import(rm)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// testInputs generates n deterministic flattened inputs.
func testInputs(n, length int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		in := make([]float64, length)
		for j := range in {
			in[j] = rng.NormFloat64()
		}
		out[i] = in
	}
	return out
}

// manualOpts returns options with the flush timer disabled: batches flush
// only on size or explicit Tick, so tests are deterministic.
func manualOpts(maxBatch, queueDepth int) Options {
	return Options{MaxBatch: maxBatch, QueueDepth: queueDepth, FlushEvery: -1, Threads: 2}
}

// fileBytes reads a whole file, failing the test on error.
func fileBytes(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
