package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// predictOne submits a single input to a manual-flush engine, ticking until
// it is answered.
func predictOne(en *Entry, in []float64) error {
	done := make(chan error, 1)
	go func() {
		_, err := en.Predict(in)
		done <- err
	}()
	for {
		select {
		case err := <-done:
			return err
		default:
			en.Tick()
		}
	}
}

// The /statsz snapshot shape is API: dashboards parse it. The golden
// serialization pins every key (and the omitempty behaviour of errored and
// batch_hist) across the migration onto the obs registry.
func TestStatszSnapshotJSONShapeGolden(t *testing.T) {
	path := writeReleased(t, 90, false)
	opts := manualOpts(4, 16)
	opts.Obs = obs.NewRegistry()
	r := NewRegistry(opts)
	defer r.Close()
	en, err := r.LoadFile("demo", path)
	if err != nil {
		t.Fatal(err)
	}

	if err := predictOne(en, testInputs(1, en.Model().InputLen(), 91)[0]); err != nil {
		t.Fatal(err)
	}

	snap := en.Stats()
	got, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`{"accepted":1,"served":1,"rejected":0,"batches":1,"batch_hist":{"1":1},"mean_batch":1,"queue_depth":0,"mean_latency_ms":%g,"max_latency_ms":%g}`,
		snap.MeanLatencyMS, snap.MaxLatencyMS)
	if string(got) != want {
		t.Fatalf("statsz snapshot shape changed:\ngot:  %s\nwant: %s", got, want)
	}
	if snap.MeanLatencyMS <= 0 || snap.MaxLatencyMS < snap.MeanLatencyMS {
		t.Fatalf("latency stats implausible: %+v", snap)
	}
}

// Engine metric series live on the obs registry with model labels; a hot
// swap replaces them (fresh engine starts from zero) without touching the
// old engine's detached instances, and Remove unregisters them.
func TestServeMetricsLifecycleOnObsRegistry(t *testing.T) {
	path := writeReleased(t, 92, false)
	oreg := obs.NewRegistry()
	opts := manualOpts(4, 16)
	opts.Obs = oreg
	opts.LatencyBuckets = []float64{0.5, 1} // exercise configurable bounds
	r := NewRegistry(opts)
	defer r.Close()
	en, err := r.LoadFile("demo", path)
	if err != nil {
		t.Fatal(err)
	}

	if err := predictOne(en, testInputs(1, en.Model().InputLen(), 93)[0]); err != nil {
		t.Fatal(err)
	}

	snap := oreg.Snapshot()
	if got := snap.Counters[`serve_requests_served_total{model="demo"}`]; got != 1 {
		t.Fatalf("served series = %d, want 1 (counters: %v)", got, snap.Counters)
	}
	bs := snap.Histograms[`serve_batch_size{model="demo"}`]
	if bs.Count != 1 || len(bs.Bounds) != opts.MaxBatch {
		t.Fatalf("batch size hist = %+v, want count 1 over %d exact buckets", bs, opts.MaxBatch)
	}
	lat := snap.Histograms[`serve_batch_latency_seconds{model="demo"}`]
	if len(lat.Bounds) != 2 || lat.Bounds[0] != 0.5 {
		t.Fatalf("latency bounds = %v, want the configured [0.5 1]", lat.Bounds)
	}

	// Hot swap: same names, fresh instances starting at zero; the old
	// engine's snapshot still reads its detached counters.
	if _, err := r.LoadFile("demo", path); err != nil {
		t.Fatal(err)
	}
	if got := oreg.Snapshot().Counters[`serve_requests_served_total{model="demo"}`]; got != 0 {
		t.Fatalf("swapped-in series = %d, want 0", got)
	}
	if en.Stats().Served != 1 {
		t.Fatalf("old engine lost its detached count: %+v", en.Stats())
	}

	// Remove unregisters the current engine's series.
	if !r.Remove("demo") {
		t.Fatal("Remove returned false")
	}
	if _, ok := oreg.Snapshot().Counters[`serve_requests_served_total{model="demo"}`]; ok {
		t.Fatal("Remove left the served series registered")
	}
}

// Regression for the shutdown race: /statsz and /metricsz snapshots must be
// safe while Close's drain pass is still answering queued requests (run
// under -race by make race-fast).
func TestStatsDuringShutdownNoRace(t *testing.T) {
	path := writeReleased(t, 94, false)
	oreg := obs.NewRegistry()
	opts := manualOpts(4, 64)
	opts.Obs = oreg
	r := NewRegistry(opts)
	en, err := r.LoadFile("demo", path)
	if err != nil {
		t.Fatal(err)
	}

	inputs := testInputs(24, en.Model().InputLen(), 95)
	var wg sync.WaitGroup
	for _, in := range inputs {
		wg.Add(1)
		go func(in []float64) {
			defer wg.Done()
			en.Predict(in) // ErrClosed for late arrivals is fine
		}(in)
	}
	// Wait until at least one request is in, so the drain has work to race
	// the readers against.
	for en.Stats().Accepted == 0 {
		time.Sleep(time.Millisecond)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Stats()
				oreg.WritePrometheus(io.Discard)
			}
		}
	}()

	r.Close() // drains every accepted request while the reader hammers
	wg.Wait()
	close(stop)
	readers.Wait()

	// Requests that hit ErrClosed were neither accepted nor rejected, so
	// only the drain identity is asserted: everything accepted was answered.
	snap := en.Stats()
	if snap.Accepted != snap.Served+snap.Errored {
		t.Fatalf("drain left accepted requests unanswered: %+v", snap)
	}
	if snap.Served > int64(len(inputs)) {
		t.Fatalf("served %d > submitted %d", snap.Served, len(inputs))
	}
}

// /metricsz exposes the full obs registry in Prometheus text form (and as
// JSON with ?format=json).
func TestHTTPMetricsEndpoint(t *testing.T) {
	path := writeReleased(t, 96, false)
	opts := Options{MaxBatch: 4, QueueDepth: 16, FlushEvery: 200 * time.Microsecond, Threads: 1, Obs: obs.NewRegistry()}
	r, ts := httpServer(t, opts)
	en, err := r.LoadFile("demo", path)
	if err != nil {
		t.Fatal(err)
	}
	if status, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "demo", Input: testInputs(1, en.Model().InputLen(), 97)[0]}); status != http.StatusOK {
		t.Fatalf("predict status %d (%s)", status, body["error"])
	}

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("metricsz status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{
		"# TYPE serve_requests_served_total counter",
		`serve_requests_served_total{model="demo"} 1`,
		`serve_batch_size_bucket{model="demo",le="+Inf"} 1`,
		"serve_http_requests_total",
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("metricsz missing %q:\n%s", want, text)
		}
	}

	status, body := getJSON(t, ts.URL+"/metricsz?format=json")
	if status != http.StatusOK {
		t.Fatalf("metricsz json status %d", status)
	}
	var counters map[string]int64
	if err := json.Unmarshal(body["counters"], &counters); err != nil {
		t.Fatal(err)
	}
	if counters[`serve_requests_served_total{model="demo"}`] != 1 {
		t.Fatalf("json counters = %v", counters)
	}
}
