package core

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"

	"repro/internal/artifact"
	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/quantize"
	"repro/internal/tensor"
	"repro/internal/train"
)

// The pipeline is an explicit stage graph:
//
//	split → preprocess → train → quantize → finetune → extract
//
// Each stage declares the artifact kinds it persists, the upstream stages
// whose outputs it consumes, and the configuration fields that determine
// its output (conf). A stage's cache key is the SHA-256 of its canonically
// encoded conf plus its dependencies' keys, so any change anywhere
// upstream — a different dataset, one more epoch, a different λ —
// invalidates exactly the stages downstream of the change, and two runs
// that share a prefix (e.g. a bit-width sweep over one trained model)
// share the prefix's artifacts.
//
// Keys are computed even for stages that do not run this time (a benign
// run's preprocess, an unquantized run's finetune): an inactive stage's
// key is a pure function of its configuration, so downstream keys stay
// well-defined and deterministic.
type stage struct {
	// name labels the stage; spans appear as "core/<name>" and cache keys
	// use the "<name>/v1" domain.
	name string
	// kinds are the artifact kinds the stage persists, all under the
	// stage's key. Empty means the stage is recomputed every run (split is
	// cheap and deterministic; persisting whole datasets buys nothing).
	kinds []string
	// deps are upstream stage names whose keys feed this stage's key.
	deps []string
	// conf mixes the stage's own configuration into its cache key.
	conf func(p *pipeline, k *artifact.Key)
	// active reports whether the stage runs under this config (nil =
	// always). Inactive stages still contribute their key downstream.
	active func(p *pipeline) bool
	// run computes the stage from its in-memory inputs.
	run func(p *pipeline)
	// load restores the stage's outputs from the store (cache hit path);
	// a return of fs.ErrNotExist means miss, any other error means the
	// artifact is corrupt and is evicted.
	load func(p *pipeline, key string) error
	// save persists the stage's outputs after run.
	save func(p *pipeline, key string) error
	// after runs once the stage's slot in the graph completes — on cache
	// hits, after a fresh run, and even when the stage was inactive — for
	// derived metrics and progress logging that belong to this point of
	// the pipeline rather than to the stage's own computation.
	after func(p *pipeline)
}

// pipeline threads the stages' in-memory inputs and outputs plus the
// per-run context (config, store, computed keys).
type pipeline struct {
	cfg   Config
	store *artifact.Store
	res   *Result

	trainSet, testSet *dataset.Dataset
	x, tx             *tensor.Tensor
	y, ty             []int

	m        *nn.Model
	groups   []nn.LayerGroup
	lambdas  []float64
	reg      *attack.CorrelationReg
	trainRes train.Result

	keys       map[string]string
	dataDigest string
}

func (p *pipeline) logf(format string, args ...any) {
	if p.cfg.Log != nil {
		fmt.Fprintf(p.cfg.Log, format+"\n", args...)
	}
}

// stages returns the graph in execution order.
func stages() []*stage {
	return []*stage{stageSplit(), stagePreprocess(), stageTrain(), stageQuantize(), stageFinetune(), stageExtract()}
}

// exec runs one stage: key derivation, cache probe, compute, persist.
// Keys are derived when a store is attached — and also for distributed
// runs without one, because the train stage's key doubles as the run's
// mailbox token (every rank derives it identically from the shared
// configuration).
func (p *pipeline) exec(st *stage) {
	var key string
	if p.store != nil || p.cfg.Dist != nil {
		k := artifact.NewKey(st.name + "/v1")
		for _, d := range st.deps {
			dep, ok := p.keys[d]
			if !ok {
				panic(fmt.Sprintf("core: stage %s depends on %s which has no key yet", st.name, d))
			}
			k.Str("dep:"+d, dep)
		}
		st.conf(p, k)
		key = k.Sum()
		p.keys[st.name] = key
	}
	if st.active == nil || st.active(p) {
		sp := p.cfg.Trace.Span("core/" + st.name)
		hit := false
		if p.store != nil && len(st.kinds) > 0 {
			err := st.load(p, key)
			if err == nil {
				hit = true
				p.countCache(st.name, true)
				p.logf("cache: %s hit (%s)", st.name, key[:12])
			} else {
				if !errors.Is(err, fs.ErrNotExist) {
					// Self-heal: a corrupt or stale artifact is evicted and
					// the stage recomputed, so one bad file never wedges
					// the cache.
					p.logf("cache: %s artifact unusable, rebuilding: %v", st.name, err)
					for _, kind := range st.kinds {
						if derr := p.store.Delete(kind, key); derr != nil {
							p.logf("cache: evict %s/%s: %v", kind, key[:12], derr)
						}
					}
				}
				p.countCache(st.name, false)
			}
		}
		if !hit {
			st.run(p)
			if p.store != nil && len(st.kinds) > 0 {
				if err := st.save(p, key); err != nil {
					// A failed write must not kill the run it exists to
					// speed up.
					p.logf("cache: %s write failed: %v", st.name, err)
				}
			}
		}
		sp.End()
	}
	if st.after != nil {
		st.after(p)
	}
}

// countCache mirrors stage-level cache traffic into the obs registry
// (the store's own artifact_cache_* counters track file-level traffic,
// including epoch-checkpoint probes; these count stage outcomes).
func (p *pipeline) countCache(stage string, hit bool) {
	if !obs.Enabled() {
		return
	}
	name := "pipeline_cache_misses_total"
	if hit {
		name = "pipeline_cache_hits_total"
	}
	obs.Default.Counter(name).Inc()
	obs.Default.Counter(fmt.Sprintf(`%s{stage=%q}`, name, stage)).Inc()
}

// archConf mixes the model architecture (and its init seed) into a key.
// Only ModelCfg-built models can be cached — a Builder closure has no
// canonical identity — which Run enforces before the graph starts.
func (p *pipeline) archConf(k *artifact.Key) {
	c := p.cfg.ModelCfg
	k.Int("arch.inc", int64(c.InC)).
		Int("arch.inh", int64(c.InH)).
		Int("arch.inw", int64(c.InW)).
		Int("arch.classes", int64(c.Classes)).
		Ints("arch.widths", c.Widths).
		Ints("arch.blocks", c.Blocks).
		Int("arch.seed", c.Seed)
}

// ---- split ---------------------------------------------------------------

// stageSplit partitions the dataset, materializes the train/test tensors,
// and applies training-label noise. It is never persisted: the split is a
// cheap deterministic function of the dataset, and its key (the dataset's
// content digest plus the split/noise parameters) is what downstream
// stages inherit.
func stageSplit() *stage {
	return &stage{
		name: "split",
		conf: func(p *pipeline, k *artifact.Key) {
			if p.dataDigest == "" {
				p.dataDigest = p.cfg.Data.ContentDigest()
			}
			k.Str("data", p.dataDigest).
				Float("testfrac", p.cfg.TestFrac).
				Float("labelnoise", p.cfg.TrainLabelNoise).
				Int("seed", p.cfg.Seed)
		},
		run: func(p *pipeline) {
			p.trainSet, p.testSet = p.cfg.Data.Split(p.cfg.TestFrac)
			p.x, p.y = p.trainSet.Tensors()
			p.tx, p.ty = p.testSet.Tensors()
			if p.cfg.TrainLabelNoise > 0 {
				rng := rand.New(rand.NewSource(p.cfg.Seed + 7))
				for i := range p.y {
					if rng.Float64() < p.cfg.TrainLabelNoise {
						p.y[i] = rng.Intn(p.cfg.Data.Classes)
					}
				}
			}
		},
	}
}

// ---- preprocess ----------------------------------------------------------

// stagePreprocess is the paper's data pre-processing step (Fig 1, Sec.
// IV-A): select encoding targets (std-window or uniform) and build the
// per-group encoding plan. Output: the attack.Plan artifact; the
// correlation regularizer is rebuilt from the plan on both paths (it is
// stateless apart from diagnostics).
func stagePreprocess() *stage {
	return &stage{
		name:  "preprocess",
		kinds: []string{"plan"},
		deps:  []string{"split"},
		conf: func(p *pipeline, k *artifact.Key) {
			p.archConf(k)
			k.Float("windowlen", p.cfg.WindowLen).
				Ints("groupbounds", p.cfg.GroupBounds).
				Floats("lambdas", p.lambdas).
				Int("seed", p.cfg.Seed)
		},
		active: func(p *pipeline) bool { return malicious(p.lambdas) },
		run: func(p *pipeline) {
			var plan *attack.Plan
			if p.cfg.WindowLen > 0 {
				plan = attack.BuildPlan(p.trainSet, p.cfg.WindowLen, p.groups, p.lambdas, p.cfg.Seed)
			} else {
				plan = uniformPlanOverActive(p.trainSet, p.groups, p.lambdas, p.cfg.Seed)
			}
			p.installPlan(plan)
		},
		load: func(p *pipeline, key string) error {
			rc, err := p.store.Get("plan", key)
			if err != nil {
				return err
			}
			defer rc.Close()
			plan, err := attack.ReadPlan(rc)
			if err != nil {
				return err
			}
			p.installPlan(plan)
			return nil
		},
		save: func(p *pipeline, key string) error {
			return p.store.Put("plan", key, func(w io.Writer) error {
				return attack.WritePlan(w, p.res.Plan)
			})
		},
		after: func(p *pipeline) {
			if p.res.Plan == nil {
				return
			}
			p.logf("plan: %d images in std window (%.0f, %.0f)",
				p.res.Plan.TotalImages(), p.res.Plan.Window.Lo, p.res.Plan.Window.Hi)
		},
	}
}

// installPlan publishes a plan and its regularizer to the result.
func (p *pipeline) installPlan(plan *attack.Plan) {
	p.res.Plan = plan
	p.reg = attack.NewLayerwiseReg(p.groups, plan.Lambdas(), plan.Secrets())
	p.res.Reg = p.reg
}

// ---- train ---------------------------------------------------------------

// stageTrain runs the (possibly regularized) training. Output: a full
// model checkpoint (parameters, batch-norm statistics, optimizer state)
// under kind "model-state". When a store is attached, mid-training epoch
// checkpoints are additionally written under per-epoch keys so an
// interrupted run can resume (Config.Resume) bit-identically — the
// trainer's resume contract — instead of restarting from scratch.
// Threads is deliberately absent from the key: results are bit-identical
// across thread counts, so artifacts are shared across them.
func stageTrain() *stage {
	return &stage{
		name:  "train",
		kinds: []string{"model-state"},
		deps:  []string{"split", "preprocess"},
		conf: func(p *pipeline, k *artifact.Key) {
			p.archConf(k)
			k.Int("epochs", int64(p.cfg.Epochs)).
				Int("batch", int64(p.cfg.BatchSize)).
				Float("lr", p.cfg.LR).
				Float("momentum", p.cfg.Momentum).
				Float("clipnorm", p.cfg.ClipNorm).
				Int("seed", p.cfg.Seed)
			// Shards is semantic (shard-local batch-norm statistics,
			// shard-order reduction), so it keys the artifact — but only
			// when it departs from the legacy whole-batch path, so every
			// pre-existing cache entry keeps its key and warm runs still
			// hit. The process count is deliberately absent, exactly like
			// the thread count: results are bit-identical across both.
			if p.cfg.Shards > 1 {
				k.Int("shards", int64(p.cfg.Shards))
			}
		},
		run: func(p *pipeline) {
			cfg := p.cfg
			tcfg := train.Config{
				Epochs: cfg.Epochs, BatchSize: cfg.BatchSize,
				Optimizer: train.NewSGD(cfg.LR, cfg.Momentum, 0),
				Schedule:  train.StepDecay(cfg.LR, max(cfg.Epochs/3, 1), 0.3),
				Seed:      cfg.Seed, ClipNorm: cfg.ClipNorm,
				Threads: cfg.Threads, Trace: cfg.Trace,
				Reg:    regOrNil(p.reg),
				Shards: cfg.Shards, Dist: cfg.Dist, DistToken: p.keys["train"],
			}
			if cfg.Log != nil {
				tcfg.Log = train.LogTo(cfg.Log)
			}
			key := p.keys["train"]
			if p.store != nil {
				every := 5
				if cfg.CheckpointEvery != 0 {
					every = cfg.CheckpointEvery
				}
				// Only the coordinator writes mid-training checkpoints: the
				// ranks' checkpoints would be byte-identical in model state
				// but differ in timing stats, and one writer per key is the
				// cleaner contract.
				if every > 0 && !p.distWorker() {
					tcfg.CheckpointEvery = every
					tcfg.Checkpoint = func(ck *train.Checkpoint) {
						err := p.store.Put("epoch-checkpoint", epochKey(key, ck.Epoch), func(w io.Writer) error {
							return train.EncodeCheckpoint(w, ck)
						})
						if err != nil {
							p.logf("cache: epoch %d checkpoint write failed: %v", ck.Epoch, err)
						}
					}
				}
				if cfg.Resume {
					// Every rank probes the shared store and finds the same
					// checkpoint, so their resume cursors agree; the begin
					// manifest's StartEpoch double-checks that.
					if ck := p.probeEpochCheckpoint(key); ck != nil {
						tcfg.Resume = ck
						p.logf("cache: resuming training from epoch %d/%d", ck.Epoch, cfg.Epochs)
					}
				}
			}
			p.trainRes = train.Run(p.m, p.x, p.y, tcfg)
			if p.trainRes.DistSkipped {
				// This worker arrived at a run the coordinator satisfied
				// from cache: nothing was exchanged, so load the published
				// model state instead.
				if p.store == nil {
					panic("core: dist worker found a completed run but has no store to load it from")
				}
				if err := p.loadTrainedState(key); err != nil {
					panic(fmt.Sprintf("core: dist worker loading completed run: %v", err))
				}
			}
		},
		load: func(p *pipeline, key string) error {
			return p.loadTrainedState(key)
		},
		save: func(p *pipeline, key string) error {
			ck := train.Capture(p.m, nil, p.cfg.Epochs, p.trainRes.Epochs)
			return p.store.Put("model-state", key, func(w io.Writer) error {
				return train.EncodeCheckpoint(w, ck)
			})
		},
		after: func(p *pipeline) {
			// The coordinator marks the run complete first thing — whether
			// it trained or loaded from cache — so a worker polling
			// AwaitBegin for a cache-satisfied run unblocks without
			// waiting out the accuracy evaluation below.
			if p.cfg.Dist != nil && p.cfg.Dist.Coordinator() {
				if err := p.cfg.Dist.Complete(p.keys["train"]); err != nil {
					p.logf("dist: publish completion marker: %v", err)
				}
			}
			p.res.PreQuantTestAcc = p.m.Accuracy(p.tx, p.ty, 64)
			p.logf("trained: test acc %.2f%%", 100*p.res.PreQuantTestAcc)
		},
	}
}

// distWorker reports whether this pipeline runs on a worker rank.
func (p *pipeline) distWorker() bool {
	return p.cfg.Dist != nil && p.cfg.Dist.Worker()
}

// loadTrainedState restores the train stage's published checkpoint from
// the store — the cache-hit path, and a dist worker's fallback when the
// coordinator satisfied the run from cache.
func (p *pipeline) loadTrainedState(key string) error {
	rc, err := p.store.Get("model-state", key)
	if err != nil {
		return err
	}
	defer rc.Close()
	ck, err := train.DecodeCheckpoint(rc)
	if err != nil {
		return err
	}
	if err := ck.Restore(p.m, nil); err != nil {
		return err
	}
	// train.Run installs the execution context as a side effect;
	// the cached path must too, so fine-tuning and evaluation see
	// the same thread count either way.
	p.m.SetThreads(p.cfg.Threads)
	p.trainRes = train.Result{Epochs: ck.Stats}
	return nil
}

// epochKey derives the key of a mid-training checkpoint from the train
// stage's key. The full train key participates — not just the epoch —
// because epoch-k weights depend on the total epoch budget through the LR
// schedule, so a 25-epoch and a 50-epoch run must not share prefixes.
func epochKey(trainKey string, epoch int) string {
	return artifact.NewKey("train-epoch/v1").
		Str("train", trainKey).
		Int("epoch", int64(epoch)).
		Sum()
}

// probeEpochCheckpoint looks for the latest usable mid-training checkpoint
// below the full run. Has is used for the scan so speculative probes do
// not pollute the hit/miss counters; only the chosen key is read.
func (p *pipeline) probeEpochCheckpoint(trainKey string) *train.Checkpoint {
	for e := p.cfg.Epochs - 1; e >= 1; e-- {
		ekey := epochKey(trainKey, e)
		if !p.store.Has("epoch-checkpoint", ekey) {
			continue
		}
		rc, err := p.store.Get("epoch-checkpoint", ekey)
		if err != nil {
			continue
		}
		ck, err := train.DecodeCheckpoint(rc)
		rc.Close()
		if err != nil {
			p.logf("cache: epoch %d checkpoint unusable, skipping: %v", e, err)
			if derr := p.store.Delete("epoch-checkpoint", ekey); derr != nil {
				p.logf("cache: evict epoch checkpoint: %v", derr)
			}
			continue
		}
		return ck
	}
	return nil
}

// regOrNil converts a typed-nil regularizer into an untyped nil interface
// so the trainer's `cfg.Reg != nil` checks stay meaningful.
func regOrNil(r *attack.CorrelationReg) train.Regularizer {
	if r == nil {
		return nil
	}
	return r
}

// ---- quantize ------------------------------------------------------------

// stageQuantize compresses the trained model. Output: the quantization
// record (codebooks + assignments) under kind "quant-record"; binding the
// record onto the trained model rewrites every covered weight to its
// centroid, which *is* the quantized model, so no separate weight artifact
// is needed.
func stageQuantize() *stage {
	return &stage{
		name:  "quantize",
		kinds: []string{"quant-record"},
		deps:  []string{"train", "preprocess"},
		conf: func(p *pipeline, k *artifact.Key) {
			k.Str("mode", p.cfg.Quant.String()).
				Int("bits", int64(p.cfg.Bits))
		},
		active: func(p *pipeline) bool { return p.cfg.Quant != QuantNone },
		run: func(p *pipeline) {
			levels := 1 << p.cfg.Bits
			switch p.cfg.Quant {
			case QuantWEQ:
				p.res.Applied = quantize.QuantizeModel(p.m, quantize.WeightedEntropy{}, levels)
			case QuantLinear:
				p.res.Applied = quantize.QuantizeModel(p.m, quantize.Linear{LloydIters: 5}, levels)
			case QuantTargetCorrelated:
				if p.res.Plan == nil {
					panic("core: target-correlated quantization requires a malicious run")
				}
				p.res.Applied = targetCorrelatedQuantize(p.m, p.groups, p.res.Plan, levels)
			default:
				panic(fmt.Sprintf("core: unknown quant mode %v", p.cfg.Quant))
			}
		},
		load: func(p *pipeline, key string) error {
			if p.cfg.Quant != QuantWEQ && p.cfg.Quant != QuantLinear && p.cfg.Quant != QuantTargetCorrelated {
				panic(fmt.Sprintf("core: unknown quant mode %v", p.cfg.Quant))
			}
			return p.loadApplied("quant-record", key)
		},
		save: func(p *pipeline, key string) error {
			return p.saveApplied("quant-record", key)
		},
	}
}

// loadApplied restores a quantization record and binds it onto the model
// (rewriting the covered weights from their codebooks).
func (p *pipeline) loadApplied(kind, key string) error {
	rc, err := p.store.Get(kind, key)
	if err != nil {
		return err
	}
	defer rc.Close()
	blob, err := quantize.DecodeApplied(rc)
	if err != nil {
		return err
	}
	a, err := blob.Bind(p.m)
	if err != nil {
		return err
	}
	p.res.Applied = a
	return nil
}

func (p *pipeline) saveApplied(kind, key string) error {
	return p.store.Put(kind, key, func(w io.Writer) error {
		return quantize.EncodeApplied(w, quantize.Snapshot(p.res.Applied))
	})
}

// ---- finetune ------------------------------------------------------------

// stageFinetune runs post-quantization centroid fine-tuning. It mutates
// both the codebooks and the free (non-quantized) parameters, so its
// output is two artifacts under one key: the fine-tuned model state and
// the updated quantization record. On load the model state is restored
// first and the record bound second; binding re-materializes the covered
// weights from the fine-tuned codebooks, which matches the live path
// because FineTune leaves the model rewritten from centroids after its
// last step.
func stageFinetune() *stage {
	return &stage{
		name:  "finetune",
		kinds: []string{"model-state", "quant-record"},
		deps:  []string{"quantize"},
		conf: func(p *pipeline, k *artifact.Key) {
			k.Int("epochs", int64(p.cfg.FineTuneEpochs)).
				Float("lr", p.finetuneLR()).
				Bool("keepreg", p.cfg.KeepRegDuringFineTune)
		},
		active: func(p *pipeline) bool { return p.res.Applied != nil && p.cfg.FineTuneEpochs > 0 },
		run: func(p *pipeline) {
			ft := quantize.FineTuneConfig{
				Epochs: p.cfg.FineTuneEpochs, BatchSize: p.cfg.BatchSize,
				LR: p.finetuneLR(), Seed: p.cfg.Seed + 1,
			}
			if p.cfg.KeepRegDuringFineTune && p.reg != nil {
				ft.Reg = p.reg
			}
			quantize.FineTune(p.m, p.res.Applied, p.x, p.y, ft)
		},
		load: func(p *pipeline, key string) error {
			rc, err := p.store.Get("model-state", key)
			if err != nil {
				return err
			}
			ck, err := train.DecodeCheckpoint(rc)
			rc.Close()
			if err != nil {
				return err
			}
			if err := ck.Restore(p.m, nil); err != nil {
				return err
			}
			return p.loadApplied("quant-record", key)
		},
		save: func(p *pipeline, key string) error {
			ck := train.Capture(p.m, nil, p.cfg.Epochs, nil)
			if err := p.store.Put("model-state", key, func(w io.Writer) error {
				return train.EncodeCheckpoint(w, ck)
			}); err != nil {
				return err
			}
			return p.saveApplied("quant-record", key)
		},
		after: func(p *pipeline) {
			// Released-model metrics: this is the state the model ships in,
			// whatever subset of quantize/finetune actually ran.
			p.res.TrainAcc = p.m.Accuracy(p.x, p.y, 64)
			p.res.TestAcc = p.m.Accuracy(p.tx, p.ty, 64)
			p.logf("released: test acc %.2f%% (quant=%v bits=%d)", 100*p.res.TestAcc, p.cfg.Quant, p.cfg.Bits)
		},
	}
}

// finetuneLR resolves the fine-tuning learning rate (default LR/10).
func (p *pipeline) finetuneLR() float64 {
	if p.cfg.FineTuneLR != 0 {
		return p.cfg.FineTuneLR
	}
	return p.cfg.LR / 10
}

// ---- extract -------------------------------------------------------------

// stageExtract is the adversary's pass over the released model: per-group
// best-polarity decoding moment-matched to the domain statistics chosen
// at pre-processing time. Output: the extraction report (scores +
// reconstructed images) under kind "report".
func stageExtract() *stage {
	return &stage{
		name:  "extract",
		kinds: []string{"report"},
		deps:  []string{"finetune"},
		conf: func(p *pipeline, k *artifact.Key) {
			mean, std := p.decodeMoments()
			k.Float("mean", mean).Float("std", std)
		},
		active: func(p *pipeline) bool { return p.res.Plan != nil },
		run: func(p *pipeline) {
			mean, std := p.decodeMoments()
			opt := attack.DecodeOptions{TargetMean: mean, TargetStd: std}
			for _, pg := range p.res.Plan.Groups {
				if len(pg.Images) == 0 {
					continue
				}
				score, recon := attack.BestPolarityDecode(pg, p.groups[pg.GroupIndex], p.res.Plan.ImageGeom, opt)
				p.res.PerGroup = append(p.res.PerGroup, score)
				p.res.Recon = append(p.res.Recon, recon...)
			}
			p.res.Score = attack.ScoreReconstructions(p.res.Plan.AllImages(), p.res.Recon)
		},
		load: func(p *pipeline, key string) error {
			rc, err := p.store.Get("report", key)
			if err != nil {
				return err
			}
			defer rc.Close()
			rep, err := attack.ReadReport(rc)
			if err != nil {
				return err
			}
			p.res.Score, p.res.PerGroup, p.res.Recon = rep.Score, rep.PerGroup, rep.Recon
			return nil
		},
		save: func(p *pipeline, key string) error {
			return p.store.Put("report", key, func(w io.Writer) error {
				return attack.WriteReport(w, &attack.Report{
					Score: p.res.Score, PerGroup: p.res.PerGroup, Recon: p.res.Recon,
				})
			})
		},
		after: func(p *pipeline) {
			if p.res.Plan == nil {
				return
			}
			p.logf("extracted: %s", p.res.Score)
		},
	}
}

// decodeMoments resolves the extraction's moment-matching targets: the
// configured values, else mean 128 and the std-window midpoint (or the
// domain-typical 50 for the vanilla uniform attack).
func (p *pipeline) decodeMoments() (mean, std float64) {
	mean, std = p.cfg.DecodeMean, p.cfg.DecodeStd
	if mean == 0 {
		mean = 128
	}
	if std == 0 {
		if p.cfg.WindowLen > 0 && p.res.Plan != nil {
			std = (p.res.Plan.Window.Lo + p.res.Plan.Window.Hi) / 2
		} else {
			std = 50
		}
	}
	return mean, std
}

// malicious reports whether any group carries a nonzero correlation rate.
func malicious(lambdas []float64) bool {
	for _, l := range lambdas {
		if l != 0 {
			return true
		}
	}
	return false
}
