package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/nn"
)

// cachedCfg is the proposed malicious flow on the small fixtures, the
// config that exercises every stage of the graph.
func cachedCfg(seed int64) Config {
	cfg := fastCfg(smallData(false, seed), smallModel(1))
	cfg.GroupBounds = []int{4, 6}
	cfg.Lambdas = []float64{0, 0, 10}
	cfg.WindowLen = 5
	cfg.Quant = QuantTargetCorrelated
	cfg.Bits = 4
	cfg.FineTuneEpochs = 1
	cfg.KeepRegDuringFineTune = true
	return cfg
}

func openStore(t *testing.T) *artifact.Store {
	t.Helper()
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func flatParams(m *nn.Model) []float64 {
	var flat []float64
	for _, p := range m.Params() {
		flat = append(flat, p.Value.Data()...)
	}
	return flat
}

func sameResult(t *testing.T, a, b *Result) {
	t.Helper()
	aw, bw := flatParams(a.Model), flatParams(b.Model)
	if len(aw) != len(bw) {
		t.Fatalf("param counts differ: %d vs %d", len(aw), len(bw))
	}
	for i := range aw {
		if aw[i] != bw[i] {
			t.Fatalf("released weight[%d] differs: %v vs %v", i, aw[i], bw[i])
		}
	}
	if a.TrainAcc != b.TrainAcc || a.TestAcc != b.TestAcc || a.PreQuantTestAcc != b.PreQuantTestAcc {
		t.Fatalf("accuracies differ: %+v vs %+v", a, b)
	}
	if a.Score.N != b.Score.N || a.Score.MeanMAPE != b.Score.MeanMAPE {
		t.Fatalf("scores differ: %v vs %v", a.Score, b.Score)
	}
	if len(a.Recon) != len(b.Recon) {
		t.Fatalf("recon counts differ: %d vs %d", len(a.Recon), len(b.Recon))
	}
	for i := range a.Recon {
		for j := range a.Recon[i].Pix {
			if a.Recon[i].Pix[j] != b.Recon[i].Pix[j] {
				t.Fatalf("recon %d pixel %d differs", i, j)
			}
		}
	}
}

// TestPipelineWarmRunMatchesColdAndSkipsWork is the heart of the caching
// contract: a second run over the same store returns bit-identical results
// while every cacheable stage hits (no retraining, no requantizing, no
// re-extraction).
func TestPipelineWarmRunMatchesColdAndSkipsWork(t *testing.T) {
	store := openStore(t)

	cfg := cachedCfg(41)
	cfg.Cache = store
	var coldLog bytes.Buffer
	cfg.Log = &coldLog
	cold := Run(cfg)
	if strings.Contains(coldLog.String(), "cache: train hit") {
		t.Fatal("cold run claims a cache hit")
	}
	coldStats := store.Stats()
	if coldStats.WriteBytes == 0 {
		t.Fatal("cold run persisted nothing")
	}

	cfg2 := cachedCfg(41)
	cfg2.Cache = store
	var warmLog bytes.Buffer
	cfg2.Log = &warmLog
	warm := Run(cfg2)
	sameResult(t, cold, warm)

	logs := warmLog.String()
	for _, stage := range []string{"preprocess", "train", "quantize", "finetune", "extract"} {
		if !strings.Contains(logs, "cache: "+stage+" hit") {
			t.Fatalf("warm run did not hit %s stage:\n%s", stage, logs)
		}
	}
	// No training epochs ran on the warm path (the trainer logs one line
	// per epoch when a Log writer is attached).
	if strings.Contains(logs, "epoch ") {
		t.Fatalf("warm run still trained:\n%s", logs)
	}
	warmStats := store.Stats()
	if warmStats.Hits < coldStats.Hits+5 {
		t.Fatalf("warm run hits %d, want at least 5 more than cold's %d", warmStats.Hits, coldStats.Hits)
	}
	if warmStats.WriteBytes != coldStats.WriteBytes {
		t.Fatal("warm run rewrote artifacts")
	}
}

// TestPipelineUncachedMatchesCached pins that attaching a store does not
// change results: the same config with and without a cache produces
// bit-identical outputs (the graph refactor preserves the monolithic
// flow's behavior exactly).
func TestPipelineUncachedMatchesCached(t *testing.T) {
	plain := Run(cachedCfg(42))
	cfg := cachedCfg(42)
	cfg.Cache = openStore(t)
	cached := Run(cfg)
	sameResult(t, plain, cached)
}

// TestPipelineSharedTrainingPrefix: two configs that differ only
// downstream of training (here: codebook bit width) share the split →
// preprocess → train prefix, so the second run reuses the trained model
// and only recomputes quantization onward.
func TestPipelineSharedTrainingPrefix(t *testing.T) {
	store := openStore(t)
	base := func(bits int) Config {
		cfg := cachedCfg(43)
		cfg.Quant = QuantWEQ
		cfg.KeepRegDuringFineTune = false
		cfg.Bits = bits
		cfg.Cache = store
		return cfg
	}
	Run(base(2))

	cfg := base(3)
	var log bytes.Buffer
	cfg.Log = &log
	Run(cfg)
	logs := log.String()
	if !strings.Contains(logs, "cache: train hit") {
		t.Fatalf("bit-width sweep retrained:\n%s", logs)
	}
	if !strings.Contains(logs, "cache: preprocess hit") {
		t.Fatalf("bit-width sweep rebuilt the plan:\n%s", logs)
	}
	if strings.Contains(logs, "cache: quantize hit") {
		t.Fatalf("different bit width must not reuse quantization:\n%s", logs)
	}
}

// TestPipelineSelfHealsCorruptArtifact: a flipped byte in a cached
// artifact must not poison the run — the stage detects the damage,
// evicts, recomputes, and the results match a clean run.
func TestPipelineSelfHealsCorruptArtifact(t *testing.T) {
	store := openStore(t)
	cfg := cachedCfg(44)
	cfg.Cache = store
	cold := Run(cfg)

	// Corrupt every report artifact's header. (A header flip is always
	// detectable; a mid-payload gob flip may legally decode to different
	// values, which is the codecs' documented limit, not the store's.)
	pattern := filepath.Join(store.Root(), "report", "*", "*.bin")
	matches, err := filepath.Glob(pattern)
	if err != nil || len(matches) == 0 {
		t.Fatalf("no report artifacts found (%v): %v", pattern, err)
	}
	for _, path := range matches {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[0] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cfg2 := cachedCfg(44)
	cfg2.Cache = store
	var log bytes.Buffer
	cfg2.Log = &log
	warm := Run(cfg2)
	if !strings.Contains(log.String(), "cache: extract artifact unusable") {
		t.Fatalf("corruption not detected:\n%s", log.String())
	}
	sameResult(t, cold, warm)

	// The evicted artifact was rebuilt: a third run hits again.
	cfg3 := cachedCfg(44)
	cfg3.Cache = store
	var log3 bytes.Buffer
	cfg3.Log = &log3
	Run(cfg3)
	if !strings.Contains(log3.String(), "cache: extract hit") {
		t.Fatalf("rebuilt artifact not reused:\n%s", log3.String())
	}
}

// TestPipelineResumeFromEpochCheckpoint simulates an interrupted training
// run: epoch checkpoints exist in the store but the full train artifact
// does not. With Resume set, the run continues from the latest checkpoint
// and lands on bit-identical weights.
func TestPipelineResumeFromEpochCheckpoint(t *testing.T) {
	store := openStore(t)
	mk := func() Config {
		cfg := fastCfg(smallData(false, 45), smallModel(1))
		cfg.Epochs = 4
		cfg.Cache = store
		cfg.CheckpointEvery = 2
		return cfg
	}
	cold := Run(mk())

	// "Crash": the completed-run artifact vanishes, the mid-run epoch
	// checkpoints survive.
	for _, kind := range []string{"model-state"} {
		matches, err := filepath.Glob(filepath.Join(store.Root(), kind, "*", "*.bin"))
		if err != nil || len(matches) == 0 {
			t.Fatalf("no %s artifacts (%v)", kind, err)
		}
		for _, path := range matches {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}
	}
	if eps, _ := filepath.Glob(filepath.Join(store.Root(), "epoch-checkpoint", "*", "*.bin")); len(eps) == 0 {
		t.Fatal("no epoch checkpoints were written")
	}

	cfg := mk()
	cfg.Resume = true
	var log bytes.Buffer
	cfg.Log = &log
	resumed := Run(cfg)
	if !strings.Contains(log.String(), "cache: resuming training from epoch 2/4") {
		t.Fatalf("did not resume from the epoch checkpoint:\n%s", log.String())
	}
	sameResult(t, cold, resumed)

	// Without Resume, the same situation retrains from scratch — and
	// still matches (determinism).
	for _, path := range mustGlob(t, filepath.Join(store.Root(), "model-state", "*", "*.bin")) {
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}
	fresh := Run(mk())
	sameResult(t, cold, fresh)
}

func mustGlob(t *testing.T, pattern string) []string {
	t.Helper()
	matches, err := filepath.Glob(pattern)
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestPipelineCacheRejectsBuilder: a closure-built model has no canonical
// identity, so caching it must fail loudly instead of serving wrong
// artifacts.
func TestPipelineCacheRejectsBuilder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := fastCfg(smallData(false, 46), smallModel(1))
	cfg.Builder = func() *nn.Model { return nn.NewResNet(smallModel(1)) }
	cfg.Cache = openStore(t)
	Run(cfg)
}
