package core

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/nn"
)

// ReleasePreset bundles the constants both sides of the threat model fix in
// advance of any particular training run: the data domain, the released
// architecture, and the adversary's own algorithm parameters (layer-group
// bounds, payload geometry, decode moment targets). The release tool, the
// extraction tool, the experiment drivers, and the serving layer all derive
// their defaults from one preset so the two sides stay in agreement without
// copy-pasted literals.
type ReleasePreset struct {
	// Dataset is the domain configuration with N and Seed left zero; use
	// DataConfig to fill them per run.
	Dataset dataset.CIFARConfig
	// Arch is the released MiniResNet with Seed left zero; use ArchConfig.
	Arch nn.ResNetConfig
	// GroupBounds partition conv indices into the paper's layer groups.
	GroupBounds []int
	// WindowLen is the std-window length d of the pre-processing step.
	WindowLen float64
	// Geom is the payload image geometry [C, H, W].
	Geom [3]int
	// DecodeMean and DecodeStd are the domain pixel statistics the
	// adversary's extraction moment-matches to.
	DecodeMean, DecodeStd float64
}

// CIFARRelease is the preset shared by dacrelease, dacextract, dacserve,
// and the CIFAR-like experiment drivers: grayscale 12×12 images, a
// three-stage MiniResNet, and the paper's early/middle/late group split.
func CIFARRelease() ReleasePreset {
	return ReleasePreset{
		Dataset: dataset.CIFARConfig{
			Classes: 10, H: 12, W: 12,
			ContrastStd: 0.32, NoiseStd: 25, TemplateShare: 0.6,
		},
		Arch: nn.ResNetConfig{
			InC: 1, InH: 12, InW: 12, Classes: 10,
			Widths: []int{6, 12, 24}, Blocks: []int{2, 2, 2},
		},
		GroupBounds: []int{5, 9},
		WindowLen:   5,
		Geom:        [3]int{1, 12, 12},
		DecodeMean:  128,
		DecodeStd:   54,
	}
}

// DataConfig returns the preset's dataset configuration with the run's
// sample count and seed filled in.
func (p ReleasePreset) DataConfig(n int, seed int64) dataset.CIFARConfig {
	cfg := p.Dataset
	cfg.N = n
	cfg.Seed = seed
	return cfg
}

// ArchConfig returns the preset's architecture with the run's weight
// initialization seed filled in.
func (p ReleasePreset) ArchConfig(seed int64) nn.ResNetConfig {
	cfg := p.Arch
	cfg.Seed = seed
	cfg.Widths = append([]int(nil), p.Arch.Widths...)
	cfg.Blocks = append([]int(nil), p.Arch.Blocks...)
	return cfg
}

// Lambdas returns the per-group correlation rates for the paper's proposed
// flow: zero everywhere except the final (payload-carrying) group.
func (p ReleasePreset) Lambdas(last float64) []float64 {
	l := make([]float64, len(p.GroupBounds)+1)
	l[len(l)-1] = last
	return l
}

// BoundsCSV renders the group bounds as the comma-separated form the CLI
// flags use ("5,9").
func (p ReleasePreset) BoundsCSV() string {
	parts := make([]string, len(p.GroupBounds))
	for i, b := range p.GroupBounds {
		parts[i] = fmt.Sprintf("%d", b)
	}
	return strings.Join(parts, ",")
}

// GeomString renders the payload geometry as the CxHxW form the CLI flags
// use ("1x12x12").
func (p ReleasePreset) GeomString() string {
	return fmt.Sprintf("%dx%dx%d", p.Geom[0], p.Geom[1], p.Geom[2])
}
