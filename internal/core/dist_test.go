package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/dist"
)

// distBenignCfg is a small benign pipeline config for the dist tests: no
// quantization or fine-tuning, so the run is dominated by the train stage
// the dist protocol covers.
func distBenignCfg(seed int64, threads int) Config {
	cfg := fastCfg(smallData(false, seed), smallModel(1))
	cfg.Epochs = 2
	cfg.Threads = threads
	return cfg
}

// distPair opens coordinator and worker sessions on one mailbox directory.
func distPair(t *testing.T) (coord, worker *dist.Session) {
	t.Helper()
	dir := t.TempDir()
	open := func(rank int) *dist.Session {
		s, err := dist.New(dist.Options{Dir: dir, Rank: rank, Procs: 2,
			Poll: time.Millisecond, Timeout: 60 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return open(0), open(1)
}

// runDistPair runs the coordinator and worker pipelines concurrently. The
// two ranks use different Threads values on purpose: the shared compute
// contexts admit one driver at a time, so distinct thread counts give the
// in-process ranks distinct contexts — and double as a cross-shape check,
// since results must not depend on threads anyway.
func runDistPair(t *testing.T, mkCfg func(rank int) Config) (coord, worker *Result) {
	t.Helper()
	results := make([]*Result, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("rank %d panicked: %v", rank, p)
				}
			}()
			results[rank] = Run(mkCfg(rank))
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatal(rank, err)
		}
	}
	return results[0], results[1]
}

// TestPipelineDistMatchesSingleProcess pins the pipeline-level contract: a
// coordinator+worker pair produces the same trained weights as one process
// computing the same shards itself.
func TestPipelineDistMatchesSingleProcess(t *testing.T) {
	ref := distBenignCfg(77, 1)
	ref.Shards = 2
	refRes := Run(ref)
	refW := flatParams(refRes.Model)

	sessC, sessW := distPair(t)
	coordRes, workRes := runDistPair(t, func(rank int) Config {
		cfg := distBenignCfg(77, 1+rank)
		if rank == 0 {
			cfg.Dist = sessC
		} else {
			cfg.Dist = sessW
		}
		return cfg
	})

	for name, res := range map[string]*Result{"coordinator": coordRes, "worker": workRes} {
		w := flatParams(res.Model)
		if len(w) != len(refW) {
			t.Fatalf("%s: param count %d != %d", name, len(w), len(refW))
		}
		for i := range refW {
			if w[i] != refW[i] {
				t.Fatalf("%s: weight[%d] %v != single-process %v", name, i, w[i], refW[i])
			}
		}
	}
	if coordRes.TestAcc != refRes.TestAcc {
		t.Fatalf("coordinator TestAcc %v != single-process %v", coordRes.TestAcc, refRes.TestAcc)
	}
}

// TestPipelineDistWorkerLoadsCachedRun covers the cache-hit handshake end
// to end: with the train stage already cached, the coordinator publishes
// the completion marker without ever beginning an exchange, and the worker
// loads the published model state instead of training.
func TestPipelineDistWorkerLoadsCachedRun(t *testing.T) {
	cacheDir := t.TempDir()
	openCache := func() *artifact.Store {
		st, err := artifact.Open(cacheDir)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	warm := distBenignCfg(78, 1)
	warm.Shards = 2
	warm.Cache = openCache()
	warmRes := Run(warm)
	warmW := flatParams(warmRes.Model)

	sessC, sessW := distPair(t)
	coordRes, workRes := runDistPair(t, func(rank int) Config {
		cfg := distBenignCfg(78, 1+rank)
		cfg.Cache = openCache()
		if rank == 0 {
			cfg.Dist = sessC
		} else {
			cfg.Dist = sessW
		}
		return cfg
	})

	for name, res := range map[string]*Result{"coordinator": coordRes, "worker": workRes} {
		w := flatParams(res.Model)
		for i := range warmW {
			if w[i] != warmW[i] {
				t.Fatalf("%s: weight[%d] %v != warm run %v", name, i, w[i], warmW[i])
			}
		}
	}
}
