// Package core implements the paper's quantized correlation encoding attack
// flow (Fig 1) end to end: data pre-processing (std-window target
// selection), training with the layer-wise correlation regularizer (Eq 2),
// target-correlated quantization (Algorithm 1) with fine-tuning, and the
// adversary's extraction pass over the released model. It also runs the
// baseline configurations the evaluation compares against: the benign
// pipeline, the vanilla uniform-rate attack (Eq 1), and the vanilla attack
// followed by default weighted-entropy quantization.
package core

import (
	"fmt"
	"io"

	"repro/internal/artifact"
	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/img"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/quantize"
)

// QuantMode selects the compression step of the pipeline.
type QuantMode int

const (
	// QuantNone releases the full-precision model.
	QuantNone QuantMode = iota
	// QuantWEQ applies weighted-entropy quantization per layer (the
	// paper's default existing compression).
	QuantWEQ
	// QuantLinear applies deep-compression style linear quantization per
	// layer (a secondary baseline).
	QuantLinear
	// QuantTargetCorrelated applies Algorithm 1 to every encoding group
	// (shared codebook per group, boundaries from the target pixel
	// histogram) and weighted-entropy quantization to the remaining
	// layers.
	QuantTargetCorrelated
)

// String returns the mode's report label.
func (m QuantMode) String() string {
	switch m {
	case QuantNone:
		return "none"
	case QuantWEQ:
		return "weq"
	case QuantLinear:
		return "linear"
	case QuantTargetCorrelated:
		return "target-correlated"
	default:
		return fmt.Sprintf("QuantMode(%d)", int(m))
	}
}

// Config describes one end-to-end experiment.
type Config struct {
	// Data is the full dataset; it is split into train/test internally.
	Data *dataset.Dataset
	// TestFrac is the held-out fraction (default 0.2).
	TestFrac float64

	// Builder constructs the model; when nil, a MiniResNet from ModelCfg
	// is used.
	Builder func() *nn.Model
	// ModelCfg configures the default MiniResNet builder.
	ModelCfg nn.ResNetConfig

	// GroupBounds are conv-index bounds defining the layer groups
	// (paper: [12, 16] for ResNet-34). nil means a single group.
	GroupBounds []int
	// Lambdas are per-group correlation rates λ_k, parallel to the
	// groups. All-zero (or nil) trains a benign model.
	Lambdas []float64
	// WindowLen is the std-window length d of the pre-processing step.
	// <= 0 disables pre-processing: targets are drawn uniformly from the
	// training set (the vanilla Eq 1 behaviour).
	WindowLen float64

	// TrainLabelNoise flips this fraction of *training* labels to random
	// classes (test labels stay clean). The synthetic datasets are
	// cleanly separable, unlike CIFAR-10; label noise reintroduces the
	// irreducible error a real task has, capping benign accuracy near
	// the paper's ~90% and making quantization's accuracy cost visible.
	TrainLabelNoise float64

	// Epochs, BatchSize, LR, Momentum, ClipNorm configure training.
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	ClipNorm  float64
	// Seed drives every random choice in the pipeline.
	Seed int64
	// Threads is the worker count for the execution context every model
	// pass (training, fine-tuning, evaluation, extraction-side forward)
	// runs under. 0 selects runtime.GOMAXPROCS; 1 forces serial. All
	// results are bit-identical across thread counts.
	Threads int
	// Shards is the trainer's semantic data-parallel knob: gradient
	// shards per batch (see train.Config.Shards). 0 defaults to 1, or to
	// Dist.Procs() when a dist session is attached. Shards > 1 changes
	// the result (shard-local batch-norm statistics, shard-order
	// reduction) and therefore enters the train cache key; the process
	// count never does.
	Shards int
	// Dist, when non-nil, runs the train stage across this session's
	// process group: batches are sharded across ranks and gradient
	// partials exchanged through the session's mailbox. Worker ranks
	// (Dist.Worker()) run the pipeline only through the train stage —
	// their role ends once the coordinator has the jointly trained model —
	// and skip quantize/finetune/extract. Results are byte-identical to a
	// single-process run with the same Shards.
	Dist *dist.Session

	// DecodeMean and DecodeStd are the domain pixel statistics the
	// adversary's extraction moment-matches to. They are part of the
	// attack algorithm (chosen when the pre-processing was designed, from
	// public knowledge of the data domain), not learned from the
	// training run. Zero values default to mean 128 and, when a std
	// window is used, the window midpoint (else 50).
	DecodeMean, DecodeStd float64

	// Quant selects the compression step; Bits sets the codebook size to
	// 2^Bits levels.
	Quant QuantMode
	Bits  int
	// FineTuneEpochs runs post-quantization centroid fine-tuning.
	FineTuneEpochs int
	// FineTuneLR overrides the fine-tuning rate (default LR/10).
	FineTuneLR float64
	// KeepRegDuringFineTune keeps the correlation penalty active during
	// fine-tuning. The malicious flow (whose quantizer and fine-tuner
	// ship together) sets this; the "vanilla attack + default WEQ"
	// baseline does not, because there the fine-tuner is the benign
	// default one.
	KeepRegDuringFineTune bool

	// Log, when non-nil, receives progress lines — including the trainer's
	// per-epoch lines, formatted by train.LogTo.
	Log io.Writer
	// Trace, when non-nil, receives phase spans for the whole pipeline
	// (core/split, core/preprocess, core/train, core/quantize,
	// core/finetune, core/extract) plus the trainer's per-epoch breakdown.
	Trace *obs.Tracer

	// Cache, when non-nil, persists stage outputs into the store and
	// reuses them on later runs with matching cache keys (see pipeline.go
	// for the stage graph and key derivation). Requires ModelCfg: a
	// Builder closure has no canonical identity to key on, so setting
	// both panics. Mid-training epoch checkpoints are also written
	// (cadence CheckpointEvery) so interrupted runs can resume.
	Cache *artifact.Store
	// Resume, when true and Cache is set, probes the store for the latest
	// mid-training epoch checkpoint of this exact configuration and
	// continues training from it — bit-identically to an uninterrupted
	// run — instead of starting over. A full train artifact still wins
	// over any partial checkpoint.
	Resume bool
	// CheckpointEvery sets the mid-training checkpoint cadence in epochs
	// when Cache is set: 0 defaults to 5, negative disables.
	CheckpointEvery int
}

// Result captures everything the evaluation tables need from one run.
type Result struct {
	// Model is the released model (after quantization, if any).
	Model *nn.Model
	// Groups are the layer groups the run used.
	Groups []nn.LayerGroup
	// Plan is the encoding plan (nil for benign runs).
	Plan *attack.Plan
	// Reg is the correlation regularizer (nil for benign runs).
	Reg *attack.CorrelationReg
	// TrainAcc and TestAcc are accuracies of the released model.
	TrainAcc, TestAcc float64
	// PreQuantTestAcc is the accuracy before the quantization step
	// (equal to TestAcc when Quant == QuantNone).
	PreQuantTestAcc float64
	// Score aggregates reconstruction quality over all encoded images.
	Score attack.Score
	// PerGroup holds one score per encoding group (empty groups skipped).
	PerGroup []attack.Score
	// Recon are the extracted images, aligned with Plan.AllImages().
	Recon []*img.Image
	// Applied records the quantization (nil when Quant == QuantNone).
	Applied *quantize.Applied
}

// Run executes the pipeline described by cfg: the stage graph
//
//	split → preprocess → train → quantize → finetune → extract
//
// defined in pipeline.go. Without a Cache every stage recomputes, exactly
// as the monolithic flow did; with one, each stage first probes the store
// under its deterministic cache key and only computes (then persists) on
// a miss.
func Run(cfg Config) *Result {
	if cfg.Data == nil {
		panic("core: Config.Data is required")
	}
	if cfg.Cache != nil && cfg.Builder != nil {
		panic("core: Cache requires ModelCfg; a Builder closure has no canonical identity to key on")
	}
	if cfg.TestFrac == 0 {
		cfg.TestFrac = 0.2
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	if cfg.Bits == 0 {
		cfg.Bits = 4
	}
	// Resolve the shard count up front so the cache key and the trainer
	// agree on it: with a dist session the default is one shard per
	// process, and single-process stays at the legacy whole-batch path.
	if cfg.Shards <= 0 {
		cfg.Shards = 1
		if cfg.Dist != nil {
			cfg.Shards = cfg.Dist.Procs()
		}
	}

	var m *nn.Model
	if cfg.Builder != nil {
		m = cfg.Builder()
	} else {
		m = nn.NewResNet(cfg.ModelCfg)
	}
	groups := m.GroupsByConvIndex(cfg.GroupBounds)
	lambdas := cfg.Lambdas
	if lambdas == nil {
		lambdas = make([]float64, len(groups))
	}
	if len(lambdas) != len(groups) {
		panic(fmt.Sprintf("core: %d lambdas for %d groups", len(lambdas), len(groups)))
	}

	p := &pipeline{
		cfg: cfg, store: cfg.Cache,
		m: m, groups: groups, lambdas: lambdas,
		res:  &Result{Model: m, Groups: groups},
		keys: make(map[string]string),
	}
	for _, st := range stages() {
		p.exec(st)
		if st.name == "train" && cfg.Dist != nil && cfg.Dist.Worker() {
			// A worker's job ends with the jointly trained model: the
			// downstream stages (quantize, finetune, extract) run only on
			// the coordinator, whose process owns the run's outputs.
			break
		}
	}
	return p.res
}

// uniformPlanOverActive builds the vanilla Eq 1 style plan: every active
// group draws targets uniformly from the whole training set.
func uniformPlanOverActive(d *dataset.Dataset, groups []nn.LayerGroup, lambdas []float64, seed int64) *attack.Plan {
	plan := &attack.Plan{
		Window:    attack.Window{Lo: 0, Hi: 1e18},
		ImageGeom: [3]int{d.C, d.H, d.W},
	}
	for gi, g := range groups {
		sub := attack.UniformPlan(d, g, lambdas[gi], seed+int64(gi))
		pg := sub.Groups[0]
		pg.GroupIndex = gi
		if lambdas[gi] == 0 {
			pg = attack.PlanGroup{GroupIndex: gi}
		}
		plan.Groups = append(plan.Groups, pg)
	}
	return plan
}

// targetCorrelatedQuantize applies Algorithm 1 to every encoding group —
// per layer, so each layer keeps its own scale, with cluster boundaries
// from the group's target-image histogram — and weighted-entropy
// quantization to all remaining weight parameters per layer. Per-layer
// codebooks are how quantized models ship in practice, and the correlation
// survives because every layer's payload slice follows the same target
// pixel distribution the histogram describes.
func targetCorrelatedQuantize(m *nn.Model, groups []nn.LayerGroup, plan *attack.Plan, levels int) *quantize.Applied {
	a := &quantize.Applied{}
	covered := make(map[*nn.Param]bool)
	for _, pg := range plan.Groups {
		if len(pg.Images) == 0 {
			continue
		}
		g := groups[pg.GroupIndex]
		a.QuantizePerLayer(g.Params, quantize.TargetCorrelated{Targets: pg.Images}, levels)
		for _, p := range g.Params {
			covered[p] = true
		}
	}
	var rest []*nn.Param
	for _, p := range m.WeightParams() {
		if !covered[p] {
			rest = append(rest, p)
		}
	}
	if len(rest) > 0 {
		a.QuantizePerLayer(rest, quantize.WeightedEntropy{}, levels)
	}
	return a
}
