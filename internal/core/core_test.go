package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
)

// smallData returns a fast CIFAR-like dataset for integration tests.
func smallData(rgb bool, seed int64) *dataset.Dataset {
	return dataset.SyntheticCIFAR(dataset.CIFARConfig{
		N: 400, Classes: 10, H: 12, W: 12, RGB: rgb, Seed: seed,
		ContrastStd: 0.32, NoiseStd: 25, TemplateShare: 0.6,
	})
}

func smallModel(channels int) nn.ResNetConfig {
	return nn.ResNetConfig{
		InC: channels, InH: 12, InW: 12, Classes: 10,
		Widths: []int{4, 8, 16}, Blocks: []int{1, 1, 1}, Seed: 1,
	}
}

func fastCfg(d *dataset.Dataset, model nn.ResNetConfig) Config {
	return Config{
		Data: d, ModelCfg: model, TestFrac: 0.2,
		Epochs: 6, BatchSize: 32, LR: 0.05, Momentum: 0.9, ClipNorm: 5,
		Seed: 1,
	}
}

func TestBenignRun(t *testing.T) {
	d := smallData(false, 1)
	res := Run(fastCfg(d, smallModel(1)))
	if res.Plan != nil || res.Reg != nil {
		t.Fatal("benign run must have no plan or regularizer")
	}
	if res.TestAcc <= 0.15 {
		t.Fatalf("benign accuracy %v barely above chance", res.TestAcc)
	}
	if res.Applied != nil {
		t.Fatal("QuantNone must not quantize")
	}
	if res.TestAcc != res.PreQuantTestAcc {
		t.Fatal("unquantized accuracies must match")
	}
}

func TestVanillaAttackRun(t *testing.T) {
	d := smallData(false, 2)
	cfg := fastCfg(d, smallModel(1))
	cfg.Lambdas = []float64{5}
	res := Run(cfg)
	if res.Plan == nil || res.Reg == nil {
		t.Fatal("malicious run must build a plan and regularizer")
	}
	if res.Plan.TotalImages() == 0 {
		t.Fatal("no images encoded")
	}
	if len(res.Recon) != res.Plan.TotalImages() {
		t.Fatalf("reconstructed %d of %d images", len(res.Recon), res.Plan.TotalImages())
	}
	if res.Score.N == 0 {
		t.Fatal("no score computed")
	}
}

func TestProposedFlowRun(t *testing.T) {
	d := smallData(false, 3)
	cfg := fastCfg(d, smallModel(1))
	cfg.GroupBounds = []int{4, 6}
	cfg.Lambdas = []float64{0, 0, 10}
	cfg.WindowLen = 5
	cfg.Quant = QuantTargetCorrelated
	cfg.Bits = 4
	cfg.FineTuneEpochs = 1
	cfg.KeepRegDuringFineTune = true
	res := Run(cfg)
	if res.Applied == nil {
		t.Fatal("quantization record missing")
	}
	// The released model must actually be 16-valued per unit.
	for name, n := range res.Applied.UniqueValues() {
		if n > 16 {
			t.Fatalf("unit %s has %d distinct values after 4-bit quantization", name, n)
		}
	}
	// Zero-lambda groups carry no images.
	if len(res.Plan.Groups[0].Images) != 0 || len(res.Plan.Groups[1].Images) != 0 {
		t.Fatal("early groups must carry no payload")
	}
	if len(res.Plan.Groups[2].Images) == 0 {
		t.Fatal("encoding group carries no payload")
	}
	// Window respected.
	for _, im := range res.Plan.Groups[2].Images {
		s := im.Std()
		if s <= res.Plan.Window.Lo || s >= res.Plan.Window.Hi {
			t.Fatalf("target std %v outside window (%v, %v)", s, res.Plan.Window.Lo, res.Plan.Window.Hi)
		}
	}
}

func TestWEQQuantRun(t *testing.T) {
	d := smallData(false, 4)
	cfg := fastCfg(d, smallModel(1))
	cfg.Lambdas = []float64{3}
	cfg.Quant = QuantWEQ
	cfg.Bits = 6
	cfg.FineTuneEpochs = 1
	res := Run(cfg)
	if res.Applied == nil {
		t.Fatal("WEQ record missing")
	}
	for name, n := range res.Applied.UniqueValues() {
		if n > 64 {
			t.Fatalf("unit %s has %d distinct values at 6 bits", name, n)
		}
	}
}

func TestLinearQuantRun(t *testing.T) {
	d := smallData(false, 5)
	cfg := fastCfg(d, smallModel(1))
	cfg.Quant = QuantLinear
	cfg.Bits = 4
	res := Run(cfg)
	if res.Applied == nil {
		t.Fatal("linear quantization record missing")
	}
}

func TestRGBRun(t *testing.T) {
	d := smallData(true, 6)
	cfg := fastCfg(d, smallModel(3))
	cfg.Lambdas = []float64{5}
	res := Run(cfg)
	if res.Plan.ImageGeom != [3]int{3, 12, 12} {
		t.Fatalf("RGB geometry %v", res.Plan.ImageGeom)
	}
}

func TestLabelNoiseLowersTrainFit(t *testing.T) {
	d := smallData(false, 7)
	clean := fastCfg(d, smallModel(1))
	clean.Epochs = 4
	noisy := clean
	noisy.TrainLabelNoise = 0.5
	rc := Run(clean)
	rn := Run(noisy)
	if rn.TestAcc >= rc.TestAcc {
		t.Fatalf("50%% label noise did not hurt: %v vs %v", rn.TestAcc, rc.TestAcc)
	}
}

func TestTargetCorrelatedWithoutPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d := smallData(false, 8)
	cfg := fastCfg(d, smallModel(1))
	cfg.Quant = QuantTargetCorrelated
	Run(cfg)
}

func TestMissingDataPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(Config{})
}

func TestLambdaCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d := smallData(false, 9)
	cfg := fastCfg(d, smallModel(1))
	cfg.Lambdas = []float64{1, 2, 3} // no GroupBounds → 1 group
	Run(cfg)
}

func TestQuantModeString(t *testing.T) {
	for m, want := range map[QuantMode]string{
		QuantNone: "none", QuantWEQ: "weq", QuantLinear: "linear",
		QuantTargetCorrelated: "target-correlated",
	} {
		if m.String() != want {
			t.Fatalf("QuantMode(%d).String() = %q", int(m), m.String())
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	d := smallData(false, 10)
	cfg := fastCfg(d, smallModel(1))
	cfg.Lambdas = []float64{5}
	a := Run(cfg)
	b := Run(cfg)
	if a.TestAcc != b.TestAcc || a.Score.MeanMAPE != b.Score.MeanMAPE {
		t.Fatalf("runs not deterministic: %v/%v vs %v/%v",
			a.TestAcc, a.Score.MeanMAPE, b.TestAcc, b.Score.MeanMAPE)
	}
}
