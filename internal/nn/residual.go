package nn

import (
	"math/rand"

	"repro/internal/compute"
	"repro/internal/tensor"
)

// Residual is a pre-packaged basic residual block:
//
//	y = ReLU( BN2(Conv2(ReLU(BN1(Conv1(x))))) + shortcut(x) )
//
// where shortcut is the identity when the input and output geometries match,
// and a 1×1 strided convolution + batch-norm otherwise (the "option B"
// projection from He et al.).
type Residual struct {
	name  string
	body  *Sequential
	proj  *Sequential // nil means identity shortcut
	relu  *ReLU
	saved *tensor.Tensor // input cache for the shortcut path
	OutC  int
	OutH  int
	OutW  int
}

// NewResidual builds a basic block mapping (inC, h, w) to (outC, h/stride,
// w/stride). The two body convolutions get conv indices idx and idx+1; the
// projection (when present) shares index idx+1 (it acts at the same depth).
func NewResidual(name string, inC, h, w, outC, stride int, idx int, rng *rand.Rand) *Residual {
	conv1 := NewConv2D(name+".conv1", inC, h, w, outC, 3, stride, 1, rng)
	conv1.W.ConvIndex = idx
	conv1.B.ConvIndex = idx
	oh, ow := conv1.Dims.OutH, conv1.Dims.OutW
	conv2 := NewConv2D(name+".conv2", outC, oh, ow, outC, 3, 1, 1, rng)
	conv2.W.ConvIndex = idx + 1
	conv2.B.ConvIndex = idx + 1
	body := NewSequential(name+".body",
		conv1,
		NewBatchNorm2D(name+".bn1", outC),
		NewReLU(name+".relu1"),
		conv2,
		NewBatchNorm2D(name+".bn2", outC),
	)
	r := &Residual{
		name: name, body: body,
		relu: NewReLU(name + ".relu2"),
		OutC: outC, OutH: oh, OutW: ow,
	}
	if stride != 1 || inC != outC {
		pconv := NewConv2D(name+".proj", inC, h, w, outC, 1, stride, 0, rng)
		pconv.W.ConvIndex = idx + 1
		pconv.B.ConvIndex = idx + 1
		r.proj = NewSequential(name+".shortcut",
			pconv,
			NewBatchNorm2D(name+".projbn", outC),
		)
	}
	return r
}

// Name implements Layer.
func (r *Residual) Name() string { return r.name }

// addTensors returns a+b elementwise, chunked across the context's workers
// (a pure map: element i depends only on a[i] and b[i]).
func addTensors(ctx *compute.Ctx, a, b *tensor.Tensor) *tensor.Tensor {
	sum := tensor.New(a.Shape()...)
	sd := sum.Data()
	ad := a.Data()
	bd := b.Data()
	ctx.ForChunks(len(sd), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sd[i] = ad[i] + bd[i]
		}
	})
	return sum
}

// Forward implements Layer.
func (r *Residual) Forward(ctx *compute.Ctx, x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		r.saved = x
	}
	y := r.body.Forward(ctx, x, train)
	var sc *tensor.Tensor
	if r.proj != nil {
		sc = r.proj.Forward(ctx, x, train)
	} else {
		sc = x
	}
	return r.relu.Forward(ctx, addTensors(ctx, y, sc), train)
}

// Backward implements Layer.
func (r *Residual) Backward(ctx *compute.Ctx, grad *tensor.Tensor) *tensor.Tensor {
	g := r.relu.Backward(ctx, grad)
	dxBody := r.body.Backward(ctx, g)
	var dxShort *tensor.Tensor
	if r.proj != nil {
		dxShort = r.proj.Backward(ctx, g)
	} else {
		dxShort = g
	}
	return addTensors(ctx, dxBody, dxShort)
}

// Children returns the block's composite sub-layers (body and, when a
// projection shortcut exists, the shortcut), for callers that need to walk
// the layer tree (e.g. serialization of batch-norm statistics).
func (r *Residual) Children() []Layer {
	out := []Layer{r.body}
	if r.proj != nil {
		out = append(out, r.proj)
	}
	return out
}

// Params implements Layer.
func (r *Residual) Params() []*Param {
	ps := r.body.Params()
	if r.proj != nil {
		ps = append(ps, r.proj.Params()...)
	}
	return ps
}
