package nn

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/compute"
	"repro/internal/tensor"
)

// The determinism contract (see the compute package): every forward,
// backward, and optimizer-visible quantity must be bit-identical for every
// thread count. These tests pin that contract at the model level — a ResNet
// exercises conv, batch-norm (including running-stat updates), ReLU, pooling,
// residual adds, and dense layers in one pass.

// detModel builds a small ResNet with a fixed seed so two calls produce
// bit-identical initial parameters.
func detModel() *Model {
	return NewResNet(ResNetConfig{
		InC: 1, InH: 8, InW: 8, Classes: 4,
		Widths: []int{4, 8}, Blocks: []int{1, 1}, Seed: 77,
	})
}

// detSteps runs k manual SGD steps on m and returns the final logits of a
// held-out eval forward (eval mode covers the BN running-stat path too).
func detSteps(m *Model, k int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(78))
	x := tensor.New(6, 1, 8, 8).RandN(rng, 0, 1)
	labels := []int{0, 1, 2, 3, 0, 1}
	for step := 0; step < k; step++ {
		m.ZeroGrad()
		logits := m.ForwardTrain(x)
		_, grad := SoftmaxCrossEntropy(logits, labels)
		m.Backward(grad)
		for _, p := range m.Params() {
			p.Value.AddScaled(-0.05, p.Grad)
		}
	}
	xe := tensor.New(3, 1, 8, 8).RandN(rng, 0, 1)
	return m.Forward(xe)
}

func TestModelBitIdenticalAcrossThreadCounts(t *testing.T) {
	ref := detModel()
	ref.SetCtx(compute.Serial())
	refOut := detSteps(ref, 3)

	for _, threads := range []int{2, 4, 7} {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			m := detModel()
			m.SetThreads(threads)
			out := detSteps(m, 3)

			od, rd := out.Data(), refOut.Data()
			for i := range rd {
				if od[i] != rd[i] {
					t.Fatalf("eval logits[%d]: %v (threads=%d) != %v (serial)", i, od[i], threads, rd[i])
				}
			}
			for pi, p := range m.Params() {
				rp := ref.Params()[pi]
				pv, rv := p.Value.Data(), rp.Value.Data()
				for i := range rv {
					if pv[i] != rv[i] {
						t.Fatalf("param %s value[%d]: %v != %v", p.Name, i, pv[i], rv[i])
					}
				}
				pg, rg := p.Grad.Data(), rp.Grad.Data()
				for i := range rg {
					if pg[i] != rg[i] {
						t.Fatalf("param %s grad[%d]: %v != %v", p.Name, i, pg[i], rg[i])
					}
				}
			}
		})
	}
}

// Per-layer bit-identity for the layers with non-trivial parallel
// reductions: conv and dense gradient accumulation, batch-norm statistics.
func TestLayerGradsBitIdenticalAcrossThreadCounts(t *testing.T) {
	type build func() Layer
	cases := []struct {
		name    string
		build   build
		inShape []int
	}{
		{"conv", func() Layer {
			return NewConv2D("c", 3, 6, 6, 5, 3, 1, 1, rand.New(rand.NewSource(80)))
		}, []int{9, 3, 6, 6}},
		{"dense", func() Layer {
			return NewDense("d", 12, 7, rand.New(rand.NewSource(81)))
		}, []int{9, 12}},
		{"batchnorm", func() Layer {
			return NewBatchNorm2D("bn", 5)
		}, []int{9, 5, 3, 3}},
		{"maxpool", func() Layer {
			return NewMaxPool2D("mp", 2, 6, 6, 2)
		}, []int{9, 2, 6, 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(82))
			x := tensor.New(tc.inShape...).RandN(rng, 0, 1)

			type snapshot struct {
				out, dx []float64
				grads   [][]float64
			}
			runOne := func(ctx *compute.Ctx) snapshot {
				l := tc.build()
				for _, p := range l.Params() {
					p.ZeroGrad()
				}
				out := l.Forward(ctx, x, true)
				g := tensor.New(out.Shape()...).RandN(rand.New(rand.NewSource(83)), 0, 1)
				dx := l.Backward(ctx, g)
				s := snapshot{
					out: append([]float64(nil), out.Data()...),
					dx:  append([]float64(nil), dx.Data()...),
				}
				for _, p := range l.Params() {
					s.grads = append(s.grads, append([]float64(nil), p.Grad.Data()...))
				}
				return s
			}

			ref := runOne(compute.Serial())
			for _, threads := range []int{2, 4, 7} {
				got := runOne(compute.Get(threads))
				for i := range ref.out {
					if got.out[i] != ref.out[i] {
						t.Fatalf("threads=%d: out[%d] %v != %v", threads, i, got.out[i], ref.out[i])
					}
				}
				for i := range ref.dx {
					if got.dx[i] != ref.dx[i] {
						t.Fatalf("threads=%d: dx[%d] %v != %v", threads, i, got.dx[i], ref.dx[i])
					}
				}
				for pi := range ref.grads {
					for i := range ref.grads[pi] {
						if got.grads[pi][i] != ref.grads[pi][i] {
							t.Fatalf("threads=%d: param %d grad[%d] %v != %v",
								threads, pi, i, got.grads[pi][i], ref.grads[pi][i])
						}
					}
				}
			}
		})
	}
}
