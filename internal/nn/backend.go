package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// WeightsBackend supplies the weight views the inference path multiplies
// by. Layers with multiplicative weights (Conv2D, Dense) do not read their
// float parameter tensors directly during eval; they hold a tensor.Weights
// view obtained from a backend, so the physical weight representation is
// pluggable:
//
//   - the default DenseFloat backend returns views aliasing each parameter's
//     float storage — byte-identical to the pre-backend eval path;
//   - quantize.CodebookBackend returns codebook views over a released
//     model's quantization units, so eval runs LUT kernels over uint8
//     indices and never materializes dequantized weight tensors.
//
// Every backend must satisfy the bit-reproducibility contract: the view it
// returns for a parameter must evaluate bit-identically to a dense view of
// the same logical values (see the accumulation-order rule in
// internal/tensor). Backends affect inference only — training always goes
// through the float parameters, and a layer bound to a non-dense view
// panics on a train-mode forward.
type WeightsBackend interface {
	// Weights returns the eval view for a weight parameter. Called once
	// per parameter at bind time, not per forward pass.
	Weights(p *Param) tensor.Weights
}

// DenseFloat is the default backend: views alias the parameters' float
// storage. Binding it is a no-op in behavior — eval reads the same memory
// it always has.
type DenseFloat struct{}

// Weights implements WeightsBackend.
func (DenseFloat) Weights(p *Param) tensor.Weights {
	return tensor.DenseWeights(p.Value.Data())
}

// WeightBound is implemented by layers whose eval path multiplies by a
// weight view (Conv2D, Dense). Container and stateless layers do not
// implement it; SetWeightsBackend skips them.
type WeightBound interface {
	// BindWeights replaces the layer's eval weight view with one from b.
	BindWeights(b WeightsBackend)
	// BoundWeights returns the currently bound eval view.
	BoundWeights() tensor.Weights
}

// SetWeightsBackend rebinds every weight-bound layer's eval view to the
// given backend. Passing DenseFloat{} restores the default float path.
func (m *Model) SetWeightsBackend(b WeightsBackend) {
	Walk(m.Net, func(l Layer) {
		if wb, ok := l.(WeightBound); ok {
			wb.BindWeights(b)
		}
	})
}

// EvalWeightBytes sums the resident bytes of every bound eval weight view —
// the number that shrinks when a codebook backend replaces dense float
// views (1 byte per element plus the lookup table, vs 8 per element).
func (m *Model) EvalWeightBytes() int {
	n := 0
	Walk(m.Net, func(l Layer) {
		if wb, ok := l.(WeightBound); ok {
			n += wb.BoundWeights().Bytes()
		}
	})
	return n
}

// requireDenseForTrain is the guard every weight-bound layer calls on a
// train-mode forward: codebook views are eval-only because gradients flow
// into float parameters the view does not alias.
func requireDenseForTrain(name string, w tensor.Weights) {
	if !w.IsDense() {
		panic(fmt.Sprintf("nn: %s: training requires the dense weights backend (bound view is codebook)", name))
	}
}
