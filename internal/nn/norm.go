package nn

import (
	"fmt"
	"math"

	"repro/internal/compute"
	"repro/internal/tensor"
)

// BatchNorm2D normalizes each channel over the batch and spatial dimensions,
// then applies a learned affine transform. Running statistics accumulated
// during training are used at inference time.
//
// Work is sharded across the execution context by channel: every channel's
// statistics, normalized outputs, running-stat updates, and gradients touch
// only that channel's locations, so the parallel path is a pure map and
// bit-identical to the serial one. Within a channel, sums run over samples
// in batch order exactly as the serial loop does.
type BatchNorm2D struct {
	name    string
	C       int
	Eps     float64
	Mom     float64 // running-stat momentum (fraction of new batch statistic)
	Gamma   *Param
	Beta    *Param
	RunMean []float64
	RunVar  []float64

	// DeferStats, when set, makes the training forward pass compute and
	// record the batch moments (BatchStats) without folding them into
	// RunMean/RunVar. The data-parallel trainer uses this to make the
	// running-statistics update a separate, ordered reduction step: each
	// shard's moments are captured here, exchanged, and replayed in shard
	// order via ApplyBatchStats on every rank. Deferral is exact because
	// the training forward normalizes with batch statistics only — the
	// running statistics are read at inference time, never mid-epoch.
	DeferStats bool

	// caches for backward
	lastXHat *tensor.Tensor
	lastStd  []float64
	lastN    int
	lastHW   int

	// batch moments of the last training forward (per channel)
	lastMu []float64
	lastVa []float64
}

// NewBatchNorm2D creates a batch-norm layer for C channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	g := tensor.New(c)
	g.Fill(1)
	b := tensor.New(c)
	bn := &BatchNorm2D{
		name: name, C: c, Eps: 1e-5, Mom: 0.1,
		Gamma:   newParam(name+".gamma", g, false),
		Beta:    newParam(name+".beta", b, false),
		RunMean: make([]float64, c),
		RunVar:  make([]float64, c),
	}
	for i := range bn.RunVar {
		bn.RunVar[i] = 1
	}
	return bn
}

// Name implements Layer.
func (b *BatchNorm2D) Name() string { return b.name }

// Forward implements Layer. Input is (N, C, H, W) (or (N, C) with H=W=1).
func (b *BatchNorm2D) Forward(ctx *compute.Ctx, x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	hw := x.Len() / (n * b.C)
	xd := x.Data()
	out := tensor.New(x.Shape()...)
	od := out.Data()
	gd := b.Gamma.Value.Data()
	bd := b.Beta.Value.Data()

	if !train {
		ctx.For(b.C, func(c int, _ *compute.Arena) {
			invStd := 1.0 / math.Sqrt(b.RunVar[c]+b.Eps)
			mu := b.RunMean[c]
			g, bb := gd[c], bd[c]
			for s := 0; s < n; s++ {
				base := (s*b.C + c) * hw
				for i := 0; i < hw; i++ {
					od[base+i] = (xd[base+i]-mu)*invStd*g + bb
				}
			}
		})
		return out
	}

	cnt := float64(n * hw)
	xhat := tensor.New(x.Shape()...)
	xh := xhat.Data()
	if cap(b.lastStd) < b.C {
		b.lastStd = make([]float64, b.C)
	}
	b.lastStd = b.lastStd[:b.C]
	if cap(b.lastMu) < b.C {
		b.lastMu = make([]float64, b.C)
		b.lastVa = make([]float64, b.C)
	}
	b.lastMu, b.lastVa = b.lastMu[:b.C], b.lastVa[:b.C]
	ctx.For(b.C, func(c int, _ *compute.Arena) {
		mu := 0.0
		for s := 0; s < n; s++ {
			base := (s*b.C + c) * hw
			for i := 0; i < hw; i++ {
				mu += xd[base+i]
			}
		}
		mu /= cnt
		va := 0.0
		for s := 0; s < n; s++ {
			base := (s*b.C + c) * hw
			for i := 0; i < hw; i++ {
				d := xd[base+i] - mu
				va += d * d
			}
		}
		va /= cnt
		std := math.Sqrt(va + b.Eps)
		b.lastStd[c] = std
		invStd := 1.0 / std
		g, bb := gd[c], bd[c]
		for s := 0; s < n; s++ {
			base := (s*b.C + c) * hw
			for i := 0; i < hw; i++ {
				h := (xd[base+i] - mu) * invStd
				xh[base+i] = h
				od[base+i] = h*g + bb
			}
		}
		b.lastMu[c] = mu
		b.lastVa[c] = va
		if !b.DeferStats {
			b.RunMean[c] = (1-b.Mom)*b.RunMean[c] + b.Mom*mu
			b.RunVar[c] = (1-b.Mom)*b.RunVar[c] + b.Mom*va
		}
	})
	b.lastXHat = xhat
	b.lastN = n
	b.lastHW = hw
	return out
}

// Backward implements Layer, using the standard batch-norm gradient:
//
//	dx = γ/σ · (dy − mean(dy) − x̂·mean(dy·x̂))
func (b *BatchNorm2D) Backward(ctx *compute.Ctx, grad *tensor.Tensor) *tensor.Tensor {
	n, hw := b.lastN, b.lastHW
	cnt := float64(n * hw)
	gd := grad.Data()
	xh := b.lastXHat.Data()
	dx := tensor.New(grad.Shape()...)
	dd := dx.Data()
	gamma := b.Gamma.Value.Data()
	dgamma := b.Gamma.Grad.Data()
	dbeta := b.Beta.Grad.Data()
	ctx.For(b.C, func(c int, _ *compute.Arena) {
		sumDy, sumDyXhat := 0.0, 0.0
		for s := 0; s < n; s++ {
			base := (s*b.C + c) * hw
			for i := 0; i < hw; i++ {
				dy := gd[base+i]
				sumDy += dy
				sumDyXhat += dy * xh[base+i]
			}
		}
		dgamma[c] += sumDyXhat
		dbeta[c] += sumDy
		meanDy := sumDy / cnt
		meanDyXhat := sumDyXhat / cnt
		k := gamma[c] / b.lastStd[c]
		for s := 0; s < n; s++ {
			base := (s*b.C + c) * hw
			for i := 0; i < hw; i++ {
				dd[base+i] = k * (gd[base+i] - meanDy - xh[base+i]*meanDyXhat)
			}
		}
	})
	return dx
}

// BatchStats returns the per-channel batch mean and variance computed by
// the most recent training forward pass. The slices are internal buffers,
// valid until the next training forward; callers that keep them must copy.
func (b *BatchNorm2D) BatchStats() (mu, va []float64) { return b.lastMu, b.lastVa }

// ApplyBatchStats folds one batch's moments into the running statistics
// with the layer's momentum — exactly the update the training forward
// performs when DeferStats is off. The data-parallel trainer calls this
// once per shard, in shard order, on every rank, so the EMA sequence (and
// therefore RunMean/RunVar, bit for bit) is independent of which process
// computed which shard.
func (b *BatchNorm2D) ApplyBatchStats(mu, va []float64) {
	if len(mu) != b.C || len(va) != b.C {
		panic(fmt.Sprintf("nn: ApplyBatchStats got %d/%d channels, layer has %d", len(mu), len(va), b.C))
	}
	for c := 0; c < b.C; c++ {
		b.RunMean[c] = (1-b.Mom)*b.RunMean[c] + b.Mom*mu[c]
		b.RunVar[c] = (1-b.Mom)*b.RunVar[c] + b.Mom*va[c]
	}
}

// Params implements Layer.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }
