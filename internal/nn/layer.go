package nn

import (
	"repro/internal/compute"
	"repro/internal/tensor"
)

// Layer is a differentiable module with manual backpropagation.
//
// Forward consumes an input batch and returns the output batch; when train
// is true the layer caches whatever it needs for Backward and updates any
// running statistics. Backward consumes the loss gradient with respect to
// the layer's output and returns the gradient with respect to its input,
// accumulating parameter gradients along the way. Backward must be called
// with the same batch that was last passed to Forward with train=true.
//
// Both passes receive the execution context that owns the worker pool and
// scratch arenas; layers shard their per-sample batch loops across it
// instead of allocating scratch privately. Implementations must follow the
// compute package's determinism contract: per-sample work writes only to
// sample-owned locations, and cross-sample gradient sums go through
// per-sample partial buffers reduced in fixed sample order, so outputs and
// gradients are bit-identical for every thread count.
type Layer interface {
	// Name returns the layer's unique name within its model.
	Name() string
	// Forward computes the layer output for a batch.
	Forward(ctx *compute.Ctx, x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates the output gradient and returns the input
	// gradient.
	Backward(ctx *compute.Ctx, grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// Sequential chains layers, feeding each one's output to the next.
type Sequential struct {
	name   string
	Layers []Layer
}

// NewSequential builds a named sequential container.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, Layers: layers}
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.name }

// Add appends a layer.
func (s *Sequential) Add(l Layer) { s.Layers = append(s.Layers, l) }

// Forward implements Layer.
func (s *Sequential) Forward(ctx *compute.Ctx, x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(ctx, x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(ctx *compute.Ctx, grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(ctx, grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Walk visits l and every layer nested below it in forward order,
// descending into Sequential and Residual containers. Serialization code
// (model export, training checkpoints) uses it to reach per-layer state
// that is not a Param, like batch-norm running statistics.
func Walk(l Layer, visit func(Layer)) {
	visit(l)
	switch v := l.(type) {
	case *Sequential:
		for _, child := range v.Layers {
			Walk(child, visit)
		}
	case *Residual:
		for _, child := range v.Children() {
			Walk(child, visit)
		}
	}
}
