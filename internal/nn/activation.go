package nn

import (
	"repro/internal/compute"
	"repro/internal/tensor"
)

// ReLU applies max(0, x) elementwise. The flat range is chunked across the
// execution context's workers; elementwise maps are bit-identical for any
// chunking.
type ReLU struct {
	name string
	mask []bool
}

// NewReLU creates a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Forward implements Layer.
func (r *ReLU) Forward(ctx *compute.Ctx, x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	if train {
		if cap(r.mask) < len(d) {
			r.mask = make([]bool, len(d))
		}
		r.mask = r.mask[:len(d)]
	}
	ctx.ForChunks(len(d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pos := d[i] > 0
			if !pos {
				d[i] = 0
			}
			if train {
				r.mask[i] = pos
			}
		}
	})
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(ctx *compute.Ctx, grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	d := out.Data()
	ctx.ForChunks(len(d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !r.mask[i] {
				d[i] = 0
			}
		}
	})
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// LeakyReLU applies x for x>0 and alpha*x otherwise.
type LeakyReLU struct {
	name  string
	Alpha float64
	mask  []bool
}

// NewLeakyReLU creates a leaky ReLU with the given negative slope.
func NewLeakyReLU(name string, alpha float64) *LeakyReLU {
	return &LeakyReLU{name: name, Alpha: alpha}
}

// Name implements Layer.
func (r *LeakyReLU) Name() string { return r.name }

// Forward implements Layer.
func (r *LeakyReLU) Forward(ctx *compute.Ctx, x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	if train {
		if cap(r.mask) < len(d) {
			r.mask = make([]bool, len(d))
		}
		r.mask = r.mask[:len(d)]
	}
	ctx.ForChunks(len(d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pos := d[i] > 0
			if !pos {
				d[i] *= r.Alpha
			}
			if train {
				r.mask[i] = pos
			}
		}
	})
	return out
}

// Backward implements Layer.
func (r *LeakyReLU) Backward(ctx *compute.Ctx, grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	d := out.Data()
	ctx.ForChunks(len(d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !r.mask[i] {
				d[i] *= r.Alpha
			}
		}
	})
	return out
}

// Params implements Layer.
func (r *LeakyReLU) Params() []*Param { return nil }
