// Package nn is a from-scratch neural-network substrate with manual
// backpropagation. It provides the layers needed for small residual
// convolutional classifiers (dense, conv2d, batch-norm, pooling, residual
// blocks), a softmax cross-entropy loss, and model utilities (named
// parameters, layer groups) used by the data-encoding attacks.
//
// The package exists because the paper's attack operates on a
// gradient-trained model's weights; reproducing it in pure Go requires a
// trainable substrate. See DESIGN.md §2 for the substitution argument.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is a trainable parameter with its gradient accumulator.
type Param struct {
	// Name uniquely identifies the parameter within a model,
	// e.g. "stage2.block0.conv1.w".
	Name string
	// Value holds the parameter tensor.
	Value *tensor.Tensor
	// Grad accumulates the loss gradient; it always has Value's shape.
	Grad *tensor.Tensor
	// Weight marks multiplicative weights (conv kernels, dense matrices).
	// Only weight parameters are used as data-encoding carriers; biases
	// and batch-norm affine parameters are excluded, matching the
	// correlated-value-encoding attack which correlates "parameters"
	// in the sense of weight matrices.
	Weight bool
	// ConvIndex is the 1-based index of the convolution/dense layer this
	// parameter belongs to, in forward order, or 0 for parameters that do
	// not belong to an indexed layer. The paper's layer groups ("layers
	// 1-12") are defined over this index.
	ConvIndex int
}

func newParam(name string, t *tensor.Tensor, weight bool) *Param {
	return &Param{
		Name:   name,
		Value:  t,
		Grad:   tensor.New(t.Shape()...),
		Weight: weight,
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// ReleaseStorage drops the parameter's float value and gradient storage.
// Used by codebook-native model loading for weight parameters whose values
// are served from a quantized view: the 8-byte-per-element float copies
// would otherwise sit resident for nothing. A released parameter cannot be
// trained or read; audit paths that need floats re-import the release
// record instead.
func (p *Param) ReleaseStorage() {
	p.Value.Release()
	p.Grad.Release()
}

// Released reports whether the parameter's float storage has been dropped.
func (p *Param) Released() bool { return p.Value.Released() }

// NumEl returns the number of scalar elements in the parameter. It is
// derived from the shape, so it stays correct after ReleaseStorage.
func (p *Param) NumEl() int { return p.Value.ShapeLen() }

func (p *Param) String() string {
	return fmt.Sprintf("%s%v", p.Name, p.Value.Shape())
}
