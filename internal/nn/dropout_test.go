package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout("d", 0.5, 1)
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(4, 8).RandN(rng, 0, 1)
	y := d.Forward(serialCtx, x, false)
	for i := range x.Data() {
		if y.Data()[i] != x.Data()[i] {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
}

func TestDropoutTrainDropsAndRescales(t *testing.T) {
	d := NewDropout("d", 0.5, 2)
	x := tensor.New(1, 10000)
	x.Fill(1)
	y := d.Forward(serialCtx, x, true)
	zeros := 0
	for _, v := range y.Data() {
		switch v {
		case 0:
			zeros++
		case 2:
			// survivor scaled by 1/(1-0.5)
		default:
			t.Fatalf("unexpected value %v", v)
		}
	}
	frac := float64(zeros) / 10000
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("drop fraction %v, want ≈0.5", frac)
	}
	// Expectation preserved.
	if m := y.Mean(); math.Abs(m-1) > 0.05 {
		t.Fatalf("mean after dropout %v, want ≈1", m)
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	d := NewDropout("d", 0.3, 3)
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(2, 50).RandN(rng, 0, 1)
	y := d.Forward(serialCtx, x, true)
	g := tensor.New(2, 50)
	g.Fill(1)
	dx := d.Backward(serialCtx, g)
	scale := 1.0 / 0.7
	for i, v := range y.Data() {
		if v == 0 && dx.Data()[i] != 0 {
			t.Fatal("gradient leaked through dropped unit")
		}
		if v != 0 && math.Abs(dx.Data()[i]-scale) > 1e-12 {
			t.Fatalf("survivor gradient %v, want %v", dx.Data()[i], scale)
		}
	}
}

func TestDropoutZeroPIsPassthrough(t *testing.T) {
	d := NewDropout("d", 0, 4)
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(2, 5).RandN(rng, 0, 1)
	y := d.Forward(serialCtx, x, true)
	dx := d.Backward(serialCtx, y)
	for i := range x.Data() {
		if y.Data()[i] != x.Data()[i] || dx.Data()[i] != y.Data()[i] {
			t.Fatal("p=0 dropout must pass through")
		}
	}
}

func TestDropoutBadPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout("d", 1.0, 5)
}

func TestTanhGradients(t *testing.T) {
	checkLayerGradients(t, NewTanh("t"), []int{3, 7}, 40, 1e-5)
}

func TestSigmoidGradients(t *testing.T) {
	checkLayerGradients(t, NewSigmoid("s"), []int{3, 7}, 41, 1e-5)
}

func TestTanhRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.New(1, 100).RandN(rng, 0, 10)
	y := NewTanh("t").Forward(serialCtx, x, false)
	if y.Min() < -1 || y.Max() > 1 {
		t.Fatalf("tanh out of range [%v, %v]", y.Min(), y.Max())
	}
}

func TestSigmoidRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.New(1, 100).RandN(rng, 0, 10)
	y := NewSigmoid("s").Forward(serialCtx, x, false)
	if y.Min() < 0 || y.Max() > 1 {
		t.Fatalf("sigmoid out of range [%v, %v]", y.Min(), y.Max())
	}
}

// Dropout inside a network still trains: the rings problem from the train
// package, reduced here to a quick smoke via direct gradient steps.
func TestDropoutNetworkTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	seq := NewSequential("net",
		NewDense("fc1", 2, 16, rng),
		NewReLU("r1"),
		NewDropout("do", 0.2, 8),
		NewDense("fc2", 16, 2, rng),
	)
	m := NewModel(seq, 2, []int{2})
	n := 128
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		cx := -1.5
		if c == 1 {
			cx = 1.5
		}
		x.Set(cx+rng.NormFloat64()*0.4, i, 0)
		x.Set(rng.NormFloat64()*0.4, i, 1)
		y[i] = c
	}
	for step := 0; step < 200; step++ {
		m.ZeroGrad()
		logits := m.ForwardTrain(x)
		_, grad := SoftmaxCrossEntropy(logits, y)
		m.Backward(grad)
		for _, p := range m.Params() {
			p.Value.AddScaled(-0.1, p.Grad)
		}
	}
	if acc := m.Accuracy(x, y, 64); acc < 0.95 {
		t.Fatalf("dropout network accuracy %v", acc)
	}
}
