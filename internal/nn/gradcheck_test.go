package nn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/compute"
	"repro/internal/tensor"
)

// serialCtx is the execution context used by single-purpose layer tests.
// The parallel paths get equal coverage: checkLayerGradients re-runs every
// gradient check under each context in gradCtxs, and the determinism suite
// asserts bit-identical results across thread counts.
var serialCtx = compute.Serial()

// gradCtxs are the execution contexts every gradient check runs under. The
// odd worker count (3) exercises uneven chunk splits.
var gradCtxs = []*compute.Ctx{compute.Serial(), compute.Get(3)}

// numericalGrad estimates d(loss)/d(v[i]) by central differences, where
// loss is recomputed through the full forward pass each time.
func numericalGrad(loss func() float64, v []float64, i int) float64 {
	const h = 1e-5
	orig := v[i]
	v[i] = orig + h
	lp := loss()
	v[i] = orig - h
	lm := loss()
	v[i] = orig
	return (lp - lm) / (2 * h)
}

// checkLayerGradients verifies layer's analytic gradients against central
// differences under every context in gradCtxs (serial and parallel).
func checkLayerGradients(t *testing.T, layer Layer, inShape []int, seed int64, tol float64) {
	t.Helper()
	for _, ctx := range gradCtxs {
		t.Run(fmt.Sprintf("threads=%d", ctx.Threads()), func(t *testing.T) {
			checkLayerGradientsCtx(t, ctx, layer, inShape, seed, tol)
		})
	}
}

// checkLayerGradientsCtx runs a forward/backward pass through layer on a
// random batch, then verifies both parameter gradients and input gradients
// against central differences of a scalar loss (weighted sum of outputs).
func checkLayerGradientsCtx(t *testing.T, ctx *compute.Ctx, layer Layer, inShape []int, seed int64, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(inShape...).RandN(rng, 0, 1)

	// Fixed random projection makes the scalar loss sensitive to every
	// output element.
	var proj []float64
	loss := func() float64 {
		out := layer.Forward(ctx, x, false)
		if proj == nil {
			proj = make([]float64, out.Len())
			prng := rand.New(rand.NewSource(seed + 99))
			for i := range proj {
				proj[i] = prng.NormFloat64()
			}
		}
		s := 0.0
		for i, v := range out.Data() {
			s += proj[i] * v
		}
		return s
	}
	// Prime proj.
	loss()

	// Analytic pass.
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	out := layer.Forward(ctx, x, true)
	g := tensor.FromSlice(append([]float64(nil), proj...), out.Shape()...)
	dx := layer.Backward(ctx, g)

	// Input gradient check (subsample for speed).
	xd := x.Data()
	for _, i := range sampleIndices(len(xd), 12, seed+1) {
		want := numericalGrad(loss, xd, i)
		got := dx.Data()[i]
		if math.Abs(got-want) > tol*(1+math.Abs(want)) {
			t.Fatalf("%s: input grad[%d] = %v, want %v", layer.Name(), i, got, want)
		}
	}
	// Parameter gradient check.
	for _, p := range layer.Params() {
		pd := p.Value.Data()
		for _, i := range sampleIndices(len(pd), 10, seed+2) {
			want := numericalGrad(loss, pd, i)
			got := p.Grad.Data()[i]
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("%s: param %s grad[%d] = %v, want %v", layer.Name(), p.Name, i, got, want)
			}
		}
	}
}

func sampleIndices(n, k int, seed int64) []int {
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, k)
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	checkLayerGradients(t, NewDense("d", 7, 5, rng), []int{3, 7}, 20, 1e-5)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checkLayerGradients(t, NewConv2D("c", 2, 5, 5, 3, 3, 1, 1, rng), []int{2, 2, 5, 5}, 21, 1e-5)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	checkLayerGradients(t, NewConv2D("cs", 3, 6, 6, 4, 3, 2, 1, rng), []int{2, 3, 6, 6}, 22, 1e-5)
}

func TestReLUGradients(t *testing.T) {
	checkLayerGradients(t, NewReLU("r"), []int{4, 9}, 23, 1e-5)
}

func TestLeakyReLUGradients(t *testing.T) {
	checkLayerGradients(t, NewLeakyReLU("lr", 0.1), []int{4, 9}, 24, 1e-5)
}

func TestMaxPoolGradients(t *testing.T) {
	checkLayerGradients(t, NewMaxPool2D("mp", 2, 4, 4, 2), []int{3, 2, 4, 4}, 25, 1e-5)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	checkLayerGradients(t, NewGlobalAvgPool("gap", 3, 4, 4), []int{2, 3, 4, 4}, 26, 1e-5)
}

func TestResidualIdentityGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Identity shortcut: inC == outC, stride 1. BatchNorm in train mode
	// uses batch stats, and the numeric loss uses eval mode, so freeze the
	// BN layers into near-passthrough by checking eval/train consistency
	// separately; here we exercise the full block's backward shape and
	// the conv gradient flow via a BN-free surrogate.
	blk := NewResidual("res", 4, 4, 4, 4, 1, 1, rng)
	x := tensor.New(2, 4, 4, 4).RandN(rng, 0, 1)
	out := blk.Forward(serialCtx, x, true)
	if !out.SameShape(x) {
		t.Fatalf("identity residual output shape %v, want %v", out.Shape(), x.Shape())
	}
	g := tensor.New(out.Shape()...).RandN(rng, 0, 1)
	dx := blk.Backward(serialCtx, g)
	if !dx.SameShape(x) {
		t.Fatalf("residual input grad shape %v, want %v", dx.Shape(), x.Shape())
	}
	if !dx.IsFinite() {
		t.Fatal("residual backward produced non-finite gradients")
	}
}

func TestResidualProjectionShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	blk := NewResidual("res2", 4, 8, 8, 8, 2, 3, rng)
	x := tensor.New(2, 4, 8, 8).RandN(rng, 0, 1)
	out := blk.Forward(serialCtx, x, true)
	if out.Dim(1) != 8 || out.Dim(2) != 4 || out.Dim(3) != 4 {
		t.Fatalf("projected residual output shape %v, want [2 8 4 4]", out.Shape())
	}
	dx := blk.Backward(serialCtx, tensor.New(out.Shape()...).RandN(rng, 0, 1))
	if !dx.SameShape(x) {
		t.Fatalf("projected residual input grad shape %v", dx.Shape())
	}
}

// Batch-norm gradient check must keep the loss function in training mode so
// batch statistics match; we wrap Forward(train=true) in the numeric loss
// (running stats drift is irrelevant to the gradient values).
func TestBatchNormGradients(t *testing.T) {
	for _, ctx := range gradCtxs {
		t.Run(fmt.Sprintf("threads=%d", ctx.Threads()), func(t *testing.T) {
			testBatchNormGradients(t, ctx)
		})
	}
}

func testBatchNormGradients(t *testing.T, ctx *compute.Ctx) {
	rng := rand.New(rand.NewSource(15))
	bn := NewBatchNorm2D("bn", 3)
	x := tensor.New(4, 3, 2, 2).RandN(rng, 0, 1)

	proj := make([]float64, x.Len())
	prng := rand.New(rand.NewSource(5))
	for i := range proj {
		proj[i] = prng.NormFloat64()
	}
	loss := func() float64 {
		out := bn.Forward(ctx, x, true)
		s := 0.0
		for i, v := range out.Data() {
			s += proj[i] * v
		}
		return s
	}
	bn.Gamma.ZeroGrad()
	bn.Beta.ZeroGrad()
	out := bn.Forward(ctx, x, true)
	g := tensor.FromSlice(append([]float64(nil), proj...), out.Shape()...)
	dx := bn.Backward(ctx, g)

	xd := x.Data()
	for _, i := range sampleIndices(len(xd), 10, 6) {
		want := numericalGrad(loss, xd, i)
		got := dx.Data()[i]
		if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("bn input grad[%d] = %v, want %v", i, got, want)
		}
	}
	for _, p := range []*Param{bn.Gamma, bn.Beta} {
		pd := p.Value.Data()
		for i := range pd {
			want := numericalGrad(loss, pd, i)
			got := p.Grad.Data()[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("bn %s grad[%d] = %v, want %v", p.Name, i, got, want)
			}
		}
	}
}

func TestSoftmaxCrossEntropyGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	logits := tensor.New(4, 5).RandN(rng, 0, 2)
	labels := []int{1, 0, 4, 2}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	ld := logits.Data()
	for i := range ld {
		want := numericalGrad(func() float64 {
			l, _ := SoftmaxCrossEntropy(logits, labels)
			return l
		}, ld, i)
		got := grad.Data()[i]
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("CE grad[%d] = %v, want %v", i, got, want)
		}
	}
}
