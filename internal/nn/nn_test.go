package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestDenseForwardExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("d", 2, 3, rng)
	d.W.Value.CopyFrom(tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2))
	d.B.Value.CopyFrom(tensor.FromSlice([]float64{0.5, -0.5, 1}, 3))
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	y := d.Forward(serialCtx, x, false)
	want := []float64{3.5, 6.5, 12}
	for i, v := range want {
		if math.Abs(y.Data()[i]-v) > 1e-12 {
			t.Fatalf("dense out[%d] = %v, want %v", i, y.Data()[i], v)
		}
	}
}

func TestConv2DForwardExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D("c", 1, 3, 3, 1, 2, 1, 0, rng)
	// Kernel = all ones, bias = 0 → each output is the 2x2 window sum.
	c.W.Value.Fill(1)
	c.B.Value.Zero()
	x := tensor.FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	y := c.Forward(serialCtx, x, false)
	want := []float64{12, 16, 24, 28}
	for i, v := range want {
		if math.Abs(y.Data()[i]-v) > 1e-12 {
			t.Fatalf("conv out[%d] = %v, want %v", i, y.Data()[i], v)
		}
	}
}

func TestConv2DBiasBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv2D("c", 1, 2, 2, 2, 1, 1, 0, rng)
	c.W.Value.Zero()
	c.B.Value.CopyFrom(tensor.FromSlice([]float64{1.5, -2}, 2))
	x := tensor.New(1, 1, 2, 2)
	y := c.Forward(serialCtx, x, false)
	for i := 0; i < 4; i++ {
		if y.Data()[i] != 1.5 {
			t.Fatalf("channel 0 elem %d = %v, want 1.5", i, y.Data()[i])
		}
		if y.Data()[4+i] != -2 {
			t.Fatalf("channel 1 elem %d = %v, want -2", i, y.Data()[4+i])
		}
	}
}

func TestReLUForward(t *testing.T) {
	r := NewReLU("r")
	x := tensor.FromSlice([]float64{-1, 0, 2}, 1, 3)
	y := r.Forward(serialCtx, x, false)
	want := []float64{0, 0, 2}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("relu out[%d] = %v, want %v", i, y.Data()[i], v)
		}
	}
	if x.Data()[0] != -1 {
		t.Fatal("ReLU must not mutate its input")
	}
}

func TestMaxPoolForward(t *testing.T) {
	p := NewMaxPool2D("p", 1, 4, 4, 2)
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	y := p.Forward(serialCtx, x, false)
	want := []float64{4, 8, 12, 16}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("pool out[%d] = %v, want %v", i, y.Data()[i], v)
		}
	}
}

func TestGlobalAvgPoolForward(t *testing.T) {
	p := NewGlobalAvgPool("gap", 2, 2, 2)
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y := p.Forward(serialCtx, x, false)
	if y.Data()[0] != 2.5 || y.Data()[1] != 25 {
		t.Fatalf("gap out = %v, want [2.5 25]", y.Data())
	}
}

func TestBatchNormTrainStats(t *testing.T) {
	bn := NewBatchNorm2D("bn", 1)
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(8, 1, 4, 4).RandN(rng, 5, 3)
	y := bn.Forward(serialCtx, x, true)
	if m := y.Mean(); math.Abs(m) > 1e-10 {
		t.Fatalf("bn train output mean = %v, want 0", m)
	}
	if s := y.Std(); math.Abs(s-1) > 1e-6 {
		t.Fatalf("bn train output std = %v, want 1", s)
	}
}

func TestBatchNormRunningStatsConverge(t *testing.T) {
	bn := NewBatchNorm2D("bn", 1)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		x := tensor.New(16, 1, 2, 2).RandN(rng, 7, 2)
		bn.Forward(serialCtx, x, true)
	}
	if math.Abs(bn.RunMean[0]-7) > 0.3 {
		t.Fatalf("running mean = %v, want ≈7", bn.RunMean[0])
	}
	if math.Abs(bn.RunVar[0]-4) > 1.0 {
		t.Fatalf("running var = %v, want ≈4", bn.RunVar[0])
	}
	// Eval mode should now roughly standardize fresh data from the same
	// distribution.
	x := tensor.New(64, 1, 2, 2).RandN(rng, 7, 2)
	y := bn.Forward(serialCtx, x, false)
	if m := y.Mean(); math.Abs(m) > 0.2 {
		t.Fatalf("bn eval mean = %v, want ≈0", m)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	logits := tensor.New(5, 7).RandN(rng, 0, 10)
	p := Softmax(logits)
	for i := 0; i < 5; i++ {
		s := 0.0
		for j := 0; j < 7; j++ {
			s += p.At(i, j)
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	logits := tensor.New(2, 4) // all zeros → uniform
	loss, _ := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-9 {
		t.Fatalf("uniform CE loss = %v, want ln(4)", loss)
	}
}

func TestSoftmaxCrossEntropyBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range label")
		}
	}()
	SoftmaxCrossEntropy(tensor.New(1, 3), []int{3})
}

func TestSequentialComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seq := NewSequential("s",
		NewDense("fc1", 4, 8, rng),
		NewReLU("r1"),
		NewDense("fc2", 8, 2, rng),
	)
	if got := len(seq.Params()); got != 4 {
		t.Fatalf("sequential param count = %d, want 4", got)
	}
	x := tensor.New(3, 4).RandN(rng, 0, 1)
	y := seq.Forward(serialCtx, x, true)
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("sequential out shape %v", y.Shape())
	}
	dx := seq.Backward(serialCtx, tensor.New(3, 2).RandN(rng, 0, 1))
	if dx.Dim(1) != 4 {
		t.Fatalf("sequential input grad shape %v", dx.Shape())
	}
}

func TestResNetConstruction(t *testing.T) {
	m := NewResNet(DefaultCIFARConfig(1, 10))
	if m.Classes != 10 {
		t.Fatalf("classes = %d", m.Classes)
	}
	// 1 stem + 2 convs × 6 blocks = 13 conv indices, dense = 14.
	if got := m.MaxConvIndex(); got != 14 {
		t.Fatalf("MaxConvIndex = %d, want 14", got)
	}
	if m.NumParams() < 10000 {
		t.Fatalf("suspiciously few params: %d", m.NumParams())
	}
	x := tensor.New(2, 1, 16, 16).RandN(rand.New(rand.NewSource(8)), 0, 1)
	y := m.Forward(x)
	if y.Dim(0) != 2 || y.Dim(1) != 10 {
		t.Fatalf("resnet out shape %v", y.Shape())
	}
}

func TestResNetTrainBackwardFinite(t *testing.T) {
	m := NewResNet(ResNetConfig{InC: 1, InH: 8, InW: 8, Classes: 4, Widths: []int{4, 8}, Blocks: []int{1, 1}, Seed: 3})
	rng := rand.New(rand.NewSource(9))
	x := tensor.New(4, 1, 8, 8).RandN(rng, 0, 1)
	labels := []int{0, 1, 2, 3}
	logits := m.ForwardTrain(x)
	_, grad := nn_sce(logits, labels)
	m.Backward(grad)
	for _, p := range m.Params() {
		if !p.Grad.IsFinite() {
			t.Fatalf("non-finite grad in %s", p.Name)
		}
	}
}

// nn_sce aliases SoftmaxCrossEntropy for readability in tests.
func nn_sce(l *tensor.Tensor, y []int) (float64, *tensor.Tensor) {
	return SoftmaxCrossEntropy(l, y)
}

func TestModelGroupsByConvIndex(t *testing.T) {
	m := NewResNet(DefaultCIFARConfig(1, 10))
	groups := m.GroupsByConvIndex([]int{5, 9})
	if len(groups) != 3 {
		t.Fatalf("group count = %d, want 3", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += g.NumEl
		for _, p := range g.Params {
			if !p.Weight {
				t.Fatalf("group %s contains non-weight param %s", g.Name, p.Name)
			}
		}
	}
	if total != m.NumWeightParams() {
		t.Fatalf("groups cover %d weights, model has %d", total, m.NumWeightParams())
	}
	// Bounds respected.
	for _, p := range groups[0].Params {
		if p.ConvIndex > 5 {
			t.Fatalf("group1 has conv index %d", p.ConvIndex)
		}
	}
	for _, p := range groups[2].Params {
		if p.ConvIndex <= 9 {
			t.Fatalf("group3 has conv index %d", p.ConvIndex)
		}
	}
}

func TestGroupFlattenScatterRoundTrip(t *testing.T) {
	m := NewMLP("mlp", 10, []int{8}, 3, 42)
	groups := m.GroupsByConvIndex([]int{1})
	g := groups[1]
	v := g.FlattenValues()
	for i := range v {
		v[i] = float64(i)
	}
	g.ScatterValues(v)
	v2 := g.FlattenValues()
	for i := range v2 {
		if v2[i] != float64(i) {
			t.Fatalf("round trip mismatch at %d: %v", i, v2[i])
		}
	}
}

func TestGroupAddToGrads(t *testing.T) {
	m := NewMLP("mlp", 4, nil, 2, 43)
	m.ZeroGrad()
	groups := m.GroupsByConvIndex(nil)
	g := groups[0]
	v := make([]float64, g.NumEl)
	for i := range v {
		v[i] = 1
	}
	g.AddToGrads(v)
	for _, p := range g.Params {
		for i, gv := range p.Grad.Data() {
			if gv != 1 {
				t.Fatalf("%s grad[%d] = %v, want 1", p.Name, i, gv)
			}
		}
	}
}

func TestPredictAndAccuracy(t *testing.T) {
	m := NewMLP("mlp", 2, nil, 2, 44)
	// Make the classifier trivially separable: class = sign of x0.
	fc := m.Net.(*Sequential).Layers[0].(*Dense)
	fc.W.Value.CopyFrom(tensor.FromSlice([]float64{1, 0, -1, 0}, 2, 2))
	fc.B.Value.Zero()
	x := tensor.FromSlice([]float64{5, 0, -5, 0, 3, 1, -2, 9}, 4, 2)
	labels := []int{0, 1, 0, 1}
	if acc := m.Accuracy(x, labels, 2); acc != 1 {
		t.Fatalf("accuracy = %v, want 1", acc)
	}
	preds := m.Predict(x, 3)
	want := []int{0, 1, 0, 1}
	for i := range want {
		if preds[i] != want[i] {
			t.Fatalf("pred[%d] = %d, want %d", i, preds[i], want[i])
		}
	}
}

func TestMLPConvIndices(t *testing.T) {
	m := NewMLP("mlp", 6, []int{5, 4}, 3, 45)
	if got := m.MaxConvIndex(); got != 3 {
		t.Fatalf("MLP MaxConvIndex = %d, want 3", got)
	}
	ws := m.WeightParams()
	if len(ws) != 3 {
		t.Fatalf("MLP weight params = %d, want 3", len(ws))
	}
}

func TestParamStringAndNumEl(t *testing.T) {
	m := NewMLP("m", 3, nil, 2, 46)
	p := m.WeightParams()[0]
	if p.NumEl() != 6 {
		t.Fatalf("NumEl = %d, want 6", p.NumEl())
	}
	if p.String() == "" {
		t.Fatal("empty param string")
	}
}
