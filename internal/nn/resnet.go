package nn

import (
	"fmt"
	"math/rand"
)

// ResNetConfig describes a MiniResNet: a scaled-down residual classifier
// structured like the paper's ResNet-34 (initial conv, three stages of
// basic blocks with channel doubling and stride-2 downsampling, global
// average pooling, linear classifier).
type ResNetConfig struct {
	// InC, InH, InW give the per-sample input shape.
	InC, InH, InW int
	// Classes is the classifier output width.
	Classes int
	// Widths are per-stage channel counts, e.g. [8, 16, 32].
	Widths []int
	// Blocks are per-stage basic-block counts, e.g. [2, 2, 2].
	Blocks []int
	// Seed drives weight initialization.
	Seed int64
}

// DefaultCIFARConfig returns the MiniResNet used for the CIFAR-like
// experiments: 3 stages on 16×16 inputs. Conv-layer indices run 1..13
// (1 stem + 12 block convs) plus the final dense layer at index 14, so the
// paper's group structure (early/middle/late) maps onto index bounds.
func DefaultCIFARConfig(channels, classes int) ResNetConfig {
	return ResNetConfig{
		InC: channels, InH: 16, InW: 16,
		Classes: classes,
		Widths:  []int{8, 16, 32},
		Blocks:  []int{2, 2, 2},
		Seed:    1,
	}
}

// DefaultFaceConfig returns the MiniResNet used for the face-recognition
// experiments: wider final stage (more payload capacity) on 24×24 gray
// crops with many identity classes.
func DefaultFaceConfig(classes int) ResNetConfig {
	return ResNetConfig{
		InC: 1, InH: 24, InW: 24,
		Classes: classes,
		Widths:  []int{8, 16, 40},
		Blocks:  []int{2, 2, 2},
		Seed:    2,
	}
}

// NewResNet builds a MiniResNet from cfg. Conv layers get 1-based
// ConvIndex values in forward order; the classifier dense layer gets the
// next index.
func NewResNet(cfg ResNetConfig) *Model {
	if len(cfg.Widths) != len(cfg.Blocks) {
		panic(fmt.Sprintf("nn: widths %v and blocks %v differ in length", cfg.Widths, cfg.Blocks))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	seq := NewSequential("resnet")

	idx := 1
	stem := NewConv2D("stem.conv", cfg.InC, cfg.InH, cfg.InW, cfg.Widths[0], 3, 1, 1, rng)
	stem.W.ConvIndex = idx
	stem.B.ConvIndex = idx
	idx++
	seq.Add(stem)
	seq.Add(NewBatchNorm2D("stem.bn", cfg.Widths[0]))
	seq.Add(NewReLU("stem.relu"))

	c, h, w := cfg.Widths[0], cfg.InH, cfg.InW
	for si, width := range cfg.Widths {
		stride := 2
		if si == 0 {
			stride = 1
		}
		for bi := 0; bi < cfg.Blocks[si]; bi++ {
			s := 1
			if bi == 0 {
				s = stride
			}
			name := fmt.Sprintf("stage%d.block%d", si+1, bi)
			blk := NewResidual(name, c, h, w, width, s, idx, rng)
			idx += 2
			seq.Add(blk)
			c, h, w = blk.OutC, blk.OutH, blk.OutW
		}
	}

	seq.Add(NewGlobalAvgPool("gap", c, h, w))
	fc := NewDense("fc", c, cfg.Classes, rng)
	fc.W.ConvIndex = idx
	fc.B.ConvIndex = idx
	seq.Add(fc)

	return NewModel(seq, cfg.Classes, []int{cfg.InC, cfg.InH, cfg.InW})
}

// NewMLP builds a small fully connected classifier (used by fast unit tests
// and the LSB/sign baseline demos, where convolution is irrelevant).
// Dense layers get consecutive ConvIndex values from 1.
func NewMLP(name string, in int, hidden []int, classes int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	seq := NewSequential(name)
	prev := in
	idx := 1
	for i, hDim := range hidden {
		d := NewDense(fmt.Sprintf("%s.fc%d", name, i+1), prev, hDim, rng)
		d.W.ConvIndex = idx
		d.B.ConvIndex = idx
		idx++
		seq.Add(d)
		seq.Add(NewReLU(fmt.Sprintf("%s.relu%d", name, i+1)))
		prev = hDim
	}
	out := NewDense(name+".out", prev, classes, rng)
	out.W.ConvIndex = idx
	out.B.ConvIndex = idx
	seq.Add(out)
	return NewModel(seq, classes, []int{in})
}
