package nn

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/tensor"
)

// MaxPool2D performs k×k max pooling with stride k over NCHW batches. The
// batch is sharded across the execution context's workers; every sample's
// outputs, argmax cache, and backward scatter touch only that sample's
// locations (pooling windows are disjoint), so the parallel path is a pure
// map.
type MaxPool2D struct {
	name       string
	K          int
	C, H, W    int
	outH, outW int
	argmax     []int
	lastShape  []int
}

// NewMaxPool2D creates a max-pooling layer for inputs of (C, H, W).
func NewMaxPool2D(name string, c, h, w, k int) *MaxPool2D {
	if h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("nn: %s: pool size %d does not divide %dx%d", name, k, h, w))
	}
	return &MaxPool2D{name: name, K: k, C: c, H: h, W: w, outH: h / k, outW: w / k}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return p.name }

// OutShape returns the per-sample output dimensions (C, H, W).
func (p *MaxPool2D) OutShape() (int, int, int) { return p.C, p.outH, p.outW }

// Forward implements Layer.
func (p *MaxPool2D) Forward(ctx *compute.Ctx, x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	in := x.Reshape(n, p.C, p.H, p.W)
	out := tensor.New(n, p.C, p.outH, p.outW)
	if train {
		if cap(p.argmax) < out.Len() {
			p.argmax = make([]int, out.Len())
		}
		p.argmax = p.argmax[:out.Len()]
		p.lastShape = in.Shape()
	}
	id := in.Data()
	od := out.Data()
	outSample := p.C * p.outH * p.outW
	ctx.For(n, func(b int, _ *compute.Arena) {
		oi := b * outSample
		for c := 0; c < p.C; c++ {
			base := (b*p.C + c) * p.H * p.W
			for oy := 0; oy < p.outH; oy++ {
				for ox := 0; ox < p.outW; ox++ {
					best := -1
					bestV := 0.0
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.K + ky
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.K + kx
							idx := base + iy*p.W + ix
							if best < 0 || id[idx] > bestV {
								best, bestV = idx, id[idx]
							}
						}
					}
					od[oi] = bestV
					if train {
						p.argmax[oi] = best
					}
					oi++
				}
			}
		}
	})
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(ctx *compute.Ctx, grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.lastShape...)
	dd := dx.Data()
	gd := grad.Data()
	n := p.lastShape[0]
	outSample := p.C * p.outH * p.outW
	ctx.For(n, func(b int, _ *compute.Arena) {
		for i := b * outSample; i < (b+1)*outSample; i++ {
			dd[p.argmax[i]] += gd[i]
		}
	})
	return dx
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool averages each channel's spatial map, mapping
// (N, C, H, W) to (N, C). The batch is sharded across workers.
type GlobalAvgPool struct {
	name    string
	C, H, W int
}

// NewGlobalAvgPool creates a global average pooling layer.
func NewGlobalAvgPool(name string, c, h, w int) *GlobalAvgPool {
	return &GlobalAvgPool{name: name, C: c, H: h, W: w}
}

// Name implements Layer.
func (p *GlobalAvgPool) Name() string { return p.name }

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(ctx *compute.Ctx, x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	spatial := p.H * p.W
	out := tensor.New(n, p.C)
	xd := x.Data()
	od := out.Data()
	inv := 1.0 / float64(spatial)
	ctx.For(n, func(b int, _ *compute.Arena) {
		for c := 0; c < p.C; c++ {
			base := (b*p.C + c) * spatial
			s := 0.0
			for i := 0; i < spatial; i++ {
				s += xd[base+i]
			}
			od[b*p.C+c] = s * inv
		}
	})
	return out
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(ctx *compute.Ctx, grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	spatial := p.H * p.W
	dx := tensor.New(n, p.C, p.H, p.W)
	dd := dx.Data()
	gd := grad.Data()
	inv := 1.0 / float64(spatial)
	ctx.For(n, func(b int, _ *compute.Arena) {
		for c := 0; c < p.C; c++ {
			g := gd[b*p.C+c] * inv
			base := (b*p.C + c) * spatial
			for i := 0; i < spatial; i++ {
				dd[base+i] = g
			}
		}
	})
	return dx
}

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// Flatten reshapes (N, ...) to (N, features). It is a no-op on storage and
// exists to make architectures explicit.
type Flatten struct {
	name      string
	lastShape []int
}

// NewFlatten creates a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Forward implements Layer.
func (f *Flatten) Forward(_ *compute.Ctx, x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.lastShape = x.Shape()
	}
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(_ *compute.Ctx, grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.lastShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }
