package nn

import (
	"math"
	"math/rand"

	"repro/internal/compute"
	"repro/internal/tensor"
)

// Dropout randomly zeroes a fraction of activations during training and
// rescales the survivors by 1/(1−p) (inverted dropout), so inference needs
// no correction. The benign third-party pipelines this repo models
// commonly include it, and it interacts with the attack: dropout noise on
// the data loss does not disturb the correlation penalty, which is applied
// to the weights directly.
//
// Dropout ignores the execution context on purpose: its mask comes from a
// sequential RNG stream, and the stream must be drawn in a fixed element
// order for runs to be reproducible across thread counts.
type Dropout struct {
	name string
	// P is the drop probability in [0, 1).
	P    float64
	rng  *rand.Rand
	mask []bool
}

// NewDropout creates a dropout layer with its own deterministic stream.
func NewDropout(name string, p float64, seed int64) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0, 1)")
	}
	return &Dropout{name: name, P: p, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Forward implements Layer.
func (d *Dropout) Forward(_ *compute.Ctx, x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		return x.Clone()
	}
	out := x.Clone()
	data := out.Data()
	if cap(d.mask) < len(data) {
		d.mask = make([]bool, len(data))
	}
	d.mask = d.mask[:len(data)]
	scale := 1.0 / (1.0 - d.P)
	for i := range data {
		if d.rng.Float64() < d.P {
			data[i] = 0
			d.mask[i] = false
		} else {
			data[i] *= scale
			d.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(_ *compute.Ctx, grad *tensor.Tensor) *tensor.Tensor {
	if d.P == 0 {
		return grad.Clone()
	}
	out := grad.Clone()
	data := out.Data()
	scale := 1.0 / (1.0 - d.P)
	for i := range data {
		if d.mask[i] {
			data[i] *= scale
		} else {
			data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Tanh applies the hyperbolic tangent elementwise.
type Tanh struct {
	name string
	out  []float64
}

// NewTanh creates a tanh activation layer.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

// Name implements Layer.
func (t *Tanh) Name() string { return t.name }

// Forward implements Layer.
func (t *Tanh) Forward(_ *compute.Ctx, x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone().Apply(math.Tanh)
	if train {
		t.out = append(t.out[:0], out.Data()...)
	}
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(_ *compute.Ctx, grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	d := out.Data()
	for i := range d {
		d[i] *= 1 - t.out[i]*t.out[i]
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Sigmoid applies the logistic function elementwise.
type Sigmoid struct {
	name string
	out  []float64
}

// NewSigmoid creates a sigmoid activation layer.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return s.name }

// Forward implements Layer.
func (s *Sigmoid) Forward(_ *compute.Ctx, x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone().Apply(func(v float64) float64 {
		return 1 / (1 + math.Exp(-v))
	})
	if train {
		s.out = append(s.out[:0], out.Data()...)
	}
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(_ *compute.Ctx, grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	d := out.Data()
	for i := range d {
		d[i] *= s.out[i] * (1 - s.out[i])
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }
