package nn

import (
	"math/rand"
	"testing"

	"repro/internal/compute"
	"repro/internal/tensor"
)

// The serving batcher coalesces concurrent requests into one forward pass,
// which is only sound if batching is invisible: sample i of a batched eval
// must be bit-identical to evaluating sample i alone. This pins that
// contract for a full ResNet (conv, batch norm in eval mode, pooling,
// residual adds, dense) across batch compositions and thread counts.
func TestEvalBatchBitIdenticalToSingle(t *testing.T) {
	m := detModel()
	// Non-trivial batch-norm running stats so the eval path has real work.
	rng := rand.New(rand.NewSource(90))
	m.ForwardTrain(tensor.New(6, 1, 8, 8).RandN(rng, 0, 1))

	u := m.InputLen()
	inputs := make([][]float64, 7)
	for i := range inputs {
		in := make([]float64, u)
		for j := range in {
			in[j] = rng.NormFloat64()
		}
		inputs[i] = in
	}

	// Reference: each sample alone, serial context.
	m.SetCtx(compute.Serial())
	ref := make([][]float64, len(inputs))
	for i, in := range inputs {
		rows, err := m.EvalBatch([][]float64{in})
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = rows[0]
	}

	for _, threads := range []int{1, 3} {
		m.SetThreads(threads)
		// The whole batch at once, and a lopsided split — every composition
		// must reproduce the single-sample rows exactly.
		for _, split := range [][]int{{len(inputs)}, {2, 5}, {1, 3, 3}} {
			lo := 0
			for _, n := range split {
				rows, err := m.EvalBatch(inputs[lo : lo+n])
				if err != nil {
					t.Fatal(err)
				}
				for i, row := range rows {
					for j, v := range row {
						if v != ref[lo+i][j] {
							t.Fatalf("threads=%d split=%v: sample %d logit %d: %v != %v",
								threads, split, lo+i, j, v, ref[lo+i][j])
						}
					}
				}
				lo += n
			}
		}
	}
}

func TestEvalBatchRejectsBadLength(t *testing.T) {
	m := detModel()
	if _, err := m.EvalBatch([][]float64{make([]float64, m.InputLen()-1)}); err == nil {
		t.Fatal("expected length error")
	}
	if rows, err := m.EvalBatch(nil); err != nil || rows != nil {
		t.Fatalf("empty batch: rows=%v err=%v", rows, err)
	}
}
