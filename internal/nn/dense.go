package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/compute"
	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = x·Wᵀ + b, with x of shape
// (N, in) and y of shape (N, out). The weight is stored (out, in). The
// batch dimension is sharded across the execution context's workers.
type Dense struct {
	name     string
	In, Out  int
	W, B     *Param
	wview    tensor.Weights // eval weight view; defaults to aliasing W
	lastIn   *tensor.Tensor
	dwPart   []float64 // per-sample dW partials, reduced in sample order
	withBias bool
}

// NewDense creates a dense layer with He-normal initialized weights.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	w := tensor.New(out, in).KaimingNormal(rng, in)
	b := tensor.New(out)
	return &Dense{
		name: name, In: in, Out: out,
		W:        newParam(name+".w", w, true),
		B:        newParam(name+".b", b, false),
		wview:    tensor.DenseWeights(w.Data()),
		withBias: true,
	}
}

// BindWeights implements WeightBound.
func (d *Dense) BindWeights(b WeightsBackend) { d.wview = b.Weights(d.W) }

// BoundWeights implements WeightBound.
func (d *Dense) BoundWeights() tensor.Weights { return d.wview }

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Forward implements Layer.
func (d *Dense) Forward(ctx *compute.Ctx, x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	x2 := x.Reshape(n, x.Len()/n)
	if x2.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: %s: input features %d, want %d", d.name, x2.Dim(1), d.In))
	}
	if train {
		requireDenseForTrain(d.name, d.wview)
		d.lastIn = x2
	}
	y := tensor.New(n, d.Out)
	xd := x2.Data()
	yd := y.Data()
	wv := d.wview
	var bd []float64
	if d.withBias {
		bd = d.B.Value.Data()
	}
	// Each output row depends only on its own input row, so chunking the
	// batch is a pure map: (N,in)·(out,in)ᵀ = (N,out) row by row.
	ctx.ForChunks(n, func(lo, hi int) {
		tensor.MatMulTWSlice(yd[lo*d.Out:hi*d.Out], xd[lo*d.In:hi*d.In], wv, hi-lo, d.In, d.Out)
		if bd != nil {
			for i := lo; i < hi; i++ {
				row := yd[i*d.Out : (i+1)*d.Out]
				for j := range row {
					row[j] += bd[j]
				}
			}
		}
	})
	return y
}

// Backward implements Layer. Per-sample weight-gradient outer products are
// staged in per-sample partials and reduced in sample order, keeping the
// accumulated gradient bit-identical for any worker count.
func (d *Dense) Backward(ctx *compute.Ctx, grad *tensor.Tensor) *tensor.Tensor {
	if d.lastIn == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward(train)", d.name))
	}
	n := grad.Dim(0)
	g2 := grad.Reshape(n, grad.Len()/n)
	gd := g2.Data()
	xd := d.lastIn.Data()
	wd := d.W.Value.Data()
	wSize := d.Out * d.In
	if cap(d.dwPart) < n*wSize {
		d.dwPart = make([]float64, n*wSize)
	}
	d.dwPart = d.dwPart[:n*wSize]
	dx := tensor.New(n, d.In)
	dxd := dx.Data()
	ctx.ForChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			// dW_i = g_i ⊗ x_i : (out,1)·(1,in)
			gi := gd[i*d.Out : (i+1)*d.Out]
			xi := xd[i*d.In : (i+1)*d.In]
			dwi := d.dwPart[i*wSize : (i+1)*wSize]
			for o, gv := range gi {
				row := dwi[o*d.In : (o+1)*d.In]
				if gv == 0 {
					for j := range row {
						row[j] = 0
					}
					continue
				}
				for j, xv := range xi {
					row[j] = gv * xv
				}
			}
		}
		// dx = g·W : (N,out)·(out,in) = (N,in), row-independent.
		tensor.MatMulSlice(dxd[lo*d.In:hi*d.In], gd[lo*d.Out:hi*d.Out], wd, hi-lo, d.Out, d.In)
	})
	// Deterministic reduction in sample order.
	wg := d.W.Grad.Data()
	for i := 0; i < n; i++ {
		dwi := d.dwPart[i*wSize : (i+1)*wSize]
		for j, v := range dwi {
			wg[j] += v
		}
	}
	if d.withBias {
		gb := d.B.Grad.Data()
		for i := 0; i < n; i++ {
			row := gd[i*d.Out : (i+1)*d.Out]
			for j := range row {
				gb[j] += row[j]
			}
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }
