package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = x·Wᵀ + b, with x of shape
// (N, in) and y of shape (N, out). The weight is stored (out, in).
type Dense struct {
	name     string
	In, Out  int
	W, B     *Param
	lastIn   *tensor.Tensor
	withBias bool
}

// NewDense creates a dense layer with He-normal initialized weights.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	w := tensor.New(out, in).KaimingNormal(rng, in)
	b := tensor.New(out)
	return &Dense{
		name: name, In: in, Out: out,
		W:        newParam(name+".w", w, true),
		B:        newParam(name+".b", b, false),
		withBias: true,
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	x2 := x.Reshape(n, x.Len()/n)
	if x2.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: %s: input features %d, want %d", d.name, x2.Dim(1), d.In))
	}
	if train {
		d.lastIn = x2
	}
	y := tensor.MatMulT(x2, d.W.Value) // (N,in)·(out,in)ᵀ = (N,out)
	if d.withBias {
		bd := d.B.Value.Data()
		yd := y.Data()
		for i := 0; i < n; i++ {
			row := yd[i*d.Out : (i+1)*d.Out]
			for j := range row {
				row[j] += bd[j]
			}
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.lastIn == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward(train)", d.name))
	}
	n := grad.Dim(0)
	g2 := grad.Reshape(n, grad.Len()/n)
	// dW = gᵀ·x : (out,N)·(N,in) = (out,in)
	dw := tensor.TMatMul(g2, d.lastIn)
	d.W.Grad.Add(dw)
	if d.withBias {
		gb := d.B.Grad.Data()
		gd := g2.Data()
		for i := 0; i < n; i++ {
			row := gd[i*d.Out : (i+1)*d.Out]
			for j := range row {
				gb[j] += row[j]
			}
		}
	}
	// dx = g·W : (N,out)·(out,in) = (N,in)
	return tensor.MatMul(g2, d.W.Value)
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }
