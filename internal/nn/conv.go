package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/compute"
	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW batches with uniform stride and
// zero padding. Weights are stored (outC, inC*kh*kw) so the forward pass is
// a single matmul against the im2col patch matrix per sample. The batch is
// sharded across the execution context's workers; training-mode im2col
// matrices persist in a layer-owned cache for Backward, while eval-mode
// scratch comes from the per-worker arenas.
type Conv2D struct {
	name    string
	Dims    tensor.ConvDims
	W, B    *Param
	wview   tensor.Weights // eval weight view; defaults to aliasing W
	lastIn  *tensor.Tensor
	cols    []float64 // cached im2col matrices for the last training batch
	dwPart  []float64 // per-sample dW partials, reduced in sample order
	dbPart  []float64 // per-sample db partials, reduced in sample order
	lastN   int
	useBias bool
}

// NewConv2D creates a convolution layer with He-normal initialization.
func NewConv2D(name string, inC, inH, inW, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	d := tensor.NewConvDims(inC, inH, inW, outC, k, k, stride, pad)
	w := tensor.New(outC, d.ColRows).KaimingNormal(rng, d.ColRows)
	b := tensor.New(outC)
	return &Conv2D{
		name: name, Dims: d,
		W:       newParam(name+".w", w, true),
		B:       newParam(name+".b", b, false),
		wview:   tensor.DenseWeights(w.Data()),
		useBias: true,
	}
}

// BindWeights implements WeightBound.
func (c *Conv2D) BindWeights(b WeightsBackend) { c.wview = b.Weights(c.W) }

// BoundWeights implements WeightBound.
func (c *Conv2D) BoundWeights() tensor.Weights { return c.wview }

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// OutShape returns the per-sample output dimensions (C, H, W).
func (c *Conv2D) OutShape() (int, int, int) {
	return c.Dims.OutC, c.Dims.OutH, c.Dims.OutW
}

// Forward implements Layer. Input must be (N, inC, inH, inW) or a flat
// (N, inC*inH*inW).
func (c *Conv2D) Forward(ctx *compute.Ctx, x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	if x.Len()/n != c.Dims.InElems {
		panic(fmt.Sprintf("nn: %s: input has %d elems/sample, want %d", c.name, x.Len()/n, c.Dims.InElems))
	}
	colSize := c.Dims.ColRows * c.Dims.Cols
	if train {
		requireDenseForTrain(c.name, c.wview)
		if cap(c.cols) < n*colSize {
			c.cols = make([]float64, n*colSize)
		}
		c.cols = c.cols[:n*colSize]
		c.lastIn = x
		c.lastN = n
	}
	out := tensor.New(n, c.Dims.OutC, c.Dims.OutH, c.Dims.OutW)
	xd := x.Data()
	od := out.Data()
	wv := c.wview
	var bd []float64
	if c.useBias {
		bd = c.B.Value.Data()
	}
	spatial := c.Dims.Cols
	ctx.For(n, func(i int, a *compute.Arena) {
		var col []float64
		if train {
			col = c.cols[i*colSize : (i+1)*colSize]
		} else {
			col = a.Floats(colSize)
		}
		tensor.Im2Col(c.Dims, xd[i*c.Dims.InElems:(i+1)*c.Dims.InElems], col)
		oSample := od[i*c.Dims.OutElems : (i+1)*c.Dims.OutElems]
		tensor.MatMulWSlice(oSample, wv, col, c.Dims.OutC, c.Dims.ColRows, spatial)
		if bd != nil {
			for ch := 0; ch < c.Dims.OutC; ch++ {
				bv := bd[ch]
				row := oSample[ch*spatial : (ch+1)*spatial]
				for j := range row {
					row[j] += bv
				}
			}
		}
	})
	return out
}

// Backward implements Layer. Per-sample dW/db contributions land in
// per-sample partial buffers, which are then reduced serially in sample
// order — the same floating-point order as a serial per-sample loop, so the
// accumulated gradients are bit-identical for any worker count.
func (c *Conv2D) Backward(ctx *compute.Ctx, grad *tensor.Tensor) *tensor.Tensor {
	if c.lastIn == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward(train)", c.name))
	}
	n := c.lastN
	colSize := c.Dims.ColRows * c.Dims.Cols
	gd := grad.Data()
	dx := tensor.New(n, c.Dims.InC, c.Dims.InH, c.Dims.InW)
	dxd := dx.Data()
	spatial := c.Dims.Cols
	wSize := c.Dims.OutC * c.Dims.ColRows
	wd := c.W.Value.Data()
	if cap(c.dwPart) < n*wSize {
		c.dwPart = make([]float64, n*wSize)
	}
	c.dwPart = c.dwPart[:n*wSize]
	if c.useBias {
		if cap(c.dbPart) < n*c.Dims.OutC {
			c.dbPart = make([]float64, n*c.Dims.OutC)
		}
		c.dbPart = c.dbPart[:n*c.Dims.OutC]
	}
	ctx.For(n, func(i int, a *compute.Arena) {
		gSample := gd[i*c.Dims.OutElems : (i+1)*c.Dims.OutElems]
		col := c.cols[i*colSize : (i+1)*colSize]
		// dW_i = g·colᵀ : (outC,cols)·(cols,colRows)
		tensor.MatMulTSlice(c.dwPart[i*wSize:(i+1)*wSize], gSample, col, c.Dims.OutC, spatial, c.Dims.ColRows)
		// dcol = Wᵀ·g : (colRows,outC)·(outC,cols)
		dcol := a.Floats(colSize)
		tensor.TMatMulSlice(dcol, wd, gSample, c.Dims.OutC, c.Dims.ColRows, spatial)
		tensor.Col2Im(c.Dims, dcol, dxd[i*c.Dims.InElems:(i+1)*c.Dims.InElems])
		if c.useBias {
			for ch := 0; ch < c.Dims.OutC; ch++ {
				row := gSample[ch*spatial : (ch+1)*spatial]
				s := 0.0
				for _, v := range row {
					s += v
				}
				c.dbPart[i*c.Dims.OutC+ch] = s
			}
		}
	})
	// Deterministic reduction: sample order, independent of thread count.
	wg := c.W.Grad.Data()
	bg := c.B.Grad.Data()
	for i := 0; i < n; i++ {
		dwi := c.dwPart[i*wSize : (i+1)*wSize]
		for j, v := range dwi {
			wg[j] += v
		}
		if c.useBias {
			dbi := c.dbPart[i*c.Dims.OutC : (i+1)*c.Dims.OutC]
			for ch, v := range dbi {
				bg[ch] += v
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }
