package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW batches with uniform stride and
// zero padding. Weights are stored (outC, inC*kh*kw) so the forward pass is
// a single matmul against the im2col patch matrix per sample.
type Conv2D struct {
	name    string
	Dims    tensor.ConvDims
	W, B    *Param
	lastIn  *tensor.Tensor
	cols    []float64 // cached im2col matrices for the last training batch
	lastN   int
	useBias bool
}

// NewConv2D creates a convolution layer with He-normal initialization.
func NewConv2D(name string, inC, inH, inW, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	d := tensor.NewConvDims(inC, inH, inW, outC, k, k, stride, pad)
	w := tensor.New(outC, d.ColRows).KaimingNormal(rng, d.ColRows)
	b := tensor.New(outC)
	return &Conv2D{
		name: name, Dims: d,
		W:       newParam(name+".w", w, true),
		B:       newParam(name+".b", b, false),
		useBias: true,
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// OutShape returns the per-sample output dimensions (C, H, W).
func (c *Conv2D) OutShape() (int, int, int) {
	return c.Dims.OutC, c.Dims.OutH, c.Dims.OutW
}

// Forward implements Layer. Input must be (N, inC, inH, inW) or a flat
// (N, inC*inH*inW).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	if x.Len()/n != c.Dims.InElems {
		panic(fmt.Sprintf("nn: %s: input has %d elems/sample, want %d", c.name, x.Len()/n, c.Dims.InElems))
	}
	colSize := c.Dims.ColRows * c.Dims.Cols
	var cols []float64
	if train {
		if cap(c.cols) < n*colSize {
			c.cols = make([]float64, n*colSize)
		}
		cols = c.cols[:n*colSize]
		c.lastIn = x
		c.lastN = n
	} else {
		cols = make([]float64, colSize)
	}
	out := tensor.New(n, c.Dims.OutC, c.Dims.OutH, c.Dims.OutW)
	xd := x.Data()
	od := out.Data()
	colT := tensor.FromSlice(make([]float64, colSize), c.Dims.ColRows, c.Dims.Cols)
	outT := tensor.FromSlice(make([]float64, c.Dims.OutElems), c.Dims.OutC, c.Dims.Cols)
	for i := 0; i < n; i++ {
		var col []float64
		if train {
			col = cols[i*colSize : (i+1)*colSize]
		} else {
			col = cols
		}
		tensor.Im2Col(c.Dims, xd[i*c.Dims.InElems:(i+1)*c.Dims.InElems], col)
		colT = tensor.FromSlice(col, c.Dims.ColRows, c.Dims.Cols)
		outT = tensor.FromSlice(od[i*c.Dims.OutElems:(i+1)*c.Dims.OutElems], c.Dims.OutC, c.Dims.Cols)
		tensor.MatMulInto(outT, c.W.Value, colT)
	}
	if c.useBias {
		bd := c.B.Value.Data()
		spatial := c.Dims.Cols
		for i := 0; i < n; i++ {
			base := i * c.Dims.OutElems
			for ch := 0; ch < c.Dims.OutC; ch++ {
				bv := bd[ch]
				row := od[base+ch*spatial : base+(ch+1)*spatial]
				for j := range row {
					row[j] += bv
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.lastIn == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward(train)", c.name))
	}
	n := c.lastN
	colSize := c.Dims.ColRows * c.Dims.Cols
	gd := grad.Data()
	dx := tensor.New(n, c.Dims.InC, c.Dims.InH, c.Dims.InW)
	dxd := dx.Data()
	dcol := make([]float64, colSize)
	spatial := c.Dims.Cols
	bg := c.B.Grad.Data()
	for i := 0; i < n; i++ {
		gSample := tensor.FromSlice(gd[i*c.Dims.OutElems:(i+1)*c.Dims.OutElems], c.Dims.OutC, spatial)
		col := tensor.FromSlice(c.cols[i*colSize:(i+1)*colSize], c.Dims.ColRows, spatial)
		// dW += g·colᵀ  : (outC,cols)·(cols,colRows)
		c.W.Grad.Add(tensor.MatMulT(gSample, col))
		// dcol = Wᵀ·g : (colRows,outC)·(outC,cols)
		dcolT := tensor.TMatMul(c.W.Value, gSample)
		copy(dcol, dcolT.Data())
		tensor.Col2Im(c.Dims, dcol, dxd[i*c.Dims.InElems:(i+1)*c.Dims.InElems])
		if c.useBias {
			for ch := 0; ch < c.Dims.OutC; ch++ {
				row := gSample.Data()[ch*spatial : (ch+1)*spatial]
				s := 0.0
				for _, v := range row {
					s += v
				}
				bg[ch] += s
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }
