package nn

import (
	"fmt"
	"sort"

	"repro/internal/compute"
	"repro/internal/tensor"
)

// Model wraps a network with the bookkeeping the attacks need: stable
// parameter ordering, weight-only views, and the paper's notion of
// layer groups over conv-layer indices. Every forward/backward pass runs
// under the model's execution context (serial unless SetCtx/SetThreads was
// called), so parallelism is a property of the model, inherited by
// training, fine-tuning, and evaluation alike.
type Model struct {
	// Net is the underlying network.
	Net Layer
	// Classes is the number of output classes.
	Classes int
	// InputShape is the per-sample input shape (e.g. [1 16 16]).
	InputShape []int

	params []*Param
	ctx    *compute.Ctx
}

// NewModel wraps net, capturing its parameter list in forward order.
func NewModel(net Layer, classes int, inputShape []int) *Model {
	return &Model{
		Net:        net,
		Classes:    classes,
		InputShape: inputShape,
		params:     net.Params(),
	}
}

// Params returns all trainable parameters in forward order.
func (m *Model) Params() []*Param { return m.params }

// Ctx returns the model's execution context, defaulting to the shared
// serial context when none was set.
func (m *Model) Ctx() *compute.Ctx {
	if m.ctx == nil {
		return compute.Serial()
	}
	return m.ctx
}

// SetCtx installs the execution context used by Forward/Backward.
func (m *Model) SetCtx(ctx *compute.Ctx) { m.ctx = ctx }

// SetThreads installs a shared execution context with the given worker
// count (0 selects runtime.GOMAXPROCS). Results are bit-identical for every
// worker count; see the compute package for the determinism contract.
func (m *Model) SetThreads(threads int) { m.ctx = compute.Get(threads) }

// WeightParams returns only the multiplicative weights (conv kernels and
// dense matrices), the carriers used for data encoding.
func (m *Model) WeightParams() []*Param {
	var ws []*Param
	for _, p := range m.params {
		if p.Weight {
			ws = append(ws, p)
		}
	}
	return ws
}

// NumParams returns the total scalar parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.params {
		n += p.NumEl()
	}
	return n
}

// NumWeightParams returns the total scalar count over weight parameters.
func (m *Model) NumWeightParams() int {
	n := 0
	for _, p := range m.WeightParams() {
		n += p.NumEl()
	}
	return n
}

// MaxConvIndex returns the largest ConvIndex over all parameters, i.e. the
// network "depth" in the paper's layer-numbering sense.
func (m *Model) MaxConvIndex() int {
	mx := 0
	for _, p := range m.params {
		if p.ConvIndex > mx {
			mx = p.ConvIndex
		}
	}
	return mx
}

// ZeroGrad clears every parameter gradient.
func (m *Model) ZeroGrad() {
	for _, p := range m.params {
		p.ZeroGrad()
	}
}

// ReadGrads flattens every parameter gradient into dst, in parameter order.
// dst must have NumParams elements. The data-parallel trainer snapshots a
// shard's accumulated gradient into an exchange buffer with this.
func (m *Model) ReadGrads(dst []float64) {
	off := 0
	for _, p := range m.params {
		off += copy(dst[off:], p.Grad.Data())
	}
	if off != len(dst) {
		panic(fmt.Sprintf("nn: ReadGrads buffer has %d elements, model has %d", len(dst), off))
	}
}

// AddGrads accumulates a flat gradient vector (as produced by ReadGrads,
// possibly on another process) into the parameter gradients, in parameter
// order. Folding shard partials with repeated AddGrads calls in ascending
// shard order is the trainer's canonical reduction: a fixed left fold whose
// float rounding is identical no matter which rank produced each partial.
func (m *Model) AddGrads(src []float64) {
	off := 0
	for _, p := range m.params {
		gd := p.Grad.Data()
		for i := range gd {
			gd[i] += src[off+i]
		}
		off += len(gd)
	}
	if off != len(src) {
		panic(fmt.Sprintf("nn: AddGrads vector has %d elements, model has %d", len(src), off))
	}
}

// Forward runs the network in inference mode.
func (m *Model) Forward(x *tensor.Tensor) *tensor.Tensor {
	return m.Net.Forward(m.Ctx(), x, false)
}

// ForwardTrain runs the network in training mode (caches for backward).
func (m *Model) ForwardTrain(x *tensor.Tensor) *tensor.Tensor {
	return m.Net.Forward(m.Ctx(), x, true)
}

// Backward propagates the loss gradient, accumulating parameter grads.
func (m *Model) Backward(grad *tensor.Tensor) {
	m.Net.Backward(m.Ctx(), grad)
}

// InputLen returns the flattened per-sample input length.
func (m *Model) InputLen() int {
	n := 1
	for _, d := range m.InputShape {
		n *= d
	}
	return n
}

// EvalBatch runs one inference forward pass over a batch of flattened
// per-sample inputs and returns one logits row per sample. Every layer's
// inference path is per-sample independent (batch norm reads running
// statistics, conv/dense/pool map each sample on its own), so each row is
// bit-identical to what a single-sample Forward of the same input produces —
// the property the serving batcher relies on to coalesce concurrent
// requests without changing anyone's answer. Pinned by
// TestEvalBatchBitIdenticalToSingle.
func (m *Model) EvalBatch(inputs [][]float64) ([][]float64, error) {
	if len(inputs) == 0 {
		return nil, nil
	}
	u := m.InputLen()
	x := tensor.New(append([]int{len(inputs)}, m.InputShape...)...)
	xd := x.Data()
	for i, in := range inputs {
		if len(in) != u {
			return nil, fmt.Errorf("nn: EvalBatch input %d has %d values, model takes %d", i, len(in), u)
		}
		copy(xd[i*u:(i+1)*u], in)
	}
	logits := m.Forward(x)
	k := logits.Dim(1)
	ld := logits.Data()
	out := make([][]float64, len(inputs))
	for i := range out {
		out[i] = append([]float64(nil), ld[i*k:(i+1)*k]...)
	}
	return out, nil
}

// Predict returns the argmax class for each sample in x, evaluating in
// chunks of batchSize to bound memory.
func (m *Model) Predict(x *tensor.Tensor, batchSize int) []int {
	n := x.Dim(0)
	if batchSize <= 0 {
		batchSize = 64
	}
	out := make([]int, n)
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		logits := m.Forward(x.View(lo, hi))
		k := logits.Dim(1)
		ld := logits.Data()
		for i := 0; i < hi-lo; i++ {
			row := tensor.FromSlice(ld[i*k:(i+1)*k], k)
			out[lo+i] = row.ArgMax()
		}
	}
	return out
}

// Accuracy returns the fraction of samples whose argmax prediction matches
// the label.
func (m *Model) Accuracy(x *tensor.Tensor, labels []int, batchSize int) float64 {
	preds := m.Predict(x, batchSize)
	if len(preds) == 0 {
		return 0
	}
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(preds))
}

// LayerGroup is a named set of parameters treated as one encoding unit by
// the layer-wise regularizer (Eq 2 of the paper).
type LayerGroup struct {
	// Name labels the group ("group1").
	Name string
	// Params are the group's weight parameters in forward order.
	Params []*Param
	// NumEl is the total scalar count across Params.
	NumEl int
}

// GroupsByConvIndex partitions the model's *weight* parameters into
// len(bounds)+1 groups by conv-layer index: group k contains layers with
// index in (bounds[k-1], bounds[k]] (with implicit 0 and +inf at the ends).
// For the paper's ResNet-34 split this is bounds = [12, 16]: layers 1-12,
// 13-16, and 17+. Parameters with ConvIndex 0 (none here) go to the last
// group.
func (m *Model) GroupsByConvIndex(bounds []int) []LayerGroup {
	if !sort.IntsAreSorted(bounds) {
		panic(fmt.Sprintf("nn: group bounds %v not sorted", bounds))
	}
	groups := make([]LayerGroup, len(bounds)+1)
	for i := range groups {
		groups[i].Name = fmt.Sprintf("group%d", i+1)
	}
	for _, p := range m.WeightParams() {
		gi := len(bounds)
		if p.ConvIndex > 0 {
			for i, b := range bounds {
				if p.ConvIndex <= b {
					gi = i
					break
				}
			}
		}
		groups[gi].Params = append(groups[gi].Params, p)
		groups[gi].NumEl += p.NumEl()
	}
	return groups
}

// FlattenValues concatenates the group's parameter values into one vector.
func (g LayerGroup) FlattenValues() []float64 {
	out := make([]float64, 0, g.NumEl)
	for _, p := range g.Params {
		out = append(out, p.Value.Data()...)
	}
	return out
}

// ScatterValues writes a flat vector (as produced by FlattenValues) back
// into the group's parameters.
func (g LayerGroup) ScatterValues(v []float64) {
	if len(v) != g.NumEl {
		panic(fmt.Sprintf("nn: ScatterValues length %d, want %d", len(v), g.NumEl))
	}
	off := 0
	for _, p := range g.Params {
		n := p.NumEl()
		copy(p.Value.Data(), v[off:off+n])
		off += n
	}
}

// AddToGrads adds a flat vector of per-element contributions to the group's
// parameter gradients. Used by the correlation regularizer, whose gradient
// is computed in closed form over the flattened group.
func (g LayerGroup) AddToGrads(v []float64) {
	if len(v) != g.NumEl {
		panic(fmt.Sprintf("nn: AddToGrads length %d, want %d", len(v), g.NumEl))
	}
	off := 0
	for _, p := range g.Params {
		n := p.NumEl()
		gd := p.Grad.Data()
		for i := 0; i < n; i++ {
			gd[i] += v[off+i]
		}
		off += n
	}
}
