package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss over a batch of
// logits (N, K) with integer class labels, and the gradient of that loss
// with respect to the logits. The softmax is computed in a numerically
// stable way (max subtraction).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	return SoftmaxCrossEntropyTotal(logits, labels, logits.Dim(0))
}

// SoftmaxCrossEntropyTotal is SoftmaxCrossEntropy with the mean taken over
// `total` samples instead of the rows present: loss and gradient are scaled
// by 1/total. The data-parallel trainer passes the *global* batch size while
// feeding one shard's rows, so every shard's gradient partial lands directly
// in global-mean scale and the shard-order fold of the partials equals the
// whole-batch mean gradient without any rescaling step. With
// total == logits.Dim(0) this is exactly SoftmaxCrossEntropy (same
// expressions, same rounding).
func SoftmaxCrossEntropyTotal(logits *tensor.Tensor, labels []int, total int) (loss float64, grad *tensor.Tensor) {
	n := logits.Dim(0)
	k := logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	if total < n {
		panic(fmt.Sprintf("nn: loss total %d smaller than batch %d", total, n))
	}
	grad = tensor.New(n, k)
	ld := logits.Data()
	gd := grad.Data()
	invN := 1.0 / float64(total)
	for i := 0; i < n; i++ {
		row := ld[i*k : (i+1)*k]
		grow := gd[i*k : (i+1)*k]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxV)
			grow[j] = e
			sum += e
		}
		y := labels[i]
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, k))
		}
		p := grow[y] / sum
		if p < 1e-300 {
			p = 1e-300
		}
		loss -= math.Log(p)
		for j := range grow {
			grow[j] = grow[j] / sum * invN
		}
		grow[y] -= invN
	}
	return loss * invN, grad
}

// Softmax returns the row-wise softmax of logits (N, K).
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, k)
	ld, od := logits.Data(), out.Data()
	for i := 0; i < n; i++ {
		row := ld[i*k : (i+1)*k]
		orow := od[i*k : (i+1)*k]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxV)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}
