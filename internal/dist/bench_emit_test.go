package dist_test

// dp-bench: the data-parallel benchmark behind `make dp-bench`. It runs the
// same fixed-shard training job at several process counts (ranks as
// goroutines sharing a mailbox directory, each with a private compute
// context — the same execution structure separate OS processes have),
// records per-shape wall time into BENCH_dp.json, and hard-gates the PR's
// acceptance criterion: the final checkpoint digest must be identical
// across every shape. No wall-time gate — in one container the shapes share
// cores, so multi-process wall time is reported honestly, not judged.

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"
)

var emitBench = flag.String("emit-bench", "", "write data-parallel benchmark numbers (BENCH_dp.json) to this path")

type dpShapeReport struct {
	Procs         int     `json:"procs"`
	Threads       int     `json:"threads_per_rank"`
	WallNs        int64   `json:"wall_ns"`
	EpochWallNs   int64   `json:"epoch_wall_ns"`
	CheckpointSHA string  `json:"checkpoint_sha256"`
	VsOneProc     float64 `json:"wall_vs_one_proc"`
}

type dpBenchReport struct {
	Shards       int             `json:"shards"`
	Epochs       int             `json:"epochs"`
	BatchSize    int             `json:"batch_size"`
	Shapes       []dpShapeReport `json:"shapes"`
	BitIdentical bool            `json:"bit_identical"`
}

func TestEmitDPBench(t *testing.T) {
	if *emitBench == "" {
		t.Skip("pass -emit-bench=<path> (make dp-bench) to measure data-parallel training")
	}

	rep := dpBenchReport{Shards: shapeShards, Epochs: shapeEpochs, BatchSize: shapeBatch}
	var ref string
	for _, procs := range []int{1, 2, 4} {
		start := time.Now()
		ck := trainShape(t, 1, procs)
		wall := time.Since(start)
		sum := sha256.Sum256(ck)
		digest := fmt.Sprintf("%x", sum)
		if procs == 1 {
			ref = digest
		}
		rep.Shapes = append(rep.Shapes, dpShapeReport{
			Procs: procs, Threads: 1,
			WallNs:        wall.Nanoseconds(),
			EpochWallNs:   wall.Nanoseconds() / int64(shapeEpochs),
			CheckpointSHA: digest,
		})
		t.Logf("procs=%d: wall %v, checkpoint %s", procs, wall, digest[:16])
	}
	base := rep.Shapes[0].WallNs
	for i := range rep.Shapes {
		rep.Shapes[i].VsOneProc = float64(rep.Shapes[i].WallNs) / float64(base)
	}

	rep.BitIdentical = true
	for _, sh := range rep.Shapes {
		if sh.CheckpointSHA != ref {
			rep.BitIdentical = false
		}
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*emitBench, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", *emitBench)

	// The hard gate: every process count must produce the same final
	// checkpoint, byte for byte.
	if !rep.BitIdentical {
		for _, sh := range rep.Shapes {
			t.Logf("procs=%d: checkpoint %s", sh.Procs, sh.CheckpointSHA)
		}
		t.Fatalf("final checkpoint differs across process counts — the determinism contract is broken")
	}
}
