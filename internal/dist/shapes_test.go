package dist_test

// The flagship reproducibility test of the data-parallel refactor: the
// final checkpoint — parameters, batch-norm running statistics, optimizer
// state, and epoch stats — must be byte-identical across (threads × procs)
// execution shapes for a fixed shard count. Multi-process shapes run their
// ranks as goroutines sharing a mailbox directory; each rank gets a private
// compute context, exactly as separate OS processes would.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/compute"
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
)

const (
	shapeShards = 4
	shapeEpochs = 2
	shapeBatch  = 8
)

// shapeProblem builds the same tiny conv problem the trainer's own
// determinism tests use, with fixed seeds so every call is bit-identical.
func shapeProblem() (*tensor.Tensor, []int, func() *nn.Model) {
	rng := rand.New(rand.NewSource(21))
	n := 48
	x := tensor.New(n, 1, 8, 8).RandN(rng, 0, 1)
	y := make([]int, n)
	for i := range y {
		y[i] = i % 4
	}
	build := func() *nn.Model {
		return nn.NewResNet(nn.ResNetConfig{
			InC: 1, InH: 8, InW: 8, Classes: 4,
			Widths: []int{4, 8}, Blocks: []int{1, 1}, Seed: 22,
		})
	}
	return x, y, build
}

// trainRank runs one rank of the shape and returns its encoded final
// checkpoint. sess is nil for single-process shapes.
func trainRank(threads, shards int, sess *dist.Session, token string) ([]byte, error) {
	x, y, build := shapeProblem()
	m := build()
	opt := train.NewSGD(0.05, 0.9, 0)
	res := train.Run(m, x, y, train.Config{
		Epochs: shapeEpochs, BatchSize: shapeBatch,
		Optimizer: opt, ClipNorm: 5, Seed: 23,
		Shards: shards,
		// Private context per rank: the shared contexts Threads selects
		// admit one driver at a time, and in-process ranks train
		// concurrently.
		Ctx:  compute.New(threads),
		Dist: sess, DistToken: token,
	})
	if res.DistSkipped {
		return nil, fmt.Errorf("run unexpectedly skipped")
	}
	var buf bytes.Buffer
	if err := train.EncodeCheckpoint(&buf, train.Capture(m, opt, shapeEpochs, res.Epochs)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// trainShape runs one (threads × procs) shape to completion and returns the
// final checkpoint bytes, first checking that every rank of the shape
// produced identical bytes.
func trainShape(t *testing.T, threads, procs int) []byte {
	t.Helper()
	if procs == 1 {
		ck, err := trainRank(threads, shapeShards, nil, "")
		if err != nil {
			t.Fatal(err)
		}
		return ck
	}
	dir := t.TempDir()
	outs := make([][]byte, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for r := 0; r < procs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("rank %d panicked: %v", r, p)
				}
			}()
			sess, err := dist.New(dist.Options{
				Dir: dir, Rank: r, Procs: procs,
				Poll: time.Millisecond, Timeout: 30 * time.Second,
			})
			if err != nil {
				errs[r] = err
				return
			}
			outs[r], errs[r] = trainRank(threads, shapeShards, sess, "cross-shape-run")
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("procs=%d rank %d: %v", procs, r, err)
		}
	}
	for r := 1; r < procs; r++ {
		if !bytes.Equal(outs[r], outs[0]) {
			t.Fatalf("procs=%d: rank %d checkpoint differs from rank 0", procs, r)
		}
	}
	return outs[0]
}

// TestTrainBitIdenticalAcrossShapes pins the PR's acceptance criterion: for
// a fixed shard count, the final checkpoint is byte-identical across the
// execution shapes {1×1, 4×1, 1×4, 2×2} (threads × processes).
func TestTrainBitIdenticalAcrossShapes(t *testing.T) {
	ref := trainShape(t, 1, 1)
	if len(ref) == 0 {
		t.Fatal("empty reference checkpoint")
	}
	for _, sh := range []struct{ threads, procs int }{{4, 1}, {1, 4}, {2, 2}} {
		sh := sh
		t.Run(fmt.Sprintf("%dx%d", sh.threads, sh.procs), func(t *testing.T) {
			if got := trainShape(t, sh.threads, sh.procs); !bytes.Equal(got, ref) {
				t.Fatalf("checkpoint (threads=%d, procs=%d) differs from 1x1 reference", sh.threads, sh.procs)
			}
		})
	}
}

// TestShardCountIsSemantic documents the contract's other half: the shard
// count is a semantic knob — unlike threads and procs, changing it changes
// the result (shard-local batch-norm statistics, shard-order reduction).
func TestShardCountIsSemantic(t *testing.T) {
	one, err := trainRank(1, 1, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	four, err := trainRank(1, shapeShards, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(one, four) {
		t.Fatal("shards=1 and shards=4 produced identical checkpoints; the shard count should be semantic")
	}
}

// TestWorkerSkipsCompletedRun covers the cache-hit handshake: when the
// coordinator published a completion marker without a begin announcement,
// a worker's train.Run returns DistSkipped without touching the model.
func TestWorkerSkipsCompletedRun(t *testing.T) {
	dir := t.TempDir()
	mk := func(rank int) *dist.Session {
		s, err := dist.New(dist.Options{Dir: dir, Rank: rank, Procs: 2,
			Poll: time.Millisecond, Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	coord, worker := mk(0), mk(1)
	if err := coord.Complete("cached-run"); err != nil {
		t.Fatal(err)
	}
	x, y, build := shapeProblem()
	m := build()
	before := append([]float64(nil), m.Params()[0].Value.Data()...)
	res := train.Run(m, x, y, train.Config{
		Epochs: shapeEpochs, BatchSize: shapeBatch,
		Optimizer: train.NewSGD(0.05, 0.9, 0), Seed: 23,
		Shards: 2, Ctx: compute.New(1),
		Dist: worker, DistToken: "cached-run",
	})
	if !res.DistSkipped {
		t.Fatal("worker trained a run the coordinator had already completed")
	}
	for i, v := range m.Params()[0].Value.Data() {
		if v != before[i] {
			t.Fatalf("skipped run modified the model (param[0][%d])", i)
		}
	}
}
