package dist

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// Wire formats. Both are magic header + SHA-256 payload digest + gob
// payload. The digest is what makes mailbox reads trustworthy across
// process boundaries: the store's atomic rename already prevents torn
// reads, and the digest additionally rejects foreign or corrupted bytes
// before gob gets to parse them (a gob error deep in a float slice is
// much harder to diagnose than "payload digest mismatch").
const (
	partialMagic = "DACGRD1\n"
	ctlMagic     = "DACCTL1\n"
)

// ErrBadPartial reports that a stream is not a gradient-partial artifact.
var ErrBadPartial = errors.New("dist: bad magic (not a gradient partial)")

// ErrBadCtl reports that a stream is not a control artifact.
var ErrBadCtl = errors.New("dist: bad magic (not a dist control message)")

// Partial is one shard's contribution to one optimizer step: the shard's
// flattened gradient (already reduced over the shard's samples in sample
// order, and already in global-mean scale), its data loss, and the batch
// moments of every batch-norm layer, concatenated per layer in walk order
// (C means then C variances per layer).
type Partial struct {
	// Token identifies the training run (all ranks derive it identically).
	Token string
	// Epoch, Step, and Shard position the partial: epoch index, step index
	// within the epoch, shard index within the step's batch.
	Epoch, Step, Shard int
	// Loss is the shard's data loss, scaled by 1/(global batch size) so
	// summing shard losses in shard order yields the batch's mean loss.
	Loss float64
	// Grad is the flattened per-parameter gradient (nn.Model.ReadGrads).
	Grad []float64
	// BNMoments concatenates every batch-norm layer's batch moments in
	// walk order: for each layer, C means followed by C variances.
	BNMoments []float64
}

// Manifest is the coordinator's "begin" announcement for one training run:
// every field a worker must agree on before exchanging partials. A worker
// validates its locally derived view against the manifest and fails fast
// on any mismatch — a configuration drift would otherwise surface as a
// hung fetch or, worse, a silently different model.
type Manifest struct {
	Token      string
	Procs      int
	Shards     int
	BatchSize  int
	Steps      int // optimizer steps per epoch
	Epochs     int
	StartEpoch int // first epoch to run (resume cursor; 0 for fresh runs)
	ParamCount int // total scalar parameter count
}

// ctl is the control-channel payload: a begin announcement carrying the
// manifest, a completion marker published after the coordinator's train
// stage has finished (fresh or from cache) so late-joining workers know to
// load the result instead of waiting for a run that will never start, or a
// per-rank done marker workers publish after their last step so the
// coordinator knows the final partial generations have been consumed and
// can be garbage collected.
type ctl struct {
	Kind     string // "begin", "complete", or "done"
	Manifest Manifest
}

// encodeFramed writes magic + sha256(payload) + payload.
func encodeFramed(w io.Writer, magic string, payload []byte) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return fmt.Errorf("dist: write header: %w", err)
	}
	sum := sha256.Sum256(payload)
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("dist: write digest: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("dist: write payload: %w", err)
	}
	return nil
}

// decodeFramed verifies the magic and payload digest, returning the
// payload bytes.
func decodeFramed(r io.Reader, magic string, badMagic error) ([]byte, error) {
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("dist: truncated header: %w", io.ErrUnexpectedEOF)
	}
	if string(hdr) != magic {
		return nil, fmt.Errorf("%w: header %q", badMagic, hdr)
	}
	var sum [sha256.Size]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("dist: truncated digest: %w", io.ErrUnexpectedEOF)
	}
	payload, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dist: read payload: %w", err)
	}
	if sha256.Sum256(payload) != sum {
		return nil, fmt.Errorf("dist: payload digest mismatch (%d bytes)", len(payload))
	}
	return payload, nil
}

// EncodePartial serializes p to w in the DACGRD1 format.
func EncodePartial(w io.Writer, p *Partial) error {
	if err := validatePartial(p); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return fmt.Errorf("dist: encode partial: %w", err)
	}
	return encodeFramed(w, partialMagic, buf.Bytes())
}

// DecodePartial reads a DACGRD1 partial from r, verifying the magic, the
// payload digest, and the structural invariants.
func DecodePartial(r io.Reader) (*Partial, error) {
	payload, err := decodeFramed(r, partialMagic, ErrBadPartial)
	if err != nil {
		return nil, err
	}
	var p Partial
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return nil, fmt.Errorf("dist: decode partial: %w", err)
	}
	if err := validatePartial(&p); err != nil {
		return nil, err
	}
	return &p, nil
}

func validatePartial(p *Partial) error {
	if p.Token == "" {
		return fmt.Errorf("dist: partial has no token")
	}
	if p.Epoch < 0 || p.Step < 0 || p.Shard < 0 {
		return fmt.Errorf("dist: partial has negative position (%d,%d,%d)", p.Epoch, p.Step, p.Shard)
	}
	if len(p.Grad) == 0 {
		return fmt.Errorf("dist: partial has empty gradient")
	}
	return nil
}

// encodeCtl serializes a control message in the DACCTL1 format.
func encodeCtl(w io.Writer, c *ctl) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return fmt.Errorf("dist: encode control: %w", err)
	}
	return encodeFramed(w, ctlMagic, buf.Bytes())
}

// decodeCtl reads a DACCTL1 control message from r.
func decodeCtl(r io.Reader) (*ctl, error) {
	payload, err := decodeFramed(r, ctlMagic, ErrBadCtl)
	if err != nil {
		return nil, err
	}
	var c ctl
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&c); err != nil {
		return nil, fmt.Errorf("dist: decode control: %w", err)
	}
	if c.Kind != "begin" && c.Kind != "complete" && c.Kind != "done" {
		return nil, fmt.Errorf("dist: unknown control kind %q", c.Kind)
	}
	return &c, nil
}
