package dist

import (
	"strings"
	"testing"
	"time"
)

func testPair(t *testing.T) (coord, worker *Session) {
	t.Helper()
	dir := t.TempDir()
	open := func(rank int) *Session {
		s, err := New(Options{Dir: dir, Rank: rank, Procs: 2,
			Poll: time.Millisecond, Timeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("New(rank=%d): %v", rank, err)
		}
		return s
	}
	return open(0), open(1)
}

func TestSessionValidation(t *testing.T) {
	dir := t.TempDir()
	for _, o := range []Options{
		{Dir: dir, Rank: 0, Procs: 1},
		{Dir: dir, Rank: 2, Procs: 2},
		{Dir: dir, Rank: -1, Procs: 2},
		{Dir: "", Rank: 0, Procs: 2},
	} {
		if _, err := New(o); err == nil {
			t.Fatalf("New(%+v) succeeded, want error", o)
		}
	}
	coord, worker := testPair(t)
	if !coord.Coordinator() || coord.Worker() || coord.Rank() != 0 {
		t.Fatalf("rank 0 misclassified: %+v", coord)
	}
	if worker.Coordinator() || !worker.Worker() || worker.Rank() != 1 || worker.Procs() != 2 {
		t.Fatalf("rank 1 misclassified: %+v", worker)
	}
}

func TestMailboxPublishFetchCollect(t *testing.T) {
	coord, worker := testPair(t)
	p := samplePartial()
	if err := worker.PublishPartial(p); err != nil {
		t.Fatalf("publish: %v", err)
	}
	got, err := coord.FetchPartial(p.Token, p.Epoch, p.Step, p.Shard)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if got.Loss != p.Loss || len(got.Grad) != len(p.Grad) {
		t.Fatalf("fetched partial mismatch: %+v", got)
	}
	coord.CollectPartials(p.Token, p.Epoch, p.Step, p.Shard+1)
	if coord.store.Has(kindPartial, partialKey(p.Token, p.Epoch, p.Step, p.Shard)) {
		t.Fatal("partial survived collection")
	}
	// Collecting an already-collected generation is a no-op.
	coord.CollectPartials(p.Token, p.Epoch, p.Step, p.Shard+1)
}

func TestFetchPartialTimesOut(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir, Rank: 1, Procs: 2,
		Poll: time.Millisecond, Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.FetchPartial("tok", 0, 0, 0)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestBeginAwaitComplete(t *testing.T) {
	coord, worker := testPair(t)
	man := Manifest{Token: "run-a", Procs: 2, Shards: 2, BatchSize: 8,
		Steps: 6, Epochs: 2, ParamCount: 100}
	if err := coord.Begin(man); err != nil {
		t.Fatalf("begin: %v", err)
	}
	got, completed, err := worker.AwaitBegin("run-a")
	if err != nil || completed {
		t.Fatalf("await: completed=%v err=%v", completed, err)
	}
	if got != man {
		t.Fatalf("manifest mismatch: %+v != %+v", got, man)
	}

	// A run the coordinator satisfied from cache: complete without begin.
	if err := coord.Complete("run-b"); err != nil {
		t.Fatalf("complete: %v", err)
	}
	_, completed, err = worker.AwaitBegin("run-b")
	if err != nil || !completed {
		t.Fatalf("await completed run: completed=%v err=%v", completed, err)
	}

	// An unknown run times out rather than hanging.
	fast, err := New(Options{Dir: coord.Dir(), Rank: 1, Procs: 2,
		Poll: time.Millisecond, Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fast.AwaitBegin("run-never"); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("await unknown run: err = %v, want timeout", err)
	}

	if err := coord.Begin(Manifest{}); err == nil {
		t.Fatal("Begin with empty token succeeded")
	}
}

func TestRankShardsPartition(t *testing.T) {
	for _, tc := range []struct{ shards, procs int }{
		{1, 1}, {4, 1}, {4, 2}, {4, 4}, {7, 3}, {8, 4},
	} {
		covered := make([]int, tc.shards)
		prevHi := 0
		for r := 0; r < tc.procs; r++ {
			lo, hi := RankShards(tc.shards, tc.procs, r)
			if lo != prevHi {
				t.Fatalf("shards=%d procs=%d rank=%d: lo=%d, want %d (contiguous)", tc.shards, tc.procs, r, lo, prevHi)
			}
			if hi < lo {
				t.Fatalf("shards=%d procs=%d rank=%d: empty-negative range [%d,%d)", tc.shards, tc.procs, r, lo, hi)
			}
			for k := lo; k < hi; k++ {
				covered[k]++
			}
			prevHi = hi
		}
		if prevHi != tc.shards {
			t.Fatalf("shards=%d procs=%d: ranks cover [0,%d), want [0,%d)", tc.shards, tc.procs, prevHi, tc.shards)
		}
		for k, c := range covered {
			if c != 1 {
				t.Fatalf("shards=%d procs=%d: shard %d owned by %d ranks", tc.shards, tc.procs, k, c)
			}
		}
	}
}
