package dist

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func samplePartial() *Partial {
	return &Partial{
		Token: "run-token", Epoch: 3, Step: 7, Shard: 2,
		Loss:      0.125,
		Grad:      []float64{1.5, -2.25, 0, 3.75},
		BNMoments: []float64{0.5, 0.25},
	}
}

func TestPartialCodecRoundTrip(t *testing.T) {
	p := samplePartial()
	var buf bytes.Buffer
	if err := EncodePartial(&buf, p); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodePartial(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Token != p.Token || got.Epoch != p.Epoch || got.Step != p.Step || got.Shard != p.Shard || got.Loss != p.Loss {
		t.Fatalf("round trip mismatch: %+v != %+v", got, p)
	}
	for i, v := range p.Grad {
		if got.Grad[i] != v {
			t.Fatalf("Grad[%d] = %v, want %v", i, got.Grad[i], v)
		}
	}
	for i, v := range p.BNMoments {
		if got.BNMoments[i] != v {
			t.Fatalf("BNMoments[%d] = %v, want %v", i, got.BNMoments[i], v)
		}
	}
}

func TestPartialCodecRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodePartial(&buf, samplePartial()); err != nil {
		t.Fatalf("encode: %v", err)
	}

	// Flip one payload byte: the digest check must reject it before gob
	// ever parses the bytes.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[len(raw)-1] ^= 0x40
	if _, err := DecodePartial(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("corrupted payload: err = %v, want digest mismatch", err)
	}

	// Wrong magic: a control artifact is not a partial.
	var ctlBuf bytes.Buffer
	if err := encodeCtl(&ctlBuf, &ctl{Kind: "begin", Manifest: Manifest{Token: "x"}}); err != nil {
		t.Fatalf("encode ctl: %v", err)
	}
	if _, err := DecodePartial(bytes.NewReader(ctlBuf.Bytes())); !errors.Is(err, ErrBadPartial) {
		t.Fatalf("ctl bytes as partial: err = %v, want ErrBadPartial", err)
	}

	// Truncation.
	if _, err := DecodePartial(bytes.NewReader(buf.Bytes()[:10])); err == nil {
		t.Fatal("truncated stream decoded without error")
	}
}

func TestPartialCodecRejectsInvalid(t *testing.T) {
	cases := []*Partial{
		{Token: "", Epoch: 0, Step: 0, Shard: 0, Grad: []float64{1}},
		{Token: "t", Epoch: -1, Step: 0, Shard: 0, Grad: []float64{1}},
		{Token: "t", Epoch: 0, Step: 0, Shard: 0, Grad: nil},
	}
	for i, p := range cases {
		var buf bytes.Buffer
		if err := EncodePartial(&buf, p); err == nil {
			t.Fatalf("case %d: invalid partial encoded without error", i)
		}
	}
}

func TestCtlCodecRoundTrip(t *testing.T) {
	man := Manifest{
		Token: "run-token", Procs: 4, Shards: 4, BatchSize: 32,
		Steps: 10, Epochs: 25, StartEpoch: 5, ParamCount: 12345,
	}
	var buf bytes.Buffer
	if err := encodeCtl(&buf, &ctl{Kind: "begin", Manifest: man}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	c, err := decodeCtl(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if c.Kind != "begin" || c.Manifest != man {
		t.Fatalf("round trip mismatch: %+v", c)
	}

	var bad bytes.Buffer
	if err := encodeFramed(&bad, ctlMagic, []byte("not gob")); err != nil {
		t.Fatalf("encode framed: %v", err)
	}
	if _, err := decodeCtl(bytes.NewReader(bad.Bytes())); err == nil {
		t.Fatal("malformed ctl payload decoded without error")
	}
	if _, err := decodeCtl(bytes.NewReader(buf.Bytes()[:4])); err == nil {
		t.Fatal("truncated ctl decoded without error")
	}
}

func TestMailboxKeysArePositional(t *testing.T) {
	a := partialKey("tok", 1, 2, 3)
	if b := partialKey("tok", 1, 2, 3); b != a {
		t.Fatalf("same position, different keys: %s != %s", b, a)
	}
	seen := map[string]bool{a: true}
	for _, k := range []string{
		partialKey("tok", 0, 2, 3),
		partialKey("tok", 1, 0, 3),
		partialKey("tok", 1, 2, 0),
		partialKey("other", 1, 2, 3),
	} {
		if seen[k] {
			t.Fatalf("key collision: %s", k)
		}
		seen[k] = true
	}
	if ctlKey("tok", "begin") == ctlKey("tok", "complete") {
		t.Fatal("begin and complete markers share a key")
	}
}
