package dist

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
)

// CLI bundles the multi-process training flags shared by the training
// binaries (dacrepro, dacrelease). Register wires them into a FlagSet;
// Resolve turns the parsed values into a Session (and, on the
// self-spawning coordinator path, a Fleet of worker processes).
type CLI struct {
	// Procs is the data-parallel process count. >1 makes this process the
	// coordinator and self-spawns Procs-1 workers re-executing the same
	// command line.
	Procs int
	// Shards is the semantic gradient-shard count per batch (0 defaults to
	// the process count). Results depend on Shards but never on Procs.
	Shards int
	// Worker marks this process as a spawned worker joining an existing
	// run; Dir, Rank, and ClusterProcs locate it.
	Worker bool
	// Coordinator joins an existing mailbox directory as rank 0 instead of
	// self-spawning (the workers were, or will be, started by hand).
	Coordinator bool
	// Dir is the shared mailbox directory. Empty on the self-spawn path
	// means a temporary directory, created and removed by the Fleet.
	Dir string
	// Rank is this process's rank (workers only).
	Rank int
	// ClusterProcs is the total process count when joining (-worker or
	// -coordinator); the self-spawn path uses Procs.
	ClusterProcs int
}

// Register declares the flags on fs (conventionally flag.CommandLine).
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.IntVar(&c.Procs, "procs", 1, "data-parallel training processes; >1 self-spawns procs-1 workers and coordinates them (results are bit-identical for every value)")
	fs.IntVar(&c.Shards, "shards", 0, "gradient shards per batch, a semantic knob results depend on (0 = the process count; must be >= processes)")
	fs.BoolVar(&c.Worker, "worker", false, "run as a data-parallel worker joining an existing run (normally set by the coordinator's self-spawn)")
	fs.BoolVar(&c.Coordinator, "coordinator", false, "join an existing -dist-dir as the coordinator instead of self-spawning workers")
	fs.StringVar(&c.Dir, "dist-dir", "", "shared mailbox directory for multi-process training (default: a temporary directory on the self-spawn path)")
	fs.IntVar(&c.Rank, "dist-rank", 0, "this process's rank within the run (with -worker)")
	fs.IntVar(&c.ClusterProcs, "dist-procs", 0, "total process count of the joined run (with -worker or -coordinator)")
}

// Resolve validates the parsed flags and returns this process's Session
// (nil for plain single-process runs) plus, on the self-spawning
// coordinator path, the spawned worker Fleet. argv is the full original
// argument list after the program name (os.Args[1:]); workers are spawned
// with it verbatim plus the -worker/-dist-* flags, so they execute the
// same experiment sequence as the coordinator — which is exactly what the
// lockstep protocol requires.
func (c *CLI) Resolve(argv []string) (*Session, *Fleet, error) {
	switch {
	case c.Worker:
		if c.Dir == "" || c.ClusterProcs < 2 || c.Rank < 1 || c.Rank >= c.ClusterProcs {
			return nil, nil, errors.New("dist: -worker requires -dist-dir, -dist-procs >= 2, and 1 <= -dist-rank < -dist-procs")
		}
		s, err := New(Options{Dir: c.Dir, Rank: c.Rank, Procs: c.ClusterProcs})
		return s, nil, err
	case c.Coordinator:
		if c.Dir == "" || c.ClusterProcs < 2 {
			return nil, nil, errors.New("dist: -coordinator requires -dist-dir and -dist-procs >= 2")
		}
		s, err := New(Options{Dir: c.Dir, Rank: 0, Procs: c.ClusterProcs})
		return s, nil, err
	case c.Procs > 1:
		dir, ownsDir := c.Dir, false
		if dir == "" {
			var err error
			if dir, err = os.MkdirTemp("", "dacdist-"); err != nil {
				return nil, nil, fmt.Errorf("dist: mailbox dir: %w", err)
			}
			ownsDir = true
		}
		s, err := New(Options{Dir: dir, Rank: 0, Procs: c.Procs})
		if err != nil {
			return nil, nil, err
		}
		fleet, err := SpawnWorkers(argv, dir, c.Procs)
		if err != nil {
			return nil, nil, err
		}
		fleet.ownsDir = ownsDir
		return s, fleet, nil
	default:
		return nil, nil, nil
	}
}

// Fleet tracks the worker processes a coordinator spawned.
type Fleet struct {
	cmds    []*exec.Cmd
	dir     string
	ownsDir bool
}

// SpawnWorkers starts procs-1 worker copies of this executable, each
// re-running argv plus the worker flags. Worker stderr is inherited (their
// mains keep workers quiet apart from failures); stdout is discarded.
func SpawnWorkers(argv []string, dir string, procs int) (*Fleet, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("dist: locate executable: %w", err)
	}
	f := &Fleet{dir: dir}
	for rank := 1; rank < procs; rank++ {
		// The worker flags go *before* the inherited argv: the flag package
		// stops at the first positional argument (e.g. dacrepro's experiment
		// names), so anything appended after one would never be parsed.
		args := append([]string{
			"-worker",
			"-dist-dir", dir,
			"-dist-rank", strconv.Itoa(rank),
			"-dist-procs", strconv.Itoa(procs),
		}, argv...)
		cmd := exec.Command(exe, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			f.Wait() // reap anything already started
			return nil, fmt.Errorf("dist: spawn worker %d: %w", rank, err)
		}
		f.cmds = append(f.cmds, cmd)
	}
	return f, nil
}

// Wait reaps every worker and removes the mailbox directory if the fleet
// created it, returning the first worker failure (if any).
func (f *Fleet) Wait() error {
	if f == nil {
		return nil
	}
	var first error
	for i, cmd := range f.cmds {
		if err := cmd.Wait(); err != nil && first == nil {
			first = fmt.Errorf("dist: worker %d: %w", i+1, err)
		}
	}
	if f.ownsDir {
		os.RemoveAll(f.dir)
	}
	return first
}
