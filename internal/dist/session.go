// Package dist implements deterministic multi-process data parallelism for
// the trainer: a coordinator (rank 0) and N-1 workers executing the same
// training program in lockstep, sharding each batch's gradient computation
// and exchanging per-shard gradient partials through a shared
// content-addressed artifact store used as a mailbox.
//
// The design goal is the repo's signature bit-reproducibility, extended
// from thread counts to process counts: a run's result is a pure function
// of its semantic configuration (which includes the shard count), never of
// the (threads × processes) execution shape. Three properties deliver it:
//
//   - Shard boundaries are a pure function of (batch size, shard count)
//     via dataset.Shard, identical on every rank.
//   - Each shard's partial is produced by the existing per-sample
//     sample-order reduction (bit-identical at any thread count), and the
//     global reduction is a fixed left fold over shards in ascending shard
//     index — never "whoever arrives first".
//   - Batch-norm running statistics are deferred and replayed per shard in
//     the same shard order on every rank (nn.BatchNorm2D.DeferStats).
//
// The mailbox inherits the artifact store's atomic publication (temp file
// + rename): a reader either sees a complete partial or nothing, and the
// DACGRD1 payload digest rejects torn or foreign bytes. Keys are
// positional — token + epoch + step + shard — so a generation's partials
// are addressable for garbage collection once every rank has consumed
// them. See DESIGN.md §15 for the full protocol.
package dist

import (
	"fmt"
	"time"

	"repro/internal/artifact"
	"repro/internal/dataset"
)

// Options configures a rank's view of a distributed run.
type Options struct {
	// Dir is the shared mailbox directory (an artifact store root). Every
	// rank of a run must point at the same directory.
	Dir string
	// Rank identifies this process: 0 is the coordinator, 1..Procs-1 are
	// workers.
	Rank int
	// Procs is the total process count.
	Procs int
	// Poll is the mailbox polling interval (default 2ms). Polling is a
	// stat() per probe; partials take far longer than that to compute, so
	// the default costs nothing measurable.
	Poll time.Duration
	// Timeout bounds every wait on a peer (default 10 minutes). A rank
	// that waits longer concludes its peer is gone and fails the run —
	// see the failure semantics in DESIGN.md §15.
	Timeout time.Duration
}

// Session is one rank's handle on a distributed run. It is cheap and
// carries no per-run state beyond the mailbox store, so one session can
// serve many sequential training runs (each identified by its token).
type Session struct {
	store   *artifact.Store
	rank    int
	procs   int
	poll    time.Duration
	timeout time.Duration
}

// New opens a session on the shared mailbox directory.
func New(o Options) (*Session, error) {
	if o.Procs < 2 {
		return nil, fmt.Errorf("dist: %d processes (a distributed run needs at least 2)", o.Procs)
	}
	if o.Rank < 0 || o.Rank >= o.Procs {
		return nil, fmt.Errorf("dist: rank %d out of range [0,%d)", o.Rank, o.Procs)
	}
	if o.Dir == "" {
		return nil, fmt.Errorf("dist: mailbox directory is required")
	}
	store, err := artifact.Open(o.Dir)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	if o.Poll <= 0 {
		o.Poll = 2 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Minute
	}
	return &Session{store: store, rank: o.Rank, procs: o.Procs, poll: o.Poll, timeout: o.Timeout}, nil
}

// Rank returns this process's rank (0 = coordinator).
func (s *Session) Rank() int { return s.rank }

// Procs returns the total process count of the run.
func (s *Session) Procs() int { return s.procs }

// Coordinator reports whether this rank is the coordinator.
func (s *Session) Coordinator() bool { return s.rank == 0 }

// Worker reports whether this rank is a worker.
func (s *Session) Worker() bool { return s.rank != 0 }

// Dir returns the mailbox directory.
func (s *Session) Dir() string { return s.store.Root() }

// RankShards returns the contiguous shard range [lo, hi) owned by rank of
// a run with the given shard and process counts — the same balanced
// partition dataset.Shard applies to batches, so ownership is a pure
// function of (shards, procs, rank) and identical on every process.
func RankShards(shards, procs, rank int) (lo, hi int) {
	return dataset.Shard(shards, rank, procs)
}
