package dist

import (
	"fmt"
	"io"
	"time"

	"repro/internal/artifact"
	"repro/internal/obs"
)

// Artifact kinds used by the mailbox. Partials are transient (garbage
// collected once consumed); control markers are small and persist for the
// life of the mailbox directory so late joiners and re-runs observe them.
const (
	kindPartial = "dist-partial"
	kindCtl     = "dist-ctl"
)

// partialKey derives the positional mailbox key of one shard's partial.
// Keys are position-addressed — token + epoch + step + shard — rather than
// content-addressed: the reader must be able to name the artifact it is
// waiting for before the writer has produced it.
func partialKey(token string, epoch, step, shard int) string {
	return artifact.NewKey("dist-partial/v1").
		Str("token", token).
		Int("epoch", int64(epoch)).
		Int("step", int64(step)).
		Int("shard", int64(shard)).
		Sum()
}

// ctlKey derives the key of a run's control marker ("begin" or "complete").
func ctlKey(token, what string) string {
	return artifact.NewKey("dist-ctl/v1").
		Str("token", token).
		Str("what", what).
		Sum()
}

// PublishPartial publishes one shard partial into the mailbox. The store's
// temp-file + rename publication makes it atomic: a polling reader either
// misses it entirely or reads the complete artifact.
func (s *Session) PublishPartial(p *Partial) error {
	err := s.store.Put(kindPartial, partialKey(p.Token, p.Epoch, p.Step, p.Shard), func(w io.Writer) error {
		return EncodePartial(w, p)
	})
	if err != nil {
		return err
	}
	if obs.Enabled() {
		obs.Default.Counter("dist_partials_published_total").Inc()
	}
	return nil
}

// FetchPartial polls the mailbox for a peer's shard partial, verifying the
// payload digest and that the partial is the one asked for. It returns an
// error if the session's timeout elapses first — the peer is presumed dead
// and the run fails rather than hanging.
func (s *Session) FetchPartial(token string, epoch, step, shard int) (*Partial, error) {
	key := partialKey(token, epoch, step, shard)
	var waited time.Duration
	start := time.Now()
	for {
		if s.store.Has(kindPartial, key) {
			rc, err := s.store.Get(kindPartial, key)
			if err != nil {
				return nil, err
			}
			p, err := DecodePartial(rc)
			rc.Close()
			if err != nil {
				return nil, fmt.Errorf("dist: partial (epoch %d, step %d, shard %d): %w", epoch, step, shard, err)
			}
			if p.Token != token || p.Epoch != epoch || p.Step != step || p.Shard != shard {
				return nil, fmt.Errorf("dist: partial under key for (epoch %d, step %d, shard %d) claims (epoch %d, step %d, shard %d)",
					epoch, step, shard, p.Epoch, p.Step, p.Shard)
			}
			if obs.Enabled() {
				obs.Default.Counter("dist_partials_fetched_total").Inc()
				obs.Default.Counter("dist_exchange_wait_ns_total").Add(int64(time.Since(start)))
			}
			return p, nil
		}
		if waited >= s.timeout {
			return nil, fmt.Errorf("dist: rank %d timed out after %v waiting for partial (epoch %d, step %d, shard %d) — is the owning process still running?",
				s.rank, s.timeout, epoch, step, shard)
		}
		time.Sleep(s.poll)
		waited += s.poll
	}
}

// Begin publishes the coordinator's run announcement. Workers block in
// AwaitBegin until it (or the run's completion marker) appears.
func (s *Session) Begin(man Manifest) error {
	if man.Token == "" {
		return fmt.Errorf("dist: Begin with empty token")
	}
	return s.store.Put(kindCtl, ctlKey(man.Token, "begin"), func(w io.Writer) error {
		return encodeCtl(w, &ctl{Kind: "begin", Manifest: man})
	})
}

// Complete publishes the run's completion marker. The coordinator's
// pipeline publishes it after its train stage finishes — whether it
// trained or loaded the result from cache — so a worker that arrives at a
// run the coordinator satisfied from cache loads the published state
// instead of waiting for an exchange that will never happen.
func (s *Session) Complete(token string) error {
	return s.store.Put(kindCtl, ctlKey(token, "complete"), func(w io.Writer) error {
		return encodeCtl(w, &ctl{Kind: "complete", Manifest: Manifest{Token: token}})
	})
}

// AwaitBegin polls for the run's begin announcement. It returns
// (manifest, false, nil) once the run begins, or (zero, true, nil) if the
// run's completion marker appears without a begin — the coordinator
// satisfied the run from cache, and the caller should load the result.
func (s *Session) AwaitBegin(token string) (Manifest, bool, error) {
	beginKey := ctlKey(token, "begin")
	completeKey := ctlKey(token, "complete")
	var waited time.Duration
	for {
		if s.store.Has(kindCtl, beginKey) {
			rc, err := s.store.Get(kindCtl, beginKey)
			if err != nil {
				return Manifest{}, false, err
			}
			c, err := decodeCtl(rc)
			rc.Close()
			if err != nil {
				return Manifest{}, false, err
			}
			if c.Kind != "begin" || c.Manifest.Token != token {
				return Manifest{}, false, fmt.Errorf("dist: begin marker for token %.8s is malformed", token)
			}
			return c.Manifest, false, nil
		}
		if s.store.Has(kindCtl, completeKey) {
			return Manifest{}, true, nil
		}
		if waited >= s.timeout {
			return Manifest{}, false, fmt.Errorf("dist: rank %d timed out after %v waiting for run %.8s to begin — is the coordinator still running?",
				s.rank, s.timeout, token)
		}
		time.Sleep(s.poll)
		waited += s.poll
	}
}

// PublishDone publishes this rank's per-run done marker. A worker
// publishes it after its last optimizer step; the coordinator waits for
// every worker's marker (AwaitDone) before sweeping the final partial
// generations, because completing the run's last step only proves the
// peers *published* those generations — not that they have consumed them.
func (s *Session) PublishDone(token string) error {
	return s.store.Put(kindCtl, ctlKey(token, fmt.Sprintf("done-%d", s.rank)), func(w io.Writer) error {
		return encodeCtl(w, &ctl{Kind: "done", Manifest: Manifest{Token: token}})
	})
}

// AwaitDone polls for a peer rank's done marker, with the session timeout.
func (s *Session) AwaitDone(token string, rank int) error {
	key := ctlKey(token, fmt.Sprintf("done-%d", rank))
	var waited time.Duration
	for !s.store.Has(kindCtl, key) {
		if waited >= s.timeout {
			return fmt.Errorf("dist: rank %d timed out after %v waiting for rank %d to finish run %.8s",
				s.rank, s.timeout, rank, token)
		}
		time.Sleep(s.poll)
		waited += s.poll
	}
	return nil
}

// CollectPartials deletes every shard partial of one (epoch, step)
// generation. Only the coordinator calls it, two generations behind the
// live one: ranks advance in lockstep (each step's reduce consumes every
// shard of that step before the next step's partials exist), so a
// coordinator working on step s+2 proves every rank has consumed step s.
// Deleting a missing partial is a no-op, which also covers the final
// sweep's overlap with per-step collection.
func (s *Session) CollectPartials(token string, epoch, step, shards int) {
	for k := 0; k < shards; k++ {
		if err := s.store.Delete(kindPartial, partialKey(token, epoch, step, k)); err == nil && obs.Enabled() {
			obs.Default.Counter("dist_partials_collected_total").Inc()
		}
	}
}
