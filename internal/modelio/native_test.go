package modelio

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/quantize"
)

func quantizedRelease(t *testing.T, seed int64) *ReleasedModel {
	t.Helper()
	m := trainedish(seed)
	a := quantize.QuantizeModel(m, quantize.WeightedEntropy{}, 16)
	rm, err := Export(m, arch(), a)
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

func TestSniffKinds(t *testing.T) {
	rm := quantizedRelease(t, 11)
	var released bytes.Buffer
	if err := Write(&released, rm); err != nil {
		t.Fatal(err)
	}
	if k := Sniff(bytes.NewReader(released.Bytes())); k != KindReleased {
		t.Fatalf("released model sniffed as %v", k)
	}

	m2, a2, err := Import(rm)
	if err != nil {
		t.Fatal(err)
	}
	_ = m2
	var record bytes.Buffer
	if err := quantize.EncodeApplied(&record, quantize.Snapshot(a2)); err != nil {
		t.Fatal(err)
	}
	if k := Sniff(bytes.NewReader(record.Bytes())); k != KindQuantRecord {
		t.Fatalf("quantization record sniffed as %v", k)
	}

	if k := Sniff(bytes.NewReader([]byte("not a model file at all"))); k != KindUnknown {
		t.Fatalf("foreign bytes sniffed as %v", k)
	}
	if k := Sniff(bytes.NewReader([]byte("DAC"))); k != KindUnknown {
		t.Fatalf("short stream sniffed as %v", k)
	}
}

func TestSniffFile(t *testing.T) {
	dir := t.TempDir()
	rm := quantizedRelease(t, 12)
	path := filepath.Join(dir, "model.anything")
	var buf bytes.Buffer
	if err := Write(&buf, rm); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	k, err := SniffFile(path)
	if err != nil || k != KindReleased {
		t.Fatalf("SniffFile = %v, %v; want released", k, err)
	}
	if _, err := SniffFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file did not error")
	}
}

// TestImportNativeBitIdenticalToImport pins the serving contract: the
// codebook-native model scores every input bit-identically to the
// dequantized model, at one worker and four.
func TestImportNativeBitIdenticalToImport(t *testing.T) {
	rm := quantizedRelease(t, 13)
	deq, _, err := Import(rm)
	if err != nil {
		t.Fatal(err)
	}
	nat, cb, err := ImportNative(rm)
	if err != nil {
		t.Fatal(err)
	}
	if cb.NumCovered() == 0 {
		t.Fatal("native import covered no parameters")
	}

	rng := rand.New(rand.NewSource(14))
	inputs := make([][]float64, 5)
	for i := range inputs {
		row := make([]float64, deq.InputLen())
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		inputs[i] = row
	}
	for _, threads := range []int{1, 4} {
		deq.SetThreads(threads)
		nat.SetThreads(threads)
		want, err := deq.EvalBatch(inputs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := nat.EvalBatch(inputs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			for j := range want[i] {
				if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
					t.Fatalf("threads=%d sample %d logit %d: native %v != dequantized %v",
						threads, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestImportNativeReleasesFloatStorage pins the memory win: covered weight
// parameters drop their float value/grad copies, the model still reports
// its full scalar count, and the eval weight footprint shrinks below the
// dense equivalent.
func TestImportNativeReleasesFloatStorage(t *testing.T) {
	rm := quantizedRelease(t, 15)
	nat, cb, err := ImportNative(rm)
	if err != nil {
		t.Fatal(err)
	}
	released := 0
	for _, p := range nat.WeightParams() {
		if cb.Covers(p.Name) {
			if !p.Released() {
				t.Fatalf("covered parameter %s still holds float storage", p.Name)
			}
			released++
		}
	}
	if released != cb.NumCovered() {
		t.Fatalf("released %d params, backend covers %d", released, cb.NumCovered())
	}
	if nat.NumParams() != NumScalars(rm) {
		t.Fatalf("NumParams %d != record scalars %d after release", nat.NumParams(), NumScalars(rm))
	}
	denseBytes := 0
	for _, p := range nat.WeightParams() {
		if cb.Covers(p.Name) {
			denseBytes += 8 * p.NumEl()
		}
	}
	if cb.Bytes() >= denseBytes {
		t.Fatalf("codebook views take %d bytes, dense floats would take %d", cb.Bytes(), denseBytes)
	}
}

func TestImportNativeRejectsFullPrecision(t *testing.T) {
	m := trainedish(16)
	rm, err := Export(m, arch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ImportNative(rm); err == nil {
		t.Fatal("full-precision model accepted by ImportNative")
	}
}

func TestNumScalarsMatchesImportedModel(t *testing.T) {
	rm := quantizedRelease(t, 17)
	m, _, err := Import(rm)
	if err != nil {
		t.Fatal(err)
	}
	if NumScalars(rm) != m.NumParams() {
		t.Fatalf("NumScalars %d, imported model has %d", NumScalars(rm), m.NumParams())
	}
}
