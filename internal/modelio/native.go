package modelio

import (
	"fmt"
	"io"
	"os"

	"repro/internal/nn"
	"repro/internal/quantize"
)

// Kind classifies an artifact file by its magic header.
type Kind int

const (
	// KindUnknown is any stream that carries neither magic.
	KindUnknown Kind = iota
	// KindReleased is a released model file (DACMRM1), servable directly.
	KindReleased
	// KindQuantRecord is a bare quantization record (DACQAP1): codebooks
	// and indices only, no architecture, biases, or batch-norm state — it
	// rebinds onto an existing model but cannot be served standalone.
	KindQuantRecord
)

func (k Kind) String() string {
	switch k {
	case KindReleased:
		return "released model"
	case KindQuantRecord:
		return "quantization record"
	default:
		return "unknown"
	}
}

// Sniff classifies a stream by its first bytes. Both artifact magics are
// the same length, so one 8-byte read decides; a short stream is
// KindUnknown, not an error.
func Sniff(r io.Reader) Kind {
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		return KindUnknown
	}
	switch string(hdr) {
	case magic:
		return KindReleased
	case quantize.AppliedMagic:
		return KindQuantRecord
	default:
		return KindUnknown
	}
}

// SniffFile classifies the artifact at path by magic header, regardless of
// file extension.
func SniffFile(path string) (Kind, error) {
	f, err := os.Open(path)
	if err != nil {
		return KindUnknown, err
	}
	defer f.Close()
	return Sniff(f), nil
}

// NumScalars returns the total scalar parameter count a released model
// carries (dense values plus quantized indices). It reads the record, not
// a reconstructed model, so it stays correct for native loads whose float
// parameter storage has been released.
func NumScalars(rm *ReleasedModel) int {
	n := 0
	for _, b := range rm.Dense {
		n += len(b.Values)
	}
	for _, qu := range rm.Quantized {
		for _, idx := range qu.Indices {
			n += len(idx)
		}
	}
	return n
}

// ImportNative reconstructs a quantized released model for codebook-native
// serving: the architecture is rebuilt and dense parameters (biases,
// batch-norm affine, unquantized weights) are filled exactly as Import
// does, but quantized weights are never dequantized. Instead the model is
// bound to a quantize.CodebookBackend whose views alias rm's codebooks and
// uint8 index slices zero-copy, and the covered parameters' float
// value/gradient storage is released — so the resident footprint of the
// quantized weights is 1 byte per element plus the codebooks, not 16.
//
// The returned model is eval-only: training or reading covered parameter
// values panics. Callers that need float weights (the extraction audit)
// should Import the retained rm separately. Evaluation is bit-identical to
// Import's dequantized model at any thread count (the kernel-level
// guarantee pinned by quantize.TestCodebookNativeBitIdentical).
func ImportNative(rm *ReleasedModel) (*nn.Model, *quantize.CodebookBackend, error) {
	if len(rm.Quantized) == 0 {
		return nil, nil, fmt.Errorf("modelio: model has no quantized units; use Import for full-precision models")
	}
	m := nn.NewResNet(rm.Arch)
	byName := map[string]*nn.Param{}
	for _, p := range m.Params() {
		byName[p.Name] = p
	}
	for _, blob := range rm.Dense {
		p, ok := byName[blob.Name]
		if !ok {
			return nil, nil, fmt.Errorf("modelio: unknown parameter %q", blob.Name)
		}
		if p.NumEl() != len(blob.Values) {
			return nil, nil, fmt.Errorf("modelio: parameter %q has %d elements, file has %d", blob.Name, p.NumEl(), len(blob.Values))
		}
		copy(p.Value.Data(), blob.Values)
	}
	cb := quantize.NewCodebookBackend()
	var covered []*nn.Param
	for _, qu := range rm.Quantized {
		for pi, name := range qu.ParamNames {
			p, ok := byName[name]
			if !ok {
				return nil, nil, fmt.Errorf("modelio: unknown quantized parameter %q", name)
			}
			if p.NumEl() != len(qu.Indices[pi]) {
				return nil, nil, fmt.Errorf("modelio: quantized parameter %q length mismatch", name)
			}
			if !p.Weight {
				return nil, nil, fmt.Errorf("modelio: quantized parameter %q is not a weight; codebook-native eval covers weights only", name)
			}
			if err := cb.AddUnit(name, qu.Levels, qu.Indices[pi]); err != nil {
				return nil, nil, err
			}
			covered = append(covered, p)
		}
	}
	if err := restoreBN(m.Net, rm.BNStats); err != nil {
		return nil, nil, err
	}
	m.SetWeightsBackend(cb)
	// Only now that every view is bound is it safe to drop the float copies.
	for _, p := range covered {
		p.ReleaseStorage()
	}
	return m, cb, nil
}
