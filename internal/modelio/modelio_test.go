package modelio

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"io"
	"math/rand"
	"os"
	"testing"

	"repro/internal/nn"
	"repro/internal/quantize"
	"repro/internal/tensor"
)

func arch() nn.ResNetConfig {
	return nn.ResNetConfig{
		InC: 1, InH: 8, InW: 8, Classes: 4,
		Widths: []int{4, 8}, Blocks: []int{1, 1}, Seed: 9,
	}
}

func trainedish(seed int64) *nn.Model {
	m := nn.NewResNet(arch())
	rng := rand.New(rand.NewSource(seed))
	for _, p := range m.Params() {
		p.Value.RandN(rng, 0, 0.1)
	}
	// Make batch-norm stats non-trivial so the round trip is meaningful.
	x := tensor.New(8, 1, 8, 8).RandN(rng, 0, 1)
	m.ForwardTrain(x)
	return m
}

func TestExportImportFullPrecision(t *testing.T) {
	m := trainedish(1)
	rm, err := Export(m, arch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rm.Quantized) != 0 {
		t.Fatal("unquantized export has quantized units")
	}
	m2, applied, err := Import(rm)
	if err != nil {
		t.Fatal(err)
	}
	if applied != nil {
		t.Fatal("unquantized import returned quantization record")
	}
	checkSameOutputs(t, m, m2)
}

func TestExportImportQuantized(t *testing.T) {
	m := trainedish(2)
	a := quantize.QuantizeModel(m, quantize.WeightedEntropy{}, 16)
	rm, err := Export(m, arch(), a)
	if err != nil {
		t.Fatal(err)
	}
	if len(rm.Quantized) == 0 {
		t.Fatal("quantized export has no units")
	}
	m2, a2, err := Import(rm)
	if err != nil {
		t.Fatal(err)
	}
	if a2 == nil || len(a2.Units) != len(a.Units) {
		t.Fatal("quantization record lost in round trip")
	}
	checkSameOutputs(t, m, m2)
	// Imported model remains properly quantized.
	for name, n := range a2.UniqueValues() {
		if n > 16 {
			t.Fatalf("imported unit %s has %d distinct values", name, n)
		}
	}
}

func TestWriteReadStream(t *testing.T) {
	m := trainedish(3)
	rm, err := Export(m, arch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, rm); err != nil {
		t.Fatal(err)
	}
	rm2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Import(rm2)
	if err != nil {
		t.Fatal(err)
	}
	checkSameOutputs(t, m, m2)
}

func TestSaveLoadFile(t *testing.T) {
	m := trainedish(4)
	a := quantize.QuantizeModel(m, quantize.Linear{LloydIters: 2}, 8)
	rm, err := Export(m, arch(), a)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.bin"
	if err := Save(path, rm); err != nil {
		t.Fatal(err)
	}
	rm2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Import(rm2)
	if err != nil {
		t.Fatal(err)
	}
	checkSameOutputs(t, m, m2)
}

func TestReadGarbageFails(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestExportTooManyLevelsFails(t *testing.T) {
	m := trainedish(5)
	a := &quantize.Applied{}
	a.QuantizeUnit("big", m.WeightParams(), quantize.Linear{}, 300)
	if _, err := Export(m, arch(), a); err == nil {
		t.Fatal("expected error for >256 levels")
	}
}

func TestSizeReportQuantizedSmaller(t *testing.T) {
	m := trainedish(6)
	rmFull, err := Export(m, arch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fullSize := Size(rmFull)
	if fullSize.TotalBytes() != fullSize.RawBytes {
		t.Fatalf("uncompressed total %d != raw %d", fullSize.TotalBytes(), fullSize.RawBytes)
	}

	m2 := trainedish(6)
	a := quantize.QuantizeModel(m2, quantize.WeightedEntropy{}, 16)
	rmQ, err := Export(m2, arch(), a)
	if err != nil {
		t.Fatal(err)
	}
	qSize := Size(rmQ)
	if qSize.TotalBytes() >= fullSize.TotalBytes() {
		t.Fatalf("quantized size %d not below full %d", qSize.TotalBytes(), fullSize.TotalBytes())
	}
	if qSize.Ratio() < 2 {
		t.Fatalf("4-bit compression ratio %v suspiciously low", qSize.Ratio())
	}
	if qSize.IndexBits != 4*m2.NumWeightParams() {
		t.Fatalf("index bits %d, want %d", qSize.IndexBits, 4*m2.NumWeightParams())
	}
}

func TestImportRejectsCorruptIndices(t *testing.T) {
	m := trainedish(7)
	a := quantize.QuantizeModel(m, quantize.Linear{}, 4)
	rm, err := Export(m, arch(), a)
	if err != nil {
		t.Fatal(err)
	}
	rm.Quantized[0].Indices[0][0] = 200 // out of range for 4 levels
	if _, _, err := Import(rm); err == nil {
		t.Fatal("expected index range error")
	}
}

func TestImportRejectsUnknownParam(t *testing.T) {
	m := trainedish(8)
	rm, err := Export(m, arch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rm.Dense[0].Name = "no.such.param"
	if _, _, err := Import(rm); err == nil {
		t.Fatal("expected unknown-parameter error")
	}
}

// checkSameOutputs verifies both models produce identical logits, which
// exercises parameters AND batch-norm running statistics.
func checkSameOutputs(t *testing.T, a, b *nn.Model) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	x := tensor.New(4, 1, 8, 8).RandN(rng, 0, 1)
	ya := a.Forward(x)
	yb := b.Forward(x)
	for i := range ya.Data() {
		if ya.Data()[i] != yb.Data()[i] {
			t.Fatalf("logit %d differs: %v vs %v", i, ya.Data()[i], yb.Data()[i])
		}
	}
}

// encodeValid returns a well-formed serialized model for corruption tests.
func encodeValid(t *testing.T, seed int64) []byte {
	t.Helper()
	m := trainedish(seed)
	a := quantize.QuantizeModel(m, quantize.WeightedEntropy{}, 8)
	rm, err := Export(m, arch(), a)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, rm); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadTruncatedFails(t *testing.T) {
	raw := encodeValid(t, 20)
	// Cut inside the magic header, right after it, and mid-payload: every
	// truncation must surface as a wrapped error, never a panic.
	for _, n := range []int{0, 3, len(magic), len(magic) + 10, len(raw) / 2, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation at %d bytes: expected error", n)
		}
	}
	if _, err := Read(bytes.NewReader(raw[:3])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("header truncation error = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReadBadMagicFails(t *testing.T) {
	raw := encodeValid(t, 21)
	raw[0] ^= 0xff
	_, err := Read(bytes.NewReader(raw))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("error = %v, want ErrBadMagic", err)
	}
}

func TestReadRejectsShapeMismatch(t *testing.T) {
	m := trainedish(22)
	rm, err := Export(m, arch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rm.Dense[0].Values = rm.Dense[0].Values[:len(rm.Dense[0].Values)-1]
	var buf bytes.Buffer
	if err := Write(&buf, rm); err == nil {
		// Write validates too; if it somehow passed, Read must not.
		if _, err := Read(&buf); err == nil {
			t.Fatal("expected shape-mismatch error")
		}
	}
}

func TestReadRejectsUnitMismatch(t *testing.T) {
	m := trainedish(23)
	a := quantize.QuantizeModel(m, quantize.WeightedEntropy{}, 8)
	rm, err := Export(m, arch(), a)
	if err != nil {
		t.Fatal(err)
	}
	// Detach one index slice from its parameter name: Import would index
	// past ParamNames without the structural validation.
	rm.Quantized[0].Indices = rm.Quantized[0].Indices[:len(rm.Quantized[0].Indices)-1]
	if err := validate(rm); err == nil {
		t.Fatal("expected unit-mismatch error")
	}
}

func TestReadRejectsEmptyCodebook(t *testing.T) {
	m := trainedish(24)
	a := quantize.QuantizeModel(m, quantize.WeightedEntropy{}, 8)
	rm, err := Export(m, arch(), a)
	if err != nil {
		t.Fatal(err)
	}
	rm.Quantized[0].Levels = nil
	if err := validate(rm); err == nil {
		t.Fatal("expected empty-codebook error")
	}
}

func TestReadWithDigest(t *testing.T) {
	raw := encodeValid(t, 25)
	rm, d1, err := ReadWithDigest(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if rm == nil || len(d1) != 64 {
		t.Fatalf("digest %q not a hex sha-256", d1)
	}
	_, d2, err := ReadWithDigest(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest not stable: %s vs %s", d1, d2)
	}
	other := encodeValid(t, 26)
	_, d3, err := ReadWithDigest(bytes.NewReader(other))
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("different files share a digest")
	}
}

func TestLoadWithDigestMatchesFileHash(t *testing.T) {
	raw := encodeValid(t, 27)
	path := t.TempDir() + "/model.bin"
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, d, err := LoadWithDigest(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)
	if d != hex.EncodeToString(sum[:]) {
		t.Fatalf("digest %s != file hash", d)
	}
}
