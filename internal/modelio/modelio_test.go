package modelio

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/quantize"
	"repro/internal/tensor"
)

func arch() nn.ResNetConfig {
	return nn.ResNetConfig{
		InC: 1, InH: 8, InW: 8, Classes: 4,
		Widths: []int{4, 8}, Blocks: []int{1, 1}, Seed: 9,
	}
}

func trainedish(seed int64) *nn.Model {
	m := nn.NewResNet(arch())
	rng := rand.New(rand.NewSource(seed))
	for _, p := range m.Params() {
		p.Value.RandN(rng, 0, 0.1)
	}
	// Make batch-norm stats non-trivial so the round trip is meaningful.
	x := tensor.New(8, 1, 8, 8).RandN(rng, 0, 1)
	m.ForwardTrain(x)
	return m
}

func TestExportImportFullPrecision(t *testing.T) {
	m := trainedish(1)
	rm, err := Export(m, arch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rm.Quantized) != 0 {
		t.Fatal("unquantized export has quantized units")
	}
	m2, applied, err := Import(rm)
	if err != nil {
		t.Fatal(err)
	}
	if applied != nil {
		t.Fatal("unquantized import returned quantization record")
	}
	checkSameOutputs(t, m, m2)
}

func TestExportImportQuantized(t *testing.T) {
	m := trainedish(2)
	a := quantize.QuantizeModel(m, quantize.WeightedEntropy{}, 16)
	rm, err := Export(m, arch(), a)
	if err != nil {
		t.Fatal(err)
	}
	if len(rm.Quantized) == 0 {
		t.Fatal("quantized export has no units")
	}
	m2, a2, err := Import(rm)
	if err != nil {
		t.Fatal(err)
	}
	if a2 == nil || len(a2.Units) != len(a.Units) {
		t.Fatal("quantization record lost in round trip")
	}
	checkSameOutputs(t, m, m2)
	// Imported model remains properly quantized.
	for name, n := range a2.UniqueValues() {
		if n > 16 {
			t.Fatalf("imported unit %s has %d distinct values", name, n)
		}
	}
}

func TestWriteReadStream(t *testing.T) {
	m := trainedish(3)
	rm, err := Export(m, arch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, rm); err != nil {
		t.Fatal(err)
	}
	rm2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Import(rm2)
	if err != nil {
		t.Fatal(err)
	}
	checkSameOutputs(t, m, m2)
}

func TestSaveLoadFile(t *testing.T) {
	m := trainedish(4)
	a := quantize.QuantizeModel(m, quantize.Linear{LloydIters: 2}, 8)
	rm, err := Export(m, arch(), a)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.bin"
	if err := Save(path, rm); err != nil {
		t.Fatal(err)
	}
	rm2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Import(rm2)
	if err != nil {
		t.Fatal(err)
	}
	checkSameOutputs(t, m, m2)
}

func TestReadGarbageFails(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestExportTooManyLevelsFails(t *testing.T) {
	m := trainedish(5)
	a := &quantize.Applied{}
	a.QuantizeUnit("big", m.WeightParams(), quantize.Linear{}, 300)
	if _, err := Export(m, arch(), a); err == nil {
		t.Fatal("expected error for >256 levels")
	}
}

func TestSizeReportQuantizedSmaller(t *testing.T) {
	m := trainedish(6)
	rmFull, err := Export(m, arch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fullSize := Size(rmFull)
	if fullSize.TotalBytes() != fullSize.RawBytes {
		t.Fatalf("uncompressed total %d != raw %d", fullSize.TotalBytes(), fullSize.RawBytes)
	}

	m2 := trainedish(6)
	a := quantize.QuantizeModel(m2, quantize.WeightedEntropy{}, 16)
	rmQ, err := Export(m2, arch(), a)
	if err != nil {
		t.Fatal(err)
	}
	qSize := Size(rmQ)
	if qSize.TotalBytes() >= fullSize.TotalBytes() {
		t.Fatalf("quantized size %d not below full %d", qSize.TotalBytes(), fullSize.TotalBytes())
	}
	if qSize.Ratio() < 2 {
		t.Fatalf("4-bit compression ratio %v suspiciously low", qSize.Ratio())
	}
	if qSize.IndexBits != 4*m2.NumWeightParams() {
		t.Fatalf("index bits %d, want %d", qSize.IndexBits, 4*m2.NumWeightParams())
	}
}

func TestImportRejectsCorruptIndices(t *testing.T) {
	m := trainedish(7)
	a := quantize.QuantizeModel(m, quantize.Linear{}, 4)
	rm, err := Export(m, arch(), a)
	if err != nil {
		t.Fatal(err)
	}
	rm.Quantized[0].Indices[0][0] = 200 // out of range for 4 levels
	if _, _, err := Import(rm); err == nil {
		t.Fatal("expected index range error")
	}
}

func TestImportRejectsUnknownParam(t *testing.T) {
	m := trainedish(8)
	rm, err := Export(m, arch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rm.Dense[0].Name = "no.such.param"
	if _, _, err := Import(rm); err == nil {
		t.Fatal("expected unknown-parameter error")
	}
}

// checkSameOutputs verifies both models produce identical logits, which
// exercises parameters AND batch-norm running statistics.
func checkSameOutputs(t *testing.T, a, b *nn.Model) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	x := tensor.New(4, 1, 8, 8).RandN(rng, 0, 1)
	ya := a.Forward(x)
	yb := b.Forward(x)
	for i := range ya.Data() {
		if ya.Data()[i] != yb.Data()[i] {
			t.Fatalf("logit %d differs: %v vs %v", i, ya.Data()[i], yb.Data()[i])
		}
	}
}
