// Package modelio serializes released models. It completes the paper's
// threat-model loop: the data holder trains with the (malicious) pipeline
// and *releases* a model file; the adversary later loads that file with no
// access to the training process and runs extraction on its weights.
//
// Quantized models are stored the way deployment formats store them — a
// per-unit codebook plus one index per weight — so the on-disk size
// reflects the compression the paper's quantization buys.
package modelio

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/nn"
	"repro/internal/quantize"
)

// magic identifies a released model file; the trailing digit is the format
// version. Read rejects anything else up front so that a wrong file (or a
// pre-versioned stream) fails with ErrBadMagic instead of a gob decode
// error deep in the payload.
const magic = "DACMRM1\n"

// ErrBadMagic reports that a stream is not a released model file.
var ErrBadMagic = errors.New("modelio: bad magic (not a released model file)")

// gob numbers stream types from a process-global counter in first-use
// order, so a ReleasedModel encoded after other gob traffic (the artifact
// codecs, say) would carry different framing bytes than one encoded first,
// breaking byte-reproducibility of released files and splintering
// digest-keyed caches. Encoding a zero value at init assigns the IDs for
// the whole type closure before any runtime gob use can shift them.
func init() {
	_ = gob.NewEncoder(io.Discard).Encode(&ReleasedModel{})
}

// ParamBlob is one full-precision parameter tensor.
type ParamBlob struct {
	Name   string
	Shape  []int
	Values []float64
}

// QuantUnit is one quantized codebook scope: the shared levels and, per
// parameter, the cluster index of every element.
type QuantUnit struct {
	Name       string
	Levels     []float64
	ParamNames []string
	Indices    [][]uint8
}

// ReleasedModel is the serialized form of a (possibly quantized) model.
type ReleasedModel struct {
	// Arch rebuilds the network deterministically.
	Arch nn.ResNetConfig
	// Dense holds parameters stored at full precision (biases, batch-norm
	// affine, running statistics, and unquantized weights).
	Dense []ParamBlob
	// Quantized holds codebook-compressed weight parameters.
	Quantized []QuantUnit
	// BNStats holds batch-norm running statistics by layer name.
	BNStats []BNBlob
}

// BNBlob carries one batch-norm layer's running statistics.
type BNBlob struct {
	Name    string
	RunMean []float64
	RunVar  []float64
}

// Export captures a model (and its quantization record, if any) into a
// serializable ReleasedModel. Only MiniResNet models (built by
// nn.NewResNet) can be exported, since Arch must reconstruct the network.
func Export(m *nn.Model, arch nn.ResNetConfig, applied *quantize.Applied) (*ReleasedModel, error) {
	rm := &ReleasedModel{Arch: arch}
	quantized := map[string]bool{}
	if applied != nil {
		for _, u := range applied.Units {
			if u.Book.NumLevels() > 256 {
				return nil, fmt.Errorf("modelio: unit %q has %d levels; index format is 8-bit", u.Name, u.Book.NumLevels())
			}
			qu := QuantUnit{Name: u.Name, Levels: append([]float64(nil), u.Book.Levels...)}
			for pi, p := range u.Params {
				idx := make([]uint8, len(u.Assign[pi]))
				for i, k := range u.Assign[pi] {
					idx[i] = uint8(k)
				}
				qu.ParamNames = append(qu.ParamNames, p.Name)
				qu.Indices = append(qu.Indices, idx)
				quantized[p.Name] = true
			}
			rm.Quantized = append(rm.Quantized, qu)
		}
	}
	for _, p := range m.Params() {
		if quantized[p.Name] {
			continue
		}
		rm.Dense = append(rm.Dense, ParamBlob{
			Name:   p.Name,
			Shape:  append([]int(nil), p.Value.Shape()...),
			Values: append([]float64(nil), p.Value.Data()...),
		})
	}
	collectBN(m.Net, &rm.BNStats)
	return rm, nil
}

// Import reconstructs the model from a ReleasedModel.
func Import(rm *ReleasedModel) (*nn.Model, *quantize.Applied, error) {
	m := nn.NewResNet(rm.Arch)
	byName := map[string]*nn.Param{}
	for _, p := range m.Params() {
		byName[p.Name] = p
	}
	for _, blob := range rm.Dense {
		p, ok := byName[blob.Name]
		if !ok {
			return nil, nil, fmt.Errorf("modelio: unknown parameter %q", blob.Name)
		}
		if p.NumEl() != len(blob.Values) {
			return nil, nil, fmt.Errorf("modelio: parameter %q has %d elements, file has %d", blob.Name, p.NumEl(), len(blob.Values))
		}
		copy(p.Value.Data(), blob.Values)
	}
	var applied *quantize.Applied
	if len(rm.Quantized) > 0 {
		applied = &quantize.Applied{}
		for _, qu := range rm.Quantized {
			u := &quantize.Unit{
				Name:      qu.Name,
				Book:      codebookFromLevels(qu.Levels),
				Quantizer: "imported",
				Levels:    len(qu.Levels),
			}
			for pi, name := range qu.ParamNames {
				p, ok := byName[name]
				if !ok {
					return nil, nil, fmt.Errorf("modelio: unknown quantized parameter %q", name)
				}
				if p.NumEl() != len(qu.Indices[pi]) {
					return nil, nil, fmt.Errorf("modelio: quantized parameter %q length mismatch", name)
				}
				assign := make([]int, len(qu.Indices[pi]))
				vd := p.Value.Data()
				for i, k := range qu.Indices[pi] {
					if int(k) >= len(qu.Levels) {
						return nil, nil, fmt.Errorf("modelio: index %d out of range for %d levels", k, len(qu.Levels))
					}
					assign[i] = int(k)
					vd[i] = qu.Levels[k]
				}
				u.Params = append(u.Params, p)
				u.Assign = append(u.Assign, assign)
			}
			applied.Units = append(applied.Units, u)
		}
	}
	if err := restoreBN(m.Net, rm.BNStats); err != nil {
		return nil, nil, err
	}
	return m, applied, nil
}

// Write serializes rm to w: the magic header followed by a gob payload.
func Write(w io.Writer, rm *ReleasedModel) error {
	if err := validate(rm); err != nil {
		return err
	}
	if _, err := io.WriteString(w, magic); err != nil {
		return fmt.Errorf("modelio: write header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(rm); err != nil {
		return fmt.Errorf("modelio: encode: %w", err)
	}
	return nil
}

// Read deserializes a ReleasedModel from r, verifying the magic header and
// the structural consistency of the payload. Truncated or foreign streams
// return wrapped errors (io.ErrUnexpectedEOF, ErrBadMagic) — never a panic.
func Read(r io.Reader) (*ReleasedModel, error) {
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("modelio: truncated header: %w", io.ErrUnexpectedEOF)
		}
		return nil, fmt.Errorf("modelio: read header: %w", err)
	}
	if string(hdr) != magic {
		return nil, fmt.Errorf("%w: header %q", ErrBadMagic, hdr)
	}
	var rm ReleasedModel
	if err := gob.NewDecoder(r).Decode(&rm); err != nil {
		return nil, fmt.Errorf("modelio: decode: %w", err)
	}
	if err := validate(&rm); err != nil {
		return nil, err
	}
	return &rm, nil
}

// ReadWithDigest reads a released model from r and also returns the hex
// SHA-256 of the entire stream — the content hash serving registries key
// models on. r is consumed to EOF so the digest covers the whole file, not
// just the bytes the decoder happened to buffer.
func ReadWithDigest(r io.Reader) (*ReleasedModel, string, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, "", fmt.Errorf("modelio: read: %w", err)
	}
	rm, err := Read(bytes.NewReader(raw))
	if err != nil {
		return nil, "", err
	}
	sum := sha256.Sum256(raw)
	return rm, hex.EncodeToString(sum[:]), nil
}

// validate checks the structural invariants a well-formed ReleasedModel
// satisfies, so a corrupted file fails with a descriptive error instead of
// an index panic in Import.
func validate(rm *ReleasedModel) error {
	for _, b := range rm.Dense {
		n := 1
		for _, d := range b.Shape {
			if d <= 0 {
				return fmt.Errorf("modelio: parameter %q has invalid shape %v", b.Name, b.Shape)
			}
			n *= d
		}
		if len(b.Shape) == 0 || n != len(b.Values) {
			return fmt.Errorf("modelio: parameter %q shape %v does not match %d values", b.Name, b.Shape, len(b.Values))
		}
	}
	for _, qu := range rm.Quantized {
		if len(qu.Levels) == 0 || len(qu.Levels) > 256 {
			return fmt.Errorf("modelio: unit %q has %d codebook levels (want 1..256)", qu.Name, len(qu.Levels))
		}
		if len(qu.ParamNames) != len(qu.Indices) {
			return fmt.Errorf("modelio: unit %q has %d parameter names but %d index slices", qu.Name, len(qu.ParamNames), len(qu.Indices))
		}
	}
	for _, bn := range rm.BNStats {
		if len(bn.RunMean) != len(bn.RunVar) {
			return fmt.Errorf("modelio: batch-norm %q has %d means but %d variances", bn.Name, len(bn.RunMean), len(bn.RunVar))
		}
	}
	return nil
}

// Save writes the model file at path.
func Save(path string, rm *ReleasedModel) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Write(f, rm); err != nil {
		return err
	}
	return f.Sync()
}

// Load reads a model file from path.
func Load(path string) (*ReleasedModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// LoadWithDigest reads a model file from path along with the hex SHA-256 of
// its contents.
func LoadWithDigest(path string) (*ReleasedModel, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	return ReadWithDigest(f)
}

// SizeReport describes the storage footprint of a released model.
type SizeReport struct {
	// DenseBytes is the full-precision payload (8 bytes per value).
	DenseBytes int
	// CodebookBytes is the total codebook storage (8 bytes per level).
	CodebookBytes int
	// IndexBits is the packed size of the quantized indices at
	// ceil(log2(levels)) bits per weight.
	IndexBits int
	// RawBytes is what the same model would take fully uncompressed.
	RawBytes int
}

// TotalBytes returns the compressed storage total.
func (s SizeReport) TotalBytes() int {
	return s.DenseBytes + s.CodebookBytes + (s.IndexBits+7)/8
}

// Ratio returns RawBytes / TotalBytes (higher = better compression).
func (s SizeReport) Ratio() float64 {
	t := s.TotalBytes()
	if t == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(t)
}

// Size computes the storage footprint of rm.
func Size(rm *ReleasedModel) SizeReport {
	var rep SizeReport
	for _, b := range rm.Dense {
		rep.DenseBytes += 8 * len(b.Values)
		rep.RawBytes += 8 * len(b.Values)
	}
	for _, qu := range rm.Quantized {
		rep.CodebookBytes += 8 * len(qu.Levels)
		bits := bitsFor(len(qu.Levels))
		for _, idx := range qu.Indices {
			rep.IndexBits += bits * len(idx)
			rep.RawBytes += 8 * len(idx)
		}
	}
	for _, bn := range rm.BNStats {
		rep.DenseBytes += 8 * (len(bn.RunMean) + len(bn.RunVar))
		rep.RawBytes += 8 * (len(bn.RunMean) + len(bn.RunVar))
	}
	return rep
}

func bitsFor(levels int) int {
	b := 1
	for 1<<b < levels {
		b++
	}
	return b
}

func codebookFromLevels(levels []float64) quantize.Codebook {
	// Rebuild midpoint boundaries; they are only needed if the model is
	// re-quantized, not for inference or extraction.
	cb := quantize.Codebook{Levels: append([]float64(nil), levels...)}
	cb.Bounds = make([]float64, len(levels)+1)
	cb.Bounds[0] = math.Inf(-1)
	for i := 1; i < len(levels); i++ {
		cb.Bounds[i] = (levels[i-1] + levels[i]) / 2
	}
	cb.Bounds[len(levels)] = math.Inf(1)
	return cb
}

// collectBN walks the layer tree and captures batch-norm running stats.
func collectBN(l nn.Layer, out *[]BNBlob) {
	nn.Walk(l, func(child nn.Layer) {
		if bn, ok := child.(*nn.BatchNorm2D); ok {
			*out = append(*out, BNBlob{
				Name:    bn.Name(),
				RunMean: append([]float64(nil), bn.RunMean...),
				RunVar:  append([]float64(nil), bn.RunVar...),
			})
		}
	})
}

// restoreBN writes captured running stats back into the model.
func restoreBN(l nn.Layer, blobs []BNBlob) error {
	byName := map[string]BNBlob{}
	for _, b := range blobs {
		byName[b.Name] = b
	}
	var firstErr error
	nn.Walk(l, func(child nn.Layer) {
		bn, ok := child.(*nn.BatchNorm2D)
		if !ok || firstErr != nil {
			return
		}
		b, ok := byName[bn.Name()]
		if !ok {
			firstErr = fmt.Errorf("modelio: missing batch-norm stats for %q", bn.Name())
			return
		}
		if len(b.RunMean) != len(bn.RunMean) {
			firstErr = fmt.Errorf("modelio: batch-norm %q channel mismatch", bn.Name())
			return
		}
		copy(bn.RunMean, b.RunMean)
		copy(bn.RunVar, b.RunVar)
	})
	return firstErr
}
