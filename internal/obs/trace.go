package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Request-scoped distributed tracing. Where the Tracer in span.go
// aggregates phase timings process-wide, this file follows one request
// across processes: the gateway mints a 128-bit trace ID for every
// /v1/predict, propagates it to the replica in the X-Dac-Trace header, and
// each hop builds a RequestTrace — a flat list of named spans with offsets
// relative to the request start — that lands in a bounded TraceBuffer when
// the request finishes (exposed at GET /tracez). Replicas return their own
// timing breakdown in the X-Dac-Server-Timing response header so the
// gateway can attribute replica queue/compute time to the right attempt
// span. A nil *RequestTrace is valid everywhere and makes every method a
// no-op, mirroring the nil-Tracer contract.

// Propagation header names shared by the gateway and replica tiers.
const (
	// HeaderTrace carries the trace context on a proxied request:
	// "<32-hex trace id>" optionally followed by ";hop=<label>" naming the
	// sender's attempt (the gateway uses a0 for the first attempt, a1 for
	// the retry). Responses echo the bare trace ID back in the same header.
	HeaderTrace = "X-Dac-Trace"
	// HeaderClient names the end client for per-client accounting. The
	// gateway forwards it (or synthesizes it from the caller's remote
	// address) so replica-side accounting attributes work to the real
	// client, not to the gateway's address.
	HeaderClient = "X-Dac-Client"
	// HeaderServerTiming is the replica's per-request timing breakdown,
	// formatted by FormatTimings: "queue=<µs>,compute=<µs>,batch=<n>,total=<µs>".
	HeaderServerTiming = "X-Dac-Server-Timing"
)

// TraceID is a 128-bit request identifier, rendered as 32 hex characters.
type TraceID [16]byte

// NewTraceID mints a random trace ID.
func NewTraceID() TraceID {
	var id TraceID
	rand.Read(id[:]) // crypto/rand.Read never fails in practice
	return id
}

// IsZero reports whether the ID is the zero value (no trace context).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex characters.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses the 32-hex-character form.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 2*len(id) {
		return TraceID{}, fmt.Errorf("obs: trace id %q is not %d hex characters", s, 2*len(id))
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return TraceID{}, fmt.Errorf("obs: trace id %q: %w", s, err)
	}
	copy(id[:], raw)
	return id, nil
}

// FormatTraceHeader renders an X-Dac-Trace value: the trace ID, plus
// ";hop=<label>" when hop is non-empty.
func FormatTraceHeader(id TraceID, hop string) string {
	if hop == "" {
		return id.String()
	}
	return id.String() + ";hop=" + hop
}

// ParseTraceHeader parses an X-Dac-Trace value into its trace ID and
// optional hop label. A missing or malformed value returns the zero ID
// (callers then mint a fresh trace) and a non-nil error.
func ParseTraceHeader(v string) (TraceID, string, error) {
	idPart, rest, _ := strings.Cut(v, ";")
	id, err := ParseTraceID(strings.TrimSpace(idPart))
	if err != nil {
		return TraceID{}, "", err
	}
	hop := ""
	if hv, ok := strings.CutPrefix(strings.TrimSpace(rest), "hop="); ok {
		hop = hv
	}
	return id, hop, nil
}

// Timing is one name=value pair of an X-Dac-Server-Timing header. Values
// are microseconds for the queue/compute/total entries and a plain count
// for batch.
type Timing struct {
	Name  string
	Value int64
}

// FormatTimings renders timings as "name=value,name=value".
func FormatTimings(ts []Timing) string {
	var b strings.Builder
	for i, tm := range ts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(tm.Name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(tm.Value, 10))
	}
	return b.String()
}

// ParseTimings parses FormatTimings output, skipping malformed pairs.
func ParseTimings(v string) []Timing {
	if v == "" {
		return nil
	}
	var out []Timing
	for _, part := range strings.Split(v, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			continue
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			continue
		}
		out = append(out, Timing{Name: name, Value: n})
	}
	return out
}

// ClientFrom derives the accounting client ID for a request: the
// X-Dac-Client header value when present (truncated to 64 characters so a
// hostile header cannot bloat metric names), else the host part of the
// remote address, else "unknown".
func ClientFrom(header, remoteAddr string) string {
	if header != "" {
		if len(header) > 64 {
			header = header[:64]
		}
		return header
	}
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil && host != "" {
		return host
	}
	if remoteAddr != "" {
		return remoteAddr
	}
	return "unknown"
}

// SpanRecord is one timed phase inside a completed request trace. Names
// are "/"-separated paths (attempt0/queue); offsets are relative to the
// trace start.
type SpanRecord struct {
	Name string `json:"name"`
	// Detail optionally annotates the span (the replica ID on gateway
	// attempt spans).
	Detail      string `json:"detail,omitempty"`
	StartMicros int64  `json:"start_us"`
	DurMicros   int64  `json:"dur_us"`
}

// TraceRecord is one completed request as stored in a TraceBuffer and
// written to the access log (without spans).
type TraceRecord struct {
	TraceID string `json:"trace_id"`
	// Hop is the attempt label this process received in X-Dac-Trace (a0 on
	// a gateway's first attempt, a1 on its retry; empty for direct calls).
	Hop     string `json:"hop,omitempty"`
	Client  string `json:"client,omitempty"`
	Model   string `json:"model,omitempty"`
	Digest  string `json:"digest,omitempty"`
	Status  int    `json:"status"`
	Error   string `json:"error,omitempty"`
	Retried bool   `json:"retried,omitempty"`
	Shed    bool   `json:"shed,omitempty"`
	// Batch is the forward-pass batch size the request rode in (largest
	// across the samples of a batched predict).
	Batch int `json:"batch,omitempty"`
	// QueueMicros and ComputeMicros are the engine-side breakdown: time
	// queued before the batch flushed, and the batched forward-pass wall
	// time. On a gateway record they are the owning replica's reported
	// numbers from X-Dac-Server-Timing.
	QueueMicros   int64        `json:"queue_us,omitempty"`
	ComputeMicros int64        `json:"compute_us,omitempty"`
	Start         time.Time    `json:"start"`
	DurMicros     int64        `json:"dur_us"`
	Spans         []SpanRecord `json:"spans,omitempty"`
}

// RequestTrace accumulates one in-flight request's trace. It is created
// when the request arrives, annotated as the request moves through the
// process, and finished into a TraceRecord when the response is written.
// Methods are safe for concurrent use and no-ops on a nil receiver, so
// tracing threads through call chains without branching.
type RequestTrace struct {
	id    TraceID
	now   func() time.Time
	start time.Time

	mu  sync.Mutex
	rec TraceRecord
}

// NewRequestTrace starts a trace. A zero id mints a fresh one (the request
// arrived without trace context); a nil now selects the real clock (tests
// inject fake clocks for deterministic /tracez goldens).
func NewRequestTrace(id TraceID, now func() time.Time) *RequestTrace {
	if id.IsZero() {
		id = NewTraceID()
	}
	if now == nil {
		now = time.Now
	}
	t := &RequestTrace{id: id, now: now, start: now()}
	t.rec.TraceID = id.String()
	t.rec.Start = t.start
	return t
}

// ID returns the trace ID (zero for a nil trace).
func (t *RequestTrace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// Clock reads the trace's clock (zero time for a nil trace). Callers use
// it to time sections whose spans are added after the fact.
func (t *RequestTrace) Clock() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.now()
}

// SetHop records the attempt label this request arrived with.
func (t *RequestTrace) SetHop(hop string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rec.Hop = hop
	t.mu.Unlock()
}

// SetClient records the accounting client ID.
func (t *RequestTrace) SetClient(client string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rec.Client = client
	t.mu.Unlock()
}

// SetModel records the model the request targets.
func (t *RequestTrace) SetModel(model string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rec.Model = model
	t.mu.Unlock()
}

// SetDigest records the served release digest.
func (t *RequestTrace) SetDigest(digest string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rec.Digest = digest
	t.mu.Unlock()
}

// SetRetried flags that the request needed a second proxied attempt.
func (t *RequestTrace) SetRetried() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rec.Retried = true
	t.mu.Unlock()
}

// SetShed flags that the request was answered 503 for lack of capacity.
func (t *RequestTrace) SetShed() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rec.Shed = true
	t.mu.Unlock()
}

// SetBatch records the forward-pass batch size.
func (t *RequestTrace) SetBatch(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rec.Batch = n
	t.mu.Unlock()
}

// SetQueueCompute records the engine-side (or replica-reported) breakdown.
func (t *RequestTrace) SetQueueCompute(queue, compute time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rec.QueueMicros = queue.Microseconds()
	t.rec.ComputeMicros = compute.Microseconds()
	t.mu.Unlock()
}

// AddSpan records a completed span with an absolute start time (offsets
// are computed against the trace start).
func (t *RequestTrace) AddSpan(name string, start time.Time, dur time.Duration) {
	t.AddSpanDetail(name, "", start, dur)
}

// AddSpanDetail is AddSpan with an annotation (the replica ID on gateway
// attempt spans).
func (t *RequestTrace) AddSpanDetail(name, detail string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rec.Spans = append(t.rec.Spans, SpanRecord{
		Name:        name,
		Detail:      detail,
		StartMicros: start.Sub(t.start).Microseconds(),
		DurMicros:   dur.Microseconds(),
	})
	t.mu.Unlock()
}

// TraceSpan is one open span on a request trace. The zero TraceSpan (from
// a nil trace) no-ops on End.
type TraceSpan struct {
	t     *RequestTrace
	name  string
	start time.Time
}

// StartSpan opens a span; End records it.
func (t *RequestTrace) StartSpan(name string) TraceSpan {
	if t == nil {
		return TraceSpan{}
	}
	return TraceSpan{t: t, name: name, start: t.now()}
}

// End closes the span and returns its duration (zero for a no-op span).
func (s TraceSpan) End() time.Duration {
	if s.t == nil {
		return 0
	}
	d := s.t.now().Sub(s.start)
	s.t.AddSpan(s.name, s.start, d)
	return d
}

// Finish closes the trace with the response status (and error message for
// locally synthesized failures) and returns the completed record. The
// trace must not be used afterwards.
func (t *RequestTrace) Finish(status int, errMsg string) TraceRecord {
	if t == nil {
		return TraceRecord{}
	}
	end := t.now()
	t.mu.Lock()
	t.rec.Status = status
	t.rec.Error = errMsg
	t.rec.DurMicros = end.Sub(t.start).Microseconds()
	rec := t.rec
	t.mu.Unlock()
	return rec
}
