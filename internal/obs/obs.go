// Package obs is the repo's observability layer: a dependency-free metrics
// registry (counters, gauges, fixed-bucket histograms), hierarchical phase
// spans, and text exposition in Prometheus and JSON formats. Every
// performance-sensitive subsystem — the compute worker pool, the training
// loop, the attack pipeline, the serving engines — reports through it, so
// perf work is measured against one shared surface instead of per-package
// one-offs.
//
// # Hot-path contract
//
// Instrumentation sites on hot paths (compute dispatches, per-step training
// sections) are gated on the process-wide Enabled flag: disabled, they cost
// one atomic load; enabled, they cost a couple of monotonic clock reads and
// atomic adds per dispatch — `make obs-bench` guards the enabled overhead at
// under 2% of an uninstrumented forward pass. Metric updates themselves
// (Counter.Add, Histogram.Observe) are lock-free atomics and safe for
// concurrent use from any goroutine.
//
// Always-on product metrics (the serving engines' request counters, which
// predate this package and back the /statsz endpoint) ignore the flag: they
// are recorded once per batch, not per dispatch, and their absence would
// change user-visible behaviour.
//
// # Spans
//
// Spans record wall time and call counts in a tree keyed by "/"-separated
// paths:
//
//	sp := tracer.Span("train/epoch")
//	fw := sp.Child("forward")
//	...
//	fw.End()
//	sp.End()
//
// A nil *Tracer is valid everywhere and makes every span a no-op, so callers
// thread an optional tracer without branching. Batch-accumulated sections
// (the training loop times its per-step phases with plain clock reads and
// folds them into the tree once per epoch via Tracer.Add) land in the same
// tree as live spans.
package obs

import "sync/atomic"

// enabled gates the hot-path instrumentation sites (see the package
// comment). Process-wide because the instrumented code (compute.Ctx) is
// shared process-wide too.
var enabled atomic.Bool

// Enable turns hot-path metric collection on or off. Commands flip it on
// when the user asks for observability (-trace-out, dacserve's -obs);
// everything else runs with the near-zero disabled cost.
func Enable(on bool) { enabled.Store(on) }

// Enabled reports whether hot-path metric collection is on.
func Enabled() bool { return enabled.Load() }

// Default is the process-wide registry. Instrumented packages record into
// it; dacserve's /metricsz endpoint exposes it.
var Default = NewRegistry()

// DefaultTracer is the process-wide span tree behind the package-level Span
// helper.
var DefaultTracer = NewTracer()

// Span opens a span on the default tracer when observability is enabled,
// and a no-op span otherwise.
func Span(path string) SpanHandle {
	if !Enabled() {
		return SpanHandle{}
	}
	return DefaultTracer.Span(path)
}
