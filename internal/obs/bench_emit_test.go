// Overhead guard for the observability layer: the instrumented forward
// pass (obs enabled) must cost at most a few percent over the same pass
// with obs disabled, and disabled instrumentation must be free in
// practice. Lives in package obs_test so it can drive the real nn/compute
// stack (obs_test → nn → compute → obs is cycle-free).
package obs_test

import (
	"encoding/json"
	"flag"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// emitBench, when set to a path, makes TestEmitObsBench measure the
// instrumentation overhead and write the numbers there as JSON. Wired to
// `make obs-bench`; empty (the default) skips the test so the regular
// suite stays fast and timing-free.
var emitBench = flag.String("emit-bench", "", "write instrumentation overhead numbers (BENCH_obs.json) to this path")

// maxEnabledOverheadPct is the guard: enabling the full metrics + span
// instrumentation may cost at most this much on a batched forward pass.
const maxEnabledOverheadPct = 2.0

func benchModel() (*nn.Model, *tensor.Tensor) {
	m := nn.NewResNet(nn.ResNetConfig{
		InC: 1, InH: 12, InW: 12, Classes: 10,
		Widths: []int{6, 12, 24}, Blocks: []int{2, 2, 2}, Seed: 1,
	})
	m.SetThreads(0)
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(32, 1, 12, 12).RandN(rng, 0, 1)
	return m, x
}

// forwardNsPerOp measures one forward pass at the current obs.Enable state,
// taking the minimum over rounds to reject scheduler noise.
func forwardNsPerOp(m *nn.Model, x *tensor.Tensor, rounds int) float64 {
	best := math.MaxFloat64
	for r := 0; r < rounds; r++ {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Forward(x)
			}
		})
		if v := float64(res.NsPerOp()); v < best {
			best = v
		}
	}
	return best
}

type obsBenchReport struct {
	Threads          int     `json:"threads"`
	DisabledNsPerOp  float64 `json:"disabled_ns_per_op"`
	EnabledNsPerOp   float64 `json:"enabled_ns_per_op"`
	OverheadPct      float64 `json:"overhead_pct"`
	GuardOverheadPct float64 `json:"guard_overhead_pct"`
}

func TestEmitObsBench(t *testing.T) {
	if *emitBench == "" {
		t.Skip("pass -emit-bench=<path> (make obs-bench) to measure instrumentation overhead")
	}
	m, x := benchModel()
	const rounds = 3

	obs.Enable(false)
	disabled := forwardNsPerOp(m, x, rounds)

	obs.Enable(true)
	enabled := forwardNsPerOp(m, x, rounds)
	obs.Enable(false)
	obs.Default.Reset()

	overhead := (enabled - disabled) / disabled * 100
	rep := obsBenchReport{
		Threads:          runtime.GOMAXPROCS(0),
		DisabledNsPerOp:  disabled,
		EnabledNsPerOp:   enabled,
		OverheadPct:      overhead,
		GuardOverheadPct: maxEnabledOverheadPct,
	}
	t.Logf("forward pass: disabled %.0f ns/op, enabled %.0f ns/op, overhead %+.2f%%",
		disabled, enabled, overhead)

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*emitBench, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", *emitBench)

	if overhead > maxEnabledOverheadPct {
		t.Fatalf("enabled instrumentation overhead %.2f%% exceeds the %.1f%% guard", overhead, maxEnabledOverheadPct)
	}
}
