// Overhead guard for the observability layer: the instrumented forward
// pass (obs enabled) must cost at most a few percent over the same pass
// with obs disabled, and the fully traced serving path (request tracing +
// per-client accounting on) must cost at most the same few percent over
// untraced serving. Lives in package obs_test so it can drive the real
// nn/compute/serve stack (obs_test → serve → obs is cycle-free).
package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/modelio"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/train"
)

// emitBench, when set to a path, makes TestEmitObsBench measure the
// instrumentation overhead and write the numbers there as JSON. Wired to
// `make obs-bench`; empty (the default) skips the test so the regular
// suite stays fast and timing-free.
var emitBench = flag.String("emit-bench", "", "write instrumentation overhead numbers (BENCH_obs.json) to this path")

// maxEnabledOverheadPct is the guard: enabling the full metrics + span
// instrumentation may cost at most this much on a batched forward pass.
const maxEnabledOverheadPct = 2.0

func benchModel() (*nn.Model, *tensor.Tensor) {
	m := nn.NewResNet(nn.ResNetConfig{
		InC: 1, InH: 12, InW: 12, Classes: 10,
		Widths: []int{6, 12, 24}, Blocks: []int{2, 2, 2}, Seed: 1,
	})
	m.SetThreads(0)
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(32, 1, 12, 12).RandN(rng, 0, 1)
	return m, x
}

// forwardNsPerOp measures one forward pass at the current obs.Enable state,
// taking the minimum over rounds to reject scheduler noise.
func forwardNsPerOp(m *nn.Model, x *tensor.Tensor, rounds int) float64 {
	best := math.MaxFloat64
	for r := 0; r < rounds; r++ {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Forward(x)
			}
		})
		if v := float64(res.NsPerOp()); v < best {
			best = v
		}
	}
	return best
}

// trainNsPerOp measures one sharded training run (Shards > 1, single
// process) at the current obs.Enable state, minimum over rounds. Enabling
// obs turns on the stage machine's per-step clock reads and the per-epoch
// span recording — including the new exchange/reduce spans — so this pair
// of measurements guards the sharded trainer's instrumentation the same way
// the forward-pass pair guards the layer instrumentation.
func trainNsPerOp(rounds int) float64 {
	rng := rand.New(rand.NewSource(21))
	n := 48
	x := tensor.New(n, 1, 8, 8).RandN(rng, 0, 1)
	y := make([]int, n)
	for i := range y {
		y[i] = i % 4
	}
	best := math.MaxFloat64
	for r := 0; r < rounds; r++ {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := nn.NewResNet(nn.ResNetConfig{
					InC: 1, InH: 8, InW: 8, Classes: 4,
					Widths: []int{4, 8}, Blocks: []int{1, 1}, Seed: 22,
				})
				train.Run(m, x, y, train.Config{
					Epochs: 1, BatchSize: 8, Shards: 2,
					Optimizer: train.NewSGD(0.05, 0.9, 0),
					Seed:      23, Threads: 1,
				})
			}
		})
		if v := float64(res.NsPerOp()); v < best {
			best = v
		}
	}
	return best
}

// servingBench builds an in-process serving stack for the tracing-overhead
// measurement: one released model behind the real HTTP handler, MaxBatch 1
// so every request flushes on arrival (no flush timer, no timing
// dependence). Returns the server (for EnableTracing) and a ready predict
// body.
func servingBench(t *testing.T) (*serve.Server, []byte) {
	cfg := nn.ResNetConfig{
		InC: 1, InH: 12, InW: 12, Classes: 10,
		Widths: []int{6, 12, 24}, Blocks: []int{2, 2, 2}, Seed: 1,
	}
	m := nn.NewResNet(cfg)
	rng := rand.New(rand.NewSource(3))
	for _, p := range m.Params() {
		p.Value.RandN(rng, 0, 0.1)
	}
	m.ForwardTrain(tensor.New(4, 1, 12, 12).RandN(rng, 0, 1))
	rm, err := modelio.Export(m, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.bin")
	if err := modelio.Save(path, rm); err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(serve.Options{
		MaxBatch: 1, QueueDepth: 64, FlushEvery: -1, Threads: 1,
		Obs: obs.NewRegistry(),
	})
	t.Cleanup(reg.Close)
	en, err := reg.LoadFile("bench", path)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, en.Model().InputLen())
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	body, err := json.Marshal(map[string]any{"model": "bench", "input": in})
	if err != nil {
		t.Fatal(err)
	}
	return serve.NewServer(reg, nil), body
}

// serveNsPerOp measures one full in-process /v1/predict round trip at the
// current tracing state, minimum over rounds.
func serveNsPerOp(t *testing.T, h http.Handler, body []byte, rounds int) float64 {
	best := math.MaxFloat64
	for r := 0; r < rounds; r++ {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("predict status %d: %s", w.Code, w.Body.String())
				}
			}
		})
		if v := float64(res.NsPerOp()); v < best {
			best = v
		}
	}
	return best
}

type obsBenchReport struct {
	Threads          int     `json:"threads"`
	DisabledNsPerOp  float64 `json:"disabled_ns_per_op"`
	EnabledNsPerOp   float64 `json:"enabled_ns_per_op"`
	OverheadPct      float64 `json:"overhead_pct"`
	GuardOverheadPct float64 `json:"guard_overhead_pct"`
	// Serving measurement: one in-process /v1/predict round trip with
	// request tracing + per-client accounting off (plain) vs on (traced).
	ServePlainNsPerOp  float64 `json:"serve_plain_ns_per_op"`
	ServeTracedNsPerOp float64 `json:"serve_traced_ns_per_op"`
	ServeOverheadPct   float64 `json:"serve_overhead_pct"`
	// Sharded-trainer measurement: one Shards=2 training run with the
	// stage-machine timing (forward/backward/exchange/reduce spans) off vs
	// on.
	TrainPlainNsPerOp float64 `json:"train_plain_ns_per_op"`
	TrainTimedNsPerOp float64 `json:"train_timed_ns_per_op"`
	TrainOverheadPct  float64 `json:"train_overhead_pct"`
}

func TestEmitObsBench(t *testing.T) {
	if *emitBench == "" {
		t.Skip("pass -emit-bench=<path> (make obs-bench) to measure instrumentation overhead")
	}
	m, x := benchModel()
	const rounds = 3

	obs.Enable(false)
	disabled := forwardNsPerOp(m, x, rounds)

	obs.Enable(true)
	enabled := forwardNsPerOp(m, x, rounds)
	obs.Enable(false)
	obs.Default.Reset()

	// Serving: the same HTTP round trip with request tracing off vs on
	// (trace records, spans, timing headers, per-client series). obs.Enable
	// stays off in both so the measurement isolates the tracing layer — the
	// deep per-dispatch instrumentation is a separate subsystem guarded by
	// the forward-pass numbers above, and on a single-sample request its
	// per-dispatch cost would swamp the per-request tracing cost.
	api, body := servingBench(t)
	h := api.Handler()
	api.EnableTracing(false)
	servePlain := serveNsPerOp(t, h, body, rounds)
	api.EnableTracing(true)
	serveTraced := serveNsPerOp(t, h, body, rounds)
	api.EnableTracing(false)

	// Sharded trainer: the stage machine's per-step timing and per-epoch
	// exchange/reduce span recording turn on with obs.
	obs.Enable(false)
	trainPlain := trainNsPerOp(rounds)
	obs.Enable(true)
	trainTimed := trainNsPerOp(rounds)
	obs.Enable(false)
	obs.Default.Reset()

	overhead := (enabled - disabled) / disabled * 100
	serveOverhead := (serveTraced - servePlain) / servePlain * 100
	trainOverhead := (trainTimed - trainPlain) / trainPlain * 100
	rep := obsBenchReport{
		Threads:            runtime.GOMAXPROCS(0),
		DisabledNsPerOp:    disabled,
		EnabledNsPerOp:     enabled,
		OverheadPct:        overhead,
		GuardOverheadPct:   maxEnabledOverheadPct,
		ServePlainNsPerOp:  servePlain,
		ServeTracedNsPerOp: serveTraced,
		ServeOverheadPct:   serveOverhead,
		TrainPlainNsPerOp:  trainPlain,
		TrainTimedNsPerOp:  trainTimed,
		TrainOverheadPct:   trainOverhead,
	}
	t.Logf("forward pass: disabled %.0f ns/op, enabled %.0f ns/op, overhead %+.2f%%",
		disabled, enabled, overhead)
	t.Logf("serving: plain %.0f ns/op, traced %.0f ns/op, overhead %+.2f%%",
		servePlain, serveTraced, serveOverhead)
	t.Logf("sharded training: plain %.0f ns/op, timed %.0f ns/op, overhead %+.2f%%",
		trainPlain, trainTimed, trainOverhead)

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*emitBench, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", *emitBench)

	if overhead > maxEnabledOverheadPct {
		t.Fatalf("enabled instrumentation overhead %.2f%% exceeds the %.1f%% guard", overhead, maxEnabledOverheadPct)
	}
	if serveOverhead > maxEnabledOverheadPct {
		t.Fatalf("traced serving overhead %.2f%% exceeds the %.1f%% guard", serveOverhead, maxEnabledOverheadPct)
	}
	if trainOverhead > maxEnabledOverheadPct {
		t.Fatalf("timed sharded-training overhead %.2f%% exceeds the %.1f%% guard", trainOverhead, maxEnabledOverheadPct)
	}
}
