package obs

import (
	"math"
	"sync"
	"testing"
)

// Concurrent hammering of every metric kind; run under -race by
// `make race-fast`. Final values must be exact — the atomics lose nothing.
func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total")
	g := r.Gauge("hammer_gauge")
	h := r.Histogram("hammer_hist", LinearBuckets(1, 1, 8))

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(0.5)
				g.SetMax(float64(w))
				h.Observe(float64(i%10 + 1)) // values 1..10, two past the last bound
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	// SetMax raced with Add, so only the histogram and counter values are
	// exactly predictable; the gauge must at least reflect all Adds or the
	// max, whichever the final CAS winner left (both are >= workers-1 here
	// only when SetMax won last) — assert it is one of the reachable values.
	if gv := g.Value(); gv < 0 {
		t.Fatalf("gauge went negative: %v", gv)
	}
	snap := h.Snapshot()
	if snap.Count != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", snap.Count, workers*perWorker)
	}
	var total int64
	for _, n := range snap.Counts {
		total += n
	}
	if total != snap.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, snap.Count)
	}
	// Values 9 and 10 overflow the last bound (8): 2 of every 10 observations.
	if over := snap.Counts[len(snap.Counts)-1]; over != workers*perWorker/5 {
		t.Fatalf("overflow bucket = %d, want %d", over, workers*perWorker/5)
	}
	if snap.Max != 10 {
		t.Fatalf("hist max = %v, want 10", snap.Max)
	}
	wantSum := float64(workers) * perWorker / 10 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 10)
	if math.Abs(snap.Sum-wantSum) > 1e-6 {
		t.Fatalf("hist sum = %v, want %v", snap.Sum, wantSum)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 5, 7} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	// Inclusive upper bounds: 0.5,1 → ≤1; 1.5,2 → ≤2; 3,5 → ≤5; 7 → +Inf.
	want := []int64{2, 2, 2, 1}
	for i, n := range snap.Counts {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, n, want[i], snap)
		}
	}
	if snap.Count != 7 || snap.Max != 7 {
		t.Fatalf("count/max = %d/%v, want 7/7", snap.Count, snap.Max)
	}
	if empty := NewHistogram([]float64{1}).Snapshot(); empty.Max != 0 || empty.Count != 0 {
		t.Fatalf("empty histogram snapshot = %+v", empty)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 4)
	for i, want := range []float64{1, 3, 5, 7} {
		if lin[i] != want {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
	exp := ExpBuckets(0.001, 10, 3)
	for i, want := range []float64{0.001, 0.01, 0.1} {
		if math.Abs(exp[i]-want) > 1e-12 {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
}

func TestRegistryGetOrCreateAndReset(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("c")
	c2 := r.Counter("c")
	if c1 != c2 {
		t.Fatal("Counter did not return the registered instance")
	}
	c1.Add(3)
	r.Gauge("g").Set(2.5)
	r.Histogram("h", []float64{1}).Observe(0.5)

	snap := r.Snapshot()
	if snap.Counters["c"] != 3 || snap.Gauges["g"] != 2.5 || snap.Histograms["h"].Count != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}

	r.Reset()
	snap = r.Snapshot()
	if snap.Counters["c"] != 0 || snap.Gauges["g"] != 0 || snap.Histograms["h"].Count != 0 {
		t.Fatalf("post-reset snapshot = %+v", snap)
	}
	if c1.Value() != 0 {
		t.Fatal("cached pointer not reset in place")
	}
}

func TestRegistryReplaceAndUnregister(t *testing.T) {
	r := NewRegistry()
	old := NewCounter()
	old.Add(7)
	r.RegisterCounter("swap_total", old)

	fresh := NewCounter()
	r.RegisterCounter("swap_total", fresh) // hot swap: fresh instance takes the name

	if got := r.Snapshot().Counters["swap_total"]; got != 0 {
		t.Fatalf("after swap, registered value = %d, want 0", got)
	}
	// The old engine's teardown must not remove the new registration.
	if r.Unregister("swap_total", old) {
		t.Fatal("Unregister removed a name registered to a different instance")
	}
	if _, ok := r.Snapshot().Counters["swap_total"]; !ok {
		t.Fatal("swap_total disappeared")
	}
	if !r.Unregister("swap_total", fresh) {
		t.Fatal("Unregister refused the current instance")
	}
	if _, ok := r.Snapshot().Counters["swap_total"]; ok {
		t.Fatal("swap_total still registered after Unregister")
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter name did not panic")
		}
	}()
	r.Gauge("m")
}
