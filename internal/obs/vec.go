package obs

import (
	"fmt"
	"sync"
)

// OverflowLabel is the label value unbounded input collapses into once a
// vec's cardinality cap is reached. Per-client series would otherwise let
// any client mint unbounded metric names by varying X-Dac-Client.
const OverflowLabel = "_other"

// DefaultMaxLabelValues is the cardinality cap a vec uses when none is
// given.
const DefaultMaxLabelValues = 64

// CounterVec is a family of counters keyed by one label with a hard
// cardinality cap: the first cap distinct values each get their own
// registered series ("name{label=\"value\"}"), every later value shares
// the OverflowLabel series. Get is a map lookup under a mutex — fine for
// per-request accounting, not for per-dispatch hot paths (cache the
// returned *Counter there).
type CounterVec struct {
	reg   *Registry
	name  string
	label string
	max   int

	mu    sync.Mutex
	known map[string]*Counter
}

// NewCounterVec builds a vec registering its series on reg. A
// non-positive max selects DefaultMaxLabelValues.
func NewCounterVec(reg *Registry, name, label string, max int) *CounterVec {
	if max <= 0 {
		max = DefaultMaxLabelValues
	}
	return &CounterVec{reg: reg, name: name, label: label, max: max, known: map[string]*Counter{}}
}

// Get returns the counter for value, creating and registering it if the
// cap allows and collapsing into the overflow series otherwise.
func (v *CounterVec) Get(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.known[value]; ok {
		return c
	}
	if len(v.known) >= v.max {
		value = OverflowLabel
		if c, ok := v.known[value]; ok {
			return c
		}
	}
	c := v.reg.Counter(seriesName(v.name, v.label, value))
	v.known[value] = c
	return c
}

// HistogramVec is CounterVec's histogram twin: one bounded-cardinality
// histogram family over a shared bucket layout.
type HistogramVec struct {
	reg    *Registry
	name   string
	label  string
	max    int
	bounds []float64

	mu    sync.Mutex
	known map[string]*Histogram
}

// NewHistogramVec builds a vec whose histograms share bounds. A
// non-positive max selects DefaultMaxLabelValues.
func NewHistogramVec(reg *Registry, name, label string, max int, bounds []float64) *HistogramVec {
	if max <= 0 {
		max = DefaultMaxLabelValues
	}
	return &HistogramVec{reg: reg, name: name, label: label, max: max, bounds: bounds, known: map[string]*Histogram{}}
}

// Get returns the histogram for value under the same cap rule as
// CounterVec.Get.
func (v *HistogramVec) Get(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.known[value]; ok {
		return h
	}
	if len(v.known) >= v.max {
		value = OverflowLabel
		if h, ok := v.known[value]; ok {
			return h
		}
	}
	h := v.reg.Histogram(seriesName(v.name, v.label, value), v.bounds)
	v.known[value] = h
	return h
}

// Observe records one value into the histogram for the label value.
func (v *HistogramVec) Observe(value string, x float64) { v.Get(value).Observe(x) }

// seriesName renders name{label="value"} — the label syntax the exposition
// layer splits back apart.
func seriesName(name, label, value string) string {
	return fmt.Sprintf("%s{%s=%q}", name, label, value)
}
