package obs

import (
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock; tracers driven by it produce
// fully deterministic span trees.
type fakeClock struct {
	t time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time { return c.t }

func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestSpanTreeDeterministic(t *testing.T) {
	clock := newFakeClock()
	tr := NewTracer()
	tr.SetNow(clock.now)

	for epoch := 0; epoch < 2; epoch++ {
		ep := tr.Span("train/epoch")
		for step := 0; step < 3; step++ {
			fw := ep.Child("forward")
			clock.advance(10 * time.Millisecond)
			fw.End()
			bw := ep.Child("backward")
			clock.advance(20 * time.Millisecond)
			bw.End()
		}
		if d := ep.End(); d != 90*time.Millisecond {
			t.Fatalf("epoch %d duration = %v, want 90ms", epoch, d)
		}
	}
	tr.Add("train/epoch/optimizer", 12*time.Millisecond, 6)

	want := strings.Join([]string{
		"span                                          calls          total           mean",
		"train                                             0             0s             0s",
		"  epoch                                           2          180ms           90ms",
		"    forward                                       6           60ms           10ms",
		"    backward                                      6          120ms           20ms",
		"    optimizer                                     6           12ms            2ms",
		"",
	}, "\n")
	if got := tr.Report(); got != want {
		t.Fatalf("report mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The same sequence of operations must render the same report.
	clock2 := newFakeClock()
	tr2 := NewTracer()
	tr2.SetNow(clock2.now)
	for epoch := 0; epoch < 2; epoch++ {
		ep := tr2.Span("train/epoch")
		for step := 0; step < 3; step++ {
			fw := ep.Child("forward")
			clock2.advance(10 * time.Millisecond)
			fw.End()
			bw := ep.Child("backward")
			clock2.advance(20 * time.Millisecond)
			bw.End()
		}
		ep.End()
	}
	tr2.Add("train/epoch/optimizer", 12*time.Millisecond, 6)
	if tr2.Report() != want {
		t.Fatal("identical span sequences rendered different reports")
	}
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	sp := tr.Span("a/b")
	child := sp.Child("c")
	if d := child.End(); d != 0 {
		t.Fatalf("nil tracer span elapsed %v, want 0", d)
	}
	sp.End()
	tr.Add("x", time.Second, 1)
	tr.SetNow(time.Now)
	tr.Reset()
	var b strings.Builder
	tr.WriteReport(&b)
	if b.Len() != 0 {
		t.Fatalf("nil tracer wrote a report: %q", b.String())
	}
}

func TestTracerResetAndEmptyReport(t *testing.T) {
	tr := NewTracer()
	tr.Span("x").End()
	tr.Reset()
	if got := tr.Report(); got != "no spans recorded\n" {
		t.Fatalf("empty report = %q", got)
	}
}

func TestPackageSpanGatedOnEnable(t *testing.T) {
	DefaultTracer.Reset()
	Enable(false)
	Span("gated").End()
	if got := DefaultTracer.Report(); got != "no spans recorded\n" {
		t.Fatalf("disabled Span still recorded: %q", got)
	}
	Enable(true)
	defer Enable(false)
	Span("gated").End()
	if got := DefaultTracer.Report(); !strings.Contains(got, "gated") {
		t.Fatalf("enabled Span missing from report: %q", got)
	}
	DefaultTracer.Reset()
}
