package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Tracer accumulates hierarchical phase spans into a tree keyed by
// "/"-separated paths. It is safe for concurrent use (one mutex around the
// tree; spans are expected at phase granularity — epochs, batches, pipeline
// stages — not per-element, so the lock is never hot). A nil *Tracer is
// valid: every method no-ops and every span it hands out no-ops, which is
// how optional tracing threads through APIs without branching at call
// sites.
type Tracer struct {
	mu    sync.Mutex
	now   func() time.Time
	roots []*spanNode
	index map[string]*spanNode // root name → node
}

type spanNode struct {
	name     string
	count    int64
	total    time.Duration
	children []*spanNode
	index    map[string]*spanNode
}

// NewTracer returns an empty tracer using the real clock.
func NewTracer() *Tracer {
	return &Tracer{now: time.Now, index: map[string]*spanNode{}}
}

// SetNow replaces the tracer's clock; tests inject a fake clock to make
// span trees deterministic.
func (t *Tracer) SetNow(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

// child finds or creates the child of parent named name; parent == nil
// means a root. Caller holds t.mu.
func (t *Tracer) child(parent *spanNode, name string) *spanNode {
	idx := t.index
	if parent != nil {
		if parent.index == nil {
			parent.index = map[string]*spanNode{}
		}
		idx = parent.index
	}
	if n, ok := idx[name]; ok {
		return n
	}
	n := &spanNode{name: name}
	idx[name] = n
	if parent != nil {
		parent.children = append(parent.children, n)
	} else {
		t.roots = append(t.roots, n)
	}
	return n
}

// node resolves a "/"-separated path from the root, creating nodes as
// needed. Caller holds t.mu.
func (t *Tracer) node(path string) *spanNode {
	var n *spanNode
	for _, part := range strings.Split(path, "/") {
		n = t.child(n, part)
	}
	return n
}

// SpanHandle is one open span. The zero SpanHandle (from a nil or disabled
// tracer) no-ops on Child and End.
type SpanHandle struct {
	t     *Tracer
	n     *spanNode
	start time.Time
}

// Span opens a span at path (nested path segments separated by "/"). End
// must be called to record it.
func (t *Tracer) Span(path string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	t.mu.Lock()
	n := t.node(path)
	start := t.now()
	t.mu.Unlock()
	return SpanHandle{t: t, n: n, start: start}
}

// Child opens a sub-span under s.
func (s SpanHandle) Child(name string) SpanHandle {
	if s.t == nil {
		return SpanHandle{}
	}
	s.t.mu.Lock()
	n := s.t.child(s.n, name)
	start := s.t.now()
	s.t.mu.Unlock()
	return SpanHandle{t: s.t, n: n, start: start}
}

// End closes the span, adding its wall time to the node. It returns the
// elapsed duration (zero for a no-op span).
func (s SpanHandle) End() time.Duration {
	if s.t == nil {
		return 0
	}
	s.t.mu.Lock()
	d := s.t.now().Sub(s.start)
	s.n.count++
	s.n.total += d
	s.t.mu.Unlock()
	return d
}

// Add folds a pre-measured section into the tree: total wall time over
// count calls at path. Sections timed with plain clock reads on a hot loop
// (the trainer accumulates per-step phase times and Adds them once per
// epoch) land in the same tree as live spans.
func (t *Tracer) Add(path string, total time.Duration, count int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	n := t.node(path)
	n.count += count
	n.total += total
	t.mu.Unlock()
}

// Report renders the span tree, children indented under parents in
// first-seen order: name, call count, total wall time, and mean per call.
func (t *Tracer) Report() string {
	var b strings.Builder
	t.WriteReport(&b)
	return b.String()
}

// WriteReport writes Report's output to w.
func (t *Tracer) WriteReport(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.roots) == 0 {
		fmt.Fprintln(w, "no spans recorded")
		return
	}
	fmt.Fprintf(w, "%-40s %10s %14s %14s\n", "span", "calls", "total", "mean")
	for _, n := range t.roots {
		writeNode(w, n, 0)
	}
}

func writeNode(w io.Writer, n *spanNode, depth int) {
	name := strings.Repeat("  ", depth) + n.name
	mean := time.Duration(0)
	if n.count > 0 {
		mean = n.total / time.Duration(n.count)
	}
	fmt.Fprintf(w, "%-40s %10d %14s %14s\n", name, n.count, n.total, mean)
	for _, c := range n.children {
		writeNode(w, c, depth+1)
	}
}

// Reset discards every recorded span (the clock is kept).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.roots = nil
	t.index = map[string]*spanNode{}
	t.mu.Unlock()
}
