package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Registry maps metric names to live metric instances. Names may carry a
// Prometheus-style label suffix, e.g.
//
//	serve_requests_served_total{model="prod"}
//
// which the exposition layer splits back into base name and labels; the
// registry itself treats the whole string as the key. Lookups take a
// read-lock; instrumentation sites are expected to look a metric up once
// and cache the pointer, so the registry is never on a hot path.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it if needed.
// Registering the same name as a different metric kind panics.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	r.checkFree(name, "counter")
	c = NewCounter()
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, "gauge")
	g = NewGauge()
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds if needed. An existing registration wins; its
// bounds are kept even if they differ from the ones passed here.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	r.checkFree(name, "histogram")
	h = NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// checkFree panics if name is taken by another metric kind (caller holds
// the write lock).
func (r *Registry) checkFree(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("obs: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("obs: %q already registered as a gauge", name))
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("obs: %q already registered as a histogram", name))
	}
}

// RegisterCounter installs c under name, replacing any existing counter.
// Replacement is what a hot-swapped serving engine wants: the new engine's
// fresh counters take over the name while the old engine keeps its detached
// instances until it drains.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "counter")
	r.counters[name] = c
}

// RegisterGauge installs g under name, replacing any existing gauge.
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "gauge")
	r.gauges[name] = g
}

// RegisterHistogram installs h under name, replacing any existing histogram.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "histogram")
	r.hists[name] = h
}

// Unregister removes the metric registered under name, but only when the
// registered instance is m (identity check). The check makes removal safe
// around hot swaps: an old engine tearing down after its replacement
// registered fresh metrics under the same names must not take those down.
// It reports whether a metric was removed.
func (r *Registry) Unregister(name string, m any) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch v := m.(type) {
	case *Counter:
		if r.counters[name] == v {
			delete(r.counters, name)
			return true
		}
	case *Gauge:
		if r.gauges[name] == v {
			delete(r.gauges, name)
			return true
		}
	case *Histogram:
		if r.hists[name] == v {
			delete(r.hists, name)
			return true
		}
	}
	return false
}

// Snapshot is a point-in-time view of every registered metric, with
// deterministic (sorted) iteration order via the sorted name slices.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures all registered metrics. Values are read atomically per
// metric; the set of metrics is consistent under the registry lock.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// Reset zeroes every registered metric in place (registrations and cached
// pointers stay valid). Tests use it to isolate assertions against the
// shared Default registry.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// names returns all registered metric names, sorted.
func (r *Registry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name := range r.counters {
		out = append(out, name)
	}
	for name := range r.gauges {
		out = append(out, name)
	}
	for name := range r.hists {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
