package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// splitName breaks a registry key into its Prometheus base name and the
// label body (without braces): `m{a="b"}` → ("m", `a="b"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// joinLabels merges a label body with one extra label into a brace block.
func joinLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	default:
		return "{" + labels + "," + extra + "}"
	}
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, sorted by name so output is deterministic. Histograms
// expand into cumulative `_bucket` series plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	type entry struct {
		name string // full registry key
		kind string
	}
	var entries []entry
	for name := range snap.Counters {
		entries = append(entries, entry{name, "counter"})
	}
	for name := range snap.Gauges {
		entries = append(entries, entry{name, "gauge"})
	}
	for name := range snap.Histograms {
		entries = append(entries, entry{name, "histogram"})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	lastTyped := ""
	for _, e := range entries {
		base, labels := splitName(e.name)
		if base != lastTyped {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, e.kind); err != nil {
				return err
			}
			lastTyped = base
		}
		switch e.kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s%s %d\n", base, joinLabels(labels, ""), snap.Counters[e.name]); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %g\n", base, joinLabels(labels, ""), snap.Gauges[e.name]); err != nil {
				return err
			}
		case "histogram":
			h := snap.Histograms[e.name]
			cum := int64(0)
			for i, c := range h.Counts {
				cum += c
				le := "+Inf"
				if i < len(h.Bounds) {
					le = formatFloat(h.Bounds[i])
				}
				lb := joinLabels(labels, fmt.Sprintf("le=%q", le))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, lb, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", base, joinLabels(labels, ""), h.Sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, joinLabels(labels, ""), h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders a bucket bound compactly (integers without a point).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders the registry snapshot as indented JSON. Map keys are
// sorted by encoding/json, so output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
