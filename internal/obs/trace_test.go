package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// steppingClock returns a clock that advances step per call, starting at
// base (unlike span_test's manually advanced fakeClock, every read moves
// time forward, which is what request traces need).
func steppingClock(base time.Time, step time.Duration) func() time.Time {
	var mu sync.Mutex
	cur := base
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		cur = cur.Add(step)
		return cur
	}
}

func TestTraceIDAndHeaderRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("minted trace ID is zero")
	}
	if id2 := NewTraceID(); id2 == id {
		t.Fatal("two minted trace IDs collide")
	}
	parsed, err := ParseTraceID(id.String())
	if err != nil || parsed != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", id.String(), parsed, err)
	}

	for _, hop := range []string{"", "a0", "a1"} {
		v := FormatTraceHeader(id, hop)
		gotID, gotHop, err := ParseTraceHeader(v)
		if err != nil || gotID != id || gotHop != hop {
			t.Fatalf("header %q round-tripped to (%v, %q, %v)", v, gotID, gotHop, err)
		}
	}

	for _, bad := range []string{"", "xyz", "00112233", strings.Repeat("zz", 16)} {
		if _, _, err := ParseTraceHeader(bad); err == nil {
			t.Fatalf("ParseTraceHeader(%q) accepted a malformed value", bad)
		}
	}
}

func TestTimingsRoundTrip(t *testing.T) {
	ts := []Timing{{"queue", 123}, {"compute", 4567}, {"batch", 4}, {"total", 5000}}
	v := FormatTimings(ts)
	if v != "queue=123,compute=4567,batch=4,total=5000" {
		t.Fatalf("FormatTimings = %q", v)
	}
	got := ParseTimings(v)
	if len(got) != len(ts) {
		t.Fatalf("ParseTimings returned %d entries, want %d", len(got), len(ts))
	}
	for i := range ts {
		if got[i] != ts[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], ts[i])
		}
	}
	// Malformed pairs are skipped, not fatal.
	if got := ParseTimings("queue=12,garbage,=5,x=notanum,compute=9"); len(got) != 2 {
		t.Fatalf("malformed parse = %+v, want the 2 valid pairs", got)
	}
	if ParseTimings("") != nil {
		t.Fatal("empty header should parse to nil")
	}
}

func TestClientFrom(t *testing.T) {
	cases := []struct{ header, addr, want string }{
		{"alice", "10.0.0.1:999", "alice"},
		{"", "10.0.0.1:999", "10.0.0.1"},
		{"", "nohostport", "nohostport"},
		{"", "", "unknown"},
		{strings.Repeat("x", 100), "", strings.Repeat("x", 64)},
	}
	for _, c := range cases {
		if got := ClientFrom(c.header, c.addr); got != c.want {
			t.Fatalf("ClientFrom(%q, %q) = %q, want %q", c.header, c.addr, got, c.want)
		}
	}
}

func TestRequestTraceSpansAndFinish(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	id, _ := ParseTraceID("000102030405060708090a0b0c0d0e0f")
	tr := NewRequestTrace(id, steppingClock(base, time.Millisecond))

	sp := tr.StartSpan("decode") // start at +2ms (trace start took +1ms)
	d := sp.End()                // end at +3ms
	if d != time.Millisecond {
		t.Fatalf("span duration = %v, want 1ms", d)
	}
	tr.SetClient("alice")
	tr.SetModel("prod")
	tr.SetBatch(4)
	tr.SetQueueCompute(10*time.Microsecond, 20*time.Microsecond)
	rec := tr.Finish(200, "") // +4ms

	if rec.TraceID != id.String() || rec.Client != "alice" || rec.Model != "prod" {
		t.Fatalf("record identity wrong: %+v", rec)
	}
	if rec.DurMicros != 3000 {
		t.Fatalf("dur = %dµs, want 3000", rec.DurMicros)
	}
	if len(rec.Spans) != 1 || rec.Spans[0].Name != "decode" ||
		rec.Spans[0].StartMicros != 1000 || rec.Spans[0].DurMicros != 1000 {
		t.Fatalf("spans = %+v", rec.Spans)
	}
	if rec.QueueMicros != 10 || rec.ComputeMicros != 20 || rec.Batch != 4 {
		t.Fatalf("breakdown = %+v", rec)
	}
}

// A nil RequestTrace and a nil TraceBuffer must be safe everywhere — the
// no-tracing serving path relies on it.
func TestNilTraceNoOps(t *testing.T) {
	var tr *RequestTrace
	if !tr.ID().IsZero() {
		t.Fatal("nil trace has a non-zero ID")
	}
	if !tr.Clock().IsZero() {
		t.Fatal("nil trace clock is non-zero")
	}
	tr.SetHop("a0")
	tr.SetClient("c")
	tr.SetModel("m")
	tr.SetDigest("d")
	tr.SetRetried()
	tr.SetShed()
	tr.SetBatch(1)
	tr.SetQueueCompute(time.Second, time.Second)
	tr.AddSpan("x", time.Time{}, 0)
	if d := tr.StartSpan("x").End(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	if rec := tr.Finish(200, ""); rec.TraceID != "" {
		t.Fatalf("nil finish = %+v", rec)
	}

	var b *TraceBuffer
	b.Add(TraceRecord{})
	s := b.Snapshot()
	if s.Total != 0 || len(s.Recent) != 0 {
		t.Fatalf("nil buffer snapshot = %+v", s)
	}

	var l *AccessLogger
	l.Log(TraceRecord{})
	if NewAccessLogger(nil) != nil {
		t.Fatal("NewAccessLogger(nil) should be a nil logger")
	}
}

func TestTraceBufferEviction(t *testing.T) {
	b := NewTraceBuffer(4, 2, 3)
	for i := 1; i <= 10; i++ {
		rec := TraceRecord{TraceID: fmt.Sprintf("t%d", i), Status: 200, DurMicros: int64(i * 100)}
		if i%3 == 0 {
			rec.Status = 500
		}
		b.Add(rec)
	}
	s := b.Snapshot()
	if s.Total != 10 {
		t.Fatalf("total = %d, want 10", s.Total)
	}
	// Recent: newest-first, last 4.
	wantRecent := []string{"t10", "t9", "t8", "t7"}
	if len(s.Recent) != 4 {
		t.Fatalf("recent len = %d", len(s.Recent))
	}
	for i, w := range wantRecent {
		if s.Recent[i].TraceID != w {
			t.Fatalf("recent[%d] = %s, want %s", i, s.Recent[i].TraceID, w)
		}
	}
	// Slowest: top 2 by duration, descending.
	if len(s.Slowest) != 2 || s.Slowest[0].TraceID != "t10" || s.Slowest[1].TraceID != "t9" {
		t.Fatalf("slowest = %+v", s.Slowest)
	}
	// Errors: the 500s (t3, t6, t9), newest-first, cap 3.
	wantErrs := []string{"t9", "t6", "t3"}
	if len(s.Errors) != 3 {
		t.Fatalf("errors len = %d", len(s.Errors))
	}
	for i, w := range wantErrs {
		if s.Errors[i].TraceID != w {
			t.Fatalf("errors[%d] = %s, want %s", i, s.Errors[i].TraceID, w)
		}
	}
}

// Concurrent adds and snapshots must be race-free (run under -race by
// make race-fast).
func TestTraceBufferConcurrent(t *testing.T) {
	b := NewTraceBuffer(8, 4, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Add(TraceRecord{TraceID: fmt.Sprintf("w%d-%d", w, i), Status: 200 + (i%2)*300, DurMicros: int64(i)})
				if i%10 == 0 {
					b.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if s := b.Snapshot(); s.Total != 800 || len(s.Recent) != 8 {
		t.Fatalf("after concurrent adds: total=%d recent=%d", s.Total, len(s.Recent))
	}
}
