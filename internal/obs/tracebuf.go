package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Default TraceBuffer capacities: recent ring, slowest set, error ring.
const (
	DefaultRecentTraces = 64
	DefaultSlowTraces   = 16
	DefaultErrorTraces  = 32
)

// TraceBuffer retains completed request traces in bounded storage: a ring
// of the most recent N, the slowest N seen so far, and a ring of the most
// recent error traces (status >= 400 or a synthesized error). One
// mutex-guarded append per completed request — never on the forward-pass
// hot path — keeps it cheap under load while /tracez readers take
// consistent snapshots. A nil *TraceBuffer no-ops on Add and snapshots
// empty, matching the nil-tracer contract.
type TraceBuffer struct {
	mu      sync.Mutex
	total   int64
	recent  []TraceRecord // ring, write cursor recentNext
	slow    []TraceRecord // sorted by DurMicros descending, capped
	errs    []TraceRecord // ring, write cursor errNext
	recentN int
	slowN   int
	errN    int
	recentNext,
	errNext int
	recentLen,
	errLen int
}

// NewTraceBuffer builds a buffer; non-positive capacities select the
// defaults.
func NewTraceBuffer(recentN, slowN, errN int) *TraceBuffer {
	if recentN <= 0 {
		recentN = DefaultRecentTraces
	}
	if slowN <= 0 {
		slowN = DefaultSlowTraces
	}
	if errN <= 0 {
		errN = DefaultErrorTraces
	}
	return &TraceBuffer{
		recent:  make([]TraceRecord, recentN),
		errs:    make([]TraceRecord, errN),
		recentN: recentN,
		slowN:   slowN,
		errN:    errN,
	}
}

// Add retains one completed trace, evicting the oldest recent/error
// entries and the fastest slow entry as the bounds require.
func (b *TraceBuffer) Add(rec TraceRecord) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.total++
	b.recent[b.recentNext] = rec
	b.recentNext = (b.recentNext + 1) % b.recentN
	if b.recentLen < b.recentN {
		b.recentLen++
	}
	if rec.Status >= 400 || rec.Error != "" {
		b.errs[b.errNext] = rec
		b.errNext = (b.errNext + 1) % b.errN
		if b.errLen < b.errN {
			b.errLen++
		}
	}
	if len(b.slow) < b.slowN || rec.DurMicros > b.slow[len(b.slow)-1].DurMicros {
		i := sort.Search(len(b.slow), func(i int) bool {
			return b.slow[i].DurMicros <= rec.DurMicros
		})
		b.slow = append(b.slow, TraceRecord{})
		copy(b.slow[i+1:], b.slow[i:])
		b.slow[i] = rec
		if len(b.slow) > b.slowN {
			b.slow = b.slow[:b.slowN]
		}
	}
}

// TracezSnapshot is the GET /tracez answer: recent and error traces
// newest-first, slowest traces by descending duration.
type TracezSnapshot struct {
	// Total counts every trace ever added, including evicted ones.
	Total   int64         `json:"total"`
	Recent  []TraceRecord `json:"recent"`
	Slowest []TraceRecord `json:"slowest"`
	Errors  []TraceRecord `json:"errors"`
}

// Snapshot returns a consistent copy of the buffer's contents.
func (b *TraceBuffer) Snapshot() TracezSnapshot {
	s := TracezSnapshot{Recent: []TraceRecord{}, Slowest: []TraceRecord{}, Errors: []TraceRecord{}}
	if b == nil {
		return s
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s.Total = b.total
	for i := 0; i < b.recentLen; i++ {
		s.Recent = append(s.Recent, b.recent[(b.recentNext-1-i+b.recentN)%b.recentN])
	}
	s.Slowest = append(s.Slowest, b.slow...)
	for i := 0; i < b.errLen; i++ {
		s.Errors = append(s.Errors, b.errs[(b.errNext-1-i+b.errN)%b.errN])
	}
	return s
}

// AccessLogger writes one structured JSON line per completed request: the
// TraceRecord minus its spans (trace ID, client, model, digest, status,
// batch size, queue/compute micros, retry and shed flags), so a failed or
// slow client call is greppable by trace ID against /tracez. A nil
// *AccessLogger no-ops.
type AccessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewAccessLogger wraps w; a nil writer returns a nil (no-op) logger.
func NewAccessLogger(w io.Writer) *AccessLogger {
	if w == nil {
		return nil
	}
	return &AccessLogger{w: w}
}

// Log writes rec as one JSON line. Marshal or write failures are dropped —
// logging must never fail a request.
func (l *AccessLogger) Log(rec TraceRecord) {
	if l == nil {
		return
	}
	rec.Spans = nil // access lines are flat; span detail lives in /tracez
	raw, err := json.Marshal(rec)
	if err != nil {
		return
	}
	l.mu.Lock()
	l.w.Write(append(raw, '\n'))
	l.mu.Unlock()
}
