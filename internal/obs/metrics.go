package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. All methods are lock-free
// and safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns an unregistered counter (register it with
// Registry.RegisterCounter, or use Registry.Counter to get-or-create a
// registered one).
func NewCounter() *Counter { return &Counter{} }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters are monotone; negative n is a programming error and
// panics so misuse shows up in tests rather than as silently wrong rates.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: negative Counter.Add")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// reset is used by Registry.Reset (tests).
func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a float64 that can go up and down. All methods are lock-free
// and safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns an unregistered gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) reset() { g.bits.Store(0) }

// Histogram counts observations into fixed buckets and tracks sum, count,
// and max. Bucket layout is immutable after construction; updates are
// lock-free atomics, so Observe is safe on hot paths from any goroutine.
type Histogram struct {
	// bounds are strictly increasing bucket upper bounds (inclusive: an
	// observation lands in the first bucket whose bound is >= it). A final
	// +Inf overflow bucket is implicit.
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64
	maxBits atomic.Uint64
}

// NewHistogram builds a histogram over the given strictly increasing bucket
// upper bounds. At least one bound is required.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// HistSnapshot is a consistent-enough view of a histogram: per-bucket
// (non-cumulative) counts aligned with Bounds plus a final overflow bucket.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra final entry
	// for observations above the last bound.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Max    float64   `json:"max"`
}

// Snapshot reads the histogram. Individual fields are atomic; a snapshot
// taken while writers are active may be a few observations apart between
// fields, which is fine for monitoring (tests snapshot at quiescence).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.Bounds(),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	return s
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 {
		panic("obs: LinearBuckets needs n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n bounds start, start*factor, start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs n >= 1, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
