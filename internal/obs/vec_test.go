package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterVecCardinalityCap(t *testing.T) {
	reg := NewRegistry()
	v := NewCounterVec(reg, "serve_client_requests_total", "client", 2)

	v.Get("alice").Inc()
	v.Get("bob").Inc()
	v.Get("bob").Inc()
	// Cap reached: every further distinct client shares the overflow series.
	v.Get("carol").Inc()
	v.Get("dave").Inc()
	// Known values keep resolving to their own series past the cap.
	v.Get("alice").Inc()

	snap := reg.Snapshot()
	if got := snap.Counters[`serve_client_requests_total{client="alice"}`]; got != 2 {
		t.Fatalf("alice = %d, want 2", got)
	}
	if got := snap.Counters[`serve_client_requests_total{client="bob"}`]; got != 2 {
		t.Fatalf("bob = %d, want 2", got)
	}
	if got := snap.Counters[`serve_client_requests_total{client="_other"}`]; got != 2 {
		t.Fatalf("overflow = %d, want 2 (carol+dave)", got)
	}
	if _, ok := snap.Counters[`serve_client_requests_total{client="carol"}`]; ok {
		t.Fatal("carol got her own series past the cap")
	}
}

func TestHistogramVecSharedBounds(t *testing.T) {
	reg := NewRegistry()
	v := NewHistogramVec(reg, "serve_client_latency_seconds", "client", 1, []float64{0.1, 1})
	v.Observe("alice", 0.05)
	v.Observe("bob", 0.5) // over the cap → overflow series

	snap := reg.Snapshot()
	a := snap.Histograms[`serve_client_latency_seconds{client="alice"}`]
	if a.Count != 1 || len(a.Bounds) != 2 {
		t.Fatalf("alice hist = %+v", a)
	}
	o := snap.Histograms[`serve_client_latency_seconds{client="_other"}`]
	if o.Count != 1 {
		t.Fatalf("overflow hist = %+v", o)
	}
}

// Vec lookups are concurrent with registration; run under -race by
// make race-fast.
func TestCounterVecConcurrent(t *testing.T) {
	reg := NewRegistry()
	v := NewCounterVec(reg, "c_total", "client", 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v.Get(fmt.Sprintf("client%d", i%12)).Inc()
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for name, n := range reg.Snapshot().Counters {
		_ = name
		total += n
	}
	if total != 400 {
		t.Fatalf("total across series = %d, want 400", total)
	}
}
