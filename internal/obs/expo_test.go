package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func expoRegistry() *Registry {
	r := NewRegistry()
	r.Counter("requests_total").Add(5)
	r.Counter(`served_total{model="prod"}`).Add(3)
	r.Counter(`served_total{model="canary"}`).Add(1)
	r.Gauge("queue_depth").Set(2)
	h := r.Histogram(`latency_seconds{model="prod"}`, []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.02)
	h.Observe(0.5)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := expoRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE latency_seconds histogram`,
		`latency_seconds_bucket{model="prod",le="0.001"} 1`,
		`latency_seconds_bucket{model="prod",le="0.01"} 1`,
		`latency_seconds_bucket{model="prod",le="0.1"} 2`,
		`latency_seconds_bucket{model="prod",le="+Inf"} 3`,
		fmt.Sprintf(`latency_seconds_sum{model="prod"} %g`, 0.0005+0.02+0.5),
		`latency_seconds_count{model="prod"} 3`,
		`# TYPE queue_depth gauge`,
		`queue_depth 2`,
		`# TYPE requests_total counter`,
		`requests_total 5`,
		`# TYPE served_total counter`,
		`served_total{model="canary"} 1`,
		`served_total{model="prod"} 3`,
		``,
	}, "\n")
	if got := b.String(); got != want {
		t.Fatalf("prometheus exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := expoRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	// The JSON form must round-trip into a Snapshot with identical content
	// and have sorted, deterministic keys.
	var snap Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("exposition is not valid JSON: %v\n%s", err, b.String())
	}
	if snap.Counters["requests_total"] != 5 || snap.Counters[`served_total{model="prod"}`] != 3 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if snap.Gauges["queue_depth"] != 2 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
	h := snap.Histograms[`latency_seconds{model="prod"}`]
	if h.Count != 3 || h.Max != 0.5 || len(h.Counts) != 4 {
		t.Fatalf("histogram = %+v", h)
	}

	var again strings.Builder
	if err := expoRegistry().WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != b.String() {
		t.Fatal("JSON exposition is not deterministic")
	}
}
