// Package report renders the experiment results as aligned text tables and
// ASCII charts — the repo's stand-ins for the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned-column text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	var sb strings.Builder
	for i, h := range t.Headers {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(pad(h, widths[i]))
	}
	fmt.Fprintln(w, sb.String())
	fmt.Fprintln(w, strings.Repeat("-", len(sb.String())))
	for _, r := range t.Rows {
		var rb strings.Builder
		for i, c := range r {
			if i > 0 {
				rb.WriteString("  ")
			}
			width := len(c)
			if i < len(widths) {
				width = widths[i]
			}
			rb.WriteString(pad(c, width))
		}
		fmt.Fprintln(w, rb.String())
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// BarChart renders horizontal bars for labeled values, scaled to maxWidth
// characters.
func BarChart(w io.Writer, title string, labels []string, values []float64, maxWidth int) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for i, v := range values {
		n := int(v / maxV * float64(maxWidth))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "%s |%s %.3g\n", pad(labels[i], maxL), strings.Repeat("#", n), v)
	}
	fmt.Fprintln(w)
}

// Histogram renders a vertical-bar ASCII histogram of normalized
// frequencies over the labeled range.
func Histogram(w io.Writer, title string, freq []float64, lo, hi float64, height int) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	maxF := 0.0
	for _, f := range freq {
		if f > maxF {
			maxF = f
		}
	}
	if maxF == 0 {
		maxF = 1
	}
	for row := height; row >= 1; row-- {
		thresh := float64(row) / float64(height) * maxF
		var sb strings.Builder
		for _, f := range freq {
			if f >= thresh {
				sb.WriteString("#")
			} else {
				sb.WriteString(" ")
			}
		}
		fmt.Fprintf(w, "|%s|\n", sb.String())
	}
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", len(freq)+2))
	fmt.Fprintf(w, " %-8.3g%*.3g\n\n", lo, len(freq)-7, hi)
}

// Percent formats a fraction as a percentage string.
func Percent(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }
