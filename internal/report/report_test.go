package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendersAligned(t *testing.T) {
	tb := NewTable("Title", "col1", "longer column", "c")
	tb.AddRow("a", 1.5, 42)
	tb.AddRow("longer cell", "x", "y")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "longer column") {
		t.Fatal("missing header")
	}
	if !strings.Contains(out, "1.50") {
		t.Fatal("float not formatted to 2 decimals")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, rule, 2 rows.
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5", len(lines))
	}
	// Columns align: first data column width fits "longer cell".
	if !strings.HasPrefix(lines[3], "a          ") {
		t.Fatalf("row not padded: %q", lines[3])
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "h")
	tb.AddRow("v")
	var buf bytes.Buffer
	tb.Render(&buf)
	if strings.HasPrefix(buf.String(), "\n") {
		t.Fatal("empty title should not emit a blank line")
	}
}

func TestBarChartScales(t *testing.T) {
	var buf bytes.Buffer
	BarChart(&buf, "chart", []string{"a", "bb"}, []float64{1, 2}, 10)
	out := buf.String()
	if !strings.Contains(out, "##########") {
		t.Fatal("max bar not full width")
	}
	if !strings.Contains(out, "#####") {
		t.Fatal("half bar missing")
	}
	if !strings.Contains(out, "chart") {
		t.Fatal("missing title")
	}
}

func TestBarChartAllZeros(t *testing.T) {
	var buf bytes.Buffer
	BarChart(&buf, "", []string{"a"}, []float64{0}, 10)
	if strings.Contains(buf.String(), "#") {
		t.Fatal("zero values must render empty bars")
	}
}

func TestHistogramRendering(t *testing.T) {
	var buf bytes.Buffer
	Histogram(&buf, "h", []float64{0.1, 0.5, 0.4}, 0, 3, 4)
	out := buf.String()
	if !strings.Contains(out, "#") {
		t.Fatal("histogram has no bars")
	}
	rows := strings.Count(out, "|") / 2
	if rows != 4 {
		t.Fatalf("histogram has %d bar rows, want 4", rows)
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.8875) != "88.75%" {
		t.Fatalf("Percent = %q", Percent(0.8875))
	}
}
