package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerReplica is how many virtual points each replica contributes to
// the ring. 64 keeps the per-replica key share within a few percent of
// even for small pools while the ring stays tiny (a 16-replica pool is
// 1024 points, one binary search per route).
const vnodesPerReplica = 64

// ring is an immutable consistent-hash ring over the pool's eligible
// replicas. The pool rebuilds (and atomically swaps) the ring whenever
// membership changes — a replica turning healthy, going down, starting to
// drain, or being cordoned for a rolling reload — so routing never
// consults health state on the hot path, it just walks the ring. Keys are
// model names: one model's traffic concentrates on its owner replica
// (warm caches, stable batching) and spills to the next ring nodes only
// under the bounded-load rule.
type ring struct {
	points  []ringPoint // sorted by hash
	members []*Replica  // distinct replicas on the ring
}

type ringPoint struct {
	hash uint64
	rep  *Replica
}

// buildRing constructs a ring over members. An empty member list yields an
// empty ring (candidates always nil) — the "no ready replica" state.
func buildRing(members []*Replica) *ring {
	r := &ring{members: members}
	r.points = make([]ringPoint, 0, len(members)*vnodesPerReplica)
	for _, m := range members {
		for v := 0; v < vnodesPerReplica; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", m.ID, v)),
				rep:  m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on ID so two replicas hashing onto the same point order
		// deterministically regardless of member order.
		return r.points[i].rep.ID < r.points[j].rep.ID
	})
	return r
}

// candidates returns the ring's distinct replicas in ring order starting
// at the owner of key: candidates[0] is the consistent-hash owner, the
// rest are the spill sequence bounded-load routing and retry walk. The
// slice is freshly allocated; callers may reorder it.
func (r *ring) candidates(key string) []*Replica {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]*Replica, 0, len(r.members))
	seen := make(map[*Replica]bool, len(r.members))
	for n := 0; n < len(r.points) && len(out) < len(r.members); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.rep] {
			seen[p.rep] = true
			out = append(out, p.rep)
		}
	}
	return out
}

// owner returns the consistent-hash owner of key, or nil on an empty ring.
func (r *ring) owner(key string) *Replica {
	if c := r.candidates(key); len(c) > 0 {
		return c[0]
	}
	return nil
}

// hash64 is FNV-64a pushed through a murmur3-style avalanche finalizer:
// plain FNV clusters badly on short, similar strings ("r0#1", "r0#2", …),
// which starves replicas of ring share; the finalizer spreads those
// neighboring hashes across the whole ring.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
