package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// RollingReload distributes a release digest for one model across the
// pool with zero lost client requests: for each replica in turn it
//
//  1. cordons the replica (removed from the ring — new requests route
//     around it),
//  2. waits for the replica's in-flight count to drain to zero,
//  3. tells the replica to pull the release by digest from the shared
//     artifact store (POST /v1/models/{name}:load) and hot-swap it in,
//  4. uncordons the replica (back on the ring, now serving the new
//     digest).
//
// The assignment is advertised first, so /v1/assignments and the
// /v1/models consistency check reflect the target digest for the whole
// roll. Replicas currently Down or Draining are skipped — they will pull
// the assigned digest when an operator revives them. With a single-replica
// pool the cordon step necessarily empties the ring; zero-loss reload
// needs a pool of at least two.
func (g *Gateway) RollingReload(ctx context.Context, model, digest string) error {
	if model == "" || digest == "" {
		return fmt.Errorf("gateway: rolling reload needs a model name and a digest")
	}
	g.SetAssignment(model, digest)
	reloaded := 0
	for _, rep := range g.Replicas() {
		if !rep.eligible() {
			continue
		}
		if err := g.reloadReplica(ctx, rep, model, digest); err != nil {
			return fmt.Errorf("gateway: rolling reload %s on %s: %w", short(digest), rep.ID, err)
		}
		reloaded++
	}
	if reloaded == 0 {
		return fmt.Errorf("gateway: rolling reload %s: no eligible replica", short(digest))
	}
	return nil
}

func (g *Gateway) reloadReplica(ctx context.Context, rep *Replica, model, digest string) error {
	if rep.setCordon(true) {
		g.rebuild()
	}
	defer func() {
		if rep.setCordon(false) {
			g.rebuild()
		}
	}()
	if err := g.waitDrained(ctx, rep); err != nil {
		return err
	}
	return g.pushLoad(ctx, rep, model, digest)
}

// waitDrained polls the replica's in-flight count down to zero. The
// cordon already diverted new traffic, so this terminates as fast as the
// slowest in-flight request.
func (g *Gateway) waitDrained(ctx context.Context, rep *Replica) error {
	for rep.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain wait: %w", ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// pushLoad tells one replica to pull the digest from the store and
// verifies the swapped-in entry reports exactly that digest.
func (g *Gateway) pushLoad(ctx context.Context, rep *Replica, model, digest string) error {
	body, err := json.Marshal(map[string]string{"digest": digest})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, g.opts.RequestTimeout)
	defer cancel()
	url := rep.BaseURL + "/v1/models/" + model + ":load"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.opts.Client.Do(req)
	if err != nil {
		rep.noteFailure(err)
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("load answered %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var info struct {
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(raw, &info); err != nil {
		return fmt.Errorf("bad load response: %w", err)
	}
	if info.Digest != digest {
		return fmt.Errorf("replica reports digest %s after loading %s", short(info.Digest), short(digest))
	}
	return nil
}

// short abbreviates a digest for messages.
func short(digest string) string {
	if len(digest) > 12 {
		return digest[:12]
	}
	return digest
}
