package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/modelio"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/quantize"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func testArch() nn.ResNetConfig {
	return nn.ResNetConfig{
		InC: 1, InH: 8, InW: 8, Classes: 4,
		Widths: []int{4, 8}, Blocks: []int{1, 1}, Seed: 77,
	}
}

// testModel builds a small ResNet with non-trivial weights and batch-norm
// running statistics, deterministically from seed.
func testModel(seed int64) *nn.Model {
	m := nn.NewResNet(testArch())
	rng := rand.New(rand.NewSource(seed))
	for _, p := range m.Params() {
		p.Value.RandN(rng, 0, 0.1)
	}
	m.ForwardTrain(tensor.New(8, 1, 8, 8).RandN(rng, 0, 1))
	return m
}

// writeReleased exports a test model (quantized when asked) to a released
// file under t.TempDir and returns its path.
func writeReleased(t testing.TB, seed int64, quantized bool) string {
	t.Helper()
	m := testModel(seed)
	var applied *quantize.Applied
	if quantized {
		applied = quantize.QuantizeModel(m, quantize.WeightedEntropy{}, 8)
	}
	rm, err := modelio.Export(m, testArch(), applied)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := modelio.Save(path, rm); err != nil {
		t.Fatal(err)
	}
	return path
}

// publishReleased exports a test model into the store and returns its
// digest.
func publishReleased(t testing.TB, store *artifact.Store, seed int64, quantized bool) string {
	t.Helper()
	digest, err := serve.PublishReleaseFile(store, writeReleased(t, seed, quantized))
	if err != nil {
		t.Fatal(err)
	}
	return digest
}

// testStore opens a fresh artifact store under t.TempDir.
func testStore(t testing.TB) *artifact.Store {
	t.Helper()
	store, err := artifact.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// testInputs generates n deterministic flattened inputs.
func testInputs(n, length int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		in := make([]float64, length)
		for j := range in {
			in[j] = rng.NormFloat64()
		}
		out[i] = in
	}
	return out
}

// testReplica is one in-process dacserve replica: a serve registry behind
// a real HTTP listener, marked ready like dacserve does after startup
// loads.
type testReplica struct {
	id  string
	reg *serve.Registry
	srv *serve.Server
	ts  *httptest.Server
}

// startReplica spins up an in-process replica wired to the store. Each
// replica gets its own obs registry so fleet tests never cross metric
// streams.
func startReplica(t testing.TB, id string, store *artifact.Store) *testReplica {
	t.Helper()
	reg := serve.NewRegistry(serve.Options{
		MaxBatch:   4,
		QueueDepth: 64,
		FlushEvery: 200 * time.Microsecond,
		Threads:    1,
		Obs:        obs.NewRegistry(),
		Store:      store,
	})
	srv := serve.NewServer(reg, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	srv.SetReady()
	return &testReplica{id: id, reg: reg, srv: srv, ts: ts}
}

// testGateway builds a gateway over the given replicas with the
// background prober disabled (tests drive ProbeAll directly) and a fresh
// obs registry, and runs one initial probe pass.
func testGateway(t testing.TB, opts Options, replicas ...*testReplica) *Gateway {
	t.Helper()
	opts.ProbeInterval = -1
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = -1
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	g := New(opts)
	t.Cleanup(g.Close)
	for _, r := range replicas {
		if _, err := g.AddReplica(r.id, r.ts.URL); err != nil {
			t.Fatal(err)
		}
	}
	g.ProbeAll(context.Background())
	return g
}

// gatewayServer exposes g over httptest.
func gatewayServer(t testing.TB, g *Gateway) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer(g).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// jsonBody marshals v into a request body reader.
func jsonBody(t testing.TB, v any) *bytes.Reader {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(raw)
}

// predictBody builds a predict request body for one input.
func predictBody(t testing.TB, model string, input []float64) []byte {
	t.Helper()
	raw, err := json.Marshal(map[string]any{"model": model, "input": input})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// postPredict sends one predict request and decodes the JSON answer.
func postPredict(t testing.TB, url string, body []byte) (int, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Post(url+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode predict response: %v", err)
	}
	return resp.StatusCode, out
}

// getJSON fetches a URL and decodes the JSON answer.
func getJSON(t testing.TB, url string) (int, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp.StatusCode, out
}

// referenceModel re-imports a released file on a serial context, the
// offline twin every routed prediction is compared against.
func referenceModel(t testing.TB, path string) *nn.Model {
	t.Helper()
	rm, err := modelio.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := modelio.Import(rm)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
