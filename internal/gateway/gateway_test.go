package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/serve"
)

// Predictions routed through the gateway must be bit-identical to a
// direct single-replica dacserve answer — the gateway forwards bodies
// verbatim, and every replica serves byte-identical weights, so nothing
// on the fleet path may perturb a logit.
func TestGatewayPredictBitIdenticalToDirect(t *testing.T) {
	store := testStore(t)
	path := writeReleased(t, 60, true)
	digest, err := serve.PublishReleaseFile(store, path)
	if err != nil {
		t.Fatal(err)
	}
	r0, r1 := startReplica(t, "r0", store), startReplica(t, "r1", store)
	for _, rep := range []*testReplica{r0, r1} {
		if _, err := rep.reg.LoadDigest("prod", digest, serve.ModeAuto); err != nil {
			t.Fatal(err)
		}
	}
	g := testGateway(t, Options{}, r0, r1)
	ts := gatewayServer(t, g)

	ref := referenceModel(t, path)
	inputs := testInputs(5, ref.InputLen(), 61)
	want, err := ref.EvalBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range inputs {
		status, body := postPredict(t, ts.URL, predictBody(t, "prod", in))
		if status != http.StatusOK {
			t.Fatalf("predict %d status %d: %s", i, status, body["error"])
		}
		var preds []serve.Prediction
		if err := json.Unmarshal(body["predictions"], &preds); err != nil {
			t.Fatal(err)
		}
		if len(preds) != 1 {
			t.Fatalf("predict %d: %d predictions", i, len(preds))
		}
		for j, v := range preds[0].Logits {
			if v != want[i][j] {
				t.Fatalf("sample %d logit %d: routed %v != offline %v", i, j, v, want[i][j])
			}
		}
		var gotDigest string
		if err := json.Unmarshal(body["digest"], &gotDigest); err != nil {
			t.Fatal(err)
		}
		if gotDigest != digest {
			t.Fatalf("routed answer digest %s != published %s", short(gotDigest), short(digest))
		}
	}
}

// pickStubModel finds a model name whose ring owner is the given replica,
// so retry/shed tests route deterministically.
func pickStubModel(t testing.TB, g *Gateway, owner *Replica) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("model-%d", i)
		if g.currentRing().owner(name) == owner {
			return name
		}
	}
	t.Fatal("no model name hashes onto the wanted owner")
	return ""
}

// A 429 from the owner (replica backpressure) must be retried once on the
// next ring candidate instead of surfacing to the client.
func TestGatewayRetryOn429(t *testing.T) {
	for _, failStatus := range []int{http.StatusTooManyRequests, http.StatusInternalServerError} {
		t.Run(fmt.Sprintf("status=%d", failStatus), func(t *testing.T) {
			overloaded, healthy := newStub(t), newStub(t)
			overloaded.predictStatus.Store(int32(failStatus))
			g, reps := stubGateway(t, Options{}, overloaded, healthy)
			g.ProbeAll(context.Background())
			model := pickStubModel(t, g, reps[0])
			ts := gatewayServer(t, g)

			status, body := postPredict(t, ts.URL, []byte(fmt.Sprintf(`{"model":%q,"input":[1]}`, model)))
			if status != http.StatusOK {
				t.Fatalf("status %d, want 200 after retry (%s)", status, body["error"])
			}
			if got := g.retries.Value(); got != 1 {
				t.Fatalf("retries = %d, want 1", got)
			}
			if overloaded.predicts.Load() != 1 || healthy.predicts.Load() != 1 {
				t.Fatalf("attempt split %d/%d, want 1/1",
					overloaded.predicts.Load(), healthy.predicts.Load())
			}
			// The failing replica answered HTTP (it is alive, just failing);
			// backpressure must not mark it unhealthy.
			if reps[0].State() != StateHealthy {
				t.Fatalf("429/5xx marked replica %v", reps[0].State())
			}
		})
	}
}

// With every candidate at the hard in-flight cap the gateway sheds with
// 503 instead of queueing without bound.
func TestGatewayShedsWhenSaturated(t *testing.T) {
	s0, s1 := newStub(t), newStub(t)
	g, reps := stubGateway(t, Options{MaxInflight: 1}, s0, s1)
	g.ProbeAll(context.Background())
	ts := gatewayServer(t, g)

	// Pin both replicas at the cap.
	reps[0].inflight.Add(1)
	reps[1].inflight.Add(1)
	status, body := postPredict(t, ts.URL, []byte(`{"model":"m","input":[1]}`))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 shed (%s)", status, body["error"])
	}
	if got := g.sheds.Value(); got != 1 {
		t.Fatalf("sheds = %d, want 1", got)
	}
	// Capacity back → requests flow again.
	reps[0].inflight.Add(-1)
	reps[1].inflight.Add(-1)
	if status, body := postPredict(t, ts.URL, []byte(`{"model":"m","input":[1]}`)); status != http.StatusOK {
		t.Fatalf("status %d after capacity returned (%s)", status, body["error"])
	}
}

// An empty ring (no replica has ever probed ready) answers 503 and counts
// no_replica, and /readyz reflects it.
func TestGatewayNoReadyReplica(t *testing.T) {
	stub := newStub(t)
	stub.ready.Store(false)
	g, _ := stubGateway(t, Options{}, stub)
	g.ProbeAll(context.Background())
	ts := gatewayServer(t, g)

	if status, _ := getJSON(t, ts.URL+"/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz status %d, want 503", status)
	}
	status, body := postPredict(t, ts.URL, []byte(`{"model":"m","input":[1]}`))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("predict status %d, want 503 (%s)", status, body["error"])
	}
	if g.noReplica.Value() != 1 {
		t.Fatalf("no_replica = %d, want 1", g.noReplica.Value())
	}

	stub.ready.Store(true)
	g.ProbeAll(context.Background())
	if status, _ := getJSON(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("readyz status %d after replica became ready", status)
	}
}

// A replica whose serve.Server starts draining is ejected on the next
// probe pass — before its process exits — and traffic continues on the
// rest of the pool.
func TestGatewayDrainEjectsReplicaBeforeExit(t *testing.T) {
	store := testStore(t)
	digest := publishReleased(t, store, 62, false)
	r0, r1 := startReplica(t, "r0", store), startReplica(t, "r1", store)
	for _, rep := range []*testReplica{r0, r1} {
		if _, err := rep.reg.LoadDigest("prod", digest, serve.ModeAuto); err != nil {
			t.Fatal(err)
		}
	}
	g := testGateway(t, Options{}, r0, r1)
	ts := gatewayServer(t, g)
	in := testInputs(1, r0.reg.List()[0].Model().InputLen(), 63)[0]

	// The dacserve shutdown sequence: StartDrain first, listener up until
	// the grace period passes. The gateway's next probe ejects it.
	r0.srv.StartDrain()
	gen := g.Generation()
	if n := g.ProbeAll(context.Background()); n != 1 {
		t.Fatalf("eligible = %d after drain probe, want 1", n)
	}
	if g.Generation() == gen {
		t.Fatal("drain ejection did not bump ring generation")
	}
	for i := 0; i < 8; i++ {
		if status, body := postPredict(t, ts.URL, predictBody(t, "prod", in)); status != http.StatusOK {
			t.Fatalf("request %d during drain: status %d (%s)", i, status, body["error"])
		}
	}
	// Every routed request must have landed on the surviving replica.
	if served := r1.reg.Stats()["prod"].Served; served < 8 {
		t.Fatalf("survivor served %d, want >= 8", served)
	}
}

// A replica that dies mid-traffic (transport error, no probe yet) is
// marked down passively after FailAfter failed attempts; the requests
// that hit it retry onto the survivor.
func TestGatewayPassiveFailureMarksDown(t *testing.T) {
	dead, live := newStub(t), newStub(t)
	g, reps := stubGateway(t, Options{FailAfter: 1}, dead, live)
	g.ProbeAll(context.Background())
	model := pickStubModel(t, g, reps[0])
	ts := gatewayServer(t, g)

	dead.ts.Close()
	status, body := postPredict(t, ts.URL, []byte(fmt.Sprintf(`{"model":%q,"input":[1]}`, model)))
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200 via retry (%s)", status, body["error"])
	}
	if reps[0].State() != StateDown {
		t.Fatalf("dead replica state %v, want down (passive)", reps[0].State())
	}
	// Off the ring now: follow-up traffic for the same model routes
	// straight to the survivor with no second attempt.
	before := g.retries.Value()
	if status, _ := postPredict(t, ts.URL, []byte(fmt.Sprintf(`{"model":%q,"input":[1]}`, model))); status != http.StatusOK {
		t.Fatalf("follow-up status %d", status)
	}
	if g.retries.Value() != before {
		t.Fatal("routing to a passively-downed replica still retried")
	}
}

// /v1/models aggregates the fleet and verdicts digest consistency.
func TestGatewayModelsAggregation(t *testing.T) {
	store := testStore(t)
	dA := publishReleased(t, store, 70, true)
	dB := publishReleased(t, store, 71, true)
	r0, r1 := startReplica(t, "r0", store), startReplica(t, "r1", store)
	for _, rep := range []*testReplica{r0, r1} {
		if _, err := rep.reg.LoadDigest("prod", dA, serve.ModeAuto); err != nil {
			t.Fatal(err)
		}
	}
	g := testGateway(t, Options{}, r0, r1)
	g.SetAssignment("prod", dA)
	ts := gatewayServer(t, g)

	status, body := getJSON(t, ts.URL+"/v1/models")
	if status != http.StatusOK {
		t.Fatalf("models status %d", status)
	}
	var models []fleetModel
	if err := json.Unmarshal(body["models"], &models); err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || !models[0].Consistent || models[0].Digest != dA || !models[0].MatchesAssignment {
		t.Fatalf("consistent fleet reported %+v", models)
	}
	if string(body["consistent"]) != "true" {
		t.Fatal("fleet-level consistent flag false on a consistent fleet")
	}

	// Split the fleet: one replica hot-swaps to a different release.
	if _, err := r1.reg.LoadDigest("prod", dB, serve.ModeAuto); err != nil {
		t.Fatal(err)
	}
	_, body = getJSON(t, ts.URL+"/v1/models")
	// Decode into a fresh slice: "digest" is omitempty, so reusing the
	// first decode's slice would leak its stale field through.
	var split []fleetModel
	if err := json.Unmarshal(body["models"], &split); err != nil {
		t.Fatal(err)
	}
	if len(split) != 1 || split[0].Consistent || split[0].Digest != "" {
		t.Fatalf("split fleet reported %+v", split)
	}
	if split[0].PerReplica["r0"] != dA || split[0].PerReplica["r1"] != dB {
		t.Fatalf("per-replica digests %+v", split[0].PerReplica)
	}
	if string(body["consistent"]) != "false" {
		t.Fatal("fleet-level consistent flag true on a split fleet")
	}
}

// Rolling reload: 4 replicas, live traffic throughout, zero failed client
// requests, and the whole fleet on the new digest afterwards. This is the
// zero-loss acceptance path: cordon → drain → pull-by-digest → uncordon,
// one replica at a time.
func TestGatewayRollingReloadZeroLoss(t *testing.T) {
	store := testStore(t)
	pathA := writeReleased(t, 80, true)
	dA, err := serve.PublishReleaseFile(store, pathA)
	if err != nil {
		t.Fatal(err)
	}
	dB := publishReleased(t, store, 81, true)
	if dA == dB {
		t.Fatal("test releases collide")
	}
	var replicas []*testReplica
	for i := 0; i < 4; i++ {
		rep := startReplica(t, fmt.Sprintf("r%d", i), store)
		if _, err := rep.reg.LoadDigest("prod", dA, serve.ModeAuto); err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, rep)
	}
	g := testGateway(t, Options{}, replicas...)
	ts := gatewayServer(t, g)
	in := testInputs(1, referenceModel(t, pathA).InputLen(), 82)[0]
	body := predictBody(t, "prod", in)

	// Hammer from 4 clients for the whole duration of the roll.
	var stop atomic.Bool
	var failures, total atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				status, resp := postPredict(t, ts.URL, body)
				total.Add(1)
				if status != http.StatusOK {
					failures.Add(1)
					t.Errorf("client request failed: %d (%s)", status, resp["error"])
					return
				}
				var gotDigest string
				if err := json.Unmarshal(resp["digest"], &gotDigest); err != nil {
					t.Error(err)
					return
				}
				if gotDigest != dA && gotDigest != dB {
					t.Errorf("answer digest %s is neither release", short(gotDigest))
					return
				}
			}
		}()
	}

	if err := g.RollingReload(context.Background(), "prod", dB); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d/%d client requests failed during the roll", failures.Load(), total.Load())
	}
	if total.Load() == 0 {
		t.Fatal("no client traffic overlapped the roll")
	}

	// The whole fleet now serves the new digest, consistently.
	_, resp := getJSON(t, ts.URL+"/v1/models")
	var models []fleetModel
	if err := json.Unmarshal(resp["models"], &models); err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || !models[0].Consistent || models[0].Digest != dB || !models[0].MatchesAssignment {
		t.Fatalf("post-roll fleet %+v, want consistent on %s", models, short(dB))
	}
	for _, rep := range replicas {
		en, ok := rep.reg.Get("prod")
		if !ok || en.Digest != dB {
			t.Fatalf("replica still serving old digest")
		}
		if rep.srv == nil {
			t.Fatal("unreachable")
		}
	}
	if got := g.Assignments()["prod"]; got != dB {
		t.Fatalf("assignment %s, want %s", short(got), short(dB))
	}
}

// The admin endpoint drives the same rolling reload over HTTP.
func TestGatewayAdminReloadEndpoint(t *testing.T) {
	store := testStore(t)
	dA := publishReleased(t, store, 84, false)
	dB := publishReleased(t, store, 85, false)
	r0, r1 := startReplica(t, "r0", store), startReplica(t, "r1", store)
	for _, rep := range []*testReplica{r0, r1} {
		if _, err := rep.reg.LoadDigest("prod", dA, serve.ModeAuto); err != nil {
			t.Fatal(err)
		}
	}
	g := testGateway(t, Options{}, r0, r1)
	ts := gatewayServer(t, g)

	resp, err := http.Post(ts.URL+"/v1/admin/reload", "application/json",
		jsonBody(t, reloadRequest{Model: "prod", Digest: dB}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin reload status %d", resp.StatusCode)
	}
	for _, rep := range []*testReplica{r0, r1} {
		if en, ok := rep.reg.Get("prod"); !ok || en.Digest != dB {
			t.Fatal("admin reload did not distribute the digest")
		}
	}
	// Unknown digest → error surfaced, assignment rolled forward but fleet
	// unchanged.
	resp2, err := http.Post(ts.URL+"/v1/admin/reload", "application/json",
		jsonBody(t, reloadRequest{Model: "prod", Digest: "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff"}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadGateway {
		t.Fatalf("bad-digest reload status %d, want 502", resp2.StatusCode)
	}
}

// The serve-style path form of the reload op: the model name rides in the
// path, only the digest in the body.
func TestGatewayModelOpReloadEndpoint(t *testing.T) {
	store := testStore(t)
	dA := publishReleased(t, store, 86, true)
	dB := publishReleased(t, store, 87, true)
	r0 := startReplica(t, "r0", store)
	if _, err := r0.reg.LoadDigest("prod", dA, serve.ModeAuto); err != nil {
		t.Fatal(err)
	}
	g := testGateway(t, Options{}, r0)
	ts := gatewayServer(t, g)

	resp, err := http.Post(ts.URL+"/v1/models/prod:reload", "application/json",
		jsonBody(t, reloadRequest{Digest: dB}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("path reload status %d", resp.StatusCode)
	}
	if en, ok := r0.reg.Get("prod"); !ok || en.Digest != dB {
		t.Fatal("path reload did not distribute the digest")
	}
	// Unknown op and missing op are 404s, not silent reloads.
	for _, path := range []string{"/v1/models/prod:audit", "/v1/models/prod"} {
		resp, err := http.Post(ts.URL+path, "application/json",
			jsonBody(t, reloadRequest{Digest: dB}))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status %d, want 404", path, resp.StatusCode)
		}
	}
}
