package gateway

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/obs"
)

// fakeReplica is a scripted replica for propagation tests: always healthy,
// answers /v1/predict through the shared script so the test controls which
// attempt fails, and records every predict's trace/client headers.
type fakeReplica struct {
	ts *httptest.Server
}

// attemptLog records the headers each proxied attempt arrived with, across
// all fake replicas, in arrival order.
type attemptLog struct {
	mu      sync.Mutex
	traces  []string
	clients []string
	n       int
}

// startFakeReplica builds a replica whose predict answer comes from
// script(n) for the n-th predict across the pool (shared log).
func startFakeReplica(t *testing.T, log *attemptLog, script func(n int, w http.ResponseWriter)) *fakeReplica {
	t.Helper()
	mux := http.NewServeMux()
	ok := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}`))
	}
	mux.HandleFunc("GET /healthz", ok)
	mux.HandleFunc("GET /readyz", ok)
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		log.mu.Lock()
		log.traces = append(log.traces, r.Header.Get(obs.HeaderTrace))
		log.clients = append(log.clients, r.Header.Get(obs.HeaderClient))
		n := log.n
		log.n++
		log.mu.Unlock()
		script(n, w)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return &fakeReplica{ts: ts}
}

func spanByName(spans []obs.SpanRecord, name string) (obs.SpanRecord, bool) {
	for _, sp := range spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return obs.SpanRecord{}, false
}

// One trace ID must survive a gateway retry: the failed first attempt and
// the successful second both carry it (with distinct hop labels a0/a1), the
// retried replica's X-Dac-Server-Timing lands on the attempt1 spans, and
// the gateway's /tracez holds a single record for the request.
func TestTracePropagationAcrossRetry(t *testing.T) {
	log := &attemptLog{}
	script := func(n int, w http.ResponseWriter) {
		if n == 0 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(obs.HeaderServerTiming, "queue=111,compute=222,batch=3,total=333")
		w.Write([]byte(`{"answer":42}`))
	}
	r0 := startFakeReplica(t, log, script)
	r1 := startFakeReplica(t, log, script)

	g := New(Options{ProbeInterval: -1, RetryBackoff: -1, Obs: obs.NewRegistry()})
	t.Cleanup(g.Close)
	for id, fr := range map[string]*fakeReplica{"r0": r0, "r1": r1} {
		if _, err := g.AddReplica(id, fr.ts.URL); err != nil {
			t.Fatal(err)
		}
	}
	if n := g.ProbeAll(context.Background()); n != 2 {
		t.Fatalf("eligible = %d, want 2", n)
	}
	ts := httptest.NewServer(NewServer(g).Handler())
	t.Cleanup(ts.Close)

	const traceID = "0f0e0d0c0b0a09080706050403020100"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", jsonBody(t, map[string]any{"model": "prod", "input": []float64{1}}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.HeaderTrace, traceID)
	req.Header.Set(obs.HeaderClient, "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(obs.HeaderTrace); got != traceID {
		t.Fatalf("response trace header = %q, want %q", got, traceID)
	}
	if got := resp.Header.Get(obs.HeaderServerTiming); got != "queue=111,compute=222,batch=3,total=333" {
		t.Fatalf("relayed timing header = %q", got)
	}

	// Both attempts carried the same trace ID with distinct hop labels, and
	// the client identity was forwarded to each replica.
	log.mu.Lock()
	traces, clients := append([]string(nil), log.traces...), append([]string(nil), log.clients...)
	log.mu.Unlock()
	if len(traces) != 2 {
		t.Fatalf("replica saw %d attempts, want 2 (%v)", len(traces), traces)
	}
	if traces[0] != traceID+";hop=a0" || traces[1] != traceID+";hop=a1" {
		t.Fatalf("attempt trace headers = %v", traces)
	}
	if clients[0] != "alice" || clients[1] != "alice" {
		t.Fatalf("attempt client headers = %v", clients)
	}

	// One gateway trace: retried, with attempt spans for both tries and the
	// retried replica's breakdown attributed to attempt1.
	snap := g.Traces().Snapshot()
	if snap.Total != 1 || len(snap.Recent) != 1 {
		t.Fatalf("tracez = %+v", snap)
	}
	rec := snap.Recent[0]
	if rec.TraceID != traceID || !rec.Retried || rec.Model != "prod" || rec.Client != "alice" {
		t.Fatalf("record = %+v", rec)
	}
	if rec.QueueMicros != 111 || rec.ComputeMicros != 222 || rec.Batch != 3 {
		t.Fatalf("record breakdown = %+v", rec)
	}
	for _, name := range []string{"decode", "route", "attempt0", "attempt1"} {
		if _, ok := spanByName(rec.Spans, name); !ok {
			t.Fatalf("span %q missing: %+v", name, rec.Spans)
		}
	}
	a0, _ := spanByName(rec.Spans, "attempt0")
	a1, _ := spanByName(rec.Spans, "attempt1")
	if a0.Detail == "" || a1.Detail == "" || a0.Detail == a1.Detail {
		t.Fatalf("attempt spans should name distinct replicas: %+v %+v", a0, a1)
	}
	if _, ok := spanByName(rec.Spans, "attempt0/queue"); ok {
		t.Fatalf("failed attempt got a queue span: %+v", rec.Spans)
	}
	q1, ok := spanByName(rec.Spans, "attempt1/queue")
	if !ok || q1.DurMicros != 111 {
		t.Fatalf("attempt1/queue = %+v (ok=%v)", q1, ok)
	}
	c1, ok := spanByName(rec.Spans, "attempt1/compute")
	if !ok || c1.DurMicros != 222 || c1.StartMicros != q1.StartMicros+111 {
		t.Fatalf("attempt1/compute = %+v (queue %+v)", c1, q1)
	}

	// Per-client accounting followed the request.
	counters := g.opts.Obs.Snapshot().Counters
	if got := counters[`gateway_client_requests_total{client="alice"}`]; got != 1 {
		t.Fatalf("client counter = %d (%v)", got, counters)
	}
}

// A gateway-synthesized predict failure (no ready replica) still mints a
// trace: the error body carries the trace ID and the record lands in the
// error ring.
func TestGatewayErrorBodyCarriesTraceID(t *testing.T) {
	g := New(Options{ProbeInterval: -1, RetryBackoff: -1, Obs: obs.NewRegistry()})
	t.Cleanup(g.Close)
	ts := httptest.NewServer(NewServer(g).Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		jsonBody(t, map[string]any{"model": "prod", "input": []float64{1}}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	hdr := resp.Header.Get(obs.HeaderTrace)
	if out["trace_id"] == "" || out["trace_id"] != hdr {
		t.Fatalf("trace_id body %q vs header %q", out["trace_id"], hdr)
	}
	snap := g.Traces().Snapshot()
	if snap.Total != 1 || len(snap.Errors) != 1 || snap.Errors[0].TraceID != hdr {
		t.Fatalf("tracez after error = %+v", snap)
	}
}
