package gateway

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// stubReplica is a controllable fake dacserve: health and readiness are
// knobs, predict answers a fixed status.
type stubReplica struct {
	healthy       atomic.Bool
	ready         atomic.Bool
	predictStatus atomic.Int32
	predicts      atomic.Int64
	ts            *httptest.Server
}

func newStub(t testing.TB) *stubReplica {
	t.Helper()
	s := &stubReplica{}
	s.healthy.Store(true)
	s.ready.Store(true)
	s.predictStatus.Store(http.StatusOK)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !s.healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ready"}`))
	})
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		s.predicts.Add(1)
		status := int(s.predictStatus.Load())
		w.WriteHeader(status)
		if status == http.StatusOK {
			w.Write([]byte(`{"model":"stub","digest":"deadbeef","predictions":[]}`))
		}
	})
	s.ts = httptest.NewServer(mux)
	t.Cleanup(s.ts.Close)
	return s
}

// stubGateway wires stubs into a gateway with manual probing.
func stubGateway(t testing.TB, opts Options, stubs ...*stubReplica) (*Gateway, []*Replica) {
	t.Helper()
	opts.ProbeInterval = -1
	opts.RetryBackoff = -1
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	g := New(opts)
	t.Cleanup(g.Close)
	reps := make([]*Replica, len(stubs))
	for i, st := range stubs {
		var err error
		reps[i], err = g.AddReplica("stub"+string(rune('0'+i)), st.ts.URL)
		if err != nil {
			t.Fatal(err)
		}
	}
	return g, reps
}

func TestHealthFSMLifecycle(t *testing.T) {
	stub := newStub(t)
	g, reps := stubGateway(t, Options{FailAfter: 2, ReviveAfter: 2}, stub)
	rep := reps[0]
	ctx := context.Background()

	// Unknown → Healthy on the first ready probe.
	if rep.State() != StateUnknown {
		t.Fatalf("initial state %v, want unknown", rep.State())
	}
	gen := g.Generation()
	if n := g.ProbeAll(ctx); n != 1 || rep.State() != StateHealthy {
		t.Fatalf("after ready probe: eligible=%d state=%v", n, rep.State())
	}
	if g.Generation() == gen {
		t.Fatal("becoming healthy did not bump the ring generation")
	}

	// Healthy → Draining immediately on a readyz 503 (no threshold).
	stub.ready.Store(false)
	if n := g.ProbeAll(ctx); n != 0 || rep.State() != StateDraining {
		t.Fatalf("after drain probe: eligible=%d state=%v", n, rep.State())
	}
	if got := g.currentRing().candidates("m"); got != nil {
		t.Fatalf("draining replica still on ring: %v", got)
	}

	// Draining → Healthy the moment readiness returns.
	stub.ready.Store(true)
	if n := g.ProbeAll(ctx); n != 1 || rep.State() != StateHealthy {
		t.Fatalf("after recovery probe: eligible=%d state=%v", n, rep.State())
	}

	// One failed probe is tolerated (FailAfter=2)...
	stub.healthy.Store(false)
	if g.ProbeAll(ctx); rep.State() != StateHealthy {
		t.Fatalf("one failure already changed state to %v", rep.State())
	}
	// ...the second marks it Down.
	if n := g.ProbeAll(ctx); n != 0 || rep.State() != StateDown {
		t.Fatalf("after second failure: eligible=%d state=%v", n, rep.State())
	}

	// Revival needs ReviveAfter=2 consecutive ready probes.
	stub.healthy.Store(true)
	if g.ProbeAll(ctx); rep.State() != StateHealthy && rep.State() != StateDown {
		t.Fatalf("unexpected state %v mid-revival", rep.State())
	}
	if rep.State() == StateHealthy {
		t.Fatal("one ready probe revived a Down replica (want two)")
	}
	if n := g.ProbeAll(ctx); n != 1 || rep.State() != StateHealthy {
		t.Fatalf("after revival probes: eligible=%d state=%v", n, rep.State())
	}
}

// A failure during revival resets the consecutive-success count: flapping
// replicas stay off the ring.
func TestHealthFSMFlapStaysDown(t *testing.T) {
	stub := newStub(t)
	g, reps := stubGateway(t, Options{FailAfter: 1, ReviveAfter: 2}, stub)
	rep := reps[0]
	ctx := context.Background()

	stub.healthy.Store(false)
	g.ProbeAll(ctx)
	if rep.State() != StateDown {
		t.Fatalf("state %v, want down", rep.State())
	}
	for i := 0; i < 3; i++ {
		stub.healthy.Store(true)
		g.ProbeAll(ctx) // one success...
		stub.healthy.Store(false)
		g.ProbeAll(ctx) // ...then a failure resets the streak
		if rep.State() != StateDown {
			t.Fatalf("flap %d: state %v, want down", i, rep.State())
		}
	}
}

// A dead listener (transport error, not an HTTP status) must count as a
// probe failure too.
func TestHealthProbeTransportError(t *testing.T) {
	stub := newStub(t)
	g, reps := stubGateway(t, Options{FailAfter: 1}, stub)
	ctx := context.Background()
	g.ProbeAll(ctx)
	if reps[0].State() != StateHealthy {
		t.Fatalf("state %v, want healthy", reps[0].State())
	}
	stub.ts.Close()
	if n := g.ProbeAll(ctx); n != 0 || reps[0].State() != StateDown {
		t.Fatalf("after dead-listener probe: eligible=%d state=%v", n, reps[0].State())
	}
}
