package gateway

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// State is a replica's position in the health state machine.
//
//	            ok probe                    FailAfter consecutive failures
//	Unknown ─────────────▶ Healthy ────────────────────────────▶ Down
//	                        ▲   │ readyz 503                      │
//	           ok probe     │   ▼                                 │
//	                        └─ Draining ◀── (readyz 503 from any) │
//	                        ▲                                     │
//	                        └──── ReviveAfter consecutive oks ────┘
//
// Healthy is the only state eligible for the ring. Draining is entered
// immediately on a ready-probe 503 (the replica's own declaration is
// authoritative — no threshold), and left the moment a probe sees ready
// again. Down requires FailAfter consecutive failures so one lost probe
// does not eject a replica, and ReviveAfter consecutive successes so a
// flapping replica does not bounce in and out of the ring.
type State int32

const (
	// StateUnknown is the initial state before any probe has answered.
	StateUnknown State = iota
	// StateHealthy replicas are on the ring and receive traffic.
	StateHealthy
	// StateDraining replicas answered /readyz with 503: alive, finishing
	// in-flight work, and about to go away. Off the ring, not counted as
	// failed.
	StateDraining
	// StateDown replicas failed FailAfter consecutive probes (active or
	// passive). Off the ring; probes keep running so they can revive.
	StateDown
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

// probe outcomes feeding the state machine.
type outcome int

const (
	outcomeReady    outcome = iota // healthz ok, readyz ok
	outcomeDraining                // healthz ok, readyz 503
	outcomeFail                    // probe failed, or a passive transport failure
)

// Replica is one dacserve process behind the gateway: its address, health
// state, in-flight request count (the bounded-load signal), and per-replica
// serving counters.
type Replica struct {
	// ID is the replica's stable name — the consistent-hash ring hashes it,
	// so the same ID always lands on the same ring points.
	ID string
	// BaseURL is the replica's HTTP root, e.g. "http://10.0.0.3:8080".
	BaseURL string

	gw *Gateway

	// inflight counts requests currently proxied to this replica; the
	// bounded-load rule and the rolling-reload drain wait both read it.
	inflight atomic.Int64

	mu       sync.Mutex
	state    State
	cordoned bool
	fails    int // consecutive probe/passive failures
	oks      int // consecutive ready probes
	lastErr  string
	probeMS  float64 // last probe round-trip, milliseconds

	// requests/errors/sheds are per-replica obs counters (fresh instances,
	// registered under replica-labeled names on the gateway's registry).
	requests *obs.Counter
	errors   *obs.Counter
	probeLat *obs.Histogram
}

// State returns the replica's current health state.
func (r *Replica) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Inflight returns the number of requests currently proxied to the replica.
func (r *Replica) Inflight() int { return int(r.inflight.Load()) }

// eligible reports whether the replica belongs on the ring.
func (r *Replica) eligible() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state == StateHealthy && !r.cordoned
}

// setCordon marks the replica administratively off the ring (rolling
// reload) without touching its health state, and reports whether the flag
// changed.
func (r *Replica) setCordon(on bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cordoned == on {
		return false
	}
	r.cordoned = on
	return true
}

// observe feeds one probe outcome (or passive failure) into the state
// machine and reports whether ring eligibility changed.
func (r *Replica) observe(o outcome, errMsg string, failAfter, reviveAfter int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	was := r.state == StateHealthy && !r.cordoned
	switch o {
	case outcomeFail:
		r.oks = 0
		r.fails++
		r.lastErr = errMsg
		if r.fails >= failAfter {
			r.state = StateDown
		}
	case outcomeDraining:
		r.fails, r.oks = 0, 0
		r.lastErr = ""
		r.state = StateDraining
	case outcomeReady:
		need := 1
		if r.state == StateDown {
			need = reviveAfter
		}
		r.fails = 0
		r.oks++
		r.lastErr = ""
		if r.oks >= need {
			r.state = StateHealthy
		}
	}
	return was != (r.state == StateHealthy && !r.cordoned)
}

// noteFailure is passive failure marking: a proxied request hit a
// transport-level error, which counts like a failed probe (the gateway
// does not wait for the next probe period to stop routing to a dead
// replica). Rebuilds the ring if the state flipped.
func (r *Replica) noteFailure(err error) {
	if r.observe(outcomeFail, err.Error(), r.gw.opts.FailAfter, r.gw.opts.ReviveAfter) {
		r.gw.rebuild()
	}
}

// probe runs one active health check: GET /healthz (liveness), then GET
// /readyz (readiness). It returns the outcome it fed to the FSM and
// whether ring eligibility changed.
func (r *Replica) probe(ctx context.Context) (outcome, bool) {
	start := time.Now()
	o, errMsg := r.probeOnce(ctx)
	lat := time.Since(start)
	r.probeLat.Observe(lat.Seconds())
	r.mu.Lock()
	r.probeMS = float64(lat.Microseconds()) / 1e3
	r.mu.Unlock()
	return o, r.observe(o, errMsg, r.gw.opts.FailAfter, r.gw.opts.ReviveAfter)
}

func (r *Replica) probeOnce(ctx context.Context) (outcome, string) {
	ctx, cancel := context.WithTimeout(ctx, r.gw.opts.ProbeTimeout)
	defer cancel()
	status, err := r.getStatus(ctx, "/healthz")
	if err != nil {
		return outcomeFail, err.Error()
	}
	if status != http.StatusOK {
		return outcomeFail, fmt.Sprintf("healthz status %d", status)
	}
	status, err = r.getStatus(ctx, "/readyz")
	if err != nil {
		return outcomeFail, err.Error()
	}
	switch status {
	case http.StatusOK:
		return outcomeReady, ""
	case http.StatusServiceUnavailable:
		return outcomeDraining, ""
	default:
		return outcomeFail, fmt.Sprintf("readyz status %d", status)
	}
}

func (r *Replica) getStatus(ctx context.Context, path string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.BaseURL+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.gw.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// replicaSnapshot is the /statsz view of one replica.
type replicaSnapshot struct {
	BaseURL  string  `json:"base_url"`
	State    string  `json:"state"`
	Cordoned bool    `json:"cordoned,omitempty"`
	Inflight int     `json:"inflight"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors,omitempty"`
	ProbeMS  float64 `json:"probe_ms"`
	LastErr  string  `json:"last_error,omitempty"`
}

func (r *Replica) snapshot() replicaSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return replicaSnapshot{
		BaseURL:  r.BaseURL,
		State:    r.state.String(),
		Cordoned: r.cordoned,
		Inflight: int(r.inflight.Load()),
		Requests: r.requests.Value(),
		Errors:   r.errors.Value(),
		ProbeMS:  r.probeMS,
		LastErr:  r.lastErr,
	}
}
