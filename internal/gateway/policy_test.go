package gateway

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/api"
	"repro/internal/obs"
)

// postJSON posts body to url under the given client identity and returns
// the status and raw response bytes.
func postJSON(t *testing.T, url, client string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set(obs.HeaderClient, client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// twoReplicaFleet starts two replicas serving the same released file under
// "prod" behind a gateway.
func twoReplicaFleet(t *testing.T) (*Gateway, string, []*testReplica) {
	t.Helper()
	path := writeReleased(t, 1, false)
	r1 := startReplica(t, "r1", nil)
	r2 := startReplica(t, "r2", nil)
	for _, r := range []*testReplica{r1, r2} {
		if _, err := r.reg.LoadFile("prod", path); err != nil {
			t.Fatal(err)
		}
	}
	g := testGateway(t, Options{}, r1, r2)
	ts := gatewayServer(t, g)
	return g, ts.URL, []*testReplica{r1, r2}
}

// TestDefendedResponsesDeterministicAcrossReplicas is the defended-response
// determinism e2e: one gateway :policy call flips a defense on every
// replica, and the defended (rounded, top-1-only) answers are
// byte-identical across replicas and across repeats — rounding is done in
// one place, one way.
func TestDefendedResponsesDeterministicAcrossReplicas(t *testing.T) {
	_, gwURL, reps := twoReplicaFleet(t)

	// Get before set: fan-out reads both replicas, policy inactive.
	status, raw := postJSON(t, gwURL+"/v1/models/prod:policy", "", nil)
	if status != http.StatusOK {
		t.Fatalf("policy get answered %d: %s", status, raw)
	}
	var got struct {
		Replicas int `json:"replicas"`
		Results  []struct {
			Replica  string          `json:"replica"`
			Status   int             `json:"status"`
			Response json.RawMessage `json:"response"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Replicas != 2 || len(got.Results) != 2 {
		t.Fatalf("policy get reached %d replicas, want 2: %s", got.Replicas, raw)
	}

	body := predictBody(t, "prod", testInputs(1, 64, 3)[0])
	for _, tc := range []struct {
		name   string
		policy string
		mode   string
	}{
		{"rounding", `{"round":4}`, ""},
		{"top1", `{"mode":"top1","round":3}`, "top1"},
		{"label", `{"mode":"label"}`, "label"},
	} {
		status, raw := postJSON(t, gwURL+"/v1/models/prod:policy", "", []byte(tc.policy))
		if status != http.StatusOK {
			t.Fatalf("%s: policy set answered %d: %s", tc.name, status, raw)
		}
		// Hot-swapped, no restart: both replicas answer the defended form,
		// byte-identical to each other and across repeats.
		var want []byte
		for round := 0; round < 3; round++ {
			for _, r := range reps {
				status, ans := postJSON(t, r.ts.URL+"/v1/predict", "det-check", body)
				if status != http.StatusOK {
					t.Fatalf("%s: replica %s answered %d: %s", tc.name, r.id, status, ans)
				}
				if want == nil {
					want = ans
				} else if !bytes.Equal(ans, want) {
					t.Fatalf("%s: replica %s diverged:\n got %s\nwant %s", tc.name, r.id, ans, want)
				}
			}
		}
		// The gateway relays the replica body verbatim, so the routed answer
		// is the same bytes again.
		status, ans := postJSON(t, gwURL+"/v1/predict", "det-check", body)
		if status != http.StatusOK || !bytes.Equal(ans, want) {
			t.Fatalf("%s: gateway answer (status %d) diverged:\n got %s\nwant %s", tc.name, status, ans, want)
		}
		var pr api.PredictResponse
		if err := json.Unmarshal(ans, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.Mode != tc.mode {
			t.Fatalf("%s: mode = %q, want %q", tc.name, pr.Mode, tc.mode)
		}
		if tc.mode != "" && len(pr.Predictions[0].Probs) != 0 {
			t.Fatalf("%s: defended answer leaked probs: %s", tc.name, ans)
		}
	}
}

// TestPolicyEdgeBudget pins edge enforcement: after a :policy set with a
// query budget, the gateway itself turns away an exhausted client without
// dialing any replica.
func TestPolicyEdgeBudget(t *testing.T) {
	g, gwURL, _ := twoReplicaFleet(t)

	status, raw := postJSON(t, gwURL+"/v1/models/prod:policy", "", []byte(`{"query_budget":3}`))
	if status != http.StatusOK {
		t.Fatalf("policy set answered %d: %s", status, raw)
	}
	if got := g.edgeBudget("prod"); got != 3 {
		t.Fatalf("edge budget = %d, want 3", got)
	}

	body := predictBody(t, "prod", testInputs(1, 64, 5)[0])
	for i := 0; i < 3; i++ {
		if status, raw := postJSON(t, gwURL+"/v1/predict", "greedy", body); status != http.StatusOK {
			t.Fatalf("request %d answered %d: %s", i, status, raw)
		}
	}
	dialed := replicaRequests(g)
	status, raw = postJSON(t, gwURL+"/v1/predict", "greedy", body)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-budget request answered %d: %s", status, raw)
	}
	e, err := api.ParseError(raw)
	if err != nil || e.Code != api.CodeBudgetExhausted {
		t.Fatalf("want budget_exhausted envelope, got %s (%v)", raw, err)
	}
	if after := replicaRequests(g); after != dialed {
		t.Fatalf("denied request still dialed a replica (%d → %d proxied)", dialed, after)
	}

	// A different client has its own ledger entry.
	if status, raw := postJSON(t, gwURL+"/v1/predict", "patient", body); status != http.StatusOK {
		t.Fatalf("fresh client answered %d: %s", status, raw)
	}

	// Re-arming the policy resets the spent ledger.
	if status, raw := postJSON(t, gwURL+"/v1/models/prod:policy", "", []byte(`{"query_budget":3}`)); status != http.StatusOK {
		t.Fatalf("policy re-set answered %d: %s", status, raw)
	}
	if status, raw := postJSON(t, gwURL+"/v1/predict", "greedy", body); status != http.StatusOK {
		t.Fatalf("re-armed client answered %d: %s", status, raw)
	}
}

// replicaRequests sums proxied predict attempts across the fleet.
func replicaRequests(g *Gateway) int64 {
	var n int64
	for _, rep := range g.Replicas() {
		n += rep.requests.Value()
	}
	return n
}
