// Package gateway fronts a pool of dacserve replicas with one HTTP
// endpoint — the horizontal scale-out layer of the serving stack. One
// dacserve process is a throughput ceiling; the gateway turns N of them
// into a fleet:
//
//   - Routing is a consistent-hash ring keyed by model name (each model's
//     traffic concentrates on an owner replica, spilling to the next ring
//     nodes under a bounded-load rule), over only the replicas a health
//     state machine currently believes are ready.
//   - Health is probed actively (periodic GET /healthz + /readyz) and
//     marked passively (transport failures on proxied requests count like
//     failed probes). A replica that answers /readyz with 503 is draining:
//     it leaves the ring immediately — before SIGTERM kills it — so
//     rolling restarts lose zero requests.
//   - Overload is shed: requests are retried once (with backoff) across
//     ring order on 429/5xx, and answered 503 at the gateway when every
//     candidate is at its in-flight cap.
//   - Model distribution is digest-based: the gateway advertises
//     {name → digest} assignments and rolls them out replica by replica
//     through the /v1/models/{name}:load endpoint, each replica pulling
//     the release from the shared content-addressed artifact store. Every
//     replica provably serves byte-identical weights, and the aggregated
//     /v1/models answer reports fleet-wide digest consistency.
//
// The gateway holds no model state itself; it is a routing and health
// layer over the serve package's per-replica registries.
package gateway

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// Options configure a Gateway.
type Options struct {
	// ProbeInterval is the active health-check period. <= 0 disables the
	// background prober: probes then run only through ProbeAll, which is
	// what deterministic tests use (mirroring serve's FlushEvery < 0).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz + /readyz probe pair. 0 selects 2s.
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive failures (probe or passive) mark a
	// replica Down. 0 selects 2.
	FailAfter int
	// ReviveAfter is how many consecutive ready probes bring a Down
	// replica back. 0 selects 2.
	ReviveAfter int
	// LoadFactor is the bounded-load limit: a candidate replica is skipped
	// when its in-flight count exceeds ceil(LoadFactor * (total+1) / n),
	// the classic consistent-hashing-with-bounded-loads rule. 0 selects
	// 1.25.
	LoadFactor float64
	// MaxInflight is the hard per-replica in-flight cap; when every
	// candidate is at it, the request is shed with 503. 0 selects 256.
	MaxInflight int
	// RetryBackoff is the pause before the single retry. 0 selects 25ms;
	// negative disables the pause (tests).
	RetryBackoff time.Duration
	// RequestTimeout bounds one proxied predict attempt. 0 selects 30s.
	RequestTimeout time.Duration
	// Client is the HTTP client used for probes and proxying. nil selects
	// a default client (connection pooling on, no global timeout — the
	// per-attempt contexts bound every call).
	Client *http.Client
	// Obs is the registry gateway metrics are published to — the gateway
	// runs its own obs instance, exposed at its /metricsz. nil selects
	// obs.Default.
	Obs *obs.Registry
	// MaxClients caps per-client metric cardinality (see the serve
	// package's option of the same name). <= 0 selects 64.
	MaxClients int
	// AccessLog, when non-nil, receives one structured JSON line per
	// completed predict (a TraceRecord without spans).
	AccessLog io.Writer
}

func (o Options) withDefaults() Options {
	if o.ProbeTimeout == 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 2
	}
	if o.ReviveAfter <= 0 {
		o.ReviveAfter = 2
	}
	if o.LoadFactor <= 0 {
		o.LoadFactor = 1.25
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 25 * time.Millisecond
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Obs == nil {
		o.Obs = obs.Default
	}
	if o.MaxClients <= 0 {
		o.MaxClients = 64
	}
	return o
}

// Gateway routes /v1/predict across a replica pool. Create with New, add
// replicas with AddReplica, then Start the prober (or drive ProbeAll
// manually). Safe for concurrent use.
type Gateway struct {
	opts Options

	mu          sync.RWMutex
	replicas    []*Replica
	ring        *ring
	assignments map[string]string // model name → release digest
	// budgets holds per-model query budgets learned from :policy
	// pass-through, enforced at the edge through budget so an extraction
	// client exhausts its allowance without ever reaching a replica.
	budgets map[string]int
	budget  *api.BudgetLedger

	// Gateway-level metrics (fresh instances on opts.Obs).
	requests   *obs.Counter // predict requests entering the gateway
	retries    *obs.Counter // second attempts after 429/5xx/transport error
	sheds      *obs.Counter // requests answered 503 for lack of capacity
	noReplica  *obs.Counter // requests with an empty ring
	generation *obs.Gauge   // ring generation (bumped on every rebuild)
	eligibleG  *obs.Gauge   // replicas currently on the ring

	httpRequests *obs.Counter // every HTTP request, any endpoint

	// Request tracing and per-client accounting (see internal/obs/trace.go):
	// the gateway mints the trace ID every predict carries through the
	// fleet, keeps its own completed-trace buffer for /tracez, and accounts
	// requests per client with bounded cardinality.
	traces     *obs.TraceBuffer
	accessLog  *obs.AccessLogger
	clientReqs *obs.CounterVec
	clientErrs *obs.CounterVec
	clientLat  *obs.HistogramVec

	stop, done chan struct{}
	startOnce  sync.Once
	closeOnce  sync.Once
}

// New builds a gateway with no replicas and an empty ring.
func New(opts Options) *Gateway {
	opts = opts.withDefaults()
	g := &Gateway{
		opts:         opts,
		ring:         buildRing(nil),
		assignments:  map[string]string{},
		budgets:      map[string]int{},
		budget:       api.NewBudgetLedger(),
		requests:     obs.NewCounter(),
		retries:      obs.NewCounter(),
		sheds:        obs.NewCounter(),
		noReplica:    obs.NewCounter(),
		generation:   obs.NewGauge(),
		eligibleG:    obs.NewGauge(),
		httpRequests: obs.NewCounter(),
		traces:       obs.NewTraceBuffer(0, 0, 0),
		accessLog:    obs.NewAccessLogger(opts.AccessLog),
		clientReqs:   obs.NewCounterVec(opts.Obs, "gateway_client_requests_total", "client", opts.MaxClients),
		clientErrs:   obs.NewCounterVec(opts.Obs, "gateway_client_errors_total", "client", opts.MaxClients),
		clientLat:    obs.NewHistogramVec(opts.Obs, "gateway_client_latency_seconds", "client", opts.MaxClients, obs.ExpBuckets(0.0005, 2, 12)),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	for name, c := range map[string]*obs.Counter{
		"gateway_predict_requests_total": g.requests,
		"gateway_retries_total":          g.retries,
		"gateway_sheds_total":            g.sheds,
		"gateway_no_replica_total":       g.noReplica,
		"gateway_http_requests_total":    g.httpRequests,
	} {
		opts.Obs.RegisterCounter(name, c)
	}
	opts.Obs.RegisterGauge("gateway_ring_generation", g.generation)
	opts.Obs.RegisterGauge("gateway_replicas_eligible", g.eligibleG)
	return g
}

// AddReplica registers a replica under a stable id. Replicas start in
// StateUnknown — off the ring until a probe sees them ready.
func (g *Gateway) AddReplica(id, baseURL string) (*Replica, error) {
	if id == "" || baseURL == "" {
		return nil, fmt.Errorf("gateway: replica id and base URL must be non-empty")
	}
	r := &Replica{
		ID:       id,
		BaseURL:  baseURL,
		gw:       g,
		requests: obs.NewCounter(),
		errors:   obs.NewCounter(),
		probeLat: obs.NewHistogram(obs.ExpBuckets(0.0005, 2, 12)),
	}
	lbl := fmt.Sprintf(`{replica=%q}`, id)
	g.opts.Obs.RegisterCounter("gateway_replica_requests_total"+lbl, r.requests)
	g.opts.Obs.RegisterCounter("gateway_replica_errors_total"+lbl, r.errors)
	g.opts.Obs.RegisterHistogram("gateway_probe_latency_seconds"+lbl, r.probeLat)
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, prev := range g.replicas {
		if prev.ID == id {
			return nil, fmt.Errorf("gateway: duplicate replica id %q", id)
		}
	}
	g.replicas = append(g.replicas, r)
	return r, nil
}

// Replicas returns the pool in registration order.
func (g *Gateway) Replicas() []*Replica {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]*Replica(nil), g.replicas...)
}

// rebuild reconstructs the ring from the currently eligible replicas and
// bumps the ring generation. Called on every eligibility change (probe
// transition, passive failure, cordon/uncordon).
func (g *Gateway) rebuild() {
	g.mu.Lock()
	defer g.mu.Unlock()
	members := make([]*Replica, 0, len(g.replicas))
	for _, r := range g.replicas {
		if r.eligible() {
			members = append(members, r)
		}
	}
	g.ring = buildRing(members)
	g.generation.Add(1)
	g.eligibleG.Set(float64(len(members)))
}

// currentRing returns the ring snapshot routing uses.
func (g *Gateway) currentRing() *ring {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.ring
}

// Generation returns the current ring generation.
func (g *Gateway) Generation() int64 { return int64(g.generation.Value()) }

// ProbeAll probes every replica concurrently, applies the outcomes to the
// state machines, and rebuilds the ring if any eligibility changed. It
// returns the number of replicas currently eligible. The background prober
// calls this every ProbeInterval; tests and startup call it directly.
func (g *Gateway) ProbeAll(ctx context.Context) int {
	reps := g.Replicas()
	changed := make([]bool, len(reps))
	var wg sync.WaitGroup
	for i, r := range reps {
		wg.Add(1)
		go func(i int, r *Replica) {
			defer wg.Done()
			_, changed[i] = r.probe(ctx)
		}(i, r)
	}
	wg.Wait()
	for _, c := range changed {
		if c {
			g.rebuild()
			break
		}
	}
	n := 0
	for _, r := range reps {
		if r.eligible() {
			n++
		}
	}
	return n
}

// Start launches the background prober (a no-op when ProbeInterval <= 0).
func (g *Gateway) Start() {
	g.startOnce.Do(func() {
		if g.opts.ProbeInterval <= 0 {
			close(g.done)
			return
		}
		go func() {
			defer close(g.done)
			t := time.NewTicker(g.opts.ProbeInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					g.ProbeAll(context.Background())
				case <-g.stop:
					return
				}
			}
		}()
	})
}

// Close stops the background prober. Safe to call more than once; a
// gateway that was never started closes immediately.
func (g *Gateway) Close() {
	g.startOnce.Do(func() { close(g.done) })
	g.closeOnce.Do(func() { close(g.stop) })
	<-g.done
}

// totalInflight sums in-flight requests across the pool (the bounded-load
// denominator's numerator).
func (g *Gateway) totalInflight() int {
	total := 0
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, r := range g.replicas {
		total += int(r.inflight.Load())
	}
	return total
}

// pick applies the bounded-load rule to the ring candidates for a model:
// take the first candidate whose in-flight count is within
// ceil(LoadFactor * (total+1) / n) — the owner almost always, the spill
// sequence under hot-spot load — and fall back to the first candidate
// under the hard MaxInflight cap. nil means shed: every candidate is
// saturated. skip removes already-attempted replicas (retry).
func (g *Gateway) pick(cands []*Replica, skip *Replica) *Replica {
	if len(cands) == 0 {
		return nil
	}
	total := g.totalInflight()
	n := len(cands)
	bound := int(math.Ceil(g.opts.LoadFactor * float64(total+1) / float64(n)))
	if bound < 1 {
		bound = 1
	}
	var fallback *Replica
	for _, c := range cands {
		if c == skip {
			continue
		}
		inflight := int(c.inflight.Load())
		if inflight >= g.opts.MaxInflight {
			continue
		}
		if inflight < bound {
			return c
		}
		if fallback == nil {
			fallback = c
		}
	}
	// Every un-skipped candidate is over the load bound; route to the
	// first one still under the hard cap rather than shedding work the
	// pool can absorb.
	return fallback
}

// SetAssignment records (or, with digest == "", clears) the advertised
// release digest for a model name. Assignments are what /v1/assignments
// serves and what the fleet-consistency check in /v1/models compares
// against; RollingReload sets them before distributing.
func (g *Gateway) SetAssignment(name, digest string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if digest == "" {
		delete(g.assignments, name)
		return
	}
	g.assignments[name] = digest
}

// setEdgeBudget records (or, with budget <= 0, clears) the per-client
// query budget the gateway enforces at the edge for model, re-arming every
// client's spend — called after a :policy set fans out, so edge and
// replica budgets restart together.
func (g *Gateway) setEdgeBudget(model string, budget int) {
	g.mu.Lock()
	if budget <= 0 {
		delete(g.budgets, model)
	} else {
		g.budgets[model] = budget
	}
	g.mu.Unlock()
	g.budget.Reset(model)
}

// edgeBudget returns the edge-enforced query budget for model (0 = none).
func (g *Gateway) edgeBudget(model string) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.budgets[model]
}

// Assignments returns a copy of the advertised {model name → digest} map.
func (g *Gateway) Assignments() map[string]string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[string]string, len(g.assignments))
	for k, v := range g.assignments {
		out[k] = v
	}
	return out
}
