package gateway

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// maxPredictBody bounds a proxied predict request body (8 MiB is ~1000
// CIFAR-sized batch samples — far past any sane request).
const maxPredictBody = 8 << 20

// attemptResult is one proxied attempt's outcome.
type attemptResult struct {
	status int
	header http.Header
	body   []byte
	err    error // transport-level failure (counts as passive health failure)
}

// retryable reports whether the attempt should be retried on the next
// ring candidate: transport errors, backpressure (429), and server-side
// failures (5xx). 4xx client errors are the caller's fault on every
// replica, so retrying would only double the damage.
func (a attemptResult) retryable() bool {
	return a.err != nil || a.status == http.StatusTooManyRequests || a.status >= 500
}

// proxyPredict routes one predict request body across the pool: pick a
// candidate under the bounded-load rule, forward, and on a retryable
// failure back off once and try the next distinct candidate. Transport
// errors mark the replica passively failed. The final attempt's response
// (or a gateway-synthesized error) is written to w. tr is the request's
// trace (nil-safe): routing and each proxied attempt get spans, and the
// replica's X-Dac-Server-Timing breakdown is attributed to its attempt.
func (g *Gateway) proxyPredict(ctx context.Context, w http.ResponseWriter, model string, body []byte, tr *obs.RequestTrace, client string) {
	g.requests.Inc()
	fail := func(status int, code, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		writeTraceError(w, status, code, tr, msg)
		g.finishPredict(tr, client, status, msg)
	}
	routeSp := tr.StartSpan("route")
	cands := g.currentRing().candidates(model)
	if len(cands) == 0 {
		routeSp.End()
		g.noReplica.Inc()
		fail(http.StatusServiceUnavailable, api.CodeUnavailable, "no ready replica (pool of %d)", len(g.Replicas()))
		return
	}
	first := g.pick(cands, nil)
	routeSp.End()
	if first == nil {
		g.sheds.Inc()
		tr.SetShed()
		fail(http.StatusServiceUnavailable, api.CodeOverCapacity, "shed: all %d candidate replica(s) at max in-flight", len(cands))
		return
	}
	res := g.tracedAttempt(ctx, first, body, tr, client, 0)
	if res.retryable() {
		if second := g.pick(cands, first); second != nil {
			g.retries.Inc()
			tr.SetRetried()
			if g.opts.RetryBackoff > 0 {
				select {
				case <-time.After(g.opts.RetryBackoff):
				case <-ctx.Done():
				}
			}
			res = g.tracedAttempt(ctx, second, body, tr, client, 1)
		}
	}
	if res.err != nil {
		fail(http.StatusBadGateway, api.CodeBadGateway, "replica unreachable: %v", res.err)
		return
	}
	relay(w, res, tr)
	g.finishPredict(tr, client, res.status, "")
}

// tracedAttempt wraps one proxied attempt in a span (attempt0/attempt1,
// annotated with the replica ID) and folds the replica's reported
// X-Dac-Server-Timing breakdown into child spans, so a gateway trace shows
// where inside the replica the time went. The last attempt's breakdown
// wins the record-level queue/compute/batch fields — it is the attempt
// that produced the relayed response.
func (g *Gateway) tracedAttempt(ctx context.Context, rep *Replica, body []byte, tr *obs.RequestTrace, client string, n int) attemptResult {
	name := fmt.Sprintf("attempt%d", n)
	start := tr.Clock()
	res := g.attempt(ctx, rep, body, tr.ID(), client, n)
	if tr == nil {
		return res
	}
	tr.AddSpanDetail(name, rep.ID, start, tr.Clock().Sub(start))
	if res.err != nil {
		return res
	}
	var queue, compute, batch int64
	for _, tm := range obs.ParseTimings(res.header.Get(obs.HeaderServerTiming)) {
		switch tm.Name {
		case "queue":
			queue = tm.Value
		case "compute":
			compute = tm.Value
		case "batch":
			batch = tm.Value
		}
	}
	if queue > 0 || compute > 0 {
		qd := time.Duration(queue) * time.Microsecond
		tr.AddSpan(name+"/queue", start, qd)
		tr.AddSpan(name+"/compute", start.Add(qd), time.Duration(compute)*time.Microsecond)
		tr.SetQueueCompute(qd, time.Duration(compute)*time.Microsecond)
	}
	if batch > 0 {
		tr.SetBatch(int(batch))
	}
	return res
}

// attempt forwards the predict body to one replica and reads the full
// response. In-flight accounting brackets the call — it is the signal
// bounded-load routing and drain waits read. The trace ID and client
// identity propagate in X-Dac-Trace (hop label a<n>) and X-Dac-Client so
// the replica's trace and accounting line up with the gateway's.
func (g *Gateway) attempt(ctx context.Context, rep *Replica, body []byte, traceID obs.TraceID, client string, n int) attemptResult {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	rep.requests.Inc()

	ctx, cancel := context.WithTimeout(ctx, g.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.BaseURL+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		rep.errors.Inc()
		return attemptResult{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if !traceID.IsZero() {
		req.Header.Set(obs.HeaderTrace, obs.FormatTraceHeader(traceID, fmt.Sprintf("a%d", n)))
	}
	if client != "" {
		req.Header.Set(obs.HeaderClient, client)
	}
	resp, err := g.opts.Client.Do(req)
	if err != nil {
		rep.errors.Inc()
		rep.noteFailure(err)
		return attemptResult{err: err}
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		rep.errors.Inc()
		rep.noteFailure(err)
		return attemptResult{err: err}
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
		rep.errors.Inc()
	}
	return attemptResult{status: resp.StatusCode, header: resp.Header, body: out}
}

// relay writes a replica's response through unchanged, adding the trace ID
// and passing the replica's timing breakdown along so the end client sees
// both.
func relay(w http.ResponseWriter, res attemptResult, tr *obs.RequestTrace) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if st := res.header.Get(obs.HeaderServerTiming); st != "" {
		w.Header().Set(obs.HeaderServerTiming, st)
	}
	if tr != nil {
		w.Header().Set(obs.HeaderTrace, tr.ID().String())
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// finishPredict closes out one gateway predict: per-client accounting
// (always), then the finished trace goes to the buffer and access log.
func (g *Gateway) finishPredict(tr *obs.RequestTrace, client string, status int, errMsg string) {
	g.clientReqs.Get(client).Inc()
	if status >= 400 {
		g.clientErrs.Get(client).Inc()
	}
	if tr == nil {
		return
	}
	rec := tr.Finish(status, errMsg)
	g.clientLat.Observe(client, float64(rec.DurMicros)/1e6)
	g.traces.Add(rec)
	g.accessLog.Log(rec)
}

// Traces returns the gateway's completed-trace buffer (what /tracez
// serves).
func (g *Gateway) Traces() *obs.TraceBuffer { return g.traces }

// writeTraceError writes the unified error envelope with the request's
// trace ID folded in and echoed in X-Dac-Trace, mirroring the serve
// package. An empty code falls back to the status's default.
func writeTraceError(w http.ResponseWriter, status int, code string, tr *obs.RequestTrace, msg string) {
	traceID := ""
	if tr != nil {
		traceID = tr.ID().String()
		w.Header().Set(obs.HeaderTrace, traceID)
	}
	api.WriteError(w, status, code, traceID, "%s", msg)
}
