package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// maxPredictBody bounds a proxied predict request body (8 MiB is ~1000
// CIFAR-sized batch samples — far past any sane request).
const maxPredictBody = 8 << 20

// attemptResult is one proxied attempt's outcome.
type attemptResult struct {
	status int
	header http.Header
	body   []byte
	err    error // transport-level failure (counts as passive health failure)
}

// retryable reports whether the attempt should be retried on the next
// ring candidate: transport errors, backpressure (429), and server-side
// failures (5xx). 4xx client errors are the caller's fault on every
// replica, so retrying would only double the damage.
func (a attemptResult) retryable() bool {
	return a.err != nil || a.status == http.StatusTooManyRequests || a.status >= 500
}

// proxyPredict routes one predict request body across the pool: pick a
// candidate under the bounded-load rule, forward, and on a retryable
// failure back off once and try the next distinct candidate. Transport
// errors mark the replica passively failed. The final attempt's response
// (or a gateway-synthesized error) is written to w.
func (g *Gateway) proxyPredict(ctx context.Context, w http.ResponseWriter, model string, body []byte) {
	g.requests.Inc()
	cands := g.currentRing().candidates(model)
	if len(cands) == 0 {
		g.noReplica.Inc()
		httpError(w, http.StatusServiceUnavailable, "no ready replica (pool of %d)", len(g.Replicas()))
		return
	}
	first := g.pick(cands, nil)
	if first == nil {
		g.sheds.Inc()
		httpError(w, http.StatusServiceUnavailable, "shed: all %d candidate replica(s) at max in-flight", len(cands))
		return
	}
	res := g.attempt(ctx, first, body)
	if res.retryable() {
		if second := g.pick(cands, first); second != nil {
			g.retries.Inc()
			if g.opts.RetryBackoff > 0 {
				select {
				case <-time.After(g.opts.RetryBackoff):
				case <-ctx.Done():
				}
			}
			res = g.attempt(ctx, second, body)
		}
	}
	if res.err != nil {
		httpError(w, http.StatusBadGateway, "replica unreachable: %v", res.err)
		return
	}
	relay(w, res)
}

// attempt forwards the predict body to one replica and reads the full
// response. In-flight accounting brackets the call — it is the signal
// bounded-load routing and drain waits read.
func (g *Gateway) attempt(ctx context.Context, rep *Replica, body []byte) attemptResult {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	rep.requests.Inc()

	ctx, cancel := context.WithTimeout(ctx, g.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.BaseURL+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		rep.errors.Inc()
		return attemptResult{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.opts.Client.Do(req)
	if err != nil {
		rep.errors.Inc()
		rep.noteFailure(err)
		return attemptResult{err: err}
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		rep.errors.Inc()
		rep.noteFailure(err)
		return attemptResult{err: err}
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
		rep.errors.Inc()
	}
	return attemptResult{status: resp.StatusCode, header: resp.Header, body: out}
}

// relay writes a replica's response through unchanged.
func relay(w http.ResponseWriter, res attemptResult) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
