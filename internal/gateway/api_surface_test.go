package gateway

import (
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/obs"
)

// TestRouteInventoryGolden pins the gateway's whole HTTP surface, the
// mirror of the serve package's golden. A route added or removed without
// updating this list (and the README API table) is an unreviewed API
// change.
func TestRouteInventoryGolden(t *testing.T) {
	g := testGateway(t, Options{})
	srv := NewServer(g)
	want := []string{
		"POST /v1/predict",
		"GET /v1/models",
		"GET /v1/assignments",
		"POST /v1/admin/reload",
		"POST /v1/models/{nameop}",
		"GET /healthz",
		"GET /readyz",
		"GET /statsz",
		"GET /tracez",
		"GET /metricsz",
	}
	if got := srv.Routes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("route inventory changed:\n got %q\nwant %q", got, want)
	}

	// Walk the inventory against a live server: every declared pattern must
	// be backed by a real handler, never the mux's text 404/405 page.
	ts := gatewayServer(t, g)
	for _, route := range want {
		method, path, _ := strings.Cut(route, " ")
		path = strings.ReplaceAll(path, "{nameop}", "ghost:policy")
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusMethodNotAllowed || string(body) == "404 page not found\n" {
			t.Errorf("%s: answered by the mux, not a handler (status %d)", route, resp.StatusCode)
		}
	}
}

// TestErrorEnvelopeGolden pins the exact envelope bytes for the gateway's
// untraced errors — the same shape the serve and api package goldens pin.
func TestErrorEnvelopeGolden(t *testing.T) {
	ts := gatewayServer(t, testGateway(t, Options{}))

	resp, err := http.Post(ts.URL+"/v1/models/ghost:frobnicate", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := `{"error":"unknown model operation \"ghost:frobnicate\" (want {name}:policy or {name}:reload)","code":"not_found"}` + "\n"
	if resp.StatusCode != http.StatusNotFound || string(raw) != want {
		t.Fatalf("unknown-op envelope drifted (status %d):\n got %s\nwant %s", resp.StatusCode, raw, want)
	}
}

// TestErrorEnvelopeCarriesTraceID pins the traced variant on the gateway
// side: a failed predict answers the envelope with its trace_id matching
// the X-Dac-Trace header.
func TestErrorEnvelopeCarriesTraceID(t *testing.T) {
	ts := gatewayServer(t, testGateway(t, Options{})) // no replicas: predict must 503

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"model":"prod","input":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", resp.StatusCode, raw)
	}
	e, err := api.ParseError(raw)
	if err != nil {
		t.Fatalf("not an envelope: %v (%s)", err, raw)
	}
	if e.Code != api.CodeUnavailable {
		t.Fatalf("code = %q, want %q", e.Code, api.CodeUnavailable)
	}
	if e.TraceID == "" || e.TraceID != resp.Header.Get(obs.HeaderTrace) {
		t.Fatalf("trace_id %q does not match %s header %q", e.TraceID, obs.HeaderTrace, resp.Header.Get(obs.HeaderTrace))
	}
}
