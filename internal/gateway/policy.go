package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
)

// policyReplicaResult is one replica's answer to a fanned-out :policy
// operation.
type policyReplicaResult struct {
	Replica string `json:"replica"`
	Status  int    `json:"status"`
	// Error is the transport failure when the replica was unreachable
	// (Status is then 0).
	Error string `json:"error,omitempty"`
	// Response is the replica's JSON answer, relayed verbatim.
	Response json.RawMessage `json:"response,omitempty"`
}

// fanoutPolicy forwards one :policy request body (empty for a get) to
// every eligible replica concurrently and collects their answers, sorted
// by replica ID for deterministic output. The gateway holds no policy
// state of its own beyond the edge budget — replicas are the source of
// truth, the gateway is the fleet-wide switch.
func (g *Gateway) fanoutPolicy(ctx context.Context, model string, body []byte) []policyReplicaResult {
	var eligible []*Replica
	for _, rep := range g.Replicas() {
		if rep.eligible() {
			eligible = append(eligible, rep)
		}
	}
	results := make([]policyReplicaResult, len(eligible))
	var wg sync.WaitGroup
	for i, rep := range eligible {
		wg.Add(1)
		go func(i int, rep *Replica) {
			defer wg.Done()
			results[i] = g.pushPolicy(ctx, rep, model, body)
		}(i, rep)
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool { return results[i].Replica < results[j].Replica })
	return results
}

// pushPolicy forwards the :policy body to one replica.
func (g *Gateway) pushPolicy(ctx context.Context, rep *Replica, model string, body []byte) policyReplicaResult {
	out := policyReplicaResult{Replica: rep.ID}
	ctx, cancel := context.WithTimeout(ctx, g.opts.RequestTimeout)
	defer cancel()
	url := rep.BaseURL + "/v1/models/" + model + ":policy"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		out.Error = err.Error()
		return out
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.opts.Client.Do(req)
	if err != nil {
		rep.noteFailure(err)
		out.Error = err.Error()
		return out
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		out.Error = err.Error()
		return out
	}
	out.Status = resp.StatusCode
	out.Response = json.RawMessage(bytes.TrimSpace(raw))
	return out
}
