package gateway

import (
	"fmt"
	"testing"
)

func namedReplicas(n int) []*Replica {
	out := make([]*Replica, n)
	for i := range out {
		out[i] = &Replica{ID: fmt.Sprintf("r%d", i)}
	}
	return out
}

func TestRingEmpty(t *testing.T) {
	r := buildRing(nil)
	if got := r.candidates("model"); got != nil {
		t.Fatalf("empty ring candidates = %v, want nil", got)
	}
	if r.owner("model") != nil {
		t.Fatal("empty ring has an owner")
	}
}

func TestRingDeterministicAndComplete(t *testing.T) {
	reps := namedReplicas(4)
	a, b := buildRing(reps), buildRing(reps)
	for _, key := range []string{"prod", "canary", "m0", "m1", "m2"} {
		ca, cb := a.candidates(key), b.candidates(key)
		if len(ca) != len(reps) || len(cb) != len(reps) {
			t.Fatalf("key %q: candidate count %d/%d, want %d", key, len(ca), len(cb), len(reps))
		}
		seen := map[*Replica]bool{}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("key %q: two builds disagree at position %d", key, i)
			}
			if seen[ca[i]] {
				t.Fatalf("key %q: duplicate candidate %s", key, ca[i].ID)
			}
			seen[ca[i]] = true
		}
	}
}

// Every replica should own a reasonable share of keys: with 64 vnodes the
// split over many keys must not starve anyone.
func TestRingSpread(t *testing.T) {
	reps := namedReplicas(4)
	r := buildRing(reps)
	counts := map[*Replica]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("model-%d", i))]++
	}
	for _, rep := range reps {
		share := float64(counts[rep]) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("replica %s owns %.1f%% of keys, want a sane share near 25%%", rep.ID, 100*share)
		}
	}
}

// Removing one replica must only move the keys it owned: consistent
// hashing's minimal-disruption property, which is what makes health
// ejections cheap for every other replica's batching locality.
func TestRingRemovalMovesOnlyOwnedKeys(t *testing.T) {
	reps := namedReplicas(4)
	full := buildRing(reps)
	reduced := buildRing(reps[:3]) // drop r3
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("model-%d", i)
		before, after := full.owner(key), reduced.owner(key)
		if before != reps[3] && before != after {
			t.Fatalf("key %q moved from surviving %s to %s when r3 left", key, before.ID, after.ID)
		}
		if before == reps[3] && after == reps[3] {
			t.Fatalf("key %q still owned by removed replica", key)
		}
	}
}

// The spill sequence (candidates[1:]) is what bounded-load routing and
// retry walk; it must visit the same replicas the full ring would, in the
// same order, regardless of membership slice order.
func TestRingCandidatesOrderIndependentOfMemberOrder(t *testing.T) {
	reps := namedReplicas(5)
	shuffled := []*Replica{reps[3], reps[0], reps[4], reps[2], reps[1]}
	a, b := buildRing(reps), buildRing(shuffled)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("m%d", i)
		ca, cb := a.candidates(key), b.candidates(key)
		for j := range ca {
			if ca[j] != cb[j] {
				t.Fatalf("key %q: member order changed candidate %d (%s vs %s)",
					key, j, ca[j].ID, cb[j].ID)
			}
		}
	}
}
