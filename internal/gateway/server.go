package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"repro/internal/api"
	"repro/internal/obs"
)

// Server exposes a Gateway over the versioned /v1 HTTP surface (schema in
// package api):
//
//	POST /v1/predict       routed prediction (same body as dacserve)
//	GET  /v1/models        fleet-aggregated model list with digest
//	                       consistency verdicts
//	GET  /v1/assignments   advertised {model name → release digest}
//	POST /v1/models/{name}:reload  rolling reload: {"digest": ...}
//	POST /v1/models/{name}:policy  get/set the model's serving policy,
//	                       fanned out to every eligible replica
//	POST /v1/admin/reload  reload with the model in the body
//	                       ({"model": ..., "digest": ...})
//	GET  /healthz          gateway liveness + pool summary
//	GET  /readyz           503 until at least one replica is on the ring
//	GET  /statsz           routing/health counters (JSON)
//	GET  /metricsz         the gateway's obs registry (Prometheus text;
//	                       ?format=json for the JSON snapshot)
type Server struct {
	gw  *Gateway
	mux *http.ServeMux
	// routes records every registered mux pattern for Routes — the
	// route-inventory golden pins the gateway's whole surface from it.
	routes []string
	// ops is the model-operation dispatch table POST /v1/models/{nameop}
	// resolves against.
	ops map[string]api.ModelOpHandler
}

// NewServer wraps gw.
func NewServer(gw *Gateway) *Server {
	s := &Server{gw: gw, mux: http.NewServeMux()}
	s.ops = map[string]api.ModelOpHandler{
		"reload": s.opReload,
		"policy": s.opPolicy,
	}
	s.handle("POST /v1/predict", s.handlePredict)
	s.handle("GET /v1/models", s.handleModels)
	s.handle("GET /v1/assignments", s.handleAssignments)
	s.handle("POST /v1/admin/reload", s.handleReload)
	s.handle("POST /v1/models/{nameop}", s.handleModelOp)
	s.handle("GET /healthz", s.handleHealth)
	s.handle("GET /readyz", s.handleReady)
	s.handle("GET /statsz", s.handleStats)
	s.handle("GET /tracez", s.handleTraces)
	s.handle("GET /metricsz", s.handleMetrics)
	return s
}

// handle registers pattern on the mux and records it for Routes.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.routes = append(s.routes, pattern)
	s.mux.HandleFunc(pattern, h)
}

// Routes returns every registered mux pattern in registration order — the
// gateway's whole HTTP surface, which the route-inventory golden pins.
func (s *Server) Routes() []string {
	return append([]string(nil), s.routes...)
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.gw.httpRequests.Inc()
		s.mux.ServeHTTP(w, r)
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	// The gateway is where a fleet trace is born: mint (or adopt) the trace
	// ID here, and it follows the request through routing, each proxied
	// attempt, and the replica's own trace.
	client := obs.ClientFrom(r.Header.Get(obs.HeaderClient), r.RemoteAddr)
	id, hop, _ := obs.ParseTraceHeader(r.Header.Get(obs.HeaderTrace))
	tr := obs.NewRequestTrace(id, nil)
	tr.SetClient(client)
	tr.SetHop(hop)
	fail := func(status int, code, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		writeTraceError(w, status, code, tr, msg)
		s.gw.finishPredict(tr, client, status, msg)
	}
	sp := tr.StartSpan("decode")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPredictBody))
	if err != nil {
		sp.End()
		fail(http.StatusBadRequest, api.CodeBadRequest, "read request body: %v", err)
		return
	}
	// Only the routing key, the API pin, and the sample count are decoded
	// here; the body is forwarded verbatim so replica answers (and errors)
	// pass through byte-identical. Samples stay raw — the edge budget needs
	// their count, not their contents.
	var req struct {
		API    string            `json:"api"`
		Model  string            `json:"model"`
		Input  json.RawMessage   `json:"input"`
		Inputs []json.RawMessage `json:"inputs"`
	}
	err = json.Unmarshal(body, &req)
	sp.End()
	if err != nil {
		fail(http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
		return
	}
	if req.API != "" && req.API != api.Version {
		fail(http.StatusBadRequest, api.CodeUnsupportedAPI, "unsupported api version %q (this gateway speaks %q)", req.API, api.Version)
		return
	}
	if req.Model == "" {
		fail(http.StatusBadRequest, api.CodeBadRequest, "model must be set")
		return
	}
	tr.SetModel(req.Model)
	// Edge budget enforcement: a client that spent its allowance is turned
	// away here, before any replica is dialed or retried.
	samples := len(req.Inputs)
	if len(req.Input) > 0 && string(req.Input) != "null" {
		samples = 1
	}
	if samples > 0 {
		if budget := s.gw.edgeBudget(req.Model); !s.gw.budget.Allow(req.Model, client, samples, budget) {
			fail(http.StatusTooManyRequests, api.CodeBudgetExhausted,
				"client %q has exhausted its %d-sample query budget for model %q", client, budget, req.Model)
			return
		}
	}
	s.gw.proxyPredict(r.Context(), w, req.Model, body, tr, client)
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, http.StatusOK, s.gw.traces.Snapshot())
}

// fleetModel is one model name's fleet-wide view: which digest each
// replica serves, whether they agree, and whether they match the
// advertised assignment.
type fleetModel struct {
	Name string `json:"name"`
	// Digest is the fleet digest when every replica agrees; empty on
	// conflict (PerReplica then shows the split).
	Digest string `json:"digest,omitempty"`
	// Consistent reports digest agreement across every replica serving the
	// name — the fleet-wide byte-identical-weights guarantee.
	Consistent bool `json:"consistent"`
	// Assigned is the gateway's advertised digest for the name, when set.
	Assigned string `json:"assigned,omitempty"`
	// MatchesAssignment is false while any replica serves a digest other
	// than the assigned one (e.g. mid-roll).
	MatchesAssignment bool `json:"matches_assignment"`
	// PerReplica maps replica ID → served digest.
	PerReplica map[string]string `json:"per_replica"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	reps := s.gw.Replicas()
	type answer struct {
		rep    *Replica
		models []struct {
			Name   string `json:"name"`
			Digest string `json:"digest"`
		}
		err error
	}
	answers := make([]answer, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		if !rep.eligible() {
			continue
		}
		wg.Add(1)
		go func(i int, rep *Replica) {
			defer wg.Done()
			answers[i].rep = rep
			answers[i].err = s.gw.getReplicaModels(r.Context(), rep, &answers[i].models)
		}(i, rep)
	}
	wg.Wait()

	assignments := s.gw.Assignments()
	byName := map[string]*fleetModel{}
	probed := 0
	for _, a := range answers {
		if a.rep == nil {
			continue
		}
		if a.err != nil {
			a.rep.noteFailure(a.err)
			continue
		}
		probed++
		for _, m := range a.models {
			fm := byName[m.Name]
			if fm == nil {
				fm = &fleetModel{Name: m.Name, PerReplica: map[string]string{}}
				byName[m.Name] = fm
			}
			fm.PerReplica[a.rep.ID] = m.Digest
		}
	}
	out := make([]*fleetModel, 0, len(byName))
	allConsistent := true
	for _, fm := range byName {
		fm.Consistent = true
		for _, d := range fm.PerReplica {
			if fm.Digest == "" {
				fm.Digest = d
			} else if fm.Digest != d {
				fm.Consistent = false
			}
		}
		if !fm.Consistent {
			fm.Digest = ""
			allConsistent = false
		}
		fm.Assigned = assignments[fm.Name]
		fm.MatchesAssignment = fm.Consistent && (fm.Assigned == "" || fm.Assigned == fm.Digest)
		if !fm.MatchesAssignment {
			allConsistent = false
		}
		out = append(out, fm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"models":     out,
		"replicas":   probed,
		"consistent": allConsistent,
	})
}

// getReplicaModels fetches one replica's /v1/models list.
func (g *Gateway) getReplicaModels(ctx context.Context, rep *Replica, out any) error {
	ctx, cancel := context.WithTimeout(ctx, g.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.BaseURL+"/v1/models", nil)
	if err != nil {
		return err
	}
	resp, err := g.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("models answered %d", resp.StatusCode)
	}
	var wrapper struct {
		Models json.RawMessage `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wrapper); err != nil {
		return err
	}
	return json.Unmarshal(wrapper.Models, out)
}

func (s *Server) handleAssignments(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, http.StatusOK, map[string]any{"assignments": s.gw.Assignments()})
}

type reloadRequest struct {
	Model  string `json:"model"`
	Digest string `json:"digest"`
}

// handleModelOp routes POST /v1/models/{name}:{op} through the op
// dispatch table — the same path convention and parser dacserve uses, so
// fleet and replica admin verbs read alike.
func (s *Server) handleModelOp(w http.ResponseWriter, r *http.Request) {
	api.DispatchModelOp(w, r, r.PathValue("nameop"), s.ops)
}

func (s *Server) opReload(w http.ResponseWriter, r *http.Request, name string) {
	var req reloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "", "bad request body: %v", err)
		return
	}
	req.Model = name
	s.rollingReload(w, r, req)
}

// opPolicy fans a serving-policy get (empty body) or set (Policy JSON
// body) out to every eligible replica, so one gateway call flips a defense
// fleet-wide. On a successful set the gateway also learns the model's
// query budget and enforces it at the edge from then on.
func (s *Server) opPolicy(w http.ResponseWriter, r *http.Request, name string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "", "read request body: %v", err)
		return
	}
	set := len(body) > 0
	var budget struct {
		QueryBudget int `json:"query_budget"`
	}
	if set {
		if err := json.Unmarshal(body, &budget); err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "", "bad request body: %v", err)
			return
		}
	}
	results := s.gw.fanoutPolicy(r.Context(), name, body)
	if len(results) == 0 {
		api.WriteError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
			"", "no eligible replica to apply policy for %q", name)
		return
	}
	for _, res := range results {
		if res.Status == http.StatusOK {
			continue
		}
		if res.Error != "" {
			api.WriteError(w, http.StatusBadGateway, api.CodeBadGateway,
				"", "policy on replica %s: %s", res.Replica, res.Error)
			return
		}
		// Relay the replica's own envelope verdict (e.g. a validation
		// rejection) with its status, so the caller sees the real reason.
		if e, perr := api.ParseError(res.Response); perr == nil {
			api.WriteError(w, res.Status, e.Code, "", "policy on replica %s: %s", res.Replica, e.Message)
			return
		}
		api.WriteError(w, http.StatusBadGateway, api.CodeBadGateway,
			"", "policy on replica %s answered %d", res.Replica, res.Status)
		return
	}
	if set {
		s.gw.setEdgeBudget(name, budget.QueryBudget)
	}
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"model":    name,
		"replicas": len(results),
		"results":  results,
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req reloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "", "bad request body: %v", err)
		return
	}
	s.rollingReload(w, r, req)
}

func (s *Server) rollingReload(w http.ResponseWriter, r *http.Request, req reloadRequest) {
	if req.Model == "" || req.Digest == "" {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "", "model and digest must be set")
		return
	}
	if err := s.gw.RollingReload(r.Context(), req.Model, req.Digest); err != nil {
		api.WriteError(w, http.StatusBadGateway, api.CodeBadGateway, "", "%v", err)
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"model": req.Model, "digest": req.Digest, "status": "reloaded",
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	reps := s.gw.Replicas()
	eligible := 0
	for _, rep := range reps {
		if rep.eligible() {
			eligible++
		}
	}
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"replicas": len(reps),
		"eligible": eligible,
	})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if len(s.gw.currentRing().members) == 0 {
		api.WriteJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no ready replica"})
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	reps := s.gw.Replicas()
	perReplica := make(map[string]replicaSnapshot, len(reps))
	for _, rep := range reps {
		perReplica[rep.ID] = rep.snapshot()
	}
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"requests":        s.gw.requests.Value(),
		"retries":         s.gw.retries.Value(),
		"sheds":           s.gw.sheds.Value(),
		"no_replica":      s.gw.noReplica.Value(),
		"ring_generation": int64(s.gw.generation.Value()),
		"eligible":        int64(s.gw.eligibleG.Value()),
		"replicas":        perReplica,
		"assignments":     s.gw.Assignments(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.gw.opts.Obs
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WritePrometheus(w)
}
