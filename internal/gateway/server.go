package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Server exposes a Gateway over HTTP:
//
//	POST /v1/predict       routed prediction (same body as dacserve)
//	GET  /v1/models        fleet-aggregated model list with digest
//	                       consistency verdicts
//	GET  /v1/assignments   advertised {model name → release digest}
//	POST /v1/models/{name}:reload  rolling reload: {"digest": ...}
//	POST /v1/admin/reload  same, with the model in the body
//	                       ({"model": ..., "digest": ...})
//	GET  /healthz          gateway liveness + pool summary
//	GET  /readyz           503 until at least one replica is on the ring
//	GET  /statsz           routing/health counters (JSON)
//	GET  /metricsz         the gateway's obs registry (Prometheus text;
//	                       ?format=json for the JSON snapshot)
type Server struct {
	gw  *Gateway
	mux *http.ServeMux
}

// NewServer wraps gw.
func NewServer(gw *Gateway) *Server {
	s := &Server{gw: gw, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("GET /v1/assignments", s.handleAssignments)
	s.mux.HandleFunc("POST /v1/admin/reload", s.handleReload)
	s.mux.HandleFunc("POST /v1/models/{nameop}", s.handleModelOp)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /statsz", s.handleStats)
	s.mux.HandleFunc("GET /tracez", s.handleTraces)
	s.mux.HandleFunc("GET /metricsz", s.handleMetrics)
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.gw.httpRequests.Inc()
		s.mux.ServeHTTP(w, r)
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	// The gateway is where a fleet trace is born: mint (or adopt) the trace
	// ID here, and it follows the request through routing, each proxied
	// attempt, and the replica's own trace.
	client := obs.ClientFrom(r.Header.Get(obs.HeaderClient), r.RemoteAddr)
	id, hop, _ := obs.ParseTraceHeader(r.Header.Get(obs.HeaderTrace))
	tr := obs.NewRequestTrace(id, nil)
	tr.SetClient(client)
	tr.SetHop(hop)
	fail := func(status int, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		writeTraceError(w, status, tr, msg)
		s.gw.finishPredict(tr, client, status, msg)
	}
	sp := tr.StartSpan("decode")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPredictBody))
	if err != nil {
		sp.End()
		fail(http.StatusBadRequest, "read request body: %v", err)
		return
	}
	// Only the routing key is decoded here; the body is forwarded verbatim
	// so replica answers (and errors) pass through byte-identical.
	var req struct {
		Model string `json:"model"`
	}
	err = json.Unmarshal(body, &req)
	sp.End()
	if err != nil {
		fail(http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Model == "" {
		fail(http.StatusBadRequest, "model must be set")
		return
	}
	tr.SetModel(req.Model)
	s.gw.proxyPredict(r.Context(), w, req.Model, body, tr, client)
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.gw.traces.Snapshot())
}

// fleetModel is one model name's fleet-wide view: which digest each
// replica serves, whether they agree, and whether they match the
// advertised assignment.
type fleetModel struct {
	Name string `json:"name"`
	// Digest is the fleet digest when every replica agrees; empty on
	// conflict (PerReplica then shows the split).
	Digest string `json:"digest,omitempty"`
	// Consistent reports digest agreement across every replica serving the
	// name — the fleet-wide byte-identical-weights guarantee.
	Consistent bool `json:"consistent"`
	// Assigned is the gateway's advertised digest for the name, when set.
	Assigned string `json:"assigned,omitempty"`
	// MatchesAssignment is false while any replica serves a digest other
	// than the assigned one (e.g. mid-roll).
	MatchesAssignment bool `json:"matches_assignment"`
	// PerReplica maps replica ID → served digest.
	PerReplica map[string]string `json:"per_replica"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	reps := s.gw.Replicas()
	type answer struct {
		rep    *Replica
		models []struct {
			Name   string `json:"name"`
			Digest string `json:"digest"`
		}
		err error
	}
	answers := make([]answer, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		if !rep.eligible() {
			continue
		}
		wg.Add(1)
		go func(i int, rep *Replica) {
			defer wg.Done()
			answers[i].rep = rep
			answers[i].err = s.gw.getReplicaModels(r.Context(), rep, &answers[i].models)
		}(i, rep)
	}
	wg.Wait()

	assignments := s.gw.Assignments()
	byName := map[string]*fleetModel{}
	probed := 0
	for _, a := range answers {
		if a.rep == nil {
			continue
		}
		if a.err != nil {
			a.rep.noteFailure(a.err)
			continue
		}
		probed++
		for _, m := range a.models {
			fm := byName[m.Name]
			if fm == nil {
				fm = &fleetModel{Name: m.Name, PerReplica: map[string]string{}}
				byName[m.Name] = fm
			}
			fm.PerReplica[a.rep.ID] = m.Digest
		}
	}
	out := make([]*fleetModel, 0, len(byName))
	allConsistent := true
	for _, fm := range byName {
		fm.Consistent = true
		for _, d := range fm.PerReplica {
			if fm.Digest == "" {
				fm.Digest = d
			} else if fm.Digest != d {
				fm.Consistent = false
			}
		}
		if !fm.Consistent {
			fm.Digest = ""
			allConsistent = false
		}
		fm.Assigned = assignments[fm.Name]
		fm.MatchesAssignment = fm.Consistent && (fm.Assigned == "" || fm.Assigned == fm.Digest)
		if !fm.MatchesAssignment {
			allConsistent = false
		}
		out = append(out, fm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{
		"models":     out,
		"replicas":   probed,
		"consistent": allConsistent,
	})
}

// getReplicaModels fetches one replica's /v1/models list.
func (g *Gateway) getReplicaModels(ctx context.Context, rep *Replica, out any) error {
	ctx, cancel := context.WithTimeout(ctx, g.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.BaseURL+"/v1/models", nil)
	if err != nil {
		return err
	}
	resp, err := g.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("models answered %d", resp.StatusCode)
	}
	var wrapper struct {
		Models json.RawMessage `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wrapper); err != nil {
		return err
	}
	return json.Unmarshal(wrapper.Models, out)
}

func (s *Server) handleAssignments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"assignments": s.gw.Assignments()})
}

type reloadRequest struct {
	Model  string `json:"model"`
	Digest string `json:"digest"`
}

// handleModelOp routes POST /v1/models/{name}:{op} — the same path
// convention dacserve uses for :audit and :load, so fleet and replica
// admin verbs read alike. The only gateway op is :reload.
func (s *Server) handleModelOp(w http.ResponseWriter, r *http.Request) {
	nameop := r.PathValue("nameop")
	name, op, ok := cutLast(nameop, ":")
	if !ok || name == "" {
		httpError(w, http.StatusNotFound, "want /v1/models/{name}:reload, got %q", nameop)
		return
	}
	if op != "reload" {
		httpError(w, http.StatusNotFound, "unknown model op %q (want reload)", op)
		return
	}
	var req reloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req.Model = name
	s.rollingReload(w, r, req)
}

// cutLast splits s around the final occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	if i := strings.LastIndex(s, sep); i >= 0 {
		return s[:i], s[i+len(sep):], true
	}
	return s, "", false
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req reloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	s.rollingReload(w, r, req)
}

func (s *Server) rollingReload(w http.ResponseWriter, r *http.Request, req reloadRequest) {
	if req.Model == "" || req.Digest == "" {
		httpError(w, http.StatusBadRequest, "model and digest must be set")
		return
	}
	if err := s.gw.RollingReload(r.Context(), req.Model, req.Digest); err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model": req.Model, "digest": req.Digest, "status": "reloaded",
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	reps := s.gw.Replicas()
	eligible := 0
	for _, rep := range reps {
		if rep.eligible() {
			eligible++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"replicas": len(reps),
		"eligible": eligible,
	})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if len(s.gw.currentRing().members) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no ready replica"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	reps := s.gw.Replicas()
	perReplica := make(map[string]replicaSnapshot, len(reps))
	for _, rep := range reps {
		perReplica[rep.ID] = rep.snapshot()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"requests":        s.gw.requests.Value(),
		"retries":         s.gw.retries.Value(),
		"sheds":           s.gw.sheds.Value(),
		"no_replica":      s.gw.noReplica.Value(),
		"ring_generation": int64(s.gw.generation.Value()),
		"eligible":        int64(s.gw.eligibleG.Value()),
		"replicas":        perReplica,
		"assignments":     s.gw.Assignments(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.gw.opts.Obs
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WritePrometheus(w)
}
