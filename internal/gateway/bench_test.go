package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/obs"
	"repro/internal/serve"
)

// emitBench, when set to a path, makes TestEmitGatewayBench measure fleet
// throughput across pool sizes and write the numbers there as JSON. Wired
// to `make gateway-bench`; empty (the default) skips the test so the
// regular suite stays fast and timing-free.
var emitBench = flag.String("emit-bench", "", "write fleet throughput numbers (BENCH_gateway.json) to this path")

// Bench geometry. On a single-core host aggregate throughput cannot come
// from CPU parallelism, so the bench fixes each replica's capacity
// explicitly — benchMaxInflight concurrent requests, each held open for
// roughly one benchFlush window by the replica's batching engine — and
// scales offered load with the pool. Aggregate req/s then grows with
// replica count exactly as it would across machines, while the core stays
// far from saturated (the model forward is microseconds against the
// millisecond flush window).
const (
	benchFlush       = 8 * time.Millisecond
	benchMaxInflight = 2
	benchModels      = 4
	benchReqsPerRep  = 200
)

type gwBenchPoint struct {
	Replicas  int     `json:"replicas"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	ReqPerSec float64 `json:"req_per_sec"`
	Sheds     int64   `json:"sheds"`
	Retries   int64   `json:"retries"`
}

type gwReloadReport struct {
	Replicas   int    `json:"replicas"`
	Clients    int    `json:"clients"`
	Requests   int    `json:"requests"`
	Failed     int64  `json:"failed"`
	Consistent bool   `json:"consistent_after"`
	Digest     string `json:"digest_after"`
}

type gwBenchReport struct {
	Threads       int            `json:"threads"`
	Notes         string         `json:"notes,omitempty"`
	Points        []gwBenchPoint `json:"points"`
	RollingReload gwReloadReport `json:"rolling_reload"`
}

// benchReplica is startReplica with the bench's slow flush window, which
// is what gives each replica a fixed capacity on a single core.
func benchReplica(t testing.TB, id string, store *artifact.Store) *testReplica {
	t.Helper()
	reg := serve.NewRegistry(serve.Options{
		MaxBatch:   benchMaxInflight,
		QueueDepth: 64,
		FlushEvery: benchFlush,
		Threads:    1,
		Obs:        obs.NewRegistry(),
		Store:      store,
	})
	srv := serve.NewServer(reg, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	srv.SetReady()
	return &testReplica{id: id, reg: reg, srv: srv, ts: ts}
}

// benchFleet spins up n replicas serving the same digests, a gateway over
// them (fresh obs registry so counters are per-point), and the gateway's
// HTTP front.
func benchFleet(t testing.TB, n int, store *artifact.Store, names, digests []string) (*Gateway, *obs.Registry, *httptest.Server) {
	t.Helper()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	reg := obs.NewRegistry()
	g := New(Options{
		ProbeInterval: -1,
		MaxInflight:   benchMaxInflight,
		RetryBackoff:  -1,
		Client:        client,
		Obs:           reg,
	})
	t.Cleanup(g.Close)
	for i := 0; i < n; i++ {
		rep := benchReplica(t, fmt.Sprintf("r%d", i), store)
		for j, name := range names {
			if _, err := rep.reg.LoadDigest(name, digests[j], serve.ModeAuto); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := g.AddReplica(rep.id, rep.ts.URL); err != nil {
			t.Fatal(err)
		}
	}
	g.ProbeAll(context.Background())
	front := httptest.NewServer(NewServer(g).Handler())
	t.Cleanup(front.Close)
	return g, reg, front
}

// hammer drives total requests through the gateway front from `clients`
// goroutines, round-robin over the model names, retrying shed (non-200)
// answers after a short pause. Returns req/s and the non-200 count before
// retries.
func hammer(t testing.TB, frontURL string, names []string, clients, total int) (reqPerSec float64, failed int64) {
	t.Helper()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	bodies := make([][]byte, len(names))
	in := testInputs(1, 64, 95)[0] // 1x8x8 flattened
	for i, name := range names {
		bodies[i] = predictBody(t, name, in)
	}
	var fails atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < total/clients; i++ {
				body := bodies[(c+i)%len(bodies)]
				for {
					resp, err := client.Post(frontURL+"/v1/predict", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Error(err)
						return
					}
					status := resp.StatusCode
					resp.Body.Close()
					if status == http.StatusOK {
						break
					}
					fails.Add(1)
					time.Sleep(time.Millisecond)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return float64(total) / elapsed.Seconds(), fails.Load()
}

func TestEmitGatewayBench(t *testing.T) {
	if *emitBench == "" {
		t.Skip("pass -emit-bench=<path> (make gateway-bench) to measure fleet throughput")
	}
	store := testStore(t)
	names := make([]string, benchModels)
	digests := make([]string, benchModels)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
		digests[i] = publishReleased(t, store, int64(96+i), i%2 == 0)
	}

	rep := gwBenchReport{
		Threads: runtime.GOMAXPROCS(0),
		Notes: fmt.Sprintf(
			"single-core host: points scale offered load with pool size against a "+
				"fixed per-replica capacity (max_inflight=%d, flush window %s), so "+
				"req/s growth reflects fleet routing, not CPU parallelism; "+
				"rolling_reload rolls one model to a new digest across the pool "+
				"under fire, failed counts client-visible non-200s (must be 0).",
			benchMaxInflight, benchFlush),
	}

	// Scaling points: clients match aggregate capacity, so each pool size
	// runs at its own saturation throughput.
	for _, n := range []int{1, 2, 4} {
		_, greg, front := benchFleet(t, n, store, names, digests)
		clients := benchMaxInflight * n
		total := benchReqsPerRep * n
		rps, failed := hammer(t, front.URL, names, clients, total)
		rep.Points = append(rep.Points, gwBenchPoint{
			Replicas: n, Clients: clients, Requests: total, ReqPerSec: rps,
			Sheds:   greg.Counter("gateway_sheds_total").Value(),
			Retries: greg.Counter("gateway_retries_total").Value(),
		})
		t.Logf("replicas=%d clients=%d  %7.0f req/s  (%d shed)", n, clients, rps, failed)
	}
	for i := 1; i < len(rep.Points); i++ {
		prev, cur := rep.Points[i-1], rep.Points[i]
		if cur.ReqPerSec <= prev.ReqPerSec {
			t.Errorf("req/s not monotonic: %d replicas %.0f <= %d replicas %.0f",
				cur.Replicas, cur.ReqPerSec, prev.Replicas, prev.ReqPerSec)
		}
	}

	// Rolling reload under fire: a 4-replica pool at half load rolls m0
	// onto a new digest one replica at a time; every client request must
	// still answer 200.
	g, _, front := benchFleet(t, 4, store, names, digests)
	next := publishReleased(t, store, 200, true)
	const reloadClients, reloadTotal = 3, 600
	var failed atomic.Int64
	done := make(chan struct{})
	var rerr error
	go func() {
		defer close(done)
		// Let traffic establish before the roll starts.
		time.Sleep(50 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		rerr = g.RollingReload(ctx, names[0], next)
	}()
	_, fails := hammer(t, front.URL, names, reloadClients, reloadTotal)
	failed.Store(fails)
	<-done
	if rerr != nil {
		t.Errorf("rolling reload: %v", rerr)
	}
	if fails != 0 {
		t.Errorf("rolling reload dropped requests: %d client-visible non-200s", fails)
	}

	// The fleet must now serve the new digest consistently.
	status, body := getJSON(t, front.URL+"/v1/models")
	if status != http.StatusOK {
		t.Fatalf("post-reload /v1/models: %d", status)
	}
	var fleet []fleetModel
	if err := json.Unmarshal(body["models"], &fleet); err != nil {
		t.Fatal(err)
	}
	consistent := false
	for _, fm := range fleet {
		if fm.Name == names[0] {
			consistent = fm.Consistent && fm.Digest == next
		}
	}
	if !consistent {
		t.Errorf("fleet not consistent on %s after rolling reload: %+v", names[0], fleet)
	}
	rep.RollingReload = gwReloadReport{
		Replicas: 4, Clients: reloadClients, Requests: reloadTotal,
		Failed: fails, Consistent: consistent, Digest: next,
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*emitBench, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", *emitBench)
}
