package tensor

import "fmt"

// Weights is the weight operand of an eval-path matrix multiply, in one of
// two physical layouts:
//
//   - dense: a row-major []float64, aliasing a parameter tensor's storage —
//     the default, byte-identical to multiplying by the tensor itself;
//   - codebook: a lookup table of ≤256 representative values plus one uint8
//     index per element (the layout quantized releases ship in), so the
//     multiply reads 1 byte per weight instead of 8 and never materializes
//     a dequantized tensor.
//
// The codebook kernels produce bit-identical results to running the dense
// kernels over the dequantized values lut[idx[i]], because every kernel
// follows the accumulation-order rule in matmul.go and lut[idx[i]] is the
// exact float64 the dequantized tensor would hold.
type Weights struct {
	dense []float64
	lut   []float64
	idx   []uint8
}

// DenseWeights wraps a row-major float64 slice (aliased, not copied).
func DenseWeights(v []float64) Weights { return Weights{dense: v} }

// CodebookWeights wraps a codebook view: element i has value lut[idx[i]].
// Both slices are aliased, not copied. It panics on an empty or oversized
// lookup table or an out-of-range index — the caller (a model decoder)
// is expected to have validated untrusted inputs already; this is the
// memory-safety backstop that keeps the kernels bounds-check-free.
func CodebookWeights(lut []float64, idx []uint8) Weights {
	if len(lut) == 0 || len(lut) > 256 {
		panic(fmt.Sprintf("tensor: codebook has %d levels (want 1..256)", len(lut)))
	}
	for i, k := range idx {
		if int(k) >= len(lut) {
			panic(fmt.Sprintf("tensor: codebook index %d at element %d out of range for %d levels", k, i, len(lut)))
		}
	}
	return Weights{lut: lut, idx: idx}
}

// IsDense reports whether the view is a plain float64 slice.
func (w Weights) IsDense() bool { return w.idx == nil }

// Len returns the number of weight elements in the view.
func (w Weights) Len() int {
	if w.IsDense() {
		return len(w.dense)
	}
	return len(w.idx)
}

// Bytes returns the resident size of the view's backing storage: 8 bytes
// per dense element, or 1 byte per index plus 8 per lookup-table level.
func (w Weights) Bytes() int {
	if w.IsDense() {
		return 8 * len(w.dense)
	}
	return len(w.idx) + 8*len(w.lut)
}

// At returns element i's value regardless of layout.
func (w Weights) At(i int) float64 {
	if w.IsDense() {
		return w.dense[i]
	}
	return w.lut[w.idx[i]]
}

// Materialize writes the view's values into dst (len must match), i.e.
// dequantizes a codebook view. Used by audit paths that need a float
// tensor, never by the eval kernels.
func (w Weights) Materialize(dst []float64) {
	if len(dst) != w.Len() {
		panic(fmt.Sprintf("tensor: Materialize dst has %d elements, view has %d", len(dst), w.Len()))
	}
	if w.IsDense() {
		copy(dst, w.dense)
		return
	}
	for i, k := range w.idx {
		dst[i] = w.lut[k]
	}
}

// MatMulWSlice computes dst = W·b for W (m×k) in view form and b (k×n) —
// the convolution forward shape (W is the kernel matrix, b the im2col patch
// matrix). Bit-identical to MatMulSlice over the dense values.
func MatMulWSlice(dst []float64, w Weights, b []float64, m, k, n int) {
	if w.Len() != m*k {
		panic(fmt.Sprintf("tensor: MatMulWSlice weight view has %d elements, want %d", w.Len(), m*k))
	}
	if w.IsDense() {
		MatMulSlice(dst, w.dense, b, m, k, n)
		return
	}
	checkSlices("MatMulWSlice", dst, b, b, m*n, k*n, k*n)
	lutMatMul(dst, w.lut, w.idx, b, m, k, n)
}

// MatMulTWSlice computes dst = a·Wᵀ for a (m×k) and W (n×k) in view form —
// the dense-layer forward shape (a is the activation batch, W the (out,in)
// weight matrix). Bit-identical to MatMulTSlice over the dense values.
func MatMulTWSlice(dst, a []float64, w Weights, m, k, n int) {
	if w.Len() != n*k {
		panic(fmt.Sprintf("tensor: MatMulTWSlice weight view has %d elements, want %d", w.Len(), n*k))
	}
	if w.IsDense() {
		MatMulTSlice(dst, a, w.dense, m, k, n)
		return
	}
	checkSlices("MatMulTWSlice", dst, a, a, m*n, m*k, m*k)
	lutMatMulT(dst, a, w.lut, w.idx, m, k, n)
}

// lutMatMul computes dst = W·b where W[i][p] = lut[idx[i*k+p]]. Structure
// and op order mirror matmulBlocked exactly; the level lookup happens once
// per (row, k-term), amortized over the n-wide inner sweep, so the codebook
// indirection costs ~nothing on the conv path.
func lutMatMul(dst, lut []float64, idx []uint8, b []float64, m, k, n int) {
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m; i++ {
		irow := idx[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		p := 0
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := lut[irow[p]], lut[irow[p+1]], lut[irow[p+2]], lut[irow[p+3]]
			if a0 == 0 || a1 == 0 || a2 == 0 || a3 == 0 {
				for q := p; q < p+4; q++ {
					if av := lut[irow[q]]; av != 0 {
						axpyRow(drow, b[q*n:(q+1)*n], av)
					}
				}
				continue
			}
			b0 := b[p*n : (p+1)*n]
			b1 := b[(p+1)*n : (p+2)*n]
			b2 := b[(p+2)*n : (p+3)*n]
			b3 := b[(p+3)*n : (p+4)*n]
			for j := range drow {
				v := drow[j]
				t0 := a0 * b0[j]
				v += t0
				t1 := a1 * b1[j]
				v += t1
				t2 := a2 * b2[j]
				v += t2
				t3 := a3 * b3[j]
				v += t3
				drow[j] = v
			}
		}
		for ; p < k; p++ {
			if av := lut[irow[p]]; av != 0 {
				axpyRow(drow, b[p*n:(p+1)*n], av)
			}
		}
	}
}

// lutMatMulT computes dst = a·Wᵀ where W[j][p] = lut[idx[j*k+p]].
// Structure and op order mirror matmulTBlocked exactly.
func lutMatMulT(dst, a, lut []float64, idx []uint8, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			i0 := idx[j*k : (j+1)*k]
			i1 := idx[(j+1)*k : (j+2)*k]
			i2 := idx[(j+2)*k : (j+3)*k]
			i3 := idx[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 float64
			for p, av := range arow {
				t0 := av * lut[i0[p]]
				s0 += t0
				t1 := av * lut[i1[p]]
				s1 += t1
				t2 := av * lut[i2[p]]
				s2 += t2
				t3 := av * lut[i3[p]]
				s3 += t3
			}
			drow[j] = s0
			drow[j+1] = s1
			drow[j+2] = s2
			drow[j+3] = s3
		}
		for ; j < n; j++ {
			irow := idx[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				t := av * lut[irow[p]]
				s += t
			}
			drow[j] = s
		}
	}
}
