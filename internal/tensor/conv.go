package tensor

import "fmt"

// ConvDims describes a 2-D convolution geometry over NCHW tensors.
type ConvDims struct {
	InC, InH, InW int // input channels, height, width
	OutC          int // output channels
	KH, KW        int // kernel height, width
	Stride, Pad   int // uniform stride and zero padding
	OutH, OutW    int // derived output spatial dims
	ColRows, Cols int // derived im2col matrix dims per sample
	InElems       int // InC*InH*InW
	OutElems      int // OutC*OutH*OutW
}

// NewConvDims validates and derives a convolution geometry.
func NewConvDims(inC, inH, inW, outC, kh, kw, stride, pad int) ConvDims {
	if stride <= 0 {
		panic("tensor: conv stride must be positive")
	}
	outH := (inH+2*pad-kh)/stride + 1
	outW := (inW+2*pad-kw)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: conv produces empty output: in %dx%d kernel %dx%d stride %d pad %d", inH, inW, kh, kw, stride, pad))
	}
	d := ConvDims{
		InC: inC, InH: inH, InW: inW, OutC: outC,
		KH: kh, KW: kw, Stride: stride, Pad: pad,
		OutH: outH, OutW: outW,
	}
	d.ColRows = inC * kh * kw
	d.Cols = outH * outW
	d.InElems = inC * inH * inW
	d.OutElems = outC * outH * outW
	return d
}

// Im2Col expands one NCHW sample (flattened in src, length d.InElems) into a
// (ColRows × Cols) patch matrix written into dst (length ColRows*Cols).
// Column j holds the receptive field of output pixel j, channel-major.
func Im2Col(d ConvDims, src, dst []float64) {
	if len(src) != d.InElems || len(dst) != d.ColRows*d.Cols {
		panic(fmt.Sprintf("tensor: Im2Col buffer sizes src=%d dst=%d want %d,%d", len(src), len(dst), d.InElems, d.ColRows*d.Cols))
	}
	cols := d.Cols
	idx := 0
	for c := 0; c < d.InC; c++ {
		chBase := c * d.InH * d.InW
		for ky := 0; ky < d.KH; ky++ {
			for kx := 0; kx < d.KW; kx++ {
				row := dst[idx*cols : (idx+1)*cols]
				idx++
				j := 0
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy*d.Stride - d.Pad + ky
					if iy < 0 || iy >= d.InH {
						for ox := 0; ox < d.OutW; ox++ {
							row[j] = 0
							j++
						}
						continue
					}
					rowBase := chBase + iy*d.InW
					for ox := 0; ox < d.OutW; ox++ {
						ix := ox*d.Stride - d.Pad + kx
						if ix < 0 || ix >= d.InW {
							row[j] = 0
						} else {
							row[j] = src[rowBase+ix]
						}
						j++
					}
				}
			}
		}
	}
}

// Col2Im scatters a (ColRows × Cols) patch-gradient matrix back into an
// input-gradient buffer dst (length d.InElems), accumulating overlaps.
// dst is zeroed first.
func Col2Im(d ConvDims, src, dst []float64) {
	if len(dst) != d.InElems || len(src) != d.ColRows*d.Cols {
		panic(fmt.Sprintf("tensor: Col2Im buffer sizes src=%d dst=%d want %d,%d", len(src), len(dst), d.ColRows*d.Cols, d.InElems))
	}
	for i := range dst {
		dst[i] = 0
	}
	cols := d.Cols
	idx := 0
	for c := 0; c < d.InC; c++ {
		chBase := c * d.InH * d.InW
		for ky := 0; ky < d.KH; ky++ {
			for kx := 0; kx < d.KW; kx++ {
				row := src[idx*cols : (idx+1)*cols]
				idx++
				j := 0
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy*d.Stride - d.Pad + ky
					if iy < 0 || iy >= d.InH {
						j += d.OutW
						continue
					}
					rowBase := chBase + iy*d.InW
					for ox := 0; ox < d.OutW; ox++ {
						ix := ox*d.Stride - d.Pad + kx
						if ix >= 0 && ix < d.InW {
							dst[rowBase+ix] += row[j]
						}
						j++
					}
				}
			}
		}
	}
}
