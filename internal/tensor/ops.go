package tensor

import (
	"fmt"
	"math"
)

// Add computes t += o elementwise.
func (t *Tensor) Add(o *Tensor) *Tensor {
	checkSameLen("Add", t, o)
	for i, v := range o.data {
		t.data[i] += v
	}
	return t
}

// Sub computes t -= o elementwise.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	checkSameLen("Sub", t, o)
	for i, v := range o.data {
		t.data[i] -= v
	}
	return t
}

// Mul computes t *= o elementwise (Hadamard product).
func (t *Tensor) Mul(o *Tensor) *Tensor {
	checkSameLen("Mul", t, o)
	for i, v := range o.data {
		t.data[i] *= v
	}
	return t
}

// Scale multiplies every element by a.
func (t *Tensor) Scale(a float64) *Tensor {
	for i := range t.data {
		t.data[i] *= a
	}
	return t
}

// AddScaled computes t += a*o elementwise, the axpy primitive used by the
// optimizers.
func (t *Tensor) AddScaled(a float64, o *Tensor) *Tensor {
	checkSameLen("AddScaled", t, o)
	for i, v := range o.data {
		t.data[i] += a * v
	}
	return t
}

// AddScalar adds a to every element.
func (t *Tensor) AddScalar(a float64) *Tensor {
	for i := range t.data {
		t.data[i] += a
	}
	return t
}

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Std returns the population standard deviation of all elements.
func (t *Tensor) Std() float64 {
	n := len(t.data)
	if n == 0 {
		return 0
	}
	m := t.Mean()
	ss := 0.0
	for _, v := range t.data {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Min returns the smallest element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Dot returns the inner product of t and o viewed as flat vectors.
func (t *Tensor) Dot(o *Tensor) float64 {
	checkSameLen("Dot", t, o)
	s := 0.0
	for i, v := range t.data {
		s += v * o.data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	return math.Sqrt(t.Dot(t))
}

// ArgMax returns the index of the largest element in the flattened tensor.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Clamp limits every element to [lo, hi].
func (t *Tensor) Clamp(lo, hi float64) *Tensor {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
	return t
}

func checkSameLen(op string, a, b *Tensor) {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: %s length mismatch: %v vs %v", op, a.shape, b.shape))
	}
}
