// Package tensor provides a small dense float64 tensor library used by the
// neural-network substrate. It supports the shapes and operations needed to
// train convolutional classifiers on CPU: elementwise arithmetic, matrix
// multiplication, im2col/col2im for convolution, reductions, and seeded
// random initialization.
//
// Tensors are row-major. A Tensor value owns its backing slice unless it was
// produced by View, in which case it aliases the parent's storage.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major float64 array with an explicit shape.
type Tensor struct {
	shape []int
	data  []float64
}

// New allocates a zero-filled tensor with the given shape. A scalar is
// represented by an empty shape. New panics on negative dimensions.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the backing slice. Mutations are visible to all views.
func (t *Tensor) Data() []float64 { return t.data }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NDim returns the number of dimensions.
func (t *Tensor) NDim() int { return len(t.shape) }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of t with a new shape covering the same elements.
// The element count must match. The view shares storage with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}
}

// View returns a tensor aliasing rows [lo, hi) along the first dimension.
func (t *Tensor) View(lo, hi int) *Tensor {
	if t.NDim() == 0 {
		panic("tensor: cannot view a scalar")
	}
	if lo < 0 || hi > t.shape[0] || lo > hi {
		panic(fmt.Sprintf("tensor: view [%d,%d) out of range for first dim %d", lo, hi, t.shape[0]))
	}
	stride := len(t.data) / max(t.shape[0], 1)
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	s[0] = hi - lo
	return &Tensor{shape: s, data: t.data[lo*stride : hi*stride]}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set assigns v to the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Release drops the backing storage, keeping the shape. A released tensor
// reports Len() 0 and cannot be read or written until storage is restored;
// codebook-native serving uses this to free float weight copies whose values
// live in a quantized view instead. ShapeLen returns the element count the
// shape implies regardless of whether storage is present.
func (t *Tensor) Release() { t.data = nil }

// Released reports whether the backing storage has been dropped.
func (t *Tensor) Released() bool { return t.data == nil }

// ShapeLen returns the element count implied by the shape, which for a
// released tensor differs from Len().
func (t *Tensor) ShapeLen() int {
	n := 1
	for _, d := range t.shape {
		n *= d
	}
	return n
}

// CopyFrom copies o's elements into t. Shapes must match in element count.
func (t *Tensor) CopyFrom(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.data), len(o.data)))
	}
	copy(t.data, o.data)
}

// String renders a compact description with a preview of the data.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	show := n
	if show > 8 {
		show = 8
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if show < n {
		fmt.Fprintf(&b, " ... (%d more)", n-show)
	}
	b.WriteString("]")
	return b.String()
}

// IsFinite reports whether every element is finite (no NaN or Inf).
func (t *Tensor) IsFinite() bool {
	for _, v := range t.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
