package tensor

import (
	"math"
	"math/rand"
)

// RandN fills t with samples from N(mean, std²) drawn from rng.
func (t *Tensor) RandN(rng *rand.Rand, mean, std float64) *Tensor {
	for i := range t.data {
		t.data[i] = rng.NormFloat64()*std + mean
	}
	return t
}

// RandU fills t with samples uniform in [lo, hi).
func (t *Tensor) RandU(rng *rand.Rand, lo, hi float64) *Tensor {
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// KaimingNormal fills t with He-normal initialization for a layer with the
// given fan-in, the standard init for ReLU networks.
func (t *Tensor) KaimingNormal(rng *rand.Rand, fanIn int) *Tensor {
	if fanIn <= 0 {
		fanIn = 1
	}
	std := math.Sqrt(2.0 / float64(fanIn))
	return t.RandN(rng, 0, std)
}

// XavierUniform fills t with Glorot-uniform initialization.
func (t *Tensor) XavierUniform(rng *rand.Rand, fanIn, fanOut int) *Tensor {
	if fanIn <= 0 {
		fanIn = 1
	}
	if fanOut <= 0 {
		fanOut = 1
	}
	lim := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return t.RandU(rng, -lim, lim)
}
