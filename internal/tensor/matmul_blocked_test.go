package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// oddShapes exercises every tail path of the blocked kernels: quads with
// remainders in every dimension, degenerate 1-wide products, and sizes
// straddling the 4-wide tile boundary.
var oddShapes = [][3]int{
	{1, 1, 1}, {1, 4, 1}, {2, 3, 5}, {3, 7, 2}, {5, 5, 5},
	{4, 4, 4}, {7, 8, 13}, {8, 16, 8}, {13, 17, 3}, {16, 15, 17},
	{17, 1, 9}, {3, 13, 16},
}

// fillCases generates operand fillings that stress the bit-identity
// guarantee: dense gaussians, zero-heavy slices (exercising the skip-set
// rule), and values spanning wildly different magnitudes (where any
// accumulation-order change shows up in the low bits).
func fillCases(rng *rand.Rand, dst []float64, mode int) {
	switch mode {
	case 0:
		for i := range dst {
			dst[i] = rng.NormFloat64()
		}
	case 1:
		for i := range dst {
			if rng.Intn(3) == 0 {
				dst[i] = 0
			} else {
				dst[i] = rng.NormFloat64()
			}
		}
	case 2:
		for i := range dst {
			dst[i] = rng.NormFloat64() * math.Pow(2, float64(rng.Intn(80)-40))
		}
	}
}

func bitEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d = %x (%v), want %x (%v)",
				label, i, math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}

// TestBlockedKernelsBitIdentical pins the accumulation-order rule from
// matmul.go: the blocked kernels the public API dispatches to must be
// bit-identical to the naive reference loops, for all three product forms,
// across odd shapes and adversarial fillings.
func TestBlockedKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, sh := range oddShapes {
		m, k, n := sh[0], sh[1], sh[2]
		for mode := 0; mode < 3; mode++ {
			a := make([]float64, m*k)
			b := make([]float64, k*n)
			fillCases(rng, a, mode)
			fillCases(rng, b, mode)
			want := make([]float64, m*n)
			got := make([]float64, m*n)

			matmulNaive(want, a, b, m, k, n)
			matmulBlocked(got, a, b, m, k, n)
			bitEqual(t, "matmul", got, want)

			bt := make([]float64, n*k)
			fillCases(rng, bt, mode)
			matmulTNaive(want, a, bt, m, k, n)
			matmulTBlocked(got, a, bt, m, k, n)
			bitEqual(t, "matmulT", got, want)

			at := make([]float64, k*m)
			fillCases(rng, at, mode)
			tmatmulNaive(want, at, b, k, m, n)
			tmatmulBlocked(got, at, b, k, m, n)
			bitEqual(t, "tmatmul", got, want)
		}
	}
}

// TestBlockedZeroSkipInfinity pins the hazard the skip-set rule exists for:
// a zero a-term against an ±Inf b-term must be skipped (not producing NaN)
// in the blocked kernels exactly as in the naive ones.
func TestBlockedZeroSkipInfinity(t *testing.T) {
	m, k, n := 3, 7, 5
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	rng := rand.New(rand.NewSource(42))
	for i := range a {
		if i%3 == 0 {
			a[i] = 0
		} else {
			a[i] = rng.NormFloat64()
		}
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	// Place ±Inf in b rows that zero a-terms hit.
	b[0*n+2] = math.Inf(1)
	b[3*n+4] = math.Inf(-1)

	want := make([]float64, m*n)
	got := make([]float64, m*n)
	matmulNaive(want, a, b, m, k, n)
	matmulBlocked(got, a, b, m, k, n)
	bitEqual(t, "matmul inf", got, want)

	at := make([]float64, k*m)
	copy(at, a[:k*m])
	tmatmulNaive(want, at, b, k, m, n)
	tmatmulBlocked(got, at, b, k, m, n)
	bitEqual(t, "tmatmul inf", got, want)
}

// quantize rounds a dense slice onto a small codebook, returning the lut,
// indices, and the dequantized values lut[idx[i]] the LUT kernels must
// reproduce bit-for-bit.
func quantizeForTest(rng *rand.Rand, vals []float64, levels int) (lut []float64, idx []uint8, deq []float64) {
	lut = make([]float64, levels)
	for i := range lut {
		lut[i] = rng.NormFloat64()
	}
	lut[0] = 0 // ensure the zero-skip path is exercised
	idx = make([]uint8, len(vals))
	deq = make([]float64, len(vals))
	for i := range vals {
		idx[i] = uint8(rng.Intn(levels))
		deq[i] = lut[idx[i]]
	}
	return lut, idx, deq
}

// TestLUTKernelsBitIdentical pins the codebook kernels to the naive loops
// over the dequantized weights — the invariant that makes codebook-native
// serving score-identical to the dequantized forward pass.
func TestLUTKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, sh := range oddShapes {
		m, k, n := sh[0], sh[1], sh[2]
		for _, levels := range []int{2, 8, 256} {
			// Conv form: dst = W·b with W quantized.
			wlut, widx, wdeq := quantizeForTest(rng, make([]float64, m*k), levels)
			b := make([]float64, k*n)
			fillCases(rng, b, 0)
			want := make([]float64, m*n)
			got := make([]float64, m*n)
			matmulNaive(want, wdeq, b, m, k, n)
			MatMulWSlice(got, CodebookWeights(wlut, widx), b, m, k, n)
			bitEqual(t, "lutMatMul", got, want)

			// Dense form: dst = a·Wᵀ with W (n×k) quantized.
			tlut, tidx, tdeq := quantizeForTest(rng, make([]float64, n*k), levels)
			a := make([]float64, m*k)
			fillCases(rng, a, 2)
			matmulTNaive(want, a, tdeq, m, k, n)
			MatMulTWSlice(got, a, CodebookWeights(tlut, tidx), m, k, n)
			bitEqual(t, "lutMatMulT", got, want)
		}
	}
}

// TestDenseWeightsDispatchMatchesSlice pins the dense view path to the plain
// slice entry points — the "default backend is byte-identical" contract.
func TestDenseWeightsDispatchMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m, k, n := 5, 13, 7
	w := make([]float64, m*k)
	b := make([]float64, k*n)
	fillCases(rng, w, 0)
	fillCases(rng, b, 0)
	want := make([]float64, m*n)
	got := make([]float64, m*n)
	MatMulSlice(want, w, b, m, k, n)
	MatMulWSlice(got, DenseWeights(w), b, m, k, n)
	bitEqual(t, "dense W dispatch", got, want)

	wt := make([]float64, n*k)
	a := make([]float64, m*k)
	fillCases(rng, wt, 0)
	fillCases(rng, a, 0)
	MatMulTSlice(want, a, wt, m, k, n)
	MatMulTWSlice(got, a, DenseWeights(wt), m, k, n)
	bitEqual(t, "dense Wᵀ dispatch", got, want)
}

func TestWeightsAccessors(t *testing.T) {
	d := DenseWeights([]float64{1, 2, 3})
	if !d.IsDense() || d.Len() != 3 || d.Bytes() != 24 || d.At(2) != 3 {
		t.Fatalf("dense view accessors wrong: len=%d bytes=%d", d.Len(), d.Bytes())
	}
	c := CodebookWeights([]float64{0, 0.5}, []uint8{1, 0, 1, 1})
	if c.IsDense() || c.Len() != 4 || c.Bytes() != 4+16 || c.At(0) != 0.5 {
		t.Fatalf("codebook view accessors wrong: len=%d bytes=%d", c.Len(), c.Bytes())
	}
	out := make([]float64, 4)
	c.Materialize(out)
	wantEq(t, out, []float64{0.5, 0, 0.5, 0.5})
}

func TestCodebookWeightsValidation(t *testing.T) {
	t.Run("empty lut", func(t *testing.T) {
		defer expectPanic(t, "empty lut")
		CodebookWeights(nil, []uint8{0})
	})
	t.Run("index out of range", func(t *testing.T) {
		defer expectPanic(t, "index range")
		CodebookWeights([]float64{1, 2}, []uint8{0, 2})
	})
	t.Run("view length mismatch", func(t *testing.T) {
		defer expectPanic(t, "length mismatch")
		MatMulWSlice(make([]float64, 4), CodebookWeights([]float64{1}, []uint8{0, 0, 0}), make([]float64, 4), 2, 2, 2)
	})
}
