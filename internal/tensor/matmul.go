package tensor

import "fmt"

// MatMul returns a new (m×n) tensor holding the product of a (m×k) and
// b (k×n). Both inputs must be 2-D.
func MatMul(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims differ: %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	matmulInto(out.data, a.data, b.data, m, k, n)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch %v = %v x %v", dst.shape, a.shape, b.shape))
	}
	matmulInto(dst.data, a.data, b.data, m, k, n)
}

// matmulInto is an ikj-ordered kernel: cache-friendly row streaming over b.
func matmulInto(dst, a, b []float64, m, k, n int) {
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulT returns a·bᵀ for a (m×k) and b (n×k), producing (m×n). This is the
// backward-pass primitive for dense layers.
func MatMulT(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMulT needs 2-D operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dims differ: %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	matmulTInto(out.data, a.data, b.data, m, k, n)
	return out
}

func matmulTInto(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
}

// TMatMul returns aᵀ·b for a (k×m) and b (k×n), producing (m×n). This is the
// weight-gradient primitive for dense layers.
func TMatMul(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: TMatMul needs 2-D operands, got %v x %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: TMatMul inner dims differ: %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	tmatmulInto(out.data, a.data, b.data, k, m, n)
	return out
}

func tmatmulInto(dst, a, b []float64, k, m, n int) {
	for i := range dst {
		dst[i] = 0
	}
	for p := 0; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// The *Slice variants below run the same kernels over raw row-major slices.
// They exist for the parallel layer paths, which shard batches into
// sub-slices of shared storage and cannot afford a header allocation per
// sample. Each validates lengths, so a mis-sliced call fails loudly instead
// of corrupting a neighbouring sample's rows.

func checkSlices(op string, dst, a, b []float64, dl, al, bl int) {
	if len(dst) != dl || len(a) != al || len(b) != bl {
		panic(fmt.Sprintf("tensor: %s buffer sizes dst=%d a=%d b=%d, want %d,%d,%d",
			op, len(dst), len(a), len(b), dl, al, bl))
	}
}

// MatMulSlice computes dst = a·b for a (m×k) and b (k×n), writing the (m×n)
// product over dst's previous contents.
func MatMulSlice(dst, a, b []float64, m, k, n int) {
	checkSlices("MatMulSlice", dst, a, b, m*n, m*k, k*n)
	matmulInto(dst, a, b, m, k, n)
}

// MatMulTSlice computes dst = a·bᵀ for a (m×k) and b (n×k), writing the
// (m×n) product over dst's previous contents.
func MatMulTSlice(dst, a, b []float64, m, k, n int) {
	checkSlices("MatMulTSlice", dst, a, b, m*n, m*k, n*k)
	matmulTInto(dst, a, b, m, k, n)
}

// TMatMulSlice computes dst = aᵀ·b for a (k×m) and b (k×n), writing the
// (m×n) product over dst's previous contents.
func TMatMulSlice(dst, a, b []float64, k, m, n int) {
	checkSlices("TMatMulSlice", dst, a, b, m*n, k*m, k*n)
	tmatmulInto(dst, a, b, k, m, n)
}

// Transpose returns a new tensor holding the transpose of the 2-D tensor t.
func Transpose(t *Tensor) *Tensor {
	if t.NDim() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs a 2-D tensor, got %v", t.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = t.data[i*n+j]
		}
	}
	return out
}
