package tensor

import "fmt"

// Matrix-multiply kernels come in two families: the *naive reference
// kernels in this file, which define the repo's floating-point accumulation
// order, and the cache-blocked / register-tiled kernels in matmul_blocked.go
// that the public entry points actually dispatch to.
//
// # The accumulation-order rule
//
// Every kernel — naive, blocked, and the codebook (LUT) variants in
// weights.go — must produce bit-identical results, because released models,
// cache keys, and the serving bit-reproducibility guarantee are all derived
// from these numbers. The rule that makes that hold:
//
//   - each output element's value is one serial chain of rounded operations
//     over its k-terms in ascending k order;
//   - every multiply-accumulate is written as an explicit two-step
//     (t := a*b; acc += t) so the intermediate product is rounded to float64
//     before the add — blocking a compiler from contracting one kernel's
//     a*b+acc into a fused multiply-add while leaving another's unfused;
//   - kernels that skip zero a-terms (the a·b and aᵀ·b forms) skip exactly
//     the same terms in every variant. (Skipping a zero term is itself
//     bit-neutral — an accumulator seeded with +0 can never become -0, and
//     adding ±0 to a non-(-0) float is the identity — but a 0·±Inf term
//     would turn into NaN if added instead of skipped, so the skip set must
//     match.)
//
// Blocked kernels may therefore tile over output rows/columns and hold
// accumulators in registers, but must not split a k-chain into partial sums
// that are combined afterwards. TestBlockedKernelsBitIdentical pins this.

// MatMul returns a new (m×n) tensor holding the product of a (m×k) and
// b (k×n). Both inputs must be 2-D.
func MatMul(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims differ: %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	matmulBlocked(out.data, a.data, b.data, m, k, n)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch %v = %v x %v", dst.shape, a.shape, b.shape))
	}
	matmulBlocked(dst.data, a.data, b.data, m, k, n)
}

// matmulNaive is the ikj-ordered reference kernel for dst = a·b:
// cache-friendly row streaming over b, zero a-terms skipped.
func matmulNaive(dst, a, b []float64, m, k, n int) {
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				t := av * bv
				drow[j] += t
			}
		}
	}
}

// MatMulT returns a·bᵀ for a (m×k) and b (n×k), producing (m×n). This is the
// backward-pass primitive for dense layers.
func MatMulT(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMulT needs 2-D operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dims differ: %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	matmulTBlocked(out.data, a.data, b.data, m, k, n)
	return out
}

// matmulTNaive is the reference kernel for dst = a·bᵀ: one dot product per
// output element, no zero skipping.
func matmulTNaive(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				t := av * brow[p]
				s += t
			}
			drow[j] = s
		}
	}
}

// TMatMul returns aᵀ·b for a (k×m) and b (k×n), producing (m×n). This is the
// weight-gradient primitive for dense layers.
func TMatMul(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: TMatMul needs 2-D operands, got %v x %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: TMatMul inner dims differ: %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	tmatmulBlocked(out.data, a.data, b.data, k, m, n)
	return out
}

// tmatmulNaive is the reference kernel for dst = aᵀ·b: k-major streaming
// with zero a-terms skipped.
func tmatmulNaive(dst, a, b []float64, k, m, n int) {
	for i := range dst {
		dst[i] = 0
	}
	for p := 0; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst[i*n : (i+1)*n]
			for j, bv := range brow {
				t := av * bv
				drow[j] += t
			}
		}
	}
}

// The *Slice variants below run the same kernels over raw row-major slices.
// They exist for the parallel layer paths, which shard batches into
// sub-slices of shared storage and cannot afford a header allocation per
// sample. Each validates lengths, so a mis-sliced call fails loudly instead
// of corrupting a neighbouring sample's rows.

func checkSlices(op string, dst, a, b []float64, dl, al, bl int) {
	if len(dst) != dl || len(a) != al || len(b) != bl {
		panic(fmt.Sprintf("tensor: %s buffer sizes dst=%d a=%d b=%d, want %d,%d,%d",
			op, len(dst), len(a), len(b), dl, al, bl))
	}
}

// MatMulSlice computes dst = a·b for a (m×k) and b (k×n), writing the (m×n)
// product over dst's previous contents.
func MatMulSlice(dst, a, b []float64, m, k, n int) {
	checkSlices("MatMulSlice", dst, a, b, m*n, m*k, k*n)
	matmulBlocked(dst, a, b, m, k, n)
}

// MatMulTSlice computes dst = a·bᵀ for a (m×k) and b (n×k), writing the
// (m×n) product over dst's previous contents.
func MatMulTSlice(dst, a, b []float64, m, k, n int) {
	checkSlices("MatMulTSlice", dst, a, b, m*n, m*k, n*k)
	matmulTBlocked(dst, a, b, m, k, n)
}

// TMatMulSlice computes dst = aᵀ·b for a (k×m) and b (k×n), writing the
// (m×n) product over dst's previous contents.
func TMatMulSlice(dst, a, b []float64, k, m, n int) {
	checkSlices("TMatMulSlice", dst, a, b, m*n, k*m, k*n)
	tmatmulBlocked(dst, a, b, k, m, n)
}

// Transpose returns a new tensor holding the transpose of the 2-D tensor t.
func Transpose(t *Tensor) *Tensor {
	if t.NDim() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs a 2-D tensor, got %v", t.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = t.data[i*n+j]
		}
	}
	return out
}
