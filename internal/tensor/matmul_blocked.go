package tensor

// Cache-blocked / register-tiled matmul kernels. These are what the public
// MatMulSlice family dispatches to; the naive kernels in matmul.go remain
// as the bit-level reference. See matmul.go for the accumulation-order rule
// that keeps the two families bit-identical: per output element, the same
// serial chain of explicitly rounded multiply-adds over ascending k, with
// the same zero-term skips.
//
// The tiling strategy is register reuse, not k-splitting:
//
//   - a·b and aᵀ·b (k-major accumulation into dst) process k-terms four at
//     a time, holding each dst element in a register across the quad — one
//     load/store of dst per four terms instead of per term.
//   - a·bᵀ (dot-product form) computes four output columns per pass over a
//     row of a, so each a element is loaded once per four dots.
//
// A quad that contains a zero a-term falls back to the reference per-term
// loop for that quad, preserving the skip set exactly.

// axpyRow computes dst[j] += av*b[j] for one row — the reference inner loop
// shared by the naive kernels, the blocked tails, and the zero-skip
// fallbacks, so every path issues the identical op sequence.
func axpyRow(dst, b []float64, av float64) {
	for j, bv := range b {
		t := av * bv
		dst[j] += t
	}
}

// matmulBlocked computes dst = a·b for a (m×k), b (k×n).
func matmulBlocked(dst, a, b []float64, m, k, n int) {
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		matmulRowBlocked(drow, arow, b, k, n)
	}
}

// matmulRowBlocked accumulates one output row of an a·b product:
// drow += arow·b with the quad-of-k register tiling.
func matmulRowBlocked(drow, arow, b []float64, k, n int) {
	p := 0
	for ; p+4 <= k; p += 4 {
		a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
		if a0 == 0 || a1 == 0 || a2 == 0 || a3 == 0 {
			for q := p; q < p+4; q++ {
				if av := arow[q]; av != 0 {
					axpyRow(drow, b[q*n:(q+1)*n], av)
				}
			}
			continue
		}
		b0 := b[p*n : (p+1)*n]
		b1 := b[(p+1)*n : (p+2)*n]
		b2 := b[(p+2)*n : (p+3)*n]
		b3 := b[(p+3)*n : (p+4)*n]
		for j := range drow {
			v := drow[j]
			t0 := a0 * b0[j]
			v += t0
			t1 := a1 * b1[j]
			v += t1
			t2 := a2 * b2[j]
			v += t2
			t3 := a3 * b3[j]
			v += t3
			drow[j] = v
		}
	}
	for ; p < k; p++ {
		if av := arow[p]; av != 0 {
			axpyRow(drow, b[p*n:(p+1)*n], av)
		}
	}
}

// matmulTBlocked computes dst = a·bᵀ for a (m×k), b (n×k): four dot
// products share each pass over a row of a.
func matmulTBlocked(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[j*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 float64
			for p, av := range arow {
				t0 := av * b0[p]
				s0 += t0
				t1 := av * b1[p]
				s1 += t1
				t2 := av * b2[p]
				s2 += t2
				t3 := av * b3[p]
				s3 += t3
			}
			drow[j] = s0
			drow[j+1] = s1
			drow[j+2] = s2
			drow[j+3] = s3
		}
		for ; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				t := av * brow[p]
				s += t
			}
			drow[j] = s
		}
	}
}

// tmatmulBlocked computes dst = aᵀ·b for a (k×m), b (k×n): quads of k rows
// are fused so each dst row is loaded once per four terms.
func tmatmulBlocked(dst, a, b []float64, k, m, n int) {
	for i := range dst {
		dst[i] = 0
	}
	p := 0
	for ; p+4 <= k; p += 4 {
		a0 := a[p*m : (p+1)*m]
		a1 := a[(p+1)*m : (p+2)*m]
		a2 := a[(p+2)*m : (p+3)*m]
		a3 := a[(p+3)*m : (p+4)*m]
		b0 := b[p*n : (p+1)*n]
		b1 := b[(p+1)*n : (p+2)*n]
		b2 := b[(p+2)*n : (p+3)*n]
		b3 := b[(p+3)*n : (p+4)*n]
		for i := 0; i < m; i++ {
			v0, v1, v2, v3 := a0[i], a1[i], a2[i], a3[i]
			drow := dst[i*n : (i+1)*n]
			if v0 == 0 || v1 == 0 || v2 == 0 || v3 == 0 {
				if v0 != 0 {
					axpyRow(drow, b0, v0)
				}
				if v1 != 0 {
					axpyRow(drow, b1, v1)
				}
				if v2 != 0 {
					axpyRow(drow, b2, v2)
				}
				if v3 != 0 {
					axpyRow(drow, b3, v3)
				}
				continue
			}
			for j := range drow {
				v := drow[j]
				t0 := v0 * b0[j]
				v += t0
				t1 := v1 * b1[j]
				v += t1
				t2 := v2 * b2[j]
				v += t2
				t3 := v3 * b3[j]
				v += t3
				drow[j] = v
			}
		}
	}
	for ; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i, av := range arow {
			if av != 0 {
				axpyRow(dst[i*n:(i+1)*n], brow, av)
			}
		}
	}
}
