package tensor

import (
	"encoding/json"
	"flag"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
)

// emitBench, when set to a path, makes TestEmitKernelsBench time the naive
// reference kernels against the blocked kernels the public API dispatches
// to, and write GFLOP/s per shape there as JSON. Wired to
// `make kernels-bench`; empty (the default) skips the test so the regular
// suite stays fast and timing-free.
var emitBench = flag.String("emit-bench", "", "write kernel throughput numbers (BENCH_kernels.json) to this path")

type kernelPoint struct {
	Kernel        string  `json:"kernel"`
	M             int     `json:"m"`
	K             int     `json:"k"`
	N             int     `json:"n"`
	NaiveGFLOPS   float64 `json:"naive_gflops"`
	BlockedGFLOPS float64 `json:"blocked_gflops"`
	Speedup       float64 `json:"speedup"`
}

type kernelReport struct {
	Threads int           `json:"threads"`
	Notes   string        `json:"notes"`
	Points  []kernelPoint `json:"points"`
}

// gflops times fn (one full m×k×n product per call) and converts the best
// observed ns/op into GFLOP/s, counting 2 flops per multiply-accumulate.
func gflops(m, k, n int, fn func()) float64 {
	best := math.MaxFloat64
	for r := 0; r < 3; r++ {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		if v := float64(res.NsPerOp()); v < best {
			best = v
		}
	}
	return 2 * float64(m) * float64(k) * float64(n) / best
}

func TestEmitKernelsBench(t *testing.T) {
	if *emitBench == "" {
		t.Skip("pass -emit-bench=<path> (make kernels-bench) to measure kernel throughput")
	}
	rng := rand.New(rand.NewSource(51))
	shapes := [][3]int{
		{32, 288, 64},   // conv-layer shape: OutC × ColRows × spatial
		{64, 576, 64},   // deeper conv block
		{128, 128, 128}, // square
		{16, 512, 256},  // wide dense batch
	}
	rep := kernelReport{
		Threads: runtime.GOMAXPROCS(0),
		Notes: "single-core kernel throughput; blocked kernels are the " +
			"production dispatch target and stay bit-identical to naive " +
			"(TestBlockedKernelsBitIdentical)",
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := make([]float64, m*k)
		b := make([]float64, k*n)
		bt := make([]float64, n*k)
		dst := make([]float64, m*n)
		fillCases(rng, a, 0)
		fillCases(rng, b, 0)
		fillCases(rng, bt, 0)

		points := []kernelPoint{
			{
				Kernel: "matmul", M: m, K: k, N: n,
				NaiveGFLOPS:   gflops(m, k, n, func() { matmulNaive(dst, a, b, m, k, n) }),
				BlockedGFLOPS: gflops(m, k, n, func() { matmulBlocked(dst, a, b, m, k, n) }),
			},
			{
				Kernel: "matmulT", M: m, K: k, N: n,
				NaiveGFLOPS:   gflops(m, k, n, func() { matmulTNaive(dst, a, bt, m, k, n) }),
				BlockedGFLOPS: gflops(m, k, n, func() { matmulTBlocked(dst, a, bt, m, k, n) }),
			},
		}
		for i := range points {
			points[i].Speedup = points[i].BlockedGFLOPS / points[i].NaiveGFLOPS
			t.Logf("%-8s %3dx%3dx%3d: naive %.2f GFLOP/s, blocked %.2f GFLOP/s (%.2fx)",
				points[i].Kernel, m, k, n, points[i].NaiveGFLOPS, points[i].BlockedGFLOPS, points[i].Speedup)
		}
		rep.Points = append(rep.Points, points...)
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*emitBench, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", *emitBench)
}
