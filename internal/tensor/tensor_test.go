package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Len() != 6 {
		t.Fatalf("Len = %d, want 6", x.Len())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewScalar(t *testing.T) {
	s := New()
	if s.Len() != 1 {
		t.Fatalf("scalar Len = %d, want 1", s.Len())
	}
	if s.NDim() != 0 {
		t.Fatalf("scalar NDim = %d, want 0", s.NDim())
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer expectPanic(t, "negative dim")
	New(2, -1)
}

func TestFromSlice(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	x := FromSlice(d, 2, 3)
	if x.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", x.At(1, 2))
	}
	x.Set(9, 0, 1)
	if d[1] != 9 {
		t.Fatal("FromSlice must alias the input slice")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer expectPanic(t, "length mismatch")
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major offset check: (1,2,3) -> 1*12 + 2*4 + 3 = 23.
	if x.Data()[23] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer expectPanic(t, "out of range")
	New(2, 2).At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	y := x.Clone()
	y.Set(10, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone must not alias original")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Set(100, 2)
	if x.At(1, 0) != 100 {
		t.Fatal("Reshape must alias storage")
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer expectPanic(t, "bad reshape")
	New(2, 2).Reshape(3)
}

func TestView(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	v := x.View(1, 3)
	if v.Dim(0) != 2 || v.Dim(1) != 2 {
		t.Fatalf("view shape = %v, want [2 2]", v.Shape())
	}
	if v.At(0, 0) != 3 {
		t.Fatalf("view At(0,0) = %v, want 3", v.At(0, 0))
	}
	v.Set(42, 0, 1)
	if x.At(1, 1) != 42 {
		t.Fatal("View must alias parent storage")
	}
}

func TestViewOutOfRangePanics(t *testing.T) {
	defer expectPanic(t, "view range")
	New(3, 2).View(2, 4)
}

func TestAddSubMulScale(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	y := FromSlice([]float64{4, 5, 6}, 3)
	x.Add(y)
	wantEq(t, x.Data(), []float64{5, 7, 9})
	x.Sub(y)
	wantEq(t, x.Data(), []float64{1, 2, 3})
	x.Mul(y)
	wantEq(t, x.Data(), []float64{4, 10, 18})
	x.Scale(0.5)
	wantEq(t, x.Data(), []float64{2, 5, 9})
	x.AddScaled(2, y)
	wantEq(t, x.Data(), []float64{10, 15, 21})
	x.AddScalar(-10)
	wantEq(t, x.Data(), []float64{0, 5, 11})
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 4)
	if x.Sum() != 10 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 2.5 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Min() != 1 || x.Max() != 4 {
		t.Fatalf("Min/Max = %v/%v", x.Min(), x.Max())
	}
	if got := x.Std(); math.Abs(got-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("Std = %v, want sqrt(1.25)", got)
	}
	if x.ArgMax() != 3 {
		t.Fatalf("ArgMax = %d", x.ArgMax())
	}
}

func TestDotNorm(t *testing.T) {
	x := FromSlice([]float64{3, 4}, 2)
	if x.Dot(x) != 25 {
		t.Fatalf("Dot = %v", x.Dot(x))
	}
	if x.Norm2() != 5 {
		t.Fatalf("Norm2 = %v", x.Norm2())
	}
}

func TestClamp(t *testing.T) {
	x := FromSlice([]float64{-5, 0.5, 5}, 3)
	x.Clamp(0, 1)
	wantEq(t, x.Data(), []float64{0, 0.5, 1})
}

func TestApply(t *testing.T) {
	x := FromSlice([]float64{1, 4, 9}, 3)
	x.Apply(math.Sqrt)
	wantEq(t, x.Data(), []float64{1, 2, 3})
}

func TestIsFinite(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	if !x.IsFinite() {
		t.Fatal("finite tensor reported non-finite")
	}
	x.Set(math.NaN(), 0)
	if x.IsFinite() {
		t.Fatal("NaN tensor reported finite")
	}
	x.Set(math.Inf(1), 0)
	if x.IsFinite() {
		t.Fatal("Inf tensor reported finite")
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	wantEq(t, c.Data(), []float64{58, 64, 139, 154})
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 4).RandN(rng, 0, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	c := MatMul(a, id)
	wantClose(t, c.Data(), a.Data(), 1e-12)
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "matmul mismatch")
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulTAndTMatMulAgreeWithTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(3, 5).RandN(rng, 0, 1)
	b := New(4, 5).RandN(rng, 0, 1)
	got := MatMulT(a, b)
	want := MatMul(a, Transpose(b))
	wantClose(t, got.Data(), want.Data(), 1e-12)

	c := New(5, 3).RandN(rng, 0, 1)
	d := New(5, 4).RandN(rng, 0, 1)
	got2 := TMatMul(c, d)
	want2 := MatMul(Transpose(c), d)
	wantClose(t, got2.Data(), want2.Data(), 1e-12)
}

func TestMatMulIntoReuses(t *testing.T) {
	a := FromSlice([]float64{1, 0, 0, 1}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	dst := New(2, 2)
	dst.Fill(99)
	MatMulInto(dst, a, b)
	wantEq(t, dst.Data(), []float64{5, 6, 7, 8})
}

func TestTransposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(3, 7).RandN(rng, 0, 1)
	b := Transpose(Transpose(a))
	wantClose(t, a.Data(), b.Data(), 0)
}

// Property: matmul distributes over addition: A(B+C) = AB + AC.
func TestMatMulDistributiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(3, 4).RandN(rng, 0, 1)
		b := New(4, 2).RandN(rng, 0, 1)
		c := New(4, 2).RandN(rng, 0, 1)
		left := MatMul(a, b.Clone().Add(c))
		right := MatMul(a, b).Add(MatMul(a, c))
		for i := range left.Data() {
			if math.Abs(left.Data()[i]-right.Data()[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConvDimsDerivation(t *testing.T) {
	d := NewConvDims(3, 8, 8, 16, 3, 3, 1, 1)
	if d.OutH != 8 || d.OutW != 8 {
		t.Fatalf("same-pad conv out = %dx%d, want 8x8", d.OutH, d.OutW)
	}
	if d.ColRows != 27 || d.Cols != 64 {
		t.Fatalf("im2col dims = %dx%d, want 27x64", d.ColRows, d.Cols)
	}
	d2 := NewConvDims(1, 8, 8, 4, 2, 2, 2, 0)
	if d2.OutH != 4 || d2.OutW != 4 {
		t.Fatalf("strided conv out = %dx%d, want 4x4", d2.OutH, d2.OutW)
	}
}

func TestConvDimsEmptyOutputPanics(t *testing.T) {
	defer expectPanic(t, "empty output")
	NewConvDims(1, 2, 2, 1, 5, 5, 1, 0)
}

// Im2Col on a 1-channel 3x3 input with a 2x2 kernel, stride 1, no padding:
// verify each column is the correct receptive field.
func TestIm2ColExact(t *testing.T) {
	d := NewConvDims(1, 3, 3, 1, 2, 2, 1, 0)
	src := []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	dst := make([]float64, d.ColRows*d.Cols)
	Im2Col(d, src, dst)
	// Rows are kernel positions (ky,kx); columns are output pixels.
	want := []float64{
		1, 2, 4, 5, // k(0,0)
		2, 3, 5, 6, // k(0,1)
		4, 5, 7, 8, // k(1,0)
		5, 6, 8, 9, // k(1,1)
	}
	wantEq(t, dst, want)
}

func TestIm2ColPaddingZeros(t *testing.T) {
	d := NewConvDims(1, 2, 2, 1, 3, 3, 1, 1)
	src := []float64{1, 2, 3, 4}
	dst := make([]float64, d.ColRows*d.Cols)
	Im2Col(d, src, dst)
	// Output is 2x2. Column 0 = receptive field centered at (0,0): the
	// k(0,0) tap reads (-1,-1) which is padding → 0.
	if dst[0] != 0 {
		t.Fatalf("padded tap = %v, want 0", dst[0])
	}
	// k(1,1) tap of column 0 reads input (0,0) = 1.
	row := 1*3 + 1
	if dst[row*d.Cols+0] != 1 {
		t.Fatalf("center tap = %v, want 1", dst[row*d.Cols+0])
	}
}

// Property: Col2Im is the adjoint of Im2Col: <Im2Col(x), y> == <x, Col2Im(y)>.
// This is exactly the identity backprop relies on.
func TestCol2ImAdjointProperty(t *testing.T) {
	geoms := []ConvDims{
		NewConvDims(2, 5, 5, 3, 3, 3, 1, 1),
		NewConvDims(1, 6, 6, 2, 2, 2, 2, 0),
		NewConvDims(3, 4, 4, 4, 3, 3, 2, 1),
	}
	rng := rand.New(rand.NewSource(7))
	for gi, d := range geoms {
		x := make([]float64, d.InElems)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, d.ColRows*d.Cols)
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		cx := make([]float64, d.ColRows*d.Cols)
		Im2Col(d, x, cx)
		xg := make([]float64, d.InElems)
		Col2Im(d, y, xg)
		var lhs, rhs float64
		for i := range cx {
			lhs += cx[i] * y[i]
		}
		for i := range x {
			rhs += x[i] * xg[i]
		}
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("geometry %d: adjoint identity violated: %v vs %v", gi, lhs, rhs)
		}
	}
}

func TestRandNMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := New(20000).RandN(rng, 3, 2)
	if m := x.Mean(); math.Abs(m-3) > 0.1 {
		t.Fatalf("RandN mean = %v, want ≈3", m)
	}
	if s := x.Std(); math.Abs(s-2) > 0.1 {
		t.Fatalf("RandN std = %v, want ≈2", s)
	}
}

func TestRandURange(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := New(1000).RandU(rng, -2, 5)
	if x.Min() < -2 || x.Max() >= 5 {
		t.Fatalf("RandU out of range: [%v, %v]", x.Min(), x.Max())
	}
}

func TestKaimingNormalScale(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := New(50000).KaimingNormal(rng, 50)
	want := math.Sqrt(2.0 / 50.0)
	if s := x.Std(); math.Abs(s-want) > 0.01 {
		t.Fatalf("Kaiming std = %v, want ≈%v", s, want)
	}
}

func TestStringPreview(t *testing.T) {
	x := New(20)
	s := x.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func wantEq(t *testing.T, got, want []float64) {
	t.Helper()
	wantClose(t, got, want, 0)
}

func wantClose(t *testing.T, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("element %d = %v, want %v (tol %v)", i, got[i], want[i], tol)
		}
	}
}

func expectPanic(t *testing.T, label string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("%s: expected panic", label)
	}
}
