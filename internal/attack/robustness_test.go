package attack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/quantize"
)

// affinePayload writes θ = a·s + b into the group and returns the plan.
func affinePayload(t *testing.T, seed int64) (PlanGroup, nn.LayerGroup, [3]int) {
	t.Helper()
	d := dataset.SyntheticCIFAR(dataset.DefaultCIFAR(400, false, seed))
	m := nn.NewMLP("m", 256, []int{40}, 10, seed)
	group := m.GroupsByConvIndex(nil)[0]
	plan := BuildPlan(d, 6, []nn.LayerGroup{group}, []float64{5}, seed)
	pg := plan.Groups[0]
	flat := group.FlattenValues()
	for i, s := range pg.Secret {
		flat[i] = 0.004*s - 0.5
	}
	group.ScatterValues(flat)
	return pg, group, plan.ImageGeom
}

// Decode quality must degrade gracefully with additive weight noise: more
// noise, more MAPE, and small noise keeps images recognizable.
func TestDecodeNoiseRobustness(t *testing.T) {
	pg, group, geom := affinePayload(t, 21)
	base := group.FlattenValues()
	rng := rand.New(rand.NewSource(21))
	var prevMAPE float64
	for i, noise := range []float64{0, 0.0002, 0.002, 0.02} {
		noisy := append([]float64(nil), base...)
		for j := range noisy {
			noisy[j] += rng.NormFloat64() * noise
		}
		group.ScatterValues(noisy)
		score := ScoreReconstructions(pg.Images, DecodeGroup(pg, group, geom, DecodeOptions{}))
		if i > 0 && score.MeanMAPE < prevMAPE-1 {
			t.Fatalf("MAPE not monotone in noise: %v after %v", score.MeanMAPE, prevMAPE)
		}
		if noise <= 0.0002 && score.Recognizable != score.N {
			t.Fatalf("tiny noise (%v) already broke recognizability: %d/%d", noise, score.Recognizable, score.N)
		}
		prevMAPE = score.MeanMAPE
	}
}

// Quantizing an affine payload with Algorithm 1 must keep every image
// recognizable at 4 bits, while 1-bit quantization must not (the payload
// cannot survive in two levels).
func TestDecodeAfterTargetCorrelatedQuantization(t *testing.T) {
	pg, group, geom := affinePayload(t, 22)
	base := group.FlattenValues()

	q := quantize.TargetCorrelated{Targets: pg.Images}
	for _, tc := range []struct {
		levels   int
		wantGood bool
	}{
		{16, true}, {2, false},
	} {
		w := append([]float64(nil), base...)
		cb := q.Fit(w[:len(pg.Secret)], tc.levels)
		for i := range w[:len(pg.Secret)] {
			w[i] = cb.Quantize(w[i])
		}
		group.ScatterValues(w)
		score := ScoreReconstructions(pg.Images, DecodeGroup(pg, group, geom, DecodeOptions{}))
		good := score.Recognizable == score.N && score.MeanMAPE < 15
		if good != tc.wantGood {
			t.Fatalf("%d levels: recognizable %d/%d MAPE %.1f, wantGood=%v",
				tc.levels, score.Recognizable, score.N, score.MeanMAPE, tc.wantGood)
		}
	}
}

// Property: the moment-matching decode is invariant to any positive affine
// transform of the carrier weights (scale and offset cancel).
func TestDecodeAffineInvarianceProperty(t *testing.T) {
	pg, group, geom := affinePayload(t, 23)
	base := group.FlattenValues()
	opt := DecodeOptions{TargetMean: 128, TargetStd: 52, ForcePolarity: 1}
	ref := DecodeGroup(pg, group, geom, opt)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.1 + rng.Float64()*5
		b := rng.NormFloat64() * 3
		w := make([]float64, len(base))
		for i, v := range base {
			w[i] = a*v + b
		}
		group.ScatterValues(w)
		got := DecodeGroup(pg, group, geom, opt)
		for i := range ref {
			for j := range ref[i].Pix {
				if diff := ref[i].Pix[j] - got[i].Pix[j]; diff > 1e-6 || diff < -1e-6 {
					return false
				}
			}
		}
		return true
	}
	defer group.ScatterValues(base)
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
