package attack

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/dataset"
	"repro/internal/img"
	"repro/internal/nn"
)

// planFixture builds a real plan over a small dataset and model.
func planFixture(t *testing.T) *Plan {
	t.Helper()
	d := dataset.SyntheticCIFAR(dataset.CIFARConfig{
		N: 120, Classes: 10, H: 12, W: 12, Seed: 5,
		ContrastStd: 0.32, NoiseStd: 25, TemplateShare: 0.6,
	})
	m := nn.NewResNet(nn.ResNetConfig{
		InC: 1, InH: 12, InW: 12, Classes: 10,
		Widths: []int{4, 8, 16}, Blocks: []int{1, 1, 1}, Seed: 6,
	})
	groups := m.GroupsByConvIndex([]int{4, 6})
	p := BuildPlan(d, 5, groups, []float64{0, 0, 10}, 7)
	if p.TotalImages() == 0 {
		t.Fatal("fixture plan carries no images")
	}
	return p
}

func encodePlanBytes(t *testing.T, p *Plan) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPlanCodecRoundTrip(t *testing.T) {
	p := planFixture(t)
	got, err := ReadPlan(bytes.NewReader(encodePlanBytes(t, p)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Window != p.Window || got.ImageGeom != p.ImageGeom || len(got.Groups) != len(p.Groups) {
		t.Fatalf("plan structure lost: %+v vs %+v", got.Window, p.Window)
	}
	for gi := range p.Groups {
		a, b := p.Groups[gi], got.Groups[gi]
		if a.Lambda != b.Lambda || len(a.Images) != len(b.Images) {
			t.Fatalf("group %d mismatch", gi)
		}
		for i := range a.Secret {
			if a.Secret[i] != b.Secret[i] {
				t.Fatalf("group %d secret[%d] not bit-exact", gi, i)
			}
		}
		for i := range a.Images {
			for j := range a.Images[i].Pix {
				if a.Images[i].Pix[j] != b.Images[i].Pix[j] {
					t.Fatalf("group %d image %d pixel %d differs", gi, i, j)
				}
			}
		}
	}
}

func TestPlanDecodeTruncatedFails(t *testing.T) {
	raw := encodePlanBytes(t, planFixture(t))
	for _, n := range []int{0, 3, len(planMagic), len(planMagic) + 9, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadPlan(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation at %d bytes: expected error", n)
		}
	}
	if _, err := ReadPlan(bytes.NewReader(raw[:2])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("header truncation error = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestPlanDecodeBadMagicFails(t *testing.T) {
	raw := encodePlanBytes(t, planFixture(t))
	raw[1] ^= 0xff
	if _, err := ReadPlan(bytes.NewReader(raw)); !errors.Is(err, ErrBadPlan) {
		t.Fatalf("error = %v, want ErrBadPlan", err)
	}
}

func TestPlanDecodeFlippedByteFails(t *testing.T) {
	raw := encodePlanBytes(t, planFixture(t))
	for _, off := range []int{len(planMagic) + 2, len(raw) / 3, 2 * len(raw) / 3} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x20
		p, err := ReadPlan(bytes.NewReader(mut))
		if err == nil && p == nil {
			t.Fatalf("flip at %d: nil plan without error", off)
		}
	}
}

func TestPlanEncodeRejectsInconsistent(t *testing.T) {
	p := planFixture(t)
	p.Groups[2].Secret = p.Groups[2].Secret[:len(p.Groups[2].Secret)-1]
	if err := WritePlan(io.Discard, p); err == nil {
		t.Fatal("secret/image mismatch accepted")
	}
	p2 := planFixture(t)
	p2.ImageGeom = [3]int{0, 0, 0}
	if err := WritePlan(io.Discard, p2); err == nil {
		t.Fatal("zero geometry accepted")
	}
}

func reportFixture() *Report {
	rep := &Report{}
	for i := 0; i < 3; i++ {
		im := img.New(1, 4, 4)
		for j := range im.Pix {
			im.Pix[j] = float64((i*16 + j) % 256)
		}
		rep.Recon = append(rep.Recon, im)
	}
	rep.Score = Score{N: 3, MeanMAPE: 12.5, Recognizable: 2, MAPEs: []float64{10, 12, 15.5}, SSIMs: []float64{0.7, 0.6, 0.4}}
	rep.PerGroup = []Score{rep.Score}
	return rep
}

func encodeReportBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReportCodecRoundTrip(t *testing.T) {
	rep := reportFixture()
	got, err := ReadReport(bytes.NewReader(encodeReportBytes(t, rep)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Score.N != rep.Score.N || got.Score.MeanMAPE != rep.Score.MeanMAPE ||
		len(got.PerGroup) != len(rep.PerGroup) || len(got.Recon) != len(rep.Recon) {
		t.Fatalf("report structure lost: %+v", got.Score)
	}
	for i := range rep.Recon {
		for j := range rep.Recon[i].Pix {
			if got.Recon[i].Pix[j] != rep.Recon[i].Pix[j] {
				t.Fatalf("recon %d pixel %d differs", i, j)
			}
		}
	}
}

func TestReportDecodeCorruptFails(t *testing.T) {
	raw := encodeReportBytes(t, reportFixture())
	for _, n := range []int{0, 4, len(reportMagic) + 3, len(raw) - 1} {
		if _, err := ReadReport(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation at %d bytes: expected error", n)
		}
	}
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := ReadReport(bytes.NewReader(bad)); !errors.Is(err, ErrBadReport) {
		t.Fatalf("error = %v, want ErrBadReport", err)
	}
	for _, off := range []int{len(reportMagic) + 1, len(raw) / 2} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x10
		rep, err := ReadReport(bytes.NewReader(mut))
		if err == nil && rep == nil {
			t.Fatalf("flip at %d: nil report without error", off)
		}
	}
	// A plan artifact is not a report (cross-kind magic confusion).
	if _, err := ReadReport(bytes.NewReader(encodePlanBytes(t, planFixture(t)))); !errors.Is(err, ErrBadReport) {
		t.Fatalf("plan accepted as report: %v", err)
	}
}
