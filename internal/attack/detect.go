package attack

import (
	"math"

	"repro/internal/nn"
	"repro/internal/stats"
)

// Defender-side detection. The paper closes by inviting the community to
// examine this threat; the most direct audit a model marketplace can run
// is distributional: benign gradient training leaves each layer's weights
// approximately Gaussian (Fig 2a's blue curve), while the correlation
// attack reshapes them toward the target pixel distribution. GaussianDeviation
// quantifies that reshaping with no knowledge of the payload.

// DetectionReport summarizes a distributional audit of a model's weights.
//
// The audit separates cleanly on full-precision releases. On deeply
// quantized releases it loses most of its power: discretization moves
// every model far from a smooth Gaussian, swamping the payload's shape
// signal (a benign 8-level WEQ model scores ≈0.27 under a W1/σ statistic
// vs ≈0.16 for a quantized payload). The quantized attack therefore
// *evades* this audit — which is exactly the stealth the paper claims for
// its flow, demonstrated here from the defender's side.
type DetectionReport struct {
	// Global is the deviation score over all weights pooled. It is only
	// part of the verdict for full-precision models; per-layer codebooks
	// make pooled quantized weights multi-modal for benign reasons.
	Global float64
	// PerGroup holds one score per audited layer group.
	PerGroup []GroupDeviation
	// Quantized reports whether the model looks quantized (≤256 distinct
	// weight values), which raises the effective threshold.
	Quantized bool
	// Suspicious reports whether any applicable score exceeds the
	// threshold.
	Suspicious bool
	// Threshold is the effective score above which a group is flagged.
	Threshold float64
}

// GroupDeviation is one layer group's audit result.
type GroupDeviation struct {
	Name  string
	Score float64
}

// DefaultDetectionThreshold separates benign from attacked models in this
// repo's experiments with a wide margin: benign MiniResNets score ≈
// 0.04–0.08 while λ ≥ 3 attacks score ≥ 0.25 on the encoding group.
const DefaultDetectionThreshold = 0.15

// GaussianDeviation returns the total-variation distance between the
// sample's histogram and the Gaussian with the sample's own mean and
// standard deviation, over ±4σ with the given number of bins. 0 means
// perfectly Gaussian; 1 means disjoint support.
//
// Quantized weights take only a handful of distinct values, which would
// make any quantized model look like a comb of spikes against a smooth
// reference; the bin count is therefore capped at half the distinct-value
// count (minimum 8), so a benign weighted-entropy-quantized model scores
// low while a payload-shaped distribution still stands out.
func GaussianDeviation(sample []float64, bins int) float64 {
	if len(sample) < 2 || bins < 2 {
		return 0
	}
	if d := distinctCount(sample, 2*bins); d < 2*bins {
		bins = d / 2
		if bins < 8 {
			bins = 8
		}
	}
	sum := stats.Summarize(sample)
	if sum.Std == 0 {
		return 1 // a constant weight vector is certainly not benign
	}
	lo := sum.Mean - 4*sum.Std
	hi := sum.Mean + 4*sum.Std
	h := stats.NewHistogram(sample, bins, lo, hi)

	// Reference: Gaussian probability mass per bin.
	ref := make([]float64, bins)
	width := (hi - lo) / float64(bins)
	for i := range ref {
		a := lo + float64(i)*width
		b := a + width
		ref[i] = gaussCDF(b, sum.Mean, sum.Std) - gaussCDF(a, sum.Mean, sum.Std)
	}
	// Normalize the reference over the truncated range so both vectors
	// sum to ~1.
	total := 0.0
	for _, v := range ref {
		total += v
	}
	if total > 0 {
		for i := range ref {
			ref[i] /= total
		}
	}
	return stats.TotalVariation(h.Freq, ref)
}

func gaussCDF(x, mean, std float64) float64 {
	return 0.5 * (1 + math.Erf((x-mean)/(std*math.Sqrt2)))
}

// distinctCount counts distinct values in sample, stopping early at cap.
func distinctCount(sample []float64, cap int) int {
	seen := make(map[float64]struct{}, cap)
	for _, v := range sample {
		seen[v] = struct{}{}
		if len(seen) >= cap {
			return cap
		}
	}
	return len(seen)
}

// AuditModel runs the distributional audit over a model's weight
// parameters, pooled and per layer group (using the given conv-index
// bounds). threshold <= 0 uses DefaultDetectionThreshold.
func AuditModel(m *nn.Model, groupBounds []int, threshold float64) DetectionReport {
	if threshold <= 0 {
		threshold = DefaultDetectionThreshold
	}
	const bins = 64
	groups := m.GroupsByConvIndex(groupBounds)
	var all []float64
	for _, g := range groups {
		all = append(all, g.FlattenValues()...)
	}
	rep := DetectionReport{
		Threshold: threshold,
		// Few distinct values over many weights means codebooks; tiny
		// models are left in full-precision mode where the heuristic is
		// meaningless.
		Quantized: len(all) >= 1024 && distinctCount(all, 257) <= 256,
	}
	if rep.Quantized && rep.Threshold < quantizedDetectionThreshold {
		rep.Threshold = quantizedDetectionThreshold
	}
	for _, g := range groups {
		score := GaussianDeviation(g.FlattenValues(), bins)
		rep.PerGroup = append(rep.PerGroup, GroupDeviation{Name: g.Name, Score: score})
		if score > rep.Threshold {
			rep.Suspicious = true
		}
	}
	rep.Global = GaussianDeviation(all, bins)
	if !rep.Quantized && rep.Global > rep.Threshold {
		rep.Suspicious = true
	}
	return rep
}

// quantizedDetectionThreshold is the floor applied to quantized models,
// whose discretization inflates every deviation score for benign reasons.
const quantizedDetectionThreshold = 0.25
