package attack

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/img"
	"repro/internal/nn"
	"repro/internal/stats"
)

// --- correlation regularizer ---

func TestCorrAndGradMatchesPearson(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	theta := make([]float64, 50)
	s := make([]float64, 50)
	for i := range theta {
		theta[i] = rng.NormFloat64()
		s[i] = rng.Float64() * 255
	}
	r, _ := corrAndGrad(theta, s)
	want := stats.Pearson(theta, s)
	if math.Abs(r-want) > 1e-12 {
		t.Fatalf("corr = %v, want %v", r, want)
	}
}

func TestCorrGradientFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	theta := make([]float64, 30)
	s := make([]float64, 30)
	for i := range theta {
		theta[i] = rng.NormFloat64()
		s[i] = rng.Float64() * 255
	}
	_, grad := corrAndGrad(theta, s)
	const h = 1e-6
	for i := range theta {
		orig := theta[i]
		theta[i] = orig + h
		rp, _ := corrAndGrad(theta, s)
		theta[i] = orig - h
		rm, _ := corrAndGrad(theta, s)
		theta[i] = orig
		want := (rp - rm) / (2 * h)
		if math.Abs(grad[i]-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("grad[%d] = %v, want %v", i, grad[i], want)
		}
	}
}

func TestCorrGradShorterSecret(t *testing.T) {
	theta := []float64{1, 2, 3, 4, 5, 6}
	s := []float64{10, 20, 30} // only first 3 weights participate
	_, grad := corrAndGrad(theta, s)
	for i := 3; i < 6; i++ {
		if grad[i] != 0 {
			t.Fatalf("grad beyond secret length: grad[%d] = %v", i, grad[i])
		}
	}
}

func TestCorrGradDegenerateInputs(t *testing.T) {
	r, g := corrAndGrad([]float64{1}, []float64{2})
	if r != 0 || g[0] != 0 {
		t.Fatal("single-element corr must be 0")
	}
	r, _ = corrAndGrad([]float64{1, 1, 1}, []float64{1, 2, 3})
	if r != 0 {
		t.Fatal("constant theta corr must be 0")
	}
}

// Gradient ascent on the regularizer alone must drive |corr| toward 1.
func TestUniformRegDrivesCorrelation(t *testing.T) {
	m := nn.NewMLP("m", 10, []int{20}, 4, 3)
	rng := rand.New(rand.NewSource(3))
	secret := make([]float64, m.NumWeightParams())
	for i := range secret {
		secret[i] = rng.Float64() * 255
	}
	reg := NewUniformReg(m, 1.0, secret)
	for step := 0; step < 400; step++ {
		m.ZeroGrad()
		reg.Apply(m)
		for _, p := range m.WeightParams() {
			p.Value.AddScaled(-0.5, p.Grad)
		}
	}
	reg.Apply(m)
	r := reg.Correlations()[0]
	if math.Abs(r) < 0.95 {
		t.Fatalf("|corr| = %v after pure regularizer training, want > 0.95", math.Abs(r))
	}
}

func TestLayerwiseRegRespectsZeroLambda(t *testing.T) {
	m := nn.NewMLP("m", 6, []int{8, 8}, 3, 4)
	groups := m.GroupsByConvIndex([]int{1, 2})
	rng := rand.New(rand.NewSource(4))
	secrets := make([][]float64, 3)
	for i, g := range groups {
		secrets[i] = make([]float64, g.NumEl)
		for j := range secrets[i] {
			secrets[i][j] = rng.Float64() * 255
		}
	}
	reg := NewLayerwiseReg(groups, []float64{0, 0, 5}, secrets)
	m.ZeroGrad()
	reg.Apply(m)
	for _, p := range groups[0].Params {
		for _, g := range p.Grad.Data() {
			if g != 0 {
				t.Fatal("zero-lambda group received gradient")
			}
		}
	}
	nonzero := false
	for _, p := range groups[2].Params {
		for _, g := range p.Grad.Data() {
			if g != 0 {
				nonzero = true
			}
		}
	}
	if !nonzero {
		t.Fatal("active group received no gradient")
	}
}

func TestLayerwisePKSharesSumToOne(t *testing.T) {
	m := nn.NewMLP("m", 6, []int{8, 8}, 3, 5)
	groups := m.GroupsByConvIndex([]int{1, 2})
	secrets := [][]float64{nil, {1, 2}, {3, 4}}
	reg := NewLayerwiseReg(groups, []float64{0, 2, 2}, secrets)
	sum := 0.0
	for i, tgt := range reg.Targets {
		if reg.Targets[i].Lambda != 0 {
			sum += tgt.PK
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("active P_k sum = %v, want 1", sum)
	}
}

// --- pre-processing ---

func TestSelectWindowFloorsMean(t *testing.T) {
	d := dataset.SyntheticCIFAR(dataset.DefaultCIFAR(300, false, 6))
	w := SelectWindow(d, 5)
	if w.Lo != math.Floor(d.StdMean()) {
		t.Fatalf("window lo %v, want floor(%v)", w.Lo, d.StdMean())
	}
	if w.Hi != w.Lo+5 {
		t.Fatalf("window hi %v", w.Hi)
	}
}

func TestCandidatesInsideWindow(t *testing.T) {
	d := dataset.SyntheticCIFAR(dataset.DefaultCIFAR(300, false, 7))
	w := SelectWindow(d, 5)
	for _, i := range Candidates(d, w) {
		s := d.Images[i].Std()
		if s <= w.Lo || s >= w.Hi {
			t.Fatalf("candidate %d std %v outside (%v, %v)", i, s, w.Lo, w.Hi)
		}
	}
}

func TestCapacity(t *testing.T) {
	if Capacity(1000, 256) != 3 {
		t.Fatalf("Capacity = %d", Capacity(1000, 256))
	}
	if Capacity(100, 0) != 0 {
		t.Fatal("zero pixel size must give zero capacity")
	}
}

func TestBuildPlanAssignsByCapacity(t *testing.T) {
	d := dataset.SyntheticCIFAR(dataset.DefaultCIFAR(2000, false, 8))
	m := nn.NewResNet(nn.DefaultCIFARConfig(1, 10))
	groups := m.GroupsByConvIndex([]int{5, 9})
	plan := BuildPlan(d, 5, groups, []float64{0, 0, 5}, 8)
	if len(plan.Groups) != 3 {
		t.Fatalf("plan groups = %d", len(plan.Groups))
	}
	if len(plan.Groups[0].Images) != 0 || len(plan.Groups[1].Images) != 0 {
		t.Fatal("zero-lambda groups must carry no images")
	}
	g3 := plan.Groups[2]
	u := 16 * 16
	wantCap := groups[2].NumEl / u
	if len(g3.Images) == 0 {
		t.Fatal("active group carries no images")
	}
	if len(g3.Images) > wantCap {
		t.Fatalf("assigned %d images beyond capacity %d", len(g3.Images), wantCap)
	}
	if len(g3.Secret) != len(g3.Images)*u {
		t.Fatalf("secret length %d for %d images", len(g3.Secret), len(g3.Images))
	}
	// All assigned images respect the std window.
	for _, di := range g3.DatasetIndices {
		s := d.Images[di].Std()
		if s <= plan.Window.Lo || s >= plan.Window.Hi {
			t.Fatalf("assigned image std %v outside window", s)
		}
	}
	if plan.TotalImages() != len(g3.Images) {
		t.Fatalf("TotalImages %d", plan.TotalImages())
	}
}

func TestBuildPlanDeterministic(t *testing.T) {
	d := dataset.SyntheticCIFAR(dataset.DefaultCIFAR(500, false, 9))
	m := nn.NewMLP("m", 256, []int{64}, 10, 9)
	groups := m.GroupsByConvIndex(nil)
	a := BuildPlan(d, 5, groups, []float64{3}, 42)
	b := BuildPlan(d, 5, groups, []float64{3}, 42)
	if len(a.Groups[0].DatasetIndices) != len(b.Groups[0].DatasetIndices) {
		t.Fatal("plan not deterministic")
	}
	for i := range a.Groups[0].DatasetIndices {
		if a.Groups[0].DatasetIndices[i] != b.Groups[0].DatasetIndices[i] {
			t.Fatal("plan selection not deterministic")
		}
	}
}

func TestUniformPlanUsesWholeDataset(t *testing.T) {
	d := dataset.SyntheticCIFAR(dataset.DefaultCIFAR(100, false, 10))
	m := nn.NewMLP("m", 256, []int{32}, 10, 10)
	group := m.GroupsByConvIndex(nil)[0]
	plan := UniformPlan(d, group, 3, 1)
	wantN := group.NumEl / 256
	if wantN > 100 {
		wantN = 100
	}
	if len(plan.Groups[0].Images) != wantN {
		t.Fatalf("uniform plan images = %d, want %d", len(plan.Groups[0].Images), wantN)
	}
}

// --- decode round trip ---

// If the weights are exactly an affine image payload, decoding must recover
// the images nearly perfectly. This is the decoder's core contract.
func TestDecodePerfectAffineEncoding(t *testing.T) {
	d := dataset.SyntheticCIFAR(dataset.DefaultCIFAR(400, false, 11))
	m := nn.NewMLP("m", 256, []int{40}, 10, 11)
	groups := m.GroupsByConvIndex(nil)
	plan := BuildPlan(d, 6, groups, []float64{5}, 11)
	pg := plan.Groups[0]
	if len(pg.Images) < 3 {
		t.Fatalf("too few planned images: %d", len(pg.Images))
	}
	// Write θ = a·s + b into the group weights.
	flat := groups[0].FlattenValues()
	for i, s := range pg.Secret {
		flat[i] = 0.004*s - 0.5
	}
	groups[0].ScatterValues(flat)
	recon := DecodeGroup(pg, groups[0], plan.ImageGeom, DecodeOptions{})
	score := ScoreReconstructions(pg.Images, recon)
	if score.MeanMAPE > 3 {
		t.Fatalf("affine decode MAPE = %v, want < 3", score.MeanMAPE)
	}
	if score.Recognizable != score.N {
		t.Fatalf("only %d/%d recognizable", score.Recognizable, score.N)
	}
}

// Negative-polarity encodings must decode equally well through the
// best-polarity path.
func TestDecodeNegativePolarity(t *testing.T) {
	d := dataset.SyntheticCIFAR(dataset.DefaultCIFAR(400, false, 12))
	m := nn.NewMLP("m", 256, []int{40}, 10, 12)
	groups := m.GroupsByConvIndex(nil)
	plan := BuildPlan(d, 6, groups, []float64{5}, 12)
	pg := plan.Groups[0]
	flat := groups[0].FlattenValues()
	for i, s := range pg.Secret {
		flat[i] = -0.004*s + 0.3 // negative correlation
	}
	groups[0].ScatterValues(flat)
	score, _ := BestPolarityDecode(pg, groups[0], plan.ImageGeom, DecodeOptions{})
	if score.MeanMAPE > 3 {
		t.Fatalf("negative-polarity decode MAPE = %v", score.MeanMAPE)
	}
}

func TestDecodeRobustToOutliers(t *testing.T) {
	d := dataset.SyntheticCIFAR(dataset.DefaultCIFAR(400, false, 13))
	m := nn.NewMLP("m", 256, []int{40}, 10, 13)
	groups := m.GroupsByConvIndex(nil)
	plan := BuildPlan(d, 6, groups, []float64{5}, 13)
	pg := plan.Groups[0]
	flat := groups[0].FlattenValues()
	for i, s := range pg.Secret {
		flat[i] = 0.004 * s
	}
	// Inject a few extreme outliers inside the payload range.
	flat[10] = 50
	flat[100] = -50
	groups[0].ScatterValues(flat)
	// Without trimming, the two outliers hijack the remap range and ruin
	// every image; with 0.5% trimming the decode survives at the cost of
	// a mild contrast stretch.
	plain := ScoreReconstructions(pg.Images,
		DecodeGroup(pg, groups[0], plan.ImageGeom, DecodeOptions{}))
	robust := ScoreReconstructions(pg.Images,
		DecodeGroup(pg, groups[0], plan.ImageGeom, DecodeOptions{Percentile: 0.005}))
	if robust.MeanMAPE > 12 {
		t.Fatalf("outlier-robust decode MAPE = %v", robust.MeanMAPE)
	}
	if robust.MeanMAPE >= plain.MeanMAPE {
		t.Fatalf("trimming did not help: %v vs %v", robust.MeanMAPE, plain.MeanMAPE)
	}
}

func TestDecodeEmptyGroup(t *testing.T) {
	m := nn.NewMLP("m", 4, nil, 2, 14)
	groups := m.GroupsByConvIndex(nil)
	if got := DecodeGroup(PlanGroup{}, groups[0], [3]int{1, 2, 2}, DecodeOptions{}); got != nil {
		t.Fatal("empty plan group must decode to nil")
	}
}

func TestGroupWeightsAsPixelsRange(t *testing.T) {
	m := nn.NewMLP("m", 16, []int{8}, 2, 15)
	g := m.GroupsByConvIndex(nil)[0]
	pix := GroupWeightsAsPixels(g, 0)
	if len(pix) != g.NumEl {
		t.Fatalf("pixel view length %d", len(pix))
	}
	for _, v := range pix {
		if v < 0 || v > 255 {
			t.Fatalf("pixel view value %v out of range", v)
		}
	}
	short := GroupWeightsAsPixels(g, 10)
	if len(short) != 10 {
		t.Fatalf("prefix view length %d", len(short))
	}
}

// --- scoring ---

func TestScoreReconstructionsCounts(t *testing.T) {
	base := img.New(1, 4, 4)
	for i := range base.Pix {
		base.Pix[i] = float64(i * 16)
	}
	good := base.Clone()
	bad := base.Clone()
	for i := range bad.Pix {
		bad.Pix[i] += 40
	}
	s := ScoreReconstructions([]*img.Image{base, base}, []*img.Image{good, bad})
	if s.N != 2 || s.Recognizable != 1 || s.Bad != 1 {
		t.Fatalf("score = %+v", s)
	}
	if s.MeanMAPE != 20 {
		t.Fatalf("mean MAPE = %v", s.MeanMAPE)
	}
	if s.RecognizablePercent() != 50 {
		t.Fatalf("recognizable%% = %v", s.RecognizablePercent())
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestScoreEmpty(t *testing.T) {
	s := ScoreReconstructions(nil, nil)
	if s.N != 0 || s.RecognizablePercent() != 0 || s.BadPercent() != 0 {
		t.Fatalf("empty score = %+v", s)
	}
}

// --- LSB baseline ---

func TestLSBRoundTrip(t *testing.T) {
	m := nn.NewMLP("m", 8, []int{16}, 4, 16)
	payload := []byte("the quick brown fox jumps over the lazy dog")
	written := EncodeLSB(m.WeightParams(), payload, 8)
	if written != len(payload)*8 {
		t.Fatalf("wrote %d bits, want %d", written, len(payload)*8)
	}
	got := DecodeLSB(m.WeightParams(), written, 8)
	if string(got) != string(payload) {
		t.Fatalf("decoded %q", got)
	}
}

func TestLSBDoesNotChangeValuesMuch(t *testing.T) {
	m := nn.NewMLP("m", 8, []int{16}, 4, 17)
	before := make([]float64, 0)
	for _, p := range m.WeightParams() {
		before = append(before, p.Value.Data()...)
	}
	EncodeLSB(m.WeightParams(), []byte{0xFF, 0x00, 0xAA}, 8)
	i := 0
	for _, p := range m.WeightParams() {
		for _, v := range p.Value.Data() {
			if math.Abs(v-before[i]) > 1e-10*(1+math.Abs(before[i])) {
				t.Fatalf("LSB embedding perturbed weight %d: %v -> %v", i, before[i], v)
			}
			i++
		}
	}
}

func TestLSBCapacity(t *testing.T) {
	m := nn.NewMLP("m", 8, nil, 4, 18)
	if got := LSBCapacityBits(m.WeightParams(), 8); got != 8*8*4 {
		t.Fatalf("capacity = %d", got)
	}
}

func TestLSBDestroyedByQuantization(t *testing.T) {
	m := nn.NewMLP("m", 16, []int{32}, 4, 19)
	payload := make([]byte, 64)
	rng := rand.New(rand.NewSource(19))
	rng.Read(payload)
	written := EncodeLSB(m.WeightParams(), payload, 8)
	// Simulate quantization: snap every weight to 16 levels.
	for _, p := range m.WeightParams() {
		vd := p.Value.Data()
		for i := range vd {
			vd[i] = math.Round(vd[i]*8) / 8
		}
	}
	got := DecodeLSB(m.WeightParams(), written, 8)
	ber := BitErrorRate(payload, got, written)
	if ber < 0.2 {
		t.Fatalf("LSB payload survived quantization: BER %v", ber)
	}
}

func TestBitErrorRate(t *testing.T) {
	if BitErrorRate([]byte{0xFF}, []byte{0x00}, 8) != 1 {
		t.Fatal("all-different BER must be 1")
	}
	if BitErrorRate([]byte{0xAA}, []byte{0xAA}, 8) != 0 {
		t.Fatal("identical BER must be 0")
	}
	if BitErrorRate(nil, nil, 0) != 0 {
		t.Fatal("empty BER must be 0")
	}
}

func TestLSBBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EncodeLSB(nil, nil, 0)
}

// --- sign baseline ---

func TestSignEncodingRoundTrip(t *testing.T) {
	m := nn.NewMLP("m", 10, []int{20}, 4, 20)
	payload := []byte("secret!")
	reg := NewSignEncodingReg(50, payload)
	// Pure regularizer descent drives signs to the payload.
	for step := 0; step < 2000; step++ {
		m.ZeroGrad()
		reg.Apply(m)
		for _, p := range m.WeightParams() {
			p.Value.AddScaled(-0.5, p.Grad)
		}
	}
	got := DecodeSignBits(m, reg.NumBits)
	if string(got) != string(payload) {
		t.Fatalf("decoded %q, want %q", got, payload)
	}
}

func TestSignCapacityOneBitPerWeight(t *testing.T) {
	m := nn.NewMLP("m", 10, nil, 4, 21)
	if SignCapacityBits(m) != m.NumWeightParams() {
		t.Fatal("sign capacity must be one bit per weight")
	}
}

func TestSignRegZeroLambdaNoop(t *testing.T) {
	m := nn.NewMLP("m", 4, nil, 2, 22)
	m.ZeroGrad()
	reg := NewSignEncodingReg(0, []byte{0xFF})
	if reg.Apply(m) != 0 {
		t.Fatal("zero-lambda sign reg must return 0")
	}
	for _, p := range m.WeightParams() {
		for _, g := range p.Grad.Data() {
			if g != 0 {
				t.Fatal("zero-lambda sign reg added gradient")
			}
		}
	}
}
