package attack

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"repro/internal/img"
)

// Artifact codecs for the attack-side pipeline stages: the encoding plan
// the pre-processing stage produces, and the extraction report the final
// stage produces. Both follow the repo's serialization convention
// (modelio): a versioned magic header, a gob payload, and structural
// validation on both ends so corrupted or foreign streams fail with
// precise errors instead of panics deep in a consumer.
const (
	planMagic   = "DACPLN1\n"
	reportMagic = "DACRPT1\n"
)

// ErrBadPlan reports that a stream is not an encoding-plan artifact.
var ErrBadPlan = errors.New("attack: bad magic (not an encoding plan)")

// ErrBadReport reports that a stream is not an extraction-report artifact.
var ErrBadReport = errors.New("attack: bad magic (not an extraction report)")

// WritePlan serializes a pre-processing plan.
func WritePlan(w io.Writer, p *Plan) error {
	if err := validatePlan(p); err != nil {
		return err
	}
	if _, err := io.WriteString(w, planMagic); err != nil {
		return fmt.Errorf("attack: write plan header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(p); err != nil {
		return fmt.Errorf("attack: encode plan: %w", err)
	}
	return nil
}

// ReadPlan reads a plan artifact, verifying the magic header and the
// structural consistency of the payload.
func ReadPlan(r io.Reader) (*Plan, error) {
	if err := readMagic(r, planMagic, ErrBadPlan, "plan"); err != nil {
		return nil, err
	}
	var p Plan
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("attack: decode plan: %w", err)
	}
	if err := validatePlan(&p); err != nil {
		return nil, err
	}
	return &p, nil
}

// validatePlan checks the invariants consumers (the regularizer, the
// quantizer, the decoder) index on.
func validatePlan(p *Plan) error {
	u := p.ImageGeom[0] * p.ImageGeom[1] * p.ImageGeom[2]
	if u <= 0 {
		return fmt.Errorf("attack: plan has invalid image geometry %v", p.ImageGeom)
	}
	for gi, g := range p.Groups {
		if g.GroupIndex < 0 || g.GroupIndex >= len(p.Groups) {
			return fmt.Errorf("attack: plan group %d has out-of-range index %d", gi, g.GroupIndex)
		}
		if len(g.Secret) != len(g.Images)*u {
			return fmt.Errorf("attack: plan group %d has %d secret values for %d images of %d pixels",
				gi, len(g.Secret), len(g.Images), u)
		}
		if len(g.DatasetIndices) != len(g.Images) {
			return fmt.Errorf("attack: plan group %d has %d dataset indices for %d images",
				gi, len(g.DatasetIndices), len(g.Images))
		}
		for _, im := range g.Images {
			if im == nil || im.NumPix() != u {
				return fmt.Errorf("attack: plan group %d holds an image that is not %v", gi, p.ImageGeom)
			}
		}
	}
	return nil
}

// Report is the serializable output of the extraction stage: the
// aggregate and per-group scores plus the reconstructed images, aligned
// with the plan's AllImages order. dacextract also caches Reports keyed
// on the released model's digest, with zero Scores when no ground truth
// was available.
type Report struct {
	// Score aggregates reconstruction quality over all encoded images.
	Score Score
	// PerGroup holds one score per non-empty encoding group.
	PerGroup []Score
	// Recon are the reconstructed images.
	Recon []*img.Image
}

// WriteReport serializes an extraction report.
func WriteReport(w io.Writer, rep *Report) error {
	if err := validateReport(rep); err != nil {
		return err
	}
	if _, err := io.WriteString(w, reportMagic); err != nil {
		return fmt.Errorf("attack: write report header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(rep); err != nil {
		return fmt.Errorf("attack: encode report: %w", err)
	}
	return nil
}

// ReadReport reads a report artifact, verifying the magic header and
// the structural consistency of the payload.
func ReadReport(r io.Reader) (*Report, error) {
	if err := readMagic(r, reportMagic, ErrBadReport, "report"); err != nil {
		return nil, err
	}
	var rep Report
	if err := gob.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("attack: decode report: %w", err)
	}
	if err := validateReport(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

func validateReport(rep *Report) error {
	if rep.Score.N < 0 || rep.Score.N > len(rep.Score.MAPEs)+len(rep.Recon) {
		return fmt.Errorf("attack: report scores %d images, holds %d", rep.Score.N, len(rep.Recon))
	}
	for i, im := range rep.Recon {
		if im == nil || im.NumPix() == 0 || im.C*im.H*im.W != im.NumPix() {
			return fmt.Errorf("attack: report image %d is malformed", i)
		}
	}
	return nil
}

// readMagic consumes and checks a codec's magic header.
func readMagic(r io.Reader, magic string, badErr error, what string) error {
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("attack: truncated %s header: %w", what, io.ErrUnexpectedEOF)
		}
		return fmt.Errorf("attack: read %s header: %w", what, err)
	}
	if string(hdr) != magic {
		return fmt.Errorf("%w: header %q", badErr, hdr)
	}
	return nil
}
