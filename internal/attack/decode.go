package attack

import (
	"math"
	"sort"

	"repro/internal/img"
	"repro/internal/nn"
)

// DecodeOptions controls weight→image extraction.
type DecodeOptions struct {
	// Percentile, when positive, trims that fraction off both ends of the
	// weight range before the linear remap to [0,255], making the decode
	// robust to a handful of outlier weights at the cost of a slight
	// contrast stretch. 0 (the default) uses the plain min/max remap the
	// paper describes ("simply remapping these parameters to values in
	// the range of [0,255]").
	Percentile float64
	// ForcePolarity, when non-zero, skips the smoothness heuristic and
	// decodes with the given correlation sign (+1 or −1). The adversary
	// normally leaves this zero: natural images are smooth, their
	// negatives equally so, but a *wrong* polarity against a payload
	// whose weights correlate positively produces inverted images that
	// the total-variation vote detects relative to the payload ordering.
	ForcePolarity int
	// TargetMean and TargetStd, when TargetStd > 0, switch the remap from
	// min/max to moment matching: pixels are decoded as
	// (w − mean(w))/std(w)·TargetStd + TargetMean. The adversary knows
	// these domain statistics — the pre-processing step selected targets
	// from a pixel-std window of its own choosing, and natural-image
	// brightness statistics are public knowledge — so this is the decode
	// a real attacker runs. Moment matching is far more robust than
	// min/max against the Gaussian tails of trained weights.
	TargetMean, TargetStd float64
}

// DecodeGroup extracts the images a plan group encoded into its layer
// group's weights, exactly as the released-model adversary would: flatten
// the group's weights, take the payload prefix, linearly remap the robust
// weight range to [0, 255] (the paper's "simply remapping these parameters
// to values in the range of [0,255]"), choose the correlation polarity by a
// total-variation smoothness vote, and slice the result into images.
func DecodeGroup(pg PlanGroup, group nn.LayerGroup, geom [3]int, opt DecodeOptions) []*img.Image {
	if len(pg.Images) == 0 {
		return nil
	}
	c, h, w := geom[0], geom[1], geom[2]
	u := c * h * w
	flat := group.FlattenValues()
	need := len(pg.Images) * u
	if need > len(flat) {
		need = len(flat) / u * u
	}
	flat = flat[:need]
	if len(flat) == 0 {
		return nil
	}

	pix := make([]float64, len(flat))
	if opt.TargetStd > 0 {
		// Moment-matching remap.
		var mean float64
		for _, v := range flat {
			mean += v
		}
		mean /= float64(len(flat))
		var ss float64
		for _, v := range flat {
			d := v - mean
			ss += d * d
		}
		std := math.Sqrt(ss / float64(len(flat)))
		if std == 0 {
			std = 1e-12
		}
		k := opt.TargetStd / std
		for i, v := range flat {
			p := (v-mean)*k + opt.TargetMean
			if p < 0 {
				p = 0
			} else if p > 255 {
				p = 255
			}
			pix[i] = p
		}
	} else {
		// Plain (optionally trimmed) min/max remap to [0, 255].
		lo, hi := robustRange(flat, percentileOf(opt))
		if hi <= lo {
			hi = lo + 1e-12
		}
		scale := 255.0 / (hi - lo)
		for i, v := range flat {
			p := (v - lo) * scale
			if p < 0 {
				p = 0
			} else if p > 255 {
				p = 255
			}
			pix[i] = p
		}
	}

	polarity := opt.ForcePolarity
	if polarity == 0 {
		polarity = choosePolarity(pix, u, c, h, w)
	}
	if polarity < 0 {
		for i := range pix {
			pix[i] = 255 - pix[i]
		}
	}

	nImg := len(pix) / u
	out := make([]*img.Image, 0, nImg)
	for k := 0; k < nImg; k++ {
		im := img.New(c, h, w)
		copy(im.Pix, pix[k*u:(k+1)*u])
		out = append(out, im)
	}
	return out
}

// DecodePlan extracts every group's images, returning them in the same
// order as Plan.AllImages (so reconstructions align with originals).
func DecodePlan(p *Plan, groups []nn.LayerGroup, opt DecodeOptions) []*img.Image {
	var out []*img.Image
	for _, pg := range p.Groups {
		out = append(out, DecodeGroup(pg, groups[pg.GroupIndex], p.ImageGeom, opt)...)
	}
	return out
}

func percentileOf(opt DecodeOptions) float64 {
	if opt.Percentile <= 0 {
		return 0
	}
	return opt.Percentile
}

// robustRange returns the (p, 1−p) percentile bounds of values.
func robustRange(values []float64, p float64) (float64, float64) {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0], sorted[len(sorted)-1]
	}
	loIdx := int(p * float64(len(sorted)))
	hiIdx := len(sorted) - 1 - loIdx
	if hiIdx <= loIdx {
		return sorted[0], sorted[len(sorted)-1]
	}
	return sorted[loIdx], sorted[hiIdx]
}

// choosePolarity votes between the decode and its negative using total
// variation: the correlation drives weights toward a·s+b with a of one
// sign; the correct polarity reproduces the (smooth) images while the wrong
// one reproduces their negatives. TV alone cannot distinguish an image from
// its negative, so the vote instead measures agreement of inter-image
// boundaries: in the correct polarity, the first pixel row of image k+1 is
// statistically unrelated to the last row of image k in the same way the
// payload was, while a sign flip breaks the brightness continuity that the
// shared remap introduces. In practice the decisive signal is the global
// histogram skew: natural pixel payloads (and this repo's generators)
// have mean below the 127.5 midpoint of the remapped range far more often
// than above it after correlation training, so the vote picks the polarity
// whose mean is closer to the payload-typical regime. Both signals are
// cheap; they agree on every dataset in this repo's tests.
func choosePolarity(pix []float64, u, c, h, w int) int {
	// Signal 1: darkness skew. The remap sends the weight distribution's
	// lower tail to 0; a positively correlated encode puts the (more
	// common) dark pixels there.
	var mean float64
	for _, v := range pix {
		mean += v
	}
	mean /= float64(len(pix))

	// Signal 2: total variation of a few sampled images vs their
	// negatives is identical, but TV of the *gradient-of-brightness*
	// against the typical vignette (borders darker than centers in
	// natural crops) is not. Compute border-minus-center brightness.
	nImg := len(pix) / u
	sampled := nImg
	if sampled > 16 {
		sampled = 16
	}
	var borderMinusCenter float64
	hw := h * w
	for k := 0; k < sampled; k++ {
		base := k * u
		var border, center float64
		var nb, nc int
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v := pix[base+y*w+x] // first channel is enough
				if y == 0 || y == h-1 || x == 0 || x == w-1 {
					border += v
					nb++
				} else if y > h/4 && y < 3*h/4 && x > w/4 && x < 3*w/4 {
					center += v
					nc++
				}
			}
		}
		if nb > 0 && nc > 0 {
			borderMinusCenter += border/float64(nb) - center/float64(nc)
		}
		_ = hw
	}

	// Natural crops (and both synthetic generators) are center-bright:
	// expect border < center. If the decode is center-dark and bright
	// overall, it is likely inverted.
	score := 0
	if mean <= 127.5 {
		score++
	} else {
		score--
	}
	if borderMinusCenter <= 0 {
		score++
	} else {
		score--
	}
	if score >= 0 {
		return 1
	}
	return -1
}

// GroupWeightsAsPixels returns the payload prefix of a group's weights
// remapped to [0,255] without polarity correction — the raw view used by
// the distribution figures (Fig 2a, Fig 3).
func GroupWeightsAsPixels(group nn.LayerGroup, n int) []float64 {
	flat := group.FlattenValues()
	if n > 0 && n < len(flat) {
		flat = flat[:n]
	}
	lo, hi := robustRange(flat, 0.005)
	if hi <= lo {
		hi = lo + 1e-12
	}
	out := make([]float64, len(flat))
	scale := 255.0 / (hi - lo)
	for i, v := range flat {
		p := (v - lo) * scale
		out[i] = math.Max(0, math.Min(255, p))
	}
	return out
}
