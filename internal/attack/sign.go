package attack

import (
	"repro/internal/nn"
)

// SignEncodingReg is the sign encoding attack (Sec. II-B, from Song et
// al.): a penalty term pushes each carrier weight's sign bit to match one
// payload bit,
//
//	P(θ, s) = (λ/ℓ) · Σ max(0, −θ_i·s_i),   s_i ∈ {−1, +1}
//
// so each parameter stores exactly one bit. Implemented as a
// train.Regularizer over the model's weight parameters in forward order.
type SignEncodingReg struct {
	// Lambda is the penalty rate.
	Lambda float64
	// Bits is the payload; bit i is carried by the i-th weight element.
	Bits []byte
	// NumBits is the payload length in bits.
	NumBits int
}

// NewSignEncodingReg builds the regularizer for a byte payload.
func NewSignEncodingReg(lambda float64, payload []byte) *SignEncodingReg {
	return &SignEncodingReg{Lambda: lambda, Bits: payload, NumBits: len(payload) * 8}
}

// Apply implements train.Regularizer.
func (r *SignEncodingReg) Apply(m *nn.Model) float64 {
	if r.Lambda == 0 || r.NumBits == 0 {
		return 0
	}
	penalty := 0.0
	scale := r.Lambda / float64(r.NumBits)
	bit := 0
	for _, p := range m.WeightParams() {
		if bit >= r.NumBits {
			break
		}
		vd := p.Value.Data()
		gd := p.Grad.Data()
		for i := range vd {
			if bit >= r.NumBits {
				break
			}
			s := 1.0
			if (r.Bits[bit/8]>>(uint(7-bit%8)))&1 == 0 {
				s = -1.0
			}
			v := vd[i] * s
			if v < 0 {
				penalty += -v
				gd[i] += -s * scale
			}
			bit++
		}
	}
	return penalty * scale
}

// DecodeSignBits reads the payload back from weight signs: bit i is 1 when
// the i-th weight element is positive.
func DecodeSignBits(m *nn.Model, numBits int) []byte {
	out := make([]byte, (numBits+7)/8)
	bit := 0
	for _, p := range m.WeightParams() {
		if bit >= numBits {
			break
		}
		for _, v := range p.Value.Data() {
			if bit >= numBits {
				break
			}
			if v > 0 {
				out[bit/8] |= 1 << uint(7-bit%8)
			}
			bit++
		}
	}
	return out
}

// SignCapacityBits returns the payload capacity of the sign channel: one
// bit per weight element.
func SignCapacityBits(m *nn.Model) int {
	return m.NumWeightParams()
}
