package attack

import (
	"fmt"

	"repro/internal/img"
	"repro/internal/nn"
)

// Score summarizes reconstruction quality over a set of images using the
// paper's metrics.
type Score struct {
	// N is the number of image pairs scored.
	N int
	// MeanMAPE is the average mean-absolute-pixel-error.
	MeanMAPE float64
	// Recognizable counts images with MAPE < 20 (Tables I/III/IV).
	Recognizable int
	// Bad counts images with MAPE > 20 (Table II's criterion).
	Bad int
	// MeanSSIM is the average structural similarity (Table IV).
	MeanSSIM float64
	// SSIMOverHalf counts images with SSIM > 0.5 (Table IV).
	SSIMOverHalf int
	// MAPEs and SSIMs hold the per-image values, parallel to the input.
	MAPEs []float64
	SSIMs []float64
}

// RecognizablePercent returns Recognizable as a percentage of N.
func (s Score) RecognizablePercent() float64 {
	if s.N == 0 {
		return 0
	}
	return 100 * float64(s.Recognizable) / float64(s.N)
}

// BadPercent returns Bad as a percentage of N.
func (s Score) BadPercent() float64 {
	if s.N == 0 {
		return 0
	}
	return 100 * float64(s.Bad) / float64(s.N)
}

func (s Score) String() string {
	return fmt.Sprintf("n=%d mape=%.2f recog=%d (%.1f%%) ssim=%.3f ssim>0.5=%d",
		s.N, s.MeanMAPE, s.Recognizable, s.RecognizablePercent(), s.MeanSSIM, s.SSIMOverHalf)
}

// ScoreReconstructions compares reconstructions against originals pairwise.
// The slices must be parallel; extra originals (capacity the decoder could
// not fill) are ignored, matching how the paper counts only decoded images.
func ScoreReconstructions(origs, recons []*img.Image) Score {
	n := len(recons)
	if len(origs) < n {
		n = len(origs)
	}
	s := Score{N: n}
	for i := 0; i < n; i++ {
		m := img.MAPE(origs[i], recons[i])
		ss := img.SSIM(origs[i], recons[i])
		s.MAPEs = append(s.MAPEs, m)
		s.SSIMs = append(s.SSIMs, ss)
		s.MeanMAPE += m
		s.MeanSSIM += ss
		if m < img.BadThreshold {
			s.Recognizable++
		} else if m > img.BadThreshold {
			s.Bad++
		}
		if ss > 0.5 {
			s.SSIMOverHalf++
		}
	}
	if n > 0 {
		s.MeanMAPE /= float64(n)
		s.MeanSSIM /= float64(n)
	}
	return s
}

// BestPolarityDecode decodes a plan group with both correlation polarities
// and returns the better-scoring result (lower mean MAPE) along with its
// images. This mirrors the human adversary, who looks at both candidate
// decodes and keeps the one showing recognizable content; the |r| penalty
// makes the trained correlation sign depend on initialization, so a
// released model may carry either polarity.
func BestPolarityDecode(pg PlanGroup, group nn.LayerGroup, geom [3]int, opt DecodeOptions) (Score, []*img.Image) {
	optPos, optNeg := opt, opt
	optPos.ForcePolarity = 1
	optNeg.ForcePolarity = -1
	pos := DecodeGroup(pg, group, geom, optPos)
	neg := DecodeGroup(pg, group, geom, optNeg)
	sp := ScoreReconstructions(pg.Images, pos)
	sn := ScoreReconstructions(pg.Images, neg)
	if sn.N > 0 && sn.MeanMAPE < sp.MeanMAPE {
		return sn, neg
	}
	return sp, pos
}
