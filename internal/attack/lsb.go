package attack

import (
	"math"

	"repro/internal/nn"
)

// The LSB encoding attack (Sec. II-B of the paper, from Song et al.)
// replaces the low-order mantissa bits of each released float parameter
// with payload bits. It relies entirely on parameter redundancy: any
// quantization rewrites the mantissa wholesale and destroys the payload,
// which is why the paper dismisses it as trivially defeated by compression.

// EncodeLSB writes payload bits into the low bitsPerParam mantissa bits of
// every element of params, in order, and returns the number of bits
// actually written (limited by capacity or payload length). bitsPerParam
// must be in [1, 32] — low mantissa bits of a float64, far below the
// precision that affects accuracy at small counts.
func EncodeLSB(params []*nn.Param, payload []byte, bitsPerParam int) int {
	checkLSBWidth(bitsPerParam)
	totalBits := len(payload) * 8
	written := 0
	mask := uint64(1)<<uint(bitsPerParam) - 1
	for _, p := range params {
		vd := p.Value.Data()
		for i := range vd {
			if written >= totalBits {
				return written
			}
			var chunk uint64
			nbits := bitsPerParam
			if totalBits-written < nbits {
				nbits = totalBits - written
			}
			for b := 0; b < nbits; b++ {
				bitIdx := written + b
				bit := (payload[bitIdx/8] >> uint(7-bitIdx%8)) & 1
				chunk |= uint64(bit) << uint(bitsPerParam-1-b)
			}
			bits := math.Float64bits(vd[i])
			bits = (bits &^ mask) | chunk
			vd[i] = math.Float64frombits(bits)
			written += nbits
		}
	}
	return written
}

// DecodeLSB reads numBits payload bits back out of the parameters' low
// mantissa bits, reversing EncodeLSB.
func DecodeLSB(params []*nn.Param, numBits, bitsPerParam int) []byte {
	checkLSBWidth(bitsPerParam)
	out := make([]byte, (numBits+7)/8)
	read := 0
	for _, p := range params {
		vd := p.Value.Data()
		for i := range vd {
			if read >= numBits {
				return out
			}
			bits := math.Float64bits(vd[i])
			nbits := bitsPerParam
			if numBits-read < nbits {
				nbits = numBits - read
			}
			for b := 0; b < nbits; b++ {
				bit := (bits >> uint(bitsPerParam-1-b)) & 1
				if bit != 0 {
					bitIdx := read + b
					out[bitIdx/8] |= 1 << uint(7-bitIdx%8)
				}
			}
			read += nbits
		}
	}
	return out
}

// LSBCapacityBits returns how many payload bits fit into params at the
// given width.
func LSBCapacityBits(params []*nn.Param, bitsPerParam int) int {
	checkLSBWidth(bitsPerParam)
	n := 0
	for _, p := range params {
		n += p.NumEl()
	}
	return n * bitsPerParam
}

// BitErrorRate compares two payloads bit by bit over the first numBits and
// returns the fraction that differ — 0 for a perfect channel, ≈0.5 after
// quantization wipes the mantissa.
func BitErrorRate(a, b []byte, numBits int) float64 {
	if numBits == 0 {
		return 0
	}
	errs := 0
	for i := 0; i < numBits; i++ {
		ba := (a[i/8] >> uint(7-i%8)) & 1
		bb := (b[i/8] >> uint(7-i%8)) & 1
		if ba != bb {
			errs++
		}
	}
	return float64(errs) / float64(numBits)
}

func checkLSBWidth(bitsPerParam int) {
	if bitsPerParam < 1 || bitsPerParam > 32 {
		panic("attack: bitsPerParam must be in [1, 32]")
	}
}
