// Package attack implements the training-data encoding attacks the paper
// studies: the correlated-value-encoding attack of Song et al. (CCS 2017)
// with a uniform correlation rate (the paper's Eq 1), the paper's
// layer-wise variant with per-group rates (Eq 2), the std-window data
// pre-processing step (Sec. IV-A), the weight→image decoder the adversary
// runs on a released model, and the LSB- and sign-encoding baselines the
// paper compares against in Sec. II-B.
package attack

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// GroupTarget binds one layer group to its encoding payload: the secret
// pixel vector, the group's correlation rate λ_k and its weight share P_k.
type GroupTarget struct {
	// Group is the set of weights that carries this payload.
	Group nn.LayerGroup
	// Lambda is the correlation rate λ_k; zero disables encoding for the
	// group (the paper sets λ=0 for accuracy-critical early groups).
	Lambda float64
	// Secret is the target vector s (raw pixel values); only the first
	// min(len(Secret), Group.NumEl) elements participate.
	Secret []float64
	// PK is the group's share ℓ_k/ℓ of the total correlated weights
	// (Eq 2's P_k; 1 for the uniform Eq 1 attack).
	PK float64
}

// CorrelationReg is the malicious regularization term. With a single
// all-weights target it is exactly Eq 1:
//
//	C(θ,s) = −λ_c · |Σ(θ_i−θ̄)(s_i−s̄)| / (‖θ−θ̄‖·‖s−s̄‖)
//
// and with per-group targets it is Eq 2:
//
//	C(θ,s) = −Σ_k λ_k · |corr(θ_k, s_k)| · P_k
//
// The gradient is computed in closed form over each flattened group and
// injected through the trainer's Regularizer hook.
type CorrelationReg struct {
	// Targets holds one entry per encoding group.
	Targets []GroupTarget

	lastCorr []float64
}

// NewUniformReg builds the Eq 1 attack: one target spanning every weight
// parameter of the model, correlation rate lambda.
func NewUniformReg(m *nn.Model, lambda float64, secret []float64) *CorrelationReg {
	groups := m.GroupsByConvIndex(nil) // single group with all weights
	return &CorrelationReg{Targets: []GroupTarget{{
		Group: groups[0], Lambda: lambda, Secret: secret, PK: 1,
	}}}
}

// NewLayerwiseReg builds the Eq 2 attack over the given groups. lambdas and
// secrets are parallel to groups; P_k is computed as the group's share of
// the total weights across groups with a non-zero rate (the "total
// correlated weights amount" ℓ of the paper).
func NewLayerwiseReg(groups []nn.LayerGroup, lambdas []float64, secrets [][]float64) *CorrelationReg {
	if len(groups) != len(lambdas) || len(groups) != len(secrets) {
		panic(fmt.Sprintf("attack: %d groups, %d lambdas, %d secrets", len(groups), len(lambdas), len(secrets)))
	}
	total := 0
	for i, g := range groups {
		if lambdas[i] != 0 {
			total += g.NumEl
		}
	}
	if total == 0 {
		total = 1
	}
	r := &CorrelationReg{}
	for i, g := range groups {
		pk := float64(g.NumEl) / float64(total)
		r.Targets = append(r.Targets, GroupTarget{
			Group: g, Lambda: lambdas[i], Secret: secrets[i], PK: pk,
		})
	}
	return r
}

// Apply implements train.Regularizer: it adds −λ_k·P_k·∇|corr| to each
// group's weight gradients and returns the total penalty value.
func (r *CorrelationReg) Apply(m *nn.Model) float64 {
	total := 0.0
	if cap(r.lastCorr) < len(r.Targets) {
		r.lastCorr = make([]float64, len(r.Targets))
	}
	r.lastCorr = r.lastCorr[:len(r.Targets)]
	for ti, t := range r.Targets {
		r.lastCorr[ti] = 0
		if t.Lambda == 0 || len(t.Secret) == 0 || t.Group.NumEl == 0 {
			continue
		}
		theta := t.Group.FlattenValues()
		corr, grad := corrAndGrad(theta, t.Secret)
		r.lastCorr[ti] = corr
		scale := -t.Lambda * t.PK * sign(corr)
		for i := range grad {
			grad[i] *= scale
		}
		t.Group.AddToGrads(grad)
		total += -t.Lambda * t.PK * math.Abs(corr)
	}
	return total
}

// Correlations returns the Pearson correlation of each group with its
// secret as of the last Apply call (diagnostics; Fig 2a's driver).
func (r *CorrelationReg) Correlations() []float64 {
	out := make([]float64, len(r.lastCorr))
	copy(out, r.lastCorr)
	return out
}

// corrAndGrad computes the Pearson correlation r between the first
// L = min(len(theta), len(s)) elements of theta and s, plus d r / d theta
// as a full-length vector (zero beyond L).
//
// With x = θ−θ̄ and y = s−s̄ (means over the first L elements),
// a = Σxy, b = ‖x‖, c = ‖y‖:
//
//	r        = a/(b·c)
//	∂r/∂θ_j  = (y_j − (a/b²)·x_j) / (b·c)
//
// (the θ̄ chain terms vanish because Σy = 0).
func corrAndGrad(theta, s []float64) (float64, []float64) {
	l := len(theta)
	if len(s) < l {
		l = len(s)
	}
	grad := make([]float64, len(theta))
	if l < 2 {
		return 0, grad
	}
	var mt, ms float64
	for i := 0; i < l; i++ {
		mt += theta[i]
		ms += s[i]
	}
	mt /= float64(l)
	ms /= float64(l)
	var a, bb, cc float64
	for i := 0; i < l; i++ {
		x := theta[i] - mt
		y := s[i] - ms
		a += x * y
		bb += x * x
		cc += y * y
	}
	if bb == 0 || cc == 0 {
		return 0, grad
	}
	b := math.Sqrt(bb)
	c := math.Sqrt(cc)
	r := a / (b * c)
	inv := 1.0 / (b * c)
	k := a / bb
	for i := 0; i < l; i++ {
		x := theta[i] - mt
		y := s[i] - ms
		grad[i] = (y - k*x) * inv
	}
	return r, grad
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	if v > 0 {
		return 1
	}
	// At r == 0 the |r| penalty is non-differentiable; pushing in the
	// positive direction breaks the tie deterministically.
	return 1
}
