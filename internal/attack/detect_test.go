package attack

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/quantize"
)

func TestGaussianDeviationOnGaussianIsLow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sample := make([]float64, 50000)
	for i := range sample {
		sample[i] = rng.NormFloat64()*0.05 + 0.01
	}
	if s := GaussianDeviation(sample, 64); s > 0.05 {
		t.Fatalf("Gaussian sample scored %v", s)
	}
}

func TestGaussianDeviationOnFacePayloadIsHigh(t *testing.T) {
	// A face-pixel payload is strongly bimodal (dark features/background
	// vs bright skin) — nothing like a Gaussian. (A full CIFAR-like pixel
	// pool, by contrast, is a near-Gaussian mixture; the detector's
	// leverage there comes from the clamp spikes and bounded support of
	// per-group payloads, exercised in TestAuditFlagsEncodedModel.)
	d := dataset.SyntheticFaces(dataset.DefaultFaces(10, 10, 2))
	var payload []float64
	for _, im := range d.Images {
		for _, p := range im.Pix {
			payload = append(payload, 0.004*p-0.5)
		}
	}
	if s := GaussianDeviation(payload, 64); s < 0.1 {
		t.Fatalf("face payload scored only %v", s)
	}
}

func TestGaussianDeviationEdgeCases(t *testing.T) {
	if GaussianDeviation(nil, 64) != 0 {
		t.Fatal("empty sample must score 0")
	}
	if GaussianDeviation([]float64{1, 1, 1}, 64) != 1 {
		t.Fatal("constant sample must score 1")
	}
}

func TestAuditFlagsEncodedModel(t *testing.T) {
	// Benign: freshly initialized model (Kaiming-normal weights).
	benign := nn.NewMLP("b", 144, []int{64, 32}, 10, 3)
	repB := AuditModel(benign, []int{1, 2}, 0)
	if repB.Suspicious {
		t.Fatalf("benign model flagged: global %v, groups %+v", repB.Global, repB.PerGroup)
	}

	// Attacked: overwrite the last group with an affine pixel payload.
	attacked := nn.NewMLP("a", 144, []int{64, 32}, 10, 3)
	groups := attacked.GroupsByConvIndex([]int{1, 2})
	d := dataset.SyntheticCIFAR(dataset.DefaultCIFAR(200, false, 4))
	g := groups[2]
	w := g.FlattenValues()
	pi := 0
	for _, im := range d.Images {
		for _, p := range im.Pix {
			if pi >= len(w) {
				break
			}
			w[pi] = 0.004*p - 0.5
			pi++
		}
	}
	g.ScatterValues(w)
	repA := AuditModel(attacked, []int{1, 2}, 0)
	if !repA.Suspicious {
		t.Fatalf("attacked model not flagged: global %v, groups %+v", repA.Global, repA.PerGroup)
	}
	// The flag must come from the encoding group specifically.
	if repA.PerGroup[2].Score <= repB.PerGroup[2].Score {
		t.Fatal("encoding group did not score above benign")
	}
}

func TestAuditThresholdOverride(t *testing.T) {
	m := nn.NewMLP("m", 10, nil, 2, 5)
	rep := AuditModel(m, nil, 1e-9)
	if !rep.Suspicious {
		t.Fatal("near-zero threshold must flag everything")
	}
	if rep.Threshold != 1e-9 {
		t.Fatalf("threshold not honored: %v", rep.Threshold)
	}
}

func TestAuditBenignQuantizedNotFlagged(t *testing.T) {
	// Quantization alone must not trigger the auditor: a benign model
	// quantized with weighted entropy keeps a Gaussian-ish mass profile.
	m := nn.NewMLP("q", 144, []int{64, 32}, 10, 6)
	quantize.QuantizeModel(m, quantize.WeightedEntropy{}, 16)
	rep := AuditModel(m, []int{1, 2}, 0)
	if rep.Suspicious {
		t.Fatalf("benign quantized model flagged: global %v, groups %+v", rep.Global, rep.PerGroup)
	}
}

// The quantized attack evades the distributional audit — the stealth the
// paper claims, seen from the defender's side: discretization inflates the
// benign baseline so much that the payload's shape signal disappears.
func TestAuditQuantizedAttackEvades(t *testing.T) {
	attacked := nn.NewMLP("qa", 144, []int{64, 32}, 10, 7)
	groups := attacked.GroupsByConvIndex([]int{1, 2})
	d := dataset.SyntheticCIFAR(dataset.DefaultCIFAR(200, false, 8))
	g := groups[2]
	w := g.FlattenValues()
	pi := 0
	for _, im := range d.Images {
		for _, p := range im.Pix {
			if pi >= len(w) {
				break
			}
			w[pi] = 0.004*p - 0.5
			pi++
		}
	}
	g.ScatterValues(w)
	quantize.QuantizeModel(attacked, quantize.TargetCorrelated{Targets: d.Images}, 16)
	rep := AuditModel(attacked, []int{1, 2}, 0)
	if !rep.Quantized {
		t.Fatal("quantized model not recognized as quantized")
	}
	if rep.Suspicious {
		t.Fatalf("quantized attack unexpectedly flagged (update the stealth docs!): %+v", rep)
	}
}
