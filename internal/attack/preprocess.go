package attack

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/img"
	"repro/internal/nn"
	"repro/internal/obs"
)

// Window is a per-image pixel-std interval (lo, hi), the paper's
// candidate-set criterion.
type Window struct {
	Lo, Hi float64
}

// SelectWindow implements the paper's rule: std_min = ⌊std_mean⌋ and
// std_max = std_min + d for window length d.
func SelectWindow(d *dataset.Dataset, length float64) Window {
	lo := math.Floor(d.StdMean())
	return Window{Lo: lo, Hi: lo + length}
}

// Candidates returns the dataset indices inside the window (the paper's
// candidate set S).
func Candidates(d *dataset.Dataset, w Window) []int {
	return d.IndicesWithStdIn(w.Lo, w.Hi)
}

// PlanGroup is one layer group's encoding assignment: which images it
// carries and the flattened secret vector built from their pixels.
type PlanGroup struct {
	// GroupIndex is the index into the layer-group slice this plan was
	// built for.
	GroupIndex int
	// Lambda is the group's correlation rate.
	Lambda float64
	// Images are the encoding targets in payload order.
	Images []*img.Image
	// DatasetIndices are the images' indices in the source dataset.
	DatasetIndices []int
	// Secret is the concatenated raw pixel payload (one image after
	// another, channel-major within each image).
	Secret []float64
}

// Capacity returns how many images of u pixels fit into numEl weights.
func Capacity(numEl, u int) int {
	if u <= 0 {
		return 0
	}
	return numEl / u
}

// Plan is the full encoding assignment produced by the pre-processing step.
type Plan struct {
	// Window is the std window used for candidate selection.
	Window Window
	// Groups holds one entry per layer group (including zero-rate groups,
	// which carry no images).
	Groups []PlanGroup
	// ImageGeom is the (C, H, W) geometry of every encoded image.
	ImageGeom [3]int
}

// TotalImages returns the number of images assigned across all groups.
func (p *Plan) TotalImages() int {
	n := 0
	for _, g := range p.Groups {
		n += len(g.Images)
	}
	return n
}

// AllImages returns every assigned image in group order.
func (p *Plan) AllImages() []*img.Image {
	var out []*img.Image
	for _, g := range p.Groups {
		out = append(out, g.Images...)
	}
	return out
}

// BuildPlan performs the paper's data pre-processing (Sec. IV-A): it
// selects the std-window candidate set, estimates per-group capacity from
// the parameter count and image size, and randomly assigns candidate images
// to each group with a non-zero rate. groups and lambdas are parallel; the
// returned plan's Secret vectors are ready for NewLayerwiseReg.
//
// When the candidate set is smaller than the total capacity, every
// candidate is used once (without replacement) and remaining capacity stays
// empty, mirroring the paper's "n images randomly selected from S".
func BuildPlan(d *dataset.Dataset, windowLen float64, groups []nn.LayerGroup, lambdas []float64, seed int64) *Plan {
	if len(groups) != len(lambdas) {
		panic(fmt.Sprintf("attack: %d groups, %d lambdas", len(groups), len(lambdas)))
	}
	w := SelectWindow(d, windowLen)
	cand := Candidates(d, w)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })

	u := d.C * d.H * d.W
	plan := &Plan{Window: w, ImageGeom: [3]int{d.C, d.H, d.W}}
	next := 0
	for gi, g := range groups {
		pg := PlanGroup{GroupIndex: gi, Lambda: lambdas[gi]}
		if lambdas[gi] != 0 {
			n := Capacity(g.NumEl, u)
			for k := 0; k < n && next < len(cand); k++ {
				di := cand[next]
				next++
				pg.DatasetIndices = append(pg.DatasetIndices, di)
				pg.Images = append(pg.Images, d.Images[di])
				pg.Secret = append(pg.Secret, d.Images[di].Pix...)
			}
		}
		plan.Groups = append(plan.Groups, pg)
	}
	if obs.Enabled() {
		obs.Default.Counter("attack_plans_total").Inc()
		obs.Default.Gauge("attack_window_lo").Set(w.Lo)
		obs.Default.Gauge("attack_window_hi").Set(w.Hi)
		obs.Default.Gauge("attack_candidates").Set(float64(len(cand)))
		obs.Default.Gauge("attack_images_assigned").Set(float64(plan.TotalImages()))
	}
	return plan
}

// Secrets returns the per-group secret vectors, parallel to the groups the
// plan was built with (ready for NewLayerwiseReg).
func (p *Plan) Secrets() [][]float64 {
	out := make([][]float64, len(p.Groups))
	for i, g := range p.Groups {
		out[i] = g.Secret
	}
	return out
}

// Lambdas returns the per-group correlation rates.
func (p *Plan) Lambdas() []float64 {
	out := make([]float64, len(p.Groups))
	for i, g := range p.Groups {
		out[i] = g.Lambda
	}
	return out
}

// UniformPlan builds a single-group plan for the Eq 1 baseline attack: all
// weights one group, images drawn from the whole dataset in order (no
// std-window selection — the vanilla attack does no pre-processing).
func UniformPlan(d *dataset.Dataset, group nn.LayerGroup, lambda float64, seed int64) *Plan {
	u := d.C * d.H * d.W
	n := Capacity(group.NumEl, u)
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(d.Len())
	pg := PlanGroup{GroupIndex: 0, Lambda: lambda}
	for k := 0; k < n && k < len(idx); k++ {
		di := idx[k]
		pg.DatasetIndices = append(pg.DatasetIndices, di)
		pg.Images = append(pg.Images, d.Images[di])
		pg.Secret = append(pg.Secret, d.Images[di].Pix...)
	}
	return &Plan{
		Window:    Window{0, math.Inf(1)},
		Groups:    []PlanGroup{pg},
		ImageGeom: [3]int{d.C, d.H, d.W},
	}
}
