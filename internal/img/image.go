// Package img provides the image representation and quality metrics used by
// the data-stealing experiments: per-image pixel statistics (the std
// clustering of the paper's pre-processing step), the paper's two
// reconstruction-quality measures — mean absolute pixel error (MAPE) and the
// structural similarity index (SSIM) — and simple PGM/PPM/ASCII output for
// visual inspection (the paper's Fig 5).
package img

import (
	"fmt"
	"math"
)

// Image is a dense raster with C channels (1 = grayscale, 3 = RGB) whose
// pixel values live in [0, 255] as float64 (fractional values appear after
// decoding from weights).
type Image struct {
	C, H, W int
	// Pix is channel-major: Pix[c*H*W + y*W + x].
	Pix []float64
}

// New allocates a zero image.
func New(c, h, w int) *Image {
	if c != 1 && c != 3 {
		panic(fmt.Sprintf("img: unsupported channel count %d", c))
	}
	return &Image{C: c, H: h, W: w, Pix: make([]float64, c*h*w)}
}

// FromPixels wraps a channel-major pixel slice.
func FromPixels(pix []float64, c, h, w int) *Image {
	if len(pix) != c*h*w {
		panic(fmt.Sprintf("img: %d pixels for %dx%dx%d", len(pix), c, h, w))
	}
	return &Image{C: c, H: h, W: w, Pix: pix}
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := New(im.C, im.H, im.W)
	copy(out.Pix, im.Pix)
	return out
}

// NumPix returns the total scalar count (C*H*W).
func (im *Image) NumPix() int { return len(im.Pix) }

// At returns the pixel value at channel c, row y, column x.
func (im *Image) At(c, y, x int) float64 { return im.Pix[(c*im.H+y)*im.W+x] }

// Set writes the pixel value at channel c, row y, column x.
func (im *Image) Set(v float64, c, y, x int) { im.Pix[(c*im.H+y)*im.W+x] = v }

// Clamp limits all pixels to [0, 255].
func (im *Image) Clamp() *Image {
	for i, v := range im.Pix {
		if v < 0 {
			im.Pix[i] = 0
		} else if v > 255 {
			im.Pix[i] = 255
		}
	}
	return im
}

// Mean returns the mean pixel value.
func (im *Image) Mean() float64 {
	s := 0.0
	for _, v := range im.Pix {
		s += v
	}
	return s / float64(len(im.Pix))
}

// Std returns the population standard deviation of the pixel values — the
// statistic the paper's pre-processing step clusters images by.
func (im *Image) Std() float64 {
	m := im.Mean()
	ss := 0.0
	for _, v := range im.Pix {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(im.Pix)))
}

// Gray converts the image to single-channel grayscale using the Rec.601
// luma weights; a grayscale input is cloned.
func (im *Image) Gray() *Image {
	if im.C == 1 {
		return im.Clone()
	}
	out := New(1, im.H, im.W)
	hw := im.H * im.W
	for i := 0; i < hw; i++ {
		out.Pix[i] = 0.299*im.Pix[i] + 0.587*im.Pix[hw+i] + 0.114*im.Pix[2*hw+i]
	}
	return out
}

// Normalized returns the pixels scaled to [0, 1] as a flat slice, the
// representation the classifier consumes.
func (im *Image) Normalized() []float64 {
	out := make([]float64, len(im.Pix))
	for i, v := range im.Pix {
		out[i] = v / 255.0
	}
	return out
}

// Histogram counts pixel values into `bins` equal-width buckets over
// [0, 255], returning normalized frequencies that sum to 1.
func (im *Image) Histogram(bins int) []float64 {
	return HistogramOf(im.Pix, bins)
}

// HistogramOf builds a normalized histogram of values assumed to lie in
// [0, 255]. Out-of-range values are clamped into the end buckets.
func HistogramOf(values []float64, bins int) []float64 {
	if bins <= 0 {
		panic("img: histogram needs at least one bin")
	}
	h := make([]float64, bins)
	if len(values) == 0 {
		return h
	}
	scale := float64(bins) / 256.0
	for _, v := range values {
		b := int(v * scale)
		if b < 0 {
			b = 0
		} else if b >= bins {
			b = bins - 1
		}
		h[b]++
	}
	inv := 1.0 / float64(len(values))
	for i := range h {
		h[i] *= inv
	}
	return h
}
