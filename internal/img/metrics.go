package img

import (
	"fmt"
	"math"
)

// MAPE returns the mean absolute pixel error between a reconstruction and
// the original, the paper's primary reconstruction-quality metric:
//
//	MAPE = (1/u) Σ |x_i − x'_i|
//
// Both images must have identical geometry. Lower is better; the paper
// counts an image as "badly encoded" when MAPE > 20 and as high quality
// when MAPE < 20.
func MAPE(orig, recon *Image) float64 {
	checkSame("MAPE", orig, recon)
	s := 0.0
	for i, v := range orig.Pix {
		s += math.Abs(v - recon.Pix[i])
	}
	return s / float64(len(orig.Pix))
}

// BadThreshold is the paper's MAPE cutoff separating badly encoded images
// (MAPE > 20, Table II) from recognizable ones (Tables I, III, IV).
const BadThreshold = 20.0

// Recognizable reports whether the reconstruction meets the paper's
// quality bar (MAPE < BadThreshold).
func Recognizable(orig, recon *Image) bool {
	return MAPE(orig, recon) < BadThreshold
}

// SSIM computes the mean structural similarity index (Wang et al., 2004)
// over sliding 8×8 windows with stride 4, on the grayscale rendering of the
// inputs. Values are in [-1, 1]; 1 means identical structure. The paper
// uses SSIM > 0.5 as the face-texture quality bar (Table IV).
func SSIM(orig, recon *Image) float64 {
	checkSame("SSIM", orig, recon)
	a := orig.Gray()
	b := recon.Gray()
	const (
		win    = 8
		stride = 4
		L      = 255.0
	)
	c1 := (0.01 * L) * (0.01 * L)
	c2 := (0.03 * L) * (0.03 * L)
	h, w := a.H, a.W
	if h < win || w < win {
		// Degenerate small image: single global window.
		return ssimWindow(a.Pix, b.Pix, c1, c2)
	}
	total, count := 0.0, 0
	for y := 0; y+win <= h; y += stride {
		for x := 0; x+win <= w; x += stride {
			wa := gatherWindow(a, y, x, win)
			wb := gatherWindow(b, y, x, win)
			total += ssimWindow(wa, wb, c1, c2)
			count++
		}
	}
	return total / float64(count)
}

func gatherWindow(im *Image, y0, x0, win int) []float64 {
	out := make([]float64, win*win)
	i := 0
	for y := y0; y < y0+win; y++ {
		base := y * im.W
		for x := x0; x < x0+win; x++ {
			out[i] = im.Pix[base+x]
			i++
		}
	}
	return out
}

func ssimWindow(a, b []float64, c1, c2 float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var va, vb, cov float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		va += da * da
		vb += db * db
		cov += da * db
	}
	va /= n - 1
	vb /= n - 1
	cov /= n - 1
	num := (2*ma*mb + c1) * (2*cov + c2)
	den := (ma*ma + mb*mb + c1) * (va + vb + c2)
	return num / den
}

// PSNR returns the peak signal-to-noise ratio in dB (a supplementary metric;
// +Inf for identical images).
func PSNR(orig, recon *Image) float64 {
	checkSame("PSNR", orig, recon)
	mse := 0.0
	for i, v := range orig.Pix {
		d := v - recon.Pix[i]
		mse += d * d
	}
	mse /= float64(len(orig.Pix))
	if mse == 0 {
		return math.Inf(1)
	}
	return 20*math.Log10(255) - 10*math.Log10(mse)
}

func checkSame(op string, a, b *Image) {
	if a.C != b.C || a.H != b.H || a.W != b.W {
		panic(fmt.Sprintf("img: %s on mismatched images %dx%dx%d vs %dx%dx%d",
			op, a.C, a.H, a.W, b.C, b.H, b.W))
	}
}
