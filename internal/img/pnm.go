package img

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// WritePNM serializes the image as binary PGM (grayscale) or PPM (RGB).
func (im *Image) WritePNM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	magic := "P5"
	if im.C == 3 {
		magic = "P6"
	}
	if _, err := fmt.Fprintf(bw, "%s\n%d %d\n255\n", magic, im.W, im.H); err != nil {
		return err
	}
	hw := im.H * im.W
	for i := 0; i < hw; i++ {
		for c := 0; c < im.C; c++ {
			v := im.Pix[c*hw+i]
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			if err := bw.WriteByte(byte(v + 0.5)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SavePNM writes the image to path in PGM/PPM format.
func (im *Image) SavePNM(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := im.WritePNM(f); err != nil {
		return err
	}
	return f.Sync()
}

// ReadPNM parses a binary PGM (P5) or PPM (P6) stream.
func ReadPNM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxV int
	if err := scanPNMHeader(br, &magic, &w, &h, &maxV); err != nil {
		return nil, err
	}
	var c int
	switch magic {
	case "P5":
		c = 1
	case "P6":
		c = 3
	default:
		return nil, fmt.Errorf("img: unsupported PNM magic %q", magic)
	}
	if maxV != 255 {
		return nil, fmt.Errorf("img: unsupported max value %d", maxV)
	}
	im := New(c, h, w)
	hw := h * w
	buf := make([]byte, hw*c)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("img: short PNM pixel data: %w", err)
	}
	for i := 0; i < hw; i++ {
		for ch := 0; ch < c; ch++ {
			im.Pix[ch*hw+i] = float64(buf[i*c+ch])
		}
	}
	return im, nil
}

func scanPNMHeader(br *bufio.Reader, magic *string, w, h, maxV *int) error {
	fields := 0
	vals := [3]int{}
	for fields < 4 {
		tok, err := pnmToken(br)
		if err != nil {
			return err
		}
		if fields == 0 {
			*magic = tok
			fields++
			continue
		}
		var v int
		if _, err := fmt.Sscanf(tok, "%d", &v); err != nil {
			return fmt.Errorf("img: bad PNM header token %q", tok)
		}
		vals[fields-1] = v
		fields++
	}
	*w, *h, *maxV = vals[0], vals[1], vals[2]
	return nil
}

func pnmToken(br *bufio.Reader) (string, error) {
	var b strings.Builder
	inComment := false
	for {
		ch, err := br.ReadByte()
		if err != nil {
			if b.Len() > 0 && err == io.EOF {
				return b.String(), nil
			}
			return "", err
		}
		switch {
		case inComment:
			if ch == '\n' {
				inComment = false
			}
		case ch == '#':
			inComment = true
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			if b.Len() > 0 {
				return b.String(), nil
			}
		default:
			b.WriteByte(ch)
		}
	}
}

// ASCII renders the grayscale version of the image as an ASCII-art string,
// one character per pixel, dark-to-light. Useful for eyeballing
// reconstructions in a terminal (the repo's stand-in for the paper's Fig 5
// face strips).
func (im *Image) ASCII() string {
	ramp := []byte(" .:-=+*#%@")
	g := im.Gray()
	var b strings.Builder
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			v := g.Pix[y*g.W+x]
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			idx := int(v / 256.0 * float64(len(ramp)))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SideBySideASCII renders several images in one horizontal ASCII strip with
// a gap between them, matching Fig 5's row-of-faces layout.
func SideBySideASCII(images []*Image, gap int) string {
	if len(images) == 0 {
		return ""
	}
	rendered := make([][]string, len(images))
	maxH := 0
	for i, im := range images {
		rendered[i] = strings.Split(strings.TrimRight(im.ASCII(), "\n"), "\n")
		if len(rendered[i]) > maxH {
			maxH = len(rendered[i])
		}
	}
	pad := strings.Repeat(" ", gap)
	var b strings.Builder
	for y := 0; y < maxH; y++ {
		for i, rows := range rendered {
			if i > 0 {
				b.WriteString(pad)
			}
			if y < len(rows) {
				b.WriteString(rows[y])
			} else {
				b.WriteString(strings.Repeat(" ", images[i].W))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
