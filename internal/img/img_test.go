package img

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func gradientImage(c, h, w int) *Image {
	im := New(c, h, w)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				im.Set(float64((y*w+x)*255)/float64(h*w-1), ch, y, x)
			}
		}
	}
	return im
}

func noiseImage(c, h, w int, seed int64) *Image {
	rng := rand.New(rand.NewSource(seed))
	im := New(c, h, w)
	for i := range im.Pix {
		im.Pix[i] = rng.Float64() * 255
	}
	return im
}

func TestNewAndAccessors(t *testing.T) {
	im := New(1, 4, 5)
	if im.NumPix() != 20 {
		t.Fatalf("NumPix = %d", im.NumPix())
	}
	im.Set(100, 0, 2, 3)
	if im.At(0, 2, 3) != 100 {
		t.Fatal("At/Set round trip failed")
	}
	if im.Pix[2*5+3] != 100 {
		t.Fatal("channel-major layout violated")
	}
}

func TestNewBadChannelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 4, 4)
}

func TestFromPixelsLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromPixels(make([]float64, 5), 1, 2, 2)
}

func TestCloneIndependent(t *testing.T) {
	a := noiseImage(1, 3, 3, 1)
	b := a.Clone()
	b.Pix[0] = -999
	if a.Pix[0] == -999 {
		t.Fatal("Clone aliases original")
	}
}

func TestClamp(t *testing.T) {
	im := FromPixels([]float64{-10, 0, 128, 300}, 1, 2, 2)
	im.Clamp()
	want := []float64{0, 0, 128, 255}
	for i, v := range want {
		if im.Pix[i] != v {
			t.Fatalf("clamped[%d] = %v, want %v", i, im.Pix[i], v)
		}
	}
}

func TestMeanStd(t *testing.T) {
	im := FromPixels([]float64{0, 0, 200, 200}, 1, 2, 2)
	if im.Mean() != 100 {
		t.Fatalf("Mean = %v", im.Mean())
	}
	if im.Std() != 100 {
		t.Fatalf("Std = %v", im.Std())
	}
}

func TestGrayLuma(t *testing.T) {
	im := New(3, 1, 1)
	im.Set(255, 0, 0, 0) // pure red
	g := im.Gray()
	if math.Abs(g.Pix[0]-0.299*255) > 1e-9 {
		t.Fatalf("gray of red = %v, want %v", g.Pix[0], 0.299*255)
	}
	if g.C != 1 {
		t.Fatal("gray must be single-channel")
	}
}

func TestGrayOfGrayClones(t *testing.T) {
	a := noiseImage(1, 2, 2, 2)
	g := a.Gray()
	g.Pix[0] = -1
	if a.Pix[0] == -1 {
		t.Fatal("Gray of gray must copy")
	}
}

func TestNormalized(t *testing.T) {
	im := FromPixels([]float64{0, 255, 127.5, 51}, 1, 2, 2)
	n := im.Normalized()
	want := []float64{0, 1, 0.5, 0.2}
	for i, v := range want {
		if math.Abs(n[i]-v) > 1e-12 {
			t.Fatalf("normalized[%d] = %v, want %v", i, n[i], v)
		}
	}
}

func TestHistogramSumsToOne(t *testing.T) {
	im := noiseImage(1, 8, 8, 3)
	h := im.Histogram(16)
	s := 0.0
	for _, v := range h {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("histogram sums to %v", s)
	}
}

func TestHistogramPlacement(t *testing.T) {
	im := FromPixels([]float64{0, 0, 255, 255}, 1, 2, 2)
	h := im.Histogram(2)
	if h[0] != 0.5 || h[1] != 0.5 {
		t.Fatalf("histogram = %v, want [0.5 0.5]", h)
	}
}

func TestMAPEIdentical(t *testing.T) {
	a := noiseImage(1, 5, 5, 4)
	if MAPE(a, a) != 0 {
		t.Fatal("MAPE of identical images must be 0")
	}
}

func TestMAPEKnownOffset(t *testing.T) {
	a := gradientImage(1, 4, 4)
	b := a.Clone()
	for i := range b.Pix {
		b.Pix[i] += 7
	}
	if got := MAPE(a, b); math.Abs(got-7) > 1e-12 {
		t.Fatalf("MAPE = %v, want 7", got)
	}
}

func TestMAPESymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := noiseImage(1, 4, 4, seed)
		b := noiseImage(1, 4, 4, seed+1)
		return math.Abs(MAPE(a, b)-MAPE(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMAPEMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MAPE(New(1, 2, 2), New(1, 3, 3))
}

func TestRecognizableThreshold(t *testing.T) {
	a := gradientImage(1, 4, 4)
	good := a.Clone()
	for i := range good.Pix {
		good.Pix[i] += 10
	}
	bad := a.Clone()
	for i := range bad.Pix {
		bad.Pix[i] += 30
	}
	if !Recognizable(a, good) {
		t.Fatal("MAPE 10 should be recognizable")
	}
	if Recognizable(a, bad) {
		t.Fatal("MAPE 30 should not be recognizable")
	}
}

func TestSSIMIdenticalIsOne(t *testing.T) {
	a := noiseImage(1, 16, 16, 5)
	if got := SSIM(a, a); math.Abs(got-1) > 1e-9 {
		t.Fatalf("SSIM(a,a) = %v, want 1", got)
	}
}

func TestSSIMUncorrelatedNoiseLow(t *testing.T) {
	a := noiseImage(1, 16, 16, 6)
	b := noiseImage(1, 16, 16, 7)
	if got := SSIM(a, b); got > 0.3 {
		t.Fatalf("SSIM of unrelated noise = %v, want < 0.3", got)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	a := gradientImage(1, 16, 16)
	rng := rand.New(rand.NewSource(8))
	mild := a.Clone()
	heavy := a.Clone()
	for i := range a.Pix {
		mild.Pix[i] = clampPix(mild.Pix[i] + rng.NormFloat64()*8)
		heavy.Pix[i] = clampPix(heavy.Pix[i] + rng.NormFloat64()*80)
	}
	sMild := SSIM(a, mild)
	sHeavy := SSIM(a, heavy)
	if !(sMild > sHeavy) {
		t.Fatalf("SSIM not monotone in noise: mild %v heavy %v", sMild, sHeavy)
	}
	if sMild < 0.5 {
		t.Fatalf("mild-noise SSIM = %v, want > 0.5", sMild)
	}
}

func TestSSIMSmallImageFallback(t *testing.T) {
	a := noiseImage(1, 4, 4, 9)
	if got := SSIM(a, a); math.Abs(got-1) > 1e-9 {
		t.Fatalf("small-image SSIM = %v", got)
	}
}

func TestPSNR(t *testing.T) {
	a := gradientImage(1, 8, 8)
	if !math.IsInf(PSNR(a, a), 1) {
		t.Fatal("PSNR of identical images must be +Inf")
	}
	b := a.Clone()
	b.Pix[0] += 50
	p := PSNR(a, b)
	if p < 20 || p > 60 {
		t.Fatalf("PSNR = %v, outside sane range", p)
	}
}

func TestPNMRoundTripGray(t *testing.T) {
	a := noiseImage(1, 6, 5, 10)
	for i := range a.Pix {
		a.Pix[i] = math.Round(a.Pix[i])
	}
	var buf bytes.Buffer
	if err := a.WritePNM(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadPNM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.C != 1 || b.H != 6 || b.W != 5 {
		t.Fatalf("round-trip geometry %dx%dx%d", b.C, b.H, b.W)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatalf("pixel %d: %v vs %v", i, a.Pix[i], b.Pix[i])
		}
	}
}

func TestPNMRoundTripRGB(t *testing.T) {
	a := noiseImage(3, 4, 4, 11)
	for i := range a.Pix {
		a.Pix[i] = math.Round(a.Pix[i])
	}
	var buf bytes.Buffer
	if err := a.WritePNM(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadPNM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.C != 3 {
		t.Fatalf("round-trip channels = %d", b.C)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatalf("pixel %d: %v vs %v", i, a.Pix[i], b.Pix[i])
		}
	}
}

func TestPNMHeaderComments(t *testing.T) {
	raw := "P5 # comment\n# another comment\n2 2\n255\n" + string([]byte{1, 2, 3, 4})
	im, err := ReadPNM(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if im.Pix[3] != 4 {
		t.Fatalf("pixel 3 = %v", im.Pix[3])
	}
}

func TestPNMBadMagic(t *testing.T) {
	if _, err := ReadPNM(strings.NewReader("P3\n1 1\n255\n0")); err == nil {
		t.Fatal("expected error for ASCII PNM")
	}
}

func TestPNMShortData(t *testing.T) {
	raw := "P5\n4 4\n255\n" + string([]byte{1, 2})
	if _, err := ReadPNM(strings.NewReader(raw)); err == nil {
		t.Fatal("expected error for truncated pixels")
	}
}

func TestASCIIRender(t *testing.T) {
	im := FromPixels([]float64{0, 255, 128, 64}, 1, 2, 2)
	s := im.ASCII()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 2 {
		t.Fatalf("ASCII shape wrong: %q", s)
	}
	if lines[0][0] != ' ' {
		t.Fatalf("black pixel rendered as %q", lines[0][0])
	}
	if lines[0][1] != '@' {
		t.Fatalf("white pixel rendered as %q", lines[0][1])
	}
}

func TestSideBySideASCII(t *testing.T) {
	a := New(1, 2, 3)
	b := New(1, 2, 3)
	s := SideBySideASCII([]*Image{a, b}, 2)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("strip has %d rows", len(lines))
	}
	if len(lines[0]) != 3+2+3 {
		t.Fatalf("strip width = %d, want 8", len(lines[0]))
	}
	if SideBySideASCII(nil, 1) != "" {
		t.Fatal("empty strip should be empty string")
	}
}

func TestSavePNM(t *testing.T) {
	im := gradientImage(1, 4, 4)
	path := t.TempDir() + "/test.pgm"
	if err := im.SavePNM(path); err != nil {
		t.Fatal(err)
	}
}

func clampPix(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}
