package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// The error envelope's exact bytes are pinned here once; the serve and
// gateway golden tests pin that their handlers produce this same shape
// end to end.
func TestErrorEnvelopeGolden(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusNotFound, CodeNotFound, "000102030405060708090a0b0c0d0e0f", "unknown model %q", "nope")
	want := `{"error":"unknown model \"nope\"","code":"not_found","trace_id":"000102030405060708090a0b0c0d0e0f"}` + "\n"
	if got := rec.Body.String(); got != want {
		t.Fatalf("envelope:\n got %s\nwant %s", got, want)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}

	// Without a trace the field disappears rather than emptying.
	rec = httptest.NewRecorder()
	WriteError(rec, http.StatusBadRequest, "", "", "bad body")
	want = `{"error":"bad body","code":"bad_request"}` + "\n"
	if got := rec.Body.String(); got != want {
		t.Fatalf("untraced envelope:\n got %s\nwant %s", got, want)
	}
}

func TestParseErrorRoundTrip(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusTooManyRequests, CodeBudgetExhausted, "ff00", "budget spent")
	e, err := ParseError(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeBudgetExhausted || e.Message != "budget spent" || e.TraceID != "ff00" {
		t.Fatalf("parsed %+v", e)
	}
	if !strings.Contains(e.Error(), "budget_exhausted") {
		t.Fatalf("Error() = %q", e.Error())
	}
	if _, err := ParseError([]byte(`{"status":"ok"}`)); err == nil {
		t.Fatal("non-envelope body parsed as envelope")
	}
	if _, err := ParseError([]byte("404 page not found\n")); err == nil {
		t.Fatal("mux text page parsed as envelope")
	}
}

func TestCodeForStatus(t *testing.T) {
	for status, want := range map[int]string{
		400: CodeBadRequest,
		404: CodeNotFound,
		429: CodeOverCapacity,
		500: CodeInternal,
		501: CodeNotImplemented,
		502: CodeBadGateway,
		503: CodeUnavailable,
	} {
		if got := CodeForStatus(status); got != want {
			t.Errorf("CodeForStatus(%d) = %q, want %q", status, got, want)
		}
	}
}

func TestSplitModelOp(t *testing.T) {
	cases := []struct {
		in, name, op string
		ok           bool
	}{
		{"prod:audit", "prod", "audit", true},
		{"a:b:policy", "a:b", "policy", true},
		{"prod", "", "", false},
		{":audit", "", "", false},
		{"prod:", "", "", false},
	}
	for _, c := range cases {
		name, op, ok := SplitModelOp(c.in)
		if name != c.name || op != c.op || ok != c.ok {
			t.Errorf("SplitModelOp(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.in, name, op, ok, c.name, c.op, c.ok)
		}
	}
}

func TestDispatchModelOp(t *testing.T) {
	var gotName string
	ops := map[string]ModelOpHandler{
		"audit": func(w http.ResponseWriter, r *http.Request, name string) {
			gotName = name
			WriteJSON(w, http.StatusOK, map[string]string{"op": "audit"})
		},
		"load": func(w http.ResponseWriter, r *http.Request, name string) {},
	}
	rec := httptest.NewRecorder()
	DispatchModelOp(rec, httptest.NewRequest("POST", "/v1/models/x", nil), "m:audit", ops)
	if gotName != "m" || rec.Code != http.StatusOK {
		t.Fatalf("dispatch: name %q status %d", gotName, rec.Code)
	}

	rec = httptest.NewRecorder()
	DispatchModelOp(rec, httptest.NewRequest("POST", "/v1/models/x", nil), "m:nope", ops)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown op status %d", rec.Code)
	}
	e, err := ParseError(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// The known-op list is sorted, so the message is deterministic.
	if e.Code != CodeNotFound || !strings.Contains(e.Message, "{name}:audit or {name}:load") {
		t.Fatalf("unknown op envelope %+v", e)
	}
}

func TestBudgetLedger(t *testing.T) {
	l := NewBudgetLedger()
	if !l.Allow("m", "c", 3, 5) || !l.Allow("m", "c", 2, 5) {
		t.Fatal("spend within budget denied")
	}
	if l.Allow("m", "c", 1, 5) {
		t.Fatal("over-budget spend allowed")
	}
	if l.Used("m", "c") != 5 {
		t.Fatalf("used = %d", l.Used("m", "c"))
	}
	// Other clients and models have independent budgets.
	if !l.Allow("m", "c2", 5, 5) || !l.Allow("m2", "c", 5, 5) {
		t.Fatal("independent budget denied")
	}
	// No budget → no counting.
	if !l.Allow("free", "c", 1000, 0) || l.Used("free", "c") != 0 {
		t.Fatal("uncapped spend was counted")
	}
	// Reset re-arms one model only.
	l.Reset("m")
	if l.Used("m", "c") != 0 || !l.Allow("m", "c", 5, 5) {
		t.Fatal("reset did not re-arm")
	}
	if l.Allow("m2", "c", 1, 5) {
		t.Fatal("reset leaked across models")
	}
}

func TestBudgetLedgerOverflowCap(t *testing.T) {
	l := NewBudgetLedger()
	for i := 0; i < budgetMaxKeys; i++ {
		if !l.Allow("m", fmt.Sprintf("c%d", i), 1, 10) {
			t.Fatalf("client %d denied before cap", i)
		}
	}
	// Past the cap, fresh identities share the overflow budget instead of
	// minting new keys.
	for i := 0; i < 10; i++ {
		if !l.Allow("m", fmt.Sprintf("fresh%d", i), 1, 10) {
			t.Fatalf("overflow spend %d denied early", i)
		}
	}
	if l.Allow("m", "yet-another", 1, 10) {
		t.Fatal("overflow budget not shared")
	}
	if l.Used("m", OverflowClient) != 10 {
		t.Fatalf("overflow used = %d", l.Used("m", OverflowClient))
	}
}

// The predict schema round-trips and the defended shapes stay valid for a
// decoder of the full shape (class always present, scores optional).
func TestPredictSchemaRoundTrip(t *testing.T) {
	full := PredictResponse{
		API: Version, Model: "m", Digest: "d",
		Predictions: []Prediction{{Class: 2, Probs: []float64{0.1, 0.2, 0.7}, Logits: []float64{1, 2, 3}}},
	}
	label := PredictResponse{
		API: Version, Model: "m", Digest: "d", Mode: "label",
		Predictions: []Prediction{{Class: 2}},
	}
	for _, resp := range []PredictResponse{full, label} {
		raw, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		var back PredictResponse
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if back.Predictions[0].Class != 2 || back.API != Version {
			t.Fatalf("round trip %+v", back)
		}
	}
	raw, _ := json.Marshal(label.Predictions[0])
	if want := `{"class":2}`; string(raw) != want {
		t.Fatalf("label-only prediction = %s, want %s", raw, want)
	}
}
