package api

import "sync"

// budgetMaxKeys caps the ledger's (model, client) key space; past it,
// new clients share one overflow key per model, so an attacker rotating
// client identities cannot grow server memory without bound (they share
// the overflow budget instead — strictly worse for them).
const budgetMaxKeys = 4096

// BudgetLedger counts per-(model, client) prediction samples for query
// budget enforcement — the defense that caps how much of a model an
// extraction attacker can observe. Both tiers use one: the replica
// enforces its registry policies, the gateway enforces at the edge from
// the budgets it learned during :policy pass-through. Admission is
// check-and-count under one lock, so concurrent requests cannot
// collectively overshoot a budget.
type BudgetLedger struct {
	mu   sync.Mutex
	used map[string]int
}

// NewBudgetLedger returns an empty ledger.
func NewBudgetLedger() *BudgetLedger {
	return &BudgetLedger{used: map[string]int{}}
}

func budgetKey(model, client string) string { return model + "\x00" + client }

// Allow reports whether client may spend n more samples against model
// under the given budget, counting them when it does. Samples are charged
// at admission — before any compute — and are not refunded on downstream
// failure (a failed forward still leaked queue pressure). budget <= 0
// means no cap (nothing is counted).
func (l *BudgetLedger) Allow(model, client string, n, budget int) bool {
	if budget <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	key := budgetKey(model, client)
	if _, ok := l.used[key]; !ok && len(l.used) >= budgetMaxKeys {
		key = budgetKey(model, OverflowClient)
	}
	if l.used[key]+n > budget {
		return false
	}
	l.used[key] += n
	return true
}

// OverflowClient is the shared identity clients collapse into once the
// ledger's key cap is reached (mirrors the obs vec overflow label).
const OverflowClient = "_other"

// Used reports the samples client has spent against model.
func (l *BudgetLedger) Used(model, client string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used[budgetKey(model, client)]
}

// Reset clears every client's spend against model — called when the
// model's policy changes, so a new budget starts from zero.
func (l *BudgetLedger) Reset(model string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	prefix := model + "\x00"
	for k := range l.used {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(l.used, k)
		}
	}
}
