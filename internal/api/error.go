package api

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Error is the unified envelope every 4xx/5xx answer carries, on the
// replica and the gateway alike. Message is human-readable; Code is the
// stable machine vocabulary clients branch on; TraceID correlates the
// failure against /tracez when the request was traced.
type Error struct {
	Message string `json:"error"`
	Code    string `json:"code"`
	TraceID string `json:"trace_id,omitempty"`
}

// Error implements the error interface, so a parsed envelope can travel
// as a Go error (the extraction client relies on this).
func (e Error) Error() string {
	if e.TraceID != "" {
		return fmt.Sprintf("%s: %s (trace %s)", e.Code, e.Message, e.TraceID)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Error codes. One code means one thing across the whole fleet; servers
// must not invent strings outside this vocabulary.
const (
	// CodeBadRequest covers malformed bodies and invalid field
	// combinations (400).
	CodeBadRequest = "bad_request"
	// CodeUnsupportedAPI rejects a request pinning an "api" version the
	// server does not speak (400).
	CodeUnsupportedAPI = "unsupported_api"
	// CodeNotFound covers unknown models and unknown model operations
	// (404).
	CodeNotFound = "not_found"
	// CodeOverCapacity is backpressure: the request queue (replica) or
	// every routing candidate (gateway) is saturated (429/503).
	CodeOverCapacity = "over_capacity"
	// CodeBudgetExhausted rejects a client that spent its per-model query
	// budget — the anti-extraction defense (429).
	CodeBudgetExhausted = "budget_exhausted"
	// CodeUnavailable covers draining/closed engines and an empty routing
	// ring (503).
	CodeUnavailable = "unavailable"
	// CodeNotImplemented marks an endpoint whose prerequisite is not
	// configured, e.g. :load without an artifact store (501).
	CodeNotImplemented = "not_implemented"
	// CodeBadGateway is a gateway-synthesized failure: every proxied
	// attempt died at the transport level (502).
	CodeBadGateway = "bad_gateway"
	// CodeInternal is an unexpected server-side failure (500).
	CodeInternal = "internal"
)

// CodeForStatus maps an HTTP status to the default code for call sites
// that have nothing more specific to say.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusTooManyRequests:
		return CodeOverCapacity
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	case http.StatusNotImplemented:
		return CodeNotImplemented
	case http.StatusBadGateway:
		return CodeBadGateway
	default:
		return CodeInternal
	}
}

// WriteJSON writes v as the JSON body of a response with the given
// status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// WriteError writes the unified error envelope. An empty code falls back
// to CodeForStatus; traceID may be empty (the field is then omitted).
// Callers that traced the request set the trace response header
// themselves — this helper owns only the body.
func WriteError(w http.ResponseWriter, status int, code, traceID, format string, args ...any) {
	if code == "" {
		code = CodeForStatus(status)
	}
	WriteJSON(w, status, Error{Message: fmt.Sprintf(format, args...), Code: code, TraceID: traceID})
}

// ParseError decodes an error envelope from a response body. It fails
// when the body is not an envelope (no "error" message), so callers can
// distinguish our errors from proxies' text pages.
func ParseError(body []byte) (Error, error) {
	var e Error
	if err := json.Unmarshal(body, &e); err != nil {
		return Error{}, fmt.Errorf("api: not an error envelope: %w", err)
	}
	if e.Message == "" {
		return Error{}, fmt.Errorf("api: not an error envelope: %q", body)
	}
	return e, nil
}
