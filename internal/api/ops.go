package api

import (
	"net/http"
	"sort"
	"strings"
)

// ModelOpHandler handles one POST /v1/models/{name}:{op} operation after
// the path has been split and the op resolved.
type ModelOpHandler func(w http.ResponseWriter, r *http.Request, name string)

// SplitModelOp splits a {name}:{op} path value around its final colon,
// so model names containing colons keep working. ok is false when there
// is no colon, or name/op is empty.
func SplitModelOp(nameop string) (name, op string, ok bool) {
	i := strings.LastIndex(nameop, ":")
	if i <= 0 || i == len(nameop)-1 {
		return "", "", false
	}
	return nameop[:i], nameop[i+1:], true
}

// DispatchModelOp resolves a {name}:{op} path value against a handler
// table — the single op parser both servers route model operations
// through. A path that does not parse, or an op with no handler, answers
// 404 with the unified envelope listing the ops that do exist.
func DispatchModelOp(w http.ResponseWriter, r *http.Request, nameop string, ops map[string]ModelOpHandler) {
	name, op, ok := SplitModelOp(nameop)
	if ok {
		if h, known := ops[op]; known {
			h(w, r, name)
			return
		}
	}
	known := make([]string, 0, len(ops))
	for k := range ops {
		known = append(known, ":"+k)
	}
	sort.Strings(known)
	WriteError(w, http.StatusNotFound, CodeNotFound, "",
		"unknown model operation %q (want {name}%s)", nameop, strings.Join(known, " or {name}"))
}
