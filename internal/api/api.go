// Package api defines the versioned /v1 HTTP surface shared by the
// serving replica (internal/serve), the fleet gateway (internal/gateway),
// and the extraction attacker's client (internal/extract). It is the one
// place the wire schema lives: both servers encode from these types, the
// attacker decodes into them, and the golden tests in both server packages
// pin the bytes.
//
// # POST /v1/predict
//
// Request:
//
//	{
//	  "api": "v1",            // optional; any other value is rejected
//	  "model": "prod",        // registry name to serve from (required)
//	  "input": [ ... ],       // one flattened C*H*W sample, XOR
//	  "inputs": [[ ... ]],    // a batch of samples
//	  "omit_scores": true     // optional: answer with classes only
//	}
//
// Response (200):
//
//	{
//	  "api": "v1",
//	  "model": "prod",
//	  "digest": "<hex sha-256 of the released file>",
//	  "mode": "top1",         // present only when a serving policy
//	                          // restricted the response ("top1"|"label")
//	  "predictions": [
//	    {
//	      "class": 3,          // argmax class — always present
//	      "probs": [ ... ],    // softmax; absent under label-only/top1
//	                           // policies and omit_scores requests
//	      "logits": [ ... ],   // raw scores; absent likewise
//	      "top_prob": 0.98     // top-1 probability; "top1" policy only
//	    }
//	  ]
//	}
//
// # POST /v1/models/{name}:{op}
//
// Model operations share one path convention: the final colon in the path
// value splits the model name from the operation. The replica serves
// :audit, :load, and :policy; the gateway serves :reload and :policy
// (fanned out to every eligible replica). Unknown operations answer 404
// with the unified error envelope listing the ops that exist.
//
// # Errors
//
// Every 4xx/5xx from either server carries the same JSON envelope:
//
//	{"error": "<message>", "code": "<machine code>", "trace_id": "<32hex>"}
//
// trace_id is present whenever the failing request was traced (predict on
// both tiers); other endpoints omit it. The code vocabulary is the Code*
// constants below.
package api

// Version is the current API version; requests may pin it via the "api"
// field and servers echo it on every predict response.
const Version = "v1"

// PredictRequest is the body of POST /v1/predict on both the replica and
// the gateway. Exactly one of Input/Inputs must be set.
type PredictRequest struct {
	// API optionally pins the schema version; "" and Version are
	// accepted, anything else is rejected with CodeUnsupportedAPI.
	API string `json:"api,omitempty"`
	// Model names the registry entry to serve from.
	Model string `json:"model"`
	// Input is a single flattened C*H*W sample; Inputs is a batch.
	Input  []float64   `json:"input,omitempty"`
	Inputs [][]float64 `json:"inputs,omitempty"`
	// OmitScores asks for label-only answers (classes without probs or
	// logits) regardless of the model's serving policy — the same shape a
	// label-only policy produces, so clients that opt in are already
	// schema-valid when a defense is later enabled.
	OmitScores bool `json:"omit_scores,omitempty"`
}

// Prediction is the serving result for one input sample. Class is always
// present; the score fields depend on the model's serving policy and the
// request's omit_scores flag (see the package doc).
type Prediction struct {
	// Class is the argmax class.
	Class int `json:"class"`
	// Probs is the softmax distribution over classes (full responses
	// only).
	Probs []float64 `json:"probs,omitempty"`
	// Logits are the raw pre-softmax scores; bit-identical to a serial
	// single-sample forward pass of the same input (full responses only).
	Logits []float64 `json:"logits,omitempty"`
	// TopProb is the top-1 probability, reported only under a "top1"
	// policy (rounded when the policy also rounds).
	TopProb float64 `json:"top_prob,omitempty"`
}

// PredictResponse is the 200 body of POST /v1/predict.
type PredictResponse struct {
	// API echoes the schema version ("v1").
	API string `json:"api"`
	// Model and Digest identify what answered: the registry name and the
	// hex SHA-256 of the released file it was loaded from.
	Model  string `json:"model"`
	Digest string `json:"digest"`
	// Mode reports the policy restriction applied to this response
	// ("top1" or "label"); empty for full responses.
	Mode string `json:"mode,omitempty"`
	// Predictions holds one entry per input sample, in request order.
	Predictions []Prediction `json:"predictions"`
}
