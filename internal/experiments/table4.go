package experiments

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/report"
)

// Table4Row is one row of Table IV (face recognition, λ=10, 3-bit).
type Table4Row struct {
	Name         string
	Accuracy     float64
	MAPE         float64
	MAPEUnder20  int
	MeanSSIM     float64
	SSIMOverHalf int
	Total        int
}

// Table4Result reproduces Table IV: the face-recognition model with λ=10
// encoding, comparing the uncompressed attack model, the proposed 3-bit
// target-correlated quantization, and the original 3-bit weighted-entropy
// quantization.
type Table4Result struct {
	Rows []Table4Row
}

// faceWindowLen is wider than CIFAR's because the face generator's
// per-image std spectrum is narrower; the window must still catch enough
// candidates to fill the payload capacity.
const faceWindowLen = 8

// faceDomainPixelMean estimates the domain's typical crop brightness —
// the statistic a real adversary reads off any public face dataset.
func faceDomainPixelMean(d *dataset.Dataset) float64 {
	n := d.Len()
	if n > 50 {
		n = 50
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += d.Images[i].Mean()
	}
	if n == 0 {
		return 128
	}
	return s / float64(n)
}

// Table4 runs the three face configurations. All three share the same
// layer-wise encoding (the paper compares quantizers on the same attack
// model), differing only in the compression step: none, Algorithm 1, or
// weighted entropy with benign fine-tuning.
func Table4(e *Env) Table4Result {
	d := e.Faces()
	model := e.faceModel(d.Classes)
	mk := func(quant core.QuantMode) core.Config {
		cfg := e.proposedCfg(d, model, 10, quant, 3)
		cfg.WindowLen = faceWindowLen
		// Encode into the late conv stage only, as the paper does
		// (ResNet-34 layers 17-34 are convolutions): the classifier
		// head gets its own zero-rate group so 8-level image-histogram
		// quantization never touches the layer that drives accuracy
		// most directly.
		cfg.GroupBounds = []int{5, 9, 13}
		cfg.Lambdas = []float64{0, 0, 10, 0}
		if !e.Quick {
			cfg.Epochs = 20
		}
		// 3-bit quantization (8 levels) needs a real fine-tuning budget to
		// recover accuracy — the paper's flow leans on this ("light
		// fine-tuning to boost accuracy"). Both quantizers get the same
		// budget so the comparison stays fair; the malicious branch keeps
		// its regularizer during fine-tuning (protecting the payload),
		// the stock branch fine-tunes benignly (drifting it).
		cfg.FineTuneEpochs = 14
		cfg.FineTuneLR = 0.03
		// Face crops are not brightness-centered at 128 (dark background
		// around a bright face); the adversary moment-matches to the
		// domain-typical face-crop statistics instead. Derived from
		// public face data, not from this training run.
		cfg.DecodeMean = faceDomainPixelMean(d)
		return cfg
	}
	runs := []struct {
		name  string
		key   string
		quant core.QuantMode
	}{
		{"Uncompressed", "face-l10-none", core.QuantNone},
		{"Proposed Quantization", "face-l10-tcq3", core.QuantTargetCorrelated},
		{"Original Quantization", "face-l10-weq3", core.QuantWEQ},
	}
	var res Table4Result
	for _, rr := range runs {
		r := e.run(rr.key, mk(rr.quant))
		res.Rows = append(res.Rows, Table4Row{
			Name:         rr.name,
			Accuracy:     r.TestAcc,
			MAPE:         r.Score.MeanMAPE,
			MAPEUnder20:  r.Score.Recognizable,
			MeanSSIM:     r.Score.MeanSSIM,
			SSIMOverHalf: r.Score.SSIMOverHalf,
			Total:        r.Score.N,
		})
	}
	t := report.NewTable(
		"Table IV: face recognition, lambda=10, 3-bit quantization",
		"model", "accuracy", "MAPE", "MAPE<20", "mean SSIM", "SSIM>0.5", "total")
	for _, row := range res.Rows {
		t.AddRow(row.Name, report.Percent(row.Accuracy), row.MAPE,
			row.MAPEUnder20, row.MeanSSIM, row.SSIMOverHalf, row.Total)
	}
	t.Render(e.out())
	return res
}
