package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

// Table3Col is one column of Table III: either the original uncompressed
// attack model ("Ori", Bits == 0) or the proposed flow at a bit width.
type Table3Col struct {
	Lambda     float64
	Bits       int // 0 = uncompressed vanilla attack ("Ori")
	MAPEGray   float64
	AccGray    float64
	MAPERGB    float64
	AccRGB     float64
	Recognized int // RGB
	TotalRGB   int
}

// Table3Result reproduces Table III: original uncompressed attack models
// vs the proposed quantized attack flow across correlation rates and bit
// widths, on both grayscale and RGB data.
type Table3Result struct {
	Cols []Table3Col
}

// Table3 runs, per λ ∈ {3, 5, 10}: the vanilla uncompressed attack and the
// proposed flow (λ1=λ2=0, λ3=λ, std window, Algorithm 1 quantization with
// regularized fine-tuning) at 8, 6 and 4 bits — each on grayscale and RGB.
func Table3(e *Env) Table3Result {
	dg := e.CIFARGray()
	dr := e.CIFARRGB()
	mg := e.cifarModel(1)
	mr := e.cifarModel(3)

	var res Table3Result
	for _, lambda := range []float64{3, 5, 10} {
		// "Ori": the original attack, uncompressed.
		og := e.run(fmt.Sprintf("vanilla-gray-l%g-none", lambda),
			e.vanillaCfg(dg, mg, lambda, core.QuantNone, 4))
		or := e.run(fmt.Sprintf("vanilla-rgb-l%g-none", lambda),
			e.vanillaCfg(dr, mr, lambda, core.QuantNone, 4))
		res.Cols = append(res.Cols, Table3Col{
			Lambda: lambda, Bits: 0,
			MAPEGray: og.Score.MeanMAPE, AccGray: og.TestAcc,
			MAPERGB: or.Score.MeanMAPE, AccRGB: or.TestAcc,
			Recognized: or.Score.Recognizable, TotalRGB: or.Score.N,
		})
		for _, bits := range []int{8, 6, 4} {
			pg := e.run(fmt.Sprintf("proposed-gray-l%g-tcq%d", lambda, bits),
				e.proposedCfg(dg, mg, lambda, core.QuantTargetCorrelated, bits))
			pr := e.run(fmt.Sprintf("proposed-rgb-l%g-tcq%d", lambda, bits),
				e.proposedCfg(dr, mr, lambda, core.QuantTargetCorrelated, bits))
			res.Cols = append(res.Cols, Table3Col{
				Lambda: lambda, Bits: bits,
				MAPEGray: pg.Score.MeanMAPE, AccGray: pg.TestAcc,
				MAPERGB: pr.Score.MeanMAPE, AccRGB: pr.TestAcc,
				Recognized: pr.Score.Recognizable, TotalRGB: pr.Score.N,
			})
		}
	}

	t := report.NewTable(
		"Table III: original uncompressed attack (bits=Ori) vs proposed quantized flow",
		"lambda", "bits", "MAPE(gray)", "acc(gray)", "MAPE(RGB)", "acc(RGB)", "recognized(RGB)")
	for _, c := range res.Cols {
		bits := "Ori"
		if c.Bits != 0 {
			bits = fmt.Sprintf("%d", c.Bits)
		}
		t.AddRow(c.Lambda, bits, c.MAPEGray, report.Percent(c.AccGray),
			c.MAPERGB, report.Percent(c.AccRGB),
			fmt.Sprintf("%d/%d (%.1f%%)", c.Recognized, c.TotalRGB, pct(c.Recognized, c.TotalRGB)))
	}
	t.Render(e.out())
	return res
}
