package experiments

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/obs"
)

// emitPipelineBench, when set to a path, makes TestEmitPipelineBench run
// the quantizer ablation cold (empty artifact store) and then warm (fresh
// process-level state, same store) and write the timings plus cache
// traffic there as JSON. Wired to `make pipeline-bench`; empty (the
// default) skips the test so the regular suite stays fast.
var emitPipelineBench = flag.String("emit-bench", "", "write pipeline cache cold/warm numbers (BENCH_pipeline.json) to this path")

type pipelineBenchReport struct {
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	Speedup     float64 `json:"speedup"`

	// Stage-level cache outcomes per phase. The cold run starts from an
	// empty store but still hits on its later variants (the ablation's
	// configs share their split → preprocess → train prefix); the warm
	// run must be all hits.
	ColdStageHits   int64 `json:"cold_stage_hits"`
	ColdStageMisses int64 `json:"cold_stage_misses"`
	WarmStageHits   int64 `json:"warm_stage_hits"`
	WarmStageMisses int64 `json:"warm_stage_misses"`
	// WarmTrainHits counts warm-run train-stage cache hits — the direct
	// evidence that no model was retrained.
	WarmTrainHits    int64 `json:"warm_train_hits"`
	WarmTrainEpochs  int64 `json:"warm_train_epochs"`
	StoreWriteBytes  int64 `json:"store_write_bytes"`
	StoreReadBytes   int64 `json:"store_read_bytes"`
	StoreArtifactOps int64 `json:"store_hits_plus_misses"`
}

func counterValue(name string) int64 {
	return obs.Default.Counter(name).Value()
}

// TestEmitPipelineBench measures what the artifact store buys: the same
// experiment sweep run cold (everything computed and persisted) and warm
// (every stage served from the store). The warm run must not train a
// single epoch.
func TestEmitPipelineBench(t *testing.T) {
	if *emitPipelineBench == "" {
		t.Skip("pass -emit-bench=<path> (make pipeline-bench) to measure pipeline caching")
	}
	dir := t.TempDir()
	obs.Enable(true)
	defer func() {
		obs.Enable(false)
		obs.Default.Reset()
	}()
	obs.Default.Reset()

	runOnce := func() float64 {
		store, err := artifact.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		// A fresh Env per phase: the in-process memoizer must not mask
		// the store (cross-process reuse is exactly what is measured).
		env := NewEnv(1, true, io.Discard)
		env.Cache = store
		startAt := time.Now()
		AblationQuantizer(env)
		return time.Since(startAt).Seconds()
	}

	cold := runOnce()
	rep := pipelineBenchReport{
		ColdSeconds:     cold,
		ColdStageHits:   counterValue("pipeline_cache_hits_total"),
		ColdStageMisses: counterValue("pipeline_cache_misses_total"),
	}
	epochsBeforeWarm := counterValue("train_epochs_total")

	warm := runOnce()
	rep.WarmSeconds = warm
	rep.WarmStageHits = counterValue("pipeline_cache_hits_total") - rep.ColdStageHits
	rep.WarmStageMisses = counterValue("pipeline_cache_misses_total") - rep.ColdStageMisses
	rep.WarmTrainHits = counterValue(`pipeline_cache_hits_total{stage="train"}`)
	rep.WarmTrainEpochs = counterValue("train_epochs_total") - epochsBeforeWarm
	if warm > 0 {
		rep.Speedup = cold / warm
	}

	rep.StoreWriteBytes = counterValue("artifact_cache_write_bytes_total")
	rep.StoreReadBytes = counterValue("artifact_cache_read_bytes_total")
	rep.StoreArtifactOps = counterValue("artifact_cache_hits_total") + counterValue("artifact_cache_misses_total")

	t.Logf("cold %.2fs (%d misses), warm %.2fs (%d hits, %d misses, %d train epochs)",
		cold, rep.ColdStageMisses, warm, rep.WarmStageHits, rep.WarmStageMisses, rep.WarmTrainEpochs)

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*emitPipelineBench, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", *emitPipelineBench)

	if rep.WarmTrainEpochs != 0 {
		t.Fatalf("warm run trained %d epochs; training stages were not served from cache", rep.WarmTrainEpochs)
	}
	if rep.WarmStageMisses != 0 {
		t.Fatalf("warm run missed %d stages; expected full reuse", rep.WarmStageMisses)
	}
	if rep.WarmTrainHits == 0 {
		t.Fatal("no train-stage cache hits recorded on the warm run")
	}
}
