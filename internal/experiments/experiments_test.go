package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

var (
	sharedEnv  *Env
	sharedOnce sync.Once
)

// quickEnv returns a shared quick-mode environment. All tests reuse one Env
// so trained models are cached once and amortized across assertions.
func quickEnv(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment smoke tests skipped in -short mode")
	}
	sharedOnce.Do(func() {
		sharedEnv = NewEnv(1, true, &bytes.Buffer{})
	})
	return sharedEnv
}

func TestTable1Structure(t *testing.T) {
	e := quickEnv(t)
	res := Table1(e)
	if len(res.Cells) != 7 {
		t.Fatalf("Table I has %d cells, want 7", len(res.Cells))
	}
	want := []struct {
		lambda float64
		bits   int
	}{{3, 8}, {3, 6}, {3, 4}, {5, 8}, {5, 6}, {5, 4}, {10, 4}}
	for i, c := range res.Cells {
		if c.Lambda != want[i].lambda || c.Bits != want[i].bits {
			t.Fatalf("cell %d = (λ=%g, %d bits), want (%g, %d)", i, c.Lambda, c.Bits, want[i].lambda, want[i].bits)
		}
		if c.Total == 0 {
			t.Fatalf("cell %d has no encoded images", i)
		}
		if c.Accuracy < 0 || c.Accuracy > 1 {
			t.Fatalf("cell %d accuracy %v out of range", i, c.Accuracy)
		}
	}
}

func TestTable2Structure(t *testing.T) {
	e := quickEnv(t)
	res := Table2(e)
	if len(res.Rows) != 3 {
		t.Fatalf("Table II has %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if len(r.GroupN) != 3 {
			t.Fatalf("row λ=%g has %d groups", r.Lambda, len(r.GroupN))
		}
		sum := 0
		for _, n := range r.GroupN {
			sum += n
		}
		if sum != r.Total {
			t.Fatalf("group image counts %v do not sum to total %d", r.GroupN, r.Total)
		}
		for i := range r.GroupBad {
			if r.GroupBad[i] > r.GroupN[i] {
				t.Fatalf("group %d: %d bad of %d", i, r.GroupBad[i], r.GroupN[i])
			}
		}
	}
}

func TestTable3Structure(t *testing.T) {
	e := quickEnv(t)
	res := Table3(e)
	if len(res.Cols) != 12 {
		t.Fatalf("Table III has %d columns, want 12", len(res.Cols))
	}
	// Per λ: first column is Ori, then 8/6/4 bits.
	for i, c := range res.Cols {
		wantBits := []int{0, 8, 6, 4}[i%4]
		if c.Bits != wantBits {
			t.Fatalf("column %d bits = %d, want %d", i, c.Bits, wantBits)
		}
	}
}

func TestTable4AndFig5(t *testing.T) {
	e := quickEnv(t)
	e.OutDir = t.TempDir()
	res := Table4(e)
	if len(res.Rows) != 3 {
		t.Fatalf("Table IV has %d rows", len(res.Rows))
	}
	names := []string{"Uncompressed", "Proposed Quantization", "Original Quantization"}
	for i, r := range res.Rows {
		if r.Name != names[i] {
			t.Fatalf("row %d name %q", i, r.Name)
		}
		if r.Total == 0 {
			t.Fatalf("row %q scored no images", r.Name)
		}
	}
	f5 := Fig5(e)
	if len(f5.Proposed) == 0 || len(f5.Original) == 0 {
		t.Fatal("Fig 5 produced no strips")
	}
	if len(f5.SavedFiles) == 0 {
		t.Fatal("Fig 5 saved no artifacts despite OutDir")
	}
}

func TestFig2Structure(t *testing.T) {
	e := quickEnv(t)
	res := Fig2(e)
	for _, label := range []string{"benign", "lambda=1", "lambda=10"} {
		if _, ok := res.WeightHists[label]; !ok {
			t.Fatalf("missing weight histogram %q", label)
		}
		if _, ok := res.TV[label]; !ok {
			t.Fatalf("missing TV distance %q", label)
		}
	}
	if len(res.PixelHists) != 3 {
		t.Fatalf("expected 3 pixel-band histograms, got %d", len(res.PixelHists))
	}
	// The strong attack's weight shape must be closer to the pixel shape
	// than the benign model's.
	if res.TV["lambda=10"] >= res.TV["benign"] {
		t.Fatalf("λ=10 TV %v not below benign %v", res.TV["lambda=10"], res.TV["benign"])
	}
}

func TestFig3Structure(t *testing.T) {
	e := quickEnv(t)
	res := Fig3(e)
	if _, ok := res.Hists["weighted-entropy"]; !ok {
		t.Fatal("missing WEQ histogram")
	}
	if _, ok := res.Hists["target-correlated"]; !ok {
		t.Fatal("missing TCQ histogram")
	}
	// Algorithm 1 must preserve the attacked weight distribution better
	// than weighted entropy (the point of Fig 3).
	if res.TV["target-correlated"] >= res.TV["weighted-entropy"] {
		t.Fatalf("TCQ TV %v not below WEQ %v", res.TV["target-correlated"], res.TV["weighted-entropy"])
	}
}

func TestFig4ReusesCachedRuns(t *testing.T) {
	e := quickEnv(t)
	Table1(e)
	Table3(e)
	runsBefore := len(e.cache)
	res := Fig4(e)
	if len(res.Rows) != 3 {
		t.Fatalf("Fig 4 has %d rows", len(res.Rows))
	}
	if len(e.cache) != runsBefore {
		t.Fatalf("Fig 4 retrained models: cache grew %d -> %d", runsBefore, len(e.cache))
	}
}

func TestAblationsStructure(t *testing.T) {
	e := quickEnv(t)
	for _, res := range []AblationResult{
		AblationPreprocess(e),
		AblationLayerwise(e),
		AblationQuantizer(e),
		AblationFinetune(e),
	} {
		if len(res.Variants) < 2 {
			t.Fatalf("ablation %q has %d variants", res.Name, len(res.Variants))
		}
		for _, v := range res.Variants {
			if v.Total == 0 {
				t.Fatalf("ablation %q variant %q scored nothing", res.Name, v.Label)
			}
		}
	}
}

func TestAblationPruningStructure(t *testing.T) {
	e := quickEnv(t)
	res := AblationPruning(e)
	if len(res.Rows) != 5 {
		t.Fatalf("pruning ablation has %d rows", len(res.Rows))
	}
	if res.Rows[0].Sparsity != 0 {
		t.Fatal("first row must be the unpruned reference")
	}
	// Payload quality must not improve under 90% pruning (tolerance for
	// quick-mode noise, where the payload is barely trained).
	if res.Rows[4].MAPE < res.Rows[0].MAPE-6 {
		t.Fatalf("90%% pruning improved payload: %v vs %v", res.Rows[4].MAPE, res.Rows[0].MAPE)
	}
	// And weights must have been restored afterwards: decoding again off
	// the cached model must match the sparsity-0 row.
	groups := e.cache["proposed-gray-l10-none"].Model.GroupsByConvIndex(groupBounds)
	zeros := 0
	for _, p := range groups[2].Params {
		for _, v := range p.Value.Data() {
			if v == 0 {
				zeros++
			}
		}
	}
	if zeros > groups[2].NumEl/100 {
		t.Fatalf("cached model left pruned: %d zeros", zeros)
	}
}

func TestRenderedOutputMentionsExperiments(t *testing.T) {
	e := quickEnv(t)
	var buf bytes.Buffer
	e.Out = &buf
	Table1(e)
	if !strings.Contains(buf.String(), "Table I") {
		t.Fatal("rendered output missing table title")
	}
}

func TestEnvDatasetsMemoized(t *testing.T) {
	e := NewEnv(1, true, nil)
	if e.CIFARGray() != e.CIFARGray() {
		t.Fatal("datasets not memoized")
	}
	if e.CIFARGray() == e.CIFARRGB() {
		t.Fatal("gray and RGB datasets must differ")
	}
}
