package experiments

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/quantize"
	"repro/internal/report"
)

// PruningRow is one sparsity level of the pruning extension experiment.
type PruningRow struct {
	Sparsity     float64
	Accuracy     float64
	MAPE         float64
	Recognizable int
	Total        int
}

// PruningResult is the extension experiment the paper's Sec. II-A implies
// but does not run: magnitude pruning as a defense against the (window +
// layer-wise) correlation attack. Pruning zeroes small weights — and the
// encoded payload lives at pixel-proportional magnitudes, so moderate
// sparsity leaves most of the payload intact while aggressive sparsity
// starts to erase dark-pixel weights.
type PruningResult struct {
	Rows []PruningRow
}

// AblationPruning prunes the trained attack model at increasing sparsity
// and measures payload survival and accuracy. The cached model's weights
// are snapshotted and restored so other experiments are unaffected.
func AblationPruning(e *Env) PruningResult {
	d := e.CIFARGray()
	model := e.cifarModel(1)
	r := e.run("proposed-gray-l10-none", e.proposedCfg(d, model, 10, core.QuantNone, 4))

	// Snapshot weights for restoration.
	params := r.Model.WeightParams()
	snapshot := make([][]float64, len(params))
	for i, p := range params {
		snapshot[i] = append([]float64(nil), p.Value.Data()...)
	}
	restore := func() {
		for i, p := range params {
			copy(p.Value.Data(), snapshot[i])
		}
	}

	_, testSet := d.Split(0.2)
	tx, ty := testSet.Tensors()
	groups := r.Model.GroupsByConvIndex(groupBounds)
	opt := attack.DecodeOptions{TargetMean: 128,
		TargetStd: (r.Plan.Window.Lo + r.Plan.Window.Hi) / 2}

	var res PruningResult
	for _, sparsity := range []float64{0, 0.3, 0.5, 0.7, 0.9} {
		restore()
		if sparsity > 0 {
			quantize.PruneMagnitude(params, sparsity)
		}
		score, _ := attack.BestPolarityDecode(r.Plan.Groups[2], groups[2], r.Plan.ImageGeom, opt)
		res.Rows = append(res.Rows, PruningRow{
			Sparsity:     sparsity,
			Accuracy:     r.Model.Accuracy(tx, ty, 64),
			MAPE:         score.MeanMAPE,
			Recognizable: score.Recognizable,
			Total:        score.N,
		})
	}
	restore()

	t := report.NewTable("Extension: magnitude pruning vs the encoded payload (lambda=10, no quantization)",
		"sparsity", "accuracy", "MAPE", "recognizable")
	for _, row := range res.Rows {
		t.AddRow(fmt.Sprintf("%.0f%%", 100*row.Sparsity), report.Percent(row.Accuracy),
			row.MAPE, fmt.Sprintf("%d/%d", row.Recognizable, row.Total))
	}
	t.Render(e.out())
	return res
}
