package experiments

import (
	"fmt"
	"path/filepath"
	"sort"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/quantize"
	"repro/internal/report"
	"repro/internal/stats"
)

// Fig2Result reproduces Fig 2: (a) weight distributions of benign vs
// attacked models across correlation rates; (b) pixel distributions of
// images in different std bands.
type Fig2Result struct {
	// WeightHists maps run label → weight histogram (normalized, over the
	// symmetric range [-Range, Range]).
	WeightHists map[string]stats.Histogram
	Range       float64
	// PixelHists maps std-band label → pixel histogram over [0, 255].
	PixelHists map[string]stats.Histogram
	// TV maps run label → total-variation distance between the model's
	// normalized weight shape and the [50,55]-band pixel shape; the
	// attacked models should be much closer than the benign one.
	TV map[string]float64
}

// Fig2 trains a benign model and two uniform attack models (λ = 1, 10) and
// compares weight distributions against the pixel distributions of std
// bands, reproducing the paper's observation that the attack reshapes the
// weights toward the target pixel distribution.
func Fig2(e *Env) Fig2Result {
	d := e.CIFARGray()
	model := e.cifarModel(1)
	res := Fig2Result{
		WeightHists: map[string]stats.Histogram{},
		PixelHists:  map[string]stats.Histogram{},
		TV:          map[string]float64{},
		Range:       3,
	}

	runs := []struct {
		label  string
		lambda float64
	}{
		{"benign", 0}, {"lambda=1", 1}, {"lambda=10", 10},
	}
	const bins = 64
	// Reference pixel shape: the paper's [50, 55] band.
	bandPix := map[string][]float64{}
	for _, band := range [][2]float64{{30, 35}, {50, 55}, {70, 75}} {
		label := fmt.Sprintf("std[%g,%g]", band[0], band[1])
		var pix []float64
		for _, i := range d.IndicesWithStdIn(band[0], band[1]) {
			pix = append(pix, d.Images[i].Pix...)
		}
		bandPix[label] = pix
		res.PixelHists[label] = stats.NewHistogram(pix, bins, 0, 256)
	}
	refPix := bandPix["std[50,55]"]
	refHist := stats.NewHistogram(refPix, bins, 0, 256)

	for _, rr := range runs {
		var r *core.Result
		if rr.lambda == 0 {
			r = e.run("benign-gray", e.baseCfg(d, model))
		} else {
			r = e.run(fmt.Sprintf("vanilla-gray-l%g-none", rr.lambda),
				e.vanillaCfg(d, model, rr.lambda, core.QuantNone, 4))
		}
		all := r.Model.GroupsByConvIndex(nil)[0]
		w := all.FlattenValues()
		// Standardize weights so shapes are comparable across runs, then
		// histogram over ±Range standard deviations.
		sum := stats.Summarize(w)
		norm := make([]float64, len(w))
		for i, v := range w {
			norm[i] = (v - sum.Mean) / (sum.Std + 1e-12)
		}
		res.WeightHists[rr.label] = stats.NewHistogram(norm, bins, -res.Range, res.Range)

		// Compare the weight shape with the pixel shape: remap weights to
		// [0,255] and take total variation against the reference band.
		pixView := attack.GroupWeightsAsPixels(all, 0)
		ph := stats.NewHistogram(pixView, bins, 0, 256)
		res.TV[rr.label] = stats.TotalVariation(ph.Freq, refHist.Freq)
	}

	w := e.out()
	fmt.Fprintln(w, "Fig 2a: standardized weight distributions (64 bins over ±3 sigma)")
	for _, rr := range runs {
		h := res.WeightHists[rr.label]
		report.Histogram(w, rr.label, h.Freq, h.Lo, h.Hi, 6)
	}
	fmt.Fprintln(w, "Fig 2b: pixel distributions by std band (64 bins over [0,255])")
	bandLabels := make([]string, 0, len(res.PixelHists))
	for label := range res.PixelHists {
		bandLabels = append(bandLabels, label)
	}
	sort.Strings(bandLabels)
	for _, label := range bandLabels {
		h := res.PixelHists[label]
		report.Histogram(w, label, h.Freq, h.Lo, h.Hi, 6)
	}
	labels := make([]string, 0, len(runs))
	tvs := make([]float64, 0, len(runs))
	for _, rr := range runs {
		labels = append(labels, rr.label)
		tvs = append(tvs, res.TV[rr.label])
	}
	report.BarChart(w, "TV distance: weight shape vs std[50,55] pixel shape (lower = more image-like)", labels, tvs, 40)
	return res
}

// Fig3Result reproduces Fig 3: the weight distribution of a quantized
// attack model under weighted-entropy vs target-correlated quantization at
// 32 levels.
type Fig3Result struct {
	// Hists maps quantizer label → histogram of the encoding group's
	// quantized weights.
	Hists map[string]stats.Histogram
	// TV maps quantizer label → total-variation distance from the
	// unquantized attacked weight histogram (lower = better preserved).
	TV map[string]float64
}

// Fig3 trains the proposed attack model (λ3 = 10), then quantizes its
// encoding group to 32 levels (5 bits) with both quantizers and compares
// the resulting weight distributions to the unquantized one.
func Fig3(e *Env) Fig3Result {
	d := e.CIFARGray()
	model := e.cifarModel(1)
	r := e.run("proposed-gray-l10-none", e.proposedCfg(d, model, 10, core.QuantNone, 4))

	groups := r.Model.GroupsByConvIndex(groupBounds)
	g3 := groups[2]
	orig := g3.FlattenValues()
	const bins = 64
	sum := stats.Summarize(orig)
	lo, hi := sum.Mean-3*sum.Std, sum.Mean+3*sum.Std
	origHist := stats.NewHistogram(orig, bins, lo, hi)

	targets := r.Plan.Groups[2].Images
	res := Fig3Result{Hists: map[string]stats.Histogram{}, TV: map[string]float64{}}
	for _, q := range []struct {
		label string
		quant quantize.Quantizer
	}{
		{"weighted-entropy", quantize.WeightedEntropy{}},
		{"target-correlated", quantize.TargetCorrelated{Targets: targets}},
	} {
		cb := q.quant.Fit(orig, 32)
		qw := make([]float64, len(orig))
		for i, v := range orig {
			qw[i] = cb.Quantize(v)
		}
		h := stats.NewHistogram(qw, bins, lo, hi)
		res.Hists[q.label] = h
		res.TV[q.label] = stats.TotalVariation(h.Freq, origHist.Freq)
	}

	w := e.out()
	fmt.Fprintln(w, "Fig 3: encoding-group weight distributions after 32-level quantization")
	report.Histogram(w, "unquantized attack model", origHist.Freq, lo, hi, 6)
	report.Histogram(w, "(a) weighted-entropy quantization", res.Hists["weighted-entropy"].Freq, lo, hi, 6)
	report.Histogram(w, "(b) target-correlated quantization", res.Hists["target-correlated"].Freq, lo, hi, 6)
	report.BarChart(w, "TV distance from unquantized distribution (lower = shape preserved)",
		[]string{"weighted-entropy", "target-correlated"},
		[]float64{res.TV["weighted-entropy"], res.TV["target-correlated"]}, 40)
	return res
}

// Fig4Row holds one correlation rate's three-way comparison.
type Fig4Row struct {
	Lambda float64
	// Cor is the uncompressed vanilla attack; CorWQ adds default 4-bit
	// weighted-entropy quantization; Comb is the proposed 4-bit flow.
	Cor, CorWQ, Comb Fig4Point
}

// Fig4Point is one bar group of Fig 4.
type Fig4Point struct {
	MAPE       float64
	Accuracy   float64
	Recognized int
	Total      int
}

// Fig4Result reproduces Fig 4.
type Fig4Result struct {
	Rows []Fig4Row
}

// Fig4 compares, for λ ∈ {3, 5, 10} on RGB data: the uncompressed vanilla
// attack (Cor), the vanilla attack with default 4-bit weighted-entropy
// quantization (Cor+WQ) and the proposed integrated 4-bit flow (Comb). All
// runs are shared with Tables I and III through the Env cache.
func Fig4(e *Env) Fig4Result {
	d := e.CIFARRGB()
	model := e.cifarModel(3)
	var res Fig4Result
	for _, lambda := range []float64{3, 5, 10} {
		cor := e.run(fmt.Sprintf("vanilla-rgb-l%g-none", lambda),
			e.vanillaCfg(d, model, lambda, core.QuantNone, 4))
		corWQ := e.run(fmt.Sprintf("vanilla-rgb-l%g-weq%d", lambda, 4),
			e.vanillaCfg(d, model, lambda, core.QuantWEQ, 4))
		comb := e.run(fmt.Sprintf("proposed-rgb-l%g-tcq%d", lambda, 4),
			e.proposedCfg(d, model, lambda, core.QuantTargetCorrelated, 4))
		res.Rows = append(res.Rows, Fig4Row{
			Lambda: lambda,
			Cor:    fig4Point(cor),
			CorWQ:  fig4Point(corWQ),
			Comb:   fig4Point(comb),
		})
	}
	w := e.out()
	fmt.Fprintln(w, "Fig 4: Cor vs Cor+WQ vs Comb (RGB, 4-bit)")
	t := report.NewTable("", "lambda", "variant", "MAPE", "accuracy", "recognized")
	for _, row := range res.Rows {
		for _, v := range []struct {
			name string
			p    Fig4Point
		}{{"Cor", row.Cor}, {"Cor+WQ", row.CorWQ}, {"Comb", row.Comb}} {
			t.AddRow(row.Lambda, v.name, v.p.MAPE, report.Percent(v.p.Accuracy),
				fmt.Sprintf("%d/%d", v.p.Recognized, v.p.Total))
		}
	}
	t.Render(w)
	for _, row := range res.Rows {
		report.BarChart(w, fmt.Sprintf("lambda=%g accuracy", row.Lambda),
			[]string{"Cor", "Cor+WQ", "Comb"},
			[]float64{row.Cor.Accuracy, row.CorWQ.Accuracy, row.Comb.Accuracy}, 40)
		report.BarChart(w, fmt.Sprintf("lambda=%g recognized images", row.Lambda),
			[]string{"Cor", "Cor+WQ", "Comb"},
			[]float64{float64(row.Cor.Recognized), float64(row.CorWQ.Recognized), float64(row.Comb.Recognized)}, 40)
	}
	return res
}

func fig4Point(r *core.Result) Fig4Point {
	return Fig4Point{
		MAPE:       r.Score.MeanMAPE,
		Accuracy:   r.TestAcc,
		Recognized: r.Score.Recognizable,
		Total:      r.Score.N,
	}
}

// Fig5Result reproduces Fig 5: reconstructed face strips from the proposed
// vs the original quantization at 3 bits.
type Fig5Result struct {
	// Proposed and Original hold the first few reconstructed faces from
	// each quantizer; Originals holds the matching source faces.
	Proposed, Original, Originals []*img.Image
	// SavedFiles lists PGM artifacts written to Env.OutDir (if set).
	SavedFiles []string
}

// Fig5 renders face strips from the Table IV runs: top row our method,
// bottom row the original weighted-entropy quantization (plus the ground
// truth for reference). ASCII strips go to Out; PGM files go to OutDir.
func Fig5(e *Env) Fig5Result {
	Table4(e) // ensure the runs exist in cache
	prop := e.cache["face-l10-tcq3"]
	orig := e.cache["face-l10-weq3"]

	const strip = 6
	res := Fig5Result{}
	res.Originals = firstN(prop.Plan.AllImages(), strip)
	res.Proposed = firstN(prop.Recon, strip)
	res.Original = firstN(orig.Recon, strip)

	w := e.out()
	fmt.Fprintln(w, "Fig 5: reconstructed faces (3-bit quantized models)")
	fmt.Fprintln(w, "ground truth:")
	fmt.Fprintln(w, img.SideBySideASCII(res.Originals, 2))
	fmt.Fprintln(w, "top row - proposed target-correlated quantization:")
	fmt.Fprintln(w, img.SideBySideASCII(res.Proposed, 2))
	fmt.Fprintln(w, "bottom row - original weighted-entropy quantization:")
	fmt.Fprintln(w, img.SideBySideASCII(res.Original, 2))

	if e.OutDir != "" {
		sets := []struct {
			name   string
			images []*img.Image
		}{
			{"fig5_truth", res.Originals},
			{"fig5_proposed", res.Proposed},
			{"fig5_original", res.Original},
		}
		for _, s := range sets {
			for i, im := range s.images {
				path := filepath.Join(e.OutDir, fmt.Sprintf("%s_%02d.pgm", s.name, i))
				if err := im.Clone().Clamp().SavePNM(path); err == nil {
					res.SavedFiles = append(res.SavedFiles, path)
				}
			}
		}
		if len(res.SavedFiles) > 0 {
			fmt.Fprintf(w, "saved %d PGM files to %s\n\n", len(res.SavedFiles), e.OutDir)
		}
	}
	return res
}

func firstN(images []*img.Image, n int) []*img.Image {
	if len(images) < n {
		n = len(images)
	}
	return images[:n]
}
