package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

// Table1Cell is one column of Table I.
type Table1Cell struct {
	Lambda       float64
	Bits         int
	Recognizable int
	Total        int
	Accuracy     float64
}

// Table1Result reproduces Table I: the vanilla correlated-value-encoding
// attack (Eq 1, RGB payload) after weighted-entropy quantization at
// decreasing bit widths and increasing correlation rates.
type Table1Result struct {
	Cells []Table1Cell
}

// Table1 runs the paper's Table I grid — λ=3 at 8/6/4 bits, λ=5 and λ=10
// at 4 bits — plus the λ=5 bit sweep (this substrate's λ=3 sits below the
// RGB encode-quality threshold, so the bits trend is carried by λ=5). All
// runs use default weighted-entropy quantization and benign fine-tuning
// (the data holder's stock pipeline).
func Table1(e *Env) Table1Result {
	grid := []struct {
		lambda float64
		bits   int
	}{
		{3, 8}, {3, 6}, {3, 4}, {5, 8}, {5, 6}, {5, 4}, {10, 4},
	}
	d := e.CIFARRGB()
	model := e.cifarModel(3)
	var res Table1Result
	for _, g := range grid {
		key := fmt.Sprintf("vanilla-rgb-l%g-weq%d", g.lambda, g.bits)
		r := e.run(key, e.vanillaCfg(d, model, g.lambda, core.QuantWEQ, g.bits))
		res.Cells = append(res.Cells, Table1Cell{
			Lambda:       g.lambda,
			Bits:         g.bits,
			Recognizable: r.Score.Recognizable,
			Total:        r.Score.N,
			Accuracy:     r.TestAcc,
		})
	}
	t := report.NewTable(
		"Table I: vanilla correlation attack after weighted-entropy quantization",
		"lambda", "bits", "recognizable", "total", "accuracy")
	for _, c := range res.Cells {
		t.AddRow(c.Lambda, c.Bits, c.Recognizable, c.Total, report.Percent(c.Accuracy))
	}
	t.Render(e.out())
	return res
}
