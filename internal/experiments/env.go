// Package experiments contains one driver per table and figure of the
// paper's evaluation (Tables I-IV, Figs 2-5) plus the ablations called out
// in DESIGN.md. Each driver builds its workloads, runs the core attack
// flow, and renders the same rows/series the paper reports. Results are
// memoized within an Env so composite experiments (Fig 4 reuses Table I and
// Table III runs) do not retrain models.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/obs"
)

// Env carries the shared experiment context.
type Env struct {
	// Seed drives every dataset and training run.
	Seed int64
	// Quick shrinks datasets and epochs for smoke tests and benchmarks;
	// the full configuration reproduces EXPERIMENTS.md.
	Quick bool
	// Out receives the rendered tables and figures. nil discards.
	Out io.Writer
	// Log receives training progress. nil keeps runs quiet.
	Log io.Writer
	// OutDir, when non-empty, receives image artifacts (Fig 5 PGM strips).
	OutDir string
	// Threads is the worker count for every training/evaluation pass
	// (0 = runtime.GOMAXPROCS, 1 = serial). Results are bit-identical
	// for every value, so experiment outputs never depend on it.
	Threads int
	// Trace, when non-nil, receives phase spans from every core.Run the
	// experiments execute (see core.Config.Trace).
	Trace *obs.Tracer
	// Cache, when non-nil, runs every pipeline through the persistent
	// artifact store (see core.Config.Cache), so sweeps that share a
	// training prefix compute it once and repeat invocations reuse
	// results across processes — the in-memory memoizer only covers one
	// process.
	Cache *artifact.Store
	// Resume, when true and Cache is set, lets interrupted training runs
	// continue from their latest epoch checkpoint.
	Resume bool
	// Dist, when non-nil, trains every run across the session's process
	// group (see core.Config.Dist). Coordinator and workers execute the
	// same experiment sequence; because runs are issued deterministically,
	// the ranks meet at each training run in order.
	Dist *dist.Session
	// Shards is the per-batch gradient shard count (see core.Config.Shards).
	Shards int

	cache map[string]*core.Result
	data  map[string]*dataset.Dataset
}

// NewEnv builds an experiment environment.
func NewEnv(seed int64, quick bool, out io.Writer) *Env {
	return &Env{Seed: seed, Quick: quick, Out: out,
		cache: make(map[string]*core.Result),
		data:  make(map[string]*dataset.Dataset),
	}
}

func (e *Env) out() io.Writer {
	if e.Out == nil {
		return io.Discard
	}
	return e.Out
}

// run memoizes core.Run by key.
func (e *Env) run(key string, cfg core.Config) *core.Result {
	if r, ok := e.cache[key]; ok {
		return r
	}
	if e.Log != nil {
		fmt.Fprintf(e.Log, "== run %s\n", key)
		cfg.Log = e.Log
	}
	cfg.Trace = e.Trace
	cfg.Cache = e.Cache
	cfg.Resume = e.Resume
	cfg.Dist = e.Dist
	cfg.Shards = e.Shards
	r := core.Run(cfg)
	e.cache[key] = r
	return r
}

// epochs returns the training budget.
func (e *Env) epochs() int {
	if e.Quick {
		return 2
	}
	return 25
}

func (e *Env) cifarN() int {
	if e.Quick {
		return 320
	}
	return 1200
}

// CIFARGray returns the grayscale CIFAR-like dataset (memoized).
func (e *Env) CIFARGray() *dataset.Dataset {
	return e.dataset("cifar-gray", func() *dataset.Dataset {
		return dataset.SyntheticCIFAR(e.cifarCfg(false))
	})
}

// CIFARRGB returns the RGB CIFAR-like dataset (memoized).
func (e *Env) CIFARRGB() *dataset.Dataset {
	return e.dataset("cifar-rgb", func() *dataset.Dataset {
		return dataset.SyntheticCIFAR(e.cifarCfg(true))
	})
}

func (e *Env) cifarCfg(rgb bool) dataset.CIFARConfig {
	cfg := core.CIFARRelease().DataConfig(e.cifarN(), e.Seed+100)
	cfg.RGB = rgb
	return cfg
}

// Faces returns the synthetic face dataset (memoized).
func (e *Env) Faces() *dataset.Dataset {
	return e.dataset("faces", func() *dataset.Dataset {
		ids, per := 20, 30
		if e.Quick {
			ids, per = 6, 10
		}
		return dataset.SyntheticFaces(dataset.DefaultFaces(ids, per, e.Seed+200))
	})
}

func (e *Env) dataset(key string, build func() *dataset.Dataset) *dataset.Dataset {
	if d, ok := e.data[key]; ok {
		return d
	}
	d := build()
	e.data[key] = d
	return d
}

// cifarModel returns the MiniResNet config for a CIFAR-like dataset.
func (e *Env) cifarModel(channels int) nn.ResNetConfig {
	cfg := core.CIFARRelease().ArchConfig(e.Seed + 300)
	cfg.InC = channels
	return cfg
}

// faceModel returns the MiniResNet config for the face dataset.
func (e *Env) faceModel(classes int) nn.ResNetConfig {
	return nn.ResNetConfig{
		InC: 1, InH: 24, InW: 24, Classes: classes,
		Widths: []int{6, 12, 24}, Blocks: []int{2, 2, 2},
		Seed: e.Seed + 301,
	}
}

// groupBounds is the conv-index partition mirroring the paper's ResNet-34
// grouping (early feature extractors / middle / payload-carrying tail).
var groupBounds = core.CIFARRelease().GroupBounds

// baseCfg assembles the shared training configuration.
func (e *Env) baseCfg(d *dataset.Dataset, model nn.ResNetConfig) core.Config {
	return core.Config{
		Data: d, ModelCfg: model, TestFrac: 0.2,
		Epochs: e.epochs(), BatchSize: 32,
		LR: 0.05, Momentum: 0.9, ClipNorm: 5,
		Seed: e.Seed, FineTuneEpochs: 3,
		Threads: e.Threads,
	}
}

// vanillaCfg is the uniform Eq 1 attack: one group over all weights, no
// pre-processing.
func (e *Env) vanillaCfg(d *dataset.Dataset, model nn.ResNetConfig, lambda float64, quant core.QuantMode, bits int) core.Config {
	cfg := e.baseCfg(d, model)
	cfg.Lambdas = []float64{lambda}
	cfg.Quant = quant
	cfg.Bits = bits
	return cfg
}

// proposedCfg is the paper's full flow: layer groups with λ1=λ2=0, std
// window pre-processing, and (optionally) target-correlated quantization
// with the regularizer kept on during fine-tuning.
func (e *Env) proposedCfg(d *dataset.Dataset, model nn.ResNetConfig, lambda3 float64, quant core.QuantMode, bits int) core.Config {
	cfg := e.baseCfg(d, model)
	cfg.GroupBounds = groupBounds
	cfg.Lambdas = []float64{0, 0, lambda3}
	cfg.WindowLen = 5
	cfg.Quant = quant
	cfg.Bits = bits
	cfg.KeepRegDuringFineTune = quant == core.QuantTargetCorrelated
	return cfg
}
