package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

// AblationResult compares a design choice on/off at λ = 10, 4 bits, gray.
type AblationResult struct {
	Name     string
	Variants []AblationVariant
}

// AblationVariant is one arm of an ablation.
type AblationVariant struct {
	Label        string
	Accuracy     float64
	MAPE         float64
	Recognizable int
	Total        int
}

func (e *Env) ablationVariant(label, key string, cfg core.Config) AblationVariant {
	r := e.run(key, cfg)
	return AblationVariant{
		Label:        label,
		Accuracy:     r.TestAcc,
		MAPE:         r.Score.MeanMAPE,
		Recognizable: r.Score.Recognizable,
		Total:        r.Score.N,
	}
}

// AblationPreprocess isolates the std-window pre-processing: the proposed
// flow with and without target selection (without = targets drawn
// uniformly from the training set).
func AblationPreprocess(e *Env) AblationResult {
	d := e.CIFARGray()
	model := e.cifarModel(1)
	on := e.proposedCfg(d, model, 10, core.QuantTargetCorrelated, 4)
	off := on
	off.WindowLen = 0 // uniform target draw
	res := AblationResult{Name: "std-window pre-processing", Variants: []AblationVariant{
		e.ablationVariant("window [mean, mean+5]", "proposed-gray-l10-tcq4", on),
		e.ablationVariant("no pre-processing", "ablate-nopre-gray-l10-tcq4", off),
	}}
	renderAblation(e, res)
	return res
}

// AblationLayerwise isolates the layer-wise rates: λ1=λ2=0, λ3=10 vs a
// uniform λ=10 over all layers, both with the std window and Algorithm 1.
func AblationLayerwise(e *Env) AblationResult {
	d := e.CIFARGray()
	model := e.cifarModel(1)
	layer := e.proposedCfg(d, model, 10, core.QuantTargetCorrelated, 4)
	uniform := layer
	uniform.GroupBounds = groupBounds
	uniform.Lambdas = []float64{10, 10, 10}
	res := AblationResult{Name: "layer-wise correlation rates", Variants: []AblationVariant{
		e.ablationVariant("lambda = (0, 0, 10)", "proposed-gray-l10-tcq4", layer),
		e.ablationVariant("uniform lambda = 10", "ablate-uniformlam-gray-l10-tcq4", uniform),
	}}
	renderAblation(e, res)
	return res
}

// AblationQuantizer holds the compression step fixed at 4 bits and swaps
// the quantizer under the otherwise-identical proposed flow.
func AblationQuantizer(e *Env) AblationResult {
	d := e.CIFARGray()
	model := e.cifarModel(1)
	res := AblationResult{Name: "quantizer at 4 bits"}
	for _, v := range []struct {
		label string
		key   string
		mode  core.QuantMode
	}{
		{"target-correlated (Alg 1)", "proposed-gray-l10-tcq4", core.QuantTargetCorrelated},
		{"weighted-entropy", "ablate-weq-gray-l10-weq4", core.QuantWEQ},
		{"linear (deep compression)", "ablate-lin-gray-l10-lin4", core.QuantLinear},
	} {
		cfg := e.proposedCfg(d, model, 10, v.mode, 4)
		res.Variants = append(res.Variants, e.ablationVariant(v.label, v.key, cfg))
	}
	renderAblation(e, res)
	return res
}

// AblationFinetune isolates post-quantization fine-tuning: the proposed
// 4-bit flow with regularized fine-tuning, benign fine-tuning, and none.
func AblationFinetune(e *Env) AblationResult {
	d := e.CIFARGray()
	model := e.cifarModel(1)
	withReg := e.proposedCfg(d, model, 10, core.QuantTargetCorrelated, 4)
	benign := withReg
	benign.KeepRegDuringFineTune = false
	none := withReg
	none.FineTuneEpochs = 0
	res := AblationResult{Name: "post-quantization fine-tuning", Variants: []AblationVariant{
		e.ablationVariant("fine-tune with regularizer", "proposed-gray-l10-tcq4", withReg),
		e.ablationVariant("benign fine-tune", "ablate-ftbenign-gray-l10-tcq4", benign),
		e.ablationVariant("no fine-tune", "ablate-ftnone-gray-l10-tcq4", none),
	}}
	renderAblation(e, res)
	return res
}

func renderAblation(e *Env, res AblationResult) {
	t := report.NewTable(fmt.Sprintf("Ablation: %s", res.Name),
		"variant", "accuracy", "MAPE", "recognizable")
	for _, v := range res.Variants {
		t.AddRow(v.Label, report.Percent(v.Accuracy), v.MAPE,
			fmt.Sprintf("%d/%d", v.Recognizable, v.Total))
	}
	t.Render(e.out())
}
