package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/report"
)

// Table2Row is one row of Table II: per-group bad-image counts for one
// correlation rate.
type Table2Row struct {
	Lambda   float64
	Total    int   // total encoded images
	TotalBad int   // images with MAPE > 20
	GroupN   []int // images that landed in each layer group
	GroupBad []int // bad images per group
}

// Table2Result reproduces Table II: how badly encoded images distribute
// across layer groups under the *uniform* attack, motivating the
// layer-wise rates.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 trains the vanilla uniform attack (uncompressed) at λ = 3, 5, 10
// on grayscale data and buckets each encoded image into the layer group
// containing its starting weight offset, then counts MAPE > 20 per group.
func Table2(e *Env) Table2Result {
	d := e.CIFARGray()
	model := e.cifarModel(1)
	u := d.C * d.H * d.W

	var res Table2Result
	for _, lambda := range []float64{3, 5, 10} {
		key := fmt.Sprintf("vanilla-gray-l%g-none", lambda)
		r := e.run(key, e.vanillaCfg(d, model, lambda, core.QuantNone, 4))

		// Group boundaries in the flattened all-weights stream: the
		// vanilla plan encodes one contiguous payload across the model's
		// weight parameters in forward order, exactly the order
		// GroupsByConvIndex flattens.
		bounded := r.Model.GroupsByConvIndex(groupBounds)
		cum := make([]int, len(bounded))
		total := 0
		for i, g := range bounded {
			total += g.NumEl
			cum[i] = total
		}
		row := Table2Row{
			Lambda:   lambda,
			GroupN:   make([]int, len(bounded)),
			GroupBad: make([]int, len(bounded)),
		}
		for k, mape := range r.Score.MAPEs {
			off := k * u
			gi := len(cum) - 1
			for i, c := range cum {
				if off < c {
					gi = i
					break
				}
			}
			row.GroupN[gi]++
			row.Total++
			if mape > img.BadThreshold {
				row.GroupBad[gi]++
				row.TotalBad++
			}
		}
		res.Rows = append(res.Rows, row)
	}

	t := report.NewTable(
		"Table II: badly encoded images (MAPE > 20) by layer group, uniform attack",
		"lambda", "total", "group1", "group2", "group3")
	for _, row := range res.Rows {
		cells := []any{row.Lambda, fmt.Sprintf("%d/%d (%.1f%%)", row.TotalBad, row.Total, pct(row.TotalBad, row.Total))}
		for i := range row.GroupN {
			cells = append(cells, fmt.Sprintf("%d/%d (%.1f%%)", row.GroupBad[i], row.GroupN[i], pct(row.GroupBad[i], row.GroupN[i])))
		}
		t.AddRow(cells...)
	}
	t.Render(e.out())
	return res
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
