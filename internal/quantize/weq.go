package quantize

import (
	"math"
	"sort"
)

// WeightedEntropy is the weighted-entropy-based quantizer of Park et al.
// (CVPR 2017), the paper's representative existing compression. Each
// weight's importance is modeled as w² (large-magnitude weights contribute
// more to the output), and cluster boundaries are placed over the sorted
// weights so every cluster carries (approximately) equal total importance —
// the equal-importance-mass partition that maximizes the weighted entropy
// −Σ P_i log P_i with P_i the normalized cluster importance. Cluster
// representatives are the importance-weighted means, so clusters of many
// small weights get fine centroids near zero while clusters in the tails
// sit on the heavy weights. The net effect the paper relies on: the
// quantized weight distribution is reshaped toward importance mass and away
// from any pixel-correlated shape (Fig 3a).
type WeightedEntropy struct{}

// Name implements Quantizer.
func (WeightedEntropy) Name() string { return "weighted-entropy" }

// Fit implements Quantizer.
func (WeightedEntropy) Fit(weights []float64, levels int) Codebook {
	if levels < 1 {
		panic("quantize: need at least one level")
	}
	if len(weights) == 0 {
		panic("quantize: empty weight sample")
	}
	sorted := append([]float64(nil), weights...)
	sort.Float64s(sorted)

	// Cumulative importance over the sorted weights.
	total := 0.0
	for _, w := range sorted {
		total += importance(w)
	}
	if total == 0 {
		// All-zero weights: single degenerate cluster at 0.
		return codebookFromCentroids(uniformLevels(levels), 0)
	}

	// Walk the sorted weights, cutting a cluster whenever the running
	// importance reaches the next 1/levels share of the total.
	perCluster := total / float64(levels)
	bounds := make([]int, 0, levels+1)
	bounds = append(bounds, 0)
	acc := 0.0
	next := perCluster
	for i, w := range sorted {
		acc += importance(w)
		if acc >= next && len(bounds) < levels {
			bounds = append(bounds, i+1)
			next += perCluster
		}
	}
	bounds = append(bounds, len(sorted))

	centroids := make([]float64, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if lo == hi {
			continue
		}
		var num, den float64
		for _, w := range sorted[lo:hi] {
			imp := importance(w)
			num += imp * w
			den += imp
		}
		var c float64
		if den > 0 {
			c = num / den
		} else {
			// Importance-free cluster (all zeros): plain mean.
			for _, w := range sorted[lo:hi] {
				c += w
			}
			c /= float64(hi - lo)
		}
		centroids = append(centroids, c)
	}
	sort.Float64s(centroids)
	return codebookFromCentroids(centroids, sorted[0])
}

// importance is Park et al.'s weight-importance model.
func importance(w float64) float64 { return w * w }

func uniformLevels(levels int) []float64 {
	out := make([]float64, levels)
	for i := range out {
		out[i] = float64(i) * 1e-12
	}
	return out
}

// WeightedEntropyOf computes −Σ P_i log P_i of a codebook's clusters over a
// weight sample, where P_i is the cluster's normalized importance mass.
// Exposed for tests and ablations: the WEQ partition should score at least
// as high as a linear partition on heavy-tailed weights.
func WeightedEntropyOf(cb Codebook, weights []float64) float64 {
	mass := make([]float64, cb.NumLevels())
	total := 0.0
	for _, w := range weights {
		imp := importance(w)
		mass[cb.Index(w)] += imp
		total += imp
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, m := range mass {
		if m == 0 {
			continue
		}
		p := m / total
		h -= p * math.Log2(p)
	}
	return h
}
