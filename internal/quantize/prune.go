package quantize

import (
	"math"
	"sort"

	"repro/internal/nn"
)

// Magnitude pruning is the other hardware-oriented compression the paper
// names (Sec. II-A): connections with the smallest absolute weights are
// removed. It is implemented here both for completeness of the compression
// substrate and as an extension experiment — how much of the encoded
// payload survives pruning (see BenchmarkAblationPruning).

// PruneMask records which elements of each parameter were zeroed.
type PruneMask struct {
	// Params are the pruned parameters.
	Params []*nn.Param
	// Kept holds, parallel to Params, a keep-flag per element.
	Kept [][]bool
	// Sparsity is the achieved fraction of zeroed weights.
	Sparsity float64
}

// PruneMagnitude zeroes the fraction `sparsity` of the smallest-magnitude
// weights across params (global threshold, the deep-compression strategy)
// and returns the mask.
func PruneMagnitude(params []*nn.Param, sparsity float64) *PruneMask {
	if sparsity < 0 || sparsity >= 1 {
		panic("quantize: sparsity must be in [0, 1)")
	}
	var all []float64
	for _, p := range params {
		for _, v := range p.Value.Data() {
			all = append(all, math.Abs(v))
		}
	}
	sort.Float64s(all)
	cut := 0.0
	if k := int(sparsity * float64(len(all))); k > 0 {
		cut = all[k-1]
	}
	mask := &PruneMask{}
	zeroed := 0
	total := 0
	for _, p := range params {
		vd := p.Value.Data()
		kept := make([]bool, len(vd))
		for i, v := range vd {
			if math.Abs(v) <= cut && zeroed < int(sparsity*float64(len(all))) {
				vd[i] = 0
				zeroed++
			} else {
				kept[i] = true
			}
		}
		total += len(vd)
		mask.Params = append(mask.Params, p)
		mask.Kept = append(mask.Kept, kept)
	}
	if total > 0 {
		mask.Sparsity = float64(zeroed) / float64(total)
	}
	return mask
}

// Reapply zeroes the masked elements again (used after fine-tuning steps so
// pruned connections stay dead).
func (m *PruneMask) Reapply() {
	for pi, p := range m.Params {
		vd := p.Value.Data()
		for i, keep := range m.Kept[pi] {
			if !keep {
				vd[i] = 0
			}
		}
	}
}

// MaskGrads zeroes the gradients of pruned elements, freezing them during
// fine-tuning.
func (m *PruneMask) MaskGrads() {
	for pi, p := range m.Params {
		gd := p.Grad.Data()
		for i, keep := range m.Kept[pi] {
			if !keep {
				gd[i] = 0
			}
		}
	}
}

// NonZeroFraction reports the fraction of surviving weights.
func (m *PruneMask) NonZeroFraction() float64 { return 1 - m.Sparsity }
