package quantize

import (
	"container/heap"
	"fmt"
	"sort"
)

// Huffman coding of cluster indices is the third stage of the deep
// compression pipeline (Han et al.): after quantization, cluster indices
// are entropy-coded so frequent clusters cost fewer bits. The paper's
// storage numbers assume this deployment format; HuffmanSize reports what
// a released model actually occupies.

// HuffmanCode maps each symbol to its code length and bit pattern.
type HuffmanCode struct {
	// Lengths[i] is symbol i's code length in bits (0 = unused symbol).
	Lengths []int
	// Codes[i] is symbol i's canonical code, right-aligned.
	Codes []uint64
}

type huffNode struct {
	count       int
	symbol      int
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return h[i].symbol < h[j].symbol // deterministic tie-break
}
func (h huffHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x any)     { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() any       { old := *h; n := old[len(old)-1]; *h = old[:len(old)-1]; return n }
func (h huffHeap) Peek() *huffNode { return h[0] }

// BuildHuffman constructs a canonical Huffman code for the given symbol
// counts. Symbols with zero count get no code. A single-symbol alphabet
// gets a 1-bit code.
func BuildHuffman(counts []int) HuffmanCode {
	hc := HuffmanCode{
		Lengths: make([]int, len(counts)),
		Codes:   make([]uint64, len(counts)),
	}
	var h huffHeap
	for s, c := range counts {
		if c > 0 {
			h = append(h, &huffNode{count: c, symbol: s})
		}
	}
	switch len(h) {
	case 0:
		return hc
	case 1:
		hc.Lengths[h[0].symbol] = 1
		hc.Codes[h[0].symbol] = 0
		return hc
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*huffNode)
		b := heap.Pop(&h).(*huffNode)
		heap.Push(&h, &huffNode{count: a.count + b.count, symbol: -1, left: a, right: b})
	}
	root := h.Peek()
	assignLengths(root, 0, hc.Lengths)
	assignCanonicalCodes(&hc)
	return hc
}

func assignLengths(n *huffNode, depth int, lengths []int) {
	if n.left == nil && n.right == nil {
		lengths[n.symbol] = depth
		return
	}
	assignLengths(n.left, depth+1, lengths)
	assignLengths(n.right, depth+1, lengths)
}

// assignCanonicalCodes derives canonical codes from lengths (shortest
// first, ties by symbol), making the code self-describing from lengths
// alone.
func assignCanonicalCodes(hc *HuffmanCode) {
	type sym struct{ s, l int }
	var syms []sym
	for s, l := range hc.Lengths {
		if l > 0 {
			syms = append(syms, sym{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].s < syms[j].s
	})
	code := uint64(0)
	prevLen := 0
	for _, v := range syms {
		code <<= uint(v.l - prevLen)
		hc.Codes[v.s] = code
		code++
		prevLen = v.l
	}
}

// EncodedBits returns the total payload size of symbols under the code.
func (hc HuffmanCode) EncodedBits(symbols []int) int {
	bits := 0
	for _, s := range symbols {
		bits += hc.Lengths[s]
	}
	return bits
}

// Encode packs symbols into a bitstream (MSB-first per code).
func (hc HuffmanCode) Encode(symbols []int) []byte {
	var out []byte
	var acc uint64
	nbits := 0
	for _, s := range symbols {
		l := hc.Lengths[s]
		if l == 0 {
			panic(fmt.Sprintf("quantize: symbol %d has no Huffman code", s))
		}
		acc = acc<<uint(l) | hc.Codes[s]
		nbits += l
		for nbits >= 8 {
			out = append(out, byte(acc>>uint(nbits-8)))
			nbits -= 8
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc<<uint(8-nbits)))
	}
	return out
}

// Decode unpacks n symbols from a bitstream produced by Encode.
func (hc HuffmanCode) Decode(data []byte, n int) ([]int, error) {
	// Build a (length, code) → symbol lookup.
	type key struct {
		l    int
		code uint64
	}
	lut := map[key]int{}
	maxLen := 0
	for s, l := range hc.Lengths {
		if l > 0 {
			lut[key{l, hc.Codes[s]}] = s
			if l > maxLen {
				maxLen = l
			}
		}
	}
	out := make([]int, 0, n)
	var acc uint64
	accBits := 0
	bitPos := 0
	for len(out) < n {
		byteIdx := bitPos / 8
		if byteIdx >= len(data) {
			return nil, fmt.Errorf("quantize: Huffman stream truncated at bit %d", bitPos)
		}
		bit := (data[byteIdx] >> uint(7-bitPos%8)) & 1
		acc = acc<<1 | uint64(bit)
		accBits++
		bitPos++
		if accBits > maxLen {
			return nil, fmt.Errorf("quantize: invalid Huffman stream at bit %d", bitPos)
		}
		if s, ok := lut[key{accBits, acc}]; ok {
			out = append(out, s)
			acc = 0
			accBits = 0
		}
	}
	return out, nil
}

// HuffmanSize reports the entropy-coded index size of a quantized model in
// bits, per unit and total, plus the flat (fixed-width) size for
// comparison.
func HuffmanSize(a *Applied) (huffmanBits, flatBits int) {
	for _, u := range a.Units {
		counts := make([]int, u.Book.NumLevels())
		var symbols []int
		for _, assign := range u.Assign {
			for _, k := range assign {
				counts[k]++
				symbols = append(symbols, k)
			}
		}
		hc := BuildHuffman(counts)
		huffmanBits += hc.EncodedBits(symbols)
		flatBits += u.Book.Bits() * len(symbols)
	}
	return huffmanBits, flatBits
}
