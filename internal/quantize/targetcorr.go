package quantize

import (
	"math"
	"sort"

	"repro/internal/img"
	"repro/internal/obs"
)

// TargetCorrelated is the paper's Algorithm 1: image-based weight
// quantization. The histogram of the correlation target's pixel values
// (l buckets over [0,255]) decides how many of the sorted weights fall into
// each cluster, so the quantized weight distribution mirrors the target
// pixel distribution and the weight↔pixel correlation built by the
// regularizer survives quantization (Fig 3b).
type TargetCorrelated struct {
	// Targets is the correlation target image set T.
	Targets []*img.Image
}

// Name implements Quantizer.
func (TargetCorrelated) Name() string { return "target-correlated" }

// Fit implements Quantizer. It follows Algorithm 1 line by line:
//
//	H ← hist(T, l)                       (line 3)
//	b_i ← b_{i−1} + H[i−1]·ℓ             (lines 4–7, cumulative rounding)
//	S ← sort(w)                          (line 8)
//	r_i ← mean(S[b_i : b_{i+1}])         (lines 9–12)
//	v_i ← S[b_i], v_l ← ∞                (lines 11, 13)
//	q_i ← f_q(w_i, r, v)                 (lines 14–16)
func (t TargetCorrelated) Fit(weights []float64, levels int) Codebook {
	if levels < 1 {
		panic("quantize: need at least one level")
	}
	if len(weights) == 0 {
		panic("quantize: empty weight sample")
	}
	if len(t.Targets) == 0 {
		panic("quantize: TargetCorrelated needs a non-empty target set")
	}
	// Line 3: histogram of all target pixels into l buckets.
	var pixels []float64
	for _, im := range t.Targets {
		pixels = append(pixels, im.Pix...)
	}
	h := img.HistogramOf(pixels, levels)

	// Lines 4–7: cluster boundary indices over the sorted weights.
	// Cumulative rounding keeps Σ cluster sizes == ℓ exactly.
	n := len(weights)
	bIdx := make([]int, levels+1)
	cum := 0.0
	clamps := 0
	for i := 1; i <= levels; i++ {
		cum += h[i-1]
		bIdx[i] = int(math.Round(cum * float64(n)))
		if bIdx[i] < bIdx[i-1] {
			bIdx[i] = bIdx[i-1]
			clamps++
		}
		if bIdx[i] > n {
			bIdx[i] = n
			clamps++
		}
	}
	bIdx[levels] = n

	// Line 8.
	sorted := append([]float64(nil), weights...)
	sort.Float64s(sorted)

	// Lines 9–13: representatives and boundary values.
	repr := make([]float64, levels)
	bounds := make([]float64, levels+1)
	bounds[0] = math.Inf(-1)
	empty := 0
	for i := 0; i < levels; i++ {
		lo, hi := bIdx[i], bIdx[i+1]
		if i > 0 {
			if lo < n {
				bounds[i] = sorted[lo]
			} else {
				bounds[i] = math.Inf(1)
			}
		}
		if hi > lo {
			s := 0.0
			for _, w := range sorted[lo:hi] {
				s += w
			}
			repr[i] = s / float64(hi-lo)
		} else {
			// Empty cluster (target histogram bucket with zero mass):
			// pin the representative at the boundary so the level list
			// stays monotone; the cluster captures no weights because
			// its bounds coincide.
			empty++
			if lo < n {
				repr[i] = sorted[lo]
			} else {
				repr[i] = sorted[n-1]
			}
		}
	}
	bounds[levels] = math.Inf(1)
	if obs.Enabled() {
		obs.Default.Counter("quantize_fits_total").Inc()
		obs.Default.Counter("quantize_boundary_iters_total").Add(int64(levels))
		obs.Default.Counter("quantize_boundary_clamps_total").Add(int64(clamps))
		obs.Default.Counter("quantize_empty_clusters_total").Add(int64(empty))
	}
	return Codebook{Levels: repr, Bounds: bounds}
}
