package quantize

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"repro/internal/nn"
)

// AppliedMagic identifies a quantization-record artifact; the trailing
// digit is the format version. Exported so registries can sniff artifact
// kinds from file headers (modelio.Sniff).
const AppliedMagic = "DACQAP1\n"

// ErrBadApplied reports that a stream is not a quantization record.
var ErrBadApplied = errors.New("quantize: bad magic (not a quantization record)")

// AppliedBlob is the serializable form of an Applied record. It references
// parameters by name instead of pointer so the record can be rebound to a
// freshly built model (Bind); levels and assignments fully determine the
// quantized weight values, so binding also re-materializes them.
type AppliedBlob struct {
	Units []UnitBlob
}

// UnitBlob is one codebook scope in serialized form.
type UnitBlob struct {
	Name       string
	Levels     []float64
	Bounds     []float64
	Quantizer  string
	ReqLevels  int
	ParamNames []string
	// Assign holds, parallel to ParamNames, each element's cluster index.
	Assign [][]int32
}

// Snapshot captures an Applied record into its serializable form.
func Snapshot(a *Applied) *AppliedBlob {
	blob := &AppliedBlob{}
	for _, u := range a.Units {
		ub := UnitBlob{
			Name:      u.Name,
			Levels:    append([]float64(nil), u.Book.Levels...),
			Bounds:    append([]float64(nil), u.Book.Bounds...),
			Quantizer: u.Quantizer,
			ReqLevels: u.Levels,
		}
		for pi, p := range u.Params {
			idx := make([]int32, len(u.Assign[pi]))
			for i, k := range u.Assign[pi] {
				idx[i] = int32(k)
			}
			ub.ParamNames = append(ub.ParamNames, p.Name)
			ub.Assign = append(ub.Assign, idx)
		}
		blob.Units = append(blob.Units, ub)
	}
	return blob
}

// Bind reconstructs a live Applied record on m from the blob, rewriting
// every covered parameter's values from its codebook (value[i] =
// levels[assign[i]]), so the model leaves Bind exactly as quantized as it
// was when the blob was captured.
func (blob *AppliedBlob) Bind(m *nn.Model) (*Applied, error) {
	byName := map[string]*nn.Param{}
	for _, p := range m.Params() {
		byName[p.Name] = p
	}
	a := &Applied{}
	for _, ub := range blob.Units {
		u := &Unit{
			Name: ub.Name,
			Book: Codebook{
				Levels: append([]float64(nil), ub.Levels...),
				Bounds: append([]float64(nil), ub.Bounds...),
			},
			Quantizer: ub.Quantizer,
			Levels:    ub.ReqLevels,
		}
		for pi, name := range ub.ParamNames {
			p, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("quantize: record references unknown parameter %q", name)
			}
			if p.NumEl() != len(ub.Assign[pi]) {
				return nil, fmt.Errorf("quantize: record for %q has %d indices, parameter has %d",
					name, len(ub.Assign[pi]), p.NumEl())
			}
			assign := make([]int, len(ub.Assign[pi]))
			vd := p.Value.Data()
			for i, k := range ub.Assign[pi] {
				if k < 0 || int(k) >= len(ub.Levels) {
					return nil, fmt.Errorf("quantize: record index %d out of range for %d levels in %q",
						k, len(ub.Levels), name)
				}
				assign[i] = int(k)
				vd[i] = ub.Levels[k]
			}
			u.Params = append(u.Params, p)
			u.Assign = append(u.Assign, assign)
		}
		a.Units = append(a.Units, u)
	}
	return a, nil
}

// EncodeApplied serializes a quantization record.
func EncodeApplied(w io.Writer, blob *AppliedBlob) error {
	if err := validateApplied(blob); err != nil {
		return err
	}
	if _, err := io.WriteString(w, AppliedMagic); err != nil {
		return fmt.Errorf("quantize: write record header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(blob); err != nil {
		return fmt.Errorf("quantize: encode record: %w", err)
	}
	return nil
}

// DecodeApplied reads a quantization record, verifying the magic header
// and the structural consistency of the payload. Truncated or foreign
// streams return wrapped errors — never a panic.
func DecodeApplied(r io.Reader) (*AppliedBlob, error) {
	hdr := make([]byte, len(AppliedMagic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("quantize: truncated record header: %w", io.ErrUnexpectedEOF)
		}
		return nil, fmt.Errorf("quantize: read record header: %w", err)
	}
	if string(hdr) != AppliedMagic {
		return nil, fmt.Errorf("%w: header %q", ErrBadApplied, hdr)
	}
	var blob AppliedBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("quantize: decode record: %w", err)
	}
	if err := validateApplied(&blob); err != nil {
		return nil, err
	}
	return &blob, nil
}

// validateApplied checks the structural invariants Bind indexes on.
func validateApplied(blob *AppliedBlob) error {
	for _, ub := range blob.Units {
		if len(ub.Levels) == 0 {
			return fmt.Errorf("quantize: unit %q has an empty codebook", ub.Name)
		}
		if err := (Codebook{Levels: ub.Levels, Bounds: ub.Bounds}).Validate(); err != nil {
			return fmt.Errorf("quantize: unit %q: %w", ub.Name, err)
		}
		if len(ub.ParamNames) != len(ub.Assign) {
			return fmt.Errorf("quantize: unit %q has %d parameter names but %d index slices",
				ub.Name, len(ub.ParamNames), len(ub.Assign))
		}
		for pi, name := range ub.ParamNames {
			if name == "" || len(ub.Assign[pi]) == 0 {
				return fmt.Errorf("quantize: unit %q has an empty parameter entry", ub.Name)
			}
		}
	}
	return nil
}
