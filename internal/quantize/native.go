package quantize

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// CodebookBackend serves eval weight views straight from quantization
// units: each covered parameter's view is its unit's codebook plus one
// uint8 index per element, so a bound model runs the LUT matmul kernels
// over the compressed representation and never materializes dequantized
// weight tensors. It implements nn.WeightsBackend.
//
// Parameters the backend does not cover (biases and batch-norm affines are
// never quantized; nor are weights absent from the record) fall back to
// dense views of their float storage, so a partially quantized model still
// evaluates correctly.
type CodebookBackend struct {
	views map[string]tensor.Weights
}

// NewCodebookBackend returns an empty backend; populate it with AddUnit or
// use BackendFromApplied / BackendFromBlob.
func NewCodebookBackend() *CodebookBackend {
	return &CodebookBackend{views: map[string]tensor.Weights{}}
}

// AddUnit registers a codebook view for one parameter. levels and idx are
// aliased, not copied — callers that decoded a release record hand its
// slices over zero-copy. Levels must number 1..256 and every index must be
// in range (tensor.CodebookWeights panics otherwise, which AddUnit converts
// to an error since records come from disk).
func (cb *CodebookBackend) AddUnit(paramName string, levels []float64, idx []uint8) (err error) {
	if _, dup := cb.views[paramName]; dup {
		return fmt.Errorf("quantize: backend already has a view for %q", paramName)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("quantize: invalid codebook view for %q: %v", paramName, r)
		}
	}()
	cb.views[paramName] = tensor.CodebookWeights(levels, idx)
	return nil
}

// Covers reports whether the backend holds a codebook view for the named
// parameter.
func (cb *CodebookBackend) Covers(paramName string) bool {
	_, ok := cb.views[paramName]
	return ok
}

// CoveredNames returns how many parameters have codebook views.
func (cb *CodebookBackend) NumCovered() int { return len(cb.views) }

// Weights implements nn.WeightsBackend.
func (cb *CodebookBackend) Weights(p *nn.Param) tensor.Weights {
	if w, ok := cb.views[p.Name]; ok {
		return w
	}
	return tensor.DenseWeights(p.Value.Data())
}

// Bytes sums the resident bytes of the codebook views (indices plus
// lookup tables) — the quantized-native counterpart of 8 bytes per float
// weight element.
func (cb *CodebookBackend) Bytes() int {
	n := 0
	for _, w := range cb.views {
		n += w.Bytes()
	}
	return n
}

// BackendFromApplied builds a codebook backend from a live quantization
// record (index slices are converted to uint8; level values are aliased).
// Every unit must have at most 256 levels.
func BackendFromApplied(a *Applied) (*CodebookBackend, error) {
	cb := NewCodebookBackend()
	for _, u := range a.Units {
		if len(u.Book.Levels) > 256 {
			return nil, fmt.Errorf("quantize: unit %q has %d levels; codebook-native eval needs ≤256", u.Name, len(u.Book.Levels))
		}
		for pi, p := range u.Params {
			idx := make([]uint8, len(u.Assign[pi]))
			for i, k := range u.Assign[pi] {
				if k < 0 || k >= len(u.Book.Levels) {
					return nil, fmt.Errorf("quantize: unit %q index %d out of range for %d levels", u.Name, k, len(u.Book.Levels))
				}
				idx[i] = uint8(k)
			}
			if err := cb.AddUnit(p.Name, u.Book.Levels, idx); err != nil {
				return nil, err
			}
		}
	}
	return cb, nil
}

// BackendFromBlob builds a codebook backend from a serialized quantization
// record (DACQAP1), without binding it to any model's float parameters.
func BackendFromBlob(blob *AppliedBlob) (*CodebookBackend, error) {
	cb := NewCodebookBackend()
	for _, ub := range blob.Units {
		if len(ub.Levels) > 256 {
			return nil, fmt.Errorf("quantize: unit %q has %d levels; codebook-native eval needs ≤256", ub.Name, len(ub.Levels))
		}
		for pi, name := range ub.ParamNames {
			idx := make([]uint8, len(ub.Assign[pi]))
			for i, k := range ub.Assign[pi] {
				if k < 0 || int(k) >= len(ub.Levels) {
					return nil, fmt.Errorf("quantize: unit %q index %d out of range for %d levels", ub.Name, k, len(ub.Levels))
				}
				idx[i] = uint8(k)
			}
			if err := cb.AddUnit(name, ub.Levels, idx); err != nil {
				return nil, err
			}
		}
	}
	return cb, nil
}
