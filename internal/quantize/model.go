package quantize

import (
	"fmt"

	"repro/internal/nn"
)

// Unit is a set of parameters quantized together under one shared codebook
// (one "codebook scope"): a single layer, a layer group, or a whole model.
type Unit struct {
	// Name labels the unit in reports.
	Name string
	// Params are the quantized parameters.
	Params []*nn.Param
	// Book is the fitted codebook.
	Book Codebook
	// Assign holds, parallel to Params, each element's cluster index.
	Assign [][]int
	// Quantizer records which scheme produced the codebook.
	Quantizer string
	// Levels is the cluster count requested.
	Levels int
}

// NumEl returns the unit's total scalar count.
func (u *Unit) NumEl() int {
	n := 0
	for _, p := range u.Params {
		n += p.NumEl()
	}
	return n
}

// Applied records the full quantization of a model as a list of units, and
// is the handle the fine-tuner uses to keep weights tied to centroids.
type Applied struct {
	Units []*Unit
}

// QuantizeUnit fits one codebook over the concatenated values of params and
// quantizes them in place, recording assignments for fine-tuning.
func (a *Applied) QuantizeUnit(name string, params []*nn.Param, q Quantizer, levels int) *Unit {
	if len(params) == 0 {
		panic(fmt.Sprintf("quantize: unit %q has no parameters", name))
	}
	var all []float64
	for _, p := range params {
		all = append(all, p.Value.Data()...)
	}
	book := q.Fit(all, levels)
	u := &Unit{
		Name: name, Params: params, Book: book,
		Quantizer: q.Name(), Levels: levels,
	}
	for _, p := range params {
		u.Assign = append(u.Assign, book.QuantizeAll(p.Value.Data()))
	}
	a.Units = append(a.Units, u)
	return u
}

// QuantizePerLayer fits an independent codebook for every parameter.
func (a *Applied) QuantizePerLayer(params []*nn.Param, q Quantizer, levels int) {
	for _, p := range params {
		a.QuantizeUnit(p.Name, []*nn.Param{p}, q, levels)
	}
}

// QuantizeModel quantizes all weight parameters of m with one codebook per
// layer (the usual deployment granularity) and returns the record.
func QuantizeModel(m *nn.Model, q Quantizer, levels int) *Applied {
	a := &Applied{}
	a.QuantizePerLayer(m.WeightParams(), q, levels)
	return a
}

// Rewrite re-materializes every quantized parameter from its centroids
// (used after centroid fine-tuning updates Book.Levels).
func (a *Applied) Rewrite() {
	for _, u := range a.Units {
		for pi, p := range u.Params {
			vd := p.Value.Data()
			for i, k := range u.Assign[pi] {
				vd[i] = u.Book.Levels[k]
			}
		}
	}
}

// UniqueValues reports, per unit, how many distinct values the quantized
// parameters actually take (≤ Levels; a compression sanity check).
func (a *Applied) UniqueValues() map[string]int {
	out := make(map[string]int, len(a.Units))
	for _, u := range a.Units {
		seen := make(map[float64]bool)
		for _, p := range u.Params {
			for _, v := range p.Value.Data() {
				seen[v] = true
			}
		}
		out[u.Name] = len(seen)
	}
	return out
}
