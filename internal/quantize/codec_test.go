package quantize

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// appliedFixture quantizes a real model and returns the model plus the
// live record and its snapshot.
func appliedFixture(t *testing.T) (*Applied, *AppliedBlob) {
	t.Helper()
	m := testModel(11)
	a := QuantizeModel(m, WeightedEntropy{}, 16)
	return a, Snapshot(a)
}

func encodeAppliedBytes(t *testing.T, blob *AppliedBlob) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeApplied(&buf, blob); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAppliedCodecRoundTripAndBind(t *testing.T) {
	a, blob := appliedFixture(t)
	got, err := DecodeApplied(bytes.NewReader(encodeAppliedBytes(t, blob)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Units) != len(a.Units) {
		t.Fatalf("units %d, want %d", len(got.Units), len(a.Units))
	}
	// Bind onto a FRESH (unquantized) model: every covered parameter must
	// come out bit-identical to the originally quantized one, and the
	// reconstructed record must drive Rewrite the same way.
	m2 := testModel(11)
	bound, err := got.Bind(m2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bound.Units) != len(a.Units) {
		t.Fatalf("bound units %d, want %d", len(bound.Units), len(a.Units))
	}
	for ui, u := range a.Units {
		b := bound.Units[ui]
		if u.Name != b.Name || u.Quantizer != b.Quantizer || u.Levels != b.Levels {
			t.Fatalf("unit %d metadata lost: %+v vs %+v", ui, u, b)
		}
		for i := range u.Book.Levels {
			if u.Book.Levels[i] != b.Book.Levels[i] {
				t.Fatalf("unit %d level %d not bit-exact", ui, i)
			}
		}
		for pi, p := range u.Params {
			bp := b.Params[pi]
			if p.Name != bp.Name {
				t.Fatalf("unit %d param %d: %q vs %q", ui, pi, p.Name, bp.Name)
			}
			for i, v := range p.Value.Data() {
				if bp.Value.Data()[i] != v {
					t.Fatalf("unit %d param %q value %d differs after bind", ui, p.Name, i)
				}
			}
			for i, k := range u.Assign[pi] {
				if b.Assign[pi][i] != k {
					t.Fatalf("unit %d param %q assignment %d differs", ui, p.Name, i)
				}
			}
		}
	}
	// The bound record must stay functional: nudging a centroid and
	// rewriting propagates to the rebound model's weights.
	bound.Units[0].Book.Levels[0] += 0.5
	bound.Rewrite()
	found := false
	for pi := range bound.Units[0].Params {
		for i, k := range bound.Units[0].Assign[pi] {
			if k == 0 {
				found = true
				if bound.Units[0].Params[pi].Value.Data()[i] != bound.Units[0].Book.Levels[0] {
					t.Fatal("rewrite on bound record did not update weights")
				}
			}
			_ = i
		}
	}
	if !found {
		t.Skip("no element assigned to cluster 0; fixture too small")
	}
}

func TestAppliedDecodeTruncatedFails(t *testing.T) {
	_, blob := appliedFixture(t)
	raw := encodeAppliedBytes(t, blob)
	for _, n := range []int{0, 3, len(AppliedMagic), len(AppliedMagic) + 5, len(raw) / 2, len(raw) - 1} {
		if _, err := DecodeApplied(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation at %d bytes: expected error", n)
		}
	}
	if _, err := DecodeApplied(bytes.NewReader(raw[:5])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("header truncation error = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestAppliedDecodeBadMagicFails(t *testing.T) {
	_, blob := appliedFixture(t)
	raw := encodeAppliedBytes(t, blob)
	raw[2] ^= 0xff
	if _, err := DecodeApplied(bytes.NewReader(raw)); !errors.Is(err, ErrBadApplied) {
		t.Fatalf("error = %v, want ErrBadApplied", err)
	}
}

func TestAppliedDecodeFlippedByteFails(t *testing.T) {
	_, blob := appliedFixture(t)
	raw := encodeAppliedBytes(t, blob)
	for _, off := range []int{len(AppliedMagic) + 1, len(raw) / 3, 2 * len(raw) / 3} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x08
		rec, err := DecodeApplied(bytes.NewReader(mut))
		if err == nil && rec == nil {
			t.Fatalf("flip at %d: nil record without error", off)
		}
	}
}

func TestAppliedBindRejectsMismatch(t *testing.T) {
	_, blob := appliedFixture(t)
	m := testModel(11)

	unknown := *blob
	unknown.Units = append([]UnitBlob(nil), blob.Units...)
	unknown.Units[0].ParamNames = append([]string(nil), blob.Units[0].ParamNames...)
	unknown.Units[0].ParamNames[0] = "no.such.param"
	if _, err := unknown.Bind(m); err == nil {
		t.Fatal("unknown parameter accepted")
	}

	short := *blob
	short.Units = append([]UnitBlob(nil), blob.Units...)
	short.Units[0].Assign = append([][]int32(nil), blob.Units[0].Assign...)
	short.Units[0].Assign[0] = short.Units[0].Assign[0][:1]
	if _, err := short.Bind(testModel(11)); err == nil {
		t.Fatal("short assignment accepted")
	}

	oob := *blob
	oob.Units = append([]UnitBlob(nil), blob.Units...)
	oob.Units[0].Assign = append([][]int32(nil), blob.Units[0].Assign...)
	oob.Units[0].Assign[0] = append([]int32(nil), blob.Units[0].Assign[0]...)
	oob.Units[0].Assign[0][0] = int32(len(oob.Units[0].Levels))
	if _, err := oob.Bind(testModel(11)); err == nil {
		t.Fatal("out-of-range cluster index accepted")
	}
}

func TestEncodeAppliedRejectsInconsistent(t *testing.T) {
	_, blob := appliedFixture(t)
	blob.Units[0].Assign = blob.Units[0].Assign[:len(blob.Units[0].Assign)-1]
	if err := EncodeApplied(io.Discard, blob); err == nil {
		t.Fatal("names/assignments mismatch accepted")
	}
	_, blob2 := appliedFixture(t)
	blob2.Units[0].Bounds = blob2.Units[0].Bounds[:1]
	if err := EncodeApplied(io.Discard, blob2); err == nil {
		t.Fatal("malformed codebook accepted")
	}
}
