package quantize

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/img"
)

func gaussianSample(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func TestCodebookIndexAndQuantize(t *testing.T) {
	cb := Codebook{
		Levels: []float64{-1, 0, 1},
		Bounds: []float64{math.Inf(-1), -0.5, 0.5, math.Inf(1)},
	}
	cases := []struct {
		w, want float64
	}{
		{-10, -1}, {-0.51, -1}, {-0.5, 0}, {0, 0}, {0.49, 0}, {0.5, 1}, {7, 1},
	}
	for _, c := range cases {
		if got := cb.Quantize(c.w); got != c.want {
			t.Fatalf("Quantize(%v) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestCodebookBits(t *testing.T) {
	for _, c := range []struct{ levels, bits int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {8, 3}, {16, 4}, {32, 5}, {256, 8},
	} {
		cb := Codebook{Levels: make([]float64, c.levels)}
		if got := cb.Bits(); got != c.bits {
			t.Fatalf("Bits(%d levels) = %d, want %d", c.levels, got, c.bits)
		}
	}
}

func TestCodebookValidate(t *testing.T) {
	good := Linear{}.Fit(gaussianSample(100, 1), 4)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid codebook rejected: %v", err)
	}
	bad := Codebook{Levels: []float64{0}, Bounds: []float64{0}}
	if bad.Validate() == nil {
		t.Fatal("invalid codebook accepted")
	}
	unsorted := Codebook{Levels: []float64{0, 1}, Bounds: []float64{1, 0, math.Inf(1)}}
	if unsorted.Validate() == nil {
		t.Fatal("unsorted bounds accepted")
	}
	noInf := Codebook{Levels: []float64{0}, Bounds: []float64{0, 5}}
	if noInf.Validate() == nil {
		t.Fatal("finite last bound accepted")
	}
}

func TestQuantizeAllAssignments(t *testing.T) {
	w := []float64{-2, -0.1, 0.1, 2}
	cb := Codebook{
		Levels: []float64{-1, 1},
		Bounds: []float64{math.Inf(-1), 0, math.Inf(1)},
	}
	idx := cb.QuantizeAll(w)
	wantW := []float64{-1, -1, 1, 1}
	wantI := []int{0, 0, 1, 1}
	for i := range w {
		if w[i] != wantW[i] || idx[i] != wantI[i] {
			t.Fatalf("element %d: (%v, %d), want (%v, %d)", i, w[i], idx[i], wantW[i], wantI[i])
		}
	}
}

func TestLinearFitCoversRange(t *testing.T) {
	w := gaussianSample(1000, 2)
	cb := Linear{}.Fit(w, 8)
	if err := cb.Validate(); err != nil {
		t.Fatal(err)
	}
	if cb.NumLevels() != 8 {
		t.Fatalf("levels = %d", cb.NumLevels())
	}
	// Quantized values must reduce distinct count to ≤ 8.
	seen := map[float64]bool{}
	for _, v := range w {
		seen[cb.Quantize(v)] = true
	}
	if len(seen) > 8 {
		t.Fatalf("%d distinct quantized values", len(seen))
	}
}

func TestLinearLloydReducesMSE(t *testing.T) {
	w := gaussianSample(5000, 3)
	plain := Linear{}.Fit(w, 8)
	lloyd := Linear{LloydIters: 10}.Fit(w, 8)
	mse := func(cb Codebook) float64 {
		s := 0.0
		for _, v := range w {
			d := v - cb.Quantize(v)
			s += d * d
		}
		return s
	}
	if mse(lloyd) >= mse(plain) {
		t.Fatalf("Lloyd did not reduce MSE: %v vs %v", mse(lloyd), mse(plain))
	}
}

func TestWeightedEntropyEqualImportanceMass(t *testing.T) {
	w := gaussianSample(20000, 4)
	cb := WeightedEntropy{}.Fit(w, 8)
	if err := cb.Validate(); err != nil {
		t.Fatal(err)
	}
	// Importance mass per cluster should be near-equal (within 30%).
	mass := make([]float64, cb.NumLevels())
	total := 0.0
	for _, v := range w {
		mass[cb.Index(v)] += v * v
		total += v * v
	}
	want := total / float64(cb.NumLevels())
	for i, m := range mass {
		if m < want*0.5 || m > want*1.5 {
			t.Fatalf("cluster %d mass %v, want ≈%v", i, m, want)
		}
	}
}

func TestWeightedEntropyBeatsLinearOnEntropy(t *testing.T) {
	// Heavy-tailed weights: WEQ should spread importance mass more evenly
	// than a linear partition, scoring higher weighted entropy.
	rng := rand.New(rand.NewSource(5))
	w := make([]float64, 10000)
	for i := range w {
		w[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64())
	}
	weq := WeightedEntropy{}.Fit(w, 16)
	lin := Linear{}.Fit(w, 16)
	he := WeightedEntropyOf(weq, w)
	hl := WeightedEntropyOf(lin, w)
	if he <= hl {
		t.Fatalf("WEQ entropy %v not above linear %v", he, hl)
	}
}

func TestWeightedEntropyAllZeros(t *testing.T) {
	w := make([]float64, 100)
	cb := WeightedEntropy{}.Fit(w, 4)
	if err := cb.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cb.Quantize(0); math.Abs(got) > 1e-9 {
		t.Fatalf("zero weights quantized to %v", got)
	}
}

// Property: every quantizer's output is idempotent — quantizing quantized
// weights changes nothing.
func TestQuantizerIdempotenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		w := gaussianSample(500, seed)
		for _, q := range []Quantizer{Linear{}, Linear{LloydIters: 3}, WeightedEntropy{}} {
			cb := q.Fit(w, 8)
			q1 := make([]float64, len(w))
			for i, v := range w {
				q1[i] = cb.Quantize(v)
			}
			for _, v := range q1 {
				if cb.Quantize(v) != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func makeTargets(n int, seed int64) []*img.Image {
	rng := rand.New(rand.NewSource(seed))
	var out []*img.Image
	for k := 0; k < n; k++ {
		im := img.New(1, 8, 8)
		for i := range im.Pix {
			// Bimodal pixel distribution: dark mass + bright tail.
			if rng.Float64() < 0.7 {
				im.Pix[i] = math.Abs(rng.NormFloat64()) * 40
			} else {
				im.Pix[i] = 255 - math.Abs(rng.NormFloat64())*30
			}
			if im.Pix[i] > 255 {
				im.Pix[i] = 255
			}
		}
		out = append(out, im)
	}
	return out
}

func TestTargetCorrelatedFollowsHistogram(t *testing.T) {
	targets := makeTargets(20, 6)
	w := gaussianSample(50000, 7)
	levels := 16
	cb := TargetCorrelated{Targets: targets}.Fit(w, levels)
	if err := cb.Validate(); err != nil {
		t.Fatal(err)
	}
	// Cluster occupancy over the weights must match the pixel histogram.
	var pixels []float64
	for _, im := range targets {
		pixels = append(pixels, im.Pix...)
	}
	h := img.HistogramOf(pixels, levels)
	counts := make([]float64, levels)
	for _, v := range w {
		counts[cb.Index(v)]++
	}
	for i := range counts {
		counts[i] /= float64(len(w))
		if math.Abs(counts[i]-h[i]) > 0.02 {
			t.Fatalf("cluster %d occupancy %v, histogram %v", i, counts[i], h[i])
		}
	}
}

func TestTargetCorrelatedEmptyBuckets(t *testing.T) {
	// A constant target image leaves most histogram buckets empty; the
	// quantizer must still produce a valid codebook.
	im := img.New(1, 4, 4)
	for i := range im.Pix {
		im.Pix[i] = 128
	}
	w := gaussianSample(1000, 8)
	cb := TargetCorrelated{Targets: []*img.Image{im}}.Fit(w, 8)
	if err := cb.Validate(); err != nil {
		t.Fatal(err)
	}
	// All weights land in the single occupied cluster.
	seen := map[float64]bool{}
	for _, v := range w {
		seen[cb.Quantize(v)] = true
	}
	if len(seen) != 1 {
		t.Fatalf("%d distinct values, want 1", len(seen))
	}
}

func TestTargetCorrelatedPanicsWithoutTargets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TargetCorrelated{}.Fit(gaussianSample(10, 9), 4)
}

func TestFitPanicsOnBadInput(t *testing.T) {
	for _, f := range []func(){
		func() { Linear{}.Fit(nil, 4) },
		func() { Linear{}.Fit([]float64{1}, 0) },
		func() { WeightedEntropy{}.Fit(nil, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMonotoneQuantizationProperty(t *testing.T) {
	// Property: quantization preserves order: w1 <= w2 → Q(w1) <= Q(w2).
	f := func(seed int64) bool {
		w := gaussianSample(300, seed)
		targets := makeTargets(4, seed)
		for _, q := range []Quantizer{Linear{LloydIters: 2}, WeightedEntropy{}, TargetCorrelated{Targets: targets}} {
			cb := q.Fit(w, 8)
			sorted := append([]float64(nil), w...)
			sort.Float64s(sorted)
			prev := math.Inf(-1)
			for _, v := range sorted {
				qv := cb.Quantize(v)
				if qv < prev-1e-12 {
					return false
				}
				prev = qv
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
