package quantize

import (
	"math"
	"testing"

	"repro/internal/nn"
)

// pullReg drags every weight toward a fixed payload vector, a stand-in for
// the attack's correlation penalty.
type pullReg struct {
	target []float64
	rate   float64
}

func (r pullReg) Apply(m *nn.Model) float64 {
	i := 0
	loss := 0.0
	for _, p := range m.WeightParams() {
		gd := p.Grad.Data()
		vd := p.Value.Data()
		for j := range gd {
			if i < len(r.target) {
				d := vd[j] - r.target[i]
				gd[j] += r.rate * d
				loss += 0.5 * r.rate * d * d
				i++
			}
		}
	}
	return loss
}

// payloadDistance measures how far the current weights drifted from the
// payload vector.
func payloadDistance(m *nn.Model, target []float64) float64 {
	i := 0
	s := 0.0
	for _, p := range m.WeightParams() {
		for _, v := range p.Value.Data() {
			if i < len(target) {
				d := v - target[i]
				s += d * d
				i++
			}
		}
	}
	return math.Sqrt(s / float64(len(target)))
}

// Fine-tuning with the regularizer kept on must preserve the payload
// better than benign fine-tuning — the reason the malicious pipeline ships
// its own fine-tuner (core.Config.KeepRegDuringFineTune).
func TestFineTuneWithRegPreservesPayload(t *testing.T) {
	target := benchPayload(200)

	run := func(withReg bool) float64 {
		m := testModel(77)
		// Pre-load the payload into the weights and quantize.
		i := 0
		for _, p := range m.WeightParams() {
			vd := p.Value.Data()
			for j := range vd {
				if i < len(target) {
					vd[j] = target[i]
					i++
				}
			}
		}
		a := QuantizeModel(m, Linear{LloydIters: 3}, 16)
		x, y := trainingBlob(200, 77)
		cfg := FineTuneConfig{Epochs: 6, BatchSize: 32, LR: 0.05, Seed: 77}
		if withReg {
			cfg.Reg = pullReg{target: target, rate: 5}
		}
		FineTune(m, a, x, y, cfg)
		return payloadDistance(m, target)
	}

	distReg := run(true)
	distBenign := run(false)
	if distReg >= distBenign {
		t.Fatalf("regularized fine-tune drifted more: %v vs %v", distReg, distBenign)
	}
}

func benchPayload(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.004*float64(i%256) - 0.5
	}
	return out
}
