// Package quantize implements the weight-quantization schemes the paper
// studies: a linear (deep-compression style) quantizer, the
// weighted-entropy quantizer of Park et al. (CVPR 2017) that the paper uses
// as the default compression, and the paper's own contribution — the
// target-correlated quantizer of Algorithm 1, whose cluster boundaries are
// derived from the histogram of the encoding target's pixel values so that
// quantization preserves the weight↔pixel correlation. Cluster-centroid
// fine-tuning (deep-compression style shared-weight training) is provided
// to recover accuracy after quantization.
package quantize

import (
	"fmt"
	"math"
	"sort"
)

// Codebook is a scalar quantizer: sorted cluster boundaries plus one
// representative value per cluster. A weight w belongs to cluster i when
// Bounds[i] <= w < Bounds[i+1]; Bounds has len(Levels)+1 entries and ends
// with +Inf.
type Codebook struct {
	// Levels holds the representative (centroid) values, one per cluster,
	// in ascending boundary order.
	Levels []float64
	// Bounds holds the cluster boundaries; Bounds[0] is an inclusive lower
	// edge for cluster 0 and Bounds[len(Levels)] is +Inf.
	Bounds []float64
}

// NumLevels returns the number of clusters.
func (cb Codebook) NumLevels() int { return len(cb.Levels) }

// Bits returns the bit width needed to index the codebook.
func (cb Codebook) Bits() int {
	if len(cb.Levels) <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(len(cb.Levels)))))
}

// Index returns the cluster index for w.
func (cb Codebook) Index(w float64) int {
	// First cluster whose upper bound exceeds w.
	i := sort.SearchFloat64s(cb.Bounds[1:], w)
	// SearchFloat64s finds the first b >= w; when b == w the weight
	// belongs to the *next* cluster (lower edges are inclusive).
	for i < len(cb.Levels)-1 && cb.Bounds[i+1] <= w {
		i++
	}
	if i >= len(cb.Levels) {
		i = len(cb.Levels) - 1
	}
	return i
}

// Quantize maps w to its cluster's representative value.
func (cb Codebook) Quantize(w float64) float64 { return cb.Levels[cb.Index(w)] }

// QuantizeAll quantizes a slice in place and returns the per-element
// cluster assignments.
func (cb Codebook) QuantizeAll(w []float64) []int {
	idx := make([]int, len(w))
	for i, v := range w {
		k := cb.Index(v)
		idx[i] = k
		w[i] = cb.Levels[k]
	}
	return idx
}

// Validate checks structural invariants (sorted bounds, matching lengths).
func (cb Codebook) Validate() error {
	if len(cb.Bounds) != len(cb.Levels)+1 {
		return fmt.Errorf("quantize: %d bounds for %d levels", len(cb.Bounds), len(cb.Levels))
	}
	for i := 1; i < len(cb.Bounds); i++ {
		if cb.Bounds[i] < cb.Bounds[i-1] {
			return fmt.Errorf("quantize: bounds not sorted at %d", i)
		}
	}
	if !math.IsInf(cb.Bounds[len(cb.Bounds)-1], 1) {
		return fmt.Errorf("quantize: last bound must be +Inf")
	}
	return nil
}

// Quantizer fits a codebook to a weight sample.
type Quantizer interface {
	// Name identifies the scheme in logs and reports.
	Name() string
	// Fit builds a codebook with up to `levels` clusters for the given
	// weights. Implementations must not modify weights.
	Fit(weights []float64, levels int) Codebook
}
