package quantize

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHuffmanRoundTrip(t *testing.T) {
	counts := []int{50, 30, 15, 5}
	hc := BuildHuffman(counts)
	rng := rand.New(rand.NewSource(1))
	symbols := make([]int, 500)
	for i := range symbols {
		symbols[i] = rng.Intn(4)
	}
	data := hc.Encode(symbols)
	got, err := hc.Decode(data, len(symbols))
	if err != nil {
		t.Fatal(err)
	}
	for i := range symbols {
		if got[i] != symbols[i] {
			t.Fatalf("symbol %d: %d, want %d", i, got[i], symbols[i])
		}
	}
}

func TestHuffmanFrequentSymbolsShorter(t *testing.T) {
	counts := []int{1000, 10, 10, 10}
	hc := BuildHuffman(counts)
	if hc.Lengths[0] >= hc.Lengths[1] {
		t.Fatalf("frequent symbol not shorter: %v", hc.Lengths)
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	hc := BuildHuffman([]int{0, 42, 0})
	if hc.Lengths[1] != 1 {
		t.Fatalf("single-symbol code length %d", hc.Lengths[1])
	}
	data := hc.Encode([]int{1, 1, 1})
	got, err := hc.Decode(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got {
		if s != 1 {
			t.Fatal("single-symbol decode wrong")
		}
	}
}

func TestHuffmanEmptyCounts(t *testing.T) {
	hc := BuildHuffman([]int{0, 0})
	for _, l := range hc.Lengths {
		if l != 0 {
			t.Fatal("unused symbols must have no code")
		}
	}
}

func TestHuffmanUncodedSymbolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildHuffman([]int{5, 0}).Encode([]int{1})
}

func TestHuffmanTruncatedStream(t *testing.T) {
	hc := BuildHuffman([]int{10, 10})
	data := hc.Encode([]int{0, 1, 0})
	if _, err := hc.Decode(data, 100); err == nil {
		t.Fatal("expected truncation error")
	}
}

// Property: Huffman payload never exceeds the fixed-width payload plus one
// byte of padding, and round-trips for random streams.
func TestHuffmanBeatsFlatProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Skewed distribution over 16 symbols.
		counts := make([]int, 16)
		symbols := make([]int, 300)
		for i := range symbols {
			s := int(rng.ExpFloat64() * 2)
			if s > 15 {
				s = 15
			}
			symbols[i] = s
			counts[s]++
		}
		hc := BuildHuffman(counts)
		bits := hc.EncodedBits(symbols)
		if bits > 4*len(symbols)+8 {
			return false
		}
		data := hc.Encode(symbols)
		got, err := hc.Decode(data, len(symbols))
		if err != nil {
			return false
		}
		for i := range symbols {
			if got[i] != symbols[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanSizeOnQuantizedModel(t *testing.T) {
	m := testModel(30)
	a := QuantizeModel(m, WeightedEntropy{}, 16)
	hb, fb := HuffmanSize(a)
	if fb != 4*m.NumWeightParams() {
		t.Fatalf("flat bits %d, want %d", fb, 4*m.NumWeightParams())
	}
	if hb <= 0 || hb > fb+8*len(a.Units) {
		t.Fatalf("huffman bits %d vs flat %d", hb, fb)
	}
}

func TestPruneMagnitudeSparsity(t *testing.T) {
	m := testModel(31)
	mask := PruneMagnitude(m.WeightParams(), 0.5)
	if mask.Sparsity < 0.45 || mask.Sparsity > 0.55 {
		t.Fatalf("sparsity %v, want ≈0.5", mask.Sparsity)
	}
	zeros := 0
	total := 0
	for _, p := range m.WeightParams() {
		for _, v := range p.Value.Data() {
			if v == 0 {
				zeros++
			}
			total++
		}
	}
	if got := float64(zeros) / float64(total); got < 0.45 {
		t.Fatalf("actual zero fraction %v", got)
	}
}

func TestPrunePreservesLargeWeights(t *testing.T) {
	m := testModel(32)
	// Find the largest-magnitude weight.
	var maxV float64
	for _, p := range m.WeightParams() {
		for _, v := range p.Value.Data() {
			if a := abs(v); a > maxV {
				maxV = a
			}
		}
	}
	PruneMagnitude(m.WeightParams(), 0.8)
	found := false
	for _, p := range m.WeightParams() {
		for _, v := range p.Value.Data() {
			if abs(v) == maxV {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("pruning removed the largest weight")
	}
}

func TestPruneReapplyAndMaskGrads(t *testing.T) {
	m := testModel(33)
	mask := PruneMagnitude(m.WeightParams(), 0.5)
	// Perturb all weights and gradients, then reapply.
	for _, p := range m.WeightParams() {
		p.Value.AddScalar(1)
		p.Grad.Fill(1)
	}
	mask.Reapply()
	mask.MaskGrads()
	for pi, p := range mask.Params {
		vd, gd := p.Value.Data(), p.Grad.Data()
		for i, keep := range mask.Kept[pi] {
			if !keep && (vd[i] != 0 || gd[i] != 0) {
				t.Fatal("pruned element revived")
			}
			if keep && vd[i] == 0 {
				t.Fatal("kept element zeroed")
			}
		}
	}
	if f := mask.NonZeroFraction(); f < 0.45 || f > 0.55 {
		t.Fatalf("NonZeroFraction %v", f)
	}
}

func TestPruneBadSparsityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PruneMagnitude(nil, 1.0)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
