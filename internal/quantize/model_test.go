package quantize

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func testModel(seed int64) *nn.Model {
	return nn.NewMLP("m", 8, []int{16, 12}, 4, seed)
}

func trainingBlob(n int, seed int64) (*tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(n, 8)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 4
		for j := 0; j < 8; j++ {
			v := rng.NormFloat64() * 0.3
			if j == c*2 {
				v += 2
			}
			x.Set(v, i, j)
		}
		y[i] = c
	}
	return x, y
}

func TestQuantizeModelReducesDistinctValues(t *testing.T) {
	m := testModel(1)
	a := QuantizeModel(m, WeightedEntropy{}, 16)
	uniq := a.UniqueValues()
	for name, n := range uniq {
		if n > 16 {
			t.Fatalf("unit %s has %d distinct values", name, n)
		}
	}
	if len(a.Units) != len(m.WeightParams()) {
		t.Fatalf("units %d, want %d", len(a.Units), len(m.WeightParams()))
	}
}

func TestQuantizeUnitSharedCodebook(t *testing.T) {
	m := testModel(2)
	a := &Applied{}
	u := a.QuantizeUnit("all", m.WeightParams(), Linear{LloydIters: 3}, 8)
	if u.NumEl() != m.NumWeightParams() {
		t.Fatalf("unit NumEl %d, want %d", u.NumEl(), m.NumWeightParams())
	}
	// All values across all params must come from one 8-entry codebook.
	seen := map[float64]bool{}
	for _, p := range m.WeightParams() {
		for _, v := range p.Value.Data() {
			seen[v] = true
		}
	}
	if len(seen) > 8 {
		t.Fatalf("%d distinct values across unit", len(seen))
	}
}

func TestQuantizeUnitEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Applied{}).QuantizeUnit("x", nil, Linear{}, 4)
}

func TestRewriteTracksCentroidEdits(t *testing.T) {
	m := testModel(3)
	a := &Applied{}
	u := a.QuantizeUnit("all", m.WeightParams(), Linear{}, 4)
	for i := range u.Book.Levels {
		u.Book.Levels[i] = float64(100 + i)
	}
	a.Rewrite()
	for _, p := range m.WeightParams() {
		for _, v := range p.Value.Data() {
			if v < 100 || v > 103 {
				t.Fatalf("value %v not rewritten from centroids", v)
			}
		}
	}
}

func TestAssignmentsMatchValues(t *testing.T) {
	m := testModel(4)
	a := &Applied{}
	u := a.QuantizeUnit("all", m.WeightParams(), WeightedEntropy{}, 8)
	for pi, p := range u.Params {
		vd := p.Value.Data()
		for i, k := range u.Assign[pi] {
			if vd[i] != u.Book.Levels[k] {
				t.Fatalf("param %s elem %d: value %v, centroid %v", p.Name, i, vd[i], u.Book.Levels[k])
			}
		}
	}
}

// Quantization at a generous level count should barely hurt a trained
// model, and fine-tuning should recover (or improve) accuracy at a low
// level count. This is the substrate behaviour Tables I and III depend on.
func TestQuantizeAndFineTuneAccuracy(t *testing.T) {
	m := testModel(5)
	x, y := trainingBlob(400, 5)
	// Train to high accuracy with plain SGD.
	trainSimple(m, x, y, 30, 0.1)
	accFull := m.Accuracy(x, y, 64)
	if accFull < 0.95 {
		t.Fatalf("base model accuracy %v too low for the test to be meaningful", accFull)
	}

	// Aggressive 2-level quantization hurts.
	harsh := testModel(5)
	copyParams(harsh, m)
	aHarsh := QuantizeModel(harsh, WeightedEntropy{}, 2)
	accHarsh := harsh.Accuracy(x, y, 64)

	// Fine-tuning recovers some accuracy while staying 2-valued.
	FineTune(harsh, aHarsh, x, y, FineTuneConfig{Epochs: 10, BatchSize: 32, LR: 0.05, Seed: 5})
	accTuned := harsh.Accuracy(x, y, 64)
	if accTuned < accHarsh-0.05 {
		t.Fatalf("fine-tuning hurt: %v -> %v", accHarsh, accTuned)
	}
	for name, n := range aHarsh.UniqueValues() {
		if n > 2 {
			t.Fatalf("unit %s has %d distinct values after fine-tune", name, n)
		}
	}

	// Generous 64-level quantization barely hurts.
	soft := testModel(5)
	copyParams(soft, m)
	QuantizeModel(soft, WeightedEntropy{}, 64)
	accSoft := soft.Accuracy(x, y, 64)
	if accSoft < accFull-0.05 {
		t.Fatalf("64-level quantization dropped accuracy %v -> %v", accFull, accSoft)
	}
}

func TestFineTuneNoEpochsIsNoop(t *testing.T) {
	m := testModel(6)
	x, y := trainingBlob(64, 6)
	a := QuantizeModel(m, Linear{}, 4)
	before := snapshot(m)
	FineTune(m, a, x, y, FineTuneConfig{Epochs: 0})
	after := snapshot(m)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("FineTune with 0 epochs modified the model")
		}
	}
}

func trainSimple(m *nn.Model, x *tensor.Tensor, y []int, epochs int, lr float64) {
	n := x.Dim(0)
	bs := 32
	rng := rand.New(rand.NewSource(9))
	perm := rng.Perm(n)
	for e := 0; e < epochs; e++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for lo := 0; lo+bs <= n; lo += bs {
			bx := tensor.New(bs, x.Dim(1))
			by := make([]int, bs)
			for i, src := range perm[lo : lo+bs] {
				copy(bx.Data()[i*x.Dim(1):(i+1)*x.Dim(1)], x.Data()[src*x.Dim(1):(src+1)*x.Dim(1)])
				by[i] = y[src]
			}
			m.ZeroGrad()
			logits := m.ForwardTrain(bx)
			_, grad := nn.SoftmaxCrossEntropy(logits, by)
			m.Backward(grad)
			for _, p := range m.Params() {
				p.Value.AddScaled(-lr, p.Grad)
			}
		}
	}
}

func copyParams(dst, src *nn.Model) {
	dp, sp := dst.Params(), src.Params()
	for i := range dp {
		dp[i].Value.CopyFrom(sp[i].Value)
	}
}

func snapshot(m *nn.Model) []float64 {
	var out []float64
	for _, p := range m.Params() {
		out = append(out, p.Value.Data()...)
	}
	return out
}
