package quantize

import (
	"math"
	"sort"
)

// Linear is the deep-compression style quantizer: centroids are initialized
// linearly spaced over the weight range, then refined with a few Lloyd
// (1-D k-means) iterations. Boundaries are the midpoints between adjacent
// centroids.
type Linear struct {
	// LloydIters is the number of refinement passes (0 keeps the linear
	// initialization, matching deep compression's "linear init").
	LloydIters int
}

// Name implements Quantizer.
func (Linear) Name() string { return "linear" }

// Fit implements Quantizer.
func (l Linear) Fit(weights []float64, levels int) Codebook {
	if levels < 1 {
		panic("quantize: need at least one level")
	}
	if len(weights) == 0 {
		panic("quantize: empty weight sample")
	}
	lo, hi := weights[0], weights[0]
	for _, w := range weights {
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	if hi == lo {
		hi = lo + 1e-12
	}
	centroids := make([]float64, levels)
	for i := range centroids {
		centroids[i] = lo + (float64(i)+0.5)*(hi-lo)/float64(levels)
	}
	if l.LloydIters > 0 {
		sorted := append([]float64(nil), weights...)
		sort.Float64s(sorted)
		for it := 0; it < l.LloydIters; it++ {
			centroids = lloydPass(sorted, centroids)
		}
	}
	return codebookFromCentroids(centroids, lo)
}

// lloydPass reassigns sorted weights to nearest centroids and recomputes
// centroid means. Empty clusters keep their previous centroid.
func lloydPass(sorted, centroids []float64) []float64 {
	k := len(centroids)
	sums := make([]float64, k)
	counts := make([]int, k)
	ci := 0
	for _, w := range sorted {
		// Advance while the next centroid is closer.
		for ci < k-1 && math.Abs(centroids[ci+1]-w) < math.Abs(centroids[ci]-w) {
			ci++
		}
		sums[ci] += w
		counts[ci]++
	}
	out := make([]float64, k)
	for i := range out {
		if counts[i] > 0 {
			out[i] = sums[i] / float64(counts[i])
		} else {
			out[i] = centroids[i]
		}
	}
	sort.Float64s(out)
	return out
}

// codebookFromCentroids builds midpoint boundaries around sorted centroids.
func codebookFromCentroids(centroids []float64, lo float64) Codebook {
	k := len(centroids)
	bounds := make([]float64, k+1)
	bounds[0] = math.Inf(-1)
	for i := 1; i < k; i++ {
		bounds[i] = (centroids[i-1] + centroids[i]) / 2
	}
	bounds[k] = math.Inf(1)
	levels := append([]float64(nil), centroids...)
	return Codebook{Levels: levels, Bounds: bounds}
}
