package quantize

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// convTestModel builds a small ResNet so the native backend is exercised
// over conv layers (LUT matmul, W·col form) as well as the dense head
// (a·Wᵀ form), not just MLPs.
func convTestModel(seed int64) *nn.Model {
	m := nn.NewResNet(nn.ResNetConfig{
		InC: 1, InH: 8, InW: 8, Classes: 4,
		Widths: []int{4, 8}, Blocks: []int{1, 1}, Seed: seed,
	})
	return m
}

func evalInputs(m *nn.Model, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	u := m.InputLen()
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, u)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		out[i] = row
	}
	return out
}

// TestCodebookNativeBitIdentical pins the acceptance criterion: a model
// bound to the codebook backend scores bit-identically to the same
// quantized model evaluated through the dense float path, at one worker
// and at four.
func TestCodebookNativeBitIdentical(t *testing.T) {
	m := convTestModel(31)
	a := QuantizeModel(m, WeightedEntropy{}, 8)
	inputs := evalInputs(m, 6, 32)

	for _, threads := range []int{1, 4} {
		m.SetThreads(threads)

		m.SetWeightsBackend(nn.DenseFloat{})
		want, err := m.EvalBatch(inputs)
		if err != nil {
			t.Fatal(err)
		}

		cb, err := BackendFromApplied(a)
		if err != nil {
			t.Fatal(err)
		}
		m.SetWeightsBackend(cb)
		got, err := m.EvalBatch(inputs)
		if err != nil {
			t.Fatal(err)
		}
		m.SetWeightsBackend(nn.DenseFloat{})

		for i := range want {
			for j := range want[i] {
				if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
					t.Fatalf("threads=%d sample %d logit %d: native %v != dense %v",
						threads, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestCodebookNativeFromBlobMatchesApplied pins the decode path: a backend
// built from the serialized record evaluates identically to one built from
// the live record.
func TestCodebookNativeFromBlobMatchesApplied(t *testing.T) {
	m := convTestModel(33)
	a := QuantizeModel(m, WeightedEntropy{}, 8)
	blob := Snapshot(a)
	inputs := evalInputs(m, 3, 34)

	cbA, err := BackendFromApplied(a)
	if err != nil {
		t.Fatal(err)
	}
	cbB, err := BackendFromBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	if cbA.NumCovered() != cbB.NumCovered() {
		t.Fatalf("coverage differs: %d vs %d", cbA.NumCovered(), cbB.NumCovered())
	}

	m.SetWeightsBackend(cbA)
	wantOut, err := m.EvalBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	m.SetWeightsBackend(cbB)
	gotOut, err := m.EvalBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	m.SetWeightsBackend(nn.DenseFloat{})
	for i := range wantOut {
		for j := range wantOut[i] {
			if math.Float64bits(gotOut[i][j]) != math.Float64bits(wantOut[i][j]) {
				t.Fatalf("sample %d logit %d: blob backend %v != applied backend %v",
					i, j, gotOut[i][j], wantOut[i][j])
			}
		}
	}
}

// TestCodebookBackendUncoveredFallsBackDense pins the partial-coverage
// contract: parameters without a codebook view read their float storage.
func TestCodebookBackendUncoveredFallsBackDense(t *testing.T) {
	m := convTestModel(35)
	cb := NewCodebookBackend()
	p := m.WeightParams()[0]
	if cb.Covers(p.Name) {
		t.Fatalf("empty backend claims coverage of %s", p.Name)
	}
	w := cb.Weights(p)
	if !w.IsDense() || w.Len() != p.NumEl() {
		t.Fatalf("uncovered param view: dense=%v len=%d want len %d", w.IsDense(), w.Len(), p.NumEl())
	}
}

// TestCodebookBackendRejectsBadRecords covers the error paths the decode
// boundary relies on: oversized codebooks, out-of-range indices, and
// duplicate registration.
func TestCodebookBackendRejectsBadRecords(t *testing.T) {
	big := make([]float64, 257)
	blob := &AppliedBlob{Units: []UnitBlob{{
		Name: "u", Levels: big, ParamNames: []string{"p"}, Assign: [][]int32{{0}},
	}}}
	if _, err := BackendFromBlob(blob); err == nil {
		t.Fatal("257-level unit accepted")
	}
	blob = &AppliedBlob{Units: []UnitBlob{{
		Name: "u", Levels: []float64{0.5}, ParamNames: []string{"p"}, Assign: [][]int32{{1}},
	}}}
	if _, err := BackendFromBlob(blob); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	cb := NewCodebookBackend()
	if err := cb.AddUnit("p", []float64{1}, []uint8{0}); err != nil {
		t.Fatal(err)
	}
	if err := cb.AddUnit("p", []float64{1}, []uint8{0}); err == nil {
		t.Fatal("duplicate view accepted")
	}
}

// TestTrainWithCodebookBackendPanics pins the eval-only contract.
func TestTrainWithCodebookBackendPanics(t *testing.T) {
	m := convTestModel(36)
	a := QuantizeModel(m, WeightedEntropy{}, 8)
	cb, err := BackendFromApplied(a)
	if err != nil {
		t.Fatal(err)
	}
	m.SetWeightsBackend(cb)
	defer func() {
		if recover() == nil {
			t.Fatal("train-mode forward with codebook backend did not panic")
		}
	}()
	x := tensor.New(append([]int{1}, m.InputShape...)...)
	m.ForwardTrain(x)
}
