package quantize

import (
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
)

// FineTuneConfig controls post-quantization fine-tuning.
type FineTuneConfig struct {
	// Epochs is the number of fine-tuning passes (the paper's "light
	// fine-tuning to boost accuracy").
	Epochs int
	// BatchSize is the minibatch size.
	BatchSize int
	// LR is the centroid / free-parameter learning rate.
	LR float64
	// Seed drives shuffling.
	Seed int64
	// Reg, when non-nil, keeps a regularizer active during fine-tuning
	// (the attack flow keeps its correlation penalty on so centroids do
	// not drift away from the encoding).
	Reg train.Regularizer
}

// FineTune performs deep-compression style shared-weight training: cluster
// assignments stay frozen, the gradient of every weight in a cluster is
// averaged into its centroid, and centroids plus all non-quantized
// parameters (biases, batch-norm affine) are updated with SGD. Weights are
// re-materialized from centroids after every step, so the model remains
// exactly `levels`-valued throughout.
func FineTune(m *nn.Model, a *Applied, x *tensor.Tensor, y []int, cfg FineTuneConfig) {
	if cfg.Epochs <= 0 {
		return
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR == 0 {
		cfg.LR = 0.01
	}
	n := x.Dim(0)
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	quantized := make(map[*nn.Param]bool)
	for _, u := range a.Units {
		for _, p := range u.Params {
			quantized[p] = true
		}
	}
	var free []*nn.Param
	for _, p := range m.Params() {
		if !quantized[p] {
			free = append(free, p)
		}
	}
	sample := x.Len() / n
	bx := tensor.New(cfg.BatchSize, sample)
	by := make([]int, cfg.BatchSize)
	xd := x.Data()

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for lo := 0; lo+cfg.BatchSize <= n; lo += cfg.BatchSize {
			bd := bx.Data()
			for i, src := range perm[lo : lo+cfg.BatchSize] {
				copy(bd[i*sample:(i+1)*sample], xd[src*sample:(src+1)*sample])
				by[i] = y[src]
			}
			batch := bx.Reshape(append([]int{cfg.BatchSize}, m.InputShape...)...)
			m.ZeroGrad()
			logits := m.ForwardTrain(batch)
			_, grad := nn.SoftmaxCrossEntropy(logits, by)
			m.Backward(grad)
			if cfg.Reg != nil {
				cfg.Reg.Apply(m)
			}
			// Centroid update: mean gradient of each cluster's members.
			for _, u := range a.Units {
				k := u.Book.NumLevels()
				sums := make([]float64, k)
				counts := make([]int, k)
				for pi, p := range u.Params {
					gd := p.Grad.Data()
					for i, c := range u.Assign[pi] {
						sums[c] += gd[i]
						counts[c]++
					}
				}
				for c := 0; c < k; c++ {
					if counts[c] > 0 {
						u.Book.Levels[c] -= cfg.LR * sums[c] / float64(counts[c])
					}
				}
			}
			a.Rewrite()
			// Free parameters get plain SGD.
			for _, p := range free {
				p.Value.AddScaled(-cfg.LR, p.Grad)
			}
		}
	}
}
