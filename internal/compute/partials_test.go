package compute

import (
	"math/rand"
	"testing"
)

func TestPartialSetFoldIsOrderedLeftFold(t *testing.T) {
	const n, size = 7, 33
	s := NewPartialSet(n, size)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		p := s.Partial(i)
		for j := range p {
			p[j] = rng.NormFloat64() * 1e3
		}
	}
	// Reference: explicit serial left fold in index order.
	want := make([]float64, size)
	for i := 0; i < n; i++ {
		for j, v := range s.Partial(i) {
			want[j] += v
		}
	}
	got := make([]float64, size)
	s.Fold(got)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("Fold[%d] = %x, want %x", j, got[j], want[j])
		}
	}
	// Fold accumulates (dst is not cleared): a second fold continues the
	// same left fold on top of the existing values.
	want2 := append([]float64(nil), want...)
	for i := 0; i < n; i++ {
		for j, v := range s.Partial(i) {
			want2[j] += v
		}
	}
	s.Fold(got)
	for j := range want2 {
		if got[j] != want2[j] {
			t.Fatalf("second Fold[%d] = %x, want %x", j, got[j], want2[j])
		}
	}
}

func TestPartialSetZeroAndBounds(t *testing.T) {
	s := NewPartialSet(2, 4)
	s.Partial(0)[1] = 3
	s.Partial(1)[2] = 5
	s.Zero()
	for i := 0; i < s.N(); i++ {
		for j, v := range s.Partial(i) {
			if v != 0 {
				t.Fatalf("after Zero, partial %d[%d] = %v", i, j, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Fold with wrong destination length did not panic")
		}
	}()
	s.Fold(make([]float64, 3))
}
