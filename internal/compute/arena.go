package compute

// Arena is a reusable scratch allocator owned by one worker. It hands out
// float64 slices bump-allocated from a single backing buffer; Reset rewinds
// the allocator so the next task reuses the same memory. After a warm-up
// cycle an arena performs no heap allocation at all, which is what removes
// the per-call im2col (and similar) garbage from the layer hot paths.
//
// Slices returned by Floats are valid until the next Reset. Their contents
// are NOT cleared between cycles: steady-state requests return whatever the
// previous task left behind, so callers must either fully overwrite the
// slice (the common case — im2col, matmul destinations) or zero it
// explicitly. An arena is not safe for concurrent use; the worker pool gives
// each worker its own.
type Arena struct {
	buf      []float64
	off      int
	overflow int // floats requested past cap(buf) in the current cycle
}

// Reset rewinds the arena. If the previous cycle overflowed the backing
// buffer, the buffer is regrown first so the coming cycle fits in one block.
func (a *Arena) Reset() {
	if a.overflow > 0 {
		a.buf = make([]float64, len(a.buf)+a.overflow)
		a.overflow = 0
	}
	a.off = 0
}

// Floats returns an n-element scratch slice with unspecified contents.
// Requests beyond the current backing buffer fall back to a plain make and
// are accounted for, so the next Reset grows the buffer to fit.
func (a *Arena) Floats(n int) []float64 {
	if a.off+n <= len(a.buf) {
		s := a.buf[a.off : a.off+n : a.off+n]
		a.off += n
		return s
	}
	a.overflow += n
	return make([]float64, n)
}

// ZeroFloats returns an n-element scratch slice cleared to zero.
func (a *Arena) ZeroFloats(n int) []float64 {
	s := a.Floats(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// Cap reports the arena's current backing capacity in floats (for tests and
// instrumentation).
func (a *Arena) Cap() int { return len(a.buf) }
