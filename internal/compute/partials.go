package compute

import "fmt"

// PartialSet manages the per-shard partial buffers of a data-parallel
// reduction. Each partial is a flat float64 vector of the same length
// (typically a flattened gradient); Fold adds the partials into a
// destination in ascending shard-index order, which makes the reduction a
// pure function of the partials' contents and their index — the property
// the distributed trainer's bit-identity contract rests on: every
// (threads × processes) shape computes the same shard partials and folds
// them in the same order, so the folded result is byte-identical
// everywhere.
type PartialSet struct {
	size  int
	parts [][]float64
}

// NewPartialSet allocates n zeroed partial buffers of the given size.
func NewPartialSet(n, size int) *PartialSet {
	if n <= 0 || size < 0 {
		panic(fmt.Sprintf("compute: NewPartialSet(%d, %d)", n, size))
	}
	s := &PartialSet{size: size, parts: make([][]float64, n)}
	for i := range s.parts {
		s.parts[i] = make([]float64, size)
	}
	return s
}

// N returns the number of partials.
func (s *PartialSet) N() int { return len(s.parts) }

// Size returns the length of each partial buffer.
func (s *PartialSet) Size() int { return s.size }

// Partial returns the i-th partial buffer. Callers write into it directly
// (snapshotting a local gradient) or copy a received remote partial in.
func (s *PartialSet) Partial(i int) []float64 { return s.parts[i] }

// Zero clears every partial buffer.
func (s *PartialSet) Zero() {
	for _, p := range s.parts {
		for i := range p {
			p[i] = 0
		}
	}
}

// Fold accumulates every partial into dst in ascending index order:
// dst[j] += parts[0][j]; dst[j] += parts[1][j]; ... — a fixed left fold,
// never a tree or racing accumulation, so the float rounding is identical
// on every run regardless of which process or goroutine produced each
// partial.
func (s *PartialSet) Fold(dst []float64) {
	if len(dst) != s.size {
		panic(fmt.Sprintf("compute: Fold destination has %d elements, partials have %d", len(dst), s.size))
	}
	for _, p := range s.parts {
		for j, v := range p {
			dst[j] += v
		}
	}
}
