package compute

import (
	"testing"

	"repro/internal/obs"
)

// With obs enabled, every dispatch must account its calls, items, and
// worker busy time; disabled, the counters must not move.
func TestCtxMetricsAccounting(t *testing.T) {
	obs.Default.Reset()
	obs.Enable(true)
	defer obs.Enable(false)

	c := New(3)
	defer c.Close()
	c.For(10, func(i int, _ *Arena) {})
	c.ForChunks(100, func(lo, hi int) {})

	snap := obs.Default.Snapshot()
	if got := snap.Counters["compute_dispatches_total"]; got != 2 {
		t.Fatalf("dispatches = %d, want 2", got)
	}
	if got := snap.Counters["compute_items_total"]; got != 110 {
		t.Fatalf("items = %d, want 110", got)
	}
	var busy int64
	for name, v := range snap.Counters {
		if len(name) > 7 && name[:7] == "compute" && v < 0 {
			t.Fatalf("negative counter %s = %d", name, v)
		}
	}
	busy = snap.Counters[`compute_worker_busy_ns_total{worker="0"}`] +
		snap.Counters[`compute_worker_busy_ns_total{worker="1"}`] +
		snap.Counters[`compute_worker_busy_ns_total{worker="2"}`]
	if busy <= 0 {
		t.Fatalf("no worker busy time recorded: %+v", snap.Counters)
	}

	obs.Enable(false)
	before := obs.Default.Snapshot().Counters["compute_dispatches_total"]
	c.For(10, func(i int, _ *Arena) {})
	if after := obs.Default.Snapshot().Counters["compute_dispatches_total"]; after != before {
		t.Fatalf("disabled dispatch still counted: %d -> %d", before, after)
	}
}

// The serial context must account its inline loops under worker 0.
func TestCtxMetricsSerialPath(t *testing.T) {
	obs.Default.Reset()
	obs.Enable(true)
	defer obs.Enable(false)

	c := New(1)
	defer c.Close()
	c.For(4, func(i int, _ *Arena) {})
	c.ForChunks(4, func(lo, hi int) {})

	snap := obs.Default.Snapshot()
	if got := snap.Counters["compute_items_total"]; got != 8 {
		t.Fatalf("items = %d, want 8", got)
	}
	if snap.Counters[`compute_worker_busy_ns_total{worker="0"}`] <= 0 {
		t.Fatal("serial path did not record worker-0 busy time")
	}
}
