// Package compute provides the execution context threaded through the
// tensor → nn → train stack: a goroutine worker pool with per-worker
// reusable scratch arenas.
//
// # Determinism contract
//
// The whole evaluation pipeline must be bit-reproducible from a seed — the
// malicious-trainer threat model is only auditable if the released weights
// can be re-derived exactly — so parallelism here never introduces
// scheduling-dependent floating-point orders. The rules:
//
//   - For and ForChunks give no ordering or placement guarantees. Callers
//     may only write to locations owned by their index (or chunk); i.e. they
//     express maps, not reductions.
//   - Reductions (parameter gradients summed over a batch) go through
//     per-index partial buffers that the caller reduces serially in index
//     order afterwards. Because the partial for index i is computed
//     identically no matter which worker runs it, and the final reduction
//     order is fixed, results are bit-identical for every thread count —
//     including Threads=1, which runs the same algorithm inline.
//
// A Ctx may be driven by one goroutine at a time (layer state imposes the
// same constraint already); the workers it owns are internal.
package compute

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Ctx is an execution context: a fixed-size worker pool plus one scratch
// Arena per worker. The zero number of threads is not valid; construct with
// New or Get.
type Ctx struct {
	threads int
	arenas  []*Arena
	tasks   chan task
	// driving is 1 while a goroutine is inside For/ForChunks. The
	// single-driver rule has always been part of the contract; now that
	// serving shares models across concurrent requests, the cheap CAS here
	// turns an accidental second driver (a silent data race over arenas and
	// layer state) into an immediate panic at the entry point.
	driving int32

	m *ctxMetrics
}

// ctxMetrics are the pool's observability counters, resolved once at
// construction from the shared obs registry (contexts with equal worker
// indices share series — the counters are process-wide totals). Updates
// happen only when obs.Enabled(), so the disabled cost of a dispatch is a
// single atomic load.
type ctxMetrics struct {
	// dispatches counts For/ForChunks calls; items counts the loop
	// iterations (For) or elements (ForChunks) they distributed.
	dispatches *obs.Counter
	items      *obs.Counter
	// busy[w] accumulates wall time worker w spent running caller code —
	// the utilization breakdown per worker index.
	busy []*obs.Counter
	// queueWait accumulates time between a task being sent and a worker
	// picking it up; tailWait is the driver's idle time waiting for the
	// slowest worker after finishing its own share (load imbalance).
	queueWait *obs.Counter
	tailWait  *obs.Counter
}

func newCtxMetrics(threads int) *ctxMetrics {
	m := &ctxMetrics{
		dispatches: obs.Default.Counter("compute_dispatches_total"),
		items:      obs.Default.Counter("compute_items_total"),
		queueWait:  obs.Default.Counter("compute_queue_wait_ns_total"),
		tailWait:   obs.Default.Counter("compute_tail_wait_ns_total"),
		busy:       make([]*obs.Counter, threads),
	}
	for w := range m.busy {
		m.busy[w] = obs.Default.Counter(fmt.Sprintf(`compute_worker_busy_ns_total{worker="%d"}`, w))
	}
	return m
}

// task asks the pool to run fn(worker). The worker index rides along with
// the task (rather than being a property of the receiving goroutine) so that
// each index of a dispatch runs exactly once even when one goroutine drains
// several tasks; the index is what owns an arena and a chunk, not the
// goroutine.
type task struct {
	fn     func(worker int)
	worker int
	wg     *sync.WaitGroup
	// sent/queueWait, set only while obs is enabled, let the receiving
	// worker account how long the task sat in the channel.
	sent      time.Time
	queueWait *obs.Counter
}

// New creates a context with the given worker count. threads <= 0 selects
// runtime.GOMAXPROCS(0). The pool's threads-1 background goroutines live
// until Close; the caller's goroutine acts as worker 0.
func New(threads int) *Ctx {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	c := &Ctx{threads: threads, arenas: make([]*Arena, threads), m: newCtxMetrics(threads)}
	for i := range c.arenas {
		c.arenas[i] = &Arena{}
	}
	if threads > 1 {
		// Workers capture the channel value: Close nils c.tasks, and a
		// worker that raced to read the field would trip the race detector
		// even though the contract forbids use-after-Close.
		tasks := make(chan task)
		c.tasks = tasks
		for w := 1; w < threads; w++ {
			go func() {
				for t := range tasks {
					if t.queueWait != nil {
						t.queueWait.Add(int64(time.Since(t.sent)))
					}
					t.fn(t.worker)
					t.wg.Done()
				}
			}()
		}
	}
	return c
}

var (
	sharedMu sync.Mutex
	shared   = map[int]*Ctx{}
)

// Get returns a process-shared context for the given worker count
// (threads <= 0 selects runtime.GOMAXPROCS(0) at call time). Shared
// contexts are cached by resolved count and never closed; use New for a
// context you want to Close yourself. Like any Ctx, a shared context must
// be driven by one goroutine at a time.
func Get(threads int) *Ctx {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	c, ok := shared[threads]
	if !ok {
		c = New(threads)
		shared[threads] = c
	}
	return c
}

// Serial returns the shared single-threaded context. It runs everything
// inline on the caller's goroutine and is the default execution context for
// models that were never given one.
func Serial() *Ctx { return Get(1) }

// Threads returns the worker count.
func (c *Ctx) Threads() int { return c.threads }

// Close stops the background workers. The context must be idle; after Close
// it must not be used again. Closing a context obtained from Get or Serial
// is a bug (they are shared process-wide).
func (c *Ctx) Close() {
	if c.tasks != nil {
		close(c.tasks)
		c.tasks = nil
	}
}

// acquire marks the context as driven by the calling goroutine; a second
// concurrent driver panics. Layer passes never nest For/ForChunks calls, so
// re-entry on one goroutine cannot occur.
func (c *Ctx) acquire() {
	if !atomic.CompareAndSwapInt32(&c.driving, 0, 1) {
		panic("compute: Ctx driven by two goroutines concurrently; give each concurrent model its own Ctx (see the package comment)")
	}
}

// release ends the calling goroutine's drive of the context.
func (c *Ctx) release() { atomic.StoreInt32(&c.driving, 0) }

// dispatch runs fn once per worker (including the caller as worker 0) and
// waits for all of them. With timed set (obs enabled), each worker's busy
// time, the tasks' queue wait, and the driver's tail wait are recorded.
func (c *Ctx) dispatch(fn func(worker int), timed bool) {
	work := fn
	if timed {
		work = func(worker int) {
			t0 := time.Now()
			fn(worker)
			c.m.busy[worker].Add(int64(time.Since(t0)))
		}
	}
	var wg sync.WaitGroup
	wg.Add(c.threads - 1)
	for w := 1; w < c.threads; w++ {
		t := task{fn: work, worker: w, wg: &wg}
		if timed {
			t.sent, t.queueWait = time.Now(), c.m.queueWait
		}
		c.tasks <- t
	}
	work(0)
	if timed {
		t0 := time.Now()
		wg.Wait()
		c.m.tailWait.Add(int64(time.Since(t0)))
		return
	}
	wg.Wait()
}

// For runs fn(i, arena) for every i in [0, n). Iterations are distributed
// dynamically across the pool; the arena passed to fn is reset beforehand
// and owned by fn for the duration of the call. fn may only write to
// locations owned by index i — cross-index sums must go to per-index
// buffers reduced by the caller afterwards (see the package comment).
func (c *Ctx) For(n int, fn func(i int, a *Arena)) {
	if n <= 0 {
		return
	}
	c.acquire()
	defer c.release()
	timed := obs.Enabled()
	if timed {
		c.m.dispatches.Inc()
		c.m.items.Add(int64(n))
	}
	if c.threads == 1 || n == 1 {
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		a := c.arenas[0]
		for i := 0; i < n; i++ {
			a.Reset()
			fn(i, a)
		}
		if timed {
			c.m.busy[0].Add(int64(time.Since(t0)))
		}
		return
	}
	var next int64
	c.dispatch(func(worker int) {
		a := c.arenas[worker]
		for {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= n {
				return
			}
			a.Reset()
			fn(i, a)
		}
	}, timed)
}

// ForChunks splits [0, n) into one contiguous chunk per worker and runs
// fn(lo, hi) on each in parallel. It is the low-overhead primitive for
// elementwise maps over large flat ranges; fn may only write to locations
// indexed by [lo, hi). Chunk boundaries depend on the thread count, so fn
// must be a pure per-element map for results to be thread-count-invariant.
func (c *Ctx) ForChunks(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	c.acquire()
	defer c.release()
	timed := obs.Enabled()
	if timed {
		c.m.dispatches.Inc()
		c.m.items.Add(int64(n))
	}
	chunks := c.threads
	if chunks > n {
		chunks = n
	}
	if chunks == 1 {
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		fn(0, n)
		if timed {
			c.m.busy[0].Add(int64(time.Since(t0)))
		}
		return
	}
	c.dispatch(func(worker int) {
		if worker >= chunks {
			return
		}
		lo := worker * n / chunks
		hi := (worker + 1) * n / chunks
		if lo < hi {
			fn(lo, hi)
		}
	}, timed)
}
