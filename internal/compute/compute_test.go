package compute

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 7} {
		c := New(threads)
		for _, n := range []int{0, 1, 2, 5, 64, 1000} {
			hits := make([]int64, n)
			c.For(n, func(i int, _ *Arena) {
				atomic.AddInt64(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("threads=%d n=%d: index %d ran %d times", threads, n, i, h)
				}
			}
		}
		c.Close()
	}
}

func TestForChunksCoversEveryIndexOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 7} {
		c := New(threads)
		for _, n := range []int{0, 1, 2, 5, 64, 1000} {
			hits := make([]int64, n)
			c.For(n, func(i int, _ *Arena) { hits[i] = 0 })
			c.ForChunks(n, func(lo, hi int) {
				if lo >= hi {
					t.Errorf("threads=%d n=%d: empty chunk [%d, %d)", threads, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt64(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("threads=%d n=%d: index %d covered %d times", threads, n, i, h)
				}
			}
		}
		c.Close()
	}
}

func TestForChunksMoreThreadsThanWork(t *testing.T) {
	c := New(8)
	defer c.Close()
	var calls int64
	c.ForChunks(3, func(lo, hi int) {
		atomic.AddInt64(&calls, 1)
		if hi-lo != 1 {
			t.Errorf("chunk [%d, %d) not a single element", lo, hi)
		}
	})
	if calls != 3 {
		t.Fatalf("ForChunks(3) on 8 threads made %d calls, want 3", calls)
	}
}

func TestForDistinctArenasPerWorker(t *testing.T) {
	c := New(4)
	defer c.Close()
	// Each invocation bump-allocates from its worker's arena; two workers
	// must never share a backing buffer (that would be a data race). We
	// detect sharing by writing a sentinel tied to the index and checking it
	// after the barrier: with a shared arena, concurrent writers would
	// clobber each other at least occasionally over many rounds.
	for round := 0; round < 50; round++ {
		n := 64
		out := make([]float64, n)
		c.For(n, func(i int, a *Arena) {
			s := a.Floats(128)
			for j := range s {
				s[j] = float64(i)
			}
			out[i] = s[64]
		})
		for i, v := range out {
			if v != float64(i) {
				t.Fatalf("round %d: index %d read %v from its scratch, want %d", round, i, v, i)
			}
		}
	}
}

func TestSerialRunsInline(t *testing.T) {
	c := Serial()
	if c.Threads() != 1 {
		t.Fatalf("Serial().Threads() = %d, want 1", c.Threads())
	}
	seen := make([]int, 0, 5)
	c.For(5, func(i int, _ *Arena) { seen = append(seen, i) })
	for i, v := range seen {
		if v != i {
			t.Fatalf("serial For out of order: %v", seen)
		}
	}
}

func TestGetCachesByResolvedCount(t *testing.T) {
	if Get(3) != Get(3) {
		t.Fatal("Get(3) returned distinct contexts")
	}
	if Get(1) != Serial() {
		t.Fatal("Get(1) and Serial() differ")
	}
	if Get(0).Threads() < 1 {
		t.Fatalf("Get(0) resolved to %d threads", Get(0).Threads())
	}
}

func TestNewResolvesNonPositive(t *testing.T) {
	c := New(0)
	defer c.Close()
	if c.Threads() < 1 {
		t.Fatalf("New(0) resolved to %d threads", c.Threads())
	}
}

func TestArenaReuseAndGrowth(t *testing.T) {
	var a Arena
	s1 := a.Floats(100)
	if len(s1) != 100 {
		t.Fatalf("Floats(100) returned len %d", len(s1))
	}
	// First cycle overflows (empty backing buffer), second fits.
	a.Reset()
	if a.Cap() < 100 {
		t.Fatalf("cap %d after Reset, want >= 100", a.Cap())
	}
	s2 := a.Floats(60)
	s3 := a.Floats(40)
	if &s2[0] == &s3[0] {
		t.Fatal("two allocations in one cycle alias")
	}
	a.Reset()
	s4 := a.Floats(60)
	if &s2[0] != &s4[0] {
		t.Fatal("arena did not reuse its backing buffer after Reset")
	}
	// Allocations have full-capacity slices clipped so an append cannot
	// silently bleed into a neighbour.
	if cap(s4) != 60 {
		t.Fatalf("scratch cap %d, want exactly 60", cap(s4))
	}
}

func TestArenaZeroFloats(t *testing.T) {
	var a Arena
	s := a.Floats(16)
	for i := range s {
		s[i] = 7
	}
	a.Reset()
	z := a.ZeroFloats(16)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("ZeroFloats[%d] = %v", i, v)
		}
	}
}

func TestArenaGrowthAccumulatesWithinCycle(t *testing.T) {
	var a Arena
	a.Floats(30)
	a.Floats(50)
	a.Reset()
	if a.Cap() < 80 {
		t.Fatalf("cap %d after overflowing cycle of 80, want >= 80", a.Cap())
	}
	s1 := a.Floats(30)
	s2 := a.Floats(50)
	if len(s1) != 30 || len(s2) != 50 {
		t.Fatal("bad lengths after growth")
	}
}

func TestCtxSingleDriverGuardPanics(t *testing.T) {
	c := New(2)
	defer c.Close()
	started := make(chan struct{})
	unblock := make(chan struct{})
	go c.For(1, func(i int, _ *Arena) {
		close(started)
		<-unblock
	})
	<-started
	defer close(unblock)
	defer func() {
		if recover() == nil {
			t.Error("second concurrent driver did not panic")
		}
	}()
	c.For(1, func(i int, _ *Arena) {})
}

func TestCtxSequentialDrivesAllowed(t *testing.T) {
	c := New(3)
	defer c.Close()
	// Repeated sequential drives — including from different goroutines, one
	// at a time — are fine; only overlap is a bug.
	for k := 0; k < 4; k++ {
		c.For(8, func(i int, _ *Arena) {})
		c.ForChunks(8, func(lo, hi int) {})
	}
	done := make(chan struct{})
	go func() {
		c.For(8, func(i int, _ *Arena) {})
		close(done)
	}()
	<-done
	c.ForChunks(8, func(lo, hi int) {})
}
