package artifact

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func key(parts ...string) string {
	k := NewKey("test/v1")
	for i, p := range parts {
		k.Str("p", p)
		_ = i
	}
	return k.Sum()
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := key("a")
	payload := []byte("hello artifact")
	if s.Has("ckpt", k) {
		t.Fatal("fresh store has artifact")
	}
	if err := s.Put("ckpt", k, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if !s.Has("ckpt", k) {
		t.Fatal("Put did not publish")
	}
	rc, err := s.Get("ckpt", k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || string(got) != string(payload) {
		t.Fatalf("round trip: %q, %v", got, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats %+v, want 1 hit", st)
	}
	if st.ReadBytes != int64(len(payload)) || st.WriteBytes != int64(len(payload)) {
		t.Fatalf("byte counters %+v, want %d each", st, len(payload))
	}
}

func TestGetMissingCountsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Get("ckpt", key("missing"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("error %v does not wrap fs.ErrNotExist", err)
	}
	if st := s.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats %+v, want 1 miss", st)
	}
}

func TestFailedPutLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := key("fail")
	boom := errors.New("boom")
	err = s.Put("ckpt", k, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Put error = %v, want wrapped boom", err)
	}
	if s.Has("ckpt", k) {
		t.Fatal("failed Put published an artifact")
	}
	// The temp file must be cleaned up too.
	entries, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("tmp dir not clean: %v", entries)
	}
	if st := s.Stats(); st.WriteBytes != 0 {
		t.Fatalf("failed Put counted %d write bytes", st.WriteBytes)
	}
}

func TestHasDoesNotCount(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Has("ckpt", key("probe"))
	}
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Has touched counters: %+v", st)
	}
}

func TestDeleteEvicts(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := key("evict")
	if err := s.Put("plan", k, func(w io.Writer) error {
		_, err := w.Write([]byte("x"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("plan", k); err != nil {
		t.Fatal(err)
	}
	if s.Has("plan", k) {
		t.Fatal("Delete left artifact")
	}
	if err := s.Delete("plan", k); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

func TestBadKindAndKeyRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	good := key("x")
	for _, kind := range []string{"", "CKPT", "a/b", "a.b"} {
		if err := s.Put(kind, good, func(io.Writer) error { return nil }); err == nil {
			t.Fatalf("kind %q accepted", kind)
		}
	}
	for _, k := range []string{"", "short", strings.Repeat("Z", 20), "../../../../etc/passwd"} {
		if err := s.Put("ckpt", k, func(io.Writer) error { return nil }); err == nil {
			t.Fatalf("key %q accepted", k)
		}
		if s.Has("ckpt", k) {
			t.Fatalf("Has(%q) true", k)
		}
	}
}

func TestKeyDeterministicAndSensitive(t *testing.T) {
	mk := func() *Key {
		return NewKey("train/v1").
			Int("epochs", 25).
			Float("lr", 0.05).
			Ints("bounds", []int{5, 9}).
			Floats("lambdas", []float64{0, 0, 10}).
			Str("dep", "abc").
			Bool("keepreg", true)
	}
	a, b := mk().Sum(), mk().Sum()
	if a != b {
		t.Fatalf("same inputs, different keys: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("key %q not a hex sha-256", a)
	}
	variants := []*Key{
		NewKey("train/v2").Int("epochs", 25),
		NewKey("train/v1").Int("epochs", 26),
		NewKey("train/v1").Int("epoch", 25),
		NewKey("train/v1").Float("epochs", 25),
		NewKey("train/v1").Ints("epochs", []int{25}),
	}
	seen := map[string]bool{a: true}
	for i, v := range variants {
		s := v.Sum()
		if seen[s] {
			t.Fatalf("variant %d collides", i)
		}
		seen[s] = true
	}
	// Slice boundaries must be unambiguous: [1,2]+[3] != [1]+[2,3].
	x := NewKey("k").Ints("a", []int{1, 2}).Ints("b", []int{3}).Sum()
	y := NewKey("k").Ints("a", []int{1}).Ints("b", []int{2, 3}).Sum()
	if x == y {
		t.Fatal("slice encoding ambiguous")
	}
}

func TestKeysListsSorted(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Empty kind (directory does not exist yet) is an empty list, not an
	// error.
	if ks, err := s.Keys("release"); err != nil || len(ks) != 0 {
		t.Fatalf("fresh Keys = %v, %v", ks, err)
	}
	want := []string{key("a"), key("b"), key("c")}
	for _, k := range want {
		if err := s.Put("release", k, func(w io.Writer) error {
			_, err := w.Write([]byte(k))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	// A stray non-artifact file in a shard directory is ignored.
	shard := filepath.Join(s.Root(), "release", want[0][:2])
	if err := os.WriteFile(filepath.Join(shard, "junk.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	sort.Strings(want)
	ks, err := s.Keys("release")
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != len(want) {
		t.Fatalf("Keys = %v, want %v", ks, want)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("Keys[%d] = %s, want %s", i, ks[i], want[i])
		}
	}
	// Keys tracks deletes and other kinds stay isolated.
	if err := s.Delete("release", want[1]); err != nil {
		t.Fatal(err)
	}
	if ks, _ := s.Keys("release"); len(ks) != 2 {
		t.Fatalf("Keys after delete = %v", ks)
	}
	if ks, _ := s.Keys("ckpt"); len(ks) != 0 {
		t.Fatalf("other kind sees keys: %v", ks)
	}
	// Invalid kind is rejected.
	if _, err := s.Keys("no/slashes"); err == nil {
		t.Fatal("invalid kind accepted")
	}
}
