// Package artifact provides the content-addressed store the stage-graph
// pipeline persists its intermediate results into: trained-model
// checkpoints, encoding plans, quantization records, and extraction
// reports. Every artifact is addressed by a deterministic SHA-256 cache
// key derived from the canonical encoding of the producing stage's
// configuration plus the keys of its upstream artifacts, so a re-run with
// the same inputs finds its outputs instead of recomputing them — across
// processes, not just within one (the in-process experiment memoizer
// already covers the latter).
//
// The store is a transparent byte container: artifact integrity is the
// codecs' job (each artifact kind has a magic header and structural
// validation, mirroring modelio), while the store guarantees atomic
// publication (temp file + rename) so a crashed writer never leaves a
// partial artifact behind.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/obs"
)

// Store is a content-addressed artifact store rooted at a directory.
// Artifacts are laid out as <root>/<kind>/<key[:2]>/<key>.bin. A Store is
// safe for concurrent use; concurrent writers of the same key race
// harmlessly because content-addressed artifacts with equal keys hold
// equal bytes and publication is an atomic rename.
type Store struct {
	root string

	hits, misses        atomic.Int64
	readBytes, putBytes atomic.Int64
}

// Stats is a point-in-time snapshot of a store's traffic counters.
type Stats struct {
	// Hits and Misses count Open calls that found / did not find their key.
	Hits, Misses int64
	// ReadBytes and WriteBytes total the artifact payload traffic.
	ReadBytes, WriteBytes int64
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "tmp"), 0o755); err != nil {
		return nil, fmt.Errorf("artifact: open store: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Stats returns the store's traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits: s.hits.Load(), Misses: s.misses.Load(),
		ReadBytes: s.readBytes.Load(), WriteBytes: s.putBytes.Load(),
	}
}

func (s *Store) path(kind, key string) (string, error) {
	if err := checkKind(kind); err != nil {
		return "", err
	}
	if err := checkKey(key); err != nil {
		return "", err
	}
	return filepath.Join(s.root, kind, key[:2], key+".bin"), nil
}

// Has reports whether the artifact exists, without touching the hit/miss
// counters (resume probing checks many speculative keys; only the key a
// stage actually reads or skips should count).
func (s *Store) Has(kind, key string) bool {
	p, err := s.path(kind, key)
	if err != nil {
		return false
	}
	_, err = os.Stat(p)
	return err == nil
}

// Get opens the artifact for reading. A present key counts as a cache hit,
// an absent one as a miss (the returned error wraps fs.ErrNotExist). Bytes
// are counted as the caller reads them.
func (s *Store) Get(kind, key string) (io.ReadCloser, error) {
	p, err := s.path(kind, key)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		s.misses.Add(1)
		if obs.Enabled() {
			obs.Default.Counter("artifact_cache_misses_total").Inc()
		}
		return nil, fmt.Errorf("artifact: %s/%s: %w", kind, key[:8], err)
	}
	s.hits.Add(1)
	if obs.Enabled() {
		obs.Default.Counter("artifact_cache_hits_total").Inc()
	}
	return &countingReader{f: f, store: s}, nil
}

// Put writes the artifact atomically: write streams the payload into a
// temp file which is renamed into place only after write (and a sync)
// succeeded. A failed write leaves no trace under the key.
func (s *Store) Put(kind, key string, write func(io.Writer) error) error {
	p, err := s.path(kind, key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("artifact: put %s: %w", kind, err)
	}
	tmp, err := os.CreateTemp(filepath.Join(s.root, "tmp"), kind+"-*")
	if err != nil {
		return fmt.Errorf("artifact: put %s: %w", kind, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	cw := &countingWriter{w: tmp}
	if err := write(cw); err != nil {
		tmp.Close()
		return fmt.Errorf("artifact: put %s/%s: %w", kind, key[:8], err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("artifact: put %s: sync: %w", kind, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("artifact: put %s: close: %w", kind, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("artifact: put %s: publish: %w", kind, err)
	}
	s.putBytes.Add(cw.n)
	if obs.Enabled() {
		obs.Default.Counter("artifact_cache_writes_total").Inc()
		obs.Default.Counter("artifact_cache_write_bytes_total").Add(cw.n)
	}
	return nil
}

// Keys lists every key present under kind, sorted. A kind with no
// artifacts (or whose directory does not exist yet) yields an empty list.
// The serving fleet uses this to enumerate distributable releases when a
// requested digest is missing, so the error can say what is available.
func (s *Store) Keys(kind string) ([]string, error) {
	if err := checkKind(kind); err != nil {
		return nil, err
	}
	dir := filepath.Join(s.root, kind)
	shards, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("artifact: keys %s: %w", kind, err)
	}
	var keys []string
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		des, err := os.ReadDir(filepath.Join(dir, sh.Name()))
		if err != nil {
			return nil, fmt.Errorf("artifact: keys %s: %w", kind, err)
		}
		for _, de := range des {
			name := de.Name()
			if de.IsDir() || !strings.HasSuffix(name, ".bin") {
				continue
			}
			if key := strings.TrimSuffix(name, ".bin"); checkKey(key) == nil {
				keys = append(keys, key)
			}
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete removes the artifact if present (used to evict entries a reader
// found corrupt, so the next run rebuilds them).
func (s *Store) Delete(kind, key string) error {
	p, err := s.path(kind, key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("artifact: delete %s: %w", kind, err)
	}
	return nil
}

func checkKind(kind string) error {
	if kind == "" {
		return fmt.Errorf("artifact: empty kind")
	}
	for _, r := range kind {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return fmt.Errorf("artifact: bad kind %q", kind)
		}
	}
	return nil
}

func checkKey(key string) error {
	if len(key) < 16 {
		return fmt.Errorf("artifact: key %q too short", key)
	}
	for _, r := range key {
		if (r < 'a' || r > 'f') && (r < '0' || r > '9') {
			return fmt.Errorf("artifact: key %q is not lowercase hex", key)
		}
	}
	return nil
}

type countingReader struct {
	f     *os.File
	store *Store
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.f.Read(p)
	if n > 0 {
		c.store.readBytes.Add(int64(n))
		if obs.Enabled() {
			obs.Default.Counter("artifact_cache_read_bytes_total").Add(int64(n))
		}
	}
	return n, err
}

func (c *countingReader) Close() error { return c.f.Close() }

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Key builds a deterministic SHA-256 cache key from labeled, canonically
// encoded values. Every value is written as a length-prefixed label, a
// type tag, and a fixed-endianness payload (floats as IEEE-754 bits), so
// the same logical configuration produces the same key on every platform
// and the encoding is prefix-unambiguous.
type Key struct {
	h hash.Hash
}

// NewKey starts a key in the given domain (conventionally
// "<stage>/v<N>"; bumping N invalidates all cached artifacts of the
// stage after a semantic change).
func NewKey(domain string) *Key {
	k := &Key{h: sha256.New()}
	k.label(domain)
	return k
}

func (k *Key) label(s string) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	k.h.Write(n[:])
	io.WriteString(k.h, s)
}

func (k *Key) tag(t byte) { k.h.Write([]byte{t}) }

func (k *Key) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	k.h.Write(b[:])
}

// Str mixes a labeled string into the key.
func (k *Key) Str(label, v string) *Key {
	k.label(label)
	k.tag('s')
	k.label(v)
	return k
}

// Int mixes a labeled integer into the key.
func (k *Key) Int(label string, v int64) *Key {
	k.label(label)
	k.tag('i')
	k.u64(uint64(v))
	return k
}

// Bool mixes a labeled boolean into the key.
func (k *Key) Bool(label string, v bool) *Key {
	k.label(label)
	k.tag('b')
	if v {
		k.u64(1)
	} else {
		k.u64(0)
	}
	return k
}

// Float mixes a labeled float into the key by its exact IEEE-754 bits.
func (k *Key) Float(label string, v float64) *Key {
	k.label(label)
	k.tag('f')
	k.u64(math.Float64bits(v))
	return k
}

// Ints mixes a labeled integer slice into the key.
func (k *Key) Ints(label string, vs []int) *Key {
	k.label(label)
	k.tag('I')
	k.u64(uint64(len(vs)))
	for _, v := range vs {
		k.u64(uint64(v))
	}
	return k
}

// Floats mixes a labeled float slice into the key.
func (k *Key) Floats(label string, vs []float64) *Key {
	k.label(label)
	k.tag('F')
	k.u64(uint64(len(vs)))
	for _, v := range vs {
		k.u64(math.Float64bits(v))
	}
	return k
}

// Sum returns the hex SHA-256 of everything mixed in so far. The key
// remains usable; further writes extend the same stream.
func (k *Key) Sum() string {
	return hex.EncodeToString(k.h.Sum(nil))
}
