package artifact

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"testing"
)

// The mailbox protocol in internal/dist trusts the store's publication to
// be atomic across OS process boundaries: a reader polling a key either
// misses it or reads one writer's complete bytes, never a torn mix. This
// test pins that with real subprocesses — the test re-executes its own
// binary in a helper mode where each of several processes hammers Put on
// the same key with a distinct payload — and then checks the surviving
// entry is exactly one writer's payload.

const (
	contentionDirEnv  = "ARTIFACT_CONTENTION_DIR"
	contentionSeedEnv = "ARTIFACT_CONTENTION_SEED"
	contentionProcs   = 5
	contentionPuts    = 25
	contentionBytes   = 1 << 18
)

func contentionKey() string {
	return NewKey("contention-test/v1").Str("target", "shared").Sum()
}

// contentionHelper is the subprocess body: publish the same key
// contentionPuts times, each write filling the payload with this writer's
// seed byte.
func contentionHelper(dir string, seed byte) error {
	store, err := Open(dir)
	if err != nil {
		return err
	}
	buf := make([]byte, contentionBytes)
	for i := range buf {
		buf[i] = seed
	}
	key := contentionKey()
	for i := 0; i < contentionPuts; i++ {
		if err := store.Put("contention-test", key, func(w io.Writer) error {
			_, err := w.Write(buf)
			return err
		}); err != nil {
			return err
		}
	}
	return nil
}

func TestCrossProcessPutAtomicity(t *testing.T) {
	if dir := os.Getenv(contentionDirEnv); dir != "" {
		seed, err := strconv.Atoi(os.Getenv(contentionSeedEnv))
		if err != nil {
			t.Fatalf("helper: %v", err)
		}
		if err := contentionHelper(dir, byte(seed)); err != nil {
			t.Fatalf("helper: %v", err)
		}
		return
	}

	dir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmds := make([]*exec.Cmd, contentionProcs)
	for i := range cmds {
		cmd := exec.Command(exe, "-test.run=^TestCrossProcessPutAtomicity$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			contentionDirEnv+"="+dir,
			fmt.Sprintf("%s=%d", contentionSeedEnv, i+1))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start writer %d: %v", i, err)
		}
		cmds[i] = cmd
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}

	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := store.Keys("contention-test")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != contentionKey() {
		t.Fatalf("store holds keys %v, want exactly [%s]", keys, contentionKey())
	}
	rc, err := store.Get("contention-test", contentionKey())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != contentionBytes {
		t.Fatalf("entry is %d bytes, want %d (torn or truncated write)", len(got), contentionBytes)
	}
	seed := got[0]
	if seed < 1 || seed > contentionProcs {
		t.Fatalf("entry starts with byte %d, not a writer seed in [1,%d]", seed, contentionProcs)
	}
	for i, b := range got {
		if b != seed {
			t.Fatalf("entry mixes writers: byte %d is %d, byte 0 was %d", i, b, seed)
		}
	}
}
