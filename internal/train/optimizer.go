// Package train provides optimizers and a training loop for the nn
// substrate, with a per-step regularizer hook through which the
// data-encoding attacks inject their correlation penalty gradients.
package train

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and does not clear
	// gradients (call Model.ZeroGrad separately).
	Step(params []*nn.Param)
	// SetLR changes the learning rate.
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// SGD is stochastic gradient descent with optional momentum and decoupled
// weight decay.
type SGD struct {
	lr          float64
	Momentum    float64
	WeightDecay float64
	velocity    map[*nn.Param]*tensor.Tensor
}

// NewSGD creates an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{lr: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*nn.Param]*tensor.Tensor)}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		g := p.Grad
		if s.WeightDecay != 0 && p.Weight {
			g = g.Clone().AddScaled(s.WeightDecay, p.Value)
		}
		if s.Momentum != 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.Value.Shape()...)
				s.velocity[p] = v
			}
			v.Scale(s.Momentum).Add(g)
			p.Value.AddScaled(-s.lr, v)
		} else {
			p.Value.AddScaled(-s.lr, g)
		}
	}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	lr           float64
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64
	t            int
	m, v         map[*nn.Param]*tensor.Tensor
}

// NewAdam creates an Adam optimizer with standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		lr: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*nn.Param]*tensor.Tensor),
		v: make(map[*nn.Param]*tensor.Tensor),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*nn.Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		g := p.Grad
		if a.WeightDecay != 0 && p.Weight {
			g = g.Clone().AddScaled(a.WeightDecay, p.Value)
		}
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape()...)
			a.m[p] = m
			a.v[p] = tensor.New(p.Value.Shape()...)
		}
		v := a.v[p]
		md, vd, gd, pd := m.Data(), v.Data(), g.Data(), p.Value.Data()
		for i := range gd {
			md[i] = a.Beta1*md[i] + (1-a.Beta1)*gd[i]
			vd[i] = a.Beta2*vd[i] + (1-a.Beta2)*gd[i]*gd[i]
			mhat := md[i] / bc1
			vhat := vd[i] / bc2
			pd[i] -= a.lr * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.lr }

// StepDecay returns a schedule that multiplies the base LR by factor every
// `every` epochs.
func StepDecay(base float64, every int, factor float64) func(epoch int) float64 {
	return func(epoch int) float64 {
		if every <= 0 {
			return base
		}
		return base * math.Pow(factor, float64(epoch/every))
	}
}

// CosineDecay returns a schedule that anneals the LR from base to floor over
// total epochs following a half cosine.
func CosineDecay(base, floor float64, total int) func(epoch int) float64 {
	return func(epoch int) float64 {
		if total <= 0 || epoch >= total {
			return floor
		}
		return floor + 0.5*(base-floor)*(1+math.Cos(math.Pi*float64(epoch)/float64(total)))
	}
}
