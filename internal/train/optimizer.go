// Package train provides optimizers and a training loop for the nn
// substrate, with a per-step regularizer hook through which the
// data-encoding attacks inject their correlation penalty gradients.
package train

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and does not clear
	// gradients (call Model.ZeroGrad separately).
	Step(params []*nn.Param)
	// SetLR changes the learning rate.
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// StatefulOptimizer is implemented by optimizers whose update rule carries
// state across steps (momentum velocities, Adam moments). Checkpointing
// uses it so a resumed run continues the exact update sequence an
// uninterrupted run would have produced — momentum history included.
type StatefulOptimizer interface {
	Optimizer
	// ExportState snapshots the optimizer's per-parameter state, keyed by
	// parameter name so it survives serialization.
	ExportState(params []*nn.Param) OptimizerState
	// ImportState restores a snapshot produced by ExportState onto the
	// given (freshly built) parameters.
	ImportState(params []*nn.Param, st OptimizerState) error
}

// OptimizerState is the serializable state of a StatefulOptimizer.
type OptimizerState struct {
	// Kind names the optimizer ("sgd", "adam"); ImportState rejects a
	// state captured from a different kind.
	Kind string
	// Step is the global step counter (Adam's bias-correction t).
	Step int
	// Slots hold one named state vector set each ("velocity", "m", "v").
	Slots []StateSlot
}

// StateSlot is one named per-parameter state vector set.
type StateSlot struct {
	Name    string
	ByParam []ValuesBlob
}

// slot returns the named slot, or nil.
func (st OptimizerState) slot(name string) *StateSlot {
	for i := range st.Slots {
		if st.Slots[i].Name == name {
			return &st.Slots[i]
		}
	}
	return nil
}

// exportVecs captures a param-keyed tensor map as a named slot, in params
// order for determinism. Params without an entry (never stepped) are
// skipped and restore as absent, exactly as they were.
func exportVecs(name string, params []*nn.Param, vecs map[*nn.Param]*tensor.Tensor) StateSlot {
	slot := StateSlot{Name: name}
	for _, p := range params {
		if v, ok := vecs[p]; ok {
			slot.ByParam = append(slot.ByParam, ValuesBlob{
				Name:   p.Name,
				Values: append([]float64(nil), v.Data()...),
			})
		}
	}
	return slot
}

// importVecs restores a slot into a param-keyed tensor map.
func importVecs(slot *StateSlot, params []*nn.Param, vecs map[*nn.Param]*tensor.Tensor) error {
	if slot == nil {
		return nil
	}
	byName := make(map[string]*nn.Param, len(params))
	for _, p := range params {
		byName[p.Name] = p
	}
	for _, blob := range slot.ByParam {
		p, ok := byName[blob.Name]
		if !ok {
			return fmt.Errorf("train: optimizer state for unknown parameter %q", blob.Name)
		}
		if p.NumEl() != len(blob.Values) {
			return fmt.Errorf("train: optimizer state for %q has %d values, parameter has %d",
				blob.Name, len(blob.Values), p.NumEl())
		}
		v := tensor.New(p.Value.Shape()...)
		copy(v.Data(), blob.Values)
		vecs[p] = v
	}
	return nil
}

// SGD is stochastic gradient descent with optional momentum and decoupled
// weight decay.
type SGD struct {
	lr          float64
	Momentum    float64
	WeightDecay float64
	velocity    map[*nn.Param]*tensor.Tensor
}

// NewSGD creates an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{lr: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*nn.Param]*tensor.Tensor)}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		g := p.Grad
		if s.WeightDecay != 0 && p.Weight {
			g = g.Clone().AddScaled(s.WeightDecay, p.Value)
		}
		if s.Momentum != 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.Value.Shape()...)
				s.velocity[p] = v
			}
			v.Scale(s.Momentum).Add(g)
			p.Value.AddScaled(-s.lr, v)
		} else {
			p.Value.AddScaled(-s.lr, g)
		}
	}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }

// ExportState implements StatefulOptimizer (momentum velocities).
func (s *SGD) ExportState(params []*nn.Param) OptimizerState {
	return OptimizerState{Kind: "sgd", Slots: []StateSlot{exportVecs("velocity", params, s.velocity)}}
}

// ImportState implements StatefulOptimizer.
func (s *SGD) ImportState(params []*nn.Param, st OptimizerState) error {
	if st.Kind != "sgd" {
		return fmt.Errorf("train: cannot restore %q state into SGD", st.Kind)
	}
	s.velocity = make(map[*nn.Param]*tensor.Tensor)
	return importVecs(st.slot("velocity"), params, s.velocity)
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	lr           float64
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64
	t            int
	m, v         map[*nn.Param]*tensor.Tensor
}

// NewAdam creates an Adam optimizer with standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		lr: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*nn.Param]*tensor.Tensor),
		v: make(map[*nn.Param]*tensor.Tensor),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*nn.Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		g := p.Grad
		if a.WeightDecay != 0 && p.Weight {
			g = g.Clone().AddScaled(a.WeightDecay, p.Value)
		}
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape()...)
			a.m[p] = m
			a.v[p] = tensor.New(p.Value.Shape()...)
		}
		v := a.v[p]
		md, vd, gd, pd := m.Data(), v.Data(), g.Data(), p.Value.Data()
		for i := range gd {
			md[i] = a.Beta1*md[i] + (1-a.Beta1)*gd[i]
			vd[i] = a.Beta2*vd[i] + (1-a.Beta2)*gd[i]*gd[i]
			mhat := md[i] / bc1
			vhat := vd[i] / bc2
			pd[i] -= a.lr * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.lr }

// ExportState implements StatefulOptimizer (first/second moments + step).
func (a *Adam) ExportState(params []*nn.Param) OptimizerState {
	return OptimizerState{Kind: "adam", Step: a.t, Slots: []StateSlot{
		exportVecs("m", params, a.m),
		exportVecs("v", params, a.v),
	}}
}

// ImportState implements StatefulOptimizer.
func (a *Adam) ImportState(params []*nn.Param, st OptimizerState) error {
	if st.Kind != "adam" {
		return fmt.Errorf("train: cannot restore %q state into Adam", st.Kind)
	}
	a.t = st.Step
	a.m = make(map[*nn.Param]*tensor.Tensor)
	a.v = make(map[*nn.Param]*tensor.Tensor)
	if err := importVecs(st.slot("m"), params, a.m); err != nil {
		return err
	}
	return importVecs(st.slot("v"), params, a.v)
}

// StepDecay returns a schedule that multiplies the base LR by factor every
// `every` epochs.
func StepDecay(base float64, every int, factor float64) func(epoch int) float64 {
	return func(epoch int) float64 {
		if every <= 0 {
			return base
		}
		return base * math.Pow(factor, float64(epoch/every))
	}
}

// CosineDecay returns a schedule that anneals the LR from base to floor over
// total epochs following a half cosine.
func CosineDecay(base, floor float64, total int) func(epoch int) float64 {
	return func(epoch int) float64 {
		if total <= 0 || epoch >= total {
			return floor
		}
		return floor + 0.5*(base-floor)*(1+math.Cos(math.Pi*float64(epoch)/float64(total)))
	}
}
