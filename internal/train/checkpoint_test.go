package train

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

// TestResumeBitIdenticalToUninterrupted pins the checkpoint/resume
// guarantee: training N epochs with a checkpoint captured at epoch k, then
// restarting from that checkpoint on a FRESH model and optimizer, produces
// byte-equal final weights and losses to the uninterrupted run — for the
// serial path and a parallel execution context alike. This is what makes a
// crash at epoch 40 of 50 recoverable without losing determinism.
func TestResumeBitIdenticalToUninterrupted(t *testing.T) {
	x, y, build := convProblem()
	const epochs, ckAt = 4, 2

	for _, threads := range []int{1, 4} {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			full := func() ([]float64, []EpochStats) {
				m := build()
				res := Run(m, x, y, Config{
					Epochs: epochs, BatchSize: 8,
					Optimizer: NewSGD(0.05, 0.9, 0),
					Schedule:  StepDecay(0.05, 1, 0.5),
					ClipNorm:  5, Seed: 31, Threads: threads,
				})
				var flat []float64
				for _, p := range m.Params() {
					flat = append(flat, p.Value.Data()...)
				}
				return flat, res.Epochs
			}
			refW, refE := full()

			// Interrupted run: capture a checkpoint at epoch ckAt via the
			// hook, serialize it through the codec (as the artifact store
			// would), and throw the first model away.
			var raw []byte
			m1 := build()
			Run(m1, x, y, Config{
				Epochs: epochs, BatchSize: 8,
				Optimizer: NewSGD(0.05, 0.9, 0),
				Schedule:  StepDecay(0.05, 1, 0.5),
				ClipNorm:  5, Seed: 31, Threads: threads,
				CheckpointEvery: ckAt,
				Checkpoint: func(ck *Checkpoint) {
					if ck.Epoch != ckAt {
						return
					}
					var buf bytes.Buffer
					if err := EncodeCheckpoint(&buf, ck); err != nil {
						t.Errorf("encode: %v", err)
					}
					raw = buf.Bytes()
				},
			})
			if raw == nil {
				t.Fatal("checkpoint hook never fired at the target epoch")
			}

			ck, err := DecodeCheckpoint(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if ck.Epoch != ckAt || len(ck.Stats) != ckAt {
				t.Fatalf("checkpoint epoch %d with %d stats, want %d", ck.Epoch, len(ck.Stats), ckAt)
			}
			m2 := build()
			res := Run(m2, x, y, Config{
				Epochs: epochs, BatchSize: 8,
				Optimizer: NewSGD(0.05, 0.9, 0),
				Schedule:  StepDecay(0.05, 1, 0.5),
				ClipNorm:  5, Seed: 31, Threads: threads,
				Resume: ck,
			})
			var gotW []float64
			for _, p := range m2.Params() {
				gotW = append(gotW, p.Value.Data()...)
			}
			if len(gotW) != len(refW) {
				t.Fatalf("param count %d != %d", len(gotW), len(refW))
			}
			for i := range refW {
				if gotW[i] != refW[i] {
					t.Fatalf("weight[%d]: resumed %v != uninterrupted %v", i, gotW[i], refW[i])
				}
			}
			if len(res.Epochs) != len(refE) {
				t.Fatalf("epoch history %d != %d", len(res.Epochs), len(refE))
			}
			for i := range refE {
				if res.Epochs[i].DataLoss != refE[i].DataLoss || res.Epochs[i].LR != refE[i].LR {
					t.Fatalf("epoch %d stats differ: %+v vs %+v", i, res.Epochs[i], refE[i])
				}
			}
		})
	}
}

// TestResumeAcrossThreadCounts checks the orthogonality of the two knobs:
// a checkpoint captured under one thread count resumes bit-identically
// under another.
func TestResumeAcrossThreadCounts(t *testing.T) {
	x, y, build := convProblem()
	run := func(threads int, resume *Checkpoint, hook func(*Checkpoint)) []float64 {
		m := build()
		Run(m, x, y, Config{
			Epochs: 3, BatchSize: 8,
			Optimizer: NewSGD(0.05, 0.9, 0),
			Seed:      33, Threads: threads,
			Resume: resume, CheckpointEvery: 1, Checkpoint: hook,
		})
		var flat []float64
		for _, p := range m.Params() {
			flat = append(flat, p.Value.Data()...)
		}
		return flat
	}
	ref := run(1, nil, nil)
	var ck *Checkpoint
	run(4, nil, func(c *Checkpoint) {
		if c.Epoch == 1 {
			ck = c
		}
	})
	if ck == nil {
		t.Fatal("no checkpoint captured")
	}
	got := run(1, ck, nil)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("weight[%d]: cross-thread resume %v != serial %v", i, got[i], ref[i])
		}
	}
}

func captureSmall(t *testing.T) *Checkpoint {
	t.Helper()
	x, y, build := convProblem()
	m := build()
	opt := NewSGD(0.05, 0.9, 0)
	res := Run(m, x, y, Config{Epochs: 1, BatchSize: 8, Optimizer: opt, Seed: 35})
	return Capture(m, opt, 1, res.Epochs)
}

func encodeCk(t *testing.T, ck *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointCodecRoundTrip(t *testing.T) {
	ck := captureSmall(t)
	got, err := DecodeCheckpoint(bytes.NewReader(encodeCk(t, ck)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != ck.Epoch || len(got.Params) != len(ck.Params) || len(got.BN) != len(ck.BN) {
		t.Fatalf("round trip lost structure: %d/%d/%d vs %d/%d/%d",
			got.Epoch, len(got.Params), len(got.BN), ck.Epoch, len(ck.Params), len(ck.BN))
	}
	if got.Opt.Kind != "sgd" || got.Opt.slot("velocity") == nil {
		t.Fatalf("optimizer state lost: %+v", got.Opt)
	}
	for i := range ck.Params {
		for j := range ck.Params[i].Values {
			if got.Params[i].Values[j] != ck.Params[i].Values[j] {
				t.Fatalf("param %s[%d] not bit-exact", ck.Params[i].Name, j)
			}
		}
	}
	// Restoring onto a model/optimizer pair must reproduce the state.
	_, _, build := convProblem()
	m := build()
	opt := NewSGD(0.05, 0.9, 0)
	if err := got.Restore(m, opt); err != nil {
		t.Fatal(err)
	}
	var flat []float64
	for _, p := range m.Params() {
		flat = append(flat, p.Value.Data()...)
	}
	var want []float64
	for _, b := range ck.Params {
		want = append(want, b.Values...)
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("restored weight[%d] differs", i)
		}
	}
}

func TestCheckpointDecodeTruncatedFails(t *testing.T) {
	raw := encodeCk(t, captureSmall(t))
	for _, n := range []int{0, 3, len(ckMagic), len(ckMagic) + 7, len(raw) / 2, len(raw) - 1} {
		if _, err := DecodeCheckpoint(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation at %d bytes: expected error", n)
		}
	}
	if _, err := DecodeCheckpoint(bytes.NewReader(raw[:4])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("header truncation error = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestCheckpointDecodeBadMagicFails(t *testing.T) {
	raw := encodeCk(t, captureSmall(t))
	raw[0] ^= 0xff
	if _, err := DecodeCheckpoint(bytes.NewReader(raw)); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("error = %v, want ErrBadCheckpoint", err)
	}
}

func TestCheckpointDecodeFlippedByteFails(t *testing.T) {
	raw := encodeCk(t, captureSmall(t))
	// Flip a byte mid-payload: gob either errors or the structural
	// validation catches the damage; a panic is the only failure.
	for _, off := range []int{len(ckMagic) + 1, len(raw) / 3, 2 * len(raw) / 3} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		ck, err := DecodeCheckpoint(bytes.NewReader(mut))
		if err == nil && ck == nil {
			t.Fatalf("flip at %d: nil checkpoint without error", off)
		}
	}
}

func TestCheckpointRestoreRejectsMismatch(t *testing.T) {
	ck := captureSmall(t)
	_, _, build := convProblem()

	bad := *ck
	bad.Params = append([]ValuesBlob(nil), ck.Params...)
	bad.Params[0] = ValuesBlob{Name: "no.such.param", Values: []float64{1}}
	if err := bad.Restore(build(), nil); err == nil {
		t.Fatal("unknown parameter accepted")
	}

	bad2 := *ck
	bad2.Params = append([]ValuesBlob(nil), ck.Params...)
	bad2.Params[0] = ValuesBlob{Name: ck.Params[0].Name, Values: ck.Params[0].Values[:1]}
	if err := bad2.Restore(build(), nil); err == nil {
		t.Fatal("short parameter accepted")
	}
}

func TestOptimizerStateKindMismatch(t *testing.T) {
	_, _, build := convProblem()
	m := build()
	sgd := NewSGD(0.1, 0.9, 0)
	st := sgd.ExportState(m.Params())
	if err := NewAdam(0.01).ImportState(m.Params(), st); err == nil {
		t.Fatal("Adam accepted SGD state")
	}
	if err := sgd.ImportState(m.Params(), OptimizerState{Kind: "adam"}); err == nil {
		t.Fatal("SGD accepted Adam state")
	}
}

func TestAdamStateRoundTrip(t *testing.T) {
	x, y, build := convProblem()
	run := func(resume *Checkpoint, epochs int) ([]float64, *Checkpoint) {
		m := build()
		opt := NewAdam(0.01)
		res := Run(m, x, y, Config{
			Epochs: epochs, BatchSize: 8, Optimizer: opt, Seed: 37, Resume: resume,
		})
		var flat []float64
		for _, p := range m.Params() {
			flat = append(flat, p.Value.Data()...)
		}
		return flat, Capture(m, opt, epochs, res.Epochs)
	}
	ref, _ := run(nil, 2)
	_, ck := run(nil, 1)
	raw := encodeCk(t, ck)
	ck2, err := DecodeCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := run(ck2, 2)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("adam resume weight[%d]: %v != %v", i, got[i], ref[i])
		}
	}
}
