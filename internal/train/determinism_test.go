package train

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// convProblem builds a tiny image classification problem plus a fresh conv
// model with fixed seeds, so repeated calls are bit-identical.
func convProblem() (*tensor.Tensor, []int, func() *nn.Model) {
	rng := rand.New(rand.NewSource(21))
	n := 48
	x := tensor.New(n, 1, 8, 8).RandN(rng, 0, 1)
	y := make([]int, n)
	for i := range y {
		y[i] = i % 4
	}
	build := func() *nn.Model {
		return nn.NewResNet(nn.ResNetConfig{
			InC: 1, InH: 8, InW: 8, Classes: 4,
			Widths: []int{4, 8}, Blocks: []int{1, 1}, Seed: 22,
		})
	}
	return x, y, build
}

// TestRunBitIdenticalAcrossThreadCounts pins the repo's reproducibility
// guarantee end to end: a full training run — shuffling, forward, backward,
// gradient clipping, momentum updates, batch-norm running stats — produces
// bit-identical weights and losses for every Threads value. The threat model
// depends on this: a released model is only auditable if the training run
// that produced it can be replayed exactly, regardless of the machine's core
// count.
func TestRunBitIdenticalAcrossThreadCounts(t *testing.T) {
	x, y, build := convProblem()
	runOne := func(threads int) ([]float64, []EpochStats) {
		m := build()
		res := Run(m, x, y, Config{
			Epochs: 2, BatchSize: 8,
			Optimizer: NewSGD(0.05, 0.9, 0),
			ClipNorm:  5,
			Seed:      23,
			Threads:   threads,
		})
		var flat []float64
		for _, p := range m.Params() {
			flat = append(flat, p.Value.Data()...)
		}
		return flat, res.Epochs
	}

	refW, refE := runOne(1)
	for _, threads := range []int{2, 4, 7} {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			w, e := runOne(threads)
			if len(w) != len(refW) {
				t.Fatalf("param count %d != %d", len(w), len(refW))
			}
			for i := range refW {
				if w[i] != refW[i] {
					t.Fatalf("weight[%d]: %v (threads=%d) != %v (threads=1)", i, w[i], threads, refW[i])
				}
			}
			for i := range refE {
				if e[i].DataLoss != refE[i].DataLoss {
					t.Fatalf("epoch %d loss %v != %v", i, e[i].DataLoss, refE[i].DataLoss)
				}
			}
		})
	}
}

// TestRunThreadsZeroMatchesSerial pins the default: Threads 0 (all cores)
// must also reproduce the serial run bit for bit.
func TestRunThreadsZeroMatchesSerial(t *testing.T) {
	x, y, build := convProblem()
	runOne := func(threads int) []float64 {
		m := build()
		Run(m, x, y, Config{
			Epochs: 1, BatchSize: 8,
			Optimizer: NewSGD(0.05, 0.9, 0),
			Seed:      24,
			Threads:   threads,
		})
		var flat []float64
		for _, p := range m.Params() {
			flat = append(flat, p.Value.Data()...)
		}
		return flat
	}
	a, b := runOne(1), runOne(0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("weight[%d]: serial %v != default %v", i, a[i], b[i])
		}
	}
}
