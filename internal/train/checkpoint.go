package train

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"repro/internal/nn"
)

// ckMagic identifies a training-checkpoint artifact; the trailing digit is
// the format version. Decode rejects anything else up front so a wrong or
// truncated file fails with a precise error instead of a gob decode error
// deep in the payload (mirroring modelio's released-model format).
const ckMagic = "DACCKP1\n"

// ErrBadCheckpoint reports that a stream is not a training checkpoint.
var ErrBadCheckpoint = errors.New("train: bad magic (not a training checkpoint)")

// ValuesBlob is one named float vector (a parameter tensor's values or an
// optimizer state vector).
type ValuesBlob struct {
	Name   string
	Values []float64
}

// BNBlob carries one batch-norm layer's running statistics.
type BNBlob struct {
	Name    string
	RunMean []float64
	RunVar  []float64
}

// Checkpoint is a full mid-training snapshot: everything needed to resume
// a run so that the resumed run is bit-identical to an uninterrupted one.
//
// The RNG cursor is the Epoch field: the trainer's only randomness is one
// minibatch shuffle per epoch from a seed-determined stream, so replaying
// Epoch shuffles on resume advances the stream to exactly where the
// uninterrupted run's RNG would be. Optimizer state (momentum velocities)
// and batch-norm running statistics are captured exactly (float64 bits
// survive gob round trips), which the resume-equals-fresh determinism
// test pins.
type Checkpoint struct {
	// Epoch is the number of fully completed epochs — and the RNG cursor.
	Epoch int
	// Params holds every trainable parameter's values by name.
	Params []ValuesBlob
	// BN holds batch-norm running statistics by layer name.
	BN []BNBlob
	// Opt is the optimizer's per-parameter state.
	Opt OptimizerState
	// Stats are the completed epochs' statistics, so a resumed run's
	// Result carries the full epoch history.
	Stats []EpochStats
}

// Capture snapshots m and opt after `epoch` completed epochs. All values
// are deep-copied; the model may keep training afterwards.
func Capture(m *nn.Model, opt Optimizer, epoch int, stats []EpochStats) *Checkpoint {
	ck := &Checkpoint{Epoch: epoch, Stats: append([]EpochStats(nil), stats...)}
	for _, p := range m.Params() {
		ck.Params = append(ck.Params, ValuesBlob{
			Name:   p.Name,
			Values: append([]float64(nil), p.Value.Data()...),
		})
	}
	nn.Walk(m.Net, func(l nn.Layer) {
		if bn, ok := l.(*nn.BatchNorm2D); ok {
			ck.BN = append(ck.BN, BNBlob{
				Name:    bn.Name(),
				RunMean: append([]float64(nil), bn.RunMean...),
				RunVar:  append([]float64(nil), bn.RunVar...),
			})
		}
	})
	if so, ok := opt.(StatefulOptimizer); ok {
		ck.Opt = so.ExportState(m.Params())
	}
	return ck
}

// Restore writes the checkpoint back into m and (when non-nil and
// stateful) opt. The model must have been built from the same
// architecture the checkpoint was captured from.
func (ck *Checkpoint) Restore(m *nn.Model, opt Optimizer) error {
	byName := map[string]*nn.Param{}
	for _, p := range m.Params() {
		byName[p.Name] = p
	}
	for _, blob := range ck.Params {
		p, ok := byName[blob.Name]
		if !ok {
			return fmt.Errorf("train: checkpoint has unknown parameter %q", blob.Name)
		}
		if p.NumEl() != len(blob.Values) {
			return fmt.Errorf("train: checkpoint parameter %q has %d values, model has %d",
				blob.Name, len(blob.Values), p.NumEl())
		}
		copy(p.Value.Data(), blob.Values)
	}
	bnByName := map[string]BNBlob{}
	for _, b := range ck.BN {
		bnByName[b.Name] = b
	}
	var bnErr error
	nn.Walk(m.Net, func(l nn.Layer) {
		bn, ok := l.(*nn.BatchNorm2D)
		if !ok || bnErr != nil {
			return
		}
		b, ok := bnByName[bn.Name()]
		if !ok {
			bnErr = fmt.Errorf("train: checkpoint missing batch-norm stats for %q", bn.Name())
			return
		}
		if len(b.RunMean) != len(bn.RunMean) {
			bnErr = fmt.Errorf("train: checkpoint batch-norm %q channel mismatch", bn.Name())
			return
		}
		copy(bn.RunMean, b.RunMean)
		copy(bn.RunVar, b.RunVar)
	})
	if bnErr != nil {
		return bnErr
	}
	if opt != nil && ck.Opt.Kind != "" {
		so, ok := opt.(StatefulOptimizer)
		if !ok {
			return fmt.Errorf("train: checkpoint has %q optimizer state but optimizer is stateless", ck.Opt.Kind)
		}
		if err := so.ImportState(m.Params(), ck.Opt); err != nil {
			return err
		}
	}
	return nil
}

// EncodeCheckpoint serializes ck to w: the magic header followed by a gob
// payload.
func EncodeCheckpoint(w io.Writer, ck *Checkpoint) error {
	if err := validateCheckpoint(ck); err != nil {
		return err
	}
	if _, err := io.WriteString(w, ckMagic); err != nil {
		return fmt.Errorf("train: write checkpoint header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(ck); err != nil {
		return fmt.Errorf("train: encode checkpoint: %w", err)
	}
	return nil
}

// DecodeCheckpoint reads a checkpoint from r, verifying the magic header
// and the structural consistency of the payload. Truncated or foreign
// streams return wrapped errors (io.ErrUnexpectedEOF, ErrBadCheckpoint) —
// never a panic.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	hdr := make([]byte, len(ckMagic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("train: truncated checkpoint header: %w", io.ErrUnexpectedEOF)
		}
		return nil, fmt.Errorf("train: read checkpoint header: %w", err)
	}
	if string(hdr) != ckMagic {
		return nil, fmt.Errorf("%w: header %q", ErrBadCheckpoint, hdr)
	}
	var ck Checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("train: decode checkpoint: %w", err)
	}
	if err := validateCheckpoint(&ck); err != nil {
		return nil, err
	}
	return &ck, nil
}

// validateCheckpoint checks the structural invariants a well-formed
// checkpoint satisfies, so a corrupted artifact fails with a descriptive
// error instead of a panic in Restore.
func validateCheckpoint(ck *Checkpoint) error {
	if ck.Epoch < 0 {
		return fmt.Errorf("train: checkpoint has negative epoch %d", ck.Epoch)
	}
	if len(ck.Params) == 0 {
		return fmt.Errorf("train: checkpoint has no parameters")
	}
	for _, b := range ck.Params {
		if b.Name == "" || len(b.Values) == 0 {
			return fmt.Errorf("train: checkpoint parameter %q is empty", b.Name)
		}
	}
	for _, b := range ck.BN {
		if len(b.RunMean) != len(b.RunVar) {
			return fmt.Errorf("train: checkpoint batch-norm %q has %d means but %d variances",
				b.Name, len(b.RunMean), len(b.RunVar))
		}
	}
	return nil
}
