package train

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Regularizer injects extra loss terms into training. After the data-loss
// backward pass has accumulated gradients, Apply is called once per step;
// it must add its own gradient contributions to the model parameters and
// return the penalty value (for logging).
//
// The correlated-value-encoding attacks implement this interface.
type Regularizer interface {
	Apply(m *nn.Model) float64
}

// Config controls a training run.
type Config struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the minibatch size.
	BatchSize int
	// Optimizer performs parameter updates; required.
	Optimizer Optimizer
	// Schedule, when non-nil, sets the LR at the start of each epoch.
	Schedule func(epoch int) float64
	// Reg, when non-nil, is applied every step after the data loss.
	Reg Regularizer
	// Seed drives minibatch shuffling.
	Seed int64
	// Threads sets the worker count of the execution context installed on
	// the model for this run (and kept afterwards, so fine-tuning and
	// evaluation inherit it). 0 selects runtime.GOMAXPROCS; 1 forces the
	// serial path. Training results are bit-identical for every value —
	// the layer contract reduces per-sample gradients in fixed sample
	// order — so the knob trades wall-clock only, never reproducibility.
	Threads int
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
	// ClipNorm, when positive, rescales the global gradient norm to at
	// most this value before each step (keeps the correlation penalty
	// from destabilizing early epochs).
	ClipNorm float64
}

// EpochStats summarizes one training epoch.
type EpochStats struct {
	Epoch    int
	DataLoss float64
	RegLoss  float64
	LR       float64
}

// Result summarizes a training run.
type Result struct {
	Epochs []EpochStats
}

// FinalLoss returns the last epoch's data loss (0 if no epochs ran).
func (r Result) FinalLoss() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	return r.Epochs[len(r.Epochs)-1].DataLoss
}

// Run trains m on inputs x (N, ...) with labels y under cfg.
func Run(m *nn.Model, x *tensor.Tensor, y []int, cfg Config) Result {
	n := x.Dim(0)
	if len(y) != n {
		panic(fmt.Sprintf("train: %d labels for %d samples", len(y), n))
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Optimizer == nil {
		panic("train: Config.Optimizer is required")
	}
	m.SetThreads(cfg.Threads)
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sample := x.Len() / n
	bx := tensor.New(cfg.BatchSize, sample)
	by := make([]int, cfg.BatchSize)

	var res Result
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Schedule != nil {
			cfg.Optimizer.SetLR(cfg.Schedule(epoch))
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var dataLoss, regLoss float64
		steps := 0
		for lo := 0; lo+cfg.BatchSize <= n; lo += cfg.BatchSize {
			bs := cfg.BatchSize
			gather(bx, by, x, y, perm[lo:lo+bs])
			batch := bx.Reshape(append([]int{bs}, m.InputShape...)...)
			m.ZeroGrad()
			logits := m.ForwardTrain(batch)
			loss, grad := nn.SoftmaxCrossEntropy(logits, by[:bs])
			m.Backward(grad)
			if cfg.Reg != nil {
				regLoss += cfg.Reg.Apply(m)
			}
			if cfg.ClipNorm > 0 {
				clipGradNorm(m.Params(), cfg.ClipNorm)
			}
			cfg.Optimizer.Step(m.Params())
			dataLoss += loss
			steps++
		}
		if steps > 0 {
			dataLoss /= float64(steps)
			regLoss /= float64(steps)
		}
		st := EpochStats{Epoch: epoch, DataLoss: dataLoss, RegLoss: regLoss, LR: cfg.Optimizer.LR()}
		res.Epochs = append(res.Epochs, st)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %3d  loss %.4f  reg %.4f  lr %.4g\n", epoch, dataLoss, regLoss, st.LR)
		}
	}
	return res
}

// gather copies the permuted samples into the batch buffers.
func gather(bx *tensor.Tensor, by []int, x *tensor.Tensor, y []int, idx []int) {
	sample := bx.Dim(1)
	xd, bd := x.Data(), bx.Data()
	for i, src := range idx {
		copy(bd[i*sample:(i+1)*sample], xd[src*sample:(src+1)*sample])
		by[i] = y[src]
	}
}

func clipGradNorm(params []*nn.Param, maxNorm float64) {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			total += g * g
		}
	}
	if total <= maxNorm*maxNorm {
		return
	}
	scale := maxNorm / (math.Sqrt(total) + 1e-12)
	for _, p := range params {
		p.Grad.Scale(scale)
	}
}
