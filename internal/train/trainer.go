package train

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"repro/internal/artifact"
	"repro/internal/compute"
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Regularizer injects extra loss terms into training. After the data-loss
// backward pass has accumulated gradients, Apply is called once per step;
// it must add its own gradient contributions to the model parameters and
// return the penalty value (for logging).
//
// The correlated-value-encoding attacks implement this interface.
type Regularizer interface {
	Apply(m *nn.Model) float64
}

// groupCorrelated is the optional diagnostics side of a regularizer: the
// correlation attacks report the per-group Pearson correlation of their
// last Apply, which the trainer surfaces in EpochStats and the obs
// registry.
type groupCorrelated interface {
	Correlations() []float64
}

// Config controls a training run.
type Config struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the minibatch size.
	BatchSize int
	// Optimizer performs parameter updates; required.
	Optimizer Optimizer
	// Schedule, when non-nil, sets the LR at the start of each epoch.
	Schedule func(epoch int) float64
	// Reg, when non-nil, is applied every step after the data loss.
	Reg Regularizer
	// Seed drives minibatch shuffling.
	Seed int64
	// Threads sets the worker count of the execution context installed on
	// the model for this run (and kept afterwards, so fine-tuning and
	// evaluation inherit it). 0 selects runtime.GOMAXPROCS; 1 forces the
	// serial path. Training results are bit-identical for every value —
	// the layer contract reduces per-sample gradients in fixed sample
	// order — so the knob trades wall-clock only, never reproducibility.
	Threads int
	// Ctx, when non-nil, overrides Threads with a private execution
	// context. Multi-rank tests that run several trainers concurrently in
	// one process need this: the shared contexts Threads selects allow
	// only one driver at a time.
	Ctx *compute.Ctx
	// Shards is the semantic data-parallel knob: each batch's gradient is
	// computed as Shards independent contiguous shard partials (batch norm
	// sees shard-local statistics, like gradient accumulation) and reduced
	// in ascending shard order. Results depend on Shards but are
	// byte-identical for every (threads × processes) execution shape that
	// computes them. 0 defaults to 1 — the legacy whole-batch path — or to
	// Dist.Procs() when a dist session is attached. Must be ≥ the process
	// count and ≤ BatchSize.
	Shards int
	// Dist, when non-nil, runs the step machine's exchange stage over the
	// session's mailbox: this rank computes only its owned shard range and
	// fetches the rest from its peers. All ranks of a run must pass
	// configurations that agree on everything above (enforced via the
	// coordinator's begin manifest).
	Dist *dist.Session
	// DistToken identifies this run in the mailbox. Every rank must derive
	// the same token; the pipeline passes its train-stage cache key. Empty
	// derives a token from the run's configuration.
	DistToken string
	// Log, when non-nil, receives each epoch's statistics. Use LogTo for
	// the default one-line stdout formatter.
	Log func(EpochStats)
	// Trace, when non-nil, receives phase spans: one train/epoch span per
	// epoch with forward/backward/regularizer/optimizer children
	// accumulated over the epoch's steps. nil disables tracing with no
	// per-step cost.
	Trace *obs.Tracer
	// ClipNorm, when positive, rescales the global gradient norm to at
	// most this value before each step (keeps the correlation penalty
	// from destabilizing early epochs).
	ClipNorm float64
	// Resume, when non-nil, continues a run from the checkpoint instead
	// of starting fresh: parameters, batch-norm running statistics, and
	// optimizer state are restored, the shuffle RNG is fast-forwarded by
	// the checkpoint's epoch cursor, and the loop starts at epoch
	// Resume.Epoch. Everything else in the Config (Seed, Epochs, LR,
	// Schedule, ...) must match the original run; the result is then
	// bit-identical to an uninterrupted run, which
	// TestResumeBitIdenticalToUninterrupted pins.
	Resume *Checkpoint
	// CheckpointEvery, when positive and Checkpoint is set, captures a
	// snapshot after every k-th completed epoch (except the last, whose
	// state the caller already has in the model itself).
	CheckpointEvery int
	// Checkpoint receives mid-training snapshots. The hook owns error
	// handling (a failed checkpoint write must not kill the run it
	// exists to protect).
	Checkpoint func(*Checkpoint)
}

// EpochStats summarizes one training epoch.
type EpochStats struct {
	Epoch    int
	DataLoss float64
	RegLoss  float64
	LR       float64
	// Steps is the number of optimizer steps the epoch ran.
	Steps int
	// Forward, Backward, Reg, and Optim are the wall time the epoch spent
	// in each phase, summed over its steps. They are measured only when
	// timing is on (Config.Trace set or obs enabled) and zero otherwise,
	// so the hot loop pays no clock reads by default.
	Forward, Backward, Reg, Optim time.Duration
	// Exchange and Reduce are the sharded path's phases: Exchange is the
	// mailbox publish + peer-wait time (zero without a dist session) and
	// Reduce is the shard-order gradient fold + batch-norm replay. They
	// are accounted separately so Backward measures compute only — before
	// the stage-machine split, everything after forward landed in
	// Backward.
	Exchange, Reduce time.Duration
	// GroupCorr is the per-group correlation reported by the regularizer
	// after the epoch's last step (nil unless the regularizer exposes
	// Correlations, i.e. for the encoding attacks).
	GroupCorr []float64
}

// LogTo adapts an io.Writer into a Config.Log callback using the default
// per-epoch line format.
func LogTo(w io.Writer) func(EpochStats) {
	return func(st EpochStats) {
		fmt.Fprintf(w, "epoch %3d  loss %.4f  reg %.4f  lr %.4g\n", st.Epoch, st.DataLoss, st.RegLoss, st.LR)
	}
}

// Result summarizes a training run.
type Result struct {
	Epochs []EpochStats
	// DistSkipped reports that a worker rank found the run's completion
	// marker instead of its begin announcement: the coordinator satisfied
	// the run from cache, nothing was trained here, and the model was left
	// untouched. The caller (the pipeline's train stage) loads the
	// published model state instead.
	DistSkipped bool
}

// FinalLoss returns the last epoch's data loss (0 if no epochs ran).
func (r Result) FinalLoss() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	return r.Epochs[len(r.Epochs)-1].DataLoss
}

// Run trains m on inputs x (N, ...) with labels y under cfg. Each epoch is
// driven through an explicit per-step stage machine (see stepMachine):
// shard → forward/backward partials → exchange → global reduce → optimizer
// step. With Shards == 1 (the default) the machine collapses to the
// whole-batch path, byte-identical to the pre-refactor trainer; with
// Shards > 1 the result is byte-identical for every (threads × processes)
// execution shape that computes the same shards.
func Run(m *nn.Model, x *tensor.Tensor, y []int, cfg Config) Result {
	n := x.Dim(0)
	if len(y) != n {
		panic(fmt.Sprintf("train: %d labels for %d samples", len(y), n))
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Optimizer == nil {
		panic("train: Config.Optimizer is required")
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
		if cfg.Dist != nil {
			shards = cfg.Dist.Procs()
		}
	}
	if shards > cfg.BatchSize {
		panic(fmt.Sprintf("train: %d shards over batch size %d (every shard needs at least one sample)", shards, cfg.BatchSize))
	}
	if cfg.Dist != nil && cfg.Dist.Procs() > shards {
		panic(fmt.Sprintf("train: %d processes but only %d shards (procs must be <= shards)", cfg.Dist.Procs(), shards))
	}
	if cfg.Ctx != nil {
		m.SetCtx(cfg.Ctx)
	} else {
		m.SetThreads(cfg.Threads)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}

	var res Result
	start := 0
	if cfg.Resume != nil {
		if err := cfg.Resume.Restore(m, cfg.Optimizer); err != nil {
			panic(fmt.Sprintf("train: resume: %v", err))
		}
		start = cfg.Resume.Epoch
		res.Epochs = append(res.Epochs, cfg.Resume.Stats...)
		// Advance the RNG to the checkpoint's cursor: the loop's only
		// randomness is one shuffle per epoch, so replaying the completed
		// epochs' shuffles leaves perm and the stream exactly where the
		// uninterrupted run had them.
		for e := 0; e < start; e++ {
			rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		}
	}

	stepsPerEpoch := n / cfg.BatchSize
	token := cfg.DistToken
	if token == "" && cfg.Dist != nil {
		token = deriveToken(m, &cfg, n, shards)
	}
	if cfg.Dist != nil {
		man := dist.Manifest{
			Token: token, Procs: cfg.Dist.Procs(), Shards: shards,
			BatchSize: cfg.BatchSize, Steps: stepsPerEpoch,
			Epochs: cfg.Epochs, StartEpoch: start, ParamCount: m.NumParams(),
		}
		if cfg.Dist.Worker() {
			got, completed, err := cfg.Dist.AwaitBegin(token)
			if err != nil {
				panic(fmt.Sprintf("train: %v", err))
			}
			if completed {
				// The coordinator satisfied this run from cache; there is
				// nothing to exchange. The caller loads the published state.
				return Result{DistSkipped: true}
			}
			if got != man {
				panic(fmt.Sprintf("train: dist manifest mismatch: coordinator announced %+v, this rank derived %+v", got, man))
			}
		} else if err := cfg.Dist.Begin(man); err != nil {
			panic(fmt.Sprintf("train: %v", err))
		}
	}

	sm := newStepMachine(m, x, y, cfg.BatchSize, shards, cfg.Dist, token)
	defer sm.close()

	for epoch := start; epoch < cfg.Epochs; epoch++ {
		// Timing is re-checked per epoch so flipping obs.Enable mid-run
		// (e.g. from a signal handler) takes effect at the next epoch.
		timed := cfg.Trace != nil || obs.Enabled()
		sm.timed = timed
		if cfg.Schedule != nil {
			cfg.Optimizer.SetLR(cfg.Schedule(epoch))
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var dataLoss, regLoss float64
		var tReg, tOptim time.Duration
		var epochStart time.Time
		if timed {
			epochStart = time.Now()
		}
		steps := 0
		for lo := 0; lo+cfg.BatchSize <= n; lo += cfg.BatchSize {
			loss := sm.step(epoch, steps, perm[lo:lo+cfg.BatchSize])

			var t0 time.Time
			if timed {
				t0 = time.Now()
			}
			if cfg.Reg != nil {
				regLoss += cfg.Reg.Apply(m)
				if timed {
					t1 := time.Now()
					tReg += t1.Sub(t0)
					t0 = t1
				}
			}
			if cfg.ClipNorm > 0 {
				clipGradNorm(m.Params(), cfg.ClipNorm)
			}
			cfg.Optimizer.Step(m.Params())
			if timed {
				tOptim += time.Since(t0)
			}
			dataLoss += loss
			steps++
		}
		if steps > 0 {
			dataLoss /= float64(steps)
			regLoss /= float64(steps)
		}
		st := EpochStats{
			Epoch: epoch, DataLoss: dataLoss, RegLoss: regLoss,
			LR: cfg.Optimizer.LR(), Steps: steps,
			Reg: tReg, Optim: tOptim,
		}
		st.Forward, st.Backward, st.Exchange, st.Reduce = sm.drainTimings()
		if gc, ok := cfg.Reg.(groupCorrelated); ok {
			st.GroupCorr = gc.Correlations()
		}
		if timed {
			recordEpoch(cfg.Trace, st, time.Since(epochStart))
		}
		res.Epochs = append(res.Epochs, st)
		if cfg.Log != nil {
			cfg.Log(st)
		}
		if cfg.Checkpoint != nil && cfg.CheckpointEvery > 0 &&
			(epoch+1)%cfg.CheckpointEvery == 0 && epoch+1 < cfg.Epochs {
			cfg.Checkpoint(Capture(m, cfg.Optimizer, epoch+1, res.Epochs))
		}
	}
	return res
}

// deriveToken builds a mailbox token for runs without a pipeline cache key:
// a digest of everything that positions the run's exchange traffic. Every
// rank of a run derives it from the same configuration, so they meet at the
// same mailbox keys.
func deriveToken(m *nn.Model, cfg *Config, n, shards int) string {
	k := artifact.NewKey("dist-token/v1").
		Int("seed", cfg.Seed).
		Int("epochs", int64(cfg.Epochs)).
		Int("batch", int64(cfg.BatchSize)).
		Int("shards", int64(shards)).
		Int("samples", int64(n)).
		Int("params", int64(m.NumParams()))
	for _, p := range m.Params() {
		k.Str("param", p.Name)
	}
	return k.Sum()
}

// recordEpoch folds one epoch's accumulated phase timings into the span
// tree and the shared metrics registry. Called once per epoch, off the
// step-granularity hot path.
func recordEpoch(tr *obs.Tracer, st EpochStats, epochWall time.Duration) {
	steps := int64(st.Steps)
	tr.Add("train/epoch", epochWall, 1)
	tr.Add("train/epoch/forward", st.Forward, steps)
	tr.Add("train/epoch/backward", st.Backward, steps)
	if st.Exchange > 0 {
		tr.Add("train/epoch/exchange", st.Exchange, steps)
	}
	if st.Reduce > 0 {
		tr.Add("train/epoch/reduce", st.Reduce, steps)
	}
	if st.Reg > 0 {
		tr.Add("train/epoch/regularizer", st.Reg, steps)
	}
	tr.Add("train/epoch/optimizer", st.Optim, steps)
	if !obs.Enabled() {
		return
	}
	obs.Default.Counter("train_epochs_total").Inc()
	obs.Default.Counter("train_steps_total").Add(steps)
	obs.Default.Gauge("train_data_loss").Set(st.DataLoss)
	obs.Default.Gauge("train_reg_loss").Set(st.RegLoss)
	for i, c := range st.GroupCorr {
		obs.Default.Gauge(fmt.Sprintf(`train_group_corr{group="%d"}`, i)).Set(c)
	}
}

// gather copies the permuted samples into the batch buffers.
func gather(bx *tensor.Tensor, by []int, x *tensor.Tensor, y []int, idx []int) {
	sample := bx.Dim(1)
	xd, bd := x.Data(), bx.Data()
	for i, src := range idx {
		copy(bd[i*sample:(i+1)*sample], xd[src*sample:(src+1)*sample])
		by[i] = y[src]
	}
}

func clipGradNorm(params []*nn.Param, maxNorm float64) {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			total += g * g
		}
	}
	if total <= maxNorm*maxNorm {
		return
	}
	scale := maxNorm / (math.Sqrt(total) + 1e-12)
	for _, p := range params {
		p.Grad.Scale(scale)
	}
}
