package train

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// twoBlobs builds a linearly separable 2-class problem.
func twoBlobs(n int, seed int64) (*tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		cx := -2.0
		if c == 1 {
			cx = 2.0
		}
		x.Set(cx+rng.NormFloat64()*0.5, i, 0)
		x.Set(rng.NormFloat64()*0.5, i, 1)
		y[i] = c
	}
	return x, y
}

// rings builds a non-linearly-separable 2-class problem (inner/outer ring).
func rings(n int, seed int64) (*tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		r := 1.0
		if c == 1 {
			r = 3.0
		}
		a := rng.Float64() * 2 * math.Pi
		x.Set(r*math.Cos(a)+rng.NormFloat64()*0.2, i, 0)
		x.Set(r*math.Sin(a)+rng.NormFloat64()*0.2, i, 1)
		y[i] = c
	}
	return x, y
}

func TestSGDLearnsLinearProblem(t *testing.T) {
	x, y := twoBlobs(200, 1)
	m := nn.NewMLP("m", 2, nil, 2, 7)
	res := Run(m, x, y, Config{
		Epochs: 20, BatchSize: 16,
		Optimizer: NewSGD(0.1, 0, 0),
		Seed:      1,
	})
	if acc := m.Accuracy(x, y, 32); acc < 0.98 {
		t.Fatalf("SGD accuracy = %v, want ≥0.98", acc)
	}
	if res.FinalLoss() > 0.2 {
		t.Fatalf("final loss = %v", res.FinalLoss())
	}
	if len(res.Epochs) != 20 {
		t.Fatalf("epoch stats = %d, want 20", len(res.Epochs))
	}
}

func TestMomentumLearnsNonlinearProblem(t *testing.T) {
	x, y := rings(400, 2)
	m := nn.NewMLP("m", 2, []int{16}, 2, 8)
	Run(m, x, y, Config{
		Epochs: 60, BatchSize: 32,
		Optimizer: NewSGD(0.05, 0.9, 0),
		Seed:      2,
	})
	if acc := m.Accuracy(x, y, 64); acc < 0.95 {
		t.Fatalf("momentum accuracy = %v, want ≥0.95", acc)
	}
}

func TestAdamLearnsNonlinearProblem(t *testing.T) {
	x, y := rings(400, 3)
	m := nn.NewMLP("m", 2, []int{16}, 2, 9)
	Run(m, x, y, Config{
		Epochs: 40, BatchSize: 32,
		Optimizer: NewAdam(0.01),
		Seed:      3,
	})
	if acc := m.Accuracy(x, y, 64); acc < 0.95 {
		t.Fatalf("adam accuracy = %v, want ≥0.95", acc)
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	x, y := twoBlobs(100, 4)
	big := nn.NewMLP("big", 2, nil, 2, 10)
	small := nn.NewMLP("small", 2, nil, 2, 10)
	Run(big, x, y, Config{Epochs: 30, BatchSize: 20, Optimizer: NewSGD(0.05, 0, 0), Seed: 4})
	Run(small, x, y, Config{Epochs: 30, BatchSize: 20, Optimizer: NewSGD(0.05, 0, 0.1), Seed: 4})
	nb := 0.0
	ns := 0.0
	for _, p := range big.WeightParams() {
		nb += p.Value.Norm2()
	}
	for _, p := range small.WeightParams() {
		ns += p.Value.Norm2()
	}
	if ns >= nb {
		t.Fatalf("weight decay did not shrink weights: %v vs %v", ns, nb)
	}
}

func TestStepDecaySchedule(t *testing.T) {
	s := StepDecay(1.0, 10, 0.5)
	if s(0) != 1.0 || s(9) != 1.0 {
		t.Fatal("step decay changed too early")
	}
	if s(10) != 0.5 || s(25) != 0.25 {
		t.Fatalf("step decay wrong: s(10)=%v s(25)=%v", s(10), s(25))
	}
}

func TestCosineDecaySchedule(t *testing.T) {
	s := CosineDecay(1.0, 0.1, 100)
	if math.Abs(s(0)-1.0) > 1e-12 {
		t.Fatalf("cosine start = %v", s(0))
	}
	if s(100) != 0.1 || s(150) != 0.1 {
		t.Fatal("cosine floor not respected")
	}
	if !(s(25) > s(50) && s(50) > s(75)) {
		t.Fatal("cosine not monotone decreasing")
	}
}

func TestScheduleAppliedDuringRun(t *testing.T) {
	x, y := twoBlobs(64, 5)
	m := nn.NewMLP("m", 2, nil, 2, 11)
	res := Run(m, x, y, Config{
		Epochs: 3, BatchSize: 16,
		Optimizer: NewSGD(99, 0, 0),
		Schedule:  StepDecay(0.5, 1, 0.1),
		Seed:      5,
	})
	if res.Epochs[0].LR != 0.5 {
		t.Fatalf("epoch0 LR = %v, want 0.5", res.Epochs[0].LR)
	}
	if math.Abs(res.Epochs[2].LR-0.005) > 1e-12 {
		t.Fatalf("epoch2 LR = %v, want 0.005", res.Epochs[2].LR)
	}
}

// countingReg counts Apply invocations and adds no gradient.
type countingReg struct{ calls int }

func (c *countingReg) Apply(m *nn.Model) float64 {
	c.calls++
	return 1.5
}

func TestRegularizerHookCalledPerStep(t *testing.T) {
	x, y := twoBlobs(64, 6)
	m := nn.NewMLP("m", 2, nil, 2, 12)
	reg := &countingReg{}
	res := Run(m, x, y, Config{
		Epochs: 2, BatchSize: 16,
		Optimizer: NewSGD(0.05, 0, 0),
		Reg:       reg,
		Seed:      6,
	})
	if want := 2 * (64 / 16); reg.calls != want {
		t.Fatalf("regularizer called %d times, want %d", reg.calls, want)
	}
	if math.Abs(res.Epochs[0].RegLoss-1.5) > 1e-12 {
		t.Fatalf("reg loss logged = %v, want 1.5", res.Epochs[0].RegLoss)
	}
}

// pullReg pushes all weights toward +10 via the hook, to verify the hook's
// gradients actually reach the optimizer.
type pullReg struct{}

func (pullReg) Apply(m *nn.Model) float64 {
	for _, p := range m.WeightParams() {
		gd := p.Grad.Data()
		vd := p.Value.Data()
		for i := range gd {
			gd[i] += vd[i] - 10 // gradient of 0.5*(w-10)^2
		}
	}
	return 0
}

func TestRegularizerGradientsInfluenceTraining(t *testing.T) {
	x, y := twoBlobs(64, 7)
	m := nn.NewMLP("m", 2, nil, 2, 13)
	Run(m, x, y, Config{
		Epochs: 50, BatchSize: 16,
		Optimizer: NewSGD(0.05, 0, 0),
		Reg:       pullReg{},
		Seed:      7,
	})
	w := m.WeightParams()[0].Value
	if w.Mean() < 5 {
		t.Fatalf("regularizer pull ignored: mean weight %v", w.Mean())
	}
}

func TestClipNormBoundsUpdates(t *testing.T) {
	x, y := twoBlobs(64, 8)
	m := nn.NewMLP("m", 2, nil, 2, 14)
	// Enormous regularizer gradient; without clipping this would explode.
	blow := regFunc(func(m *nn.Model) float64 {
		for _, p := range m.Params() {
			p.Grad.AddScalar(1e9)
		}
		return 0
	})
	Run(m, x, y, Config{
		Epochs: 2, BatchSize: 16,
		Optimizer: NewSGD(0.1, 0, 0),
		Reg:       blow,
		ClipNorm:  1.0,
		Seed:      8,
	})
	for _, p := range m.Params() {
		if !p.Value.IsFinite() {
			t.Fatal("parameters exploded despite ClipNorm")
		}
		if math.Abs(p.Value.Mean()) > 100 {
			t.Fatalf("parameters drifted too far: %v", p.Value.Mean())
		}
	}
}

type regFunc func(*nn.Model) float64

func (f regFunc) Apply(m *nn.Model) float64 { return f(m) }

func TestRunPanicsWithoutOptimizer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x, y := twoBlobs(16, 9)
	Run(nn.NewMLP("m", 2, nil, 2, 15), x, y, Config{Epochs: 1})
}

func TestRunLabelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x, _ := twoBlobs(16, 10)
	Run(nn.NewMLP("m", 2, nil, 2, 16), x, []int{0}, Config{Epochs: 1, Optimizer: NewSGD(0.1, 0, 0)})
}

func TestDeterministicTraining(t *testing.T) {
	x, y := twoBlobs(64, 11)
	run := func() []float64 {
		m := nn.NewMLP("m", 2, []int{8}, 2, 17)
		Run(m, x, y, Config{Epochs: 5, BatchSize: 16, Optimizer: NewSGD(0.05, 0.9, 0), Seed: 11})
		return append([]float64(nil), m.WeightParams()[0].Value.Data()...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training not deterministic at weight %d", i)
		}
	}
}
