package train

import (
	"fmt"
	"time"

	"repro/internal/compute"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// stepMachine is the per-step stage machine the trainer runs each batch
// through:
//
//	shard → forward/backward partials → exchange → global reduce
//
// (the optimizer step stays in Run, shared with the legacy path). The
// machine has two modes, chosen once per run:
//
// Legacy mode (Shards == 1, no dist session): the whole batch is one
// shard, batch-norm statistics update inline during the forward pass, and
// gradients are left exactly as backward accumulated them — byte for byte
// the pre-refactor trainer, so every existing checkpoint, cache artifact,
// and determinism test is untouched.
//
// Sharded mode (Shards > 1): the batch's permutation slice is split into
// Shards contiguous balanced shards (dataset.Shard). Each shard is
// forward/backwarded independently — batch norm sees shard-local batch
// statistics, the loss is scaled by the global batch size — and its
// flattened gradient, loss, and batch-norm moments become that shard's
// partial. Under a dist session each rank computes only its owned shard
// range and exchanges partials through the mailbox; single-process runs
// compute every shard locally. The reduce stage is identical everywhere:
// zero the gradients, fold the partials in ascending shard order, sum the
// shard losses in shard order, and replay the batch-norm moment updates in
// shard order. Because every (threads × processes) shape computes the
// same partials and folds them in the same order, the post-step model
// state is byte-identical across shapes — the run's result depends on
// Shards (a semantic knob) but never on how the shards were scheduled.
type stepMachine struct {
	m      *nn.Model
	shards int
	sess   *dist.Session // nil for single-process runs
	token  string
	batch  int // global batch size

	x      *tensor.Tensor
	y      []int
	sample int

	bx *tensor.Tensor // gather buffer, rows = max shard size (== batch in legacy mode)
	by []int

	bn      []*nn.BatchNorm2D // batch-norm layers in walk order (sharded mode)
	bnLen   int               // total moment vector length: sum over layers of 2*C
	parts   *compute.PartialSet
	moments [][]float64 // per-shard moment vectors, layer-major (C means, C variances)
	losses  []float64

	ownLo, ownHi int // owned shard range [lo, hi)

	// collected ring: the last two published generations, garbage
	// collected two steps behind the live one (see CollectPartials).
	pendingGC [][2]int

	timed                                   bool
	tForward, tBackward, tExchange, tReduce time.Duration
}

// newStepMachine builds the machine for one run. In sharded mode it flips
// every batch-norm layer into deferred-statistics mode; close undoes that.
func newStepMachine(m *nn.Model, x *tensor.Tensor, y []int, batch, shards int, sess *dist.Session, token string) *stepMachine {
	n := x.Dim(0)
	sm := &stepMachine{
		m: m, shards: shards, sess: sess, token: token, batch: batch,
		x: x, y: y, sample: x.Len() / n,
		ownLo: 0, ownHi: shards,
	}
	rows := batch
	if shards > 1 {
		// Max shard size of a balanced split.
		rows = (batch + shards - 1) / shards
	}
	sm.bx = tensor.New(rows, sm.sample)
	sm.by = make([]int, rows)
	if shards == 1 {
		return sm
	}
	nn.Walk(m.Net, func(l nn.Layer) {
		switch t := l.(type) {
		case *nn.BatchNorm2D:
			t.DeferStats = true
			sm.bn = append(sm.bn, t)
			sm.bnLen += 2 * t.C
		case *nn.Dropout:
			// Dropout draws its mask from one sequential RNG stream in
			// element order; a rank that skips other ranks' shards would
			// desynchronize the stream. No current architecture trains
			// with Dropout, so refuse loudly rather than diverge quietly.
			panic("train: sharded/multi-process training is incompatible with Dropout's sequential RNG stream")
		}
	})
	sm.parts = compute.NewPartialSet(shards, m.NumParams())
	sm.moments = make([][]float64, shards)
	for k := range sm.moments {
		sm.moments[k] = make([]float64, sm.bnLen)
	}
	sm.losses = make([]float64, shards)
	if sess != nil {
		sm.ownLo, sm.ownHi = dist.RankShards(shards, sess.Procs(), sess.Rank())
	}
	return sm
}

// close restores the batch-norm layers' inline-statistics mode and, on the
// coordinator, sweeps the last partial generations out of the mailbox. The
// lag-2 lockstep argument does not cover those final generations — the
// coordinator finishing the run's last step only proves its peers have
// *published* them, not consumed them — so workers publish a per-rank done
// marker and the coordinator waits for all of them before sweeping. If a
// peer never reports (it crashed after its last publish), the sweep is
// skipped: a finished run must not fail over mailbox hygiene.
func (sm *stepMachine) close() {
	for _, b := range sm.bn {
		b.DeferStats = false
	}
	if sm.sess == nil {
		return
	}
	if sm.sess.Worker() {
		if err := sm.sess.PublishDone(sm.token); err != nil {
			panic(fmt.Sprintf("train: publish done marker: %v", err))
		}
		return
	}
	for r := 1; r < sm.sess.Procs(); r++ {
		if err := sm.sess.AwaitDone(sm.token, r); err != nil {
			sm.pendingGC = nil
			return
		}
	}
	for _, g := range sm.pendingGC {
		sm.sess.CollectPartials(sm.token, g[0], g[1], sm.shards)
	}
	sm.pendingGC = nil
}

// step runs one batch through the stage machine and returns its data loss.
// idx is the batch's slice of the epoch permutation. The caller applies
// the regularizer, gradient clipping, and the optimizer step afterwards.
func (sm *stepMachine) step(epoch, step int, idx []int) float64 {
	if sm.shards == 1 {
		return sm.stepLegacy(idx)
	}

	// Stage: shard + forward/backward partials over the owned shard range.
	for k := sm.ownLo; k < sm.ownHi; k++ {
		lo, hi := dataset.Shard(len(idx), k, sm.shards)
		bs := hi - lo
		gather(sm.bx, sm.by, sm.x, sm.y, idx[lo:hi])
		batch := tensor.FromSlice(sm.bx.Data()[:bs*sm.sample], append([]int{bs}, sm.m.InputShape...)...)
		sm.m.ZeroGrad()
		var t0 time.Time
		if sm.timed {
			t0 = time.Now()
		}
		logits := sm.m.ForwardTrain(batch)
		loss, grad := nn.SoftmaxCrossEntropyTotal(logits, sm.by[:bs], len(idx))
		if sm.timed {
			t1 := time.Now()
			sm.tForward += t1.Sub(t0)
			t0 = t1
		}
		sm.m.Backward(grad)
		sm.m.ReadGrads(sm.parts.Partial(k))
		sm.captureMoments(k)
		sm.losses[k] = loss
		if sm.timed {
			sm.tBackward += time.Since(t0)
		}
	}

	// Stage: exchange — publish owned partials, fetch the rest.
	if sm.sess != nil {
		var t0 time.Time
		if sm.timed {
			t0 = time.Now()
		}
		sm.exchange(epoch, step)
		if sm.timed {
			sm.tExchange += time.Since(t0)
		}
	}

	// Stage: global reduce — a fixed left fold in ascending shard order,
	// identical on every rank and for every execution shape.
	var t0 time.Time
	if sm.timed {
		t0 = time.Now()
	}
	sm.m.ZeroGrad()
	loss := 0.0
	for k := 0; k < sm.shards; k++ {
		sm.m.AddGrads(sm.parts.Partial(k))
		loss += sm.losses[k]
	}
	for k := 0; k < sm.shards; k++ {
		off := 0
		for _, b := range sm.bn {
			b.ApplyBatchStats(sm.moments[k][off:off+b.C], sm.moments[k][off+b.C:off+2*b.C])
			off += 2 * b.C
		}
	}
	sm.collect(epoch, step)
	if sm.timed {
		sm.tReduce += time.Since(t0)
	}
	return loss
}

// stepLegacy is the whole-batch path: the pre-refactor step, byte for byte.
func (sm *stepMachine) stepLegacy(idx []int) float64 {
	bs := len(idx)
	gather(sm.bx, sm.by, sm.x, sm.y, idx)
	batch := sm.bx.Reshape(append([]int{bs}, sm.m.InputShape...)...)
	sm.m.ZeroGrad()
	var t0 time.Time
	if sm.timed {
		t0 = time.Now()
	}
	logits := sm.m.ForwardTrain(batch)
	loss, grad := nn.SoftmaxCrossEntropy(logits, sm.by[:bs])
	if sm.timed {
		t1 := time.Now()
		sm.tForward += t1.Sub(t0)
		t0 = t1
	}
	sm.m.Backward(grad)
	if sm.timed {
		sm.tBackward += time.Since(t0)
	}
	return loss
}

// captureMoments snapshots every batch-norm layer's batch moments from the
// shard that just ran forward, layer-major into the shard's moment vector.
func (sm *stepMachine) captureMoments(k int) {
	dst := sm.moments[k]
	off := 0
	for _, b := range sm.bn {
		mu, va := b.BatchStats()
		copy(dst[off:off+b.C], mu)
		copy(dst[off+b.C:off+2*b.C], va)
		off += 2 * b.C
	}
}

// exchange publishes the rank's owned shard partials and fetches every
// other shard from its owning rank, blocking until all are present.
func (sm *stepMachine) exchange(epoch, step int) {
	for k := sm.ownLo; k < sm.ownHi; k++ {
		err := sm.sess.PublishPartial(&dist.Partial{
			Token: sm.token, Epoch: epoch, Step: step, Shard: k,
			Loss: sm.losses[k], Grad: sm.parts.Partial(k), BNMoments: sm.moments[k],
		})
		if err != nil {
			panic(fmt.Sprintf("train: publish partial (epoch %d, step %d, shard %d): %v", epoch, step, k, err))
		}
	}
	for k := 0; k < sm.shards; k++ {
		if k >= sm.ownLo && k < sm.ownHi {
			continue
		}
		p, err := sm.sess.FetchPartial(sm.token, epoch, step, k)
		if err != nil {
			panic(fmt.Sprintf("train: %v", err))
		}
		if len(p.Grad) != sm.parts.Size() || len(p.BNMoments) != sm.bnLen {
			panic(fmt.Sprintf("train: partial (epoch %d, step %d, shard %d) has %d gradient / %d moment elements, want %d / %d",
				epoch, step, k, len(p.Grad), len(p.BNMoments), sm.parts.Size(), sm.bnLen))
		}
		copy(sm.parts.Partial(k), p.Grad)
		copy(sm.moments[k], p.BNMoments)
		sm.losses[k] = p.Loss
	}
}

// collect garbage-collects partials two generations behind the live step.
// Ranks run in lockstep — a step's reduce consumes every shard of that
// step before any rank can publish the next step's partials — so when the
// coordinator finishes generation g, every rank has consumed generation
// g-1 at the latest; deleting g-2 is safely behind every reader.
func (sm *stepMachine) collect(epoch, step int) {
	if sm.sess == nil || !sm.sess.Coordinator() {
		return
	}
	sm.pendingGC = append(sm.pendingGC, [2]int{epoch, step})
	if len(sm.pendingGC) > 2 {
		g := sm.pendingGC[0]
		sm.pendingGC = sm.pendingGC[1:]
		sm.sess.CollectPartials(sm.token, g[0], g[1], sm.shards)
	}
}

// drainTimings returns and resets the per-phase accumulators (called once
// per epoch by Run).
func (sm *stepMachine) drainTimings() (fwd, bwd, exch, red time.Duration) {
	fwd, bwd, exch, red = sm.tForward, sm.tBackward, sm.tExchange, sm.tReduce
	sm.tForward, sm.tBackward, sm.tExchange, sm.tReduce = 0, 0, 0, 0
	return
}
