// Package dataset provides the synthetic stand-ins for CIFAR-10 and
// FaceScrub used by the experiments (the real datasets are not available in
// this offline environment; see DESIGN.md §2 for the substitution
// argument). The generators are deterministic given a seed and are
// calibrated so that per-image pixel standard deviations span a wide range
// around a mean near 50, which is the property the paper's pre-processing
// step (std-window candidate selection) depends on.
package dataset

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/img"
	"repro/internal/tensor"
)

// Dataset is a labeled image collection.
type Dataset struct {
	// Name describes the dataset for logs.
	Name string
	// Classes is the number of distinct labels.
	Classes int
	// C, H, W give the image geometry.
	C, H, W int
	// Images holds the samples; Labels[i] is the class of Images[i].
	Images []*img.Image
	Labels []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Images) }

// ContentDigest returns a hex SHA-256 over the dataset's geometry, labels,
// and exact pixel bits, in sample order. Two datasets with the same digest
// drive every downstream stage identically, which is what the pipeline
// cache keys on (the Name is deliberately excluded — renaming a dataset
// must not invalidate cached work).
func (d *Dataset) ContentDigest() string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(d.Classes)
	writeInt(d.C)
	writeInt(d.H)
	writeInt(d.W)
	writeInt(len(d.Images))
	for i, im := range d.Images {
		writeInt(d.Labels[i])
		for _, p := range im.Pix {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Split partitions the dataset into train and test subsets, assigning every
// k-th sample *of each class* to test so class balance is preserved
// regardless of label ordering. testFrac must be in (0, 1).
func (d *Dataset) Split(testFrac float64) (train, test *Dataset) {
	if testFrac <= 0 || testFrac >= 1 {
		panic(fmt.Sprintf("dataset: bad test fraction %v", testFrac))
	}
	every := int(math.Round(1 / testFrac))
	if every < 2 {
		every = 2
	}
	train = &Dataset{Name: d.Name + "/train", Classes: d.Classes, C: d.C, H: d.H, W: d.W}
	test = &Dataset{Name: d.Name + "/test", Classes: d.Classes, C: d.C, H: d.H, W: d.W}
	seen := make(map[int]int)
	for i := range d.Images {
		c := d.Labels[i]
		seen[c]++
		if seen[c]%every == 0 {
			test.Images = append(test.Images, d.Images[i])
			test.Labels = append(test.Labels, d.Labels[i])
		} else {
			train.Images = append(train.Images, d.Images[i])
			train.Labels = append(train.Labels, d.Labels[i])
		}
	}
	return train, test
}

// Tensors converts the dataset to a (N, C*H*W) tensor of [0,1]-normalized
// pixels plus the label slice, ready for training.
func (d *Dataset) Tensors() (*tensor.Tensor, []int) {
	n := d.Len()
	sample := d.C * d.H * d.W
	x := tensor.New(n, sample)
	xd := x.Data()
	for i, im := range d.Images {
		for j, v := range im.Pix {
			xd[i*sample+j] = v / 255.0
		}
	}
	labels := make([]int, n)
	copy(labels, d.Labels)
	return x, labels
}

// Gray returns a grayscale copy of the dataset (no-op copy for C==1).
func (d *Dataset) Gray() *Dataset {
	out := &Dataset{Name: d.Name + "/gray", Classes: d.Classes, C: 1, H: d.H, W: d.W}
	out.Labels = append(out.Labels, d.Labels...)
	for _, im := range d.Images {
		out.Images = append(out.Images, im.Gray())
	}
	return out
}

// Shard returns the bounds [lo, hi) of the i-th of n contiguous,
// maximally balanced shards of a length-total sequence: shard i covers
// [i*total/n, (i+1)*total/n). The shards partition the sequence exactly —
// concatenating them in shard order reproduces it — and every shard's size
// is ⌊total/n⌋ or ⌈total/n⌉. The data-parallel trainer uses this both to
// split each batch's permutation slice into gradient shards and to assign
// contiguous shard ranges to ranks, so shard boundaries are a pure function
// of (total, n) and identical on every process.
func Shard(total, i, n int) (lo, hi int) {
	if n <= 0 || i < 0 || i >= n {
		panic(fmt.Sprintf("dataset: Shard(%d, %d, %d)", total, i, n))
	}
	return i * total / n, (i + 1) * total / n
}

// Subset returns a new dataset containing the samples at idx, sharing image
// storage with d.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Name: d.Name + "/subset", Classes: d.Classes, C: d.C, H: d.H, W: d.W}
	for _, i := range idx {
		out.Images = append(out.Images, d.Images[i])
		out.Labels = append(out.Labels, d.Labels[i])
	}
	return out
}

// Stds returns the per-image pixel standard deviations.
func (d *Dataset) Stds() []float64 {
	out := make([]float64, d.Len())
	for i, im := range d.Images {
		out[i] = im.Std()
	}
	return out
}

// StdMean returns the mean of the per-image stds (the paper's std_mean).
func (d *Dataset) StdMean() float64 {
	stds := d.Stds()
	s := 0.0
	for _, v := range stds {
		s += v
	}
	if len(stds) == 0 {
		return 0
	}
	return s / float64(len(stds))
}

// IndicesWithStdIn returns the indices of images whose std lies strictly
// inside (lo, hi), the paper's candidate-set criterion.
func (d *Dataset) IndicesWithStdIn(lo, hi float64) []int {
	var out []int
	for i, im := range d.Images {
		s := im.Std()
		if s > lo && s < hi {
			out = append(out, i)
		}
	}
	return out
}
