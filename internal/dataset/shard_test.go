package dataset

import (
	"math/rand"
	"testing"
)

// TestShardPartitionsPermutation pins the sharding contract the
// data-parallel trainer depends on: for any shard count, the shards
// partition an epoch permutation exactly — no gaps, no overlaps — and
// concatenating the shard slices in shard order reproduces the global
// sample order element for element.
func TestShardPartitionsPermutation(t *testing.T) {
	for _, total := range []int{1, 7, 32, 48, 100} {
		perm := rand.New(rand.NewSource(int64(total))).Perm(total)
		for _, n := range []int{1, 2, 4, 7} {
			if n > total {
				continue
			}
			var concat []int
			prevHi := 0
			minSize, maxSize := total, 0
			for i := 0; i < n; i++ {
				lo, hi := Shard(total, i, n)
				if lo != prevHi {
					t.Fatalf("total=%d n=%d: shard %d starts at %d, previous ended at %d", total, n, i, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("total=%d n=%d: shard %d is [%d,%d)", total, n, i, lo, hi)
				}
				if size := hi - lo; size < minSize {
					minSize = size
				} else if size > maxSize {
					maxSize = size
				}
				concat = append(concat, perm[lo:hi]...)
				prevHi = hi
			}
			if prevHi != total {
				t.Fatalf("total=%d n=%d: shards end at %d", total, n, prevHi)
			}
			for j := range perm {
				if concat[j] != perm[j] {
					t.Fatalf("total=%d n=%d: concatenated order diverges at %d: %d != %d", total, n, j, concat[j], perm[j])
				}
			}
			if maxSize > 0 && maxSize-minSize > 1 {
				t.Fatalf("total=%d n=%d: unbalanced shards (min %d, max %d)", total, n, minSize, maxSize)
			}
		}
	}
}

func TestShardBounds(t *testing.T) {
	if lo, hi := Shard(10, 0, 1); lo != 0 || hi != 10 {
		t.Fatalf("Shard(10,0,1) = [%d,%d)", lo, hi)
	}
	// n > total: leading shards get one element each, trailing ones none.
	seen := 0
	for i := 0; i < 7; i++ {
		lo, hi := Shard(3, i, 7)
		seen += hi - lo
	}
	if seen != 3 {
		t.Fatalf("Shard(3,·,7) covers %d elements", seen)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Shard with out-of-range index did not panic")
		}
	}()
	Shard(10, 4, 4)
}
