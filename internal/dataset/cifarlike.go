package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/img"
)

// CIFARConfig controls the synthetic CIFAR-like generator.
type CIFARConfig struct {
	// N is the total sample count.
	N int
	// Classes is the number of classes (CIFAR-10 uses 10).
	Classes int
	// H, W give the image geometry (we default to 16×16 — a scaled-down
	// 32×32; see DESIGN.md).
	H, W int
	// RGB selects 3-channel output; otherwise grayscale.
	RGB bool
	// Seed fixes the generator.
	Seed int64
	// ContrastStd controls the spread of per-image contrast, which maps
	// directly to the spread of per-image pixel std (Fig 2b's premise).
	ContrastStd float64
	// NoiseStd is additive pixel noise in [0,255] units.
	NoiseStd float64
	// TemplateShare in [0,1) mixes a dataset-wide shared pattern into
	// every class template: tpl_c = share·common + (1−share)·specific.
	// Higher values make classes subtler (harder), so accuracy depends on
	// fine weight detail the way a natural task's does.
	TemplateShare float64
}

// DefaultCIFAR returns the configuration used throughout the experiments:
// 16×16 images whose per-image std spectrum is centered near 50 and spans
// roughly 15–85, mirroring natural-image statistics that the paper's
// std-window selection relies on.
func DefaultCIFAR(n int, rgb bool, seed int64) CIFARConfig {
	return CIFARConfig{
		N: n, Classes: 10, H: 16, W: 16, RGB: rgb, Seed: seed,
		ContrastStd: 0.32, NoiseStd: 6,
	}
}

// SyntheticCIFAR generates a deterministic CIFAR-like dataset: each class
// has a fixed band-limited template (a sum of class-specific 2-D sinusoids
// plus a class blob), and each sample is the class template under a random
// small translation, per-image contrast, brightness shift, color tint (RGB
// only) and pixel noise. Classification is comfortably learnable by a small
// CNN, and per-image contrast gives the wide std spectrum the attack's
// pre-processing step selects over.
func SyntheticCIFAR(cfg CIFARConfig) *Dataset {
	if cfg.N <= 0 || cfg.Classes <= 0 {
		panic(fmt.Sprintf("dataset: bad CIFAR config %+v", cfg))
	}
	if cfg.H == 0 {
		cfg.H = 16
	}
	if cfg.W == 0 {
		cfg.W = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	common := classTemplate(rng, cfg.H, cfg.W)
	templates := make([][]float64, cfg.Classes)
	for c := range templates {
		tpl := classTemplate(rng, cfg.H, cfg.W)
		if cfg.TemplateShare > 0 {
			for i := range tpl {
				tpl[i] = cfg.TemplateShare*common[i] + (1-cfg.TemplateShare)*tpl[i]
			}
			m, s := meanStd(tpl)
			if s == 0 {
				s = 1
			}
			for i := range tpl {
				tpl[i] = (tpl[i] - m) / s
			}
		}
		templates[c] = tpl
	}
	channels := 1
	if cfg.RGB {
		channels = 3
	}
	name := "synth-cifar-gray"
	if cfg.RGB {
		name = "synth-cifar-rgb"
	}
	d := &Dataset{Name: name, Classes: cfg.Classes, C: channels, H: cfg.H, W: cfg.W}
	for i := 0; i < cfg.N; i++ {
		class := i % cfg.Classes
		// Contrast drives the per-image std; log-normal-ish positive
		// spread clipped to keep stds within [~12, ~90].
		contrast := 1.0 + rng.NormFloat64()*cfg.ContrastStd
		if contrast < 0.25 {
			contrast = 0.25
		}
		if contrast > 1.8 {
			contrast = 1.8
		}
		brightness := 128 + rng.NormFloat64()*12
		dy := rng.Intn(5) - 2
		dx := rng.Intn(5) - 2
		im := img.New(channels, cfg.H, cfg.W)
		var tintR, tintG, tintB float64
		if cfg.RGB {
			tintR = 1 + rng.NormFloat64()*0.08
			tintG = 1 + rng.NormFloat64()*0.08
			tintB = 1 + rng.NormFloat64()*0.08
		}
		tpl := templates[class]
		for y := 0; y < cfg.H; y++ {
			for x := 0; x < cfg.W; x++ {
				sy := (y + dy + cfg.H) % cfg.H
				sx := (x + dx + cfg.W) % cfg.W
				base := brightness + contrast*48*tpl[sy*cfg.W+sx]
				if cfg.RGB {
					n := rng.NormFloat64() * cfg.NoiseStd
					im.Set(clamp255(base*tintR+n), 0, y, x)
					n = rng.NormFloat64() * cfg.NoiseStd
					im.Set(clamp255(base*tintG+n), 1, y, x)
					n = rng.NormFloat64() * cfg.NoiseStd
					im.Set(clamp255(base*tintB+n), 2, y, x)
				} else {
					im.Set(clamp255(base+rng.NormFloat64()*cfg.NoiseStd), 0, y, x)
				}
			}
		}
		d.Images = append(d.Images, im)
		d.Labels = append(d.Labels, class)
	}
	return d
}

// classTemplate builds a zero-mean, unit-std spatial pattern: a few random
// sinusoids plus a soft blob, distinct per call.
func classTemplate(rng *rand.Rand, h, w int) []float64 {
	tpl := make([]float64, h*w)
	nWaves := 2 + rng.Intn(3)
	type wave struct{ fy, fx, phase, amp float64 }
	waves := make([]wave, nWaves)
	for i := range waves {
		waves[i] = wave{
			fy:    float64(1+rng.Intn(3)) * 2 * math.Pi / float64(h),
			fx:    float64(1+rng.Intn(3)) * 2 * math.Pi / float64(w),
			phase: rng.Float64() * 2 * math.Pi,
			amp:   0.5 + rng.Float64(),
		}
	}
	cy := rng.Float64() * float64(h)
	cx := rng.Float64() * float64(w)
	sigma := 2.0 + rng.Float64()*3
	blobAmp := 1.0 + rng.Float64()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 0.0
			for _, wv := range waves {
				v += wv.amp * math.Sin(wv.fy*float64(y)+wv.fx*float64(x)+wv.phase)
			}
			dy := float64(y) - cy
			dx := float64(x) - cx
			v += blobAmp * math.Exp(-(dy*dy+dx*dx)/(2*sigma*sigma))
			tpl[y*w+x] = v
		}
	}
	// Standardize to zero mean, unit std.
	m, s := meanStd(tpl)
	if s == 0 {
		s = 1
	}
	for i := range tpl {
		tpl[i] = (tpl[i] - m) / s
	}
	return tpl
}

func meanStd(v []float64) (float64, float64) {
	m := 0.0
	for _, x := range v {
		m += x
	}
	m /= float64(len(v))
	ss := 0.0
	for _, x := range v {
		d := x - m
		ss += d * d
	}
	return m, math.Sqrt(ss / float64(len(v)))
}

func clamp255(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}
